package sim

import "fmt"

// Proc is a simulation process: a goroutine whose execution is
// interleaved deterministically with other processes by the kernel.
// All Proc methods must be called from the process's own goroutine
// (the body function passed to Spawn), except Wake, which any running
// process or event may call.
type Proc struct {
	k         *Kernel
	name      string
	resume    chan struct{}
	yield     chan struct{}
	stepFn    func() // p.step, bound once at Spawn so Sleep/Wake don't allocate
	done      bool
	suspended bool
}

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.done }

// Spawn creates a process running body, starting at the current
// virtual time (after already-queued events at that time).
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	p.stepFn = p.step
	k.After(0, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					p.k.failure = fmt.Sprintf("sim: process %q panicked: %v", p.name, r)
				}
				p.done = true
				p.yield <- struct{}{}
			}()
			<-p.resume
			body(p)
		}()
		p.step()
	})
	return p
}

// step hands the baton to the process goroutine and waits for it to
// yield or finish. It runs on the kernel goroutine (inside an event).
func (p *Proc) step() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.yield
}

// block hands the baton back to the kernel and waits to be resumed.
// It runs on the process goroutine.
func (p *Proc) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("sim: negative sleep")
	}
	p.k.After(d, p.stepFn)
	p.block()
}

// Yield lets all other events scheduled for the current instant run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }

// Suspend blocks the process until another process or event calls Wake.
// Calling Suspend while already suspended is impossible by construction
// (the process is not running then).
func (p *Proc) Suspend() {
	p.suspended = true
	p.block()
}

// Wake schedules the process to resume at the current virtual time.
// Waking a process that is not suspended panics: it indicates a lost
// or duplicated wakeup in the caller.
func (p *Proc) Wake() {
	if p.done {
		panic(fmt.Sprintf("sim: waking finished process %q", p.name))
	}
	if !p.suspended {
		panic(fmt.Sprintf("sim: waking non-suspended process %q", p.name))
	}
	p.suspended = false
	p.k.After(0, p.stepFn)
}

// Chan is an unbounded, FIFO, deterministic message queue between
// processes. Send never blocks; Recv blocks the receiving process
// until an item is available. Multiple receivers are served in the
// order they arrived.
type Chan[T any] struct {
	k       *Kernel
	items   []T
	waiters []*Proc
}

// NewChan returns an empty channel on kernel k.
func NewChan[T any](k *Kernel) *Chan[T] {
	return &Chan[T]{k: k}
}

// Len reports the number of queued items.
func (c *Chan[T]) Len() int { return len(c.items) }

// Send enqueues v and wakes the longest-waiting receiver, if any.
// It may be called from any process or event handler.
func (c *Chan[T]) Send(v T) {
	c.items = append(c.items, v)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.Wake()
	}
}

// Recv dequeues the next item, blocking p until one arrives.
func (c *Chan[T]) Recv(p *Proc) T {
	for len(c.items) == 0 {
		c.waiters = append(c.waiters, p)
		p.Suspend()
	}
	v := c.items[0]
	c.items = c.items[1:]
	return v
}

// TryRecv dequeues an item if one is available without blocking.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.items) == 0 {
		return zero, false
	}
	v := c.items[0]
	c.items = c.items[1:]
	return v, true
}

// Resource is a counted resource (semaphore) with FIFO queuing,
// used to model contended devices such as disks.
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource returns a resource with the given capacity (> 0).
func NewResource(k *Kernel, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{k: k, capacity: capacity}
}

// Acquire blocks p until a unit of the resource is free, then claims it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.capacity {
		r.waiters = append(r.waiters, p)
		p.Suspend()
	}
	r.inUse++
}

// Release returns a unit of the resource and wakes the next waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.Wake()
	}
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// WaitGroup lets a process wait for a set of operations to finish.
type WaitGroup struct {
	count  int
	waiter *Proc
}

// Add increments the outstanding-operation count.
func (w *WaitGroup) Add(n int) { w.count += n }

// Done decrements the count and wakes the waiter at zero.
func (w *WaitGroup) Done() {
	w.count--
	if w.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if w.count == 0 && w.waiter != nil {
		p := w.waiter
		w.waiter = nil
		p.Wake()
	}
}

// Wait blocks p until the count reaches zero. Only one process may
// wait at a time.
func (w *WaitGroup) Wait(p *Proc) {
	if w.waiter != nil {
		panic("sim: WaitGroup already has a waiter")
	}
	for w.count > 0 {
		w.waiter = p
		p.Suspend()
	}
}
