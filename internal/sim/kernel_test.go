package sim

import (
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	k := New()
	if k.Now() != 0 {
		t.Fatalf("initial clock = %v", k.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(30, func() { order = append(order, 3) })
	k.At(10, func() { order = append(order, 1) })
	k.At(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("final time = %v", k.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of order: %v", order)
		}
	}
}

func TestAfterAccumulates(t *testing.T) {
	k := New()
	var times []Time
	k.After(10, func() {
		times = append(times, k.Now())
		k.After(5, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	New().After(-1, func() {})
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	k := New()
	ran := 0
	k.At(10, func() { ran++ })
	k.At(20, func() { ran++ })
	k.RunUntil(15)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if k.Now() != 15 {
		t.Fatalf("clock = %v, want 15", k.Now())
	}
	k.Run()
	if ran != 2 {
		t.Fatalf("second run executed %d total", ran)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	k := New()
	k.RunUntil(100)
	if k.Now() != 100 {
		t.Fatalf("clock = %v", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New()
	ran := 0
	k.At(1, func() { ran++; k.Stop() })
	k.At(2, func() { ran++ })
	k.Run()
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop; ran=%d", ran)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d", k.Pending())
	}
}

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500*Millisecond {
		t.Fatalf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if got := (2 * Second).ToSeconds(); got != 2 {
		t.Fatalf("ToSeconds = %v", got)
	}
	if Hour != 3600*Second {
		t.Fatal("Hour constant wrong")
	}
	if s := (1 * Second).String(); s != "1.000000s" {
		t.Fatalf("String = %q", s)
	}
}

// Property: however events are scheduled, they execute in
// non-decreasing time order and the clock never runs backwards.
func TestQuickEventTimeMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		k := New()
		var seen []Time
		for _, d := range delays {
			k.At(Time(d), func() { seen = append(seen, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(seen); i++ {
			if seen[i] < seen[i-1] {
				return false
			}
		}
		return len(seen) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
