package sim

import (
	"strings"
	"testing"
)

func TestProcSleep(t *testing.T) {
	k := New()
	var wake Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(50)
		wake = p.Now()
	})
	k.Run()
	if wake != 50 {
		t.Fatalf("woke at %v", wake)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	k.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestProcDeterminism(t *testing.T) {
	run := func() []string {
		k := New()
		var order []string
		for _, name := range []string{"x", "y", "z"} {
			name := name
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					p.Sleep(7)
				}
			})
		}
		k.Run()
		return order
	}
	a := strings.Join(run(), ",")
	b := strings.Join(run(), ",")
	if a != b {
		t.Fatalf("nondeterministic interleaving:\n%s\n%s", a, b)
	}
}

func TestProcYield(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("first", func(p *Proc) {
		order = append(order, "first-before")
		p.Yield()
		order = append(order, "first-after")
	})
	k.Spawn("second", func(p *Proc) {
		order = append(order, "second")
	})
	k.Run()
	want := "first-before,second,first-after"
	if strings.Join(order, ",") != want {
		t.Fatalf("order = %v", order)
	}
}

func TestSuspendWake(t *testing.T) {
	k := New()
	var target *Proc
	var resumedAt Time
	target = k.Spawn("target", func(p *Proc) {
		p.Suspend()
		resumedAt = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(100)
		target.Wake()
	})
	k.Run()
	if resumedAt != 100 {
		t.Fatalf("resumed at %v", resumedAt)
	}
	if !target.Done() {
		t.Fatal("target did not finish")
	}
}

func TestWakeNonSuspendedPanics(t *testing.T) {
	k := New()
	var target *Proc
	target = k.Spawn("target", func(p *Proc) { p.Sleep(1000) })
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(10)
		defer func() {
			if recover() == nil {
				t.Error("waking a sleeping (not suspended) process did not panic")
			}
		}()
		target.Wake()
	})
	defer func() { recover() }() // the waker's panic propagates out of Run
	k.Run()
}

func TestProcPanicPropagates(t *testing.T) {
	k := New()
	k.Spawn("bomb", func(p *Proc) {
		p.Sleep(5)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("process panic was swallowed")
		}
		if !strings.Contains(r.(string), "bomb") || !strings.Contains(r.(string), "boom") {
			t.Fatalf("panic value = %v", r)
		}
	}()
	k.Run()
}

func TestProcName(t *testing.T) {
	k := New()
	p := k.Spawn("worker-7", func(p *Proc) {})
	if p.Name() != "worker-7" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.Kernel() != k {
		t.Fatal("kernel accessor wrong")
	}
	k.Run()
}

func TestChanSendRecv(t *testing.T) {
	k := New()
	ch := NewChan[int](k)
	var got []int
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			ch.Send(i)
		}
	})
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestChanBuffersWhenNoReceiver(t *testing.T) {
	k := New()
	ch := NewChan[string](k)
	k.Spawn("producer", func(p *Proc) {
		ch.Send("a")
		ch.Send("b")
	})
	var got []string
	k.Spawn("lateConsumer", func(p *Proc) {
		p.Sleep(100)
		got = append(got, ch.Recv(p), ch.Recv(p))
	})
	k.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("got %v", got)
	}
}

func TestChanMultipleReceiversFIFO(t *testing.T) {
	k := New()
	ch := NewChan[int](k)
	var winners []string
	spawnReceiver := func(name string, delay Time) {
		k.Spawn(name, func(p *Proc) {
			p.Sleep(delay)
			ch.Recv(p)
			winners = append(winners, name)
		})
	}
	spawnReceiver("early", 1)
	spawnReceiver("late", 2)
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(10)
		ch.Send(1)
		p.Sleep(10)
		ch.Send(2)
	})
	k.Run()
	if strings.Join(winners, ",") != "early,late" {
		t.Fatalf("winners = %v", winners)
	}
}

func TestChanTryRecv(t *testing.T) {
	k := New()
	ch := NewChan[int](k)
	if _, ok := ch.TryRecv(); ok {
		t.Fatal("TryRecv on empty channel succeeded")
	}
	ch.Send(9)
	if ch.Len() != 1 {
		t.Fatalf("len = %d", ch.Len())
	}
	v, ok := ch.TryRecv()
	if !ok || v != 9 {
		t.Fatalf("TryRecv = %v, %v", v, ok)
	}
}

func TestResourceLimitsConcurrency(t *testing.T) {
	k := New()
	r := NewResource(k, 2)
	maxInUse := 0
	for i := 0; i < 5; i++ {
		k.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > maxInUse {
				maxInUse = r.InUse()
			}
			p.Sleep(10)
			r.Release()
		})
	}
	k.Run()
	if maxInUse != 2 {
		t.Fatalf("max in use = %d, want 2", maxInUse)
	}
}

func TestResourceFIFO(t *testing.T) {
	k := New()
	r := NewResource(k, 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("u", func(p *Proc) {
			p.Sleep(Time(i)) // arrive in index order
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			r.Release()
		})
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order = %v", order)
		}
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("releasing idle resource did not panic")
		}
	}()
	NewResource(New(), 1).Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewResource(New(), 0)
}

func TestWaitGroup(t *testing.T) {
	k := New()
	var wg WaitGroup
	var finishedAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		k.Spawn("worker", func(p *Proc) {
			p.Sleep(Time(i * 10))
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		finishedAt = p.Now()
	})
	k.Run()
	if finishedAt != 30 {
		t.Fatalf("waiter finished at %v, want 30", finishedAt)
	}
}

func TestWaitGroupZeroCountNoBlock(t *testing.T) {
	k := New()
	done := false
	var wg WaitGroup
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("Wait with zero count blocked")
	}
}

func TestManyProcsStress(t *testing.T) {
	k := New()
	const n = 500
	completed := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(Time(1 + (i+j)%7))
			}
			completed++
		})
	}
	k.Run()
	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
}
