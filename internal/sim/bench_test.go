package sim

import "testing"

// BenchmarkKernelAt measures raw event scheduling + dispatch throughput:
// each iteration schedules one future-time event; the queue is drained
// in batches so heap push and pop costs are both on the path.
func BenchmarkKernelAt(b *testing.B) {
	k := New()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(Time(i%16)+1, fn)
		if k.Pending() >= 1024 {
			k.Run()
		}
	}
	k.Run()
}

// BenchmarkKernelRunUntil measures dispatch of an already-built queue,
// the pattern of a simulation's main loop.
func BenchmarkKernelRunUntil(b *testing.B) {
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 4096 {
		b.StopTimer()
		k := New()
		n := 4096
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			k.At(Time(j), fn)
		}
		b.StartTimer()
		k.RunUntil(Time(n))
	}
}

// BenchmarkKernelSameInstant measures the After(0, ...) path used by
// Wake, Yield, Spawn, and Chan.Send: events scheduled for the current
// instant from inside a running event.
func BenchmarkKernelSameInstant(b *testing.B) {
	k := New()
	b.ReportAllocs()
	var fn func()
	n := 0
	fn = func() {
		if n < b.N {
			n++
			k.After(0, fn)
		}
	}
	k.After(0, fn)
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSleepWake measures one full baton handoff: the process
// sleeps, the kernel dispatches the wakeup, and the process resumes.
func BenchmarkProcSleepWake(b *testing.B) {
	k := New()
	k.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkProcSuspendWake measures the Suspend/Wake rendezvous used by
// resources, wait groups, and shared-pointer turn-taking.
func BenchmarkProcSuspendWake(b *testing.B) {
	k := New()
	var target *Proc
	target = k.Spawn("suspender", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Suspend()
		}
	})
	k.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			target.Wake()
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkChanSendRecv measures the producer/consumer handoff through
// a Chan, the cache-simulator and machine queueing substrate.
func BenchmarkChanSendRecv(b *testing.B) {
	k := New()
	c := NewChan[int](k)
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Recv(p)
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Send(i)
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSpawn measures process creation and teardown.
func BenchmarkSpawn(b *testing.B) {
	k := New()
	body := func(p *Proc) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Spawn("worker", body)
		if k.Pending() >= 256 {
			k.Run()
		}
	}
	k.Run()
}
