// Package sim implements a deterministic discrete-event simulation
// kernel with lightweight processes.
//
// The kernel maintains a virtual clock and an event queue ordered by
// (time, sequence number), so simulations are reproducible: two runs
// with the same inputs execute events in exactly the same order.
//
// Processes are goroutines that cooperate through a baton handoff:
// exactly one goroutine (either the kernel loop or a single process)
// runs at any instant, which keeps the simulation deterministic without
// locks. Processes block with Sleep, Suspend, or Chan.Recv, returning
// control to the kernel until the corresponding wakeup event fires.
package sim

import "fmt"

// Time is virtual simulation time in microseconds.
type Time int64

// Common durations in virtual microseconds.
const (
	Microsecond Time = 1
	Millisecond Time = 1000
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Seconds converts a floating-point second count to a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// ToSeconds converts t to floating-point seconds.
func (t Time) ToSeconds() float64 { return float64(t) / float64(Second) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.ToSeconds()) }

// event is one scheduled callback, ordered by (t, seq).
type event struct {
	t   Time
	seq uint64
	fn  func()
}

// Kernel is a discrete-event simulator. The zero value is ready to use.
type Kernel struct {
	now     Time
	heap    eventHeap // future events
	fifo    eventFIFO // events scheduled for the current instant
	seq     uint64
	stopped bool
	failure interface{} // panic value propagated from a process
}

// New returns a fresh kernel with the clock at zero.
func New() *Kernel { return &Kernel{} }

// Reset returns the kernel to its initial state -- clock at zero, no
// pending events, sequence counter rewound -- while keeping the event
// heap's and FIFO's backing arrays. A kernel reused across simulations
// (see core.Arena) therefore stops allocating queue storage once the
// first simulation has sized it. Resetting a kernel with live
// processes is not supported; call it only after Run has drained the
// queue.
func (k *Kernel) Reset() {
	k.now = 0
	k.seq = 0
	k.stopped = false
	k.failure = nil
	k.heap.reset()
	k.fifo.reset()
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: events must not travel backwards.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	e := event{t: t, seq: k.seq, fn: fn}
	if t == k.now {
		// Same-instant events run in scheduling order, after any heap
		// events at this instant (those were scheduled earlier and have
		// smaller sequence numbers). A FIFO serves them without heap
		// sift costs.
		k.fifo.push(e)
		return
	}
	k.heap.push(e)
}

// After schedules fn to run d after the current time. Negative delays
// panic.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+d, fn)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.heap.len() + k.fifo.len() }

// Stop makes Run and RunUntil return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty or Stop is called.
func (k *Kernel) Run() { k.RunUntil(1<<62 - 1) }

// RunUntil executes all events with time <= limit, then advances the
// clock to limit (if it is not already past it). If a process panicked,
// the panic is re-raised here on the kernel goroutine.
func (k *Kernel) RunUntil(limit Time) {
	k.stopped = false
	for !k.stopped {
		var e event
		if k.fifo.len() > 0 {
			f := k.fifo.front()
			if k.heap.len() > 0 && k.heap.ev[0].t <= f.t {
				// A heap event at the same instant was scheduled
				// before any FIFO event at that instant (and so has a
				// smaller sequence number); run it first.
				e = k.heap.pop()
			} else {
				if f.t > limit {
					break
				}
				e = k.fifo.pop()
			}
		} else if k.heap.len() > 0 {
			if k.heap.ev[0].t > limit {
				break
			}
			e = k.heap.pop()
		} else {
			break
		}
		k.now = e.t
		e.fn()
		if k.failure != nil {
			f := k.failure
			k.failure = nil
			panic(f)
		}
	}
	if k.now < limit && limit < 1<<62-1 {
		k.now = limit
	}
}
