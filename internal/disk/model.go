package disk

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Model is the drive surface the rest of the system consumes: timed
// block transfers, geometry, operation counters, the wear hook, and
// the closed-form service moments the analytical twin's M/G/1 model
// is fed with. Two models implement it: the rotating drive (*Disk,
// Config.Kind "" or "rotating") and the flash drive (Kind "flash").
type Model interface {
	// ServiceTime returns the modeled time to transfer count blocks
	// starting at block, updating the drive's position state.
	ServiceTime(block int64, count int, isWrite bool) sim.Time
	// Blocks returns the number of addressable blocks.
	Blocks() int64
	// Reads, Writes, and BusyTime report operation counters.
	Reads() int64
	Writes() int64
	BusyTime() sim.Time
	// SetWear installs a wear model; WearExtra reports the service
	// time it added.
	SetWear(Wear)
	WearExtra() sim.Time
	// ServiceMoments returns the first and second moments (in
	// seconds) of a single-block access's service time under the
	// model's random-access distribution.
	ServiceMoments() (mean, second float64)
	// Config returns the drive's configuration.
	Config() Config
}

// New builds the drive model cfg.Kind selects: "" or "rotating" is
// the position-aware rotating drive, "flash" the seekless flash
// drive. It panics on unknown kinds and invalid geometry, like every
// hardware-model constructor here; registry names are validated
// earlier via Drive.
func New(cfg Config) Model {
	switch strings.ToLower(cfg.Kind) {
	case "", "rotating":
		return newRotating(cfg)
	case "flash":
		return newFlash(cfg)
	}
	panic(fmt.Sprintf("disk: unknown model kind %q", cfg.Kind))
}

// driveNames lists the named-drive registry in stable order.
var driveNames = [...]string{"cdc760", "nvme"}

// DriveNames returns the named-drive registry (the disk models a
// scenario's machines axis can select) in stable order.
func DriveNames() []string {
	return append([]string(nil), driveNames[:]...)
}

// Drive resolves a registry name (case-insensitive) to its drive
// configuration.
func Drive(name string) (Config, error) {
	switch strings.ToLower(name) {
	case "cdc760":
		return CDC760MB(), nil
	case "nvme":
		return NVMe(), nil
	}
	return Config{}, fmt.Errorf("disk: unknown drive %q (known: %s)",
		name, strings.Join(driveNames[:], ", "))
}
