package disk

import (
	"fmt"

	"repro/internal/sim"
)

// NVMe returns parameters for a modern NVMe-class flash drive: 1 TB,
// ~20 us access latency and 3 GB/s sustained media rate. No seek, no
// rotation; a request pays the fixed access latency plus transfer.
func NVMe() Config {
	return Config{
		Kind:           "flash",
		CapacityBytes:  1 << 40,
		BlockBytes:     4096,
		AccessLatency:  20 * sim.Microsecond,
		BytesPerSecond: 3e9,
	}
}

// flash models a solid-state drive: no mechanics, so service time is
// position-independent -- a fixed access latency plus transfer at the
// media rate. Wear maps onto the same knobs the rotating drive
// exposes: the seek multiplier inflates the access latency (the
// controller's error-correction and read-retry overhead grows as
// cells age), the transfer multiplier the media rate, and the ramp
// scales both progressively.
type flash struct {
	cfg    Config
	blocks int64

	reads     int64
	writes    int64
	busy      sim.Time
	wear      *Wear
	wearExtra sim.Time
}

func newFlash(cfg Config) *flash {
	if cfg.BlockBytes <= 0 || cfg.CapacityBytes <= 0 {
		panic("disk: invalid flash geometry")
	}
	if cfg.BytesPerSecond <= 0 {
		panic("disk: invalid transfer rate")
	}
	if cfg.AccessLatency < 0 {
		panic("disk: negative access latency")
	}
	return &flash{cfg: cfg, blocks: cfg.CapacityBytes / int64(cfg.BlockBytes)}
}

func (f *flash) Config() Config     { return f.cfg }
func (f *flash) Blocks() int64      { return f.blocks }
func (f *flash) Reads() int64       { return f.reads }
func (f *flash) Writes() int64      { return f.writes }
func (f *flash) BusyTime() sim.Time { return f.busy }

func (f *flash) SetWear(w Wear) { f.wear = &w }

func (f *flash) WearExtra() sim.Time { return f.wearExtra }

// ServiceTime implements Model. Every request costs the same for a
// given size: flash has no head position for the request stream to
// exploit, which is exactly what moves the system bottleneck off the
// drive (see PERFORMANCE.md).
func (f *flash) ServiceTime(block int64, count int, isWrite bool) sim.Time {
	if count <= 0 {
		panic(fmt.Sprintf("disk: non-positive block count %d", count))
	}
	if block < 0 || block+int64(count) > f.blocks {
		panic(fmt.Sprintf("disk: blocks [%d,%d) out of range [0,%d)", block, block+int64(count), f.blocks))
	}
	if isWrite {
		f.writes++
	} else {
		f.reads++
	}
	access := f.cfg.AccessLatency
	bytes := int64(count) * int64(f.cfg.BlockBytes)
	transfer := sim.Time(float64(bytes) / f.cfg.BytesPerSecond * float64(sim.Second))
	total := access + transfer
	if f.wear != nil {
		ramp := 1.0
		if f.wear.RampPerHour > 0 && f.wear.Now != nil {
			ramp += f.wear.RampPerHour * f.wear.Now().ToSeconds() / 3600
		}
		am, tm := f.wear.SeekMul, f.wear.TransferMul
		if am < 1 {
			am = 1
		}
		if tm < 1 {
			tm = 1
		}
		worn := sim.Time(float64(access)*am*ramp) + sim.Time(float64(transfer)*tm*ramp)
		f.wearExtra += worn - total
		total = worn
	}
	f.busy += total
	return total
}

// ServiceMoments implements Model: a single-block access costs the
// same every time, so the distribution is deterministic and the
// second moment is the squared mean.
func (f *flash) ServiceMoments() (mean, second float64) {
	mean = f.cfg.AccessLatency.ToSeconds() + float64(f.cfg.BlockBytes)/f.cfg.BytesPerSecond
	return mean, mean * mean
}
