package disk

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestGeometry(t *testing.T) {
	d := New(CDC760MB())
	wantBlocks := int64(760<<20) / 4096
	if d.Blocks() != wantBlocks {
		t.Fatalf("blocks = %d, want %d", d.Blocks(), wantBlocks)
	}
	if d.Config().BlockBytes != 4096 {
		t.Fatalf("block bytes = %d", d.Config().BlockBytes)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := []Config{
		{CapacityBytes: 0, BlockBytes: 4096, Cylinders: 10, BytesPerSecond: 1},
		{CapacityBytes: 1 << 20, BlockBytes: 0, Cylinders: 10, BytesPerSecond: 1},
		{CapacityBytes: 1 << 20, BlockBytes: 4096, Cylinders: 0, BytesPerSecond: 1},
		{CapacityBytes: 1 << 20, BlockBytes: 4096, Cylinders: 10, BytesPerSecond: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

// TestSingleCylinderSeekFinite is the regression test for the
// seekTime divide-by-zero: a one-cylinder drive has a zero-length
// stroke, so normalizing the seek distance by Cylinders-1 used to
// compute dist/0 and poison every downstream service time with NaN.
// The stroke clamp bounds any seek on degenerate geometry by the
// full-stroke cost instead.
func TestSingleCylinderSeekFinite(t *testing.T) {
	cfg := CDC760MB()
	cfg.CapacityBytes = 1 << 20
	cfg.Cylinders = 1
	d := New(cfg).(*Disk)
	if got := d.seekTime(0, 0); got != 0 {
		t.Fatalf("seekTime(0,0) = %v, want 0", got)
	}
	// cylinderOf can never produce two distinct cylinders on this
	// geometry, but seekTime itself must still be total: a nonzero
	// distance over the clamped stroke costs exactly the full-stroke
	// seek, not Inf or NaN.
	if got := d.seekTime(1, 0); got != cfg.MaxSeek {
		t.Fatalf("seekTime(1,0) = %v, want MaxSeek %v", got, cfg.MaxSeek)
	}
	var total sim.Time
	for i := 0; i < 32; i++ {
		block := (int64(i) * 37) % d.Blocks()
		st := d.ServiceTime(block, 1, false)
		if st <= 0 {
			t.Fatalf("ServiceTime(%d) = %v, want finite positive", block, st)
		}
		total += st
	}
	if total <= 0 || total > sim.Time(32)*(cfg.MaxSeek+cfg.RotationPeriod+sim.Second) {
		t.Fatalf("accumulated single-cylinder service time %v out of bounds", total)
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	seqDisk := New(CDC760MB())
	var seq sim.Time
	for b := int64(0); b < 100; b++ {
		seq += seqDisk.ServiceTime(b, 1, false)
	}
	rndDisk := New(CDC760MB())
	var rnd sim.Time
	for i := 0; i < 100; i++ {
		// Jump across the disk in big strides.
		block := (int64(i) * 104729) % rndDisk.Blocks()
		rnd += rndDisk.ServiceTime(block, 1, false)
	}
	if seq*2 >= rnd {
		t.Fatalf("sequential %v not much cheaper than random %v", seq, rnd)
	}
}

func TestSequentialFollowOnSkipsRotation(t *testing.T) {
	d := New(CDC760MB())
	first := d.ServiceTime(0, 1, false)
	second := d.ServiceTime(1, 1, false)
	if second >= first {
		t.Fatalf("follow-on %v should be cheaper than cold %v", second, first)
	}
}

func TestLargerTransfersTakeLonger(t *testing.T) {
	a := New(CDC760MB())
	small := a.ServiceTime(0, 1, false)
	b := New(CDC760MB())
	large := b.ServiceTime(0, 64, false)
	if large <= small {
		t.Fatalf("64-block %v <= 1-block %v", large, small)
	}
}

func TestCountersTrackOps(t *testing.T) {
	d := New(CDC760MB())
	d.ServiceTime(0, 1, false)
	d.ServiceTime(1, 1, true)
	d.ServiceTime(2, 1, true)
	if d.Reads() != 1 || d.Writes() != 2 {
		t.Fatalf("reads=%d writes=%d", d.Reads(), d.Writes())
	}
	if d.BusyTime() <= 0 {
		t.Fatal("busy time not accumulated")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(CDC760MB())
	for _, tc := range []struct {
		block int64
		count int
	}{
		{-1, 1},
		{d.Blocks(), 1},
		{d.Blocks() - 1, 2},
		{0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("block=%d count=%d did not panic", tc.block, tc.count)
				}
			}()
			d.ServiceTime(tc.block, tc.count, false)
		}()
	}
}

func TestFullStrokeSeekCostsMost(t *testing.T) {
	d := New(CDC760MB())
	d.ServiceTime(0, 1, false)
	farTime := d.ServiceTime(d.Blocks()-1, 1, false)
	d2 := New(CDC760MB())
	d2.ServiceTime(0, 1, false)
	nearTime := d2.ServiceTime(d2.Blocks()/100, 1, false)
	if farTime <= nearTime {
		t.Fatalf("full-stroke %v <= short seek %v", farTime, nearTime)
	}
}

// Property: service time is always positive and bounded by a sane
// ceiling (seek + rotation + transfer of the whole request).
func TestQuickServiceTimeBounds(t *testing.T) {
	cfg := CDC760MB()
	d := New(cfg)
	f := func(blockRaw uint32, countRaw uint8) bool {
		count := int(countRaw%64) + 1
		block := int64(blockRaw) % (d.Blocks() - int64(count))
		got := d.ServiceTime(block, count, false)
		if got <= 0 {
			return false
		}
		bytes := float64(count) * float64(cfg.BlockBytes)
		ceiling := cfg.MaxSeek + cfg.RotationPeriod +
			sim.Time(bytes/cfg.BytesPerSecond*float64(sim.Second)) + sim.Millisecond
		return got <= ceiling
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: op counters equal the number of calls.
func TestQuickCountersConsistent(t *testing.T) {
	f := func(ops []bool) bool {
		d := New(CDC760MB())
		for _, w := range ops {
			d.ServiceTime(0, 1, w)
		}
		return d.Reads()+d.Writes() == int64(len(ops))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomAccessMoments cross-checks the closed-form moments (the
// 8/15 and 1/3 uniform-|x-y| constants) against a Monte-Carlo sample
// of the same service model: seek between two uniform cylinder
// fractions, half a revolution, one block at media rate.
func TestRandomAccessMoments(t *testing.T) {
	cfg := CDC760MB()
	mean, second := cfg.RandomAccessMoments()
	if second <= mean*mean {
		t.Fatalf("second moment %v <= mean^2 %v: no variance", second, mean*mean)
	}

	minS := cfg.MinSeek.ToSeconds()
	deltaS := (cfg.MaxSeek - cfg.MinSeek).ToSeconds()
	fixed := cfg.RotationPeriod.ToSeconds()/2 + float64(cfg.BlockBytes)/cfg.BytesPerSecond
	// Deterministic low-discrepancy sample over the unit square.
	const n = 2000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := (float64(i) + 0.5) / n
			y := (float64(j) + 0.5) / n
			d := x - y
			if d < 0 {
				d = -d
			}
			s := minS + deltaS*sqrt(d) + fixed
			sum += s
			sumSq += s * s
		}
	}
	gotMean := sum / (n * n)
	gotSecond := sumSq / (n * n)
	if rel := abs(gotMean-mean) / mean; rel > 1e-3 {
		t.Errorf("mean: closed form %v vs sampled %v (rel %v)", mean, gotMean, rel)
	}
	if rel := abs(gotSecond-second) / second; rel > 1e-3 {
		t.Errorf("second moment: closed form %v vs sampled %v (rel %v)", second, gotSecond, rel)
	}
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
