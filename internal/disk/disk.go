// Package disk models the timing of the single 760 MB SCSI drive that
// each iPSC/860 I/O node owned.
//
// The model is deterministic and position-aware: a request pays a seek
// cost proportional to the square root of the cylinder distance (a
// standard approximation of arm acceleration), an average rotational
// latency, and a transfer cost at the media rate. Requests to the
// cylinder under the head pay no seek. The drive is a serial resource:
// callers serialize access through a sim.Resource in the I/O node.
package disk

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Config describes a drive's geometry and speeds. The mechanical
// fields (cylinders, seeks, rotation) apply to the rotating model;
// AccessLatency to the flash model.
type Config struct {
	CapacityBytes  int64    // total capacity
	BlockBytes     int      // file-system block size (4096 on CFS)
	Cylinders      int      // number of cylinders
	MinSeek        sim.Time // single-track seek
	MaxSeek        sim.Time // full-stroke seek
	RotationPeriod sim.Time // one revolution
	BytesPerSecond float64  // media transfer rate
	// Kind selects the drive model: "" or "rotating" for the
	// position-aware mechanical drive, "flash" for a seekless drive
	// paying a fixed access latency per request (see New).
	Kind string
	// AccessLatency is the flash model's fixed per-request latency,
	// covering controller and protocol overhead.
	AccessLatency sim.Time
}

// CDC760MB returns parameters approximating the ~760 MB SCSI drives on
// the NAS iPSC/860 I/O nodes: ~16.7 ms revolution (3600 RPM), 2 ms
// track-to-track, 25 ms full stroke, ~1.5 MB/s media rate.
func CDC760MB() Config {
	return Config{
		CapacityBytes:  760 << 20,
		BlockBytes:     4096,
		Cylinders:      1632,
		MinSeek:        2 * sim.Millisecond,
		MaxSeek:        25 * sim.Millisecond,
		RotationPeriod: sim.Time(16667 * sim.Microsecond),
		BytesPerSecond: 1.5e6,
	}
}

// Wear degrades the drive's mechanics: seek and transfer costs are
// multiplied by the given factors, both additionally scaled by a
// progressive ramp of (1 + RampPerHour * simulated hours), read off
// the Now clock. Rotational latency is unaffected (the spindle keeps
// its speed; the arm and the head electronics age). Multipliers below
// 1 are treated as 1.
type Wear struct {
	SeekMul     float64
	TransferMul float64
	RampPerHour float64
	Now         func() sim.Time // simulation clock for the ramp
}

// Disk models one drive. It tracks head position so that sequential
// block streams are much cheaper than random ones, which is what makes
// request coalescing (the point of the paper's caching discussion)
// matter.
type Disk struct {
	cfg       Config
	headCyl   int
	nextBlock int64 // block following the last transfer; -1 when cold
	blocks    int64
	blocksPer int64 // blocks per cylinder
	reads     int64
	writes    int64
	busy      sim.Time // accumulated service time
	wear      *Wear    // nil on a healthy drive
	wearExtra sim.Time // service time added by wear
}

// SetWear installs a wear model on the drive. Call it before the
// simulation starts.
func (d *Disk) SetWear(w Wear) { d.wear = &w }

// WearExtra reports the total service time added by wear.
func (d *Disk) WearExtra() sim.Time { return d.wearExtra }

// newRotating returns a drive with the head parked at cylinder 0.
func newRotating(cfg Config) *Disk {
	if cfg.BlockBytes <= 0 || cfg.CapacityBytes <= 0 || cfg.Cylinders <= 0 {
		panic("disk: invalid geometry")
	}
	if cfg.BytesPerSecond <= 0 {
		panic("disk: invalid transfer rate")
	}
	blocks := cfg.CapacityBytes / int64(cfg.BlockBytes)
	per := blocks / int64(cfg.Cylinders)
	if per == 0 {
		per = 1
	}
	return &Disk{cfg: cfg, blocks: blocks, blocksPer: per, nextBlock: -1}
}

// Config returns the drive's configuration.
func (d *Disk) Config() Config { return d.cfg }

// Blocks returns the number of addressable blocks.
func (d *Disk) Blocks() int64 { return d.blocks }

// Reads and Writes report operation counts; BusyTime the summed
// service time.
func (d *Disk) Reads() int64       { return d.reads }
func (d *Disk) Writes() int64      { return d.writes }
func (d *Disk) BusyTime() sim.Time { return d.busy }

// cylinderOf maps a block number to its cylinder.
func (d *Disk) cylinderOf(block int64) int {
	c := int(block / d.blocksPer)
	if c >= d.cfg.Cylinders {
		c = d.cfg.Cylinders - 1
	}
	return c
}

// seekTime returns the arm movement cost between cylinders.
func (d *Disk) seekTime(from, to int) sim.Time {
	if from == to {
		return 0
	}
	dist := float64(from - to)
	if dist < 0 {
		dist = -dist
	}
	// A single-cylinder drive has no seek distance to normalize by;
	// clamping the stroke length keeps the fraction finite (from == to
	// is caught above, but degenerate geometry must never yield NaN).
	stroke := float64(d.cfg.Cylinders - 1)
	if stroke < 1 {
		stroke = 1
	}
	frac := math.Sqrt(dist / stroke)
	return d.cfg.MinSeek + sim.Time(frac*float64(d.cfg.MaxSeek-d.cfg.MinSeek))
}

// ServiceTime returns the modeled time to transfer count blocks
// starting at block, and moves the head there. It panics on
// out-of-range requests: callers (the CFS I/O node) own allocation and
// must never issue a bad block address.
func (d *Disk) ServiceTime(block int64, count int, isWrite bool) sim.Time {
	if count <= 0 {
		panic(fmt.Sprintf("disk: non-positive block count %d", count))
	}
	if block < 0 || block+int64(count) > d.blocks {
		panic(fmt.Sprintf("disk: blocks [%d,%d) out of range [0,%d)", block, block+int64(count), d.blocks))
	}
	target := d.cylinderOf(block)
	seek := d.seekTime(d.headCyl, target)
	var rot sim.Time
	if block != d.nextBlock {
		// Any non-sequential access pays half a revolution on
		// average; a purely sequential follow-on request catches
		// the platter in position.
		rot = d.cfg.RotationPeriod / 2
	}
	bytes := int64(count) * int64(d.cfg.BlockBytes)
	transfer := sim.Time(float64(bytes) / d.cfg.BytesPerSecond * float64(sim.Second))
	d.headCyl = d.cylinderOf(block + int64(count) - 1)
	d.nextBlock = block + int64(count)
	if isWrite {
		d.writes++
	} else {
		d.reads++
	}
	total := seek + rot + transfer
	if d.wear != nil {
		worn := d.wornTime(seek, transfer) + rot
		d.wearExtra += worn - total
		total = worn
	}
	d.busy += total
	return total
}

// wornTime applies the wear model to the mechanical components of one
// request.
func (d *Disk) wornTime(seek, transfer sim.Time) sim.Time {
	ramp := 1.0
	if d.wear.RampPerHour > 0 && d.wear.Now != nil {
		ramp += d.wear.RampPerHour * d.wear.Now().ToSeconds() / 3600
	}
	sm, tm := d.wear.SeekMul, d.wear.TransferMul
	if sm < 1 {
		sm = 1
	}
	if tm < 1 {
		tm = 1
	}
	return sim.Time(float64(seek)*sm*ramp) + sim.Time(float64(transfer)*tm*ramp)
}

// RandomAccessMoments returns the first and second moments (in
// seconds) of the service time of a single-block access at a
// uniformly random block from a uniformly random head position: the
// closed-form service distribution an M/G/1 model of the drive is fed
// with. With from and to cylinders independent uniform on [0, 1), the
// seek fraction sqrt(|from-to|) has E = 8/15 and E[.^2] = 1/3, and a
// random block is almost surely non-sequential, so rotation
// contributes a deterministic half revolution.
// ServiceMoments implements Model with the drive's closed-form
// random-access distribution.
func (d *Disk) ServiceMoments() (mean, second float64) {
	return d.cfg.RandomAccessMoments()
}

func (c Config) RandomAccessMoments() (mean, second float64) {
	minS := c.MinSeek.ToSeconds()
	deltaS := (c.MaxSeek - c.MinSeek).ToSeconds()
	meanSeek := minS + deltaS*8.0/15.0
	secondSeek := minS*minS + 2*minS*deltaS*8.0/15.0 + deltaS*deltaS/3.0
	fixed := c.RotationPeriod.ToSeconds()/2 + float64(c.BlockBytes)/c.BytesPerSecond
	mean = meanSeek + fixed
	second = secondSeek + 2*meanSeek*fixed + fixed*fixed
	return mean, second
}
