package cachesim

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

const bs = 4096

func read(job uint32, node uint16, file uint64, off, size int64) trace.Event {
	return trace.Event{Type: trace.EvRead, Job: job, Node: node, File: file, Offset: off, Size: size}
}

func write(job uint32, node uint16, file uint64, off, size int64) trace.Event {
	return trace.Event{Type: trace.EvWrite, Job: job, Node: node, File: file, Offset: off, Size: size}
}

func TestReadOnlyFiles(t *testing.T) {
	events := []trace.Event{
		read(1, 0, 1, 0, 100),
		read(1, 0, 2, 0, 100),
		write(1, 0, 2, 0, 100), // file 2 is read-write
		write(1, 0, 3, 0, 100), // file 3 is write-only
	}
	ro := ReadOnlyFiles(events)
	if !ro[1] || ro[2] || ro[3] {
		t.Fatalf("read-only set = %v", ro)
	}
}

func TestComputeNodeCacheSmallSequentialHits(t *testing.T) {
	// 100-byte sequential reads: ~40 reads per 4 KB block, so a single
	// buffer yields a very high hit rate. This is the paper's
	// high-hit-rate job clump.
	var events []trace.Event
	for off := int64(0); off < 40960; off += 100 {
		events = append(events, read(1, 0, 5, off, 100))
	}
	res := ComputeNodeCache(events, bs, 1)
	if len(res) != 1 {
		t.Fatalf("jobs = %d", len(res))
	}
	if r := res[0].Rate(); r < 0.9 {
		t.Fatalf("sequential small reads hit rate = %v", r)
	}
}

func TestComputeNodeCacheLargeStrideMisses(t *testing.T) {
	// Interleaved reads with a stride larger than a block never hit:
	// the paper's 0%-hit-rate clump.
	var events []trace.Event
	for i := int64(0); i < 100; i++ {
		events = append(events, read(2, 0, 5, i*12800, 100))
	}
	res := ComputeNodeCache(events, bs, 1)
	if res[0].Hits != 0 {
		t.Fatalf("strided reads got %d hits", res[0].Hits)
	}
}

func TestComputeNodeCacheIgnoresWrittenFiles(t *testing.T) {
	events := []trace.Event{
		write(1, 0, 7, 0, 100),
		read(1, 0, 7, 0, 100),
		read(1, 0, 7, 0, 100), // would hit, but file is read-write
	}
	res := ComputeNodeCache(events, bs, 1)
	if len(res) != 0 {
		t.Fatalf("read-write file simulated: %+v", res)
	}
}

func TestComputeNodeCachePerNodeIsolation(t *testing.T) {
	// Two nodes read the same block; each node's first read must miss
	// (caches are per node, not shared).
	events := []trace.Event{
		read(1, 0, 5, 0, 100),
		read(1, 1, 5, 0, 100),
		read(1, 0, 5, 100, 100),
		read(1, 1, 5, 100, 100),
	}
	res := ComputeNodeCache(events, bs, 1)
	if res[0].Accesses != 4 || res[0].Hits != 2 {
		t.Fatalf("accesses=%d hits=%d, want 4/2", res[0].Accesses, res[0].Hits)
	}
}

func TestComputeNodeCacheMultiFileNeedsMoreBuffers(t *testing.T) {
	// Alternating reads from two files: one buffer thrashes, two
	// buffers capture both streams (the paper's "a single buffer per
	// file would have been appropriate").
	var events []trace.Event
	for i := int64(0); i < 40; i++ {
		events = append(events, read(1, 0, 1, i*100, 100))
		events = append(events, read(1, 0, 2, i*100, 100))
	}
	one := ComputeNodeCache(events, bs, 1)[0].Rate()
	two := ComputeNodeCache(events, bs, 2)[0].Rate()
	if one >= two {
		t.Fatalf("1 buffer %v should underperform 2 buffers %v", one, two)
	}
	if two < 0.9 {
		t.Fatalf("2-buffer rate = %v", two)
	}
}

func TestComputeNodeCacheMultiBlockRequestNeedsAllBlocks(t *testing.T) {
	events := []trace.Event{
		read(1, 0, 5, 0, 100),     // loads block 0
		read(1, 0, 5, 0, 2*4096),  // spans blocks 0-1: block 1 missing -> miss
		read(1, 0, 5, 4096, 4096), // block 1 now resident (2 buffers) -> hit
	}
	res := ComputeNodeCache(events, bs, 2)
	if res[0].Hits != 1 {
		t.Fatalf("hits = %d, want 1", res[0].Hits)
	}
}

func TestComputeNodeCachePanicsOnBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { ComputeNodeCache(nil, 0, 1) },
		func() { ComputeNodeCache(nil, bs, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestIONodeCacheInterprocessLocality(t *testing.T) {
	// 8 nodes read the same file's blocks one after another: the first
	// touch of each block misses, the other 7 hit. Hit rate -> 7/8.
	var events []trace.Event
	for blk := int64(0); blk < 50; blk++ {
		for node := uint16(0); node < 8; node++ {
			events = append(events, read(1, node, 9, blk*4096, 4096))
		}
	}
	res := IONodeCache(events, bs, 10, 1000, LRU)
	if r := res.Rate(); r < 0.85 || r > 0.88 {
		t.Fatalf("hit rate = %v, want ~0.875", r)
	}
}

func TestIONodeCacheLRUNeedsFewerBuffersThanFIFO(t *testing.T) {
	// A workload with a hot set revisited among cold streams: LRU
	// should reach a given hit rate with fewer buffers than FIFO,
	// Figure 9's key comparison.
	var events []trace.Event
	cold := int64(10000)
	for round := 0; round < 400; round++ {
		for hot := int64(0); hot < 20; hot++ {
			events = append(events, read(1, 0, 3, hot*4096, 4096))
		}
		for i := 0; i < 30; i++ {
			events = append(events, read(1, 0, 3, cold*4096, 4096))
			cold++
		}
	}
	lru := IONodeCache(events, bs, 10, 100, LRU).Rate()
	fifo := IONodeCache(events, bs, 10, 100, FIFO).Rate()
	if lru <= fifo {
		t.Fatalf("LRU %v should beat FIFO %v at equal size", lru, fifo)
	}
}

func TestIONodeCacheHitRateGrowsWithSize(t *testing.T) {
	var events []trace.Event
	for round := 0; round < 5; round++ {
		for blk := int64(0); blk < 500; blk++ {
			events = append(events, read(1, 0, 3, blk*4096, 4096))
		}
	}
	small := IONodeCache(events, bs, 10, 50, LRU).Rate()
	large := IONodeCache(events, bs, 10, 5000, LRU).Rate()
	if large <= small {
		t.Fatalf("hit rate did not grow with cache size: %v vs %v", small, large)
	}
	if large < 0.75 {
		t.Fatalf("cache bigger than working set should approach 4/5 rate, got %v", large)
	}
}

func TestIONodeCacheCountsWrites(t *testing.T) {
	events := []trace.Event{
		write(1, 0, 5, 0, 4096),
		read(1, 0, 5, 0, 4096), // written block is cached
	}
	res := IONodeCache(events, bs, 1, 10, LRU)
	if res.Accesses != 2 || res.Hits != 1 {
		t.Fatalf("accesses=%d hits=%d", res.Accesses, res.Hits)
	}
}

func TestIONodeCachePolicyNames(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Fatal("policy names wrong")
	}
}

func TestIONodeCacheBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	IONodeCache(nil, bs, 10, 5, LRU) // fewer buffers than nodes
}

func TestCombinedFiltersIntraprocessLocality(t *testing.T) {
	// Two access patterns:
	//  - node 0 re-reads one block many times (intraprocess locality:
	//    absorbed by its single buffer);
	//  - nodes 1..4 read a shared file interleaved at block stride
	//    (interprocess locality: only the I/O cache can capture it).
	var events []trace.Event
	for i := 0; i < 100; i++ {
		events = append(events, read(1, 0, 1, 0, 100))
	}
	for blk := int64(0); blk < 100; blk++ {
		for node := uint16(1); node <= 4; node++ {
			events = append(events, read(2, node, 2, blk*4096, 1024))
		}
	}
	res := Combined(events, bs, 10, 50)
	if res.ComputeHits < 95 {
		t.Fatalf("compute-node layer absorbed only %d hits", res.ComputeHits)
	}
	alone, filtered := res.IONodeAlone.Rate(), res.IONodeFiltered.Rate()
	// The interprocess hits must survive filtering: the drop in
	// I/O-node hit rate should be small (the paper saw ~3%).
	if filtered < alone-0.15 {
		t.Fatalf("filtering cut I/O hit rate too much: %v -> %v", alone, filtered)
	}
	if filtered < 0.5 {
		t.Fatalf("interprocess locality lost: filtered rate %v", filtered)
	}
}

// Property: hits never exceed accesses and rates stay in [0,1] for
// arbitrary request streams.
func TestQuickCacheSimBounds(t *testing.T) {
	f := func(ops []uint32) bool {
		var events []trace.Event
		for _, op := range ops {
			ev := read(uint32(op%3), uint16(op%5), uint64(op%4), int64(op%100)*512, int64(op%9000))
			if op%7 == 0 {
				ev.Type = trace.EvWrite
			}
			events = append(events, ev)
		}
		for _, buffers := range []int{1, 10} {
			for _, jh := range ComputeNodeCache(events, bs, buffers) {
				if jh.Hits > jh.Accesses || jh.Rate() < 0 || jh.Rate() > 1 {
					return false
				}
			}
		}
		res := IONodeCache(events, bs, 10, 100, LRU)
		return res.Hits <= res.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a bigger compute-node cache never lowers a job's hit count.
func TestQuickMonotoneInBuffers(t *testing.T) {
	f := func(ops []uint16) bool {
		var events []trace.Event
		for _, op := range ops {
			events = append(events, read(1, uint16(op%2), uint64(op%3), int64(op)*256, 512))
		}
		small := ComputeNodeCache(events, bs, 1)
		big := ComputeNodeCache(events, bs, 50)
		for i := range small {
			if big[i].Hits < small[i].Hits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStridedEventsInIONodeCache(t *testing.T) {
	// A strided read touching blocks 0,2,4,... then a re-read: the
	// second pass must hit every block the first pass loaded.
	ev := trace.Event{
		Type: trace.EvReadStrided, Job: 1, Node: 0, File: 1,
		Offset: 0, Size: 1024, Stride: 8192, Count: 10,
	}
	events := []trace.Event{ev, ev}
	res := IONodeCache(events, bs, 10, 100, LRU)
	if res.Accesses != 20 || res.Hits != 10 {
		t.Fatalf("accesses=%d hits=%d, want 20/10", res.Accesses, res.Hits)
	}
}

func TestStridedEventsInComputeNodeCache(t *testing.T) {
	// A strided pattern never fits in one buffer, so it always misses
	// the compute-node cache (the batching happens below it instead).
	ev := trace.Event{
		Type: trace.EvReadStrided, Job: 1, Node: 0, File: 1,
		Offset: 0, Size: 1024, Stride: 8192, Count: 10,
	}
	res := ComputeNodeCache([]trace.Event{ev, ev}, bs, 1)
	if len(res) != 1 || res[0].Hits != 0 {
		t.Fatalf("res = %+v", res)
	}
	// With enough buffers the identical second pattern hits.
	res = ComputeNodeCache([]trace.Event{ev, ev}, bs, 50)
	if res[0].Hits != 1 {
		t.Fatalf("hits = %d, want 1", res[0].Hits)
	}
}
