// Package cachesim implements the paper's trace-driven cache
// simulations (Section 4.8): a compute-node cache over read-only files
// (Figure 8), an I/O-node cache swept over size, replacement policy,
// and I/O-node count (Figure 9), and the combined configuration that
// showed compute-node caches remove only ~3% of the I/O-node cache's
// hits (because most of those hits come from interprocess locality).
package cachesim

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/trace"
)

// blockSpan returns the first and last 4 KB block indexes a request
// touches, and whether it touches any.
func blockSpan(off, size, blockBytes int64) (first, last int64, ok bool) {
	if size <= 0 {
		return 0, 0, false
	}
	return off / blockBytes, (off + size - 1) / blockBytes, true
}

// eventBlocks returns the distinct blocks a data event touches, in
// order: the request's span for plain reads/writes, the union of
// record spans for strided requests.
func eventBlocks(ev *trace.Event, blockBytes int64) []int64 {
	var blocks []int64
	if !ev.IsStrided() {
		first, last, ok := blockSpan(ev.Offset, ev.Size, blockBytes)
		if !ok {
			return nil
		}
		for b := first; b <= last; b++ {
			blocks = append(blocks, b)
		}
		return blocks
	}
	var prev int64 = -1
	ev.Records(func(off, size int64) {
		first, last, ok := blockSpan(off, size, blockBytes)
		if !ok {
			return
		}
		for b := first; b <= last; b++ {
			if b > prev {
				blocks = append(blocks, b)
				prev = b
			}
		}
	})
	return blocks
}

// ReadOnlyFiles scans a trace and returns the set of files that were
// read but never written, the population the paper's compute-node
// simulation restricts itself to (write caching would need a
// consistency protocol).
func ReadOnlyFiles(events []trace.Event) map[uint64]bool {
	read := make(map[uint64]bool)
	written := make(map[uint64]bool)
	for i := range events {
		switch events[i].Type {
		case trace.EvRead, trace.EvReadStrided:
			read[events[i].File] = true
		case trace.EvWrite, trace.EvWriteStrided:
			written[events[i].File] = true
		}
	}
	ro := make(map[uint64]bool)
	for f := range read {
		if !written[f] {
			ro[f] = true
		}
	}
	return ro
}

// JobHitRate is one job's compute-node cache outcome.
type JobHitRate struct {
	Job      uint32
	Accesses int64
	Hits     int64
}

// Rate returns the job's hit rate.
func (j JobHitRate) Rate() float64 {
	if j.Accesses == 0 {
		return 0
	}
	return float64(j.Hits) / float64(j.Accesses)
}

// ComputeNodeCache runs the Figure 8 simulation: every compute node
// holds `buffers` 4 KB read-only buffers with LRU replacement; a
// request counts as a hit only when every block it touches is already
// buffered locally (no message to an I/O node needed). Results are
// reported per job, over jobs that read read-only files.
func ComputeNodeCache(events []trace.Event, blockBytes int64, buffers int) []JobHitRate {
	if blockBytes <= 0 {
		panic("cachesim: block size must be positive")
	}
	if buffers <= 0 {
		panic("cachesim: buffer count must be positive")
	}
	ro := ReadOnlyFiles(events)

	type nodeKey struct {
		job  uint32
		node uint16
	}
	caches := make(map[nodeKey]*cache.LRU)
	perJob := make(map[uint32]*JobHitRate)
	var jobOrder []uint32

	for i := range events {
		ev := &events[i]
		if (ev.Type != trace.EvRead && ev.Type != trace.EvReadStrided) || !ro[ev.File] {
			continue
		}
		blocks := eventBlocks(ev, blockBytes)
		if len(blocks) == 0 {
			continue
		}
		key := nodeKey{ev.Job, ev.Node}
		c := caches[key]
		if c == nil {
			c = cache.NewLRU(buffers)
			caches[key] = c
		}
		jh := perJob[ev.Job]
		if jh == nil {
			jh = &JobHitRate{Job: ev.Job}
			perJob[ev.Job] = jh
			jobOrder = append(jobOrder, ev.Job)
		}
		hit := true
		for _, b := range blocks {
			if !c.Contains(cache.BlockID{File: ev.File, Block: b}) {
				hit = false
			}
		}
		jh.Accesses++
		if hit {
			jh.Hits++
		}
		// Touch (and on miss, load) the request's blocks.
		for _, b := range blocks {
			c.Access(cache.BlockID{File: ev.File, Block: b})
		}
	}
	out := make([]JobHitRate, 0, len(jobOrder))
	for _, job := range jobOrder {
		out = append(out, *perJob[job])
	}
	return out
}

// Policy selects the I/O-node cache replacement policy.
type Policy int

// Replacement policies available to the I/O-node simulation: the
// paper's Figure 9 pair (LRU, FIFO) plus the two approximations the
// scenario engine sweeps against them (Clock second-chance and
// segmented LRU).
const (
	LRU Policy = iota
	FIFO
	Clock
	SLRU
)

// policyNames indexes Policy values; the order defines both String()
// and the stable registry names used by scenario specs.
var policyNames = [...]string{"LRU", "FIFO", "Clock", "SLRU"}

// String names the policy.
func (p Policy) String() string {
	if p < 0 || int(p) >= len(policyNames) {
		return fmt.Sprintf("Policy(%d)", int(p))
	}
	return policyNames[p]
}

// AllPolicies returns every policy, in registry order.
func AllPolicies() []Policy {
	return []Policy{LRU, FIFO, Clock, SLRU}
}

// PolicyNames returns the stable registry names, in policy order.
func PolicyNames() []string {
	return append([]string(nil), policyNames[:]...)
}

// ParsePolicy resolves a registry name (case-insensitive) to its
// policy.
func ParsePolicy(name string) (Policy, error) {
	for i, n := range policyNames {
		if strings.EqualFold(name, n) {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("cachesim: unknown cache policy %q (known: %s)",
		name, strings.Join(policyNames[:], ", "))
}

func newCache(p Policy, buffers int) cache.Cache {
	switch p {
	case LRU:
		return cache.NewLRU(buffers)
	case FIFO:
		return cache.NewFIFO(buffers)
	case Clock:
		return cache.NewClock(buffers)
	case SLRU:
		return cache.NewSLRU(buffers)
	default:
		panic(fmt.Sprintf("cachesim: unknown policy %d", int(p)))
	}
}

// IONodeResult is one point on a Figure 9 curve.
type IONodeResult struct {
	Policy       Policy
	IONodes      int
	TotalBuffers int
	Accesses     int64
	Hits         int64
}

// Rate returns the configuration's overall hit rate.
func (r IONodeResult) Rate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// IONodeCache runs the Figure 9 simulation: the file system's blocks
// are striped round-robin over ioNodes I/O nodes at one-block
// granularity; totalBuffers 4 KB buffers are divided evenly among the
// I/O nodes; every read and write request in the trace touches its
// blocks at the responsible nodes. No compute-node cache is used.
func IONodeCache(events []trace.Event, blockBytes int64, ioNodes, totalBuffers int, policy Policy) IONodeResult {
	if ioNodes <= 0 || totalBuffers < ioNodes {
		panic(fmt.Sprintf("cachesim: bad I/O cache config: %d nodes, %d buffers", ioNodes, totalBuffers))
	}
	caches := make([]cache.Cache, ioNodes)
	per := totalBuffers / ioNodes
	for i := range caches {
		caches[i] = newCache(policy, per)
	}
	res := IONodeResult{Policy: policy, IONodes: ioNodes, TotalBuffers: totalBuffers}
	for i := range events {
		ev := &events[i]
		if !ev.IsData() {
			continue
		}
		for _, b := range eventBlocks(ev, blockBytes) {
			c := caches[int(b%int64(ioNodes))]
			res.Accesses++
			if c.Access(cache.BlockID{File: ev.File, Block: b}) {
				res.Hits++
			}
		}
	}
	return res
}

// CombinedResult reports the Section 4.8 combined experiment.
type CombinedResult struct {
	IONodeAlone    IONodeResult // I/O-node caches only
	IONodeFiltered IONodeResult // with 1-buffer compute-node caches in front
	ComputeHits    int64        // requests absorbed by the compute-node buffers
}

// Combined runs the paper's final experiment: one 4 KB buffer per
// compute node (read-only files, LRU) in front of a cache at each of
// ioNodes I/O nodes with buffersPerIONode buffers. It returns the
// I/O-node hit rate with and without the compute-node layer; the paper
// measured only a ~3% drop, evidence that I/O-node hits come mostly
// from *interprocess* locality that no per-node cache can capture.
func Combined(events []trace.Event, blockBytes int64, ioNodes, buffersPerIONode int) CombinedResult {
	return CombinedPolicy(events, blockBytes, ioNodes, buffersPerIONode, LRU)
}

// CombinedPolicy is Combined with a selectable I/O-node replacement
// policy (the compute-node layer stays a single LRU buffer, the
// paper's configuration).
func CombinedPolicy(events []trace.Event, blockBytes int64, ioNodes, buffersPerIONode int, policy Policy) CombinedResult {
	total := ioNodes * buffersPerIONode
	res := CombinedResult{
		IONodeAlone: IONodeCache(events, blockBytes, ioNodes, total, policy),
	}

	ro := ReadOnlyFiles(events)
	type nodeKey struct {
		job  uint32
		node uint16
	}
	frontCaches := make(map[nodeKey]*cache.LRU)
	ioCaches := make([]cache.Cache, ioNodes)
	for i := range ioCaches {
		ioCaches[i] = newCache(policy, buffersPerIONode)
	}
	filtered := IONodeResult{Policy: policy, IONodes: ioNodes, TotalBuffers: total}

	for i := range events {
		ev := &events[i]
		if !ev.IsData() {
			continue
		}
		blocks := eventBlocks(ev, blockBytes)
		if len(blocks) == 0 {
			continue
		}
		// The compute-node layer can fully absorb a read of read-only
		// data if all its blocks are buffered locally.
		if (ev.Type == trace.EvRead || ev.Type == trace.EvReadStrided) && ro[ev.File] {
			key := nodeKey{ev.Job, ev.Node}
			c := frontCaches[key]
			if c == nil {
				c = cache.NewLRU(1)
				frontCaches[key] = c
			}
			hit := true
			for _, b := range blocks {
				if !c.Contains(cache.BlockID{File: ev.File, Block: b}) {
					hit = false
				}
			}
			for _, b := range blocks {
				c.Access(cache.BlockID{File: ev.File, Block: b})
			}
			if hit {
				res.ComputeHits++
				continue // never reaches the I/O nodes
			}
		}
		for _, b := range blocks {
			c := ioCaches[int(b%int64(ioNodes))]
			filtered.Accesses++
			if c.Access(cache.BlockID{File: ev.File, Block: b}) {
				filtered.Hits++
			}
		}
	}
	res.IONodeFiltered = filtered
	return res
}
