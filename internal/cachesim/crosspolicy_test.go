package cachesim

import (
	"testing"

	"repro/internal/trace"
)

// crossPolicyEvents builds one mixed event slice shared by every
// cross-policy test: a hot interprocess-shared set revisited between
// cold sequential streams, per-node re-reads, strided requests, and a
// few writes. All policies see exactly this slice.
func crossPolicyEvents() []trace.Event {
	var events []trace.Event
	cold := int64(100000)
	for round := 0; round < 60; round++ {
		// Hot shared blocks, touched by several nodes (interprocess
		// locality, the paper's main I/O-node cache effect).
		for hot := int64(0); hot < 25; hot++ {
			for node := uint16(0); node < 3; node++ {
				events = append(events, read(1, node, 3, hot*4096, 4096))
			}
		}
		// A cold stream that washes through the cache.
		for i := 0; i < 200; i++ {
			events = append(events, read(2, 1, 4, cold*4096, 4096))
			cold++
		}
		// Per-node small sequential re-reads (intraprocess locality).
		for i := int64(0); i < 10; i++ {
			events = append(events, read(3, 2, 5, i*100, 100))
		}
		// Strided reads and checkpoint-style writes.
		events = append(events, trace.Event{
			Type: trace.EvReadStrided, Job: 4, Node: 3, File: 6,
			Offset: int64(round%4) * 1024, Size: 1024, Stride: 8192, Count: 10,
		})
		events = append(events, write(5, 0, 7, int64(round)*4096, 4096))
	}
	return events
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	all := AllPolicies()
	if len(names) != len(all) {
		t.Fatalf("%d names, %d policies", len(names), len(all))
	}
	for i, p := range all {
		if p.String() != names[i] {
			t.Fatalf("policy %d: String=%q names[%d]=%q", i, p.String(), i, names[i])
		}
		got, err := ParsePolicy(names[i])
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", names[i], got, err)
		}
		// Case-insensitive.
		if got, err := ParsePolicy(stringsLower(names[i])); err != nil || got != p {
			t.Fatalf("ParsePolicy lowercase %q failed: %v, %v", names[i], got, err)
		}
	}
	if _, err := ParsePolicy("second-chance"); err == nil {
		t.Fatal("unknown policy name parsed")
	}
	if s := Policy(99).String(); s != "Policy(99)" {
		t.Fatalf("out-of-range String() = %q", s)
	}
}

func stringsLower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// TestIONodeCacheCrossPolicy runs the same event slice through every
// policy at a ladder of buffer counts and checks the cross-policy
// contracts: identical access counts (the trace decides accesses, the
// policy only hits), hit counts within bounds, LRU monotone in buffer
// count (it is a stack algorithm; FIFO and Clock may legally exhibit
// Belady's anomaly), and every policy converging to the same
// compulsory-miss-only hit count once the cache holds the whole
// working set.
func TestIONodeCacheCrossPolicy(t *testing.T) {
	events := crossPolicyEvents()
	buffers := []int{10, 50, 250, 1000, 4000, 20000}
	const ioNodes = 10

	results := make(map[Policy][]IONodeResult)
	for _, p := range AllPolicies() {
		for _, b := range buffers {
			results[p] = append(results[p], IONodeCache(events, bs, ioNodes, b, p))
		}
	}

	want := results[LRU][0].Accesses
	if want == 0 {
		t.Fatal("no accesses simulated")
	}
	for _, p := range AllPolicies() {
		for i, r := range results[p] {
			if r.Accesses != want {
				t.Fatalf("%s @%d buffers: %d accesses, want %d (policy must not change the access stream)",
					p, buffers[i], r.Accesses, want)
			}
			if r.Hits < 0 || r.Hits > r.Accesses {
				t.Fatalf("%s @%d buffers: hits %d out of bounds", p, buffers[i], r.Hits)
			}
			if r.Policy != p || r.IONodes != ioNodes || r.TotalBuffers != buffers[i] {
				t.Fatalf("%s @%d buffers: result metadata wrong: %+v", p, buffers[i], r)
			}
		}
	}

	// LRU is a stack algorithm: hit count is non-decreasing in size.
	for i := 1; i < len(buffers); i++ {
		if results[LRU][i].Hits < results[LRU][i-1].Hits {
			t.Fatalf("LRU hits decreased with more buffers: %d @%d -> %d @%d",
				results[LRU][i-1].Hits, buffers[i-1], results[LRU][i].Hits, buffers[i])
		}
	}
	// Every policy: a cache bigger than the whole working set hits on
	// everything but compulsory misses, so all policies converge.
	last := len(buffers) - 1
	for _, p := range AllPolicies() {
		if got, want := results[p][last].Hits, results[LRU][last].Hits; got != want {
			t.Fatalf("%s with the full working set resident: %d hits, want %d (all policies must converge)",
				p, got, want)
		}
		if results[p][last].Hits <= results[p][0].Hits {
			t.Fatalf("%s: full-working-set cache (%d hits) not better than minimal cache (%d hits)",
				p, results[p][last].Hits, results[p][0].Hits)
		}
	}
}

// TestIONodeCacheSLRUScanResistance pins the reason SLRU is in the
// policy set: on a hot-set-plus-scans workload it needs fewer buffers
// than plain LRU for the same hit count.
func TestIONodeCacheSLRUScanResistance(t *testing.T) {
	events := crossPolicyEvents()
	// 100 total buffers over 10 nodes: the hot set fits in a node's 10
	// buffers, but each round's cold scan (20 blocks per node) exceeds
	// them, flushing LRU; SLRU's protected segment keeps the hot set.
	slru := IONodeCache(events, bs, 10, 100, SLRU)
	lru := IONodeCache(events, bs, 10, 100, LRU)
	if slru.Hits <= lru.Hits {
		t.Fatalf("SLRU (%d hits) should beat LRU (%d hits) on a scan-heavy trace at this size",
			slru.Hits, lru.Hits)
	}
}

// TestCombinedCrossPolicy runs the combined experiment under every
// policy: the compute-node front layer is policy-independent (always
// single-buffer LRU), so absorbed requests are identical, and the
// filtered I/O-node access count equals the unfiltered count minus
// the absorbed requests' blocks.
func TestCombinedCrossPolicy(t *testing.T) {
	events := crossPolicyEvents()
	var absorbed int64 = -1
	for _, p := range AllPolicies() {
		res := CombinedPolicy(events, bs, 10, 50, p)
		if absorbed == -1 {
			absorbed = res.ComputeHits
		} else if res.ComputeHits != absorbed {
			t.Fatalf("%s: compute-node layer absorbed %d requests, other policies absorbed %d",
				p, res.ComputeHits, absorbed)
		}
		if res.IONodeAlone.Policy != p || res.IONodeFiltered.Policy != p {
			t.Fatalf("%s: result policy metadata wrong: %+v", p, res)
		}
		if res.IONodeFiltered.Accesses > res.IONodeAlone.Accesses {
			t.Fatalf("%s: filtering increased I/O-node accesses: %d > %d",
				p, res.IONodeFiltered.Accesses, res.IONodeAlone.Accesses)
		}
		if res.IONodeAlone.Hits > res.IONodeAlone.Accesses ||
			res.IONodeFiltered.Hits > res.IONodeFiltered.Accesses {
			t.Fatalf("%s: hits exceed accesses: %+v", p, res)
		}
	}
	if absorbed == 0 {
		t.Fatal("workload exercised no compute-node absorption")
	}
	// Combined must stay the LRU special case.
	if got, want := Combined(events, bs, 10, 50), CombinedPolicy(events, bs, 10, 50, LRU); got != want {
		t.Fatalf("Combined != CombinedPolicy(LRU):\n%+v\n%+v", got, want)
	}
}

// TestCombinedBufferMonotonicityLRU: growing the per-node buffer count
// never loses LRU hits, with and without the compute-node layer.
func TestCombinedBufferMonotonicityLRU(t *testing.T) {
	events := crossPolicyEvents()
	var prev CombinedResult
	for i, per := range []int{5, 25, 100, 400} {
		res := CombinedPolicy(events, bs, 10, per, LRU)
		if i > 0 {
			if res.IONodeAlone.Hits < prev.IONodeAlone.Hits {
				t.Fatalf("alone hits fell from %d to %d at %d buffers/node",
					prev.IONodeAlone.Hits, res.IONodeAlone.Hits, per)
			}
			if res.IONodeFiltered.Hits < prev.IONodeFiltered.Hits {
				t.Fatalf("filtered hits fell from %d to %d at %d buffers/node",
					prev.IONodeFiltered.Hits, res.IONodeFiltered.Hits, per)
			}
		}
		prev = res
	}
}
