package machine

import (
	"testing"
	"testing/quick"
)

func TestOrderFor(t *testing.T) {
	cases := []struct {
		n     int
		order int
		ok    bool
	}{
		{1, 0, true}, {2, 1, true}, {64, 6, true}, {128, 7, true},
		{0, 0, false}, {3, 0, false}, {6, 0, false}, {-4, 0, false},
	}
	for _, tc := range cases {
		order, ok := orderFor(tc.n)
		if ok != tc.ok || (ok && order != tc.order) {
			t.Errorf("orderFor(%d) = (%d,%v), want (%d,%v)", tc.n, order, ok, tc.order, tc.ok)
		}
	}
}

func TestBuddyAllocWholeMachine(t *testing.T) {
	a := newBuddyAllocator(7)
	base, ok := a.Alloc(128)
	if !ok || base != 0 {
		t.Fatalf("alloc 128 = (%d,%v)", base, ok)
	}
	if _, ok := a.Alloc(1); ok {
		t.Fatal("allocation from a full machine succeeded")
	}
	a.Free(0)
	if a.FreeNodes() != 128 {
		t.Fatalf("free nodes = %d", a.FreeNodes())
	}
}

func TestBuddySplitAndCoalesce(t *testing.T) {
	a := newBuddyAllocator(7)
	b1, _ := a.Alloc(32)
	b2, _ := a.Alloc(32)
	b3, _ := a.Alloc(64)
	if a.FreeNodes() != 0 {
		t.Fatalf("free = %d after filling machine", a.FreeNodes())
	}
	bases := map[int]bool{b1: true, b2: true, b3: true}
	if len(bases) != 3 {
		t.Fatal("overlapping allocations")
	}
	a.Free(b1)
	a.Free(b2)
	a.Free(b3)
	if a.FreeNodes() != 128 {
		t.Fatalf("free = %d after releasing all", a.FreeNodes())
	}
	// After full coalescing, a 128-node job must fit again.
	if _, ok := a.Alloc(128); !ok {
		t.Fatal("coalescing failed: cannot allocate whole machine")
	}
}

func TestBuddySubcubeAlignment(t *testing.T) {
	a := newBuddyAllocator(7)
	for i := 0; i < 16; i++ {
		base, ok := a.Alloc(8)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if base%8 != 0 {
			t.Fatalf("8-node subcube at unaligned base %d", base)
		}
	}
}

func TestBuddyCanAlloc(t *testing.T) {
	a := newBuddyAllocator(3) // 8 nodes
	if !a.CanAlloc(8) || !a.CanAlloc(1) {
		t.Fatal("empty machine should fit anything")
	}
	if a.CanAlloc(16) || a.CanAlloc(3) {
		t.Fatal("oversized / non-power-of-2 should be unallocatable")
	}
	a.Alloc(8)
	if a.CanAlloc(1) {
		t.Fatal("full machine reported space")
	}
}

func TestBuddyFreeUnallocatedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("freeing unallocated base did not panic")
		}
	}()
	newBuddyAllocator(3).Free(0)
}

func TestBuddyBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alloc(3) did not panic")
		}
	}()
	newBuddyAllocator(3).Alloc(3)
}

// Property: allocations never overlap and never exceed the machine.
func TestQuickBuddyNoOverlap(t *testing.T) {
	f := func(ops []uint8) bool {
		a := newBuddyAllocator(6) // 64 nodes
		type alloc struct{ base, n int }
		var live []alloc
		owned := make([]bool, 64)
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				n := 1 << (op % 5) // 1..16 nodes
				base, ok := a.Alloc(n)
				if !ok {
					continue
				}
				for i := base; i < base+n; i++ {
					if owned[i] {
						return false // overlap
					}
					owned[i] = true
				}
				live = append(live, alloc{base, n})
			} else {
				idx := int(op/2) % len(live)
				al := live[idx]
				a.Free(al.base)
				for i := al.base; i < al.base+al.n; i++ {
					owned[i] = false
				}
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		inUse := 0
		for _, o := range owned {
			if o {
				inUse++
			}
		}
		return a.FreeNodes() == 64-inUse
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
