package machine

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// DriftClock models an iPSC/860 node clock: synchronized (imperfectly)
// at system startup, then drifting at a constant node-specific rate.
// The paper's postprocessing exists precisely because these clocks
// made raw trace timestamps incomparable across nodes.
//
// local(t) = offset + t * (1 + driftPPM/1e6)
type DriftClock struct {
	k        *sim.Kernel
	offset   sim.Time
	driftPPM float64
}

// NewDriftClock returns a clock with the given startup offset and
// drift rate in parts per million.
func NewDriftClock(k *sim.Kernel, offset sim.Time, driftPPM float64) *DriftClock {
	return &DriftClock{k: k, offset: offset, driftPPM: driftPPM}
}

// RandomDriftClock draws a clock with offset uniform in +/- maxOffset
// and drift uniform in +/- maxDriftPPM.
func RandomDriftClock(k *sim.Kernel, rng *stats.RNG, maxOffset sim.Time, maxDriftPPM float64) *DriftClock {
	off := sim.Time(rng.Int64n(int64(2*maxOffset+1))) - maxOffset
	drift := (rng.Float64()*2 - 1) * maxDriftPPM
	return NewDriftClock(k, off, drift)
}

// Now implements trace.Clock: the node's local reading of the current
// virtual time.
func (c *DriftClock) Now() sim.Time {
	t := float64(c.k.Now())
	return c.offset + sim.Time(t*(1+c.driftPPM/1e6))
}

// Offset returns the startup offset.
func (c *DriftClock) Offset() sim.Time { return c.offset }

// DriftPPM returns the drift rate.
func (c *DriftClock) DriftPPM() float64 { return c.driftPPM }
