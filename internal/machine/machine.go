// Package machine assembles the simulated NASA Ames iPSC/860: 128
// compute nodes on a 7-dimensional hypercube, 10 I/O nodes each hanging
// off one compute node, a service node running the CHARISMA collector,
// drifting per-node clocks, a buddy subcube allocator, and an NQS-like
// job queue. Jobs are per-node programs written against the CFS client
// API; instrumented jobs are traced through per-node 4 KB buffers
// exactly as in the paper.
package machine

import (
	"fmt"
	"sort"

	"repro/internal/cfs"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/hypercube"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Config sizes the machine.
type Config struct {
	ComputeNodes int // must be a power of two (128 at NAS)
	// Net configures the interconnect; Net.Kind selects the registered
	// topology model ("" means hypercube).
	Net              topo.Config
	FS               cfs.Config
	ServiceHost      int      // compute node the service node attaches to
	TraceBufferBytes int      // per-node trace buffer (4096)
	MaxClockOffset   sim.Time // startup clock skew bound
	MaxClockDriftPPM float64  // drift-rate bound
	Seed             uint64
	// Faults injects deterministic hardware degradation. The zero
	// value builds a healthy machine with byte-identical behavior to a
	// build that predates fault injection.
	Faults faults.Config
}

// NASConfig returns the NAS facility configuration used throughout the
// paper: 128 compute nodes, 10 I/O nodes with 760 MB disks, one
// service node, 4 KB blocks and trace buffers.
func NASConfig(seed uint64) Config {
	return Config{
		ComputeNodes:     128,
		Net:              hypercube.IPSC860(),
		FS:               cfs.DefaultConfig(),
		ServiceHost:      0,
		TraceBufferBytes: trace.DefaultBufferBytes,
		MaxClockOffset:   100 * sim.Millisecond,
		MaxClockDriftPPM: 100,
		Seed:             seed,
	}
}

// File is the per-handle surface a job program uses: the exported
// methods of cfs.Handle. Job bodies are written against this
// interface so the same body can run on the simulated machine (a real
// *cfs.Handle) or on the analytical twin's timing engine.
type File interface {
	Read(p *sim.Proc, size int64) (int64, error)
	ReadAt(p *sim.Proc, off, size int64) (int64, error)
	Write(p *sim.Proc, size int64) (int64, error)
	WriteAt(p *sim.Proc, off, size int64) (int64, error)
	ReadStrided(p *sim.Proc, off, recBytes, stride int64, count int) (int64, error)
	WriteStrided(p *sim.Proc, off, recBytes, stride int64, count int) (int64, error)
	Seek(p *sim.Proc, off int64) error
	Close(p *sim.Proc) error
	Mode() cfs.IOMode
	FileID() uint64
	Size() int64
	Pointer() int64
}

// FileSys is the per-node file-system client surface a job program
// uses. On the simulated machine it is a thin adapter over
// *cfs.Client; the analytical twin provides its own implementation.
type FileSys interface {
	Open(p *sim.Proc, name string, flags int, mode cfs.IOMode) (File, error)
	Delete(p *sim.Proc, name string) error
}

// cfsFS adapts *cfs.Client to FileSys. The only reason the adapter
// exists is Go's lack of covariant returns: Open must return the
// interface type, not *cfs.Handle.
type cfsFS struct{ c *cfs.Client }

func (f cfsFS) Open(p *sim.Proc, name string, flags int, mode cfs.IOMode) (File, error) {
	h, err := f.c.Open(p, name, flags, mode)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (f cfsFS) Delete(p *sim.Proc, name string) error { return f.c.Delete(p, name) }

// NodeCtx is what a job's per-node program receives: its process, its
// identity, and its CFS client.
type NodeCtx struct {
	P        *sim.Proc
	Node     int // physical compute node
	Rank     int // rank within the job, 0..JobNodes-1
	JobNodes int // number of nodes in the job
	JobID    uint32
	CFS      FileSys
}

// JobSpec describes one submitted job.
type JobSpec struct {
	Nodes  int  // power of two <= ComputeNodes
	Traced bool // whether the job linked the instrumented library
	// Body runs on every node of the job; nil bodies model jobs that
	// do no CFS I/O (most system programs).
	Body func(ctx *NodeCtx)
}

type queuedJob struct {
	spec JobSpec
	id   uint32
}

// JobRecord summarizes one completed or running job for analysis.
type JobRecord struct {
	ID     uint32
	Nodes  int
	Traced bool
	Start  sim.Time
	End    sim.Time // zero while running
}

// Machine is the simulated iPSC/860.
type Machine struct {
	k   *sim.Kernel
	cfg Config
	rng *stats.RNG

	net         topo.Interconnect
	injector    *faults.Injector // nil on a healthy machine
	ioAttach    []topo.Attachment
	svcAttach   topo.Attachment
	fs          *cfs.FileSystem
	clocks      []*DriftClock
	nodeBuffers []*trace.NodeBuffer
	collector   *trace.Collector

	alloc   *buddyAllocator
	queue   []queuedJob
	running map[uint32]*runningJob
	nextJob uint32

	jobRecords []JobRecord
	jobLog     *trace.NodeBuffer // the "separate mechanism" for job starts/ends

	finished bool
}

type runningJob struct {
	id      uint32
	base    int
	nodes   int
	traced  bool
	pending int // node programs still running
	record  int // index into jobRecords
}

// transport adapts the hypercube to the cfs.Transport interface. CFS
// compute nodes message the I/O node's host over the cube, then cross
// the peripheral link.
type transport struct{ m *Machine }

func (t transport) ToIONode(computeNode, ioNode, bytes int) sim.Time {
	return t.m.ioAttach[ioNode].LatencyFrom(computeNode, bytes)
}

func (t transport) FromIONode(ioNode, computeNode, bytes int) sim.Time {
	return t.m.ioAttach[ioNode].LatencyFrom(computeNode, bytes)
}

// Arena bundles the cross-study pools a worker threads through every
// machine it builds: the trace pipeline's chunk and scratch pools and
// the file system's block-table and client pools. See core.Arena. The
// zero value is ready to use; an Arena is not safe for concurrent use.
type Arena struct {
	Trace trace.Arena
	CFS   cfs.Arena
}

// New builds the machine on the given kernel.
func New(k *sim.Kernel, cfg Config) *Machine { return NewWith(k, cfg, nil) }

// NewWith builds the machine on the given kernel, drawing reusable
// storage from the arena when it is non-nil.
func NewWith(k *sim.Kernel, cfg Config, arena *Arena) *Machine {
	order, pow2 := orderFor(cfg.ComputeNodes)
	if !pow2 {
		panic(fmt.Sprintf("machine: compute nodes %d not a power of two", cfg.ComputeNodes))
	}
	m := &Machine{
		k:       k,
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed),
		net:     topo.New(k, cfg.ComputeNodes, cfg.Net),
		alloc:   newBuddyAllocator(order),
		running: make(map[uint32]*runningJob),
	}
	// I/O nodes attach to evenly spaced compute nodes.
	for i := 0; i < cfg.FS.IONodes; i++ {
		host := i * cfg.ComputeNodes / cfg.FS.IONodes
		m.ioAttach = append(m.ioAttach, m.net.Attach(host))
	}
	m.svcAttach = m.net.Attach(cfg.ServiceHost)
	m.fs = cfs.New(k, cfg.FS, transport{m})
	if arena != nil {
		m.fs.SetArena(&arena.CFS)
	}
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(cfg.FS.IONodes, m.net.LinkClasses()); err != nil {
			panic(fmt.Sprintf("machine: %v", err))
		}
		// The injector splits its own RNG stream; Split does not
		// consume m.rng's state, so the clock streams below are
		// unchanged from a fault-free build.
		m.injector = faults.NewInjector(cfg.Faults, cfg.FS.IONodes, m.rng)
		if deg := m.injector.Net(); deg != nil {
			m.net.SetDegrader(deg)
		}
		wear, worn := m.injector.DiskWear()
		for i := 0; i < cfg.FS.IONodes; i++ {
			if ns := m.injector.Node(i); ns != nil {
				m.fs.IONode(i).SetFault(ns)
			}
			if worn {
				m.fs.IONode(i).Disk().SetWear(disk.Wear{
					SeekMul:     wear.SeekMultiplier,
					TransferMul: wear.TransferMultiplier,
					RampPerHour: wear.RampPerHour,
					Now:         k.Now,
				})
			}
		}
	}

	// Per-node drifting clocks; the collector's clock is the reference
	// timebase (offset 0, drift 0), so corrected trace times are
	// directly comparable to true simulation times.
	clockRNG := m.rng.Split(0x10c5)
	for n := 0; n < cfg.ComputeNodes; n++ {
		m.clocks = append(m.clocks,
			RandomDriftClock(k, clockRNG.Split(uint64(n)), cfg.MaxClockOffset, cfg.MaxClockDriftPPM))
	}
	collectorClock := NewDriftClock(k, 0, 0)
	m.collector = trace.NewCollector(collectorClock, trace.Header{
		ComputeNodes: uint16(cfg.ComputeNodes),
		IONodes:      uint16(cfg.FS.IONodes),
		BlockBytes:   uint32(cfg.FS.BlockBytes),
		BufferBytes:  uint32(cfg.TraceBufferBytes),
		Seed:         cfg.Seed,
	})
	if arena != nil {
		m.collector.SetArena(&arena.Trace)
	}
	// Per-node trace buffers ship blocks over the cube to the service
	// node's collector.
	for n := 0; n < cfg.ComputeNodes; n++ {
		node := n
		nb := trace.NewNodeBuffer(
			uint16(node), m.clocks[node], cfg.TraceBufferBytes,
			func(blk trace.Block) {
				bytes := len(blk.Events) * trace.EventSize
				m.svcAttach.SendTo(node, bytes, func() {
					m.collector.Deliver(blk)
				})
			})
		if arena != nil {
			nb.SetArena(&arena.Trace)
		}
		m.nodeBuffers = append(m.nodeBuffers, nb)
	}
	// Job starts/ends are logged by the resource manager on the
	// service node itself: no drift, no network hop.
	m.jobLog = trace.NewNodeBuffer(uint16(cfg.ComputeNodes), collectorClock,
		cfg.TraceBufferBytes, func(blk trace.Block) { m.collector.Deliver(blk) })
	if arena != nil {
		m.jobLog.SetArena(&arena.Trace)
	}
	return m
}

// Kernel returns the simulation kernel.
func (m *Machine) Kernel() *sim.Kernel { return m.k }

// SetTraceSink switches the collector to streaming mode: every block
// is written to sink on arrival instead of retained in memory, so the
// tracing pipeline's footprint stays bounded by the per-node buffers
// however long the study runs (see core.RunStudyStreaming). Call it
// before any job runs; the first sink error is sticky and reported by
// TraceSinkErr.
func (m *Machine) SetTraceSink(s trace.BlockSink) { m.collector.SetSink(s) }

// TraceSinkErr returns the first error the trace sink reported.
func (m *Machine) TraceSinkErr() error { return m.collector.Err() }

// TraceHeader returns the header of the trace being collected.
func (m *Machine) TraceHeader() trace.Header { return m.collector.Header() }

// ComputeNodes returns the machine's compute-node count (the largest
// job it can run).
func (m *Machine) ComputeNodes() int { return m.cfg.ComputeNodes }

// FS returns the file system.
func (m *Machine) FS() *cfs.FileSystem { return m.fs }

// Preload creates a file with all blocks allocated before the
// simulation starts, modeling data sets that predate the traced
// window. It is the workload generator's loading dock (see
// workload.Target).
func (m *Machine) Preload(name string, size int64) error {
	_, err := m.fs.Preload(name, size)
	return err
}

// Network returns the interconnect.
func (m *Machine) Network() topo.Interconnect { return m.net }

// FaultReport returns the degradation summary for a faulted machine,
// or nil when the machine ran healthy. Call it after the simulation.
func (m *Machine) FaultReport() *faults.Report {
	if m.injector == nil {
		return nil
	}
	wearExtra := make([]sim.Time, m.cfg.FS.IONodes)
	for i := range wearExtra {
		wearExtra[i] = m.fs.IONode(i).Disk().WearExtra()
	}
	return m.injector.Report(wearExtra)
}

// IONodeQueueStat is one I/O node's observed queueing behavior over a
// study: batches (request messages) served, total queue wait, and
// total service time. The counters are observation-only — recording
// them never perturbs simulated timing — and are the ground truth the
// analytical twin's conformance suite compares against.
type IONodeQueueStat struct {
	Batches int64
	Wait    sim.Time
	Service sim.Time
}

// IONodeQueueStats returns the per-I/O-node queueing counters. Call it
// after the simulation.
func (m *Machine) IONodeQueueStats() []IONodeQueueStat {
	out := make([]IONodeQueueStat, m.cfg.FS.IONodes)
	for i := range out {
		b, w, s := m.fs.IONode(i).QueueStats()
		out[i] = IONodeQueueStat{Batches: b, Wait: w, Service: s}
	}
	return out
}

// Clock returns compute node n's local clock.
func (m *Machine) Clock(n int) *DriftClock { return m.clocks[n] }

// RunningJobs reports the number of jobs currently on nodes.
func (m *Machine) RunningJobs() int { return len(m.running) }

// QueuedJobs reports the number of jobs waiting for nodes.
func (m *Machine) QueuedJobs() int { return len(m.queue) }

// JobRecords returns start/end bookkeeping for all jobs seen so far.
func (m *Machine) JobRecords() []JobRecord { return m.jobRecords }

// Submit enqueues a job at the current virtual time. Jobs start in
// submission order as soon as a subcube of the requested size is free
// (first-fit over the queue, like NQS with backfill).
func (m *Machine) Submit(spec JobSpec) uint32 {
	if m.finished {
		panic("machine: submit after FinishTracing")
	}
	if _, pow2 := orderFor(spec.Nodes); !pow2 || spec.Nodes > m.cfg.ComputeNodes {
		panic(fmt.Sprintf("machine: job wants %d nodes", spec.Nodes))
	}
	m.nextJob++
	id := m.nextJob
	m.queue = append(m.queue, queuedJob{spec: spec, id: id})
	m.trySchedule()
	return id
}

// SubmitAt schedules a Submit at absolute virtual time t.
func (m *Machine) SubmitAt(t sim.Time, spec JobSpec) {
	m.k.At(t, func() { m.Submit(spec) })
}

// trySchedule starts every queued job that fits, in queue order.
func (m *Machine) trySchedule() {
	kept := m.queue[:0]
	for _, qj := range m.queue {
		if base, ok := m.alloc.Alloc(qj.spec.Nodes); ok {
			m.startJob(qj, base)
		} else {
			kept = append(kept, qj)
		}
	}
	m.queue = kept
}

func (m *Machine) startJob(qj queuedJob, base int) {
	spec := qj.spec
	rj := &runningJob{
		id:      qj.id,
		base:    base,
		nodes:   spec.Nodes,
		traced:  spec.Traced,
		pending: spec.Nodes,
		record:  len(m.jobRecords),
	}
	m.running[qj.id] = rj
	m.jobRecords = append(m.jobRecords, JobRecord{
		ID: qj.id, Nodes: spec.Nodes, Traced: spec.Traced, Start: m.k.Now(),
	})
	ev := trace.Event{Type: trace.EvJobStart, Job: qj.id, Size: int64(spec.Nodes)}
	if spec.Traced {
		ev.Flags |= trace.FlagInstrumented
	}
	m.jobLog.Record(ev)

	for rank := 0; rank < spec.Nodes; rank++ {
		node := base + rank
		ctx := &NodeCtx{
			Node:     node,
			Rank:     rank,
			JobNodes: spec.Nodes,
			JobID:    qj.id,
		}
		var tracer cfs.Tracer = cfs.NopTracer{}
		if spec.Traced {
			tracer = jobTracer{buf: m.nodeBuffers[node], job: qj.id}
		}
		client := cfs.NewClient(m.fs, qj.id, node, tracer)
		ctx.CFS = cfsFS{client}
		m.k.Spawn(fmt.Sprintf("job%d/node%d", qj.id, node), func(p *sim.Proc) {
			ctx.P = p
			if spec.Body != nil {
				spec.Body(ctx)
			}
			// The node program is done: its client (and the client's
			// transfer dispatch tables) can serve the next job. With no
			// arena on the file system this is a no-op.
			client.Release()
			m.nodeDone(rj, node)
		})
	}
}

// jobTracer stamps the job ID onto events before buffering them.
type jobTracer struct {
	buf *trace.NodeBuffer
	job uint32
}

func (t jobTracer) Record(ev trace.Event) {
	ev.Job = t.job
	t.buf.Record(ev)
}

func (m *Machine) nodeDone(rj *runningJob, node int) {
	// A terminating process flushes its residual trace buffer, as the
	// instrumented library did at exit.
	if rj.traced {
		m.nodeBuffers[node].Flush()
	}
	rj.pending--
	if rj.pending > 0 {
		return
	}
	m.alloc.Free(rj.base)
	delete(m.running, rj.id)
	m.jobRecords[rj.record].End = m.k.Now()
	ev := trace.Event{Type: trace.EvJobEnd, Job: rj.id, Size: int64(rj.nodes)}
	if rj.traced {
		ev.Flags |= trace.FlagInstrumented
	}
	m.jobLog.Record(ev)
	m.trySchedule()
}

// FinishTracing flushes every node's residual trace buffer and the job
// log, then returns the collected trace. Call it after the kernel has
// run to completion.
func (m *Machine) FinishTracing() *trace.Trace {
	if len(m.running) > 0 || len(m.queue) > 0 {
		panic(fmt.Sprintf("machine: FinishTracing with %d running / %d queued jobs",
			len(m.running), len(m.queue)))
	}
	if !m.finished {
		for _, b := range m.nodeBuffers {
			b.Flush()
		}
		m.jobLog.Flush()
		m.finished = true
		// Let the in-flight trace blocks reach the collector.
		m.k.Run()
	}
	return m.collector.Trace()
}

// TraceMessages reports how many trace blocks were shipped, the
// denominator for the paper's ">90% fewer messages" buffering claim.
func (m *Machine) TraceMessages() int64 {
	var n int64
	for _, b := range m.nodeBuffers {
		n += b.Flushes()
	}
	return n
}

// TraceRecords reports how many CFS events were recorded on nodes.
func (m *Machine) TraceRecords() int64 {
	var n int64
	for _, b := range m.nodeBuffers {
		n += b.Recorded()
	}
	return n
}

// ConcurrencyProfile computes, from the job records, how much wall
// time the machine spent with each number of jobs running (Figure 1).
// It covers [0, horizon).
func (m *Machine) ConcurrencyProfile(horizon sim.Time) map[int]sim.Time {
	type edge struct {
		t sim.Time
		d int
	}
	var edges []edge
	for _, r := range m.jobRecords {
		end := r.End
		if end == 0 || end > horizon {
			end = horizon
		}
		if r.Start >= horizon {
			continue
		}
		edges = append(edges, edge{r.Start, +1}, edge{end, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].d < edges[j].d // ends before starts at ties
	})
	profile := make(map[int]sim.Time)
	var prev sim.Time
	level := 0
	for _, e := range edges {
		if e.t > prev {
			profile[level] += e.t - prev
			prev = e.t
		}
		level += e.d
	}
	if prev < horizon {
		profile[level] += horizon - prev
	}
	return profile
}
