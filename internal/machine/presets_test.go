package machine

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestPresetRegistry checks every registered preset resolves to a
// buildable configuration whose shape is self-consistent.
func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	if len(names) < 2 {
		t.Fatalf("preset registry too small: %v", names)
	}
	for _, name := range names {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		// Only the hypercube takes its shape from Net.Dim; other
		// topologies size themselves from the node count.
		if kind, err := topo.Resolve(cfg.Net.Kind); err != nil {
			t.Fatalf("%s: topology: %v", name, err)
		} else if kind == "hypercube" && cfg.ComputeNodes != 1<<cfg.Net.Dim {
			t.Fatalf("%s: %d compute nodes but network dimension %d", name, cfg.ComputeNodes, cfg.Net.Dim)
		}
		if cfg.FS.IONodes <= 0 || cfg.FS.BlockBytes <= 0 || cfg.TraceBufferBytes <= 0 {
			t.Fatalf("%s: degenerate FS config %+v", name, cfg.FS)
		}
		// The preset must actually build a machine.
		k := sim.New()
		m := New(k, cfg)
		if m.ComputeNodes() != cfg.ComputeNodes {
			t.Fatalf("%s: machine reports %d nodes, config %d", name, m.ComputeNodes(), cfg.ComputeNodes)
		}
	}
	if _, err := Preset("cm5"); err == nil {
		t.Fatal("unknown preset resolved")
	}
	// Case-insensitive.
	if _, err := Preset("NAS"); err != nil {
		t.Fatalf("Preset is case-sensitive: %v", err)
	}
}

// TestMiniPresetIsNonNAS pins the scenario axis: the mini preset must
// differ from NAS in machine shape, not just in name.
func TestMiniPresetIsNonNAS(t *testing.T) {
	nas, mini := NASConfig(0), MiniConfig(0)
	if mini.ComputeNodes >= nas.ComputeNodes {
		t.Fatalf("mini has %d compute nodes, NAS %d", mini.ComputeNodes, nas.ComputeNodes)
	}
	if mini.FS.IONodes >= nas.FS.IONodes {
		t.Fatalf("mini has %d I/O nodes, NAS %d", mini.FS.IONodes, nas.FS.IONodes)
	}
	if mini.FS.BlockBytes != nas.FS.BlockBytes {
		t.Fatal("presets should share the CFS block size")
	}
}

// TestMiniPresetRunsJobs submits jobs bigger than the mini cube to a
// mini machine after generator-side clamping would have reduced them;
// here we just pin that the machine rejects oversized jobs (the
// clamp's reason to exist).
func TestMiniPresetRunsJobs(t *testing.T) {
	k := sim.New()
	m := New(k, MiniConfig(7))
	defer func() {
		if recover() == nil {
			t.Fatal("128-node job on a 32-node machine did not panic")
		}
	}()
	m.Submit(JobSpec{Nodes: 128, Traced: false})
}
