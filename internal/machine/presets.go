package machine

import (
	"fmt"
	"strings"

	"repro/internal/cfs"
	"repro/internal/hypercube"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The machine-preset registry: stable names a scenario spec can use
// to pick a machine configuration. "nas" is the paper's facility; the
// others widen the scenario space beyond it.
//
// A preset's Seed field is zero; whoever runs a study stamps the
// study seed onto it (core.RunStudy does this for every machine
// override), so one preset serves every seed in a sweep.

// MiniConfig returns a non-NAS preset: a 32-node development cube
// with 4 I/O nodes, the kind of small iPSC/860 installation other
// CFS sites ran. Same per-node hardware as NAS (same disks, links,
// clocks, 4 KB blocks and trace buffers) but a quarter of the compute
// nodes and under half the I/O nodes, so the compute-to-I/O balance
// -- and with it the cache and queueing behaviour -- differs.
func MiniConfig(seed uint64) Config {
	net := hypercube.IPSC860()
	net.Dim = 5 // 32 nodes
	fs := cfs.DefaultConfig()
	fs.IONodes = 4
	return Config{
		ComputeNodes:     32,
		Net:              net,
		FS:               fs,
		ServiceHost:      0,
		TraceBufferBytes: trace.DefaultBufferBytes,
		MaxClockOffset:   100 * sim.Millisecond,
		MaxClockDriftPPM: 100,
		Seed:             seed,
	}
}

// presetNames lists the registry in stable order.
var presetNames = [...]string{"nas", "mini"}

// PresetNames returns the machine-preset registry names, in stable
// order.
func PresetNames() []string {
	return append([]string(nil), presetNames[:]...)
}

// Preset resolves a registry name (case-insensitive) to its machine
// configuration, with a zero seed for the caller to stamp.
func Preset(name string) (Config, error) {
	switch strings.ToLower(name) {
	case "nas":
		return NASConfig(0), nil
	case "mini":
		return MiniConfig(0), nil
	}
	return Config{}, fmt.Errorf("machine: unknown preset %q (known: %s)",
		name, strings.Join(presetNames[:], ", "))
}
