package machine

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/cfs"
	"repro/internal/disk"
	"repro/internal/hypercube"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The machine-preset registry: stable names a scenario spec can use
// to pick a machine configuration. "nas" is the paper's facility; the
// others widen the scenario space beyond it. Presets register
// themselves in init via RegisterPreset, the same discipline the
// topology and disk-model registries follow, so a new machine is one
// self-contained registration away.
//
// A preset's Seed field is zero; whoever runs a study stamps the
// study seed onto it (core.RunStudy does this for every machine
// override), so one preset serves every seed in a sweep.

// MiniConfig returns a non-NAS preset: a 32-node development cube
// with 4 I/O nodes, the kind of small iPSC/860 installation other
// CFS sites ran. Same per-node hardware as NAS (same disks, links,
// clocks, 4 KB blocks and trace buffers) but a quarter of the compute
// nodes and under half the I/O nodes, so the compute-to-I/O balance
// -- and with it the cache and queueing behaviour -- differs.
func MiniConfig(seed uint64) Config {
	net := hypercube.IPSC860()
	net.Dim = 5 // 32 nodes
	fs := cfs.DefaultConfig()
	fs.IONodes = 4
	return Config{
		ComputeNodes:     32,
		Net:              net,
		FS:               fs,
		ServiceHost:      0,
		TraceBufferBytes: trace.DefaultBufferBytes,
		MaxClockOffset:   100 * sim.Millisecond,
		MaxClockDriftPPM: 100,
		Seed:             seed,
	}
}

// Cluster2026Config returns a modern-cluster preset: 256 nodes on a
// two-level fat tree with 100 Gb/s edge links and a 2:1 oversubscribed
// spine, 16 I/O nodes with NVMe-class drives, and NTP-grade clocks
// (millisecond offset, single-digit-ppm drift). Against the NAS
// machine it inverts every hardware ratio the paper's analysis leans
// on -- the network is no longer the cheap part, the disk no longer
// the expensive one -- which is exactly what makes it a useful
// scenario axis (see PERFORMANCE.md on where the bottleneck moves).
func Cluster2026Config(seed uint64) Config {
	fs := cfs.DefaultConfig()
	fs.IONodes = 16
	fs.IONode = cfs.IONodeConfig{
		Disk:         disk.NVMe(),
		CacheBuffers: 4096, // 16 MB of 4 KB buffers
		Overhead:     10 * sim.Microsecond,
		CacheHitTime: 1 * sim.Microsecond,
	}
	return Config{
		ComputeNodes: 256,
		Net: topo.Config{
			Kind:                "fattree",
			Startup:             2 * sim.Microsecond,
			PerHop:              1 * sim.Microsecond,
			PerPacket:           1 * sim.Microsecond,
			PacketBytes:         4096,
			BytesPerSecond:      12.5e9, // 100 Gb/s edge links
			SpineBytesPerSecond: 6.25e9, // 2:1 oversubscription
		},
		FS:               fs,
		ServiceHost:      0,
		TraceBufferBytes: trace.DefaultBufferBytes,
		MaxClockOffset:   1 * sim.Millisecond,
		MaxClockDriftPPM: 5,
		Seed:             seed,
	}
}

// presetEntry pairs a registry name with its builder.
type presetEntry struct {
	name  string
	build func(seed uint64) Config
}

var (
	presetMu sync.RWMutex
	// presets holds the registry in registration order, which is the
	// stable order PresetNames reports.
	presets []presetEntry
)

// RegisterPreset adds a machine preset to the registry. It panics on
// a duplicate, empty, or non-lowercase name; call it from init.
func RegisterPreset(name string, build func(seed uint64) Config) {
	presetMu.Lock()
	defer presetMu.Unlock()
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("machine: register preset %q: names must be non-empty lowercase", name))
	}
	if build == nil {
		panic(fmt.Sprintf("machine: register preset %q: nil builder", name))
	}
	for _, e := range presets {
		if e.name == name {
			panic(fmt.Sprintf("machine: duplicate preset registration %q", name))
		}
	}
	presets = append(presets, presetEntry{name: name, build: build})
}

func init() {
	RegisterPreset("nas", NASConfig)
	RegisterPreset("mini", MiniConfig)
	RegisterPreset("cluster2026", Cluster2026Config)
}

// PresetNames returns the machine-preset registry names, in stable
// order.
func PresetNames() []string {
	presetMu.RLock()
	defer presetMu.RUnlock()
	out := make([]string, len(presets))
	for i, e := range presets {
		out[i] = e.name
	}
	return out
}

// Preset resolves a registry name (case-insensitive) to its machine
// configuration, with a zero seed for the caller to stamp.
func Preset(name string) (Config, error) {
	key := strings.ToLower(name)
	presetMu.RLock()
	defer presetMu.RUnlock()
	for _, e := range presets {
		if e.name == key {
			return e.build(0), nil
		}
	}
	names := make([]string, len(presets))
	for i, e := range presets {
		names[i] = e.name
	}
	return Config{}, fmt.Errorf("machine: unknown preset %q (known: %s)",
		name, strings.Join(names, ", "))
}
