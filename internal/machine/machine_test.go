package machine

import (
	"testing"

	"repro/internal/cfs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func testConfig() Config {
	cfg := NASConfig(42)
	return cfg
}

func TestDriftClock(t *testing.T) {
	k := sim.New()
	c := NewDriftClock(k, 1000, 100) // +1 ms offset, +100 ppm
	if c.Now() != 1000 {
		t.Fatalf("at t=0: %v", c.Now())
	}
	k.RunUntil(10 * sim.Second)
	want := sim.Time(1000) + sim.Time(float64(10*sim.Second)*1.0001)
	if got := c.Now(); got != want {
		t.Fatalf("at t=10s: %v, want %v", got, want)
	}
	if c.Offset() != 1000 || c.DriftPPM() != 100 {
		t.Fatal("accessors wrong")
	}
}

func TestRandomDriftClockBounds(t *testing.T) {
	k := sim.New()
	rng := stats.NewRNG(7)
	for i := 0; i < 100; i++ {
		c := RandomDriftClock(k, rng, 100*sim.Millisecond, 100)
		if c.Offset() < -100*sim.Millisecond || c.Offset() > 100*sim.Millisecond {
			t.Fatalf("offset %v out of bounds", c.Offset())
		}
		if c.DriftPPM() < -100 || c.DriftPPM() > 100 {
			t.Fatalf("drift %v out of bounds", c.DriftPPM())
		}
	}
}

func TestMachineConstruction(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	if m.FS() == nil || m.Network() == nil || m.Kernel() != k {
		t.Fatal("accessors broken")
	}
	if m.Network().Nodes() != 128 {
		t.Fatalf("nodes = %d", m.Network().Nodes())
	}
	if m.Clock(0) == m.Clock(1) {
		t.Fatal("nodes share a clock")
	}
}

func TestSingleJobRunsOnAllNodes(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	ranks := make(map[int]bool)
	nodes := make(map[int]bool)
	m.Submit(JobSpec{
		Nodes:  8,
		Traced: true,
		Body: func(ctx *NodeCtx) {
			ranks[ctx.Rank] = true
			nodes[ctx.Node] = true
			if ctx.JobNodes != 8 {
				t.Errorf("JobNodes = %d", ctx.JobNodes)
			}
			ctx.P.Sleep(sim.Second)
		},
	})
	k.Run()
	if len(ranks) != 8 || len(nodes) != 8 {
		t.Fatalf("ranks=%d nodes=%d", len(ranks), len(nodes))
	}
	recs := m.JobRecords()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].End-recs[0].Start < sim.Second {
		t.Fatalf("job duration %v", recs[0].End-recs[0].Start)
	}
}

func TestJobsQueueWhenMachineFull(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	var secondStart sim.Time
	m.Submit(JobSpec{Nodes: 128, Body: func(ctx *NodeCtx) { ctx.P.Sleep(10 * sim.Second) }})
	m.Submit(JobSpec{Nodes: 64, Body: func(ctx *NodeCtx) {
		if ctx.Rank == 0 {
			secondStart = ctx.P.Now()
		}
	}})
	if m.RunningJobs() != 1 || m.QueuedJobs() != 1 {
		t.Fatalf("running=%d queued=%d", m.RunningJobs(), m.QueuedJobs())
	}
	k.Run()
	if secondStart < 10*sim.Second {
		t.Fatalf("second job started at %v before first finished", secondStart)
	}
}

func TestBackfillSmallJobPassesBigOne(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	var smallStart sim.Time
	m.Submit(JobSpec{Nodes: 64, Body: func(ctx *NodeCtx) { ctx.P.Sleep(20 * sim.Second) }})
	m.Submit(JobSpec{Nodes: 128, Body: nil})               // must wait for the 64
	m.Submit(JobSpec{Nodes: 32, Body: func(ctx *NodeCtx) { // fits now
		if ctx.Rank == 0 {
			smallStart = ctx.P.Now()
		}
	}})
	k.Run()
	if smallStart >= 20*sim.Second {
		t.Fatalf("32-node job did not backfill; started at %v", smallStart)
	}
}

func TestTracedJobProducesEvents(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	m.Submit(JobSpec{
		Nodes:  4,
		Traced: true,
		Body: func(ctx *NodeCtx) {
			h, err := ctx.CFS.Open(ctx.P, "/out/x", cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 5; i++ {
				h.Write(ctx.P, 2000)
			}
			h.Close(ctx.P)
		},
	})
	k.Run()
	tr := m.FinishTracing()
	events := trace.Postprocess(tr)
	var opens, writes, closes, starts, ends int
	for _, ev := range events {
		switch ev.Type {
		case trace.EvOpen:
			opens++
		case trace.EvWrite:
			writes++
		case trace.EvClose:
			closes++
		case trace.EvJobStart:
			starts++
		case trace.EvJobEnd:
			ends++
		}
	}
	if opens != 4 || closes != 4 || writes != 20 {
		t.Fatalf("opens=%d closes=%d writes=%d", opens, closes, writes)
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("job events: %d starts %d ends", starts, ends)
	}
}

func TestUntracedJobLeavesNoCFSEvents(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	m.Submit(JobSpec{
		Nodes:  2,
		Traced: false,
		Body: func(ctx *NodeCtx) {
			h, _ := ctx.CFS.Open(ctx.P, "/quiet", cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
			h.Write(ctx.P, 1000)
			h.Close(ctx.P)
		},
	})
	k.Run()
	tr := m.FinishTracing()
	for _, ev := range trace.Postprocess(tr) {
		if ev.IsData() || ev.Type == trace.EvOpen || ev.Type == trace.EvClose {
			t.Fatalf("untraced job produced CFS event %v", ev)
		}
		if ev.Type == trace.EvJobStart && ev.Flags&trace.FlagInstrumented != 0 {
			t.Fatal("untraced job marked instrumented")
		}
	}
}

func TestTraceTimestampsCorrected(t *testing.T) {
	// Two nodes of a job write alternately with real time between
	// them; after postprocessing, each node's events must be in
	// near-true order even though local clocks are offset.
	k := sim.New()
	m := New(k, testConfig())
	m.Submit(JobSpec{
		Nodes:  2,
		Traced: true,
		Body: func(ctx *NodeCtx) {
			h, _ := ctx.CFS.Open(ctx.P, "/f", cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
			for i := 0; i < 30; i++ {
				ctx.P.Sleep(sim.Second)
				h.Write(ctx.P, 100)
			}
			h.Close(ctx.P)
		},
	})
	k.Run()
	tr := m.FinishTracing()
	corrected := trace.Postprocess(tr)
	// With <=100 ms offsets and writes 1 s apart per node, the global
	// corrected order must interleave both nodes rather than batching
	// one node entirely before the other.
	var nodeSeq []uint16
	for _, ev := range corrected {
		if ev.Type == trace.EvWrite {
			nodeSeq = append(nodeSeq, ev.Node)
		}
	}
	switches := 0
	for i := 1; i < len(nodeSeq); i++ {
		if nodeSeq[i] != nodeSeq[i-1] {
			switches++
		}
	}
	if switches < 20 {
		t.Fatalf("corrected order interleaves poorly: %d switches in %d writes",
			switches, len(nodeSeq))
	}
}

func TestConcurrencyProfile(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	// Job A runs [0, 10s); job B runs [5s, 15s).
	m.SubmitAt(0, JobSpec{Nodes: 1, Body: func(ctx *NodeCtx) { ctx.P.Sleep(10 * sim.Second) }})
	m.SubmitAt(5*sim.Second, JobSpec{Nodes: 1, Body: func(ctx *NodeCtx) { ctx.P.Sleep(10 * sim.Second) }})
	k.Run()
	profile := m.ConcurrencyProfile(20 * sim.Second)
	approx := func(got, want sim.Time) bool {
		d := got - want
		return d > -sim.Millisecond && d < sim.Millisecond
	}
	if !approx(profile[0], 5*sim.Second) {
		t.Fatalf("idle time = %v", profile[0])
	}
	if !approx(profile[1], 10*sim.Second) {
		t.Fatalf("1-job time = %v", profile[1])
	}
	if !approx(profile[2], 5*sim.Second) {
		t.Fatalf("2-job time = %v", profile[2])
	}
}

func TestTraceBufferingReducesMessages(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	m.Submit(JobSpec{
		Nodes:  1,
		Traced: true,
		Body: func(ctx *NodeCtx) {
			h, _ := ctx.CFS.Open(ctx.P, "/f", cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
			for i := 0; i < 1000; i++ {
				h.Write(ctx.P, 100)
			}
			h.Close(ctx.P)
		},
	})
	k.Run()
	m.FinishTracing()
	records, messages := m.TraceRecords(), m.TraceMessages()
	if records < 1000 {
		t.Fatalf("records = %d", records)
	}
	if float64(messages) > 0.1*float64(records) {
		t.Fatalf("buffering shipped %d messages for %d records", messages, records)
	}
}

func TestFinishTracingTwiceIsStable(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	m.Submit(JobSpec{Nodes: 1, Traced: true, Body: func(ctx *NodeCtx) {
		h, _ := ctx.CFS.Open(ctx.P, "/f", cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
		h.Write(ctx.P, 10)
		h.Close(ctx.P)
	}})
	k.Run()
	t1 := m.FinishTracing()
	t2 := m.FinishTracing()
	if len(t1.Blocks) != len(t2.Blocks) {
		t.Fatal("FinishTracing not idempotent")
	}
}

func TestSubmitAfterFinishPanics(t *testing.T) {
	k := sim.New()
	m := New(k, testConfig())
	k.Run()
	m.FinishTracing()
	defer func() {
		if recover() == nil {
			t.Fatal("submit after finish did not panic")
		}
	}()
	m.Submit(JobSpec{Nodes: 1})
}

func TestDeterministicTraces(t *testing.T) {
	runOnce := func() int64 {
		k := sim.New()
		m := New(k, testConfig())
		for i := 0; i < 5; i++ {
			m.SubmitAt(sim.Time(i)*sim.Second, JobSpec{
				Nodes:  4,
				Traced: true,
				Body: func(ctx *NodeCtx) {
					h, _ := ctx.CFS.Open(ctx.P, "/d", cfs.ORdWr|cfs.OCreate, cfs.Mode0)
					h.WriteAt(ctx.P, int64(ctx.Rank)*1000, 1000)
					h.Close(ctx.P)
				},
			})
		}
		k.Run()
		tr := m.FinishTracing()
		var sig int64
		for _, ev := range trace.Postprocess(tr) {
			sig = sig*31 + ev.Time + int64(ev.Type) + ev.Offset
		}
		return sig
	}
	if runOnce() != runOnce() {
		t.Fatal("two identical runs produced different traces")
	}
}

func TestStridedAppEndToEnd(t *testing.T) {
	// An application using the strided extension (the paper's Section 5
	// proposal) produces strided trace records that survive collection
	// and postprocessing.
	k := sim.New()
	m := New(k, testConfig())
	if _, err := m.FS().Preload("/matrix", 1<<20); err != nil {
		t.Fatal(err)
	}
	m.Submit(JobSpec{
		Nodes:  4,
		Traced: true,
		Body: func(ctx *NodeCtx) {
			h, err := ctx.CFS.Open(ctx.P, "/matrix", cfs.ORdOnly, cfs.Mode0)
			if err != nil {
				t.Error(err)
				return
			}
			// Each node reads its column of a 4-column matrix in one
			// strided request.
			off := int64(ctx.Rank) * 1024
			if _, err := h.ReadStrided(ctx.P, off, 1024, 4096, 64); err != nil {
				t.Error(err)
			}
			h.Close(ctx.P)
		},
	})
	k.Run()
	tr := m.FinishTracing()
	events := trace.Postprocess(tr)
	strided := 0
	for _, ev := range events {
		if ev.Type == trace.EvReadStrided {
			strided++
			if ev.Size != 1024 || ev.Stride != 4096 || ev.Count != 64 {
				t.Fatalf("strided record = %+v", ev)
			}
		}
	}
	if strided != 4 {
		t.Fatalf("strided records = %d, want 4", strided)
	}
}
