package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("nearby seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("zero seed produced only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	a := parent.Split(1)
	b := parent.Split(2)
	aAgain := parent.Split(1)
	if a.Uint64() != aAgain.Uint64() {
		t.Fatal("Split is not stable for the same label")
	}
	if a.Uint64() == b.Uint64() && a.Uint64() == b.Uint64() {
		t.Fatal("Split streams with different labels coincide")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestInt64nRange(t *testing.T) {
	r := NewRNG(11)
	const n = int64(1) << 40
	for i := 0; i < 1000; i++ {
		v := r.Int64n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int64n out of range: %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) fired at rate %v", frac)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(17)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Exp(10)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.3 {
		t.Fatalf("Exp(10) mean %v", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(19)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Norm(5, 2))
	}
	if math.Abs(s.Mean()-5) > 0.05 {
		t.Fatalf("Norm mean %v", s.Mean())
	}
	if math.Abs(s.Stddev()-2) > 0.05 {
		t.Fatalf("Norm stddev %v", s.Stddev())
	}
}

func TestLogNormPositive(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 10000; i++ {
		if v := r.LogNorm(10, 1); v <= 0 {
			t.Fatalf("LogNorm returned %v", v)
		}
	}
}

func TestPickWeights(t *testing.T) {
	r := NewRNG(29)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("weight %d: got frequency %v want %v", i, got, want)
		}
	}
}

func TestPickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func TestPickNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with a negative weight did not panic")
		}
	}()
	NewRNG(1).Pick([]float64{1, -1})
}

// Property: Intn always lands in range for arbitrary seeds and sizes.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the generator never gets stuck emitting one value.
func TestQuickNoFixedPoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		first := r.Uint64()
		for i := 0; i < 20; i++ {
			if r.Uint64() != first {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
