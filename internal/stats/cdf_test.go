package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(0) != 0 || c.Len() != 0 || c.Mean() != 0 {
		t.Fatal("empty CDF should report zeros")
	}
}

func TestCDFAt(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 2, 2, 3} {
		c.Add(v)
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.9, 0.75}, {3, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFAddN(t *testing.T) {
	var a, b CDF
	a.AddN(5, 3)
	b.Add(5)
	b.Add(5)
	b.Add(5)
	if a.Len() != b.Len() || a.At(5) != b.At(5) {
		t.Fatal("AddN(v,3) differs from three Add(v)")
	}
}

func TestCDFQuantile(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Quantile(0.5); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := c.Quantile(0.01); got != 1 {
		t.Errorf("q0.01 = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want min", got)
	}
}

func TestCDFMinMaxMean(t *testing.T) {
	var c CDF
	for _, v := range []float64{4, 1, 7} {
		c.Add(v)
	}
	if c.Min() != 1 || c.Max() != 7 {
		t.Fatalf("min/max = %v/%v", c.Min(), c.Max())
	}
	if got := c.Mean(); math.Abs(got-4) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
}

func TestCDFSteps(t *testing.T) {
	var c CDF
	for _, v := range []float64{1, 1, 2, 5} {
		c.Add(v)
	}
	steps := c.Steps()
	want := []Point{{1, 0.5}, {2, 0.75}, {5, 1}}
	if len(steps) != len(want) {
		t.Fatalf("got %d steps, want %d", len(steps), len(want))
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
}

func TestCDFCurve(t *testing.T) {
	var c CDF
	c.Add(10)
	c.Add(20)
	pts := c.Curve([]float64{5, 10, 25})
	if pts[0].F != 0 || pts[1].F != 0.5 || pts[2].F != 1 {
		t.Fatalf("curve = %+v", pts)
	}
}

func TestLogTicks(t *testing.T) {
	ticks := LogTicks(0, 2)
	want := []float64{1, 2, 5, 10, 20, 50, 100}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if math.Abs(ticks[i]-want[i]) > 1e-9 {
			t.Fatalf("tick %d = %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestLogTicksNegativeExponents(t *testing.T) {
	ticks := LogTicks(-2, 0)
	if math.Abs(ticks[0]-0.01) > 1e-12 {
		t.Fatalf("first tick = %v, want 0.01", ticks[0])
	}
	if ticks[len(ticks)-1] != 1 {
		t.Fatalf("last tick = %v, want 1", ticks[len(ticks)-1])
	}
}

func TestFormatCurveContainsValues(t *testing.T) {
	s := FormatCurve("bytes", []Point{{100, 0.5}})
	if len(s) == 0 {
		t.Fatal("empty format output")
	}
}

// Property: a CDF is monotone non-decreasing and bounded by [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(vals []float64, probes []float64) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c.Add(v)
		}
		sort.Float64s(probes)
		prev := -1.0
		for _, x := range probes {
			if math.IsNaN(x) {
				continue
			}
			f := c.At(x)
			if f < 0 || f > 1 || f < prev {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF(max) == 1 for any non-empty sample set.
func TestQuickCDFReachesOne(t *testing.T) {
	f := func(vals []float64) bool {
		var c CDF
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			c.Add(v)
		}
		if c.Len() == 0 {
			return true
		}
		return c.At(c.Max()) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile and At are approximate inverses.
func TestQuickQuantileInverse(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		var c CDF
		for _, v := range raw {
			c.Add(float64(v))
		}
		q := (float64(qRaw%100) + 1) / 100
		v := c.Quantile(q)
		return c.At(v) >= q-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileNaN(t *testing.T) {
	var c CDF
	c.Add(1)
	c.Add(2)
	if got := c.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("Quantile(NaN) = %v, want NaN", got)
	}
	var empty CDF
	if got := empty.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Fatalf("empty Quantile(NaN) = %v, want NaN", got)
	}
}

// quantileByScan is the O(n) reference: sort the weighted samples and
// walk the cumulative count until it reaches ceil(q * total).
func quantileByScan(samples []wsample, q float64) float64 {
	sorted := append([]wsample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].v < sorted[j].v })
	var total int64
	for _, s := range sorted {
		total += s.n
	}
	if q <= 0 {
		return sorted[0].v
	}
	if q >= 1 {
		return sorted[len(sorted)-1].v
	}
	var run int64
	for _, s := range sorted {
		run += s.n
		if float64(run) >= q*float64(total) {
			return s.v
		}
	}
	return sorted[len(sorted)-1].v
}

// Property: Quantile matches a direct rank scan over randomized
// weighted (value, count) sample sets, for every probe q, with no
// rounding fudge in either direction.
func TestQuickQuantileMatchesRankScan(t *testing.T) {
	f := func(raw []uint16, counts []uint8, qRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var c CDF
		var samples []wsample
		for i, v := range raw {
			n := 1
			if i < len(counts) {
				n = int(counts[i]%7) + 1
			}
			c.AddN(float64(v), n)
			samples = append(samples, wsample{v: float64(v), n: int64(n)})
		}
		q := float64(qRaw) / float64(math.MaxUint16)
		return c.Quantile(q) == quantileByScan(samples, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
