package stats

import "testing"

// BenchmarkCDFAddN measures bulk weighted insertion, the analysis
// layer's pattern for byte-weighted request-size CDFs (thousands of
// bytes of weight per distinct size).
func BenchmarkCDFAddN(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var c CDF
		for s := 0; s < 64; s++ {
			c.AddN(float64(1+s%7)*512, 1000)
		}
		if c.Len() != 64000 {
			b.Fatalf("len = %d", c.Len())
		}
	}
}

// BenchmarkCDFAdd measures single-sample insertion.
func BenchmarkCDFAdd(b *testing.B) {
	var c CDF
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(float64(i % 4096))
	}
}

// BenchmarkCDFQuantile measures query cost on a freshly-dirtied CDF
// (sort + search), the Analyze/Format pattern.
func BenchmarkCDFQuantile(b *testing.B) {
	var c CDF
	for i := 0; i < 4096; i++ {
		c.AddN(float64(i*37%1000), 1+i%5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(float64(i % 1000)) // dirty the sort
		if v := c.Quantile(0.5); v < 0 {
			b.Fatal(v)
		}
	}
}

// BenchmarkCDFAt measures repeated queries on a clean (sorted) CDF.
func BenchmarkCDFAt(b *testing.B) {
	var c CDF
	for i := 0; i < 4096; i++ {
		c.AddN(float64(i*37%1000), 1+i%5)
	}
	c.Quantile(0.5) // force the sort once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.At(float64(i % 1000))
	}
}
