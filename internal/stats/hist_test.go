package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistBasic(t *testing.T) {
	var h Hist
	h.Add(1)
	h.Add(1)
	h.Add(3)
	if h.Count(1) != 2 || h.Count(3) != 1 || h.Count(2) != 0 {
		t.Fatalf("counts wrong: %v %v %v", h.Count(1), h.Count(2), h.Count(3))
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Distinct() != 2 {
		t.Fatalf("distinct = %d", h.Distinct())
	}
}

func TestHistKeysSorted(t *testing.T) {
	var h Hist
	for _, k := range []int64{5, -2, 9, 0} {
		h.Add(k)
	}
	keys := h.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted: %v", keys)
		}
	}
}

func TestHistFraction(t *testing.T) {
	var h Hist
	h.AddN(7, 3)
	h.AddN(8, 1)
	if got := h.Fraction(7); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("fraction = %v", got)
	}
	var empty Hist
	if empty.Fraction(1) != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestHistBucketed(t *testing.T) {
	var h Hist
	for k := int64(1); k <= 10; k++ {
		h.Add(k)
	}
	// Buckets: <=2, <=4, 5+
	got := h.Bucketed([]int64{2, 4})
	want := []int64{2, 2, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucketed = %v, want %v", got, want)
		}
	}
}

func TestHistFormat(t *testing.T) {
	var h Hist
	h.Add(4)
	s := h.Format("nodes")
	if !strings.Contains(s, "nodes") || !strings.Contains(s, "4") {
		t.Fatalf("format output missing content:\n%s", s)
	}
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 6} {
		s.Add(v)
	}
	if s.N() != 3 || s.Sum() != 12 {
		t.Fatalf("n=%d sum=%v", s.N(), s.Sum())
	}
	if s.Mean() != 4 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	wantVar := ((2.-4)*(2.-4) + 0 + (6.-4)*(6.-4)) / 3
	if math.Abs(s.Var()-wantVar) > 1e-9 {
		t.Fatalf("var = %v, want %v", s.Var(), wantVar)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(5)
	if s.Var() != 0 {
		t.Fatalf("variance of one observation = %v", s.Var())
	}
	if s.Min() != 5 || s.Max() != 5 {
		t.Fatal("single-element min/max wrong")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	if !strings.Contains(s.String(), "n=1") {
		t.Fatalf("string = %q", s.String())
	}
}

// Property: Total equals the sum of counts over all keys.
func TestQuickHistTotal(t *testing.T) {
	f := func(keys []int16) bool {
		var h Hist
		for _, k := range keys {
			h.Add(int64(k))
		}
		var sum int64
		for _, k := range h.Keys() {
			sum += h.Count(k)
		}
		return sum == h.Total() && h.Total() == int64(len(keys))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketed counts conserve the total.
func TestQuickBucketsConserve(t *testing.T) {
	f := func(keys []int16) bool {
		var h Hist
		for _, k := range keys {
			h.Add(int64(k))
		}
		buckets := h.Bucketed([]int64{-100, 0, 100})
		var sum int64
		for _, c := range buckets {
			sum += c
		}
		return sum == h.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Summary mean lies within [min, max].
func TestQuickSummaryMeanBounded(t *testing.T) {
	f := func(raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			s.Add(float64(v))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
