package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// wsample is one weighted sample: the value v observed n times.
type wsample struct {
	v float64
	n int64
}

// CDF is an empirical cumulative distribution function over float64
// samples. Samples are stored as weighted (value, count) pairs, so
// adding a value with large multiplicity (AddN) is O(1) rather than
// O(n); on the first query after a mutation the pairs are sorted by
// value, coalesced, and prefix-summed. The zero value is ready to use.
type CDF struct {
	entries []wsample
	cum     []int64 // cum[i] = total count of entries[0..i], valid when sorted
	total   int64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.entries = append(c.entries, wsample{v: v, n: 1})
	c.total++
	c.sorted = false
}

// AddN appends the sample v with multiplicity n in constant time.
// Non-positive multiplicities add nothing.
func (c *CDF) AddN(v float64, n int) {
	if n <= 0 {
		return
	}
	c.entries = append(c.entries, wsample{v: v, n: int64(n)})
	c.total += int64(n)
	c.sorted = false
}

// Len reports the number of samples (counting multiplicity).
func (c *CDF) Len() int { return int(c.total) }

// Reset empties the CDF while keeping its backing arrays, so a pooled
// CDF (see analysis.Scratch) accumulates the next study's samples
// without reallocating.
func (c *CDF) Reset() {
	c.entries = c.entries[:0]
	c.cum = c.cum[:0]
	c.total = 0
	c.sorted = false
}

// sortSamples sorts entries by value, merges duplicates, and rebuilds
// the cumulative-count table.
func (c *CDF) sortSamples() {
	if c.sorted {
		return
	}
	es := c.entries
	sort.Slice(es, func(i, j int) bool { return es[i].v < es[j].v })
	// Coalesce runs of equal values in place.
	out := 0
	for i := 0; i < len(es); {
		v, n := es[i].v, es[i].n
		for i++; i < len(es) && es[i].v == v; i++ {
			n += es[i].n
		}
		es[out] = wsample{v: v, n: n}
		out++
	}
	c.entries = es[:out]
	c.cum = c.cum[:0]
	var run int64
	for _, e := range c.entries {
		run += e.n
		c.cum = append(c.cum, run)
	}
	c.sorted = true
}

// At returns the fraction of samples <= x, i.e. CDF(x).
// It returns 0 for an empty CDF.
func (c *CDF) At(x float64) float64 {
	if c.total == 0 {
		return 0
	}
	c.sortSamples()
	// First entry with value > x; everything before it is <= x.
	i := sort.Search(len(c.entries), func(i int) bool { return c.entries[i].v > x })
	if i == 0 {
		return 0
	}
	return float64(c.cum[i-1]) / float64(c.total)
}

// Quantile returns the smallest sample v such that CDF(v) >= q,
// for q in (0, 1]. Quantile(0) returns the minimum sample, and a NaN
// q yields NaN. It returns 0 for an empty CDF.
func (c *CDF) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if c.total == 0 {
		return 0
	}
	c.sortSamples()
	if q <= 0 {
		return c.entries[0].v
	}
	if q >= 1 {
		return c.entries[len(c.entries)-1].v
	}
	// The answer is the first entry whose cumulative fraction reaches
	// q: cum[i]/total >= q, compared cross-multiplied so no rounding
	// fudge is needed (both sides are exact for totals < 2^53).
	target := q * float64(c.total)
	i := sort.Search(len(c.cum), func(i int) bool { return float64(c.cum[i]) >= target })
	if i == len(c.entries) {
		i = len(c.entries) - 1
	}
	return c.entries[i].v
}

// Min returns the smallest sample, or 0 if empty.
func (c *CDF) Min() float64 {
	if c.total == 0 {
		return 0
	}
	c.sortSamples()
	return c.entries[0].v
}

// Max returns the largest sample, or 0 if empty.
func (c *CDF) Max() float64 {
	if c.total == 0 {
		return 0
	}
	c.sortSamples()
	return c.entries[len(c.entries)-1].v
}

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (c *CDF) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	var sum float64
	for _, e := range c.entries {
		sum += e.v * float64(e.n)
	}
	return sum / float64(c.total)
}

// Point is one (X, F) pair of a rendered CDF curve: F is the fraction
// of samples <= X.
type Point struct {
	X float64
	F float64
}

// Curve renders the CDF at the given x positions.
func (c *CDF) Curve(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, F: c.At(x)}
	}
	return pts
}

// Steps returns the full empirical step curve: one point per distinct
// sample value, in increasing order.
func (c *CDF) Steps() []Point {
	c.sortSamples()
	pts := make([]Point, len(c.entries))
	n := float64(c.total)
	for i, e := range c.entries {
		pts[i] = Point{X: e.v, F: float64(c.cum[i]) / n}
	}
	return pts
}

// LogTicks returns positions 10^lo, 2*10^lo, 5*10^lo, ... up to 10^hi,
// the customary tick marks for the paper's log-scale CDF plots.
func LogTicks(lo, hi int) []float64 {
	var ticks []float64
	for e := lo; e <= hi; e++ {
		base := pow10(e)
		ticks = append(ticks, base)
		if e < hi {
			ticks = append(ticks, 2*base, 5*base)
		}
	}
	return ticks
}

func pow10(e int) float64 {
	v := 1.0
	for i := 0; i < e; i++ {
		v *= 10
	}
	for i := 0; i > e; i-- {
		v /= 10
	}
	return v
}

// FormatCurve renders points as an aligned two-column table for report
// output, e.g. the rows behind the paper's CDF figures.
func FormatCurve(xlabel string, pts []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%15s  %8s\n", xlabel, "CDF")
	for _, p := range pts {
		fmt.Fprintf(&b, "%15.0f  %8.4f\n", p.X, p.F)
	}
	return b.String()
}
