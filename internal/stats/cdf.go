package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over float64
// samples. The zero value is ready to use.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// AddN appends the sample v with multiplicity n.
func (c *CDF) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		c.samples = append(c.samples, v)
	}
	c.sorted = false
}

// Len reports the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) sortSamples() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns the fraction of samples <= x, i.e. CDF(x).
// It returns 0 for an empty CDF.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sortSamples()
	i := sort.SearchFloat64s(c.samples, x)
	// SearchFloat64s returns the first index with samples[i] >= x;
	// advance over equal values to count them as <= x.
	for i < len(c.samples) && c.samples[i] == x {
		i++
	}
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the smallest sample v such that CDF(v) >= q,
// for q in (0, 1]. Quantile(0) returns the minimum sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sortSamples()
	if q <= 0 {
		return c.samples[0]
	}
	if q >= 1 {
		return c.samples[len(c.samples)-1]
	}
	idx := int(q*float64(len(c.samples))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.samples) {
		idx = len(c.samples) - 1
	}
	return c.samples[idx]
}

// Min returns the smallest sample, or 0 if empty.
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sortSamples()
	return c.samples[0]
}

// Max returns the largest sample, or 0 if empty.
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sortSamples()
	return c.samples[len(c.samples)-1]
}

// Mean returns the arithmetic mean of the samples, or 0 if empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range c.samples {
		sum += v
	}
	return sum / float64(len(c.samples))
}

// Point is one (X, F) pair of a rendered CDF curve: F is the fraction
// of samples <= X.
type Point struct {
	X float64
	F float64
}

// Curve renders the CDF at the given x positions.
func (c *CDF) Curve(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, F: c.At(x)}
	}
	return pts
}

// Steps returns the full empirical step curve: one point per distinct
// sample value, in increasing order.
func (c *CDF) Steps() []Point {
	c.sortSamples()
	var pts []Point
	n := float64(len(c.samples))
	for i := 0; i < len(c.samples); {
		j := i
		for j < len(c.samples) && c.samples[j] == c.samples[i] {
			j++
		}
		pts = append(pts, Point{X: c.samples[i], F: float64(j) / n})
		i = j
	}
	return pts
}

// LogTicks returns positions 10^lo, 2*10^lo, 5*10^lo, ... up to 10^hi,
// the customary tick marks for the paper's log-scale CDF plots.
func LogTicks(lo, hi int) []float64 {
	var ticks []float64
	for e := lo; e <= hi; e++ {
		base := pow10(e)
		ticks = append(ticks, base)
		if e < hi {
			ticks = append(ticks, 2*base, 5*base)
		}
	}
	return ticks
}

func pow10(e int) float64 {
	v := 1.0
	for i := 0; i < e; i++ {
		v *= 10
	}
	for i := 0; i > e; i-- {
		v /= 10
	}
	return v
}

// FormatCurve renders points as an aligned two-column table for report
// output, e.g. the rows behind the paper's CDF figures.
func FormatCurve(xlabel string, pts []Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%15s  %8s\n", xlabel, "CDF")
	for _, p := range pts {
		fmt.Fprintf(&b, "%15.0f  %8.4f\n", p.X, p.F)
	}
	return b.String()
}
