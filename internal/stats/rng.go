// Package stats provides the small statistical toolkit used throughout
// the CHARISMA reproduction: deterministic random number generation,
// histograms, empirical cumulative distribution functions, and
// summary statistics.
//
// All randomness in the repository flows through the RNG type defined
// here so that studies are reproducible bit-for-bit from a seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (an xorshift128+ variant, seeded via splitmix64). It is not safe for
// concurrent use; give each logical stream its own RNG via Split.
type RNG struct {
	s0, s1 uint64
}

// splitmix64 advances the given state and returns the next output.
// It is used for seeding so that nearby seeds produce unrelated streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed.
func NewRNG(seed uint64) *RNG {
	st := seed
	r := &RNG{}
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1 // the all-zero state is absorbing; avoid it
	}
	return r
}

// Split derives an independent generator from r and a stream label.
// The parent's state is not consumed, so Split(i) is stable for a
// given parent state.
func (r *RNG) Split(label uint64) *RNG {
	st := r.s0 ^ (r.s1 * 0x9e3779b97f4a7c15) ^ label
	return NewRNG(splitmix64(&st))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int64n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int64n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int64n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNorm returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (r *RNG) LogNorm(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Pick returns an index in [0, len(weights)) chosen with probability
// proportional to the weights. It panics if the weights are empty or
// sum to a non-positive value.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("stats: Pick with no positive weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
