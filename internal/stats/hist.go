package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist is an integer-valued histogram: it counts occurrences of int64
// keys. The zero value is ready to use.
type Hist struct {
	counts map[int64]int64
	total  int64
}

// Add increments the count for key k.
func (h *Hist) Add(k int64) { h.AddN(k, 1) }

// AddN increments the count for key k by n.
func (h *Hist) AddN(k int64, n int64) {
	if h.counts == nil {
		h.counts = make(map[int64]int64)
	}
	h.counts[k] += n
	h.total += n
}

// Reset empties the histogram while keeping its count map, so a
// pooled histogram (see analysis.Scratch) can be refilled without
// reallocating buckets.
func (h *Hist) Reset() {
	clear(h.counts)
	h.total = 0
}

// Count returns the count recorded for key k.
func (h *Hist) Count(k int64) int64 { return h.counts[k] }

// Total returns the sum of all counts.
func (h *Hist) Total() int64 { return h.total }

// Distinct returns the number of distinct keys with non-zero counts.
func (h *Hist) Distinct() int {
	n := 0
	for _, c := range h.counts {
		if c != 0 {
			n++
		}
	}
	return n
}

// Keys returns the recorded keys in increasing order.
func (h *Hist) Keys() []int64 {
	keys := make([]int64, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Fraction returns the fraction of all counts recorded for key k.
func (h *Hist) Fraction(k int64) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[k]) / float64(h.total)
}

// Bucketed groups the histogram into labeled buckets. The boundaries
// slice gives the inclusive upper edge of each bucket but the last,
// which is open ("5+" style). Returned counts have len(boundaries)+1
// entries.
func (h *Hist) Bucketed(boundaries []int64) []int64 {
	out := make([]int64, len(boundaries)+1)
	for k, c := range h.counts {
		placed := false
		for i, b := range boundaries {
			if k <= b {
				out[i] += c
				placed = true
				break
			}
		}
		if !placed {
			out[len(boundaries)] += c
		}
	}
	return out
}

// Format renders the histogram as an aligned table.
func (h *Hist) Format(keyLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%15s  %10s  %8s\n", keyLabel, "count", "percent")
	for _, k := range h.Keys() {
		fmt.Fprintf(&b, "%15d  %10d  %7.1f%%\n", k, h.counts[k], 100*h.Fraction(k))
	}
	return b.String()
}

// Summary holds the moments and extremes of a stream of float64
// observations, accumulated online.
type Summary struct {
	n          int64
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Sum returns the total of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the population variance, or 0 with fewer than two
// observations.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		return 0 // guard against floating-point cancellation
	}
	return v
}

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with none.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with none.
func (s *Summary) Max() float64 { return s.max }

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f stddev=%.2f min=%.2f max=%.2f",
		s.n, s.Mean(), s.Stddev(), s.min, s.max)
}
