package faults

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// NodeReport summarizes one I/O node's degradation over a study.
type NodeReport struct {
	Node             int
	BaseSeconds      float64 // service time before degradation
	ActualSeconds    float64 // service time actually charged
	DegradedSeconds  float64 // charged time spent degraded
	Inflation        float64 // mean service-time inflation (actual/base)
	DeferredRequests int64   // requests queued past an outage window
	DeferredSeconds  float64 // total outage wait added
	WearExtraSeconds float64 // extra disk time from wear
}

// NetReport summarizes the interconnect degradation over a study.
type NetReport struct {
	Messages      int64
	Jittered      int64
	JitterSeconds float64
}

// Report is the per-study degradation summary attached to the analysis
// report when faults are enabled.
type Report struct {
	Nodes []NodeReport
	Net   *NetReport
}

// Report collects the degradation summary. wearExtra carries each
// drive's wear-added busy time (indexed by I/O node), gathered by the
// machine since the drives are owned by the file system.
func (inj *Injector) Report(wearExtra []sim.Time) *Report {
	r := &Report{}
	for i := range inj.nodes {
		nr := NodeReport{Node: i, Inflation: 1}
		ns := inj.nodes[i]
		if ns != nil {
			nr.BaseSeconds = ns.base.ToSeconds()
			nr.ActualSeconds = ns.actual.ToSeconds()
			nr.DegradedSeconds = ns.degraded.ToSeconds()
			if ns.base > 0 {
				nr.Inflation = float64(ns.actual) / float64(ns.base)
			}
			nr.DeferredRequests = ns.deferred
			nr.DeferredSeconds = ns.waited.ToSeconds()
		}
		if i < len(wearExtra) {
			nr.WearExtraSeconds = wearExtra[i].ToSeconds()
		}
		// Healthy, wear-free nodes carry no degradation statistics;
		// listing them would read as "this node did no work".
		if ns == nil && nr.WearExtraSeconds == 0 {
			continue
		}
		r.Nodes = append(r.Nodes, nr)
	}
	if inj.net != nil {
		r.Net = &NetReport{
			Messages:      inj.net.messages,
			Jittered:      inj.net.jittered,
			JitterSeconds: inj.net.jitter.ToSeconds(),
		}
	}
	return r
}

// Format renders the Degradation report section in the same tabular
// style as the paper-figure sections.
func (r *Report) Format() string {
	var b strings.Builder
	b.WriteString("Degradation (injected faults)\n")
	fmt.Fprintf(&b, "%6s  %12s  %12s  %9s  %9s  %12s  %12s\n",
		"node", "service s", "degraded s", "inflation", "deferred", "wait s", "wear s")
	for _, n := range r.Nodes {
		fmt.Fprintf(&b, "%6d  %12.3f  %12.3f  %9.3f  %9d  %12.3f  %12.3f\n",
			n.Node, n.ActualSeconds, n.DegradedSeconds, n.Inflation,
			n.DeferredRequests, n.DeferredSeconds, n.WearExtraSeconds)
	}
	if r.Net != nil {
		fmt.Fprintf(&b, "network: %d messages, %d jittered (+%.3f s)\n",
			r.Net.Messages, r.Net.Jittered, r.Net.JitterSeconds)
	}
	return b.String()
}
