package faults

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error, naming the field
	}{
		{"node negative", Config{Windows: []Window{{Node: -1, EndHours: 1, Slowdown: 2}}}, "ioNodes[0].node"},
		{"node too large", Config{Windows: []Window{{Node: 10, EndHours: 1, Slowdown: 2}}}, "ioNodes[0].node"},
		{"start NaN", Config{Windows: []Window{{StartHours: math.NaN(), EndHours: 1, Slowdown: 2}}}, "startHours"},
		{"start negative", Config{Windows: []Window{{StartHours: -1, EndHours: 1, Slowdown: 2}}}, "startHours"},
		{"start Inf", Config{Windows: []Window{{StartHours: math.Inf(1), EndHours: 1, Slowdown: 2}}}, "startHours"},
		{"end inverted", Config{Windows: []Window{{StartHours: 2, EndHours: 1, Slowdown: 2}}}, "endHours"},
		{"end equals start", Config{Windows: []Window{{StartHours: 1, EndHours: 1, Slowdown: 2}}}, "endHours"},
		{"end NaN", Config{Windows: []Window{{EndHours: math.NaN(), Slowdown: 2}}}, "endHours"},
		{"end Inf", Config{Windows: []Window{{EndHours: math.Inf(1), Slowdown: 2}}}, "endHours"},
		{"outage with slowdown", Config{Windows: []Window{{EndHours: 1, Outage: true, Slowdown: 2}}}, "both outage and slowdown"},
		{"slowdown below one", Config{Windows: []Window{{EndHours: 1, Slowdown: 0.5}}}, "slowdown"},
		{"slowdown zero non-outage", Config{Windows: []Window{{EndHours: 1}}}, "slowdown"},
		{"slowdown NaN", Config{Windows: []Window{{EndHours: 1, Slowdown: math.NaN()}}}, "slowdown"},
		{"slowdown huge", Config{Windows: []Window{{EndHours: 1, Slowdown: 1e7}}}, "slowdown"},
		{"seek negative", Config{Wear: Wear{SeekMultiplier: -1}}, "disk.seekMultiplier"},
		{"seek NaN", Config{Wear: Wear{SeekMultiplier: math.NaN()}}, "disk.seekMultiplier"},
		{"transfer sub-unit", Config{Wear: Wear{TransferMultiplier: 0.3}}, "disk.transferMultiplier"},
		{"ramp negative", Config{Wear: Wear{RampPerHour: -0.1}}, "disk.rampPerHour"},
		{"ramp NaN", Config{Wear: Wear{RampPerHour: math.NaN()}}, "disk.rampPerHour"},
		{"latency NaN", Config{Net: Net{LatencyMultiplier: math.NaN()}}, "network.latencyMultiplier"},
		{"bandwidth sub-unit", Config{Net: Net{BandwidthDivisor: 0.5}}, "network.bandwidthDivisor"},
		{"jitter negative", Config{Net: Net{JitterMicros: -5}}, "network.jitterMicros"},
		{"jitter NaN", Config{Net: Net{JitterMicros: math.NaN()}}, "network.jitterMicros"},
		{"jitter Inf", Config{Net: Net{JitterMicros: math.Inf(1)}}, "network.jitterMicros"},
		{"link dim out of range", Config{Net: Net{Links: []Link{{Dim: 7, LatencyMultiplier: 2}}}}, "links[0].dim"},
		{"link dim duplicate", Config{Net: Net{Links: []Link{{Dim: 1, LatencyMultiplier: 2}, {Dim: 1, LatencyMultiplier: 3}}}}, "repeats dim 1"},
		{"link multiplier NaN", Config{Net: Net{Links: []Link{{Dim: 0, LatencyMultiplier: math.NaN()}}}}, "links[0].latencyMultiplier"},
		{"hot node out of range", Config{Hot: Hot{Node: 10, Multiplier: 2}}, "hotNode.node"},
		{"hot multiplier NaN", Config{Hot: Hot{Multiplier: math.NaN()}}, "hotNode.multiplier"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate(10, 7)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

func TestValidateAcceptsHealthyAndTypical(t *testing.T) {
	var zero Config
	if err := zero.Validate(10, 7); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if zero.Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	full := Config{
		Windows: []Window{
			{Node: 0, StartHours: 0, EndHours: 1, Slowdown: 4},
			{Node: 1, StartHours: 1, EndHours: 2, Outage: true},
		},
		Wear: Wear{SeekMultiplier: 1.5, TransferMultiplier: 1.5, RampPerHour: 0.25},
		Net:  Net{LatencyMultiplier: 2, BandwidthDivisor: 2, JitterMicros: 100, Links: []Link{{Dim: 0, LatencyMultiplier: 2}}},
		Hot:  Hot{Node: 3, Multiplier: 2},
	}
	if err := full.Validate(10, 7); err != nil {
		t.Fatalf("typical config rejected: %v", err)
	}
	if !full.Enabled() {
		t.Fatal("typical config reports disabled")
	}
}

func TestResolveVersionAndRoundTrip(t *testing.T) {
	bad := Spec{Version: 2}
	if _, err := bad.Resolve(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version 2 resolved: %v", err)
	}

	raw := `{
		"version": 1,
		"ioNodes": [{"node": 3, "startHours": 0, "endHours": 1, "slowdown": 4}],
		"disk": {"seekMultiplier": 1.5, "transferMultiplier": 1.5, "rampPerHour": 0.25},
		"network": {"latencyMultiplier": 2, "bandwidthDivisor": 2, "jitterMicros": 100,
		            "links": [{"dim": 1, "latencyMultiplier": 3}]},
		"hotNode": {"node": 0, "multiplier": 2}
	}`
	dec := json.NewDecoder(strings.NewReader(raw))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		t.Fatal(err)
	}
	c, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(10, 7); err != nil {
		t.Fatal(err)
	}
	if len(c.Windows) != 1 || c.Windows[0] != (Window{Node: 3, EndHours: 1, Slowdown: 4}) {
		t.Fatalf("windows resolved to %+v", c.Windows)
	}
	if c.Wear != (Wear{SeekMultiplier: 1.5, TransferMultiplier: 1.5, RampPerHour: 0.25}) {
		t.Fatalf("wear resolved to %+v", c.Wear)
	}
	if c.Net.LatencyMultiplier != 2 || c.Net.JitterMicros != 100 ||
		len(c.Net.Links) != 1 || c.Net.Links[0] != (Link{Dim: 1, LatencyMultiplier: 3}) {
		t.Fatalf("net resolved to %+v", c.Net)
	}
	if c.Hot != (Hot{Node: 0, Multiplier: 2}) {
		t.Fatalf("hot resolved to %+v", c.Hot)
	}

	empty := Spec{Version: 1}
	c, err = empty.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Fatal("empty spec resolved to an enabled config")
	}
}

// TestPresetsValidOnBothMachineShapes pins that every named preset is
// usable on the full NAS machine (10 I/O nodes, dim-7 cube) and the
// mini machine (4 I/O nodes, dim-5 cube), so `charisma -faults` never
// fails for shape reasons.
func TestPresetsValidOnBothMachineShapes(t *testing.T) {
	names := PresetNames()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 presets, got %v", names)
	}
	for _, name := range names {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if !cfg.Enabled() {
			t.Fatalf("preset %q is a no-op", name)
		}
		if err := cfg.Validate(10, 7); err != nil {
			t.Fatalf("preset %q invalid on NAS shape: %v", name, err)
		}
		if err := cfg.Validate(4, 5); err != nil {
			t.Fatalf("preset %q invalid on mini shape: %v", name, err)
		}
	}
	if _, err := Preset("no-such"); err == nil || !strings.Contains(err.Error(), "no-such") {
		t.Fatalf("unknown preset error %v does not name the preset", err)
	}
}

func TestNodeStateAdmitAndScale(t *testing.T) {
	cfg := Config{
		Windows: []Window{
			{Node: 0, StartHours: 1, EndHours: 2, Outage: true},
			{Node: 0, StartHours: 3, EndHours: 4, Slowdown: 4},
		},
		Hot: Hot{Node: 0, Multiplier: 2},
	}
	inj := NewInjector(cfg, 4, stats.NewRNG(1))
	ns := inj.Node(0)
	if ns == nil {
		t.Fatal("node 0 has no fault state")
	}
	for i := 1; i < 4; i++ {
		if inj.Node(i) != nil {
			t.Fatalf("healthy node %d grew fault state", i)
		}
	}

	hour := sim.Time(sim.Hour)
	// Before the outage: admitted immediately.
	if got := ns.Admit(hour/2, 1); got != hour/2 {
		t.Fatalf("pre-outage Admit = %v", got)
	}
	// Mid-outage: deferred to the window's end.
	if got := ns.Admit(hour+hour/2, 3); got != 2*hour {
		t.Fatalf("mid-outage Admit = %v, want %v", got, 2*hour)
	}
	if ns.deferred != 3 || ns.waited != hour/2 {
		t.Fatalf("outage stats deferred=%d waited=%v", ns.deferred, ns.waited)
	}
	// After the outage: admitted immediately again.
	if got := ns.Admit(2*hour+1, 1); got != 2*hour+1 {
		t.Fatalf("post-outage Admit = %v", got)
	}

	// Hot-node skew applies everywhere; the slowdown window compounds.
	if got := ns.Scale(0, 100); got != 200 {
		t.Fatalf("hot-only Scale = %v, want 200", got)
	}
	if got := ns.Scale(3*hour+1, 100); got != 800 {
		t.Fatalf("windowed Scale = %v, want 800 (hot 2x * slowdown 4x)", got)
	}
	if ns.base != 200 || ns.actual != 1000 {
		t.Fatalf("scale stats base=%v actual=%v", ns.base, ns.actual)
	}
}

func TestNetStateLatency(t *testing.T) {
	perHop := sim.Time(10)

	// Link fault doubles link class 1 only; a message crossing classes
	// 0 and 1 once each, plus 2 class-less peripheral hops:
	// software 100 + 2 extra hops*10 + (1 + 2)*10 class hops +
	// transfer 50.
	d := NetState{cfg: Net{Links: []Link{{Dim: 1, LatencyMultiplier: 2}}}, linkMul: []float64{1, 2}}
	base := sim.Time(100) + 2*perHop + d.HopCost(0, 1, perHop) + d.HopCost(1, 1, perHop)
	if got := d.Message(base, 50); got != 100+30+20+50 {
		t.Fatalf("link-degraded latency = %v, want 200", got)
	}

	// Latency multiplier scales software+hops, bandwidth divisor the
	// transfer, and jitter adds a bounded non-negative term.
	d2 := NetState{
		cfg: Net{LatencyMultiplier: 2, BandwidthDivisor: 2, JitterMicros: 5},
		rng: stats.NewRNG(9).Split(faultStream),
	}
	got := d2.Message(100+d2.HopCost(0, 1, perHop), 50)
	floor := sim.Time((100+10)*2 + 50*2)
	if got < floor || got > floor+5*sim.Microsecond {
		t.Fatalf("degraded latency %v outside [%v, %v]", got, floor, floor+5*sim.Microsecond)
	}
	if d2.messages != 1 || d2.jittered != 1 {
		t.Fatalf("net stats messages=%d jittered=%d", d2.messages, d2.jittered)
	}

	// Same seed, same call order: jitter is reproducible.
	d3 := NetState{
		cfg: Net{LatencyMultiplier: 2, BandwidthDivisor: 2, JitterMicros: 5},
		rng: stats.NewRNG(9).Split(faultStream),
	}
	if again := d3.Message(100+d3.HopCost(0, 1, perHop), 50); again != got {
		t.Fatalf("jitter not reproducible: %v vs %v", again, got)
	}
}

func TestInjectorBackstopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted an invalid config")
		}
	}()
	NewInjector(Config{Windows: []Window{{Node: 99, EndHours: 1, Slowdown: 2}}}, 4, stats.NewRNG(1))
}

func TestReportSkipsHealthyNodes(t *testing.T) {
	cfg := Config{Windows: []Window{{Node: 2, StartHours: 0, EndHours: 1, Slowdown: 2}}}
	inj := NewInjector(cfg, 10, stats.NewRNG(1))
	inj.Node(2).Scale(0, 100)
	r := inj.Report(make([]sim.Time, 10))
	if len(r.Nodes) != 1 || r.Nodes[0].Node != 2 {
		t.Fatalf("report rows %+v, want only node 2", r.Nodes)
	}
	if r.Net != nil {
		t.Fatal("healthy network grew a report")
	}
	text := r.Format()
	if !strings.Contains(text, "Degradation (injected faults)") {
		t.Fatalf("report header missing:\n%s", text)
	}

	// Wear-only runs still list every worn node.
	wearOnly := NewInjector(Config{Wear: Wear{SeekMultiplier: 1.5}}, 4, stats.NewRNG(1))
	extra := []sim.Time{0, sim.Time(5 * sim.Second), 0, 0}
	r2 := wearOnly.Report(extra)
	if len(r2.Nodes) != 1 || r2.Nodes[0].Node != 1 || r2.Nodes[0].WearExtraSeconds != 5 {
		t.Fatalf("wear report rows %+v", r2.Nodes)
	}
}
