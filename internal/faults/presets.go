package faults

import (
	"fmt"
	"sort"
	"strings"
)

// presets are the named fault configurations reachable from the
// command line (charisma -faults NAME). All of them validate against
// the NAS machine shape (10 I/O nodes, dimension-7 cube) and the mini
// preset (4 I/O nodes), so they compose with every built-in machine.
var presets = map[string]Config{
	// One I/O node permanently 4x slower: the fig8-degraded corpus
	// scenario's fault, as an ad-hoc study.
	"io-slow": {
		Windows: []Window{{Node: 3, StartHours: 0, EndHours: maxWindowHours, Slowdown: 4}},
	},
	// One I/O node dark for the second simulated hour; requests queue
	// until it returns.
	"io-outage": {
		Windows: []Window{{Node: 1, StartHours: 1, EndHours: 2, Outage: true}},
	},
	// Aging drives: seeks and transfers 1.5x slower and degrading a
	// further 25% per simulated hour.
	"dying-disk": {
		Wear: Wear{SeekMultiplier: 1.5, TransferMultiplier: 1.5, RampPerHour: 0.25},
	},
	// A congested cube: double latency, half bandwidth, up to 100 us
	// of deterministic per-message jitter.
	"slow-net": {
		Net: Net{LatencyMultiplier: 2, BandwidthDivisor: 2, JitterMicros: 100},
	},
	// Hot-node skew: I/O node 0 serves everything twice as slowly.
	"hot-node": {
		Hot: Hot{Node: 0, Multiplier: 2},
	},
}

// Preset returns the named fault configuration. The error lists the
// known names.
func Preset(name string) (Config, error) {
	c, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("faults: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
	return c, nil
}

// PresetNames returns the preset names in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
