package faults

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// faultStream labels the RNG stream the injector splits off the
// machine seed for fault randomness (message jitter). Split does not
// consume the parent's state, so taking this stream leaves the clock
// and workload streams exactly where a fault-free build puts them.
const faultStream = 0xfa175

// Injector is the per-machine runtime state for one fault
// configuration. Build one per machine; it is not safe for concurrent
// use (each sweep worker builds its own machine and injector).
type Injector struct {
	cfg   Config
	nodes []*NodeState
	net   *NetState
}

// NewInjector builds the runtime state for cfg on a machine with
// ioNodes I/O nodes. rng is the machine's root RNG; the injector
// splits its own stream off it. cfg must have passed Validate.
func NewInjector(cfg Config, ioNodes int, rng *stats.RNG) *Injector {
	if err := cfg.Validate(ioNodes, 32); err != nil {
		// Shape errors are caught by callers with the real cube
		// dimension; this is a backstop for hand-built configs.
		panic(fmt.Sprintf("faults: invalid config: %v", err))
	}
	inj := &Injector{cfg: cfg, nodes: make([]*NodeState, ioNodes)}
	for _, w := range cfg.Windows {
		ns := inj.nodeState(w.Node)
		ns.windows = append(ns.windows, window{
			start:  sim.Time(w.StartHours * float64(sim.Hour)),
			end:    sim.Time(w.EndHours * float64(sim.Hour)),
			factor: w.Slowdown,
			outage: w.Outage,
		})
	}
	if cfg.Hot.Multiplier > 1 {
		inj.nodeState(cfg.Hot.Node).hot = cfg.Hot.Multiplier
	}
	for _, ns := range inj.nodes {
		if ns != nil {
			sort.SliceStable(ns.windows, func(i, j int) bool {
				return ns.windows[i].start < ns.windows[j].start
			})
		}
	}
	n := cfg.Net
	if n.LatencyMultiplier != 0 || n.BandwidthDivisor != 0 || n.JitterMicros != 0 || len(n.Links) > 0 {
		st := &NetState{cfg: n}
		if n.JitterMicros > 0 {
			st.rng = rng.Split(faultStream)
		}
		if len(n.Links) > 0 {
			maxDim := 0
			for _, l := range n.Links {
				if l.Dim > maxDim {
					maxDim = l.Dim
				}
			}
			st.linkMul = make([]float64, maxDim+1)
			for i := range st.linkMul {
				st.linkMul[i] = 1
			}
			for _, l := range n.Links {
				st.linkMul[l.Dim] = l.LatencyMultiplier
			}
		}
		inj.net = st
	}
	return inj
}

func (inj *Injector) nodeState(i int) *NodeState {
	if inj.nodes[i] == nil {
		inj.nodes[i] = &NodeState{node: i, hot: 1}
	}
	return inj.nodes[i]
}

// Node returns I/O node i's fault state, or nil when the node has no
// node-level faults configured (the hot path then skips the hook
// entirely).
func (inj *Injector) Node(i int) *NodeState { return inj.nodes[i] }

// Net returns the interconnect degradation state, or nil when the
// network is healthy.
func (inj *Injector) Net() *NetState { return inj.net }

// DiskWear reports the configured drive wear, false when drives are
// healthy.
func (inj *Injector) DiskWear() (Wear, bool) {
	return inj.cfg.Wear, inj.cfg.Wear != (Wear{})
}

// window is a resolved degradation window in simulation time.
type window struct {
	start, end sim.Time
	factor     float64
	outage     bool
}

// NodeState tracks one I/O node's degradation windows, hot-node skew,
// and accumulated statistics. It implements the cfs.NodeFault hook.
type NodeState struct {
	node    int
	windows []window // sorted by start
	hot     float64  // permanent multiplier, 1 when none

	base     sim.Time // service time before scaling
	actual   sim.Time // service time after scaling
	degraded sim.Time // actual service time spent with factor != 1
	deferred int64    // requests pushed out of outage windows
	waited   sim.Time // total wait added by outages
}

// Admit returns the earliest time at or after start the node may begin
// service, deferring the n-request batch past any outage window in
// effect. Service already started when an outage begins runs to
// completion (the node finishes in-flight work, then goes dark).
func (s *NodeState) Admit(start sim.Time, n int) sim.Time {
	for _, w := range s.windows {
		if w.start > start {
			break
		}
		if w.outage && start < w.end {
			s.deferred += int64(n)
			s.waited += w.end - start
			start = w.end
		}
	}
	return start
}

// factor returns the service-time multiplier in effect at time t.
func (s *NodeState) factor(t sim.Time) float64 {
	f := s.hot
	for _, w := range s.windows {
		if w.start > t {
			break
		}
		if !w.outage && t < w.end {
			f *= w.factor
		}
	}
	return f
}

// Scale inflates a service duration beginning at start by the
// degradation factor in effect then, and accumulates the node's
// inflation statistics.
func (s *NodeState) Scale(start, dur sim.Time) sim.Time {
	out := dur
	if f := s.factor(start); f != 1 {
		out = sim.Time(float64(dur) * f)
		s.degraded += out
	}
	s.base += dur
	s.actual += out
	return out
}

// NetState applies the interconnect degradation and tracks message
// statistics. It implements the topo.Degrader hook: the topology
// calls HopCost once per link class a message crosses, then Message
// exactly once per message.
type NetState struct {
	cfg     Net
	rng     *stats.RNG
	linkMul []float64 // per-link-class multiplier, nil when no link faults

	messages int64
	jittered int64
	jitter   sim.Time
}

// HopCost returns the possibly degraded cost of hops traversals of
// links in the given class (a hypercube dimension, a mesh axis, a
// fat-tree level); perHop is the healthy per-hop unit. Each degraded
// hop's cost is truncated to the clock tick individually, matching
// the arithmetic of builds that predate the topology registry.
func (d *NetState) HopCost(class, hops int, perHop sim.Time) sim.Time {
	if d.linkMul == nil {
		return sim.Time(hops) * perHop
	}
	m := 1.0
	if class < len(d.linkMul) {
		m = d.linkMul[class]
	}
	return sim.Time(hops) * sim.Time(float64(perHop)*m)
}

// Message degrades one message's modeled latency: base is the
// software cost plus every hop cost, transfer the healthy bandwidth
// cost. The kernel is single-threaded and every simulated message
// calls this exactly once, so the jitter stream is consumed in a
// deterministic order.
func (d *NetState) Message(base, transfer sim.Time) sim.Time {
	t := base
	if m := d.cfg.LatencyMultiplier; m > 1 {
		t = sim.Time(float64(t) * m)
	}
	if div := d.cfg.BandwidthDivisor; div > 1 {
		transfer = sim.Time(float64(transfer) * div)
	}
	t += transfer
	d.messages++
	if d.cfg.JitterMicros > 0 {
		j := sim.Time(d.rng.Float64() * d.cfg.JitterMicros * float64(sim.Microsecond))
		t += j
		d.jitter += j
		d.jittered++
	}
	return t
}
