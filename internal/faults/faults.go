// Package faults describes deterministic hardware degradation injected
// into the simulated iPSC/860: per-I/O-node slowdown or outage windows,
// progressive disk wear, a degraded interconnect, and hot-node skew.
//
// Faults change *service times only*. All fault randomness (message
// jitter) comes from a dedicated stats.RNG stream split off the study
// seed, never from the workload stream, so enabling faults leaves the
// generated workload untouched and a faulted study is byte-identical
// across repeat runs and worker counts. A zero Config is "no faults"
// and leaves the machine's output byte-identical to a fault-free build.
//
// The hardware models (disk, cfs, hypercube) do not import this
// package; they expose small hook points (disk.Wear, cfs.NodeFault,
// hypercube.Degrader) that the machine package wires to the runtime
// state built here.
package faults

import (
	"fmt"
)

// SpecVersion is the faults-block schema version this build writes and
// accepts.
const SpecVersion = 1

// Validation bounds. Multipliers are capped so a typo cannot produce a
// simulation that never terminates; windows are capped far above any
// realistic horizon (the full-scale study is ~156 hours).
const (
	maxMultiplier   = 1e6
	maxWindowHours  = 1e6
	maxRampPerHour  = 1e6
	maxJitterMicros = 1e9
)

// Config is the resolved, validated fault description a machine runs
// with. It is a pure value type (no pointers, maps, or funcs) so that
// it renders stably under fmt's %+v — the run store fingerprints
// machine configurations that way. The zero value means "no faults".
type Config struct {
	// Windows are per-I/O-node degradation windows.
	Windows []Window
	// Wear degrades every drive in the machine.
	Wear Wear
	// Net degrades the interconnect.
	Net Net
	// Hot gives one I/O node a permanent service-time multiplier.
	Hot Hot
}

// Window degrades one I/O node over [StartHours, EndHours) of virtual
// time: either every service takes Slowdown times as long, or (Outage)
// the node stops serving entirely and requests queue until the window
// ends.
type Window struct {
	Node       int
	StartHours float64
	EndHours   float64
	Slowdown   float64 // >= 1; must be 0 when Outage is set
	Outage     bool
}

// Wear models aging drives: seek and transfer multipliers, plus a
// progressive ramp that scales both by (1 + RampPerHour * simulated
// hours), so the machine gets slower the longer the study runs. Zero
// fields are "off".
type Wear struct {
	SeekMultiplier     float64 // >= 1, 0 = off
	TransferMultiplier float64 // >= 1, 0 = off
	RampPerHour        float64 // >= 0, 0 = off
}

// Net degrades the interconnect: a global latency multiplier on the
// software and per-hop costs, a bandwidth divisor on the transfer
// cost, deterministic per-message jitter drawn from the fault stream,
// and per-dimension link latency multipliers. Zero fields are "off".
type Net struct {
	LatencyMultiplier float64 // >= 1, 0 = off
	BandwidthDivisor  float64 // >= 1, 0 = off
	JitterMicros      float64 // max uniform per-message jitter, 0 = off
	Links             []Link
}

// Link multiplies the per-hop latency of every cube link along one
// hypercube dimension.
type Link struct {
	Dim               int
	LatencyMultiplier float64 // >= 1
}

// Hot is hot-node skew: I/O node Node serves every request Multiplier
// times slower, permanently. Zero Multiplier = off.
type Hot struct {
	Node       int
	Multiplier float64 // >= 1, 0 = off
}

// Enabled reports whether the configuration injects anything at all.
func (c *Config) Enabled() bool {
	return len(c.Windows) > 0 ||
		c.Wear != (Wear{}) ||
		c.Net.LatencyMultiplier != 0 || c.Net.BandwidthDivisor != 0 ||
		c.Net.JitterMicros != 0 || len(c.Net.Links) > 0 ||
		c.Hot.Multiplier != 0
}

// checkMul validates an optional multiplier: 0 (off) or in
// [1, maxMultiplier], finite. The negated-range form rejects NaN.
func checkMul(field string, v float64) error {
	if v == 0 {
		return nil
	}
	if !(v >= 1 && v <= maxMultiplier) {
		return fmt.Errorf("faults: %s %v out of range [1, %g]", field, v, maxMultiplier)
	}
	return nil
}

// Validate checks the configuration against a machine shape: ioNodes
// I/O nodes and a netDim-dimensional hypercube. Errors name the
// offending field.
func (c *Config) Validate(ioNodes, netDim int) error {
	for i, w := range c.Windows {
		if w.Node < 0 || w.Node >= ioNodes {
			return fmt.Errorf("faults: ioNodes[%d].node %d out of range [0, %d)", i, w.Node, ioNodes)
		}
		if !(w.StartHours >= 0 && w.StartHours <= maxWindowHours) {
			return fmt.Errorf("faults: ioNodes[%d].startHours %v out of range [0, %g]", i, w.StartHours, maxWindowHours)
		}
		if !(w.EndHours > w.StartHours && w.EndHours <= maxWindowHours) {
			return fmt.Errorf("faults: ioNodes[%d].endHours %v must be in (startHours, %g]", i, w.EndHours, maxWindowHours)
		}
		if w.Outage {
			if w.Slowdown != 0 {
				return fmt.Errorf("faults: ioNodes[%d] sets both outage and slowdown %v", i, w.Slowdown)
			}
		} else if !(w.Slowdown >= 1 && w.Slowdown <= maxMultiplier) {
			return fmt.Errorf("faults: ioNodes[%d].slowdown %v out of range [1, %g] (or set outage)", i, w.Slowdown, maxMultiplier)
		}
	}
	if err := checkMul("disk.seekMultiplier", c.Wear.SeekMultiplier); err != nil {
		return err
	}
	if err := checkMul("disk.transferMultiplier", c.Wear.TransferMultiplier); err != nil {
		return err
	}
	if r := c.Wear.RampPerHour; !(r >= 0 && r <= maxRampPerHour) {
		return fmt.Errorf("faults: disk.rampPerHour %v out of range [0, %g]", r, maxRampPerHour)
	}
	if err := checkMul("network.latencyMultiplier", c.Net.LatencyMultiplier); err != nil {
		return err
	}
	if err := checkMul("network.bandwidthDivisor", c.Net.BandwidthDivisor); err != nil {
		return err
	}
	if j := c.Net.JitterMicros; !(j >= 0 && j <= maxJitterMicros) {
		return fmt.Errorf("faults: network.jitterMicros %v out of range [0, %g]", j, maxJitterMicros)
	}
	seenDim := make(map[int]bool)
	for i, l := range c.Net.Links {
		if l.Dim < 0 || l.Dim >= netDim {
			return fmt.Errorf("faults: network.links[%d].dim %d out of range [0, %d)", i, l.Dim, netDim)
		}
		if seenDim[l.Dim] {
			return fmt.Errorf("faults: network.links[%d] repeats dim %d", i, l.Dim)
		}
		seenDim[l.Dim] = true
		if !(l.LatencyMultiplier >= 1 && l.LatencyMultiplier <= maxMultiplier) {
			return fmt.Errorf("faults: network.links[%d].latencyMultiplier %v out of range [1, %g]", i, l.LatencyMultiplier, maxMultiplier)
		}
	}
	if c.Hot.Multiplier != 0 {
		if c.Hot.Node < 0 || c.Hot.Node >= ioNodes {
			return fmt.Errorf("faults: hotNode.node %d out of range [0, %d)", c.Hot.Node, ioNodes)
		}
		if err := checkMul("hotNode.multiplier", c.Hot.Multiplier); err != nil {
			return err
		}
	}
	return nil
}

// Spec is the JSON-facing, versioned faults block of a scenario spec.
// Decode it with DisallowUnknownFields and call Resolve to get the
// validated Config.
type Spec struct {
	Version int          `json:"version"`
	IONodes []WindowSpec `json:"ioNodes,omitempty"`
	Disk    *WearSpec    `json:"disk,omitempty"`
	Network *NetSpec     `json:"network,omitempty"`
	HotNode *HotSpec     `json:"hotNode,omitempty"`
}

// WindowSpec is the JSON form of a Window.
type WindowSpec struct {
	Node       int     `json:"node"`
	StartHours float64 `json:"startHours"`
	EndHours   float64 `json:"endHours"`
	Slowdown   float64 `json:"slowdown,omitempty"`
	Outage     bool    `json:"outage,omitempty"`
}

// WearSpec is the JSON form of Wear.
type WearSpec struct {
	SeekMultiplier     float64 `json:"seekMultiplier,omitempty"`
	TransferMultiplier float64 `json:"transferMultiplier,omitempty"`
	RampPerHour        float64 `json:"rampPerHour,omitempty"`
}

// NetSpec is the JSON form of Net.
type NetSpec struct {
	LatencyMultiplier float64    `json:"latencyMultiplier,omitempty"`
	BandwidthDivisor  float64    `json:"bandwidthDivisor,omitempty"`
	JitterMicros      float64    `json:"jitterMicros,omitempty"`
	Links             []LinkSpec `json:"links,omitempty"`
}

// LinkSpec is the JSON form of Link.
type LinkSpec struct {
	Dim               int     `json:"dim"`
	LatencyMultiplier float64 `json:"latencyMultiplier"`
}

// HotSpec is the JSON form of Hot.
type HotSpec struct {
	Node       int     `json:"node"`
	Multiplier float64 `json:"multiplier"`
}

// Resolve converts the JSON spec into a Config. It checks the schema
// version but not machine-shape bounds; call Config.Validate with the
// target machine's I/O-node count and cube dimension for those.
func (s *Spec) Resolve() (Config, error) {
	if s.Version != SpecVersion {
		return Config{}, fmt.Errorf("faults: unsupported version %d (this build reads version %d)", s.Version, SpecVersion)
	}
	var c Config
	for _, w := range s.IONodes {
		c.Windows = append(c.Windows, Window{
			Node:       w.Node,
			StartHours: w.StartHours,
			EndHours:   w.EndHours,
			Slowdown:   w.Slowdown,
			Outage:     w.Outage,
		})
	}
	if d := s.Disk; d != nil {
		c.Wear = Wear{
			SeekMultiplier:     d.SeekMultiplier,
			TransferMultiplier: d.TransferMultiplier,
			RampPerHour:        d.RampPerHour,
		}
	}
	if n := s.Network; n != nil {
		c.Net = Net{
			LatencyMultiplier: n.LatencyMultiplier,
			BandwidthDivisor:  n.BandwidthDivisor,
			JitterMicros:      n.JitterMicros,
		}
		for _, l := range n.Links {
			c.Net.Links = append(c.Net.Links, Link{Dim: l.Dim, LatencyMultiplier: l.LatencyMultiplier})
		}
	}
	if h := s.HotNode; h != nil {
		c.Hot = Hot{Node: h.Node, Multiplier: h.Multiplier}
	}
	return c, nil
}
