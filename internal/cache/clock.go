// Clock and segmented-LRU replacement: two policies the paper's
// successors (Sprite, 4.4BSD, and the parallel-I/O caching literature
// that followed CHARISMA) used where true LRU bookkeeping was too
// expensive at I/O-node request rates. They widen the Figure 9 policy
// axis beyond the paper's LRU/FIFO pair: Clock approximates LRU with
// one reference bit per buffer, and SLRU protects re-referenced
// blocks from the sequential floods that wash through an I/O node.
package cache

import "fmt"

// Clock is a second-chance (clock) block cache: buffers sit on a
// circular list with one reference bit each. A hit sets the bit; a
// miss sweeps the hand forward, clearing bits until it finds an
// unreferenced victim. Behaviour approximates LRU at FIFO cost.
type Clock struct {
	capacity int
	index    map[BlockID]int32
	ids      []BlockID
	ref      []bool
	hand     int32
	stats    Stats
}

// NewClock returns a clock cache holding up to capacity blocks.
func NewClock(capacity int) *Clock {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive Clock capacity %d", capacity))
	}
	return &Clock{
		capacity: capacity,
		index:    make(map[BlockID]int32, min(capacity, 1<<16)),
	}
}

// Access implements Cache.
func (c *Clock) Access(id BlockID) bool {
	c.stats.Accesses++
	if i, ok := c.index[id]; ok {
		c.stats.Hits++
		c.ref[i] = true
		return true
	}
	if len(c.ids) < c.capacity {
		c.ids = append(c.ids, id)
		c.ref = append(c.ref, false)
		c.index[id] = int32(len(c.ids) - 1)
		return false
	}
	// Sweep for a victim: clear reference bits until one is unset.
	for c.ref[c.hand] {
		c.ref[c.hand] = false
		c.hand = (c.hand + 1) % int32(len(c.ids))
	}
	victim := c.hand
	// Guard against an Invalidate tombstone whose zero BlockID could
	// collide with a genuinely cached block living in another slot.
	if j, ok := c.index[c.ids[victim]]; ok && j == victim {
		delete(c.index, c.ids[victim])
	}
	c.ids[victim] = id
	c.ref[victim] = false
	c.index[id] = victim
	c.hand = (c.hand + 1) % int32(len(c.ids))
	return false
}

// Contains implements Cache.
func (c *Clock) Contains(id BlockID) bool { _, ok := c.index[id]; return ok }

// Invalidate implements Cache. The slot keeps its position on the
// ring: its entry is tombstoned with a zero BlockID and its reference
// bit cleared, making it an immediate victim candidate for the next
// sweep. Because a genuine zero BlockID could also be cached in some
// other slot, the eviction path in Access only deletes the victim's
// index entry when it still points at the victim's slot.
func (c *Clock) Invalidate(id BlockID) {
	if i, ok := c.index[id]; ok {
		delete(c.index, id)
		// Make the slot an immediate victim candidate.
		c.ref[i] = false
		c.ids[i] = BlockID{}
	}
}

// Len implements Cache.
func (c *Clock) Len() int { return len(c.index) }

// Capacity implements Cache.
func (c *Clock) Capacity() int { return c.capacity }

// Stats implements Cache.
func (c *Clock) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *Clock) Name() string { return "Clock" }

// SLRU is a segmented LRU cache (Karedla, Love, and Wherry's design):
// a probationary segment absorbs first touches and a protected
// segment holds blocks that were re-referenced while probationary.
// One sequential flood through the cache can displace at most the
// probationary segment, so the hot interprocess-shared blocks of a
// CHARISMA trace survive scans that would flush plain LRU.
type SLRU struct {
	capacity  int
	protCap   int // protected-segment capacity
	index     map[BlockID]int32
	protected map[BlockID]bool
	prob      order // probationary segment, front = MRU
	prot      order // protected segment, front = MRU
	probLen   int
	protLen   int
	stats     Stats
}

// NewSLRU returns a segmented-LRU cache holding up to capacity blocks
// in total, with ~80% of the capacity protected (the ratio the
// original SLRU paper found robust). A capacity too small to split
// degenerates to plain LRU in the probationary segment.
func NewSLRU(capacity int) *SLRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive SLRU capacity %d", capacity))
	}
	protCap := capacity * 4 / 5
	if capacity >= 2 && protCap == 0 {
		protCap = 1
	}
	return &SLRU{
		capacity:  capacity,
		protCap:   protCap,
		index:     make(map[BlockID]int32, min(capacity, 1<<16)),
		protected: make(map[BlockID]bool, min(protCap, 1<<16)),
		prob:      newOrder(capacity - protCap),
		prot:      newOrder(protCap),
	}
}

// Access implements Cache.
func (c *SLRU) Access(id BlockID) bool {
	c.stats.Accesses++
	if i, ok := c.index[id]; ok {
		c.stats.Hits++
		if c.protected[id] {
			// Already protected: move to the segment's MRU end.
			if c.prot.front != i {
				c.prot.unlink(i)
				c.prot.pushFront(i)
			}
			return true
		}
		// Re-referenced while probationary: promote.
		c.prob.unlink(i)
		c.prob.free = append(c.prob.free, i)
		c.probLen--
		if c.protCap == 0 {
			// Degenerate split: stay probationary, refreshed to MRU.
			j := c.prob.alloc(id)
			c.prob.pushFront(j)
			c.index[id] = j
			c.probLen++
			return true
		}
		if c.protLen >= c.protCap {
			// Demote the protected LRU back to probationary MRU.
			victim := c.prot.back
			vid := c.prot.entries[victim].id
			c.prot.unlink(victim)
			c.prot.free = append(c.prot.free, victim)
			c.protLen--
			delete(c.protected, vid)
			c.insertProbationary(vid)
		}
		j := c.prot.alloc(id)
		c.prot.pushFront(j)
		c.index[id] = j
		c.protected[id] = true
		c.protLen++
		return true
	}
	c.insertProbationary(id)
	return false
}

// insertProbationary puts id at the probationary MRU end, evicting the
// probationary LRU if the cache as a whole is full.
func (c *SLRU) insertProbationary(id BlockID) {
	if c.probLen+c.protLen >= c.capacity {
		victim := c.prob.back
		if victim < 0 {
			// Everything resident is protected (possible only when the
			// probationary segment is empty); evict the protected LRU.
			victim = c.prot.back
			vid := c.prot.entries[victim].id
			c.prot.unlink(victim)
			c.prot.free = append(c.prot.free, victim)
			c.protLen--
			delete(c.protected, vid)
			delete(c.index, vid)
		} else {
			vid := c.prob.entries[victim].id
			c.prob.unlink(victim)
			c.prob.free = append(c.prob.free, victim)
			c.probLen--
			delete(c.index, vid)
		}
	}
	i := c.prob.alloc(id)
	c.prob.pushFront(i)
	c.index[id] = i
	c.probLen++
}

// Contains implements Cache.
func (c *SLRU) Contains(id BlockID) bool { _, ok := c.index[id]; return ok }

// Invalidate implements Cache.
func (c *SLRU) Invalidate(id BlockID) {
	i, ok := c.index[id]
	if !ok {
		return
	}
	if c.protected[id] {
		c.prot.unlink(i)
		c.prot.free = append(c.prot.free, i)
		c.protLen--
		delete(c.protected, id)
	} else {
		c.prob.unlink(i)
		c.prob.free = append(c.prob.free, i)
		c.probLen--
	}
	delete(c.index, id)
}

// Len implements Cache.
func (c *SLRU) Len() int { return len(c.index) }

// Capacity implements Cache.
func (c *SLRU) Capacity() int { return c.capacity }

// Stats implements Cache.
func (c *SLRU) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *SLRU) Name() string { return "SLRU" }

// Verify the implementations satisfy the interface.
var (
	_ Cache = (*Clock)(nil)
	_ Cache = (*SLRU)(nil)
)
