// Package cache implements the block-cache replacement policies used
// by the CFS I/O nodes and by the paper's trace-driven cache
// simulations: LRU, FIFO, and the single-buffer-per-file scheme the
// paper recommends for compute nodes.
//
// Caches here track block identity only, not contents; the simulators
// and the CFS I/O node care about hit/miss behaviour and eviction
// order, never about data bytes.
package cache

import "fmt"

// BlockID names one file-system block: a file identity plus a block
// index within the file.
type BlockID struct {
	File  uint64
	Block int64
}

// Stats counts cache traffic.
type Stats struct {
	Accesses int64
	Hits     int64
}

// HitRate returns hits/accesses, or 0 with no traffic.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a fixed-capacity block cache.
type Cache interface {
	// Access looks up id, records the access, and on a miss inserts
	// id (evicting per policy). It reports whether the access hit.
	Access(id BlockID) bool
	// Contains reports whether id is resident, without side effects.
	Contains(id BlockID) bool
	// Invalidate drops id if resident (e.g. on file deletion).
	Invalidate(id BlockID)
	// Len and Capacity report occupancy.
	Len() int
	Capacity() int
	// Stats returns the traffic counters.
	Stats() Stats
	// Name identifies the policy ("LRU", "FIFO", ...).
	Name() string
}

// entry is one resident block in the slice-backed intrusive list
// shared by the LRU and FIFO implementations. Entries link by slot
// index rather than pointer, so a cache performs zero per-insertion
// allocations once its entry slice has grown to capacity: an eviction
// reuses the victim's slot in place.
type entry struct {
	id         BlockID
	prev, next int32 // slot indexes, -1 = end of list
}

// order is a doubly-linked list threaded through an entry slice.
// front is the most recent (LRU) or newest (FIFO) entry, back the
// eviction victim.
type order struct {
	entries     []entry
	front, back int32
	free        []int32 // slots vacated by Invalidate
}

func newOrder(capacity int) order {
	// Entries grow by append up to capacity, so short-lived caches
	// (e.g. one per job-node pair in the Figure 8 simulation) never
	// pay for capacity they do not use.
	return order{front: -1, back: -1, entries: make([]entry, 0, min(capacity, 1<<16))}
}

// alloc returns a slot for id, reusing a freed slot when available.
func (o *order) alloc(id BlockID) int32 {
	if n := len(o.free); n > 0 {
		i := o.free[n-1]
		o.free = o.free[:n-1]
		o.entries[i] = entry{id: id, prev: -1, next: -1}
		return i
	}
	o.entries = append(o.entries, entry{id: id, prev: -1, next: -1})
	return int32(len(o.entries) - 1)
}

func (o *order) pushFront(i int32) {
	e := &o.entries[i]
	e.prev = -1
	e.next = o.front
	if o.front >= 0 {
		o.entries[o.front].prev = i
	} else {
		o.back = i
	}
	o.front = i
}

func (o *order) unlink(i int32) {
	e := &o.entries[i]
	if e.prev >= 0 {
		o.entries[e.prev].next = e.next
	} else {
		o.front = e.next
	}
	if e.next >= 0 {
		o.entries[e.next].prev = e.prev
	} else {
		o.back = e.prev
	}
	e.prev, e.next = -1, -1
}

// LRU is a least-recently-used block cache.
type LRU struct {
	capacity int
	index    map[BlockID]int32
	order    order
	stats    Stats
}

// NewLRU returns an LRU cache holding up to capacity blocks.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive LRU capacity %d", capacity))
	}
	return &LRU{
		capacity: capacity,
		index:    make(map[BlockID]int32, min(capacity, 1<<16)),
		order:    newOrder(capacity),
	}
}

// Access implements Cache.
func (c *LRU) Access(id BlockID) bool {
	c.stats.Accesses++
	if i, ok := c.index[id]; ok {
		c.stats.Hits++
		if c.order.front != i {
			c.order.unlink(i)
			c.order.pushFront(i)
		}
		return true
	}
	if len(c.index) >= c.capacity {
		victim := c.order.back
		c.order.unlink(victim)
		delete(c.index, c.order.entries[victim].id)
		c.order.entries[victim].id = id
		c.index[id] = victim
		c.order.pushFront(victim)
		return false
	}
	i := c.order.alloc(id)
	c.index[id] = i
	c.order.pushFront(i)
	return false
}

// Contains implements Cache.
func (c *LRU) Contains(id BlockID) bool { _, ok := c.index[id]; return ok }

// Invalidate implements Cache.
func (c *LRU) Invalidate(id BlockID) {
	if i, ok := c.index[id]; ok {
		c.order.unlink(i)
		c.order.free = append(c.order.free, i)
		delete(c.index, id)
	}
}

// Len implements Cache.
func (c *LRU) Len() int { return len(c.index) }

// Capacity implements Cache.
func (c *LRU) Capacity() int { return c.capacity }

// Stats implements Cache.
func (c *LRU) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *LRU) Name() string { return "LRU" }

// FIFO is a first-in-first-out block cache: hits do not refresh an
// entry's position, so a resident block is evicted a fixed number of
// insertions after it arrived. The paper shows this costs a factor of
// ~5 in required cache size at the I/O nodes.
type FIFO struct {
	capacity int
	index    map[BlockID]int32
	order    order // front = newest arrival
	stats    Stats
}

// NewFIFO returns a FIFO cache holding up to capacity blocks.
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive FIFO capacity %d", capacity))
	}
	return &FIFO{
		capacity: capacity,
		index:    make(map[BlockID]int32, min(capacity, 1<<16)),
		order:    newOrder(capacity),
	}
}

// Access implements Cache.
func (c *FIFO) Access(id BlockID) bool {
	c.stats.Accesses++
	if _, ok := c.index[id]; ok {
		c.stats.Hits++
		return true
	}
	if len(c.index) >= c.capacity {
		victim := c.order.back
		c.order.unlink(victim)
		delete(c.index, c.order.entries[victim].id)
		c.order.entries[victim].id = id
		c.index[id] = victim
		c.order.pushFront(victim)
		return false
	}
	i := c.order.alloc(id)
	c.index[id] = i
	c.order.pushFront(i)
	return false
}

// Contains implements Cache.
func (c *FIFO) Contains(id BlockID) bool { _, ok := c.index[id]; return ok }

// Invalidate implements Cache.
func (c *FIFO) Invalidate(id BlockID) {
	if i, ok := c.index[id]; ok {
		c.order.unlink(i)
		c.order.free = append(c.order.free, i)
		delete(c.index, id)
	}
}

// Len implements Cache.
func (c *FIFO) Len() int { return len(c.index) }

// Capacity implements Cache.
func (c *FIFO) Capacity() int { return c.capacity }

// Stats implements Cache.
func (c *FIFO) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *FIFO) Name() string { return "FIFO" }

// PerFile keeps one buffer per file, the compute-node organization the
// paper recommends in its conclusions: each file a process has open
// caches exactly its most recently touched block.
type PerFile struct {
	current map[uint64]int64 // file -> resident block
	stats   Stats
}

// NewPerFile returns an empty per-file single-buffer cache.
func NewPerFile() *PerFile {
	return &PerFile{current: make(map[uint64]int64)}
}

// Access implements Cache semantics with per-file capacity 1.
func (c *PerFile) Access(id BlockID) bool {
	c.stats.Accesses++
	if b, ok := c.current[id.File]; ok && b == id.Block {
		c.stats.Hits++
		return true
	}
	c.current[id.File] = id.Block
	return false
}

// Contains implements Cache.
func (c *PerFile) Contains(id BlockID) bool {
	b, ok := c.current[id.File]
	return ok && b == id.Block
}

// Invalidate implements Cache.
func (c *PerFile) Invalidate(id BlockID) {
	if b, ok := c.current[id.File]; ok && b == id.Block {
		delete(c.current, id.File)
	}
}

// Drop releases the buffer held for a file (on close).
func (c *PerFile) Drop(file uint64) { delete(c.current, file) }

// Len implements Cache.
func (c *PerFile) Len() int { return len(c.current) }

// Capacity reports the number of files with a live buffer; the
// per-file capacity is fixed at one block each.
func (c *PerFile) Capacity() int { return len(c.current) }

// Stats implements Cache.
func (c *PerFile) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *PerFile) Name() string { return "PerFile" }

// Verify the implementations satisfy the interface.
var (
	_ Cache = (*LRU)(nil)
	_ Cache = (*FIFO)(nil)
	_ Cache = (*PerFile)(nil)
)
