// Package cache implements the block-cache replacement policies used
// by the CFS I/O nodes and by the paper's trace-driven cache
// simulations: LRU, FIFO, and the single-buffer-per-file scheme the
// paper recommends for compute nodes.
//
// Caches here track block identity only, not contents; the simulators
// and the CFS I/O node care about hit/miss behaviour and eviction
// order, never about data bytes.
package cache

import "fmt"

// BlockID names one file-system block: a file identity plus a block
// index within the file.
type BlockID struct {
	File  uint64
	Block int64
}

// Stats counts cache traffic.
type Stats struct {
	Accesses int64
	Hits     int64
}

// HitRate returns hits/accesses, or 0 with no traffic.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a fixed-capacity block cache.
type Cache interface {
	// Access looks up id, records the access, and on a miss inserts
	// id (evicting per policy). It reports whether the access hit.
	Access(id BlockID) bool
	// Contains reports whether id is resident, without side effects.
	Contains(id BlockID) bool
	// Invalidate drops id if resident (e.g. on file deletion).
	Invalidate(id BlockID)
	// Len and Capacity report occupancy.
	Len() int
	Capacity() int
	// Stats returns the traffic counters.
	Stats() Stats
	// Name identifies the policy ("LRU", "FIFO", ...).
	Name() string
}

// node is an entry in the intrusive doubly-linked list shared by the
// LRU and FIFO implementations. The list is circular with a sentinel.
type node struct {
	id         BlockID
	prev, next *node
}

type list struct{ root node }

func (l *list) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
}

func (l *list) pushFront(n *node) {
	n.prev = &l.root
	n.next = l.root.next
	n.prev.next = n
	n.next.prev = n
}

func (l *list) remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (l *list) back() *node {
	if l.root.prev == &l.root {
		return nil
	}
	return l.root.prev
}

// LRU is a least-recently-used block cache.
type LRU struct {
	capacity int
	entries  map[BlockID]*node
	order    list // front = most recent
	stats    Stats
}

// NewLRU returns an LRU cache holding up to capacity blocks.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive LRU capacity %d", capacity))
	}
	c := &LRU{capacity: capacity, entries: make(map[BlockID]*node, capacity)}
	c.order.init()
	return c
}

// Access implements Cache.
func (c *LRU) Access(id BlockID) bool {
	c.stats.Accesses++
	if n, ok := c.entries[id]; ok {
		c.stats.Hits++
		c.order.remove(n)
		c.order.pushFront(n)
		return true
	}
	if len(c.entries) >= c.capacity {
		victim := c.order.back()
		c.order.remove(victim)
		delete(c.entries, victim.id)
	}
	n := &node{id: id}
	c.entries[id] = n
	c.order.pushFront(n)
	return false
}

// Contains implements Cache.
func (c *LRU) Contains(id BlockID) bool { _, ok := c.entries[id]; return ok }

// Invalidate implements Cache.
func (c *LRU) Invalidate(id BlockID) {
	if n, ok := c.entries[id]; ok {
		c.order.remove(n)
		delete(c.entries, id)
	}
}

// Len implements Cache.
func (c *LRU) Len() int { return len(c.entries) }

// Capacity implements Cache.
func (c *LRU) Capacity() int { return c.capacity }

// Stats implements Cache.
func (c *LRU) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *LRU) Name() string { return "LRU" }

// FIFO is a first-in-first-out block cache: hits do not refresh an
// entry's position, so a resident block is evicted a fixed number of
// insertions after it arrived. The paper shows this costs a factor of
// ~5 in required cache size at the I/O nodes.
type FIFO struct {
	capacity int
	entries  map[BlockID]*node
	order    list // front = newest arrival
	stats    Stats
}

// NewFIFO returns a FIFO cache holding up to capacity blocks.
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive FIFO capacity %d", capacity))
	}
	c := &FIFO{capacity: capacity, entries: make(map[BlockID]*node, capacity)}
	c.order.init()
	return c
}

// Access implements Cache.
func (c *FIFO) Access(id BlockID) bool {
	c.stats.Accesses++
	if _, ok := c.entries[id]; ok {
		c.stats.Hits++
		return true
	}
	if len(c.entries) >= c.capacity {
		victim := c.order.back()
		c.order.remove(victim)
		delete(c.entries, victim.id)
	}
	n := &node{id: id}
	c.entries[id] = n
	c.order.pushFront(n)
	return false
}

// Contains implements Cache.
func (c *FIFO) Contains(id BlockID) bool { _, ok := c.entries[id]; return ok }

// Invalidate implements Cache.
func (c *FIFO) Invalidate(id BlockID) {
	if n, ok := c.entries[id]; ok {
		c.order.remove(n)
		delete(c.entries, id)
	}
}

// Len implements Cache.
func (c *FIFO) Len() int { return len(c.entries) }

// Capacity implements Cache.
func (c *FIFO) Capacity() int { return c.capacity }

// Stats implements Cache.
func (c *FIFO) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *FIFO) Name() string { return "FIFO" }

// PerFile keeps one buffer per file, the compute-node organization the
// paper recommends in its conclusions: each file a process has open
// caches exactly its most recently touched block.
type PerFile struct {
	current map[uint64]int64 // file -> resident block
	stats   Stats
}

// NewPerFile returns an empty per-file single-buffer cache.
func NewPerFile() *PerFile {
	return &PerFile{current: make(map[uint64]int64)}
}

// Access implements Cache semantics with per-file capacity 1.
func (c *PerFile) Access(id BlockID) bool {
	c.stats.Accesses++
	if b, ok := c.current[id.File]; ok && b == id.Block {
		c.stats.Hits++
		return true
	}
	c.current[id.File] = id.Block
	return false
}

// Contains implements Cache.
func (c *PerFile) Contains(id BlockID) bool {
	b, ok := c.current[id.File]
	return ok && b == id.Block
}

// Invalidate implements Cache.
func (c *PerFile) Invalidate(id BlockID) {
	if b, ok := c.current[id.File]; ok && b == id.Block {
		delete(c.current, id.File)
	}
}

// Drop releases the buffer held for a file (on close).
func (c *PerFile) Drop(file uint64) { delete(c.current, file) }

// Len implements Cache.
func (c *PerFile) Len() int { return len(c.current) }

// Capacity reports the number of files with a live buffer; the
// per-file capacity is fixed at one block each.
func (c *PerFile) Capacity() int { return len(c.current) }

// Stats implements Cache.
func (c *PerFile) Stats() Stats { return c.stats }

// Name implements Cache.
func (c *PerFile) Name() string { return "PerFile" }

// Verify the implementations satisfy the interface.
var (
	_ Cache = (*LRU)(nil)
	_ Cache = (*FIFO)(nil)
	_ Cache = (*PerFile)(nil)
)
