package cache

import (
	"testing"
	"testing/quick"
)

func id(f uint64, b int64) BlockID { return BlockID{File: f, Block: b} }

func TestLRUBasicHitMiss(t *testing.T) {
	c := NewLRU(2)
	if c.Access(id(1, 0)) {
		t.Fatal("first access hit")
	}
	if !c.Access(id(1, 0)) {
		t.Fatal("second access missed")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewLRU(2)
	c.Access(id(1, 0))
	c.Access(id(1, 1))
	c.Access(id(1, 0)) // refresh block 0
	c.Access(id(1, 2)) // evicts block 1
	if !c.Contains(id(1, 0)) {
		t.Fatal("refreshed block evicted")
	}
	if c.Contains(id(1, 1)) {
		t.Fatal("LRU victim still resident")
	}
}

func TestFIFOIgnoresRecency(t *testing.T) {
	c := NewFIFO(2)
	c.Access(id(1, 0))
	c.Access(id(1, 1))
	c.Access(id(1, 0)) // hit, but does NOT refresh
	c.Access(id(1, 2)) // evicts block 0 (oldest arrival)
	if c.Contains(id(1, 0)) {
		t.Fatal("FIFO kept the oldest arrival despite recency")
	}
	if !c.Contains(id(1, 1)) {
		t.Fatal("FIFO evicted the wrong block")
	}
}

func TestLRUBeatsFIFOOnLoopWithRefresh(t *testing.T) {
	// A hot block re-touched between streams of cold blocks: LRU
	// retains it, FIFO ages it out. This is the qualitative
	// difference behind the paper's Figure 9.
	lru, fifo := NewLRU(4), NewFIFO(4)
	run := func(c Cache) float64 {
		cold := int64(100)
		for i := 0; i < 200; i++ {
			c.Access(id(1, 0)) // hot block
			c.Access(id(1, cold))
			cold++
		}
		return c.Stats().HitRate()
	}
	lruRate, fifoRate := run(lru), run(fifo)
	if lruRate <= fifoRate {
		t.Fatalf("LRU %v should beat FIFO %v on hot-block workload", lruRate, fifoRate)
	}
}

func TestInvalidate(t *testing.T) {
	for _, c := range []Cache{NewLRU(4), NewFIFO(4), NewPerFile()} {
		c.Access(id(1, 0))
		c.Invalidate(id(1, 0))
		if c.Contains(id(1, 0)) {
			t.Fatalf("%s: invalidated block still resident", c.Name())
		}
		c.Invalidate(id(9, 9)) // absent: must not panic
	}
}

func TestContainsHasNoSideEffects(t *testing.T) {
	c := NewLRU(1)
	c.Access(id(1, 0))
	before := c.Stats()
	c.Contains(id(1, 0))
	c.Contains(id(2, 0))
	if c.Stats() != before {
		t.Fatal("Contains changed stats")
	}
}

func TestCapacityRespected(t *testing.T) {
	for _, c := range []Cache{NewLRU(3), NewFIFO(3)} {
		for b := int64(0); b < 100; b++ {
			c.Access(id(1, b))
		}
		if c.Len() != 3 {
			t.Fatalf("%s: len = %d, want 3", c.Name(), c.Len())
		}
		if c.Capacity() != 3 {
			t.Fatalf("%s: capacity = %d", c.Name(), c.Capacity())
		}
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	for _, mk := range []func(){
		func() { NewLRU(0) },
		func() { NewFIFO(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero capacity did not panic")
				}
			}()
			mk()
		}()
	}
}

func TestPerFileOneBufferPerFile(t *testing.T) {
	c := NewPerFile()
	c.Access(id(1, 0))
	c.Access(id(2, 5))
	if !c.Contains(id(1, 0)) || !c.Contains(id(2, 5)) {
		t.Fatal("distinct files should not evict each other")
	}
	c.Access(id(1, 1)) // replaces file 1's buffer
	if c.Contains(id(1, 0)) {
		t.Fatal("file 1 old block survived")
	}
	if !c.Contains(id(2, 5)) {
		t.Fatal("file 2 buffer lost")
	}
}

func TestPerFileDrop(t *testing.T) {
	c := NewPerFile()
	c.Access(id(1, 0))
	c.Drop(1)
	if c.Len() != 0 {
		t.Fatalf("len = %d after Drop", c.Len())
	}
	if c.Contains(id(1, 0)) {
		t.Fatal("dropped buffer still resident")
	}
}

func TestPerFileSequentialSmallRequestsHit(t *testing.T) {
	// 100-byte sequential reads in a 4 KB block: 40 of 41 accesses to
	// block 0 hit; this is the paper's compute-node cache success mode.
	c := NewPerFile()
	hits := 0
	for off := int64(0); off < 8192; off += 100 {
		if c.Access(id(1, off/4096)) {
			hits++
		}
	}
	if hits < 75 {
		t.Fatalf("sequential small requests got only %d hits", hits)
	}
}

func TestNames(t *testing.T) {
	if NewLRU(1).Name() != "LRU" || NewFIFO(1).Name() != "FIFO" || NewPerFile().Name() != "PerFile" {
		t.Fatal("policy names wrong")
	}
}

func TestHitRateEmpty(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
}

// Property: occupancy never exceeds capacity, hits never exceed
// accesses, and Access(x) directly after Access(x) always hits.
func TestQuickCacheInvariants(t *testing.T) {
	f := func(capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw%32) + 1
		for _, c := range []Cache{NewLRU(capacity), NewFIFO(capacity)} {
			for _, op := range ops {
				bid := id(uint64(op%4), int64(op/4%64))
				c.Access(bid)
				if !c.Contains(bid) {
					return false // just-accessed block must be resident
				}
				if c.Len() > capacity {
					return false
				}
			}
			st := c.Stats()
			if st.Hits > st.Accesses || st.Accesses != int64(len(ops)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with capacity >= distinct blocks, every repeat access hits
// (no spurious evictions) for both policies.
func TestQuickNoSpuriousEvictions(t *testing.T) {
	f := func(ops []uint8) bool {
		distinct := make(map[BlockID]bool)
		for _, op := range ops {
			distinct[id(0, int64(op%16))] = true
		}
		capacity := len(distinct)
		if capacity == 0 {
			return true
		}
		for _, c := range []Cache{NewLRU(capacity), NewFIFO(capacity)} {
			seen := make(map[BlockID]bool)
			for _, op := range ops {
				bid := id(0, int64(op%16))
				hit := c.Access(bid)
				if seen[bid] && !hit {
					return false
				}
				seen[bid] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
