package cache

import (
	"fmt"
	"testing"
)

func TestClockBasicHitMiss(t *testing.T) {
	c := NewClock(2)
	if c.Access(id(1, 0)) {
		t.Fatal("cold access hit")
	}
	if !c.Access(id(1, 0)) {
		t.Fatal("warm access missed")
	}
	if !c.Contains(id(1, 0)) || c.Contains(id(1, 1)) {
		t.Fatal("Contains wrong")
	}
	if c.Len() != 1 || c.Capacity() != 2 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Capacity())
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
	if c.Name() != "Clock" {
		t.Fatalf("name %q", c.Name())
	}
}

func TestClockSecondChance(t *testing.T) {
	// Fill a 2-slot clock with A, B; touch A (sets its ref bit); insert
	// C. The sweep must skip A (second chance) and evict B.
	c := NewClock(2)
	a, b, x := id(1, 0), id(1, 1), id(1, 2)
	c.Access(a)
	c.Access(b)
	c.Access(a) // ref bit on A
	c.Access(x) // must evict B
	if !c.Contains(a) {
		t.Fatal("referenced block evicted")
	}
	if c.Contains(b) {
		t.Fatal("unreferenced block survived")
	}
	if !c.Contains(x) {
		t.Fatal("inserted block missing")
	}
}

func TestClockSweepWrapsWhenAllReferenced(t *testing.T) {
	// All ref bits set: the sweep must clear the whole ring, wrap, and
	// evict the slot it started at rather than spin forever.
	c := NewClock(3)
	for i := int64(0); i < 3; i++ {
		c.Access(id(1, i))
		c.Access(id(1, i)) // set every ref bit
	}
	c.Access(id(2, 0))
	if c.Len() != 3 {
		t.Fatalf("len=%d after wrap eviction", c.Len())
	}
	if !c.Contains(id(2, 0)) {
		t.Fatal("new block not resident after full sweep")
	}
}

func TestClockInvalidate(t *testing.T) {
	c := NewClock(2)
	c.Access(id(1, 0))
	c.Access(id(1, 1))
	c.Invalidate(id(1, 0))
	if c.Contains(id(1, 0)) || c.Len() != 1 {
		t.Fatalf("invalidate failed: len=%d", c.Len())
	}
	c.Invalidate(id(9, 9)) // absent: no-op
	// The tombstoned slot must be reusable without corrupting the
	// index, even when the zero BlockID is itself cached.
	c.Access(id(0, 0))
	c.Access(id(2, 2))
	c.Access(id(3, 3))
	if c.Len() > c.Capacity() {
		t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

func TestClockPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewClock(0)
}

func TestSLRUBasicHitMiss(t *testing.T) {
	c := NewSLRU(4)
	if c.Access(id(1, 0)) {
		t.Fatal("cold access hit")
	}
	if !c.Access(id(1, 0)) {
		t.Fatal("warm access missed")
	}
	if c.Name() != "SLRU" || c.Capacity() != 4 || c.Len() != 1 {
		t.Fatalf("name=%q cap=%d len=%d", c.Name(), c.Capacity(), c.Len())
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSLRUScanResistance(t *testing.T) {
	// Promote a hot block, then stream a long scan through the cache:
	// the hot block must survive in the protected segment while plain
	// LRU of the same size would have evicted it.
	slru := NewSLRU(10)
	lru := NewLRU(10)
	hot := id(1, 0)
	for _, c := range []Cache{slru, lru} {
		c.Access(hot)
		c.Access(hot) // promotes in SLRU
		for i := int64(0); i < 100; i++ {
			c.Access(id(2, i))
		}
	}
	if !slru.Contains(hot) {
		t.Fatal("SLRU lost the protected block to a scan")
	}
	if lru.Contains(hot) {
		t.Fatal("test premise broken: LRU kept the block through the scan")
	}
}

func TestSLRUDemotionKeepsTotalBounded(t *testing.T) {
	c := NewSLRU(5) // protected capacity 4
	// Promote six distinct blocks: each promotion past the fourth must
	// demote the protected LRU rather than grow past capacity.
	for i := int64(0); i < 6; i++ {
		c.Access(id(1, i))
		c.Access(id(1, i))
		if c.Len() > c.Capacity() {
			t.Fatalf("len %d exceeds capacity %d", c.Len(), c.Capacity())
		}
	}
	if c.Len() != 5 {
		t.Fatalf("len=%d, want 5", c.Len())
	}
}

func TestSLRUCapacityOneDegeneratesToLRU(t *testing.T) {
	c := NewSLRU(1)
	c.Access(id(1, 0))
	if !c.Access(id(1, 0)) {
		t.Fatal("re-reference missed at capacity 1")
	}
	c.Access(id(1, 1))
	if c.Contains(id(1, 0)) || !c.Contains(id(1, 1)) || c.Len() != 1 {
		t.Fatal("capacity-1 SLRU did not behave like a single buffer")
	}
}

func TestSLRUInvalidate(t *testing.T) {
	c := NewSLRU(4)
	c.Access(id(1, 0))
	c.Access(id(1, 0)) // protected
	c.Access(id(1, 1)) // probationary
	c.Invalidate(id(1, 0))
	c.Invalidate(id(1, 1))
	c.Invalidate(id(7, 7)) // absent: no-op
	if c.Len() != 0 {
		t.Fatalf("len=%d after invalidating everything", c.Len())
	}
	// The cache must still work after slot recycling.
	c.Access(id(2, 0))
	c.Access(id(2, 0))
	if !c.Contains(id(2, 0)) {
		t.Fatal("cache broken after invalidations")
	}
}

func TestSLRUPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSLRU(-1)
}

// TestPoliciesNeverExceedCapacity drives every policy with a mixed
// re-referencing workload and checks the shared invariants: occupancy
// never exceeds capacity, hits never exceed accesses, and a block just
// accessed is resident.
func TestPoliciesNeverExceedCapacity(t *testing.T) {
	for _, capacity := range []int{1, 2, 3, 7, 64} {
		caches := []Cache{NewLRU(capacity), NewFIFO(capacity), NewClock(capacity), NewSLRU(capacity)}
		for _, c := range caches {
			t.Run(fmt.Sprintf("%s/%d", c.Name(), capacity), func(t *testing.T) {
				for i := 0; i < 500; i++ {
					b := id(uint64(i%3), int64(i*i%97))
					c.Access(b)
					if !c.Contains(b) {
						t.Fatalf("just-accessed block not resident at access %d", i)
					}
					if c.Len() > c.Capacity() {
						t.Fatalf("occupancy %d over capacity %d", c.Len(), c.Capacity())
					}
					if i%31 == 0 {
						c.Invalidate(id(uint64(i%3), int64((i+1)*(i+1)%97)))
					}
				}
				s := c.Stats()
				if s.Hits > s.Accesses || s.HitRate() < 0 || s.HitRate() > 1 {
					t.Fatalf("stats out of bounds: %+v", s)
				}
			})
		}
	}
}
