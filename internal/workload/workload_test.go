package workload

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// runScaled generates and runs a study at the given scale and returns
// the analysis report.
func runScaled(t *testing.T, seed uint64, scale float64) (*analysis.Report, *machine.Machine) {
	t.Helper()
	k := sim.New()
	m := machine.New(k, machine.NASConfig(seed))
	p := Default(seed)
	p.Scale = scale
	gen := NewGenerator(p)
	horizon := gen.Install(m)
	k.Run()
	tr := m.FinishTracing()
	events := trace.Postprocess(tr)
	return analysis.Analyze(tr.Header, events, horizon), m
}

func TestGeneratorRejectsZeroScale(t *testing.T) {
	p := Default(1)
	p.Scale = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero scale did not panic")
		}
	}()
	NewGenerator(p)
}

func TestHorizonScaling(t *testing.T) {
	full := Default(1)
	g := NewGenerator(full)
	if g.Horizon() != sim.Time(156*float64(sim.Hour)) {
		t.Fatalf("full horizon = %v", g.Horizon())
	}
	small := Default(1)
	small.Scale = 0.001
	if NewGenerator(small).Horizon() < 4*sim.Hour {
		t.Fatal("horizon floor violated")
	}
}

func TestRecordSizeDistribution(t *testing.T) {
	rng := stats.NewRNG(7)
	small, large := 0, 0
	const n = 10000
	for i := 0; i < n; i++ {
		sz := recordSize(rng)
		if sz <= 0 {
			t.Fatalf("non-positive record size %d", sz)
		}
		if sz < 4000 {
			small++
		}
		if sz > 16384 {
			large++
		}
	}
	if frac := float64(small) / n; frac < 0.7 || frac > 0.95 {
		t.Fatalf("small-record fraction = %v, want mostly small", frac)
	}
	if large > 0 {
		t.Fatal("record sizes should stay moderate")
	}
}

func TestSmallStudyRuns(t *testing.T) {
	r, m := runScaled(t, 42, 0.02)
	if r.TotalJobs == 0 {
		t.Fatal("no jobs ran")
	}
	if r.FilesOpened == 0 || r.TotalOpens == 0 {
		t.Fatal("no files opened")
	}
	if m.TraceRecords() == 0 {
		t.Fatal("no trace records")
	}
	if m.RunningJobs() != 0 || m.QueuedJobs() != 0 {
		t.Fatal("jobs left behind")
	}
}

func TestStudyDeterminism(t *testing.T) {
	a, _ := runScaled(t, 99, 0.02)
	b, _ := runScaled(t, 99, 0.02)
	if a.TotalJobs != b.TotalJobs || a.FilesOpened != b.FilesOpened ||
		a.TotalOpens != b.TotalOpens ||
		a.ReadCountBySize.Len() != b.ReadCountBySize.Len() {
		t.Fatal("same seed produced different studies")
	}
	if a.SmallReadFrac != b.SmallReadFrac {
		t.Fatal("request-size distributions differ between identical runs")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := runScaled(t, 1, 0.02)
	b, _ := runScaled(t, 2, 0.02)
	if a.ReadCountBySize.Len() == b.ReadCountBySize.Len() &&
		a.TotalOpens == b.TotalOpens {
		t.Fatal("different seeds produced identical studies (suspicious)")
	}
}

// The calibration tests below assert the qualitative shapes of the
// paper's findings at a modest scale. Bands are generous: the point is
// that the structure cannot silently drift, not that the sample noise
// is zero.
func TestCalibrationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration study is slow")
	}
	r, _ := runScaled(t, 42, 0.1)

	// Job mix: single-node jobs dominate the population.
	if frac := float64(r.SingleNodeJobs) / float64(r.TotalJobs); frac < 0.6 || frac > 0.85 {
		t.Errorf("single-node job fraction = %v, want ~0.74", frac)
	}
	// Figure 1: the machine is idle a nontrivial fraction of the time
	// and runs multiple jobs a nontrivial fraction.
	if idle := r.IdlePct(); idle < 10 || idle > 60 {
		t.Errorf("idle = %v%%, want ~27%%", idle)
	}
	if multi := r.MultiJobPct(); multi < 10 || multi > 60 {
		t.Errorf("multi-job = %v%%, want ~35%%", multi)
	}
	// Figure 2: large jobs dominate node-time even though small jobs
	// dominate the count.
	var bigNT, totalNT float64
	for nodes, nt := range r.NodeTime {
		totalNT += nt
		if nodes >= 16 {
			bigNT += nt
		}
	}
	if bigNT/totalNT < 0.7 {
		t.Errorf("big-job node-time share = %v, want dominant", bigNT/totalNT)
	}
	// Section 4.2: write-only files dominate; read-write and untouched
	// are small minorities.
	total := float64(r.FilesOpened)
	if f := float64(r.FilesByClass[analysis.WriteOnly]) / total; f < 0.55 || f > 0.85 {
		t.Errorf("write-only fraction = %v, want ~0.70", f)
	}
	if f := float64(r.FilesByClass[analysis.ReadOnly]) / total; f < 0.12 || f > 0.35 {
		t.Errorf("read-only fraction = %v, want ~0.23", f)
	}
	if f := float64(r.FilesByClass[analysis.ReadWrite]) / total; f > 0.10 {
		t.Errorf("read-write fraction = %v, want small", f)
	}
	// Temporary files are rare.
	if r.TempOpenFraction > 0.02 {
		t.Errorf("temp open fraction = %v, want <2%%", r.TempOpenFraction)
	}
	// Figure 4: the vast majority of reads are small but move a
	// minority of the data.
	if r.SmallReadFrac < 0.85 {
		t.Errorf("small-read fraction = %v, want >0.9", r.SmallReadFrac)
	}
	if r.SmallReadData > 0.35 {
		t.Errorf("small-read data fraction = %v, want small", r.SmallReadData)
	}
	if r.SmallWriteFrac < 0.80 {
		t.Errorf("small-write fraction = %v, want ~0.9", r.SmallWriteFrac)
	}
	if r.SmallWriteData > 0.25 {
		t.Errorf("small-write data fraction = %v, want ~3%%", r.SmallWriteData)
	}
	// Figures 5/6: read-only and write-only files are almost all 100%
	// sequential; write-only files are mostly 100% consecutive while
	// read-only files mostly are not.
	if f := 1 - r.SeqPct[analysis.ReadOnly].At(99); f < 0.9 {
		t.Errorf("RO files 100%% sequential = %v, want ~1", f)
	}
	woCons := 1 - r.ConsPct[analysis.WriteOnly].At(99)
	if woCons < 0.7 {
		t.Errorf("WO files 100%% consecutive = %v, want ~0.86", woCons)
	}
	roCons := 1 - r.ConsPct[analysis.ReadOnly].At(99)
	if roCons > 0.6 {
		t.Errorf("RO files 100%% consecutive = %v, want ~0.29", roCons)
	}
	// Table 2: files overwhelmingly use zero or one interval size, and
	// one-interval files are overwhelmingly consecutive.
	zeroOrOne := r.IntervalHist.Fraction(0) + r.IntervalHist.Fraction(1)
	if zeroOrOne < 0.85 {
		t.Errorf("0/1-interval fraction = %v, want ~0.95", zeroOrOne)
	}
	if r.OneIntervalZeroFrac < 0.9 {
		t.Errorf("1-interval-zero fraction = %v, want >0.99", r.OneIntervalZeroFrac)
	}
	// Table 3: one or two request sizes dominate.
	oneOrTwo := r.ReqSizeHist.Fraction(1) + r.ReqSizeHist.Fraction(2)
	if oneOrTwo < 0.75 {
		t.Errorf("1/2-size fraction = %v, want ~0.91", oneOrTwo)
	}
	// Section 4.6: mode 0 overwhelmingly dominates.
	var opens int64
	for _, n := range r.ModeOpens {
		opens += n
	}
	if float64(r.ModeOpens[0])/float64(opens) < 0.99 {
		t.Errorf("mode-0 fraction = %v, want >0.99", float64(r.ModeOpens[0])/float64(opens))
	}
	// Figure 7: write-only files shared across nodes share almost
	// nothing; a solid majority of read-only bytes are shared.
	if r.ByteSharing[analysis.WriteOnly].Len() > 0 {
		if at0 := r.ByteSharing[analysis.WriteOnly].At(0); at0 < 0.8 {
			t.Errorf("WO files with 0%% bytes shared = %v, want ~0.9", at0)
		}
	}
	if r.ByteSharing[analysis.ReadOnly].Len() > 0 {
		fullyShared := 1 - r.ByteSharing[analysis.ReadOnly].At(99)
		if fullyShared < 0.35 {
			t.Errorf("RO files 100%% byte-shared = %v, want ~0.7", fullyShared)
		}
	}
}

func TestArchetypeJobShapes(t *testing.T) {
	// Each archetype must produce a runnable JobSpec with sane node
	// counts and the intended tracing flag.
	rng := stats.NewRNG(5)
	cases := []struct {
		name   string
		spec   machine.JobSpec
		traced bool
	}{
		{"CFDSim", CFDSim(rng, 1, 8, "/m", []string{"/s"}, "", []string{"/b"}), true},
		{"RestartRun", RestartRun(rng, 2, "/r"), true},
		{"ParamStudy", ParamStudy(rng, 3, 4, "/in"), true},
		{"Checkpoint", Checkpoint(rng, 4, 8), true},
		{"RowPadded", RowPaddedReader(rng, 5, 4, "/f"), true},
		{"Scratch", Scratch(rng, 6, 2), true},
		{"BulkDump", BulkDump(rng, 7, 4), true},
		{"LegacyShared", LegacyShared(rng, 8, 4, "/f"), true},
		{"SingleReader", SingleReader(rng, 9, "/f"), true},
		{"StatusCheck", StatusCheck(), false},
		{"SystemUtil", SystemUtil(rng, 10), false},
		{"UntracedParallel", UntracedParallel(rng, 11, 8, []string{"/s"}, ""), false},
	}
	for _, tc := range cases {
		if tc.spec.Nodes <= 0 {
			t.Errorf("%s: nodes = %d", tc.name, tc.spec.Nodes)
		}
		if tc.spec.Traced != tc.traced {
			t.Errorf("%s: traced = %v, want %v", tc.name, tc.spec.Traced, tc.traced)
		}
		if tc.spec.Body == nil {
			t.Errorf("%s: nil body", tc.name)
		}
	}
}

func TestScratchLeavesNoFiles(t *testing.T) {
	// Scratch jobs must delete everything they create.
	k := sim.New()
	m := machine.New(k, machine.NASConfig(3))
	rng := stats.NewRNG(3)
	m.Submit(Scratch(rng, 1, 2))
	k.Run()
	fs := m.FS()
	for r := 0; r < 2; r++ {
		for _, pat := range []string{"/job1/work.", "/job1/sort."} {
			name := pat + string(rune('0'+r))
			if fs.Exists(name) {
				t.Errorf("scratch file %s survived", name)
			}
		}
	}
}

func TestLegacySharedUsesSharedModes(t *testing.T) {
	k := sim.New()
	m := machine.New(k, machine.NASConfig(4))
	if _, err := m.FS().Preload("/data", 1<<20); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(11)
	m.Submit(LegacyShared(rng, 1, 4, "/data"))
	k.Run()
	fs := m.FS()
	shared := fs.ModeCount(1) + fs.ModeCount(3)
	if shared == 0 {
		t.Fatal("legacy job did not use a shared-pointer mode")
	}
}

func TestMultiNodeCountIsPowerOfTwo(t *testing.T) {
	g := NewGenerator(Default(5))
	rng := stats.NewRNG(5)
	for i := 0; i < 1000; i++ {
		n := g.multiNodeCount(rng)
		if n < 2 || n > 128 || n&(n-1) != 0 {
			t.Fatalf("bad node count %d", n)
		}
	}
}

func TestArrivalWithinHorizon(t *testing.T) {
	g := NewGenerator(Default(6))
	rng := stats.NewRNG(6)
	horizon := g.Horizon()
	for i := 0; i < 1000; i++ {
		at := g.arrival(rng, horizon)
		if at < 0 || at >= horizon {
			t.Fatalf("arrival %v outside [0,%v)", at, horizon)
		}
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(0, 0.5) != 0 {
		t.Fatal("scaled(0) should stay 0")
	}
	if scaled(100, 0.5) != 50 {
		t.Fatal("scaled(100, 0.5) != 50")
	}
	if scaled(1, 0.001) != 1 {
		t.Fatal("scaled should floor at 1 for non-zero counts")
	}
}
