package workload

import (
	"fmt"
	"strings"
)

// The archetype registry: a stable name for every job archetype in
// archetypes.go, bound to the Params field that controls how many of
// that archetype a study submits. Scenario specs build workload mixes
// by these names instead of reaching into Params, so adding an
// archetype means adding one registry entry and nothing else.

// Archetype is one registry entry.
type Archetype struct {
	// Name is the stable registry identifier ("cfd-sim", ...).
	Name string
	// Doc is a one-line description for docs and error messages.
	Doc string
	// Count reads the archetype's full-scale job count from p.
	Count func(p *Params) int
	// SetCount sets the archetype's full-scale job count on p.
	SetCount func(p *Params, n int)
}

// registry holds every archetype in declaration order (the order of
// Params' fields, which is also submission-plan order).
var registry = []Archetype{
	{
		Name:     "status-check",
		Doc:      "periodic single-node machine-status job; no CFS I/O, untraced",
		Count:    func(p *Params) int { return p.StatusCheckJobs },
		SetCount: func(p *Params, n int) { p.StatusCheckJobs = n },
	},
	{
		Name:     "system-util",
		Doc:      "untraced single-node system program (ls, cp, ftp)",
		Count:    func(p *Params) int { return p.SystemUtilJobs },
		SetCount: func(p *Params, n int) { p.SystemUtilJobs = n },
	},
	{
		Name:     "single-reader",
		Doc:      "traced single-node postprocessor: sequential read, small report",
		Count:    func(p *Params) int { return p.SingleReaderJobs },
		SetCount: func(p *Params, n int) { p.SingleReaderJobs = n },
	},
	{
		Name:     "cfd-sim",
		Doc:      "dominant archetype: time-stepping parallel CFD solver",
		Count:    func(p *Params) int { return p.CFDSimJobs },
		SetCount: func(p *Params, n int) { p.CFDSimJobs = n },
	},
	{
		Name:     "restart-run",
		Doc:      "two-node continuation run: private restart in, private output out",
		Count:    func(p *Params) int { return p.RestartRunJobs },
		SetCount: func(p *Params, n int) { p.RestartRunJobs = n },
	},
	{
		Name:     "param-study",
		Doc:      "one small solver per node: big private reads, one-shot result",
		Count:    func(p *Params) int { return p.ParamStudyJobs },
		SetCount: func(p *Params, n int) { p.ParamStudyJobs = n },
	},
	{
		Name:     "checkpoint",
		Doc:      "block-aligned interleaved checkpoint writes to shared files",
		Count:    func(p *Params) int { return p.CheckpointJobs },
		SetCount: func(p *Params, n int) { p.CheckpointJobs = n },
	},
	{
		Name:     "row-padded",
		Doc:      "strided reader of padded matrix rows (two interval sizes)",
		Count:    func(p *Params) int { return p.RowPaddedJobs },
		SetCount: func(p *Params, n int) { p.RowPaddedJobs = n },
	},
	{
		Name:     "scratch",
		Doc:      "rare out-of-core job: read-write working file plus deleted temporaries",
		Count:    func(p *Params) int { return p.ScratchJobs },
		SetCount: func(p *Params, n int) { p.ScratchJobs = n },
	},
	{
		Name:     "bulk-dump",
		Doc:      "the 1 MB data-transfer spike: every node dumps megabyte requests",
		Count:    func(p *Params) int { return p.BulkDumpJobs },
		SetCount: func(p *Params, n int) { p.BulkDumpJobs = n },
	},
	{
		Name:     "legacy-shared",
		Doc:      "CFS shared-pointer modes 1 and 3 (<1% of opens)",
		Count:    func(p *Params) int { return p.LegacySharedJobs },
		SetCount: func(p *Params, n int) { p.LegacySharedJobs = n },
	},
	{
		Name:     "untraced-parallel",
		Doc:      "multi-node production job without the instrumented library",
		Count:    func(p *Params) int { return p.UntracedParallJobs },
		SetCount: func(p *Params, n int) { p.UntracedParallJobs = n },
	},
}

// Archetypes returns the registry, in declaration (submission-plan)
// order.
func Archetypes() []Archetype {
	return append([]Archetype(nil), registry...)
}

// ArchetypeNames returns every registry name in declaration order.
func ArchetypeNames() []string {
	names := make([]string, len(registry))
	for i, a := range registry {
		names[i] = a.Name
	}
	return names
}

// LookupArchetype resolves a registry name (case-insensitive).
func LookupArchetype(name string) (Archetype, error) {
	for _, a := range registry {
		if strings.EqualFold(name, a.Name) {
			return a, nil
		}
	}
	return Archetype{}, fmt.Errorf("workload: unknown archetype %q (known: %s)",
		name, strings.Join(ArchetypeNames(), ", "))
}

// SetJobs sets one archetype's full-scale job count on p by registry
// name.
func SetJobs(p *Params, name string, n int) error {
	a, err := LookupArchetype(name)
	if err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("workload: negative job count %d for archetype %q", n, name)
	}
	a.SetCount(p, n)
	return nil
}

// Jobs reads one archetype's full-scale job count from p by registry
// name.
func Jobs(p *Params, name string) (int, error) {
	a, err := LookupArchetype(name)
	if err != nil {
		return 0, err
	}
	return a.Count(p), nil
}

// Empty returns a Params with every archetype count zeroed but the
// shared input pools and horizon kept at their calibrated sizes, the
// base for scenario mixes built from scratch. (The pools must stay
// non-empty: archetypes that read shared inputs pick from them.)
func Empty(seed uint64) Params {
	p := Default(seed)
	for _, a := range registry {
		a.SetCount(&p, 0)
	}
	return p
}

// TotalJobs sums every archetype's full-scale count in p.
func TotalJobs(p *Params) int {
	total := 0
	for _, a := range registry {
		total += a.Count(p)
	}
	return total
}
