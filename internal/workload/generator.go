package workload

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Params configures the synthetic study. All counts are for a
// full-scale (Scale = 1.0) reproduction of the paper's 156-hour,
// 3016-job study; Scale shrinks the job population proportionally
// (and the horizon by sqrt(scale), keeping the machine similarly busy).
type Params struct {
	Seed         uint64
	Scale        float64
	HorizonHours float64

	// Single-node job counts (paper: 2237 single-node jobs, of which
	// one periodic status job accounts for 800+, and only ~41 were
	// traced).
	StatusCheckJobs  int
	SystemUtilJobs   int
	SingleReaderJobs int

	// Multi-node job counts (paper: 779 multi-node jobs, >=429 traced).
	CFDSimJobs         int
	RestartRunJobs     int
	ParamStudyJobs     int
	CheckpointJobs     int
	RowPaddedJobs      int
	ScratchJobs        int
	BulkDumpJobs       int
	LegacySharedJobs   int
	UntracedParallJobs int

	// SharedMeshFiles and SharedFieldFiles size the preloaded pools of
	// shared input data (the Figure 3 clusters near 25 KB and 250 KB).
	SharedMeshFiles  int
	SharedFieldFiles int
}

// Default returns the calibrated full-scale parameters.
func Default(seed uint64) Params {
	return Params{
		Seed:         seed,
		Scale:        1.0,
		HorizonHours: 156,

		StatusCheckJobs:  820,
		SystemUtilJobs:   1376,
		SingleReaderJobs: 41,

		CFDSimJobs:         190,
		RestartRunJobs:     120,
		ParamStudyJobs:     25,
		CheckpointJobs:     25,
		RowPaddedJobs:      15,
		ScratchJobs:        100,
		BulkDumpJobs:       6,
		LegacySharedJobs:   18,
		UntracedParallJobs: 270,

		SharedMeshFiles:  40,
		SharedFieldFiles: 60,
	}
}

// scaled returns max(1, round(n*scale)), or 0 if n is 0.
func scaled(n int, scale float64) int {
	if n == 0 {
		return 0
	}
	s := int(float64(n)*scale + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}

// Generator draws and installs the synthetic workload.
type Generator struct {
	p   Params
	rng *stats.RNG
}

// NewGenerator returns a generator for the given parameters.
func NewGenerator(p Params) *Generator {
	if p.Scale <= 0 {
		panic("workload: Scale must be positive")
	}
	return &Generator{p: p, rng: stats.NewRNG(p.Seed)}
}

// Horizon returns the scaled study duration. It scales linearly with
// the job population so the arrival rate -- and therefore Figure 1's
// concurrency profile -- is scale-invariant.
func (g *Generator) Horizon() sim.Time {
	hours := g.p.HorizonHours * g.p.Scale
	if hours < 4 {
		hours = 4
	}
	if hours > g.p.HorizonHours {
		hours = g.p.HorizonHours
	}
	return sim.Time(hours * float64(sim.Hour))
}

// multiNodeCount draws a power-of-two node count for a parallel job,
// weighted like Figure 2's multi-node population (16-64 nodes carry
// most node-hours).
func (g *Generator) multiNodeCount(rng *stats.RNG) int {
	sizes := []int{2, 4, 8, 16, 32, 64, 128}
	weights := []float64{8, 10, 16, 22, 22, 16, 6}
	return sizes[rng.Pick(weights)]
}

// arrival draws a job submission time: uniform across the horizon,
// modulated by a day/night cycle (daytime jobs arrive three times as
// often), which produces Figure 1's mix of idle and busy periods.
func (g *Generator) arrival(rng *stats.RNG, horizon sim.Time) sim.Time {
	for {
		t := sim.Time(rng.Int64n(int64(horizon)))
		hourOfDay := (t / sim.Hour) % 24
		day := hourOfDay >= 8 && hourOfDay < 20
		if day || rng.Bool(0.25) {
			return t
		}
	}
}

// jobPlan is one job to submit.
type jobPlan struct {
	at   sim.Time
	spec machine.JobSpec
}

// Target is where a workload lands: the simulated machine, or any
// stand-in that accepts the same preloaded files and job schedule
// (the analytical twin's timing engine). *machine.Machine satisfies
// it directly.
type Target interface {
	// ComputeNodes reports the machine size; drawn node counts are
	// clamped to it.
	ComputeNodes() int
	// Preload creates a pre-existing input file of the given size.
	Preload(name string, size int64) error
	// SubmitAt schedules a job submission at absolute virtual time t.
	SubmitAt(t sim.Time, spec machine.JobSpec)
}

// Install preloads the shared input data and submits the whole job
// schedule onto the machine. It must be called before the kernel runs.
// It returns the study horizon (pass it to analysis.Analyze).
func (g *Generator) Install(m Target) sim.Time {
	p := g.p
	horizon := g.Horizon()

	// --- Shared input pools (pre-existing data sets). -------------
	meshNames := make([]string, 0, scaled(p.SharedMeshFiles, p.Scale))
	sizeRNG := g.rng.Split(1)
	for i := 0; i < scaled(p.SharedMeshFiles, p.Scale); i++ {
		name := fmt.Sprintf("/shared/mesh%d", i)
		size := int64(20000 + sizeRNG.Int64n(12000)) // ~25 KB cluster
		if err := m.Preload(name, size); err != nil {
			panic(err)
		}
		meshNames = append(meshNames, name)
	}
	// Medium shared inputs (~250 KB cluster): read whole by
	// single-node tools and row-padded readers.
	fieldNames := make([]string, 0, scaled(p.SharedFieldFiles, p.Scale))
	for i := 0; i < scaled(p.SharedFieldFiles, p.Scale); i++ {
		name := fmt.Sprintf("/shared/field%d", i)
		size := int64(200000 + sizeRNG.Int64n(150000))
		if err := m.Preload(name, size); err != nil {
			panic(err)
		}
		fieldNames = append(fieldNames, name)
	}
	// Large flow-field files: the read-byte carriers, interleave-read
	// in big chunks and re-read every phase. Successive jobs share
	// them, which (with the per-phase re-reads) is where the I/O-node
	// cache's size-dependence comes from.
	bigNames := make([]string, 0, scaled(p.SharedFieldFiles/4, p.Scale))
	for i := 0; i < scaled(p.SharedFieldFiles/4, p.Scale); i++ {
		name := fmt.Sprintf("/shared/big%d", i)
		size := int64(6<<20) + sizeRNG.Int64n(8<<20)
		if err := m.Preload(name, size); err != nil {
			panic(err)
		}
		bigNames = append(bigNames, name)
	}
	// Shared snapshot pool, interleave-read by the CFD jobs.
	snapNames := make([]string, 0, scaled(600, p.Scale))
	for i := 0; i < scaled(600, p.Scale); i++ {
		name := fmt.Sprintf("/shared/snap%d", i)
		size := int64(50000) + sizeRNG.Int64n(220000)
		if err := m.Preload(name, size); err != nil {
			panic(err)
		}
		snapNames = append(snapNames, name)
	}
	// Inputs for the untraced parallel jobs.
	if err := m.Preload("/shared/mesh-u", 24000); err != nil {
		panic(err)
	}
	if err := m.Preload("/shared/field-u", 3<<20); err != nil {
		panic(err)
	}
	untracedSnaps := make([]string, 6)
	for i := range untracedSnaps {
		untracedSnaps[i] = fmt.Sprintf("/shared/snap-u%d", i)
		if err := m.Preload(untracedSnaps[i], 400000); err != nil {
			panic(err)
		}
	}

	pickMesh := func(rng *stats.RNG) string { return meshNames[rng.Intn(len(meshNames))] }
	pickField := func(rng *stats.RNG) string { return fieldNames[rng.Intn(len(fieldNames))] }
	pickBigs := func(rng *stats.RNG) []string {
		n := 2 + rng.Intn(2)
		out := make([]string, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, bigNames[rng.Intn(len(bigNames))])
		}
		return out
	}

	var plans []jobPlan
	jobSeq := 0
	// Node counts are drawn from the Figure 2 distribution and then
	// clamped to the machine being simulated, so the calibrated mix
	// runs unchanged on smaller presets (the clamp never fires on the
	// 128-node NAS machine and consumes no extra randomness).
	maxNodes := m.ComputeNodes()
	drawNodes := func(rng *stats.RNG) int {
		n := g.multiNodeCount(rng)
		if n > maxNodes {
			n = maxNodes
		}
		return n
	}
	add := func(spec machine.JobSpec, rng *stats.RNG) {
		plans = append(plans, jobPlan{at: g.arrival(rng, horizon), spec: spec})
	}
	// preloadRestarts creates the per-node private input files a job
	// will read (written by predecessor runs before tracing began).
	preloadRestarts := func(prefix string, nodes int, rng *stats.RNG, meanBytes int64) {
		for r := 0; r < nodes; r++ {
			size := meanBytes/2 + rng.Int64n(meanBytes)
			if err := m.Preload(fmt.Sprintf("%s.%d", prefix, r), size); err != nil {
				panic(err)
			}
		}
	}

	// --- Single-node population. -----------------------------------
	for i := 0; i < scaled(p.StatusCheckJobs, p.Scale); i++ {
		jobSeq++
		add(StatusCheck(), g.rng.Split(uint64(jobSeq)))
	}
	for i := 0; i < scaled(p.SystemUtilJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		add(SystemUtil(rng, jobSeq), rng)
	}
	for i := 0; i < scaled(p.SingleReaderJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		add(SingleReader(rng, jobSeq, pickField(rng)), rng)
	}

	// --- Traced parallel population. --------------------------------
	for i := 0; i < scaled(p.CFDSimJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		nodes := drawNodes(rng)
		// Shared snapshots: a few from the pool (revisited by later
		// jobs) plus several unique to this job.
		snaps := make([]string, 0, 26)
		for s := 0; s < 1+rng.Intn(2); s++ {
			snaps = append(snaps, snapNames[rng.Intn(len(snapNames))])
		}
		for s := 0; s < 16+rng.Intn(13); s++ {
			name := fmt.Sprintf("/job%d/snap.%d", jobSeq, s)
			size := int64(50000) + rng.Int64n(220000)
			if err := m.Preload(name, size); err != nil {
				panic(err)
			}
			snaps = append(snaps, name)
		}
		// Some runs restart from private per-node state.
		restartPrefix := ""
		if rng.Bool(0.30) {
			restartPrefix = fmt.Sprintf("/job%d/restart", jobSeq)
			preloadRestarts(restartPrefix, nodes, rng, 45000)
		}
		add(CFDSim(rng, jobSeq, nodes, pickMesh(rng), snaps, restartPrefix, pickBigs(rng)), rng)
	}
	for i := 0; i < scaled(p.RestartRunJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		prefix := fmt.Sprintf("/job%d/restart", jobSeq)
		preloadRestarts(prefix, 2, rng, 60000)
		add(RestartRun(rng, jobSeq, prefix), rng)
	}
	for i := 0; i < scaled(p.ParamStudyJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		nodes := drawNodes(rng)
		prefix := fmt.Sprintf("/job%d/input", jobSeq)
		preloadRestarts(prefix, nodes, rng, 400000)
		add(ParamStudy(rng, jobSeq, nodes, prefix), rng)
	}
	for i := 0; i < scaled(p.CheckpointJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		add(Checkpoint(rng, jobSeq, drawNodes(rng)), rng)
	}
	for i := 0; i < scaled(p.RowPaddedJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		add(RowPaddedReader(rng, jobSeq, drawNodes(rng), pickField(rng)), rng)
	}
	for i := 0; i < scaled(p.ScratchJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		nodes := []int{2, 4, 8}[rng.Intn(3)]
		add(Scratch(rng, jobSeq, nodes), rng)
	}
	for i := 0; i < scaled(p.BulkDumpJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		add(BulkDump(rng, jobSeq, drawNodes(rng)), rng)
	}
	for i := 0; i < scaled(p.LegacySharedJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		nodes := []int{2, 4, 8}[rng.Intn(3)]
		add(LegacyShared(rng, jobSeq, nodes, pickField(rng)), rng)
	}
	for i := 0; i < scaled(p.UntracedParallJobs, p.Scale); i++ {
		jobSeq++
		rng := g.rng.Split(uint64(jobSeq))
		nodes := drawNodes(rng)
		add(UntracedParallel(rng, jobSeq, nodes, untracedSnaps, ""), rng)
	}

	// Deterministic submission order: by arrival time, then by
	// generation sequence.
	sort.SliceStable(plans, func(i, j int) bool { return plans[i].at < plans[j].at })
	for _, pl := range plans {
		m.SubmitAt(pl.at, pl.spec)
	}
	return horizon
}
