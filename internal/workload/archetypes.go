// Package workload generates the synthetic production workload that
// stands in for NASA Ames's proprietary 1993 CFD job mix. Application
// archetypes reproduce the access patterns the paper observed --
// per-node output files written as header+records, interleaved strided
// reads of shared inputs, broadcast reads of small mesh files,
// block-aligned checkpoint writes to shared files, rare read-write
// scratch and temporary files, and the one periodic status job that
// accounted for hundreds of single-node runs -- with mixture weights
// calibrated so that every figure and table in the paper comes out
// with the right shape (see DESIGN.md's calibration targets).
package workload

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
)

// recordSize draws a typical CFD record size: mostly small (the
// natural result of distributing matrix rows over many processors),
// with a minority of users who sized requests to the 4 KB block.
func recordSize(rng *stats.RNG) int64 {
	switch rng.Pick([]float64{35, 30, 20, 7, 8}) {
	case 0: // tiny records (a few doubles per column strip)
		return 40 + 8*rng.Int64n(60)
	case 1: // few-hundred-byte records
		return 200 + 8*rng.Int64n(200)
	case 2: // ~1-3 KB rows
		return 1024 + 8*rng.Int64n(256)
	case 3: // exactly block-sized: the optimized minority
		return 4096
	default: // medium, above the small threshold
		return 4096 + 8*rng.Int64n(1024)
	}
}

// sleepShort models a burst of computation between I/O calls.
func sleepShort(ctx *machine.NodeCtx, rng *stats.RNG) {
	ctx.P.Sleep(sim.Time(rng.Int64n(int64(20 * sim.Millisecond))))
}

// openRead opens an existing file read-only, failing the job's node
// quietly if the file vanished (deleted between jobs).
func openRead(ctx *machine.NodeCtx, name string, mode cfs.IOMode) machine.File {
	h, err := ctx.CFS.Open(ctx.P, name, cfs.ORdOnly, mode)
	if err != nil {
		return nil
	}
	return h
}

// readAll reads a whole file start-to-finish in rec-sized consecutive
// requests: the broadcast-read pattern (100% sequential, 100%
// consecutive, fully byte-shared when every node does it).
func readAll(ctx *machine.NodeCtx, h machine.File, rec int64) {
	size := h.Size()
	for off := int64(0); off < size; {
		n, err := h.Read(ctx.P, rec)
		if err != nil || n == 0 {
			break
		}
		off += n
	}
}

// readInterleaved reads records rank, rank+P, rank+2P, ... of a shared
// file: sequential but non-consecutive per node, one non-zero interval
// size, disjoint bytes but shared blocks when rec < 4 KB.
func readInterleaved(ctx *machine.NodeCtx, h machine.File, rec int64) {
	size := h.Size()
	stride := rec * int64(ctx.JobNodes)
	for base := int64(ctx.Rank) * rec; base < size; base += stride {
		if _, err := h.ReadAt(ctx.P, base, rec); err != nil {
			break
		}
	}
}

// readPartitioned gives each node one contiguous chunk of the file,
// read in a single request: the dominant parallel input pattern. Per
// node there are no intervals at all (Table 2's 0-interval bucket);
// all nodes but rank 0 start past byte zero, so the file is sequential
// but not consecutive. With overlap false the nodes' byte ranges are
// disjoint (Figure 7's 0%-shared population); with overlap true each
// node also reads both neighbouring chunks -- the ghost-cell pattern
// of a domain-decomposed CFD solver -- so every byte is read by two or
// three nodes and the file is fully byte-shared, still in one request
// per node.
func readPartitioned(ctx *machine.NodeCtx, h machine.File, overlap bool) {
	size := h.Size()
	chunk := size / int64(ctx.JobNodes)
	if chunk <= 0 {
		if ctx.Rank == 0 && size > 0 {
			h.ReadAt(ctx.P, 0, size)
		}
		return
	}
	lo := int64(ctx.Rank)
	hi := lo + 1
	if overlap {
		lo--
		hi++
	}
	if lo < 0 {
		lo = 0
	}
	off := lo * chunk
	end := hi * chunk
	if hi >= int64(ctx.JobNodes) {
		end = size // the top reader takes the remainder
	}
	h.ReadAt(ctx.P, off, end-off)
}

// readInterleavedPaired reads two consecutive records per stride step:
// offsets 2*rank, 2*rank+1, then 2*(rank+P), ... The per-node stream
// alternates a zero gap with a stride gap, producing the two distinct
// interval sizes of Table 2's small 2-interval population.
func readInterleavedPaired(ctx *machine.NodeCtx, h machine.File, rec int64) {
	size := h.Size()
	stride := 2 * rec * int64(ctx.JobNodes)
	for base := 2 * int64(ctx.Rank) * rec; base < size; base += stride {
		if _, err := h.ReadAt(ctx.P, base, rec); err != nil {
			break
		}
		if base+rec < size {
			if _, err := h.ReadAt(ctx.P, base+rec, rec); err != nil {
				break
			}
		}
	}
}

// writeRecords writes a header then count records consecutively: the
// per-node output pattern (write-only, 100% consecutive, two request
// sizes, one interval size of zero).
func writeRecords(ctx *machine.NodeCtx, h machine.File, header, rec int64, count int) {
	if header > 0 {
		h.Write(ctx.P, header)
	}
	for i := 0; i < count; i++ {
		h.Write(ctx.P, rec)
	}
}

// CFDSim is the dominant traced archetype: a time-stepping parallel
// CFD solver. Per run it
//  1. broadcast-reads a small shared mesh file (every node reads every
//     byte: Figure 7's fully byte-shared read-only population),
//  2. interleave-reads a few shared snapshot files drawn from a pool
//     that successive jobs revisit (re-read by later jobs, their bytes
//     end up shared; read by one job only, they are Figure 7's
//     0%-shared population),
//  3. column-reads one or two private matrix files per node (small
//     strided requests: the bulk of the read-only file count and of
//     all read requests -- sequential, never consecutive, one
//     non-zero interval size, never concurrently shared),
//  4. re-reads one or two large flow-field files in big interleaved
//     chunks before every compute phase (few requests, most of the
//     read bytes, and the phase-to-phase reuse an I/O-node cache can
//     capture), and
//  5. writes one private output file per node per phase -- a stream of
//     small records, a single bulk dump, or small annotations plus
//     bulk dumps.
//
// Optional per-node probe opens contribute the opened-but-untouched
// population, and a rare read-back of an output header makes that file
// read-write.
func CFDSim(rng *stats.RNG, job int, nodes int, meshFile string, sharedSnaps []string, restartPrefix string, bigFields []string) machine.JobSpec {
	phases := 1 + rng.Intn(4)
	// Shared-file records are a few hundred bytes to ~2 KB: small
	// requests, but with per-node strides that leave a block behind
	// every time once a dozen or more nodes interleave.
	meshRec := int64(512 + 8*rng.Int64n(192))
	snapRec := int64(512 + 8*rng.Int64n(192))
	bigChunk := int64(262144 + 65536*rng.Int64n(12)) // 256 KB - 1 MB
	// Per-snapshot access style: broadcast (every node reads every
	// byte), disjoint partitioned (one request per node: Figure 7's
	// 0%-shared population), overlapped partitioned (ghost cells: one
	// request per node, fully byte-shared), or interleaved small
	// records, singly or in pairs (the small 1- and 2-nonzero-interval
	// populations of Table 2).
	snapStyles := make([]int, len(sharedSnaps))
	for i := range snapStyles {
		snapStyles[i] = rng.Pick([]float64{10, 15, 57, 12, 6})
	}
	meshInterleaved := rng.Bool(0.7) || nodes >= 16 // records round-robin across nodes
	// Restart state is read in medium chunks: the stream is
	// consecutive but too coarse for a one-block buffer to matter.
	restartRec := int64(4096 + 8*rng.Int64n(512))
	// Most restart files carry a header the solver skips, so the
	// stream is sequential but one request short of 100% consecutive.
	restartSkip := int64(0)
	if rng.Bool(0.55) {
		restartSkip = 512 + 8*rng.Int64n(448)
	}
	outHeader := int64(64 + 8*rng.Intn(56))
	// Output style: a stream of small records, a single bulk dump, or
	// small annotations followed by bulk dumps.
	outStyle := rng.Pick([]float64{30, 40, 30})
	outRec := recordSize(rng)
	outRecords := 10 + rng.Intn(150)
	annotations := 10 + rng.Intn(30)
	dumpBytes := int64(65536 + 32768*rng.Int64n(10))
	if rng.Bool(0.18) {
		dumpBytes *= 12 // the rare huge-output tail
	}
	dumps := 1 + rng.Intn(2)
	probeNodes := int(0.5 * rng.Float64() * float64(nodes)) // nodes that probe an untouched file
	skipBroadcast := rng.Bool(0.3)                          // pure-strided runs
	verify := rng.Bool(0.12)                                // read back the last output header
	headerLast := rng.Bool(0.40)                            // seek back and rewrite the header at the end
	computePerPhase := sim.Time(rng.Int64n(int64(12 * sim.Minute)))

	return machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			// (0) optional probe of a per-node file that is never
			// accessed: opened, found stale, closed.
			if ctx.Rank < probeNodes {
				name := fmt.Sprintf("/job%d/probe.%d", job, ctx.Rank)
				if h, err := ctx.CFS.Open(ctx.P, name, cfs.ORdWr|cfs.OCreate, cfs.Mode0); err == nil {
					h.Close(ctx.P)
				}
			}
			// (2) read the shared snapshots.
			for i, snap := range sharedSnaps {
				if h := openRead(ctx, snap, cfs.Mode0); h != nil {
					switch snapStyles[i] {
					case 0:
						readAll(ctx, h, snapRec)
					case 1:
						readPartitioned(ctx, h, false)
					case 2:
						readPartitioned(ctx, h, true)
					case 3:
						readInterleaved(ctx, h, snapRec)
					default:
						readInterleavedPaired(ctx, h, snapRec)
					}
					h.Close(ctx.P)
				}
			}
			// (3) private per-node restart file: skip the header, then
			// stream small records to the end.
			if restartPrefix != "" {
				name := fmt.Sprintf("%s.%d", restartPrefix, ctx.Rank)
				if h := openRead(ctx, name, cfs.Mode0); h != nil {
					if restartSkip > 0 {
						h.Seek(ctx.P, restartSkip)
					}
					readAll(ctx, h, restartRec)
					h.Close(ctx.P)
				}
			}
			// (1,4,5) compute phases: re-read the mesh and the flow
			// fields (boundary data changes every timestep), compute,
			// dump a private output file.
			for phase := 0; phase < phases; phase++ {
				if !skipBroadcast {
					if h := openRead(ctx, meshFile, cfs.Mode0); h != nil {
						if meshInterleaved {
							readInterleaved(ctx, h, meshRec)
						} else {
							readAll(ctx, h, meshRec)
						}
						h.Close(ctx.P)
					}
				}
				for _, bf := range bigFields {
					if h := openRead(ctx, bf, cfs.Mode0); h != nil {
						readInterleaved(ctx, h, bigChunk)
						h.Close(ctx.P)
					}
				}
				ctx.P.Sleep(computePerPhase)
				name := fmt.Sprintf("/job%d/out.%d.%d", job, phase, ctx.Rank)
				flags := cfs.OWrOnly | cfs.OCreate
				last := phase == phases-1
				if verify && last {
					flags = cfs.ORdWr | cfs.OCreate
				}
				h, err := ctx.CFS.Open(ctx.P, name, flags, cfs.Mode0)
				if err != nil {
					continue
				}
				switch outStyle {
				case 0: // stream of small records behind a header
					writeRecords(ctx, h, outHeader, outRec, outRecords)
				case 1: // single bulk dump: one request, zero intervals
					h.Write(ctx.P, dumpBytes)
				default: // annotations then bulk dumps: two request
					// sizes, most bytes in the large requests
					for i := 0; i < annotations; i++ {
						h.Write(ctx.P, outHeader)
					}
					for i := 0; i < dumps; i++ {
						h.Write(ctx.P, dumpBytes)
					}
					if headerLast {
						// Rewrite the header now that totals are
						// known: the write-only file is no longer
						// 100% sequential or consecutive.
						h.Seek(ctx.P, 0)
						h.Write(ctx.P, outHeader)
					}
				}
				if verify && last {
					h.ReadAt(ctx.P, 0, outHeader)
				}
				h.Close(ctx.P)
				sleepShort(ctx, rng)
			}
		},
	}
}

// ParamStudy runs one small solver instance per node: each node reads
// its own input file in a handful of large requests and writes its own
// result in a single large request (the 0-interval, 1-size population).
func ParamStudy(rng *stats.RNG, job int, nodes int, inputPrefix string) machine.JobSpec {
	chunk := int64(65536 + 8192*rng.Int64n(16))
	outBytes := int64(262144 + 65536*rng.Int64n(24)) // 0.25-1.8 MB one-shot result
	compute := sim.Time(rng.Int64n(int64(25 * sim.Minute)))
	return machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			in := fmt.Sprintf("%s.%d", inputPrefix, ctx.Rank)
			if h := openRead(ctx, in, cfs.Mode0); h != nil {
				readAll(ctx, h, chunk)
				h.Close(ctx.P)
			}
			ctx.P.Sleep(compute)
			out := fmt.Sprintf("/job%d/result.%d", job, ctx.Rank)
			if h, err := ctx.CFS.Open(ctx.P, out, cfs.OWrOnly|cfs.OCreate, cfs.Mode0); err == nil {
				h.Write(ctx.P, outBytes)
				h.Close(ctx.P)
			}
		},
	}
}

// Checkpoint writes a shared, block-aligned checkpoint file: node i
// writes chunks i, i+P, i+2P... so the write-only file is concurrently
// open on every node with zero byte- or block-sharing.
func Checkpoint(rng *stats.RNG, job int, nodes int) machine.JobSpec {
	chunkBlocks := int64(16 + 16*rng.Int64n(4)) // 64-256 KB, block-aligned
	chunk := chunkBlocks * 4096
	rounds := 2 + rng.Intn(6)
	phases := 1 + rng.Intn(3)
	compute := sim.Time(rng.Int64n(int64(10 * sim.Minute)))
	return machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			for phase := 0; phase < phases; phase++ {
				ctx.P.Sleep(compute)
				name := fmt.Sprintf("/job%d/chkpt.%d", job, phase)
				h, err := ctx.CFS.Open(ctx.P, name, cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
				if err != nil {
					continue
				}
				stride := chunk * int64(ctx.JobNodes)
				for r := 0; r < rounds; r++ {
					off := int64(r)*stride + int64(ctx.Rank)*chunk
					h.WriteAt(ctx.P, off, chunk)
				}
				h.Close(ctx.P)
			}
		},
	}
}

// RowPaddedReader reads a matrix stored with padded rows: within each
// row it reads consecutively, then skips the padding, producing two
// distinct interval sizes (the paper's small 2-interval population).
func RowPaddedReader(rng *stats.RNG, job int, nodes int, fieldFile string) machine.JobSpec {
	rowChunk := recordSize(rng)
	chunksPerRow := 3 + rng.Intn(5)
	pad := int64(128 + 8*rng.Int64n(64))
	compute := sim.Time(rng.Int64n(int64(8 * sim.Minute)))
	return machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			ctx.P.Sleep(compute)
			h := openRead(ctx, fieldFile, cfs.Mode0)
			if h == nil {
				return
			}
			size := h.Size()
			off := int64(0)
			for off < size {
				for c := 0; c < chunksPerRow && off < size; c++ {
					h.ReadAt(ctx.P, off, rowChunk)
					off += rowChunk
				}
				off += pad
			}
			h.Close(ctx.P)
			// Write a small per-node summary.
			out := fmt.Sprintf("/job%d/rows.%d", job, ctx.Rank)
			if w, err := ctx.CFS.Open(ctx.P, out, cfs.OWrOnly|cfs.OCreate, cfs.Mode0); err == nil {
				w.Write(ctx.P, 2048)
				w.Close(ctx.P)
			}
		},
	}
}

// RestartRun is a short two-node continuation run: each node reads its
// private restart file and writes one private output -- exactly four
// files per job, Table 1's prominent 4-file clump.
func RestartRun(rng *stats.RNG, job int, restartPrefix string) machine.JobSpec {
	rec := recordSize(rng)
	outRec := recordSize(rng)
	outRecords := 10 + rng.Intn(120)
	compute := sim.Time(rng.Int64n(int64(10 * sim.Minute)))
	return machine.JobSpec{
		Nodes:  2,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			restart := fmt.Sprintf("%s.%d", restartPrefix, ctx.Rank)
			if h := openRead(ctx, restart, cfs.Mode0); h != nil {
				readAll(ctx, h, rec)
				h.Close(ctx.P)
			}
			ctx.P.Sleep(compute)
			out := fmt.Sprintf("/job%d/cont.%d", job, ctx.Rank)
			if w, err := ctx.CFS.Open(ctx.P, out, cfs.OWrOnly|cfs.OCreate, cfs.Mode0); err == nil {
				writeRecords(ctx, w, 0, outRec, outRecords)
				w.Close(ctx.P)
			}
		},
	}
}

// Scratch is the rare out-of-core style job: a read-write working file
// accessed non-sequentially plus a temporary file deleted before exit
// (the paper's 0.61%-of-opens temporary population, "nearly all from
// one application").
func Scratch(rng *stats.RNG, job int, nodes int) machine.JobSpec {
	passes := 40 + rng.Intn(100)
	rec := recordSize(rng)
	span := int64(64 + rng.Int64n(192)) // working set in records
	compute := sim.Time(rng.Int64n(int64(10 * sim.Minute)))
	return machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			ctx.P.Sleep(compute)
			work := fmt.Sprintf("/job%d/work.%d", job, ctx.Rank)
			h, err := ctx.CFS.Open(ctx.P, work, cfs.ORdWr|cfs.OCreate, cfs.Mode0)
			if err != nil {
				return
			}
			// Materialize the working file.
			h.Write(ctx.P, rec*span)
			local := stats.NewRNG(uint64(job)<<16 | uint64(ctx.Rank))
			for i := 0; i < passes; i++ {
				off := local.Int64n(span) * rec
				if local.Bool(0.5) {
					h.ReadAt(ctx.P, off, rec)
				} else {
					h.WriteAt(ctx.P, off, rec)
				}
			}
			h.Close(ctx.P)
			// Re-open once more to append a trailer, then discard the
			// whole file: every open of this file is an open of a
			// temporary file (Section 4.2's 0.61%, "nearly all from
			// one application").
			if h2, err := ctx.CFS.Open(ctx.P, work, cfs.OWrOnly, cfs.Mode0); err == nil {
				h2.Seek(ctx.P, rec*span)
				h2.Write(ctx.P, 256)
				h2.Close(ctx.P)
			}
			ctx.CFS.Delete(ctx.P, work) // temporary: deleted by its creator
			// A second scratch pass through a sort file, also deleted.
			srt := fmt.Sprintf("/job%d/sort.%d", job, ctx.Rank)
			if h3, err := ctx.CFS.Open(ctx.P, srt, cfs.ORdWr|cfs.OCreate, cfs.Mode0); err == nil {
				h3.Write(ctx.P, rec*span/2)
				h3.Seek(ctx.P, 0)
				h3.Read(ctx.P, rec)
				h3.Close(ctx.P)
			}
			ctx.CFS.Delete(ctx.P, srt)
		},
	}
}

// BulkDump is the single application behind Figure 4's 1 MB
// data-transfer spike: every node dumps a few 1 MB requests.
func BulkDump(rng *stats.RNG, job int, nodes int) machine.JobSpec {
	dumps := 2 + rng.Intn(4)
	return machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			name := fmt.Sprintf("/job%d/dump.%d", job, ctx.Rank)
			h, err := ctx.CFS.Open(ctx.P, name, cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
			if err != nil {
				return
			}
			for i := 0; i < dumps; i++ {
				h.Write(ctx.P, 1<<20)
				sleepShort(ctx, rng)
			}
			h.Close(ctx.P)
		},
	}
}

// LegacyShared is the <1% of opens that used CFS's shared-pointer
// modes: a self-scheduled reader using mode 1 or a lock-step reader
// using mode 3.
func LegacyShared(rng *stats.RNG, job int, nodes int, fieldFile string) machine.JobSpec {
	mode := cfs.Mode1
	if rng.Bool(0.4) {
		mode = cfs.Mode3
	}
	rec := int64(1024)
	perNode := 30 + rng.Intn(60)
	return machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			h, err := ctx.CFS.Open(ctx.P, fieldFile, cfs.ORdOnly, mode)
			if err != nil {
				return
			}
			for i := 0; i < perNode; i++ {
				if _, err := h.Read(ctx.P, rec); err != nil {
					break
				}
			}
			h.Close(ctx.P)
		},
	}
}

// SingleReader is a traced single-node postprocessing job: read one
// output sequentially, write a small report.
func SingleReader(rng *stats.RNG, job int, inputFile string) machine.JobSpec {
	rec := recordSize(rng)
	writeReport := rng.Bool(0.3) // most runs just read: a 1-file job
	compute := sim.Time(rng.Int64n(int64(5 * sim.Minute)))
	return machine.JobSpec{
		Nodes:  1,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			ctx.P.Sleep(compute)
			if h := openRead(ctx, inputFile, cfs.Mode0); h != nil {
				readAll(ctx, h, rec)
				h.Close(ctx.P)
			}
			if !writeReport {
				return
			}
			out := fmt.Sprintf("/job%d/report", job)
			if w, err := ctx.CFS.Open(ctx.P, out, cfs.OWrOnly|cfs.OCreate, cfs.Mode0); err == nil {
				w.Write(ctx.P, 1500)
				w.Close(ctx.P)
			}
		},
	}
}

// StatusCheck is the periodic machine-status job: single node, no CFS
// I/O, untraced; it ran over 800 times during the study.
func StatusCheck() machine.JobSpec {
	return machine.JobSpec{
		Nodes:  1,
		Traced: false,
		Body: func(ctx *machine.NodeCtx) {
			ctx.P.Sleep(5 * sim.Second)
		},
	}
}

// SystemUtil is an untraced single-node system program (ls, cp, ftp):
// it may touch CFS, but its library was never relinked, so it leaves
// no CFS trace records -- only job start/end records.
func SystemUtil(rng *stats.RNG, job int) machine.JobSpec {
	doesIO := rng.Bool(0.4)
	return machine.JobSpec{
		Nodes:  1,
		Traced: false,
		Body: func(ctx *machine.NodeCtx) {
			ctx.P.Sleep(sim.Time(rng.Int64n(int64(2 * sim.Minute))))
			if doesIO {
				name := fmt.Sprintf("/job%d/sys", job)
				if h, err := ctx.CFS.Open(ctx.P, name, cfs.OWrOnly|cfs.OCreate, cfs.Mode0); err == nil {
					h.Write(ctx.P, 4096)
					h.Close(ctx.P)
				}
			}
		},
	}
}

// UntracedParallel is a multi-node production job whose binary was not
// relinked with the instrumented library: real CFS load, no records.
func UntracedParallel(rng *stats.RNG, job int, nodes int, snapshots []string, restartPrefix string) machine.JobSpec {
	spec := CFDSim(rng, job, nodes, "/shared/mesh-u", snapshots, restartPrefix, []string{"/shared/field-u"})
	spec.Traced = false
	return spec
}
