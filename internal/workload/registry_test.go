package workload

import (
	"reflect"
	"strings"
	"testing"
)

// TestRegistryCoversEveryJobField pins the registry against Params by
// reflection: every "*Jobs" field of Params must be reachable through
// exactly one archetype entry, so a new archetype cannot be added to
// Params without also being named in the registry.
func TestRegistryCoversEveryJobField(t *testing.T) {
	typ := reflect.TypeOf(Params{})
	var jobFields []string
	for i := 0; i < typ.NumField(); i++ {
		if strings.HasSuffix(typ.Field(i).Name, "Jobs") {
			jobFields = append(jobFields, typ.Field(i).Name)
		}
	}
	if len(jobFields) != len(registry) {
		t.Fatalf("Params has %d job fields but the registry has %d entries: %v",
			len(jobFields), len(registry), jobFields)
	}
	// Each registry entry must control a distinct field: set a sentinel
	// through the registry and find which field changed.
	seen := make(map[string]string) // field -> archetype name
	for _, a := range registry {
		var p Params
		a.SetCount(&p, 7777)
		val := reflect.ValueOf(p)
		found := ""
		for i := 0; i < typ.NumField(); i++ {
			if typ.Field(i).Type.Kind() == reflect.Int && val.Field(i).Int() == 7777 {
				found = typ.Field(i).Name
				break
			}
		}
		if found == "" {
			t.Fatalf("archetype %q sets no Params field", a.Name)
		}
		if prev, dup := seen[found]; dup {
			t.Fatalf("archetypes %q and %q both set Params.%s", prev, a.Name, found)
		}
		seen[found] = a.Name
		if got := a.Count(&p); got != 7777 {
			t.Fatalf("archetype %q: Count reads %d after SetCount(7777)", a.Name, got)
		}
	}
}

func TestRegistryLookupAndSetters(t *testing.T) {
	names := ArchetypeNames()
	if len(names) != len(registry) {
		t.Fatalf("%d names, %d entries", len(names), len(registry))
	}
	for _, name := range names {
		a, err := LookupArchetype(name)
		if err != nil || a.Name != name {
			t.Fatalf("LookupArchetype(%q) = %+v, %v", name, a, err)
		}
		if a.Doc == "" {
			t.Fatalf("archetype %q has no doc line", name)
		}
		// Case-insensitive.
		if _, err := LookupArchetype(strings.ToUpper(name)); err != nil {
			t.Fatalf("LookupArchetype is case-sensitive for %q: %v", name, err)
		}
	}
	if _, err := LookupArchetype("matrix-multiply"); err == nil {
		t.Fatal("unknown archetype resolved")
	}

	p := Default(1)
	if err := SetJobs(&p, "cfd-sim", 3); err != nil || p.CFDSimJobs != 3 {
		t.Fatalf("SetJobs failed: %v (CFDSimJobs=%d)", err, p.CFDSimJobs)
	}
	if n, err := Jobs(&p, "cfd-sim"); err != nil || n != 3 {
		t.Fatalf("Jobs = %d, %v", n, err)
	}
	if err := SetJobs(&p, "cfd-sim", -1); err == nil {
		t.Fatal("negative count accepted")
	}
	if err := SetJobs(&p, "nope", 1); err == nil {
		t.Fatal("unknown archetype accepted")
	}
	if _, err := Jobs(&p, "nope"); err == nil {
		t.Fatal("unknown archetype read")
	}
}

func TestEmptyKeepsPoolsZerosJobs(t *testing.T) {
	p := Empty(42)
	if TotalJobs(&p) != 0 {
		t.Fatalf("Empty has %d jobs", TotalJobs(&p))
	}
	def := Default(42)
	if p.SharedMeshFiles != def.SharedMeshFiles || p.SharedFieldFiles != def.SharedFieldFiles {
		t.Fatal("Empty zeroed the shared input pools")
	}
	if p.HorizonHours != def.HorizonHours || p.Seed != 42 {
		t.Fatalf("Empty changed horizon/seed: %+v", p)
	}
	if TotalJobs(&def) == 0 {
		t.Fatal("calibrated default has no jobs?")
	}
}
