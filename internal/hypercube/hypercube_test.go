package hypercube

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHops(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 2},
		{0, 127, 7},
		{5, 6, 2}, // 101 vs 110
	}
	for _, tc := range cases {
		if got := Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRouteEndpoints(t *testing.T) {
	path := Route(5, 9)
	if path[0] != 5 || path[len(path)-1] != 9 {
		t.Fatalf("route = %v", path)
	}
	if len(path) != Hops(5, 9)+1 {
		t.Fatalf("route length %d, want %d", len(path), Hops(5, 9)+1)
	}
}

func TestRouteSelf(t *testing.T) {
	path := Route(7, 7)
	if len(path) != 1 || path[0] != 7 {
		t.Fatalf("self route = %v", path)
	}
}

func TestRouteStepsAreNeighbors(t *testing.T) {
	path := Route(0, 127)
	for i := 1; i < len(path); i++ {
		if Hops(path[i-1], path[i]) != 1 {
			t.Fatalf("non-neighbor step %d->%d in %v", path[i-1], path[i], path)
		}
	}
}

func TestIPSC860Config(t *testing.T) {
	cfg := IPSC860()
	if cfg.Dim != 7 {
		t.Fatalf("dim = %d", cfg.Dim)
	}
	if cfg.PacketBytes != 4096 {
		t.Fatalf("packet = %d", cfg.PacketBytes)
	}
}

func TestNetworkNodes(t *testing.T) {
	n := New(sim.New(), IPSC860())
	if n.Nodes() != 128 {
		t.Fatalf("nodes = %d", n.Nodes())
	}
}

func TestLatencyGrowsWithDistance(t *testing.T) {
	n := New(sim.New(), IPSC860())
	near := n.Latency(0, 1, 100)
	far := n.Latency(0, 127, 100)
	if far <= near {
		t.Fatalf("far latency %v <= near latency %v", far, near)
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	n := New(sim.New(), IPSC860())
	small := n.Latency(0, 1, 100)
	large := n.Latency(0, 1, 1<<20)
	if large <= small {
		t.Fatalf("large message latency %v <= small %v", large, small)
	}
}

func TestLatencyPacketization(t *testing.T) {
	n := New(sim.New(), IPSC860())
	onePacket := n.Latency(0, 1, 4096)
	twoPackets := n.Latency(0, 1, 4097)
	wantGap := n.Config().PerPacket
	gap := twoPackets - onePacket
	if gap < wantGap {
		t.Fatalf("crossing a packet boundary added only %v, want at least %v", gap, wantGap)
	}
}

func TestZeroByteMessageStillCosts(t *testing.T) {
	n := New(sim.New(), IPSC860())
	if n.Latency(0, 0, 0) <= 0 {
		t.Fatal("zero-byte message should still cost startup time")
	}
}

func TestSendDeliversAtLatency(t *testing.T) {
	k := sim.New()
	n := New(k, IPSC860())
	var deliveredAt sim.Time
	n.Send(0, 5, 1000, func() { deliveredAt = k.Now() })
	k.Run()
	if deliveredAt != n.Latency(0, 5, 1000) {
		t.Fatalf("delivered at %v, want %v", deliveredAt, n.Latency(0, 5, 1000))
	}
	if n.Delivered() != 1 || n.BytesSent() != 1000 {
		t.Fatalf("counters: delivered=%d bytes=%d", n.Delivered(), n.BytesSent())
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	n := New(sim.New(), IPSC860())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range node did not panic")
		}
	}()
	n.Send(0, 128, 10, func() {})
}

func TestNegativeSizePanics(t *testing.T) {
	n := New(sim.New(), IPSC860())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	n.Latency(0, 1, -1)
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Dim: -1, PacketBytes: 4096, BytesPerSecond: 1},
		{Dim: 7, PacketBytes: 0, BytesPerSecond: 1},
		{Dim: 7, PacketBytes: 4096, BytesPerSecond: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(sim.New(), cfg)
		}()
	}
}

func TestAttachmentExtraHop(t *testing.T) {
	n := New(sim.New(), IPSC860())
	att := n.Attach(3)
	if att.Host() != 3 {
		t.Fatalf("host = %d", att.Host())
	}
	direct := n.Latency(0, 3, 500)
	viaPeripheral := att.LatencyFrom(0, 500)
	if viaPeripheral <= direct {
		t.Fatalf("peripheral latency %v should exceed direct %v", viaPeripheral, direct)
	}
}

func TestAttachmentSendBothWays(t *testing.T) {
	k := sim.New()
	n := New(k, IPSC860())
	att := n.Attach(9)
	hits := 0
	att.SendTo(4, 100, func() { hits++ })
	att.SendFrom(4, 100, func() { hits++ })
	k.Run()
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
}

// Property: Hops is a metric - symmetric, zero iff equal, and the
// e-cube route has exactly Hops steps.
func TestQuickHopsMetric(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw%128), int(bRaw%128)
		if Hops(a, b) != Hops(b, a) {
			return false
		}
		if (Hops(a, b) == 0) != (a == b) {
			return false
		}
		return len(Route(a, b)) == Hops(a, b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality on the hypercube metric.
func TestQuickHopsTriangle(t *testing.T) {
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a, b, c := int(aRaw%128), int(bRaw%128), int(cRaw%128)
		return Hops(a, c) <= Hops(a, b)+Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: latency is monotone in message size.
func TestQuickLatencyMonotoneInSize(t *testing.T) {
	n := New(sim.New(), IPSC860())
	f := func(s1, s2 uint32) bool {
		a, b := int(s1%(1<<22)), int(s2%(1<<22))
		if a > b {
			a, b = b, a
		}
		return n.Latency(0, 64, a) <= n.Latency(0, 64, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
