// Package hypercube models the iPSC/860 interconnect: a d-dimensional
// hypercube of compute nodes with e-cube (dimension-ordered) routing,
// plus peripheral nodes (I/O and service nodes) that hang off a single
// compute node rather than sitting on the cube itself, exactly as on
// the NASA Ames machine.
//
// The latency model is startup + per-hop + bandwidth; messages larger
// than the packet size are split into packets (4 KB on the iPSC), each
// paying a small per-packet overhead. Link contention is not modeled:
// the workload characteristics under study are dominated by software
// overhead, disk service, and cache behaviour, not by link queueing.
//
// The package implements topo.Interconnect and registers itself as
// "hypercube" (the topo registry's default); each cube dimension is
// one fault-injection link class.
package hypercube

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
	"repro/internal/topo"
)

// Config is the interconnect parameter set, shared by every topology.
type Config = topo.Config

// IPSC860 returns the iPSC/860's interconnect parameters.
func IPSC860() Config { return topo.IPSC860() }

func init() {
	topo.Register("hypercube",
		func(cfg Config) int { return cfg.Dim },
		func(k *sim.Kernel, nodes int, cfg Config) topo.Interconnect {
			n := New(k, cfg)
			if nodes != n.Nodes() {
				panic(fmt.Sprintf("hypercube: dimension %d (%d nodes) disagrees with node count %d",
					cfg.Dim, n.Nodes(), nodes))
			}
			return n
		})
}

// Network is a hypercube interconnect bound to a simulation kernel.
type Network struct {
	k   *sim.Kernel
	cfg Config
	deg topo.Degrader // nil on a healthy network

	delivered int64 // messages delivered, for instrumentation
	bytesSent int64
}

// SetDegrader installs a latency degrader on the network. Call it
// before the simulation starts.
func (n *Network) SetDegrader(d topo.Degrader) { n.deg = d }

// New returns a network on kernel k with the given configuration.
func New(k *sim.Kernel, cfg Config) *Network {
	if cfg.Dim < 0 || cfg.Dim > 16 {
		panic(fmt.Sprintf("hypercube: unreasonable dimension %d", cfg.Dim))
	}
	if cfg.PacketBytes <= 0 {
		panic("hypercube: packet size must be positive")
	}
	if cfg.BytesPerSecond <= 0 {
		panic("hypercube: bandwidth must be positive")
	}
	return &Network{k: k, cfg: cfg}
}

// Nodes returns the number of compute nodes (2^dim).
func (n *Network) Nodes() int { return 1 << n.cfg.Dim }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Delivered reports the number of messages delivered so far.
func (n *Network) Delivered() int64 { return n.delivered }

// BytesSent reports the total payload bytes sent so far.
func (n *Network) BytesSent() int64 { return n.bytesSent }

// LinkClasses returns the fault-injection link-class count: one class
// per cube dimension.
func (n *Network) LinkClasses() int { return n.cfg.Dim }

// ClassName names link class d: the cube links along dimension d.
func (n *Network) ClassName(class int) string { return fmt.Sprintf("dim%d", class) }

// Hops returns the hypercube distance between two compute nodes:
// the number of bits in which their addresses differ.
func Hops(a, b int) int { return bits.OnesCount32(uint32(a) ^ uint32(b)) }

// Route returns the e-cube (dimension-ordered) path from a to b,
// inclusive of both endpoints. E-cube routing resolves address bits
// from lowest dimension to highest, which is deadlock-free on a
// hypercube.
func Route(a, b int) []int {
	path := []int{a}
	cur := a
	diff := a ^ b
	for d := 0; diff != 0; d++ {
		bit := 1 << d
		if diff&bit != 0 {
			cur ^= bit
			path = append(path, cur)
			diff &^= bit
		}
	}
	return path
}

// validate panics if id is not a compute-node address.
func (n *Network) validate(id int) {
	if id < 0 || id >= n.Nodes() {
		panic(fmt.Sprintf("hypercube: node %d out of range [0,%d)", id, n.Nodes()))
	}
}

// latency returns the modeled end-to-end time for a message of the
// given payload size. mask is the XOR of the endpoints' addresses (the
// cube links crossed); extraHops accounts for peripheral links (an I/O
// or service node hangs one hop off its host compute node).
func (n *Network) latency(mask uint32, extraHops, bytes int) sim.Time {
	if bytes < 0 {
		panic("hypercube: negative message size")
	}
	packets := (bytes + n.cfg.PacketBytes - 1) / n.cfg.PacketBytes
	if packets == 0 {
		packets = 1 // even empty messages occupy one packet
	}
	software := n.cfg.Startup + sim.Time(packets)*n.cfg.PerPacket
	transfer := sim.Time(float64(bytes) / n.cfg.BytesPerSecond * float64(sim.Second))
	if n.deg != nil {
		// One HopCost per dimension crossed (the peripheral link is
		// class-less), then Message exactly once.
		t := software + sim.Time(extraHops)*n.cfg.PerHop
		for m := mask; m != 0; {
			d := bits.TrailingZeros32(m)
			t += n.deg.HopCost(d, 1, n.cfg.PerHop)
			m &^= 1 << d
		}
		return n.deg.Message(t, transfer)
	}
	hops := bits.OnesCount32(mask)
	return software + sim.Time(hops+extraHops)*n.cfg.PerHop + transfer
}

// Latency returns the modeled delivery time for a message between
// compute nodes src and dst.
func (n *Network) Latency(src, dst, bytes int) sim.Time {
	n.validate(src)
	n.validate(dst)
	return n.latency(uint32(src)^uint32(dst), 0, bytes)
}

// Send schedules deliver to run after the modeled latency of a
// bytes-sized message from src to dst.
func (n *Network) Send(src, dst, bytes int, deliver func()) {
	lat := n.Latency(src, dst, bytes)
	n.bytesSent += int64(bytes)
	n.k.After(lat, func() {
		n.delivered++
		deliver()
	})
}

// Attachment is a peripheral node (I/O node or service node) attached
// to one compute node by a dedicated link, as on the iPSC/860.
type Attachment struct {
	net  *Network
	host int // compute node the peripheral hangs off
}

// Attach returns an attachment at the given host compute node.
func (n *Network) Attach(host int) topo.Attachment {
	n.validate(host)
	return &Attachment{net: n, host: host}
}

// Host returns the compute node the peripheral is attached to.
func (a *Attachment) Host() int { return a.host }

// LatencyFrom returns the latency of a message from compute node src
// to this peripheral: the cube path to the host plus one peripheral hop.
func (a *Attachment) LatencyFrom(src, bytes int) sim.Time {
	a.net.validate(src)
	return a.net.latency(uint32(src)^uint32(a.host), 1, bytes)
}

// SendTo schedules delivery of a message from compute node src to the
// peripheral.
func (a *Attachment) SendTo(src, bytes int, deliver func()) {
	lat := a.LatencyFrom(src, bytes)
	a.net.bytesSent += int64(bytes)
	a.net.k.After(lat, func() {
		a.net.delivered++
		deliver()
	})
}

// SendFrom schedules delivery of a message from the peripheral back to
// compute node dst (same path in reverse).
func (a *Attachment) SendFrom(dst, bytes int, deliver func()) {
	a.SendTo(dst, bytes, deliver)
}
