package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/machine"
	"repro/internal/topo"
)

// FuzzScenarioParse is the decoder's robustness contract: for any
// byte input -- malformed JSON, unknown archetype/policy/preset
// names, absurd scales or counts, truncated or duplicated documents
// -- Parse must return either a validated spec or a descriptive
// error, and must never panic. The corpus scenarios seed the fuzzer
// so mutations start from realistic specs.
func FuzzScenarioParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) < 8 {
		f.Fatalf("scenario corpus has only %d specs", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hand-picked hostile seeds: the shapes most likely to slip past
	// validation into a panic downstream.
	f.Add([]byte(`{"version":1,"name":"x","scales":[1e308]}`))
	f.Add([]byte(`{"version":1,"name":"x","workloads":[{"base":"empty","jobs":{"cfd-sim":1}}]}`))
	f.Add([]byte(`{"version":1,"name":"x","cache":{"fig9":{"ioNodes":[1024],"buffers":[1]}}}`))
	f.Add([]byte(`{"version":1,"name":"x","replay":{"traces":["../traces/smoke.trc"]}}`))
	f.Add([]byte(`{"version":1,"name":"x","seeds":[1],"replay":{"traces":["a.trc"]}}`))
	f.Add([]byte(`{"version":1,"name":"x","faults":{"version":1,"ioNodes":[{"node":3,"startHours":0,"endHours":1,"slowdown":4}]}}`))
	f.Add([]byte(`{"version":1,"name":"x","faults":{"version":1,"ioNodes":[{"node":1,"startHours":1,"endHours":2,"outage":true}]}}`))
	f.Add([]byte(`{"version":1,"name":"x","faults":{"version":1,"disk":{"seekMultiplier":1.5,"transferMultiplier":1.5,"rampPerHour":0.25}}}`))
	f.Add([]byte(`{"version":1,"name":"x","faults":{"version":1,"network":{"latencyMultiplier":2,"bandwidthDivisor":2,"jitterMicros":100,"links":[{"dim":1,"latencyMultiplier":3}]}}}`))
	f.Add([]byte(`{"version":1,"name":"x","faults":{"version":1,"hotNode":{"node":0,"multiplier":2}}}`))
	f.Add([]byte(`{"version":1,"name":"x","faults":{"version":1,"ioNodes":[{"node":0,"startHours":1e308,"endHours":-1e308,"slowdown":1e308}]}}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":["mini"],"faults":{"version":1,"ioNodes":[{"node":9,"endHours":1,"slowdown":2}]}}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":[{"preset":"nas","topology":"mesh","disk":"nvme"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":[{"preset":"cluster2026"},{"preset":"mini","topology":"fattree"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":[{"preset":"cluster2026","topology":"hypercube","disk":"cdc760"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":[{"topology":"mesh"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":[{"preset":"nas","topology":"torus"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":[{"preset":"nas","disk":"tape"}]}`))
	f.Add([]byte(`{"version":1,"name":"x","machines":[{"preset":"mini","topology":"mesh","disk":"nvme","spare":1}]}`))
	f.Add([]byte(`{"version":1,"name":"x","replay":{"traces":["a.trc"]},"faults":{"version":1}}`))
	f.Add([]byte(`{"version":-1}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{}{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data) // must not panic
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error message")
			}
			return
		}
		if spec == nil {
			t.Fatal("nil spec with nil error")
		}
		// A successfully parsed spec must be internally coherent
		// enough to lower: non-empty axes within global bounds.
		if spec.Studies() < 1 || spec.Studies() > 1024 {
			t.Fatalf("validated spec lowers to %d studies", spec.Studies())
		}
		if len(spec.MachineList()) == 0 || len(spec.MixList()) == 0 {
			t.Fatal("validated spec has an empty axis")
		}
		for _, sc := range spec.ScaleList() {
			if !(sc >= MinScale && sc <= 1) {
				t.Fatalf("validated spec carries scale %v", sc)
			}
		}
		// A surviving faults config must be a real one: enabled (empty
		// blocks normalize to nil) and valid on every machine it will
		// be stamped onto.
		if fc := spec.FaultsConfig(); fc != nil {
			if !fc.Enabled() {
				t.Fatal("validated spec carries a disabled faults config")
			}
			for _, m := range spec.MachineList() {
				mc := m.Config
				if mc == nil { // default machine axis: NAS
					nas := machine.NASConfig(0)
					mc = &nas
				}
				if err := fc.Validate(mc.FS.IONodes, topo.LinkClasses(mc.Net)); err != nil {
					t.Fatalf("validated spec carries faults invalid on %s: %v", m.Name, err)
				}
			}
		}
		// Re-validating must be idempotent.
		if err := spec.Validate(); err != nil {
			t.Fatalf("revalidation failed: %v", err)
		}
	})
}
