package scenario

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/faults"
)

// minimal returns a valid minimal spec body.
func minimal() string {
	return `{"version": 1, "name": "t"}`
}

func TestParseMinimalDefaults(t *testing.T) {
	s, err := Parse([]byte(minimal()))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SeedList(); len(got) != 1 || got[0] != 42 {
		t.Fatalf("default seeds %v", got)
	}
	if got := s.ScaleList(); len(got) != 1 || got[0] != 0.01 {
		t.Fatalf("default scales %v", got)
	}
	if ms := s.MachineList(); len(ms) != 1 || ms[0].Name != "nas" || ms[0].Config != nil {
		t.Fatalf("default machines %+v", ms)
	}
	if mixes := s.MixList(); len(mixes) != 1 || mixes[0].Name != "calibrated" || mixes[0].Params != nil {
		t.Fatalf("default mixes %+v", mixes)
	}
	if s.CachePlan() != nil {
		t.Fatal("cache plan from empty spec")
	}
	if s.Studies() != 1 || s.MultiMix() || s.MultiMachine() {
		t.Fatalf("defaults wrong: studies=%d", s.Studies())
	}
}

func TestParseFullSpec(t *testing.T) {
	s, err := Parse([]byte(`{
		"version": 1, "name": "full", "description": "d",
		"seeds": [1, 2, 3], "scales": [0.01, 0.5], "workers": 4,
		"machines": ["NAS", "Mini"],
		"workloads": [
			{"name": "w", "base": "empty",
			 "jobs": {"checkpoint": 10, "CFD-Sim": 5},
			 "sharedMeshFiles": 7, "sharedFieldFiles": 9, "horizonHours": 24}
		],
		"cache": {
			"fig8": {"buffers": [1, 2]},
			"fig9": {"policies": ["slru", "clock"], "ioNodes": [4, 10], "buffers": [100, 200]},
			"combined": {"ioNodes": 5, "buffersPerIONode": 20, "policies": ["fifo"]}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Studies() != 3*2*1*2 {
		t.Fatalf("studies = %d", s.Studies())
	}
	ms := s.MachineList()
	if ms[0].Name != "nas" || ms[0].Config != nil {
		t.Fatalf("nas entry %+v", ms[0])
	}
	if ms[1].Name != "mini" || ms[1].Config == nil || ms[1].Config.ComputeNodes != 32 {
		t.Fatalf("mini entry %+v", ms[1])
	}
	mix := s.MixList()[0]
	if mix.Params == nil || mix.Params.CheckpointJobs != 10 || mix.Params.CFDSimJobs != 5 {
		t.Fatalf("mix params %+v", mix.Params)
	}
	if mix.Params.SharedMeshFiles != 7 || mix.Params.SharedFieldFiles != 9 || mix.Params.HorizonHours != 24 {
		t.Fatalf("mix pool/horizon overrides lost: %+v", mix.Params)
	}
	if mix.Params.SystemUtilJobs != 0 {
		t.Fatal("empty base kept calibrated job counts")
	}
	plan := s.CachePlan()
	if plan == nil || len(plan.Fig8Buffers) != 2 {
		t.Fatalf("fig8 plan %+v", plan)
	}
	f9 := plan.Fig9
	if f9 == nil || len(f9.Policies) != 2 || f9.Policies[0] != cachesim.SLRU || f9.Policies[1] != cachesim.Clock {
		t.Fatalf("fig9 plan %+v", f9)
	}
	cb := plan.Combined
	if cb == nil || cb.IONodes != 5 || cb.BuffersPerIONode != 20 || cb.Policies[0] != cachesim.FIFO {
		t.Fatalf("combined plan %+v", cb)
	}
}

func TestParseCacheDefaults(t *testing.T) {
	s, err := Parse([]byte(`{"version": 1, "name": "c",
		"cache": {"fig8": {}, "fig9": {}, "combined": {}}}`))
	if err != nil {
		t.Fatal(err)
	}
	plan := s.CachePlan()
	if want := []int{1, 10, 50}; len(plan.Fig8Buffers) != 3 || plan.Fig8Buffers[0] != want[0] {
		t.Fatalf("fig8 defaults %v", plan.Fig8Buffers)
	}
	if plan.Fig9.Policies[0] != cachesim.LRU || plan.Fig9.Policies[1] != cachesim.FIFO {
		t.Fatalf("fig9 policy defaults %v", plan.Fig9.Policies)
	}
	if plan.Fig9.IONodes[0] != 10 || len(plan.Fig9.Buffers) != len(DefaultFig9Buffers()) {
		t.Fatalf("fig9 grid defaults %+v", plan.Fig9)
	}
	if plan.Combined.IONodes != 10 || plan.Combined.BuffersPerIONode != 50 ||
		plan.Combined.Policies[0] != cachesim.LRU {
		t.Fatalf("combined defaults %+v", plan.Combined)
	}
}

// TestParseErrors table-drives the validation surface: every entry
// must fail with a message mentioning the offending part.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"empty", ``, "decoding"},
		{"not-json", `{{{`, "decoding"},
		{"trailing", `{"version":1,"name":"t"} {"x":1}`, "trailing data"},
		{"unknown-field", `{"version":1,"name":"t","colour":"red"}`, "colour"},
		{"no-version", `{"name":"t"}`, "version"},
		{"future-version", `{"version":2,"name":"t"}`, "version 2"},
		{"no-name", `{"version":1}`, "name"},
		{"bad-name", `{"version":1,"name":"bad name!"}`, "name"},
		{"zero-scale", `{"version":1,"name":"t","scales":[0]}`, "scale"},
		{"sub-minscale", `{"version":1,"name":"t","scales":[0.001]}`, "scale"},
		{"huge-pool", `{"version":1,"name":"t","workloads":[{"sharedMeshFiles":2000000000}]}`, "pool size"},
		{"huge-scale", `{"version":1,"name":"t","scales":[1000]}`, "scale"},
		{"negative-scale", `{"version":1,"name":"t","scales":[-0.5]}`, "scale"},
		{"negative-workers", `{"version":1,"name":"t","workers":-1}`, "workers"},
		{"huge-workers", `{"version":1,"name":"t","workers":100000}`, "workers"},
		{"unknown-machine", `{"version":1,"name":"t","machines":["cm5"]}`, "preset"},
		{"unknown-base", `{"version":1,"name":"t","workloads":[{"base":"banana"}]}`, "base"},
		{"unknown-archetype", `{"version":1,"name":"t","workloads":[{"jobs":{"matmul":1}}]}`, "archetype"},
		{"negative-jobs", `{"version":1,"name":"t","workloads":[{"jobs":{"cfd-sim":-1}}]}`, "out of range"},
		{"absurd-jobs", `{"version":1,"name":"t","workloads":[{"jobs":{"cfd-sim":99999999}}]}`, "out of range"},
		{"empty-mix", `{"version":1,"name":"t","workloads":[{"base":"empty"}]}`, "no jobs"},
		{"dup-mix", `{"version":1,"name":"t","workloads":[{"name":"a"},{"name":"a"}]}`, "duplicate"},
		{"bad-mix-name", `{"version":1,"name":"t","workloads":[{"name":"a b"}]}`, "mix name"},
		{"cfd-needs-pools", `{"version":1,"name":"t","workloads":[{"base":"empty","jobs":{"cfd-sim":5},"sharedFieldFiles":2}]}`, "cfd-sim"},
		{"negative-horizon", `{"version":1,"name":"t","workloads":[{"horizonHours":-2}]}`, "horizonHours"},
		{"empty-cache", `{"version":1,"name":"t","cache":{}}`, "no experiment"},
		{"bad-policy", `{"version":1,"name":"t","cache":{"fig9":{"policies":["mru"]}}}`, "policy"},
		{"zero-buffer", `{"version":1,"name":"t","cache":{"fig8":{"buffers":[0]}}}`, "out of range"},
		{"absurd-buffer", `{"version":1,"name":"t","cache":{"fig9":{"buffers":[999999999]}}}`, "out of range"},
		{"zero-ionodes", `{"version":1,"name":"t","cache":{"fig9":{"ioNodes":[0]}}}`, "ioNodes"},
		{"combined-bad", `{"version":1,"name":"t","cache":{"combined":{"ioNodes":-4}}}`, "ioNodes"},
		{"seed-not-number", `{"version":1,"name":"t","seeds":["a"]}`, "decoding"},
		{"negative-seed", `{"version":1,"name":"t","seeds":[-1]}`, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseTooManyStudies: each axis within bounds, product over.
func TestParseTooManyStudies(t *testing.T) {
	var seeds []string
	for i := 0; i < 200; i++ {
		seeds = append(seeds, "1")
	}
	body := `{"version":1,"name":"t","seeds":[` + strings.Join(seeds, ",") + `],
		"scales":[0.01,0.02,0.03,0.04,0.05,0.06],
		"workloads":[{"name":"a"},{"name":"b"}]}`
	_, err := Parse([]byte(body))
	if err == nil || !strings.Contains(err.Error(), "studies") {
		t.Fatalf("err = %v", err)
	}
}

// TestValidateHandBuiltSpec: Validate works without Parse (the path
// core.RunScenario takes for specs built in Go).
func TestValidateHandBuiltSpec(t *testing.T) {
	s := &Spec{Version: 1, Name: "hand", Machines: []MachineAxis{{Preset: "mini"}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MachineList()[0].Config == nil {
		t.Fatal("resolution skipped")
	}
	s2 := &Spec{Version: 1, Name: "hand", Machines: []MachineAxis{{Preset: "unknown"}}}
	if err := s2.Validate(); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestValidateRejectsNonFiniteNumbers: NaN fails every ordered
// comparison, so range checks written as `v < lo || v > hi` wave it
// through. JSON cannot encode NaN, but a hand-built Spec can carry
// one; Validate must reject it on every float field.
func TestValidateRejectsNonFiniteNumbers(t *testing.T) {
	nan := math.NaN()
	s := &Spec{Version: 1, Name: "nan", Scales: []float64{nan}}
	if err := s.Validate(); err == nil {
		t.Fatal("NaN scale accepted")
	}
	s = &Spec{Version: 1, Name: "nan", Scales: []float64{math.Inf(1)}}
	if err := s.Validate(); err == nil {
		t.Fatal("+Inf scale accepted")
	}
	s = &Spec{Version: 1, Name: "nan",
		Workloads: []Mix{{Name: "m", HorizonHours: nan}}}
	if err := s.Validate(); err == nil {
		t.Fatal("NaN horizonHours accepted")
	}
	s = &Spec{Version: 1, Name: "nan",
		Workloads: []Mix{{Name: "m", HorizonHours: math.Inf(1)}}}
	if err := s.Validate(); err == nil {
		t.Fatal("+Inf horizonHours accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("does/not/exist.json"); err == nil {
		t.Fatal("missing file loaded")
	}
	// A real corpus file loads and carries the path in errors.
	if _, err := Load("../../testdata/scenarios/fig8.json"); err != nil {
		t.Fatal(err)
	}
}

// TestParseReplay: the replay source validates, counts one study per
// trace, and resolves relative paths against the spec directory when
// loaded from disk.
func TestParseReplay(t *testing.T) {
	s, err := Parse([]byte(`{"version":1,"name":"r",
		"replay":{"traces":["a.trc","sub/b.trc"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsReplay() || s.Studies() != 2 {
		t.Fatalf("replay spec lowered wrong: replay=%v studies=%d", s.IsReplay(), s.Studies())
	}
	// Parsed from bytes: paths pass through unchanged.
	if got := s.ReplayTraces(); got[0] != "a.trc" || got[1] != "sub/b.trc" {
		t.Fatalf("paths rewritten without a base dir: %v", got)
	}

	// Loaded from disk: relative paths resolve against the spec dir.
	loaded, err := Load("../../testdata/scenarios/replay-smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join("..", "..", "testdata", "scenarios", "..", "traces", "smoke.trc")
	if got := loaded.ReplayTraces(); len(got) != 1 || got[0] != filepath.Clean(want) {
		t.Fatalf("replay path = %v, want %v", got, filepath.Clean(want))
	}
}

// TestParseReplayRejections: replay excludes the simulation axes and
// bounds its trace list.
func TestParseReplayRejections(t *testing.T) {
	cases := map[string]string{
		"axes":    `{"version":1,"name":"r","seeds":[1],"replay":{"traces":["a.trc"]}}`,
		"scales":  `{"version":1,"name":"r","scales":[0.01],"replay":{"traces":["a.trc"]}}`,
		"mixes":   `{"version":1,"name":"r","workloads":[{"name":"m"}],"replay":{"traces":["a.trc"]}}`,
		"machine": `{"version":1,"name":"r","machines":["nas"],"replay":{"traces":["a.trc"]}}`,
		"empty":   `{"version":1,"name":"r","replay":{"traces":[]}}`,
		"noList":  `{"version":1,"name":"r","replay":{}}`,
		"badPath": `{"version":1,"name":"r","replay":{"traces":[""]}}`,
	}
	for name, body := range cases {
		if _, err := Parse([]byte(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
	many := make([]string, 33)
	for i := range many {
		many[i] = `"t.trc"`
	}
	body := `{"version":1,"name":"r","replay":{"traces":[` + strings.Join(many, ",") + `]}}`
	if _, err := Parse([]byte(body)); err == nil {
		t.Error("33 traces accepted (max 32)")
	}
}

// TestParseFaults: the faults block resolves, validates against every
// machine on the axis, rejects malformed fields by name, and an empty
// block normalizes to "no faults".
func TestParseFaults(t *testing.T) {
	good := `{"version":1,"name":"f","faults":{"version":1,
		"ioNodes":[{"node":3,"startHours":0,"endHours":1,"slowdown":4}],
		"disk":{"seekMultiplier":1.5},
		"network":{"jitterMicros":100,"links":[{"dim":2,"latencyMultiplier":2}]},
		"hotNode":{"node":0,"multiplier":2}}}`
	spec, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	fc := spec.FaultsConfig()
	if fc == nil || !fc.Enabled() {
		t.Fatalf("faults config = %+v", fc)
	}
	if len(fc.Windows) != 1 || fc.Windows[0].Slowdown != 4 {
		t.Fatalf("windows = %+v", fc.Windows)
	}

	empty := `{"version":1,"name":"f","faults":{"version":1}}`
	spec, err = Parse([]byte(empty))
	if err != nil {
		t.Fatal(err)
	}
	if spec.FaultsConfig() != nil {
		t.Fatal("empty faults block resolved to a non-nil config")
	}

	cases := []struct {
		name, body, want string
	}{
		{"no-version", `{"version":1,"name":"f","faults":{}}`, "version"},
		{"future-version", `{"version":1,"name":"f","faults":{"version":2}}`, "version 2"},
		{"unknown-field", `{"version":1,"name":"f","faults":{"version":1,"cosmic":true}}`, "cosmic"},
		{"node-range", `{"version":1,"name":"f","faults":{"version":1,"ioNodes":[{"node":99,"endHours":1,"slowdown":2}]}}`, "node"},
		{"inverted-window", `{"version":1,"name":"f","faults":{"version":1,"ioNodes":[{"node":0,"startHours":2,"endHours":1,"slowdown":2}]}}`, "endHours"},
		{"negative-start", `{"version":1,"name":"f","faults":{"version":1,"ioNodes":[{"node":0,"startHours":-1,"endHours":1,"slowdown":2}]}}`, "startHours"},
		{"sub-unit-slowdown", `{"version":1,"name":"f","faults":{"version":1,"ioNodes":[{"node":0,"endHours":1,"slowdown":0.5}]}}`, "slowdown"},
		{"outage-and-slowdown", `{"version":1,"name":"f","faults":{"version":1,"ioNodes":[{"node":0,"endHours":1,"outage":true,"slowdown":2}]}}`, "outage"},
		{"negative-seek", `{"version":1,"name":"f","faults":{"version":1,"disk":{"seekMultiplier":-1}}}`, "seekMultiplier"},
		{"negative-ramp", `{"version":1,"name":"f","faults":{"version":1,"disk":{"rampPerHour":-0.5}}}`, "rampPerHour"},
		{"huge-jitter", `{"version":1,"name":"f","faults":{"version":1,"network":{"jitterMicros":1e12}}}`, "jitterMicros"},
		{"link-dim-range", `{"version":1,"name":"f","faults":{"version":1,"network":{"links":[{"dim":40,"latencyMultiplier":2}]}}}`, "dim"},
		{"dup-link-dim", `{"version":1,"name":"f","faults":{"version":1,"network":{"links":[{"dim":1,"latencyMultiplier":2},{"dim":1,"latencyMultiplier":3}]}}}`, "repeats dim"},
		{"hot-node-range", `{"version":1,"name":"f","faults":{"version":1,"hotNode":{"node":-1,"multiplier":2}}}`, "hotNode"},
		{"replay-faults", `{"version":1,"name":"f","replay":{"traces":["a.trc"]},"faults":{"version":1,"hotNode":{"node":0,"multiplier":2}}}`, "replay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Shape validation runs against every machine on the axis: node 5
	// exists on nas (10 I/O nodes) but not on mini (4).
	multi := `{"version":1,"name":"f","machines":["nas","mini"],
		"faults":{"version":1,"ioNodes":[{"node":5,"endHours":1,"slowdown":2}]}}`
	if _, err := Parse([]byte(multi)); err == nil || !strings.Contains(err.Error(), "mini") {
		t.Fatalf("node 5 on mini accepted: %v", err)
	}

	// A hand-built spec can carry NaN (JSON cannot); Validate must
	// reject it on the fault fields too.
	nan := &Spec{Version: 1, Name: "f", Faults: &faults.Spec{
		Version: 1, IONodes: []faults.WindowSpec{{Node: 0, EndHours: 1, Slowdown: math.NaN()}}}}
	if err := nan.Validate(); err == nil {
		t.Fatal("NaN slowdown accepted")
	}
}

// TestMachineAxisObjectForm pins the two machines-axis entry forms:
// bare strings resolve exactly as before the hardware registries
// existed, objects refine a preset through them, and re-encoding
// preserves the form each entry was written in.
func TestMachineAxisObjectForm(t *testing.T) {
	s, err := Parse([]byte(`{"version":1,"name":"obj","machines":[
		"nas",
		{"preset":"nas","topology":"mesh","disk":"nvme"},
		{"preset":"cluster2026"},
		{"preset":"cluster2026","topology":"hypercube","disk":"cdc760"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	ms := s.MachineList()
	if len(ms) != 4 {
		t.Fatalf("machine axis has %d entries", len(ms))
	}
	if ms[0].Name != "nas" || ms[0].Config != nil {
		t.Fatalf("bare nas resolved to %+v", ms[0])
	}
	if ms[1].Name != "nas+mesh+nvme" || ms[1].Config == nil {
		t.Fatalf("object entry resolved to %+v", ms[1])
	}
	if got := ms[1].Config.Net.Kind; got != "mesh" {
		t.Fatalf("topology override: Net.Kind = %q", got)
	}
	if got := ms[1].Config.FS.IONode.Disk.Kind; got != "flash" {
		t.Fatalf("disk override: Disk.Kind = %q", got)
	}
	if ms[1].Config.ComputeNodes != 128 {
		t.Fatalf("override changed the preset shape: %d nodes", ms[1].Config.ComputeNodes)
	}
	if ms[2].Name != "cluster2026" || ms[2].Config == nil {
		t.Fatalf("object preset reference resolved to %+v", ms[2])
	}
	// Putting a non-cube preset back on a hypercube derives Dim from
	// the node count.
	if ms[3].Name != "cluster2026+hypercube+cdc760" {
		t.Fatalf("name composition: %q", ms[3].Name)
	}
	if dim := ms[3].Config.Net.Dim; 1<<dim != ms[3].Config.ComputeNodes {
		t.Fatalf("hypercube override: dim %d for %d nodes", dim, ms[3].Config.ComputeNodes)
	}
	if k := ms[3].Config.FS.IONode.Disk.Kind; k != "" {
		t.Fatalf("cdc760 override should restore the rotating drive, got kind %q", k)
	}

	out, err := json.Marshal(s.Machines)
	if err != nil {
		t.Fatal(err)
	}
	want := `["nas",{"preset":"nas","topology":"mesh","disk":"nvme"},"cluster2026",` +
		`{"preset":"cluster2026","topology":"hypercube","disk":"cdc760"}]`
	if string(out) != want {
		t.Fatalf("re-encoded axis:\n got %s\nwant %s", out, want)
	}

	for _, bad := range []string{
		`{"version":1,"name":"x","machines":[{"topology":"mesh"}]}`,
		`{"version":1,"name":"x","machines":[{"preset":"nas","topology":"torus"}]}`,
		`{"version":1,"name":"x","machines":[{"preset":"nas","disk":"tape"}]}`,
		`{"version":1,"name":"x","machines":[{"preset":"nas","spare":1}]}`,
		`{"version":1,"name":"x","machines":[7]}`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Fatalf("accepted %s", bad)
		}
	}
}
