// Package scenario is the declarative experiment layer: a versioned
// JSON spec that composes machine presets, workload mixes (by
// archetype registry name), cache experiments (by policy registry
// name), seeds, scales, and sweep axes into one named, runnable,
// reproducible experiment. The CHARISMA paper is a fixed study of one
// machine and one job mix; the scenario engine turns every axis the
// paper held constant into data, so a new experiment is a JSON file
// in testdata/scenarios/ instead of a hand-written harness in Go.
//
// A spec is parsed and validated here, then lowered onto the sweep
// engine by core.RunScenario. Validation is strict and total: any
// malformed, unknown, or absurd input yields a descriptive error and
// never a panic (FuzzScenarioParse pins this), because scenario files
// are the system's user-facing input surface.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/topo"
	"repro/internal/workload"
)

// Version is the newest spec version this package understands.
const Version = 1

// MinScale is the smallest scale a spec may declare. It mirrors
// core.MinScale (this package cannot import core): anything smaller
// would be silently clamped there, collapsing distinct declared
// scale points into duplicate studies, so validation rejects it
// instead. A core-side test pins the two constants equal.
const MinScale = 0.01

// Hard limits on spec shape: generous for real experiments,
// tight enough that a hostile or fuzzed spec cannot ask for
// unbounded work during validation or lowering.
const (
	maxSeeds       = 256
	maxScales      = 32
	maxMixes       = 16
	maxMachines    = 8
	maxStudies     = 1024 // seeds x scales x mixes x machines
	maxWorkers     = 256
	maxJobCount    = 1_000_000 // per archetype, full-scale
	maxPoolFiles   = 100_000   // shared input pool size, full-scale
	maxBufferList  = 32
	maxBuffers     = 10_000_000 // per cache-simulation point
	maxIONodes     = 1024
	maxNameLen     = 64
	maxDescription = 2048
	maxHorizonHrs  = 10_000

	maxReplayTraces = 32
	maxTracePathLen = 4096
)

// Spec is one declarative scenario, as decoded from JSON. Call Parse
// or Load to obtain a validated Spec; a hand-built Spec must pass
// Validate before use.
type Spec struct {
	// Version selects the spec schema; must equal Version (1).
	Version int `json:"version"`
	// Name identifies the scenario ([a-zA-Z0-9._-], required).
	Name string `json:"name"`
	// Description is free-form documentation, echoed in reports.
	Description string `json:"description,omitempty"`

	// Seeds and Scales are sweep axes; empty means {42} and {0.01}.
	Seeds  []uint64  `json:"seeds,omitempty"`
	Scales []float64 `json:"scales,omitempty"`

	// Workers is the sweep worker-goroutine count (0 = GOMAXPROCS).
	// It never affects output, only wall time.
	Workers int `json:"workers,omitempty"`

	// Machines is the machine axis. Each entry is either a bare preset
	// name ("mini", see machine.PresetNames) or an object refining a
	// preset with hardware-registry overrides:
	//
	//	{"preset": "nas", "topology": "mesh", "disk": "nvme"}
	//
	// (topology from topo.Names, disk from disk.DriveNames; either may
	// be omitted to keep the preset's hardware). Empty means the NAS
	// default and contributes no label component.
	Machines []MachineAxis `json:"machines,omitempty"`

	// Workloads is the mix axis; empty means the calibrated default
	// mix and contributes no label component.
	Workloads []Mix `json:"workloads,omitempty"`

	// Replay switches the scenario's workload source from fresh
	// simulations to recorded trace files: each named .trc becomes
	// one study, analyzed and fed to the cache experiments exactly
	// like a simulated study's event stream. A replay scenario
	// declares no seed/scale/workload/machine axes.
	Replay *ReplaySpec `json:"replay,omitempty"`

	// Faults injects deterministic hardware degradation into every
	// study of the scenario (see internal/faults for the schema).
	// Absent means a healthy machine; replay scenarios take no faults
	// block (a recorded trace's timing is already fixed).
	Faults *faults.Spec `json:"faults,omitempty"`

	// Cache selects trace-driven cache experiments to run on every
	// study's event stream.
	Cache *CacheSpec `json:"cache,omitempty"`

	// Resolved forms, filled by Validate.
	machines []ResolvedMachine
	mixes    []ResolvedMix
	cache    *ResolvedCache
	faults   *faults.Config

	// baseDir resolves relative replay paths; set by Load to the spec
	// file's directory, empty for specs parsed from bytes (paths then
	// resolve against the working directory).
	baseDir string
}

// ReplaySpec names the recorded trace files a replay scenario runs
// over.
type ReplaySpec struct {
	// Traces lists .trc files (written by tracegen, charisma -trace,
	// or core.RunStudyStreaming). Relative paths resolve against the
	// spec file's directory when the spec was loaded from disk.
	Traces []string `json:"traces"`
}

// Mix describes one workload mixture by archetype registry name.
type Mix struct {
	// Name labels the mix in reports; default "mix<index>".
	Name string `json:"name,omitempty"`
	// Base is the starting point: "calibrated" (default) is the
	// paper's full job mix, "empty" zeroes every archetype count
	// (keeping the shared input pools).
	Base string `json:"base,omitempty"`
	// Jobs overrides full-scale job counts per archetype name.
	Jobs map[string]int `json:"jobs,omitempty"`
	// SharedMeshFiles / SharedFieldFiles resize the preloaded shared
	// input pools (0 keeps the base size).
	SharedMeshFiles  int `json:"sharedMeshFiles,omitempty"`
	SharedFieldFiles int `json:"sharedFieldFiles,omitempty"`
	// HorizonHours overrides the full-scale study duration (0 keeps
	// the base's 156 hours).
	HorizonHours float64 `json:"horizonHours,omitempty"`
}

// CacheSpec selects the trace-driven cache experiments.
type CacheSpec struct {
	Fig8     *Fig8Spec     `json:"fig8,omitempty"`
	Fig9     *Fig9Spec     `json:"fig9,omitempty"`
	Combined *CombinedSpec `json:"combined,omitempty"`
}

// Fig8Spec configures the compute-node cache experiment.
type Fig8Spec struct {
	// Buffers lists compute-node cache sizes; empty means the paper's
	// {1, 10, 50}.
	Buffers []int `json:"buffers,omitempty"`
}

// Fig9Spec configures the I/O-node cache sweep.
type Fig9Spec struct {
	// Policies names replacement policies (cachesim.PolicyNames);
	// empty means the paper's {LRU, FIFO}.
	Policies []string `json:"policies,omitempty"`
	// IONodes lists I/O-node counts; empty means {10}.
	IONodes []int `json:"ioNodes,omitempty"`
	// Buffers lists total buffer counts; empty means the paper's
	// 0-25000 x-axis ladder.
	Buffers []int `json:"buffers,omitempty"`
}

// CombinedSpec configures the Section 4.8 combined experiment.
type CombinedSpec struct {
	// IONodes and BuffersPerIONode size the I/O-node layer; zero
	// means the paper's 10 nodes x 50 buffers.
	IONodes          int `json:"ioNodes,omitempty"`
	BuffersPerIONode int `json:"buffersPerIONode,omitempty"`
	// Policies names I/O-node replacement policies; empty means {LRU}.
	Policies []string `json:"policies,omitempty"`
}

// MachineAxis is one machines-axis entry. In JSON it decodes from
// either a bare preset-name string or an object with registry
// overrides; the string form "x" is equivalent to {"preset": "x"}
// and keeps the run-store fingerprint it always had.
type MachineAxis struct {
	Preset   string `json:"preset"`
	Topology string `json:"topology,omitempty"`
	Disk     string `json:"disk,omitempty"`

	// bare records that the entry decoded from the string form, so it
	// re-encodes the same way.
	bare bool
}

// UnmarshalJSON accepts both entry forms; the object form rejects
// unknown fields like the rest of the spec schema.
func (a *MachineAxis) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '"' {
		var s string
		if err := json.Unmarshal(trimmed, &s); err != nil {
			return err
		}
		*a = MachineAxis{Preset: s, bare: true}
		return nil
	}
	type bareAxis MachineAxis // drops the methods, keeps the tags
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var tmp bareAxis
	if err := dec.Decode(&tmp); err != nil {
		return err
	}
	*a = MachineAxis(tmp)
	return nil
}

// MarshalJSON re-encodes the entry in the form it was written in.
func (a MachineAxis) MarshalJSON() ([]byte, error) {
	if a.bare || (a.Topology == "" && a.Disk == "") {
		return json.Marshal(a.Preset)
	}
	type bareAxis MachineAxis
	return json.Marshal(bareAxis(a))
}

// resolve validates one machine axis entry against the preset,
// topology, and disk registries and builds its configuration.
func (a MachineAxis) resolve(scenarioName string) (ResolvedMachine, error) {
	if a.Topology == "" && a.Disk == "" {
		// A plain preset reference follows exactly the pre-registry
		// path: "nas" stays the nil-config default, everything else
		// resolves through the preset registry. Fingerprints of these
		// studies must never move.
		if strings.EqualFold(a.Preset, "nas") {
			return ResolvedMachine{Name: "nas"}, nil
		}
		cfg, err := machine.Preset(a.Preset)
		if err != nil {
			return ResolvedMachine{}, fmt.Errorf("scenario %s: %w", scenarioName, err)
		}
		return ResolvedMachine{Name: strings.ToLower(a.Preset), Config: &cfg}, nil
	}
	cfg, err := machine.Preset(a.Preset)
	if err != nil {
		return ResolvedMachine{}, fmt.Errorf("scenario %s: %w", scenarioName, err)
	}
	name := strings.ToLower(a.Preset)
	if a.Topology != "" {
		kind, err := topo.Resolve(a.Topology)
		if err != nil {
			return ResolvedMachine{}, fmt.Errorf("scenario %s, machine %s: %w", scenarioName, name, err)
		}
		cfg.Net.Kind = kind
		if kind == "hypercube" {
			// The hypercube takes its shape from Net.Dim; derive it
			// from the preset's node count so any preset can be put
			// back on a cube.
			dim := 0
			for 1<<dim < cfg.ComputeNodes {
				dim++
			}
			cfg.Net.Dim = dim
		}
		name += "+" + kind
	}
	if a.Disk != "" {
		dcfg, err := disk.Drive(a.Disk)
		if err != nil {
			return ResolvedMachine{}, fmt.Errorf("scenario %s, machine %s: %w", scenarioName, name, err)
		}
		cfg.FS.IONode.Disk = dcfg
		name += "+" + strings.ToLower(a.Disk)
	}
	return ResolvedMachine{Name: name, Config: &cfg}, nil
}

// ResolvedMachine is one validated machine axis entry.
type ResolvedMachine struct {
	Name string
	// Config is nil for the NAS default (core then follows exactly
	// the same path as a plain study, including the large-scale disk
	// capacity adjustment).
	Config *machine.Config
}

// ResolvedMix is one validated workload axis entry.
type ResolvedMix struct {
	Name string
	// Params is nil for the calibrated default mix.
	Params *workload.Params
}

// ResolvedFig9 is the validated I/O-node sweep grid.
type ResolvedFig9 struct {
	Policies []cachesim.Policy
	IONodes  []int
	Buffers  []int
}

// ResolvedCombined is the validated combined experiment.
type ResolvedCombined struct {
	Policies         []cachesim.Policy
	IONodes          int
	BuffersPerIONode int
}

// ResolvedCache is the validated cache experiment plan.
type ResolvedCache struct {
	Fig8Buffers []int // nil when fig8 is off
	Fig9        *ResolvedFig9
	Combined    *ResolvedCombined
}

// DefaultFig9Buffers is the paper's Figure 9 x-axis ladder, the
// default when a fig9 experiment lists no buffer counts.
func DefaultFig9Buffers() []int {
	return []int{125, 250, 500, 1000, 2000, 4000, 8000, 12000, 16000, 20000, 25000}
}

// Parse decodes and validates a scenario spec. Unknown fields,
// unknown registry names, and out-of-range values are errors; Parse
// never panics on any input.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: decoding spec: %w", err)
	}
	// A spec is one JSON object, nothing after it.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	s.baseDir = filepath.Dir(path)
	return s, nil
}

// validName reports whether s is a plausible identifier.
func validName(s string) bool {
	if s == "" || len(s) > maxNameLen {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the spec against the schema and resolves every
// registry name; after a nil return the resolved accessors are
// populated. All errors name the offending field and value.
func (s *Spec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("scenario: unsupported spec version %d (this build understands version %d)", s.Version, Version)
	}
	if !validName(s.Name) {
		return fmt.Errorf("scenario: invalid name %q (need 1-%d chars of [a-zA-Z0-9._-])", s.Name, maxNameLen)
	}
	if len(s.Description) > maxDescription {
		return fmt.Errorf("scenario %s: description too long (%d bytes, max %d)", s.Name, len(s.Description), maxDescription)
	}
	if len(s.Seeds) > maxSeeds {
		return fmt.Errorf("scenario %s: %d seeds (max %d)", s.Name, len(s.Seeds), maxSeeds)
	}
	if len(s.Scales) > maxScales {
		return fmt.Errorf("scenario %s: %d scales (max %d)", s.Name, len(s.Scales), maxScales)
	}
	for _, sc := range s.Scales {
		if !(sc >= MinScale && sc <= 1) { // the negated form also rejects NaN
			return fmt.Errorf("scenario %s: scale %v out of range [%g, 1]", s.Name, sc, MinScale)
		}
	}
	if s.Workers < 0 || s.Workers > maxWorkers {
		return fmt.Errorf("scenario %s: workers %d out of range [0, %d]", s.Name, s.Workers, maxWorkers)
	}

	// Replay source: recorded traces replace the simulation axes.
	if s.Replay != nil {
		if len(s.Seeds) > 0 || len(s.Scales) > 0 || len(s.Workloads) > 0 || len(s.Machines) > 0 {
			return fmt.Errorf("scenario %s: replay scenarios take no seeds/scales/workloads/machines axes (the recorded traces fix them)", s.Name)
		}
		if s.Faults != nil {
			return fmt.Errorf("scenario %s: replay scenarios take no faults block (a recorded trace's timing is already fixed)", s.Name)
		}
		if len(s.Replay.Traces) == 0 {
			return fmt.Errorf("scenario %s: replay lists no trace files", s.Name)
		}
		if len(s.Replay.Traces) > maxReplayTraces {
			return fmt.Errorf("scenario %s: replay lists %d traces (max %d)", s.Name, len(s.Replay.Traces), maxReplayTraces)
		}
		for i, p := range s.Replay.Traces {
			if p == "" || len(p) > maxTracePathLen {
				return fmt.Errorf("scenario %s: replay trace %d has an empty or oversized path", s.Name, i)
			}
		}
	}

	// Machine axis.
	if len(s.Machines) > maxMachines {
		return fmt.Errorf("scenario %s: %d machines (max %d)", s.Name, len(s.Machines), maxMachines)
	}
	s.machines = nil
	for i := range s.Machines {
		rm, err := s.Machines[i].resolve(s.Name)
		if err != nil {
			return err
		}
		s.machines = append(s.machines, rm)
	}
	if len(s.machines) == 0 {
		s.machines = []ResolvedMachine{{Name: "nas"}}
	}

	// Workload axis.
	if len(s.Workloads) > maxMixes {
		return fmt.Errorf("scenario %s: %d workload mixes (max %d)", s.Name, len(s.Workloads), maxMixes)
	}
	s.mixes = nil
	for i := range s.Workloads {
		rm, err := s.resolveMix(i)
		if err != nil {
			return err
		}
		s.mixes = append(s.mixes, rm)
	}
	if len(s.mixes) == 0 {
		s.mixes = []ResolvedMix{{Name: "calibrated"}}
	}
	seen := make(map[string]bool, len(s.mixes))
	for _, m := range s.mixes {
		if seen[m.Name] {
			return fmt.Errorf("scenario %s: duplicate workload mix name %q", s.Name, m.Name)
		}
		seen[m.Name] = true
	}

	// Total sweep size.
	seeds, scales := len(s.Seeds), len(s.Scales)
	if seeds == 0 {
		seeds = 1
	}
	if scales == 0 {
		scales = 1
	}
	if n := seeds * scales * len(s.mixes) * len(s.machines); n > maxStudies {
		return fmt.Errorf("scenario %s: %d studies (seeds x scales x workloads x machines, max %d)", s.Name, n, maxStudies)
	}

	// Faults block: resolved once, then checked against the shape of
	// every machine on the axis (a fault naming I/O node 7 cannot run
	// on a 4-I/O-node preset).
	s.faults = nil
	if s.Faults != nil {
		fc, err := s.Faults.Resolve()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
		for _, rm := range s.machines {
			mc := rm.Config
			if mc == nil {
				nas := machine.NASConfig(0)
				mc = &nas
			}
			if err := fc.Validate(mc.FS.IONodes, topo.LinkClasses(mc.Net)); err != nil {
				return fmt.Errorf("scenario %s (machine %s): %w", s.Name, rm.Name, err)
			}
		}
		// An empty faults block injects nothing: resolve it to "no
		// faults" so it is indistinguishable from an absent block all
		// the way down (including run-store fingerprints).
		if fc.Enabled() {
			s.faults = &fc
		}
	}

	// Cache experiments.
	s.cache = nil
	if s.Cache != nil {
		rc, err := s.resolveCache()
		if err != nil {
			return err
		}
		s.cache = rc
	}
	return nil
}

// resolveMix validates mix i and builds its workload parameters.
func (s *Spec) resolveMix(i int) (ResolvedMix, error) {
	m := &s.Workloads[i]
	name := m.Name
	if name == "" {
		name = fmt.Sprintf("mix%d", i)
	}
	if !validName(name) {
		return ResolvedMix{}, fmt.Errorf("scenario %s: invalid mix name %q", s.Name, m.Name)
	}
	var p workload.Params
	switch strings.ToLower(m.Base) {
	case "", "calibrated":
		p = workload.Default(0) // seed stamped per study by the core
	case "empty":
		p = workload.Empty(0)
	default:
		return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: unknown base %q (want \"calibrated\" or \"empty\")", s.Name, name, m.Base)
	}
	for arch, n := range m.Jobs {
		if n < 0 || n > maxJobCount {
			return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: job count %d for %q out of range [0, %d]", s.Name, name, n, arch, maxJobCount)
		}
		if err := workload.SetJobs(&p, arch, n); err != nil {
			return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: %w", s.Name, name, err)
		}
	}
	if m.SharedMeshFiles < 0 || m.SharedMeshFiles > maxPoolFiles ||
		m.SharedFieldFiles < 0 || m.SharedFieldFiles > maxPoolFiles {
		return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: shared pool size out of range [0, %d]", s.Name, name, maxPoolFiles)
	}
	if m.SharedMeshFiles > 0 {
		p.SharedMeshFiles = m.SharedMeshFiles
	}
	if m.SharedFieldFiles > 0 {
		p.SharedFieldFiles = m.SharedFieldFiles
	}
	// The negated form also rejects NaN, which passes both ordered
	// comparisons (a hand-built Spec can carry one; JSON cannot).
	if !(m.HorizonHours >= 0 && m.HorizonHours <= maxHorizonHrs) {
		return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: horizonHours %v out of range (0, %d]", s.Name, name, m.HorizonHours, maxHorizonHrs)
	}
	if m.HorizonHours > 0 {
		p.HorizonHours = m.HorizonHours
	}
	if workload.TotalJobs(&p) == 0 {
		return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: no jobs in the mix", s.Name, name)
	}
	// Archetypes that draw from the shared input pools need them
	// populated, or the generator would panic mid-study.
	need := func(arch string) int {
		n, err := workload.Jobs(&p, arch)
		if err != nil {
			panic(err) // registry names, cannot fail
		}
		return n
	}
	if need("cfd-sim") > 0 && (p.SharedMeshFiles < 1 || p.SharedFieldFiles < 4) {
		return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: cfd-sim jobs need sharedMeshFiles >= 1 and sharedFieldFiles >= 4 (got %d, %d)", s.Name, name, p.SharedMeshFiles, p.SharedFieldFiles)
	}
	if (need("single-reader") > 0 || need("row-padded") > 0 || need("legacy-shared") > 0) && p.SharedFieldFiles < 1 {
		return ResolvedMix{}, fmt.Errorf("scenario %s, mix %s: single-reader/row-padded/legacy-shared jobs need sharedFieldFiles >= 1", s.Name, name)
	}
	return ResolvedMix{Name: name, Params: &p}, nil
}

// resolveCache validates the cache experiment plan.
func (s *Spec) resolveCache() (*ResolvedCache, error) {
	c := s.Cache
	rc := &ResolvedCache{}
	if c.Fig8 == nil && c.Fig9 == nil && c.Combined == nil {
		return nil, fmt.Errorf("scenario %s: cache section selects no experiment (want fig8, fig9, and/or combined)", s.Name)
	}
	if c.Fig8 != nil {
		buffers := c.Fig8.Buffers
		if len(buffers) == 0 {
			buffers = []int{1, 10, 50}
		}
		if err := checkBuffers(s.Name, "fig8.buffers", buffers); err != nil {
			return nil, err
		}
		rc.Fig8Buffers = buffers
	}
	if c.Fig9 != nil {
		policies, err := resolvePolicies(s.Name, "fig9", c.Fig9.Policies, []cachesim.Policy{cachesim.LRU, cachesim.FIFO})
		if err != nil {
			return nil, err
		}
		ioNodes := c.Fig9.IONodes
		if len(ioNodes) == 0 {
			ioNodes = []int{10}
		}
		if len(ioNodes) > maxBufferList {
			return nil, fmt.Errorf("scenario %s: fig9.ioNodes lists %d entries (max %d)", s.Name, len(ioNodes), maxBufferList)
		}
		for _, n := range ioNodes {
			if n < 1 || n > maxIONodes {
				return nil, fmt.Errorf("scenario %s: fig9.ioNodes entry %d out of range [1, %d]", s.Name, n, maxIONodes)
			}
		}
		buffers := c.Fig9.Buffers
		if len(buffers) == 0 {
			buffers = DefaultFig9Buffers()
		}
		if err := checkBuffers(s.Name, "fig9.buffers", buffers); err != nil {
			return nil, err
		}
		rc.Fig9 = &ResolvedFig9{Policies: policies, IONodes: ioNodes, Buffers: buffers}
	}
	if c.Combined != nil {
		policies, err := resolvePolicies(s.Name, "combined", c.Combined.Policies, []cachesim.Policy{cachesim.LRU})
		if err != nil {
			return nil, err
		}
		ioNodes := c.Combined.IONodes
		if ioNodes == 0 {
			ioNodes = 10
		}
		per := c.Combined.BuffersPerIONode
		if per == 0 {
			per = 50
		}
		if ioNodes < 1 || ioNodes > maxIONodes {
			return nil, fmt.Errorf("scenario %s: combined.ioNodes %d out of range [1, %d]", s.Name, ioNodes, maxIONodes)
		}
		if per < 1 || per > maxBuffers/ioNodes {
			return nil, fmt.Errorf("scenario %s: combined.buffersPerIONode %d out of range [1, %d]", s.Name, per, maxBuffers/ioNodes)
		}
		rc.Combined = &ResolvedCombined{Policies: policies, IONodes: ioNodes, BuffersPerIONode: per}
	}
	return rc, nil
}

// checkBuffers bounds a buffer-count list.
func checkBuffers(scenarioName, field string, buffers []int) error {
	if len(buffers) > maxBufferList {
		return fmt.Errorf("scenario %s: %s lists %d entries (max %d)", scenarioName, field, len(buffers), maxBufferList)
	}
	for _, b := range buffers {
		if b < 1 || b > maxBuffers {
			return fmt.Errorf("scenario %s: %s entry %d out of range [1, %d]", scenarioName, field, b, maxBuffers)
		}
	}
	return nil
}

// resolvePolicies maps policy names through the cachesim registry.
func resolvePolicies(scenarioName, field string, names []string, def []cachesim.Policy) ([]cachesim.Policy, error) {
	if len(names) == 0 {
		return def, nil
	}
	if len(names) > len(cachesim.PolicyNames()) {
		return nil, fmt.Errorf("scenario %s: %s.policies lists %d entries (max %d)", scenarioName, field, len(names), len(cachesim.PolicyNames()))
	}
	out := make([]cachesim.Policy, 0, len(names))
	for _, n := range names {
		p, err := cachesim.ParsePolicy(n)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %s: %w", scenarioName, field, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// SeedList returns the seed axis (default {42}).
func (s *Spec) SeedList() []uint64 {
	if len(s.Seeds) == 0 {
		return []uint64{42}
	}
	return s.Seeds
}

// ScaleList returns the scale axis (default {0.01}).
func (s *Spec) ScaleList() []float64 {
	if len(s.Scales) == 0 {
		return []float64{0.01}
	}
	return s.Scales
}

// MachineList returns the validated machine axis. Validate must have
// succeeded.
func (s *Spec) MachineList() []ResolvedMachine { return s.machines }

// MixList returns the validated workload axis. Validate must have
// succeeded.
func (s *Spec) MixList() []ResolvedMix { return s.mixes }

// CachePlan returns the validated cache experiment plan, or nil when
// the scenario runs no cache experiments. Validate must have
// succeeded.
func (s *Spec) CachePlan() *ResolvedCache { return s.cache }

// FaultsConfig returns the validated fault-injection configuration,
// or nil when the scenario runs healthy. Validate must have
// succeeded.
func (s *Spec) FaultsConfig() *faults.Config { return s.faults }

// Studies returns the number of studies the scenario will run: one
// per replay trace, or the full simulation cross product.
func (s *Spec) Studies() int {
	if s.Replay != nil {
		return len(s.Replay.Traces)
	}
	return len(s.SeedList()) * len(s.ScaleList()) * len(s.mixes) * len(s.machines)
}

// IsReplay reports whether the scenario runs over recorded traces
// instead of fresh simulations.
func (s *Spec) IsReplay() bool { return s.Replay != nil }

// ReplayTraces returns the replay trace paths with relative paths
// resolved against the spec file's directory (nil for simulation
// scenarios). Validate must have succeeded.
func (s *Spec) ReplayTraces() []string {
	if s.Replay == nil {
		return nil
	}
	out := make([]string, len(s.Replay.Traces))
	for i, p := range s.Replay.Traces {
		if s.baseDir != "" && !filepath.IsAbs(p) {
			p = filepath.Join(s.baseDir, p)
		}
		out[i] = p
	}
	return out
}

// MultiMix reports whether the spec declares an explicit workload
// axis (and so labels carry a wl= component).
func (s *Spec) MultiMix() bool { return len(s.Workloads) > 0 }

// MultiMachine reports whether the spec declares an explicit machine
// axis (and so labels carry a mc= component).
func (s *Spec) MultiMachine() bool { return len(s.Machines) > 0 }
