package trace

import "repro/internal/sim"

// Clock supplies timestamps. Compute nodes have drifting local clocks;
// the collector has its own. The machine package provides
// implementations.
type Clock interface {
	Now() sim.Time
}

// Block is one buffer-load of event records shipped from a compute
// node to the collector, double-timestamped for drift correction:
// SendLocal is the node's local clock when the block left the node,
// RecvCollector the collector's clock when it arrived.
type Block struct {
	Node          uint16
	SendLocal     int64
	RecvCollector int64
	Events        []Event
}

// DefaultBufferBytes is the per-node trace buffer size used on the
// iPSC/860: one 4 KB message-sized buffer per compute node, chosen so
// that shipping event records costs >90% fewer messages than sending
// one message per record (Section 3.1).
const DefaultBufferBytes = 4096

// NodeBuffer accumulates event records on one compute node and flushes
// them as Blocks when the buffer fills. The flush callback models the
// message to the collector; the machine wires it to the network.
type NodeBuffer struct {
	node    uint16
	clock   Clock
	limit   int // records per block
	pending []Event
	flush   func(Block)
	arena   *Arena // optional chunk pool; nil allocates fresh chunks

	recorded int64
	flushes  int64
}

// NewNodeBuffer returns a buffer for the given node. bufferBytes is
// the buffer capacity in bytes (records per block = bufferBytes /
// EventSize, minimum 1); flush is invoked with each full block.
func NewNodeBuffer(node uint16, clock Clock, bufferBytes int, flush func(Block)) *NodeBuffer {
	limit := bufferBytes / EventSize
	if limit < 1 {
		limit = 1
	}
	return &NodeBuffer{
		node:  node,
		clock: clock,
		limit: limit,
		flush: flush,
		// Chunks are allocated lazily on first Record (idle nodes never
		// pay) and full-size: records append into preallocated capacity,
		// so a block costs one allocation -- or none, with an arena --
		// instead of a doubling growth chain per fill cycle.
	}
}

// SetArena makes the buffer draw its chunks from the given pool
// instead of allocating; the machine wires every node buffer to the
// study arena's pool. Call it before the first Record.
func (b *NodeBuffer) SetArena(a *Arena) { b.arena = a }

// newChunk returns an empty full-size chunk for the next block.
func (b *NodeBuffer) newChunk() []Event {
	if b.arena != nil {
		return b.arena.getChunk(b.limit)
	}
	return make([]Event, 0, b.limit)
}

// Node returns the owning compute node.
func (b *NodeBuffer) Node() uint16 { return b.node }

// Recorded reports the number of events recorded.
func (b *NodeBuffer) Recorded() int64 { return b.recorded }

// Flushes reports the number of blocks shipped.
func (b *NodeBuffer) Flushes() int64 { return b.flushes }

// Record stamps the event with the node's local clock and buffers it,
// flushing if the buffer is now full.
func (b *NodeBuffer) Record(ev Event) {
	ev.Node = b.node
	ev.Time = int64(b.clock.Now())
	if b.pending == nil {
		b.pending = b.newChunk()
	}
	b.pending = append(b.pending, ev)
	b.recorded++
	if len(b.pending) >= b.limit {
		b.Flush()
	}
}

// Flush ships any buffered records as one block. It is a no-op when
// the buffer is empty.
func (b *NodeBuffer) Flush() {
	if len(b.pending) == 0 {
		return
	}
	blk := Block{
		Node:      b.node,
		SendLocal: int64(b.clock.Now()),
		Events:    b.pending,
	}
	// The collector retains the shipped events, so the next Record
	// starts a fresh chunk (from the arena pool, when present) rather
	// than reusing the backing array.
	b.pending = nil
	b.flushes++
	b.flush(blk)
}
