package trace

// Arena pools the trace pipeline's per-study storage so that a worker
// running many studies back to back (see core.Arena and core.RunSweep)
// allocates trace memory only for its first study:
//
//   - NodeBuffer chunks: each buffer fill ships one []Event chunk to
//     the collector; ReclaimTrace returns them for the next study.
//   - The collector's block slice: the arrival-ordered []Block backing.
//   - Postprocess scratch: the flattened working copy, the sort keys,
//     and the merged output stream used by PostprocessInto.
//
// An Arena is not safe for concurrent use; give each worker its own.
// The zero value is ready to use.
type Arena struct {
	chunks [][]Event // free NodeBuffer chunks, any capacity
	blocks []Block   // free collector backing, length 0

	flat []Event   // postprocess: flattened, drift-corrected copy
	keys []sortKey // postprocess: (time, index) sort keys
	out  []Event   // postprocess: merged result, reused per call
}

// getChunk returns an empty event chunk with capacity >= limit,
// reusing a pooled chunk when one fits.
func (a *Arena) getChunk(limit int) []Event {
	for n := len(a.chunks); n > 0; n = len(a.chunks) {
		c := a.chunks[n-1]
		a.chunks[n-1] = nil
		a.chunks = a.chunks[:n-1]
		if cap(c) >= limit {
			return c[:0]
		}
		// Undersized for this buffer (a machine variant with larger
		// trace buffers): drop it and keep looking.
	}
	return make([]Event, 0, limit)
}

// putChunk returns a chunk to the pool.
func (a *Arena) putChunk(c []Event) {
	if cap(c) > 0 {
		a.chunks = append(a.chunks, c)
	}
}

// takeBlocks hands the pooled collector backing to a new collector.
func (a *Arena) takeBlocks() []Block {
	b := a.blocks
	a.blocks = nil
	return b[:0]
}

// ReclaimTrace returns a collected trace's storage -- every block's
// event chunk and the block slice itself -- to the arena. The trace
// and any postprocessed view of it must no longer be used.
func (a *Arena) ReclaimTrace(t *Trace) {
	if t == nil {
		return
	}
	for i := range t.Blocks {
		a.putChunk(t.Blocks[i].Events)
		t.Blocks[i].Events = nil
	}
	a.blocks = t.Blocks[:0]
	t.Blocks = nil
}
