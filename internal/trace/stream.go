// Streaming trace access. The CHARISMA instrumentation shipped event
// blocks off the compute nodes precisely because whole traces did not
// fit anywhere at once; Reader honors the same constraint on replay.
// It indexes a .trc file's block headers up front (a few dozen bytes
// per block, never the payloads) and then iterates with bounded
// memory: Blocks decodes one block at a time, and Events runs the full
// postprocessing pipeline -- per-node clock-drift correction and
// chronological merging -- via a k-way merge over the per-node block
// streams, holding one decoded block per node (briefly two, when a
// timestamp tie straddles a block boundary; see mergeCursor).
//
// For every trace whose per-node clocks are monotone -- every trace
// the collector produces -- Events yields exactly the stream
// Postprocess returns (stream_test.go and the core equivalence test
// pin this): the merge key is (corrected time, flatten index), each
// block is internally sorted by that key, the cursor window opens
// every block that could still hold the minimum key, and a k-way
// merge under those invariants equals a global sort.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// BlockInfo locates one block inside an encoded trace: its byte
// offset, the flatten index of its first event record (the global
// record ordinal in file order, which is the batch postprocessor's
// tie-break), and the block-header fields needed for clock fitting.
type BlockInfo struct {
	Offset        int64 // byte offset of the block header in the file
	StartIdx      int64 // flatten index of the block's first record
	SendLocal     int64
	RecvCollector int64
	Count         uint32
	Node          uint16
}

// Reader provides bounded-memory access to an encoded trace. Obtain
// one with NewReader, OpenReader, or Writer.Reader. A Reader is not
// safe for concurrent use.
type Reader struct {
	r      io.ReaderAt
	closer io.Closer
	header Header
	index  []BlockInfo
	events int64
}

// NewReader indexes an encoded trace of the given total size. It
// validates the framing -- magic, version, and that every block's
// declared record count fits inside the file -- and returns a
// descriptive error (never a panic) for truncated or corrupt input.
// Event payloads are validated lazily as Blocks or Events decodes
// them.
func NewReader(r io.ReaderAt, size int64) (*Reader, error) {
	if size < headerSize {
		return nil, fmt.Errorf("trace: file too short for a header: %d bytes", size)
	}
	var hbuf [headerSize]byte
	if _, err := r.ReadAt(hbuf[:], 0); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	rd := &Reader{r: r}
	if err := rd.header.decode(hbuf[:]); err != nil {
		return nil, err
	}
	// Scan the block headers through a chunked window rather than one
	// 22-byte pread per block: with 4 KB blocks a window this size
	// covers ~60 headers per read, so indexing a large file costs
	// tens of syscalls per megabyte, not thousands. Payloads that run
	// past the window are skipped, not read.
	win := make([]byte, 256*1024)
	off := int64(headerSize)
	for off < size {
		if size-off < blockHeaderSize {
			return nil, fmt.Errorf("trace: truncated block header at offset %d (%d trailing bytes)", off, size-off)
		}
		n := int64(len(win))
		if n > size-off {
			n = size - off
		}
		if _, err := r.ReadAt(win[:n], off); err != nil && !(err == io.EOF && off+n == size) {
			return nil, fmt.Errorf("trace: reading block headers at offset %d: %w", off, err)
		}
		winStart := off
		for off-winStart+blockHeaderSize <= n {
			bbuf := win[off-winStart:]
			info := BlockInfo{
				Offset:        off,
				StartIdx:      rd.events,
				Node:          binary.LittleEndian.Uint16(bbuf[0:]),
				Count:         binary.LittleEndian.Uint32(bbuf[2:]),
				SendLocal:     int64(binary.LittleEndian.Uint64(bbuf[6:])),
				RecvCollector: int64(binary.LittleEndian.Uint64(bbuf[14:])),
			}
			payload := int64(info.Count) * EventSize
			if payload > size-off-blockHeaderSize {
				return nil, fmt.Errorf("trace: block %d at offset %d declares %d records but only %d bytes remain",
					len(rd.index), off, info.Count, size-off-blockHeaderSize)
			}
			rd.index = append(rd.index, info)
			rd.events += int64(info.Count)
			off += blockHeaderSize + payload
			if off >= size {
				break
			}
			if size-off < blockHeaderSize {
				return nil, fmt.Errorf("trace: truncated block header at offset %d (%d trailing bytes)", off, size-off)
			}
		}
	}
	return rd, nil
}

// OpenReader opens and indexes a trace file. Close releases the file.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %w", err)
	}
	rd, err := NewReader(f, st.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	rd.closer = f
	return rd, nil
}

// Close releases the underlying file, when the Reader owns one.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.header }

// EventCount returns the total number of event records in the trace.
func (r *Reader) EventCount() int64 { return r.events }

// NumBlocks returns the number of blocks in the trace.
func (r *Reader) NumBlocks() int { return len(r.index) }

// loadBlock reads and decodes block i, reusing raw and events as
// backing storage when they are large enough.
func (r *Reader) loadBlock(i int, raw []byte, events []Event) ([]byte, []Event, error) {
	info := &r.index[i]
	need := int(info.Count) * EventSize
	if cap(raw) < need {
		raw = make([]byte, need)
	}
	raw = raw[:need]
	if need > 0 {
		if _, err := r.r.ReadAt(raw, info.Offset+blockHeaderSize); err != nil {
			return raw, events[:0], fmt.Errorf("trace: reading block %d payload: %w", i, err)
		}
	}
	if cap(events) < int(info.Count) {
		events = make([]Event, info.Count)
	}
	events = events[:info.Count]
	for j := range events {
		if err := events[j].Decode(raw[j*EventSize:]); err != nil {
			return raw, events[:0], fmt.Errorf("trace: block %d record %d: %w", i, j, err)
		}
	}
	return raw, events, nil
}

// Blocks calls fn with each block in file (arrival) order, decoding
// one block at a time. The Block's Events slice is reused between
// calls; fn must not retain it.
func (r *Reader) Blocks(fn func(Block) error) error {
	var raw []byte
	var buf []Event
	for i := range r.index {
		var err error
		raw, buf, err = r.loadBlock(i, raw, buf)
		if err != nil {
			return err
		}
		info := &r.index[i]
		blk := Block{
			Node:          info.Node,
			SendLocal:     info.SendLocal,
			RecvCollector: info.RecvCollector,
			Events:        buf,
		}
		if err := fn(blk); err != nil {
			return err
		}
	}
	return nil
}

// fitClocks estimates the per-node clock maps from the block index,
// accumulating the double timestamps in file order -- the same samples
// in the same order as FitClocks over the materialized trace, so the
// fits (and thus the corrected timestamps) are bit-identical.
func (r *Reader) fitClocks() map[uint16]ClockFit {
	accs := make(map[uint16]*clockAcc)
	for i := range r.index {
		b := &r.index[i]
		a := accs[b.Node]
		if a == nil {
			a = &clockAcc{}
			accs[b.Node] = a
		}
		a.add(b.SendLocal, b.RecvCollector)
	}
	fits := make(map[uint16]ClockFit, len(accs))
	for node, a := range accs {
		fits[node] = a.fit()
	}
	return fits
}

// openBlock is one decoded, not-yet-exhausted block inside a node
// cursor's window.
type openBlock struct {
	buf  []Event // decoded events, drift-corrected
	pos  int     // head event
	base int64   // StartIdx of the block
}

// mergeCursor is one node's position in the streaming merge: the
// node's block list (in recording order), a window of decoded blocks,
// and the sort key of the head event.
//
// The window is the subtlety that makes the merge exact rather than
// approximate. A node's blocks, taken in recording (SendLocal) order,
// partition its event stream into consecutive time ranges that can
// touch at the boundary instants: every event in block k satisfies
// fit(send[k-1]) <= time <= fit(send[k]). When the head event's
// timestamp reaches the last opened block's corrected send stamp, the
// *next* block may hold events at that same instant whose flatten
// index is smaller (a small residual block can overtake a full one on
// the network and land earlier in the file), so the cursor opens it
// and takes the minimum key across the window. In the steady state
// the window is one block; at a boundary tie it is briefly two.
type mergeCursor struct {
	blocks []int32 // indices into Reader.index, in recording order
	next   int     // next entry of blocks to open
	window []openBlock
	free   [][]Event // spare event buffers, reused across blocks
	raw    []byte
	fit    ClockFit
	// Corrected send stamp of the most recently opened block: events
	// of every unopened block are >= this.
	lastSend int64

	// Head sort key: (corrected time, flatten index), exactly the
	// batch postprocessor's, plus which window entry holds it.
	time int64
	idx  int64
	wi   int
}

func (c *mergeCursor) less(d *mergeCursor) bool {
	if c.time != d.time {
		return c.time < d.time
	}
	return c.idx < d.idx
}

// openNext decodes the node's next block into the window (skipping
// empty blocks) and updates the unopened-blocks lower bound.
func (r *Reader) openNext(c *mergeCursor) error {
	i := int(c.blocks[c.next])
	c.next++
	c.lastSend = c.fit.Apply(r.index[i].SendLocal)
	if r.index[i].Count == 0 {
		return nil
	}
	var buf []Event
	if n := len(c.free); n > 0 {
		buf = c.free[n-1]
		c.free = c.free[:n-1]
	}
	var err error
	c.raw, buf, err = r.loadBlock(i, c.raw, buf)
	if err != nil {
		return err
	}
	for j := range buf {
		buf[j].Time = c.fit.Apply(buf[j].Time)
	}
	c.window = append(c.window, openBlock{buf: buf, base: r.index[i].StartIdx})
	return nil
}

// advance drops exhausted window blocks and re-establishes the
// cursor's head: the minimum (time, index) key across the window,
// after opening every further block that could still hold a smaller
// key. It returns false at the end of the node's stream.
func (r *Reader) advance(c *mergeCursor) (bool, error) {
	for k := 0; k < len(c.window); {
		if c.window[k].pos >= len(c.window[k].buf) {
			c.free = append(c.free, c.window[k].buf[:0])
			c.window = append(c.window[:k], c.window[k+1:]...)
			continue
		}
		k++
	}
	for len(c.window) == 0 {
		if c.next >= len(c.blocks) {
			return false, nil
		}
		if err := r.openNext(c); err != nil {
			return false, err
		}
	}
	head := func() {
		c.wi = -1
		for k := range c.window {
			w := &c.window[k]
			t, idx := w.buf[w.pos].Time, w.base+int64(w.pos)
			if c.wi < 0 || t < c.time || (t == c.time && idx < c.idx) {
				c.wi, c.time, c.idx = k, t, idx
			}
		}
	}
	head()
	// An unopened block's events are all >= the last opened block's
	// corrected send stamp; open until that bound clears the head.
	for c.next < len(c.blocks) && c.lastSend <= c.time {
		if err := r.openNext(c); err != nil {
			return false, err
		}
		head()
	}
	return true, nil
}

// Events streams the postprocessed trace: every record with its
// timestamp mapped onto the collector timebase (the paper's clock
// drift correction), merged into chronological order. For any trace
// the collector produced, the stream is element-for-element identical
// to Postprocess's, while decoding only one block per compute node at
// a time -- beyond the block index, peak memory is O(node buffers),
// not O(trace).
//
// fn receives a pointer into the merge's reused block storage; it must
// not retain the pointer across calls. A non-nil error from fn aborts
// the stream and is returned.
func (r *Reader) Events(fn func(*Event) error) error {
	return r.stream(fn, true)
}

// RawEvents is Events without the clock correction: records merge on
// their raw local-clock timestamps, matching PostprocessRaw (the
// drift-correction ablation).
func (r *Reader) RawEvents(fn func(*Event) error) error {
	return r.stream(fn, false)
}

func (r *Reader) stream(fn func(*Event) error, corrected bool) error {
	// Group the blocks by node. Within a node, merge its blocks in
	// recording order (by SendLocal) rather than file order: per-node
	// blocks normally arrive in flush order, but a small residual
	// block can overtake a full one on the simulated network, and
	// recording order is what makes each node's event stream
	// time-sorted (node clocks are monotone, so every record in a
	// block is newer than the previous block's send stamp).
	byNode := make(map[uint16]*mergeCursor)
	var cursors []*mergeCursor
	for i := range r.index {
		n := r.index[i].Node
		c := byNode[n]
		if c == nil {
			c = &mergeCursor{fit: IdentityFit}
			byNode[n] = c
			cursors = append(cursors, c)
		}
		c.blocks = append(c.blocks, int32(i))
	}
	if corrected {
		for node, fit := range r.fitClocks() {
			byNode[node].fit = fit
		}
	}
	for _, c := range cursors {
		blocks := c.blocks
		sort.SliceStable(blocks, func(a, b int) bool {
			return r.index[blocks[a]].SendLocal < r.index[blocks[b]].SendLocal
		})
	}

	// Prime the heap with each node's first event.
	heap := make([]*mergeCursor, 0, len(cursors))
	for _, c := range cursors {
		ok, err := r.advance(c)
		if err != nil {
			return err
		}
		if ok {
			heap = append(heap, c)
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		siftDown(heap, i)
	}

	for len(heap) > 0 {
		c := heap[0]
		w := &c.window[c.wi]
		if err := fn(&w.buf[w.pos]); err != nil {
			return err
		}
		w.pos++
		ok, err := r.advance(c)
		if err != nil {
			return err
		}
		if !ok {
			heap[0] = heap[len(heap)-1]
			heap[len(heap)-1] = nil
			heap = heap[:len(heap)-1]
		}
		siftDown(heap, 0)
	}
	return nil
}

// siftDown restores the min-heap property at index i.
func siftDown(h []*mergeCursor, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if rr := l + 1; rr < len(h) && h[rr].less(h[l]) {
			m = rr
		}
		if !h[m].less(h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// AllEvents materializes the postprocessed stream into one slice: the
// streaming equivalent of Read followed by Postprocess, allocating the
// event slice but never the raw blocks.
func (r *Reader) AllEvents() ([]Event, error) {
	out := make([]Event, 0, r.events)
	err := r.Events(func(ev *Event) error {
		out = append(out, *ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
