// Package trace implements the CHARISMA trace format and collection
// pipeline described in Section 3 of the paper: fixed-size binary
// event records for every file-system call and job transition,
// buffered in a 4 KB buffer on each compute node, shipped to a
// collector on the service node which double-timestamps each block,
// and post-processed (clock-drift correction, chronological sort)
// before analysis.
package trace

import (
	"encoding/binary"
	"fmt"
)

// EventType identifies the kind of an event record.
type EventType uint8

// Event types. JobStart/JobEnd are recorded for every job through a
// separate mechanism (even jobs whose CFS library was not
// instrumented); the remaining types are emitted by the instrumented
// CFS library.
const (
	EvInvalid  EventType = iota
	EvJobStart           // Size = number of compute nodes; Flags&FlagInstrumented if traced
	EvJobEnd
	EvOpen  // Mode = CFS I/O mode; Flags = access intent
	EvClose // Size = file size at close
	EvRead  // Offset, Size of the request
	EvWrite // Offset, Size of the request
	EvSeek  // Offset = new file pointer
	EvDelete
	// EvReadStrided and EvWriteStrided are the extension the paper's
	// conclusions call for: one request expressing a regular record
	// size and interval. Size = record bytes, Stride = distance
	// between record starts, Count = number of records.
	EvReadStrided
	EvWriteStrided
	evMax
)

// String returns the type name.
func (t EventType) String() string {
	switch t {
	case EvJobStart:
		return "JobStart"
	case EvJobEnd:
		return "JobEnd"
	case EvOpen:
		return "Open"
	case EvClose:
		return "Close"
	case EvRead:
		return "Read"
	case EvWrite:
		return "Write"
	case EvSeek:
		return "Seek"
	case EvDelete:
		return "Delete"
	case EvReadStrided:
		return "ReadStrided"
	case EvWriteStrided:
		return "WriteStrided"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(t))
	}
}

// Flag bits for Event.Flags.
const (
	FlagRead         = 1 << 0 // open requested read access
	FlagWrite        = 1 << 1 // open requested write access
	FlagCreate       = 1 << 2 // open created the file
	FlagInstrumented = 1 << 3 // job start: job linked the traced library
)

// Event is one CHARISMA trace record. Timestamps are in the recording
// node's local clock until postprocessing maps them onto the
// collector's timebase.
type Event struct {
	Time   int64  // local-clock timestamp, microseconds
	File   uint64 // global file identity (0 when not applicable)
	Offset int64
	Size   int64
	Stride int64  // strided requests: distance between record starts
	Count  uint32 // strided requests: number of records
	Job    uint32
	Node   uint16
	Type   EventType
	Mode   uint8 // CFS I/O mode at open (0-3)
	Flags  uint8
}

// EventSize is the fixed encoded size of an Event in bytes.
const EventSize = 53

// Encode writes the event into buf, which must have room for EventSize
// bytes, and returns EventSize.
func (e *Event) Encode(buf []byte) int {
	_ = buf[EventSize-1] // bounds hint
	binary.LittleEndian.PutUint64(buf[0:], uint64(e.Time))
	binary.LittleEndian.PutUint64(buf[8:], e.File)
	binary.LittleEndian.PutUint64(buf[16:], uint64(e.Offset))
	binary.LittleEndian.PutUint64(buf[24:], uint64(e.Size))
	binary.LittleEndian.PutUint64(buf[32:], uint64(e.Stride))
	binary.LittleEndian.PutUint32(buf[40:], e.Count)
	binary.LittleEndian.PutUint32(buf[44:], e.Job)
	binary.LittleEndian.PutUint16(buf[48:], e.Node)
	buf[50] = uint8(e.Type)
	buf[51] = e.Mode
	buf[52] = e.Flags
	return EventSize
}

// Decode reads an event from buf, which must hold at least EventSize
// bytes. It returns an error for unknown event types so corrupted
// traces fail loudly.
func (e *Event) Decode(buf []byte) error {
	if len(buf) < EventSize {
		return fmt.Errorf("trace: short event record: %d bytes", len(buf))
	}
	e.Time = int64(binary.LittleEndian.Uint64(buf[0:]))
	e.File = binary.LittleEndian.Uint64(buf[8:])
	e.Offset = int64(binary.LittleEndian.Uint64(buf[16:]))
	e.Size = int64(binary.LittleEndian.Uint64(buf[24:]))
	e.Stride = int64(binary.LittleEndian.Uint64(buf[32:]))
	e.Count = binary.LittleEndian.Uint32(buf[40:])
	e.Job = binary.LittleEndian.Uint32(buf[44:])
	e.Node = binary.LittleEndian.Uint16(buf[48:])
	e.Type = EventType(buf[50])
	e.Mode = buf[51]
	e.Flags = buf[52]
	if e.Type == EvInvalid || e.Type >= evMax {
		return fmt.Errorf("trace: unknown event type %d", buf[50])
	}
	return nil
}

// IsData reports whether the event is a data-transfer request.
func (e *Event) IsData() bool {
	switch e.Type {
	case EvRead, EvWrite, EvReadStrided, EvWriteStrided:
		return true
	}
	return false
}

// IsStrided reports whether the event is a strided request.
func (e *Event) IsStrided() bool {
	return e.Type == EvReadStrided || e.Type == EvWriteStrided
}

// IsWriteOp reports whether the event moves data toward the disk.
func (e *Event) IsWriteOp() bool {
	return e.Type == EvWrite || e.Type == EvWriteStrided
}

// Bytes returns the total payload of the request (all records for a
// strided request).
func (e *Event) Bytes() int64 {
	if e.IsStrided() {
		return e.Size * int64(e.Count)
	}
	return e.Size
}

// Records calls fn with the byte range of each record in the request:
// one range for a plain read or write, Count ranges for a strided
// request.
func (e *Event) Records(fn func(off, size int64)) {
	if !e.IsStrided() {
		fn(e.Offset, e.Size)
		return
	}
	for i := int64(0); i < int64(e.Count); i++ {
		fn(e.Offset+i*e.Stride, e.Size)
	}
}

// String renders the event for debugging.
func (e *Event) String() string {
	return fmt.Sprintf("%s t=%d node=%d job=%d file=%d off=%d size=%d mode=%d flags=%#x",
		e.Type, e.Time, e.Node, e.Job, e.File, e.Offset, e.Size, e.Mode, e.Flags)
}
