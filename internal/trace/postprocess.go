package trace

import "sort"

// ClockFit is an affine map from one node's local clock onto the
// collector's timebase: collector ~= Offset + Slope * local.
type ClockFit struct {
	Offset float64
	Slope  float64
}

// Apply maps a local timestamp to the collector timebase.
func (f ClockFit) Apply(local int64) int64 {
	return int64(f.Offset + f.Slope*float64(local))
}

// IdentityFit maps local time to itself.
var IdentityFit = ClockFit{Offset: 0, Slope: 1}

// clockAcc accumulates one node's (SendLocal, RecvCollector) block
// timestamp pairs for the least-squares clock fit. It is shared by
// FitClocks (materialized traces) and Reader.fitClocks (streaming over
// the block index): both accumulate in block order with identical
// float arithmetic, so the fits are bit-identical.
type clockAcc struct {
	n                        float64
	sumX, sumY, sumXY, sumXX float64
}

func (a *clockAcc) add(sendLocal, recvCollector int64) {
	x, y := float64(sendLocal), float64(recvCollector)
	a.n++
	a.sumX += x
	a.sumY += y
	a.sumXY += x * y
	a.sumXX += x * x
}

func (a *clockAcc) fit() ClockFit {
	meanX := a.sumX / a.n
	meanY := a.sumY / a.n
	varX := a.sumXX/a.n - meanX*meanX
	cov := a.sumXY/a.n - meanX*meanY
	fit := ClockFit{Slope: 1, Offset: meanY - meanX}
	// Require a spread of send times before trusting the slope:
	// a nearly-vertical cluster of points yields a wild line.
	if a.n >= 2 && varX > 1e6 { // > 1 ms^2 spread
		slope := cov / varX
		// Clock drift on real hardware is parts-per-thousand at
		// worst; reject degenerate fits from pathological traces.
		if slope > 0.9 && slope < 1.1 {
			fit.Slope = slope
			fit.Offset = meanY - slope*meanX
		}
	}
	return fit
}

// FitClocks estimates, for every node appearing in the trace, the
// affine clock map from that node's local clock to the collector's
// clock, using the double timestamps on each block (the node's
// SendLocal and the collector's RecvCollector). This reproduces the
// paper's drift-compensation technique: with several blocks per node a
// least-squares line captures both offset and drift rate; with a
// single block only the offset can be estimated.
func FitClocks(t *Trace) map[uint16]ClockFit {
	accs := make(map[uint16]*clockAcc)
	for _, b := range t.Blocks {
		a := accs[b.Node]
		if a == nil {
			a = &clockAcc{}
			accs[b.Node] = a
		}
		a.add(b.SendLocal, b.RecvCollector)
	}
	fits := make(map[uint16]ClockFit, len(accs))
	for node, a := range accs {
		fits[node] = a.fit()
	}
	return fits
}

// Postprocess performs the paper's three postprocessing steps -- data
// realignment, clock synchronization, and chronological sorting -- and
// returns a single corrected, time-ordered event stream. Events keep
// their original per-node order when corrected timestamps tie.
func Postprocess(t *Trace) []Event {
	return PostprocessInto(t, nil)
}

// PostprocessInto is Postprocess drawing its working storage -- the
// flattened copy, the sort keys, and the returned stream itself --
// from the arena. The returned slice is owned by the arena: it is
// valid only until the arena's next PostprocessInto call. A nil arena
// allocates fresh storage (identical to Postprocess).
func PostprocessInto(t *Trace, a *Arena) []Event {
	fits := FitClocks(t)
	return flattenSorted(t, func(node uint16) ClockFit {
		if f, ok := fits[node]; ok {
			return f
		}
		return IdentityFit
	}, a)
}

// PostprocessRaw flattens and sorts the trace on the raw local
// timestamps with no clock correction. It exists to measure how much
// event-order error the drift correction removes (an ablation in
// DESIGN.md).
func PostprocessRaw(t *Trace) []Event {
	return flattenSorted(t, func(uint16) ClockFit { return IdentityFit }, nil)
}

// sortKey orders one flattened event by (corrected time, flatten
// index); see flattenSorted.
type sortKey struct {
	time int64
	idx  int32
}

func flattenSorted(t *Trace, fitFor func(uint16) ClockFit, a *Arena) []Event {
	var n int
	for _, b := range t.Blocks {
		n += len(b.Events)
	}
	var events []Event
	var keys []sortKey
	var out []Event
	if a != nil {
		events = sliceFor(&a.flat, n)[:0]
		keys = sliceFor(&a.keys, n)
		out = sliceFor(&a.out, n)
	} else {
		events = make([]Event, 0, n)
		keys = make([]sortKey, n)
		out = make([]Event, n)
	}
	for _, b := range t.Blocks {
		fit := fitFor(b.Node)
		for _, ev := range b.Events {
			ev.Time = fit.Apply(ev.Time)
			events = append(events, ev)
		}
	}
	// Sort compact (time, index) keys instead of the events themselves:
	// the keys are a quarter the size of an Event and compare without
	// reflection, and the index tiebreak yields exactly the order a
	// stable sort of the events would. One pass then gathers the events
	// into place.
	for i := range events {
		keys[i] = sortKey{time: events[i].Time, idx: int32(i)}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].time != keys[j].time {
			return keys[i].time < keys[j].time
		}
		return keys[i].idx < keys[j].idx
	})
	for i, k := range keys {
		out[i] = events[k.idx]
	}
	return out
}

// sliceFor resizes *s to length n, growing the backing array only when
// the pooled capacity is insufficient, and returns it.
func sliceFor[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// OrderError counts adjacent inversions between a candidate event
// ordering and the true ordering given by reference timestamps keyed
// by (Node, Seq)-free identity; here we approximate by counting pairs
// of data events from different nodes whose relative order differs
// from their true simulation order. It is used by tests and the
// drift-correction ablation: lower is better.
func OrderError(candidate []Event, trueTime func(Event) int64) int {
	errors := 0
	for i := 1; i < len(candidate); i++ {
		a, b := candidate[i-1], candidate[i]
		if trueTime(a) > trueTime(b) {
			errors++
		}
	}
	return errors
}
