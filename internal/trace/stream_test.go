package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// driftTrace builds a multi-node trace with per-node clock offsets,
// interleaved block deliveries, and ties, exercising the merge.
func driftTrace() *Trace {
	tr := &Trace{Header: testHeader()}
	// Node 1: two blocks; node 2: offset clock, one block; node 3: a
	// block with a time tie against node 1.
	tr.Blocks = []Block{
		{Node: 1, SendLocal: 1000, RecvCollector: 1050, Events: []Event{
			{Type: EvOpen, Node: 1, Time: 100, File: 1},
			{Type: EvRead, Node: 1, Time: 500, File: 1, Size: 4096},
		}},
		{Node: 2, SendLocal: 900, RecvCollector: 21000, Events: []Event{
			{Type: EvWrite, Node: 2, Time: 300, File: 2, Size: 100},
			{Type: EvWrite, Node: 2, Time: 800, File: 2, Size: 100},
		}},
		{Node: 3, SendLocal: 1000, RecvCollector: 1050, Events: []Event{
			{Type: EvRead, Node: 3, Time: 500, File: 3, Size: 1}, // ties node 1's read
		}},
		{Node: 1, SendLocal: 2000, RecvCollector: 2060, Events: []Event{
			{Type: EvClose, Node: 1, Time: 1500, File: 1},
		}},
	}
	return tr
}

func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriterMatchesWriteTo(t *testing.T) {
	tr := driftTrace()
	want := encodeTrace(t, tr)

	var buf bytes.Buffer
	w, err := NewWriter(&buf, tr.Header)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range tr.Blocks {
		if err := w.WriteBlock(blk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("incremental writer produced %d bytes, WriteTo %d; contents differ", buf.Len(), len(want))
	}
	if w.BytesWritten() != int64(len(want)) {
		t.Fatalf("BytesWritten %d, want %d", w.BytesWritten(), len(want))
	}
	if w.EventCount() != 6 || w.BlockCount() != 4 {
		t.Fatalf("writer counters: %d events, %d blocks", w.EventCount(), w.BlockCount())
	}
}

func TestReaderBlocksRoundTrip(t *testing.T) {
	tr := driftTrace()
	data := encodeTrace(t, tr)
	rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Header() != tr.Header {
		t.Fatalf("header: %+v vs %+v", rd.Header(), tr.Header)
	}
	if rd.NumBlocks() != len(tr.Blocks) || rd.EventCount() != 6 {
		t.Fatalf("index: %d blocks, %d events", rd.NumBlocks(), rd.EventCount())
	}
	i := 0
	err = rd.Blocks(func(b Block) error {
		want := tr.Blocks[i]
		if b.Node != want.Node || b.SendLocal != want.SendLocal || b.RecvCollector != want.RecvCollector {
			t.Fatalf("block %d header mismatch: %+v", i, b)
		}
		if len(b.Events) != len(want.Events) {
			t.Fatalf("block %d: %d events, want %d", i, len(b.Events), len(want.Events))
		}
		for j := range want.Events {
			if b.Events[j] != want.Events[j] {
				t.Fatalf("block %d event %d: %+v vs %+v", i, j, b.Events[j], want.Events[j])
			}
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(tr.Blocks) {
		t.Fatalf("visited %d blocks", i)
	}
}

// streamAll collects the merged stream into a slice.
func streamAll(t *testing.T, rd *Reader, raw bool) []Event {
	t.Helper()
	var out []Event
	stream := rd.Events
	if raw {
		stream = rd.RawEvents
	}
	if err := stream(func(ev *Event) error {
		out = append(out, *ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func assertSameStream(t *testing.T, got, want []Event, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: event %d differs:\ngot  %+v\nwant %+v", label, i, got[i], want[i])
		}
	}
}

// TestReaderEventsMatchPostprocess pins the merge's contract: the
// streamed, drift-corrected event sequence equals Postprocess's
// output element for element, including cross-node ties.
func TestReaderEventsMatchPostprocess(t *testing.T) {
	tr := driftTrace()
	data := encodeTrace(t, tr)
	rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameStream(t, streamAll(t, rd, false), Postprocess(tr), "corrected")
	assertSameStream(t, streamAll(t, rd, true), PostprocessRaw(tr), "raw")

	all, err := rd.AllEvents()
	if err != nil {
		t.Fatal(err)
	}
	assertSameStream(t, all, Postprocess(tr), "AllEvents")
}

// TestReaderEventsOvertakenBlock: a node's small residual block can
// overtake its previous full block on the network, landing earlier in
// the file. The merge processes each node's blocks in recording
// (SendLocal) order, so the stream still matches the batch sort.
func TestReaderEventsOvertakenBlock(t *testing.T) {
	tr := &Trace{Header: testHeader()}
	tr.Blocks = []Block{
		// Delivered first, but recorded second (SendLocal 2000).
		{Node: 5, SendLocal: 2000, RecvCollector: 2010, Events: []Event{
			{Type: EvClose, Node: 5, Time: 1900, File: 9},
		}},
		{Node: 5, SendLocal: 1000, RecvCollector: 2500, Events: []Event{
			{Type: EvOpen, Node: 5, Time: 100, File: 9},
			{Type: EvRead, Node: 5, Time: 600, File: 9, Size: 10},
		}},
		{Node: 6, SendLocal: 1500, RecvCollector: 1600, Events: []Event{
			{Type: EvWrite, Node: 6, Time: 400, File: 10, Size: 10},
		}},
	}
	data := encodeTrace(t, tr)
	rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameStream(t, streamAll(t, rd, false), Postprocess(tr), "overtaken corrected")
	assertSameStream(t, streamAll(t, rd, true), PostprocessRaw(tr), "overtaken raw")
}

// TestReaderEventsOvertakenBoundaryTie is the hard case: the
// overtaking residual block's first event carries the same timestamp
// as the overtaken block's last event (a buffer that fills and
// flushes mid-instant, with the residual flushed at that same
// instant). The batch sort tie-breaks on flatten index, putting the
// overtaking (earlier-in-file) block's event first even though it was
// recorded second; the cursor's block window must reproduce that.
func TestReaderEventsOvertakenBoundaryTie(t *testing.T) {
	tr := &Trace{Header: testHeader()}
	tr.Blocks = []Block{
		// Recorded second, delivered first: starts at the same instant
		// the previous block ended on.
		{Node: 5, SendLocal: 2000, RecvCollector: 2010, Events: []Event{
			{Type: EvRead, Node: 5, Time: 1000, File: 9, Offset: 4096, Size: 10},
			{Type: EvClose, Node: 5, Time: 1900, File: 9},
		}},
		{Node: 5, SendLocal: 1000, RecvCollector: 2500, Events: []Event{
			{Type: EvOpen, Node: 5, Time: 100, File: 9},
			{Type: EvRead, Node: 5, Time: 1000, File: 9, Offset: 0, Size: 10},
		}},
	}
	data := encodeTrace(t, tr)
	rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	assertSameStream(t, streamAll(t, rd, false), Postprocess(tr), "boundary tie corrected")
	assertSameStream(t, streamAll(t, rd, true), PostprocessRaw(tr), "boundary tie raw")
}

func TestReaderEmptyTrace(t *testing.T) {
	tr := &Trace{Header: testHeader()}
	data := encodeTrace(t, tr)
	rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumBlocks() != 0 || rd.EventCount() != 0 {
		t.Fatalf("empty trace indexed as %d blocks / %d events", rd.NumBlocks(), rd.EventCount())
	}
	if got := streamAll(t, rd, false); len(got) != 0 {
		t.Fatalf("empty trace streamed %d events", len(got))
	}
}

func TestOpenReader(t *testing.T) {
	tr := driftTrace()
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := os.WriteFile(path, encodeTrace(t, tr), 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	assertSameStream(t, streamAll(t, rd, false), Postprocess(tr), "file-backed")
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenReader(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestReaderRejectsCorrupt: truncations and corruptions at every layer
// must yield errors, never panics.
func TestReaderRejectsCorrupt(t *testing.T) {
	data := encodeTrace(t, driftTrace())

	newReader := func(d []byte) (*Reader, error) {
		return NewReader(bytes.NewReader(d), int64(len(d)))
	}

	// Truncations that break the framing fail at indexing time.
	for _, cut := range []int{0, 5, headerSize - 1, headerSize + 3, len(data) - 1, len(data) - EventSize - 1} {
		if _, err := newReader(data[:cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}

	// Bad magic and bad version.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := newReader(bad); err == nil {
		t.Error("bad magic accepted")
	}
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(bad[8:], 99)
	if _, err := newReader(bad); err == nil {
		t.Error("bad version accepted")
	}

	// An absurd record count must be rejected at indexing, without a
	// giant allocation.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[headerSize+2:], 1<<31)
	if _, err := newReader(bad); err == nil {
		t.Error("absurd record count accepted")
	}

	// A corrupt event type passes indexing (payloads are lazy) but
	// fails block and event iteration.
	bad = append([]byte(nil), data...)
	bad[headerSize+blockHeaderSize+50] = 0xEE // first event's Type byte
	rd, err := newReader(bad)
	if err != nil {
		t.Fatalf("structurally valid trace rejected at indexing: %v", err)
	}
	if err := rd.Blocks(func(Block) error { return nil }); err == nil {
		t.Error("corrupt event type accepted by Blocks")
	}
	if err := rd.Events(func(*Event) error { return nil }); err == nil {
		t.Error("corrupt event type accepted by Events")
	}
}

// TestWriterPartialFailure: a sink that fails mid-way yields a sticky
// error and reports the bytes that actually landed.
func TestWriterPartialFailure(t *testing.T) {
	tr := driftTrace()
	want := encodeTrace(t, tr)
	sink := &limitedWriter{limit: len(want) / 2}
	n, err := tr.WriteTo(sink)
	if err == nil {
		t.Fatal("short write produced no error")
	}
	if n != int64(len(sink.buf)) {
		t.Fatalf("WriteTo reported %d bytes, sink holds %d", n, len(sink.buf))
	}
	if n >= int64(len(want)) {
		t.Fatalf("partial write reported full size %d", n)
	}
}

type limitedWriter struct {
	buf   []byte
	limit int
}

func (w *limitedWriter) Write(p []byte) (int, error) {
	room := w.limit - len(w.buf)
	if room <= 0 {
		return 0, os.ErrClosed
	}
	if len(p) <= room {
		w.buf = append(w.buf, p...)
		return len(p), nil
	}
	w.buf = append(w.buf, p[:room]...)
	return room, os.ErrClosed
}
