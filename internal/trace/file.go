package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic begins every CHARISMA trace file, making it self-descriptive
// as the paper requires.
const Magic = "CHARISMA"

// Version of the on-disk format.
const Version = 1

// Header describes the traced machine and tracing configuration; it
// makes each trace file self-descriptive.
type Header struct {
	ComputeNodes uint16 // 128 on the NAS iPSC/860
	IONodes      uint16 // 10
	BlockBytes   uint32 // CFS striping unit: 4096
	BufferBytes  uint32 // per-node trace buffer: 4096
	Seed         uint64 // workload seed (synthetic traces)
}

const headerSize = 8 + 2 + 2 + 2 + 4 + 4 + 8 // magic + version + fields

func (h *Header) encode(buf []byte) {
	copy(buf[0:8], Magic)
	binary.LittleEndian.PutUint16(buf[8:], Version)
	binary.LittleEndian.PutUint16(buf[10:], h.ComputeNodes)
	binary.LittleEndian.PutUint16(buf[12:], h.IONodes)
	binary.LittleEndian.PutUint32(buf[14:], h.BlockBytes)
	binary.LittleEndian.PutUint32(buf[18:], h.BufferBytes)
	binary.LittleEndian.PutUint64(buf[22:], h.Seed)
}

func (h *Header) decode(buf []byte) error {
	if string(buf[0:8]) != Magic {
		return fmt.Errorf("trace: bad magic %q", buf[0:8])
	}
	if v := binary.LittleEndian.Uint16(buf[8:]); v != Version {
		return fmt.Errorf("trace: unsupported version %d", v)
	}
	h.ComputeNodes = binary.LittleEndian.Uint16(buf[10:])
	h.IONodes = binary.LittleEndian.Uint16(buf[12:])
	h.BlockBytes = binary.LittleEndian.Uint32(buf[14:])
	h.BufferBytes = binary.LittleEndian.Uint32(buf[18:])
	h.Seed = binary.LittleEndian.Uint64(buf[22:])
	return nil
}

const blockHeaderSize = 2 + 4 + 8 + 8 // node + count + sendLocal + recvCollector

// countingWriter counts the bytes that actually reach the underlying
// writer, so partial-write reporting stays accurate through the
// Writer's buffering.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Writer encodes a trace incrementally: the header up front, then one
// block at a time as WriteBlock is called. It is the streaming
// counterpart of Trace.WriteTo -- the collector (or tracegen) flushes
// each block to disk as it arrives instead of holding the whole trace
// in memory -- and it maintains the block index a Reader needs, so the
// file it just wrote can be re-read without a scan pass.
//
// Errors are sticky: after any write error every method returns it.
// Call Flush once all blocks are written.
type Writer struct {
	cw      countingWriter
	bw      *bufio.Writer
	header  Header
	index   []BlockInfo
	noIndex bool // batch WriteTo never reads the index; skip building it
	blocks  int
	off     int64 // logical offset of the next block header
	events  int64 // records written so far (flatten index of the next)
	err     error
}

// NewWriter starts an encoded trace on w by writing the header.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	tw := &Writer{header: h, off: headerSize}
	tw.cw.w = w
	tw.bw = bufio.NewWriter(&tw.cw)
	var hbuf [headerSize]byte
	h.encode(hbuf[:])
	if _, err := tw.bw.Write(hbuf[:]); err != nil {
		tw.err = err
		return tw, err
	}
	return tw, nil
}

// WriteBlock appends one block to the trace.
func (w *Writer) WriteBlock(b Block) error {
	if w.err != nil {
		return w.err
	}
	var bbuf [blockHeaderSize]byte
	binary.LittleEndian.PutUint16(bbuf[0:], b.Node)
	binary.LittleEndian.PutUint32(bbuf[2:], uint32(len(b.Events)))
	binary.LittleEndian.PutUint64(bbuf[6:], uint64(b.SendLocal))
	binary.LittleEndian.PutUint64(bbuf[14:], uint64(b.RecvCollector))
	if _, err := w.bw.Write(bbuf[:]); err != nil {
		w.err = err
		return err
	}
	var ebuf [EventSize]byte
	for i := range b.Events {
		b.Events[i].Encode(ebuf[:])
		if _, err := w.bw.Write(ebuf[:]); err != nil {
			w.err = err
			return err
		}
	}
	if !w.noIndex {
		w.index = append(w.index, BlockInfo{
			Offset:        w.off,
			StartIdx:      w.events,
			SendLocal:     b.SendLocal,
			RecvCollector: b.RecvCollector,
			Count:         uint32(len(b.Events)),
			Node:          b.Node,
		})
	}
	w.off += blockHeaderSize + int64(len(b.Events))*EventSize
	w.events += int64(len(b.Events))
	w.blocks++
	return nil
}

// Flush writes any buffered bytes through to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// BytesWritten reports the bytes that reached the underlying writer.
// After a successful Flush this is the encoded trace size; after an
// error it is the length of the partial file left behind.
func (w *Writer) BytesWritten() int64 { return w.cw.n }

// EventCount reports the event records written so far.
func (w *Writer) EventCount() int64 { return w.events }

// BlockCount reports the blocks written so far.
func (w *Writer) BlockCount() int { return w.blocks }

// Reader returns a Reader over the trace this Writer just encoded,
// reusing the index built during writing instead of re-scanning the
// file. src must read back exactly the bytes written (an *os.File
// opened for read/write, or any in-memory sink). Flush must have
// succeeded first.
func (w *Writer) Reader(src io.ReaderAt) (*Reader, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.noIndex {
		return nil, fmt.Errorf("trace: this Writer did not build an index; use NewReader")
	}
	if buffered := w.bw.Buffered(); buffered > 0 {
		return nil, fmt.Errorf("trace: %d bytes still buffered; call Flush before Reader", buffered)
	}
	return &Reader{r: src, header: w.header, index: w.index, events: w.events}, nil
}

// WriteTo serializes the trace. The layout is:
//
//	header | block*
//
// where each block is a small header (node, record count, the two
// drift-correction timestamps) followed by its fixed-size event
// records. The returned count is the bytes that reached w, so on error
// it is the size of the partial output.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	tw, err := NewWriter(w, t.Header)
	tw.noIndex = true // nothing re-reads a batch serialization through tw
	if err != nil {
		return tw.BytesWritten(), err
	}
	for _, blk := range t.Blocks {
		if err := tw.WriteBlock(blk); err != nil {
			return tw.BytesWritten(), err
		}
	}
	err = tw.Flush()
	return tw.BytesWritten(), err
}

// Read parses a trace file produced by WriteTo, materializing every
// block in memory. For bounded-memory access to large traces use
// NewReader/OpenReader instead.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hbuf [headerSize]byte
	if _, err := io.ReadFull(br, hbuf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	t := &Trace{}
	if err := t.Header.decode(hbuf[:]); err != nil {
		return nil, err
	}
	var bbuf [blockHeaderSize]byte
	var ebuf [EventSize]byte
	for {
		if _, err := io.ReadFull(br, bbuf[:]); err != nil {
			if err == io.EOF {
				return t, nil
			}
			return nil, fmt.Errorf("trace: reading block header: %w", err)
		}
		blk := Block{
			Node:          binary.LittleEndian.Uint16(bbuf[0:]),
			SendLocal:     int64(binary.LittleEndian.Uint64(bbuf[6:])),
			RecvCollector: int64(binary.LittleEndian.Uint64(bbuf[14:])),
		}
		count := binary.LittleEndian.Uint32(bbuf[2:])
		// Grow incrementally with a capped initial capacity: the count
		// field is untrusted input, and a corrupt value must hit a
		// truncation error below, not a giant up-front allocation.
		capHint := int(count)
		if capHint > 4096 {
			capHint = 4096
		}
		blk.Events = make([]Event, 0, capHint)
		for i := uint32(0); i < count; i++ {
			if _, err := io.ReadFull(br, ebuf[:]); err != nil {
				return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
			}
			var ev Event
			if err := ev.Decode(ebuf[:]); err != nil {
				return nil, err
			}
			blk.Events = append(blk.Events, ev)
		}
		t.Blocks = append(t.Blocks, blk)
	}
}
