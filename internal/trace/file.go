package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic begins every CHARISMA trace file, making it self-descriptive
// as the paper requires.
const Magic = "CHARISMA"

// Version of the on-disk format.
const Version = 1

// Header describes the traced machine and tracing configuration; it
// makes each trace file self-descriptive.
type Header struct {
	ComputeNodes uint16 // 128 on the NAS iPSC/860
	IONodes      uint16 // 10
	BlockBytes   uint32 // CFS striping unit: 4096
	BufferBytes  uint32 // per-node trace buffer: 4096
	Seed         uint64 // workload seed (synthetic traces)
}

const headerSize = 8 + 2 + 2 + 2 + 4 + 4 + 8 // magic + version + fields

func (h *Header) encode(buf []byte) {
	copy(buf[0:8], Magic)
	binary.LittleEndian.PutUint16(buf[8:], Version)
	binary.LittleEndian.PutUint16(buf[10:], h.ComputeNodes)
	binary.LittleEndian.PutUint16(buf[12:], h.IONodes)
	binary.LittleEndian.PutUint32(buf[14:], h.BlockBytes)
	binary.LittleEndian.PutUint32(buf[18:], h.BufferBytes)
	binary.LittleEndian.PutUint64(buf[22:], h.Seed)
}

func (h *Header) decode(buf []byte) error {
	if string(buf[0:8]) != Magic {
		return fmt.Errorf("trace: bad magic %q", buf[0:8])
	}
	if v := binary.LittleEndian.Uint16(buf[8:]); v != Version {
		return fmt.Errorf("trace: unsupported version %d", v)
	}
	h.ComputeNodes = binary.LittleEndian.Uint16(buf[10:])
	h.IONodes = binary.LittleEndian.Uint16(buf[12:])
	h.BlockBytes = binary.LittleEndian.Uint32(buf[14:])
	h.BufferBytes = binary.LittleEndian.Uint32(buf[18:])
	h.Seed = binary.LittleEndian.Uint64(buf[22:])
	return nil
}

const blockHeaderSize = 2 + 4 + 8 + 8 // node + count + sendLocal + recvCollector

// WriteTo serializes the trace. The layout is:
//
//	header | block*
//
// where each block is a small header (node, record count, the two
// drift-correction timestamps) followed by its fixed-size event
// records.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	var hbuf [headerSize]byte
	t.Header.encode(hbuf[:])
	n, err := bw.Write(hbuf[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var bbuf [blockHeaderSize]byte
	var ebuf [EventSize]byte
	for _, blk := range t.Blocks {
		binary.LittleEndian.PutUint16(bbuf[0:], blk.Node)
		binary.LittleEndian.PutUint32(bbuf[2:], uint32(len(blk.Events)))
		binary.LittleEndian.PutUint64(bbuf[6:], uint64(blk.SendLocal))
		binary.LittleEndian.PutUint64(bbuf[14:], uint64(blk.RecvCollector))
		n, err = bw.Write(bbuf[:])
		written += int64(n)
		if err != nil {
			return written, err
		}
		for i := range blk.Events {
			blk.Events[i].Encode(ebuf[:])
			n, err = bw.Write(ebuf[:])
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// Read parses a trace file produced by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hbuf [headerSize]byte
	if _, err := io.ReadFull(br, hbuf[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	t := &Trace{}
	if err := t.Header.decode(hbuf[:]); err != nil {
		return nil, err
	}
	var bbuf [blockHeaderSize]byte
	var ebuf [EventSize]byte
	for {
		if _, err := io.ReadFull(br, bbuf[:]); err != nil {
			if err == io.EOF {
				return t, nil
			}
			return nil, fmt.Errorf("trace: reading block header: %w", err)
		}
		blk := Block{
			Node:          binary.LittleEndian.Uint16(bbuf[0:]),
			SendLocal:     int64(binary.LittleEndian.Uint64(bbuf[6:])),
			RecvCollector: int64(binary.LittleEndian.Uint64(bbuf[14:])),
		}
		count := binary.LittleEndian.Uint32(bbuf[2:])
		blk.Events = make([]Event, count)
		for i := uint32(0); i < count; i++ {
			if _, err := io.ReadFull(br, ebuf[:]); err != nil {
				return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
			}
			if err := blk.Events[i].Decode(ebuf[:]); err != nil {
				return nil, err
			}
		}
		t.Blocks = append(t.Blocks, blk)
	}
}
