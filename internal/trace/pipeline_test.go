package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// fakeClock is a settable clock for tests.
type fakeClock struct{ t sim.Time }

func (c *fakeClock) Now() sim.Time { return c.t }

func testHeader() Header {
	return Header{ComputeNodes: 128, IONodes: 10, BlockBytes: 4096, BufferBytes: 4096, Seed: 1}
}

func TestNodeBufferFlushesWhenFull(t *testing.T) {
	clk := &fakeClock{}
	var blocks []Block
	limit := DefaultBufferBytes / EventSize
	b := NewNodeBuffer(3, clk, DefaultBufferBytes, func(blk Block) { blocks = append(blocks, blk) })
	for i := 0; i < limit; i++ {
		clk.t += 10
		b.Record(Event{Type: EvRead, File: 1, Size: 100})
	}
	if len(blocks) != 1 {
		t.Fatalf("expected 1 flush after %d records, got %d", limit, len(blocks))
	}
	if len(blocks[0].Events) != limit {
		t.Fatalf("block has %d events", len(blocks[0].Events))
	}
	if blocks[0].Node != 3 {
		t.Fatalf("block node = %d", blocks[0].Node)
	}
	if b.Recorded() != int64(limit) || b.Flushes() != 1 {
		t.Fatalf("counters: recorded=%d flushes=%d", b.Recorded(), b.Flushes())
	}
}

func TestNodeBufferStampsNodeAndTime(t *testing.T) {
	clk := &fakeClock{t: 777}
	var got Block
	b := NewNodeBuffer(9, clk, EventSize, func(blk Block) { got = blk })
	b.Record(Event{Type: EvOpen, Node: 55, Time: 1}) // stamps override caller values
	if len(got.Events) != 1 {
		t.Fatal("tiny buffer should flush immediately")
	}
	if got.Events[0].Node != 9 || got.Events[0].Time != 777 {
		t.Fatalf("stamping wrong: %+v", got.Events[0])
	}
}

func TestNodeBufferManualFlush(t *testing.T) {
	clk := &fakeClock{}
	flushed := 0
	b := NewNodeBuffer(0, clk, DefaultBufferBytes, func(Block) { flushed++ })
	b.Flush() // empty: no-op
	if flushed != 0 {
		t.Fatal("empty flush shipped a block")
	}
	b.Record(Event{Type: EvRead})
	b.Flush()
	if flushed != 1 {
		t.Fatalf("flushes = %d", flushed)
	}
}

func TestBufferingReducesMessages(t *testing.T) {
	// The paper: buffering cut trace messages by >90%. One block per
	// ~99 records vs one per record.
	clk := &fakeClock{}
	blocks := 0
	b := NewNodeBuffer(0, clk, DefaultBufferBytes, func(Block) { blocks++ })
	const records = 10000
	for i := 0; i < records; i++ {
		b.Record(Event{Type: EvRead})
	}
	b.Flush()
	if frac := float64(blocks) / records; frac > 0.05 {
		t.Fatalf("buffering sent %d messages for %d records (%.1f%%)", blocks, records, 100*frac)
	}
}

func TestCollectorStampsArrival(t *testing.T) {
	clk := &fakeClock{t: 5000}
	c := NewCollector(clk, testHeader())
	c.Deliver(Block{Node: 1, SendLocal: 4000, Events: []Event{{Type: EvRead}}})
	clk.t = 6000
	c.Deliver(Block{Node: 2, SendLocal: 4500, Events: []Event{{Type: EvWrite}}})
	blocks := c.Blocks()
	if blocks[0].RecvCollector != 5000 || blocks[1].RecvCollector != 6000 {
		t.Fatalf("arrival stamps: %d, %d", blocks[0].RecvCollector, blocks[1].RecvCollector)
	}
	if c.EventCount() != 2 {
		t.Fatalf("event count = %d", c.EventCount())
	}
	if c.Header() != testHeader() {
		t.Fatal("header mismatch")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	tr := &Trace{
		Header: testHeader(),
		Blocks: []Block{
			{Node: 1, SendLocal: 100, RecvCollector: 150, Events: []Event{
				{Time: 10, Type: EvOpen, File: 7, Job: 3, Node: 1, Mode: 0, Flags: FlagRead},
				{Time: 20, Type: EvRead, File: 7, Job: 3, Node: 1, Offset: 0, Size: 1024},
			}},
			{Node: 2, SendLocal: 130, RecvCollector: 170, Events: []Event{
				{Time: 15, Type: EvWrite, File: 8, Job: 3, Node: 2, Offset: 4096, Size: 4096},
			}},
			{Node: 1, SendLocal: 300, RecvCollector: 340, Events: nil},
		},
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != tr.Header {
		t.Fatalf("header: %+v vs %+v", got.Header, tr.Header)
	}
	if len(got.Blocks) != len(tr.Blocks) {
		t.Fatalf("blocks: %d vs %d", len(got.Blocks), len(tr.Blocks))
	}
	for i := range tr.Blocks {
		a, b := got.Blocks[i], tr.Blocks[i]
		if a.Node != b.Node || a.SendLocal != b.SendLocal || a.RecvCollector != b.RecvCollector {
			t.Fatalf("block %d header mismatch", i)
		}
		if len(a.Events) != len(b.Events) {
			t.Fatalf("block %d: %d vs %d events", i, len(a.Events), len(b.Events))
		}
		for j := range b.Events {
			if a.Events[j] != b.Events[j] {
				t.Fatalf("block %d event %d: %+v vs %+v", i, j, a.Events[j], b.Events[j])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file at all......"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReadRejectsTruncatedBlock(t *testing.T) {
	tr := &Trace{Header: testHeader(), Blocks: []Block{
		{Node: 1, Events: []Event{{Type: EvRead}, {Type: EvWrite}}},
	}}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestFitClocksRecoverOffsetAndDrift(t *testing.T) {
	// Node 1's clock: local = (collector - 1000) * (1/1.0005),
	// i.e. collector = 1000 + 1.0005*local. Delivery delay is a
	// constant 50 on top.
	tr := &Trace{Header: testHeader()}
	for i := 0; i < 20; i++ {
		local := int64(i) * 1_000_000
		collector := 1000 + int64(1.0005*float64(local)) + 50
		tr.Blocks = append(tr.Blocks, Block{Node: 1, SendLocal: local, RecvCollector: collector})
	}
	fit := FitClocks(tr)[1]
	if fit.Slope < 1.0004 || fit.Slope > 1.0006 {
		t.Fatalf("slope = %v, want ~1.0005", fit.Slope)
	}
	// Offset should absorb the constant base offset plus delivery delay.
	if fit.Offset < 900 || fit.Offset > 1200 {
		t.Fatalf("offset = %v, want ~1050", fit.Offset)
	}
}

func TestFitClocksSingleBlockFallsBackToOffset(t *testing.T) {
	tr := &Trace{Header: testHeader(), Blocks: []Block{
		{Node: 4, SendLocal: 1000, RecvCollector: 2500},
	}}
	fit := FitClocks(tr)[4]
	if fit.Slope != 1 {
		t.Fatalf("slope = %v, want 1 with a single sample", fit.Slope)
	}
	if fit.Offset != 1500 {
		t.Fatalf("offset = %v, want 1500", fit.Offset)
	}
}

func TestFitClocksRejectsDegenerateSlope(t *testing.T) {
	// Two blocks sent at (nearly) the same local time but received far
	// apart would fit a wild slope; the fit must fall back to offset.
	tr := &Trace{Header: testHeader(), Blocks: []Block{
		{Node: 2, SendLocal: 1000, RecvCollector: 10000},
		{Node: 2, SendLocal: 1001, RecvCollector: 90000},
	}}
	fit := FitClocks(tr)[2]
	if fit.Slope != 1 {
		t.Fatalf("slope = %v, want fallback 1", fit.Slope)
	}
}

func TestPostprocessOrdersAcrossDriftingNodes(t *testing.T) {
	// Two nodes with different clock offsets; true event order
	// alternates between them. Raw sorting interleaves wrongly;
	// corrected sorting recovers the true order.
	tr := &Trace{Header: testHeader()}
	// Node 1's local clock = true + 0; node 2's local = true - 100000.
	// True times: node1 events at 1000, 3000, ...; node2 at 2000, 4000...
	var n1, n2 []Event
	for i := 0; i < 10; i++ {
		trueT := int64(1000 + 2000*i)
		n1 = append(n1, Event{Type: EvRead, Node: 1, Time: trueT, File: uint64(trueT)})
		trueT = int64(2000 + 2000*i)
		n2 = append(n2, Event{Type: EvWrite, Node: 2, Time: trueT - 100000, File: uint64(trueT)})
	}
	// Each node ships one block; send/recv pairs expose the offsets.
	tr.Blocks = []Block{
		{Node: 1, SendLocal: 21000, RecvCollector: 21050, Events: n1},
		{Node: 2, SendLocal: 20000 - 100000, RecvCollector: 20050, Events: n2},
	}
	trueTime := func(e Event) int64 { return int64(e.File) } // stashed above
	corrected := Postprocess(tr)
	raw := PostprocessRaw(tr)
	if errRaw := OrderError(raw, trueTime); errRaw == 0 {
		t.Fatal("test not exercising misordering: raw order already perfect")
	}
	if errCorr := OrderError(corrected, trueTime); errCorr != 0 {
		t.Fatalf("corrected order still has %d inversions", errCorr)
	}
}

func TestPostprocessStableWithinNode(t *testing.T) {
	tr := &Trace{Header: testHeader(), Blocks: []Block{
		{Node: 1, SendLocal: 100, RecvCollector: 100, Events: []Event{
			{Type: EvOpen, Time: 50, File: 1},
			{Type: EvRead, Time: 50, File: 1, Offset: 0},
			{Type: EvRead, Time: 50, File: 1, Offset: 100},
		}},
	}}
	events := Postprocess(tr)
	if events[0].Type != EvOpen || events[1].Offset != 0 || events[2].Offset != 100 {
		t.Fatalf("tied events reordered: %+v", events)
	}
}

// Property: postprocessing preserves the multiset of events (count and
// per-type counts), only changing timestamps and order.
func TestQuickPostprocessConserves(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := &Trace{Header: testHeader()}
		blk := Block{Node: 1, SendLocal: 1000, RecvCollector: 1100}
		for _, r := range raw {
			blk.Events = append(blk.Events, Event{
				Type: EventType(r%7) + 1,
				Time: int64(r),
				File: uint64(r),
			})
		}
		tr.Blocks = []Block{blk}
		out := Postprocess(tr)
		if len(out) != len(blk.Events) {
			return false
		}
		counts := map[uint64]int{}
		for _, e := range blk.Events {
			counts[e.File]++
		}
		for _, e := range out {
			counts[e.File]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: file round trip is the identity for arbitrary small traces.
func TestQuickFileRoundTrip(t *testing.T) {
	f := func(nodes []uint8, times []int64) bool {
		tr := &Trace{Header: testHeader()}
		for i, n := range nodes {
			blk := Block{Node: uint16(n), SendLocal: int64(i * 100), RecvCollector: int64(i*100 + 7)}
			if i < len(times) {
				blk.Events = append(blk.Events, Event{Type: EvRead, Time: times[i], File: uint64(i)})
			}
			tr.Blocks = append(tr.Blocks, blk)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(got.Blocks) != len(tr.Blocks) {
			return false
		}
		for i := range tr.Blocks {
			if got.Blocks[i].Node != tr.Blocks[i].Node ||
				len(got.Blocks[i].Events) != len(tr.Blocks[i].Events) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
