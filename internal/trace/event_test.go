package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventRoundTrip(t *testing.T) {
	in := Event{
		Time:   123456789,
		File:   0xdeadbeef,
		Offset: -1, // seeks can be relative in principle; codec must keep sign
		Size:   1 << 40,
		Job:    42,
		Node:   127,
		Type:   EvWrite,
		Mode:   3,
		Flags:  FlagRead | FlagWrite,
	}
	var buf [EventSize]byte
	if n := in.Encode(buf[:]); n != EventSize {
		t.Fatalf("encode returned %d", n)
	}
	var out Event
	if err := out.Decode(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecodeRejectsShortBuffer(t *testing.T) {
	var e Event
	if err := e.Decode(make([]byte, EventSize-1)); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	var buf [EventSize]byte
	ev := Event{Type: EvRead}
	ev.Encode(buf[:])
	buf[50] = 200 // corrupt the type byte
	var out Event
	if err := out.Decode(buf[:]); err == nil {
		t.Fatal("unknown type accepted")
	}
	buf[50] = 0 // EvInvalid
	if err := out.Decode(buf[:]); err == nil {
		t.Fatal("EvInvalid accepted")
	}
}

func TestEventTypeStrings(t *testing.T) {
	names := map[EventType]string{
		EvJobStart: "JobStart", EvJobEnd: "JobEnd", EvOpen: "Open",
		EvClose: "Close", EvRead: "Read", EvWrite: "Write",
		EvSeek: "Seek", EvDelete: "Delete",
	}
	for ty, want := range names {
		if ty.String() != want {
			t.Errorf("%d.String() = %q, want %q", ty, ty.String(), want)
		}
	}
	if !strings.Contains(EventType(99).String(), "99") {
		t.Error("unknown type string should include the raw value")
	}
}

func TestIsData(t *testing.T) {
	if !(&Event{Type: EvRead}).IsData() || !(&Event{Type: EvWrite}).IsData() {
		t.Fatal("read/write should be data events")
	}
	if (&Event{Type: EvOpen}).IsData() {
		t.Fatal("open is not a data event")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Type: EvRead, Node: 5, File: 7, Offset: 100, Size: 200}
	s := e.String()
	for _, frag := range []string{"Read", "node=5", "file=7", "off=100", "size=200"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

// Property: encode/decode is the identity on valid events.
func TestQuickEventRoundTrip(t *testing.T) {
	f := func(timeV int64, file uint64, off, size int64, job uint32, node uint16, tyRaw, mode, flags uint8) bool {
		in := Event{
			Time: timeV, File: file, Offset: off, Size: size,
			Job: job, Node: node,
			Type:  EventType(tyRaw%uint8(evMax-1)) + 1,
			Mode:  mode,
			Flags: flags,
		}
		var buf [EventSize]byte
		in.Encode(buf[:])
		var out Event
		if err := out.Decode(buf[:]); err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStridedEventHelpers(t *testing.T) {
	ev := Event{Type: EvReadStrided, Offset: 1000, Size: 100, Stride: 500, Count: 4}
	if !ev.IsData() || !ev.IsStrided() || ev.IsWriteOp() {
		t.Fatal("strided read classification wrong")
	}
	if ev.Bytes() != 400 {
		t.Fatalf("bytes = %d", ev.Bytes())
	}
	var offs []int64
	ev.Records(func(off, size int64) {
		if size != 100 {
			t.Fatalf("record size %d", size)
		}
		offs = append(offs, off)
	})
	want := []int64{1000, 1500, 2000, 2500}
	if len(offs) != len(want) {
		t.Fatalf("records = %v", offs)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("records = %v", offs)
		}
	}

	w := Event{Type: EvWriteStrided, Size: 10, Count: 2, Stride: 20}
	if !w.IsWriteOp() {
		t.Fatal("strided write should be a write op")
	}
	plain := Event{Type: EvRead, Offset: 7, Size: 3}
	if plain.Bytes() != 3 {
		t.Fatal("plain bytes wrong")
	}
	n := 0
	plain.Records(func(off, size int64) { n++ })
	if n != 1 {
		t.Fatal("plain read should have one record")
	}
}

func TestStridedRoundTrip(t *testing.T) {
	in := Event{Type: EvWriteStrided, Offset: 4096, Size: 512, Stride: 8192, Count: 99, File: 3, Job: 9, Node: 12}
	var buf [EventSize]byte
	in.Encode(buf[:])
	var out Event
	if err := out.Decode(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
}
