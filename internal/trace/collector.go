package trace

// Collector models the data-collection process that ran on the
// iPSC/860 service node: it receives blocks of event records from
// compute nodes, stamps each with its own clock on arrival, and
// accumulates them into a trace. The real collector wrote to CFS in
// large sequential writes; here the trace lives in memory and can be
// serialized with WriteTo (see file.go).
type Collector struct {
	clock  Clock
	header Header
	blocks []Block
}

// NewCollector returns a collector using the given clock (normally the
// service node's drifting clock) and trace header.
func NewCollector(clock Clock, header Header) *Collector {
	return &Collector{clock: clock, header: header}
}

// SetArena seeds the collector's block slice from the arena's pooled
// backing (returned there by Arena.ReclaimTrace). Call it before the
// first Deliver.
func (c *Collector) SetArena(a *Arena) {
	if a != nil && len(c.blocks) == 0 {
		c.blocks = a.takeBlocks()
	}
}

// Deliver receives one block from the network, stamping its arrival
// time with the collector's clock.
func (c *Collector) Deliver(b Block) {
	b.RecvCollector = int64(c.clock.Now())
	c.blocks = append(c.blocks, b)
}

// Header returns the trace header.
func (c *Collector) Header() Header { return c.header }

// Blocks returns the collected blocks in arrival order.
func (c *Collector) Blocks() []Block { return c.blocks }

// EventCount returns the total number of collected event records.
func (c *Collector) EventCount() int64 {
	var n int64
	for _, b := range c.blocks {
		n += int64(len(b.Events))
	}
	return n
}

// Trace bundles a header with collected blocks; it is what the
// postprocessor and the file reader/writer operate on.
type Trace struct {
	Header Header
	Blocks []Block
}

// Trace returns the collected trace.
func (c *Collector) Trace() *Trace {
	return &Trace{Header: c.header, Blocks: c.blocks}
}
