package trace

// Collector models the data-collection process that ran on the
// iPSC/860 service node: it receives blocks of event records from
// compute nodes, stamps each with its own clock on arrival, and
// accumulates them into a trace. The real collector wrote to CFS in
// large sequential writes; a BlockSink (normally a Writer over a
// file) reproduces that streaming mode -- each block is spilled as it
// arrives and its buffer recycled, so the collector's footprint stays
// O(in-flight blocks) however long the trace runs. Without a sink the
// trace accumulates in memory and can be serialized with WriteTo (see
// file.go).
type Collector struct {
	clock  Clock
	header Header
	blocks []Block
	arena  *Arena

	sink    BlockSink
	sinkErr error

	delivered int64
	events    int64
}

// BlockSink receives collected blocks as they arrive; *Writer
// implements it.
type BlockSink interface {
	WriteBlock(Block) error
}

// NewCollector returns a collector using the given clock (normally the
// service node's drifting clock) and trace header.
func NewCollector(clock Clock, header Header) *Collector {
	return &Collector{clock: clock, header: header}
}

// SetArena seeds the collector's block slice from the arena's pooled
// backing (returned there by Arena.ReclaimTrace) and, in sink mode,
// lets the collector recycle each spilled block's event chunk. Call it
// before the first Deliver.
func (c *Collector) SetArena(a *Arena) {
	c.arena = a
	if a != nil && len(c.blocks) == 0 {
		c.blocks = a.takeBlocks()
	}
}

// SetSink switches the collector to streaming mode: every delivered
// block is written to the sink (after arrival stamping) instead of
// retained, and -- when an arena is attached -- its event chunk goes
// straight back to the pool. Call it before the first Deliver; the
// first sink error is sticky and reported by Err.
func (c *Collector) SetSink(s BlockSink) { c.sink = s }

// Err returns the first error the sink reported, if any.
func (c *Collector) Err() error { return c.sinkErr }

// Deliver receives one block from the network, stamping its arrival
// time with the collector's clock.
func (c *Collector) Deliver(b Block) {
	b.RecvCollector = int64(c.clock.Now())
	c.delivered++
	c.events += int64(len(b.Events))
	if c.sink != nil {
		if c.sinkErr == nil {
			c.sinkErr = c.sink.WriteBlock(b)
		}
		if c.arena != nil {
			c.arena.putChunk(b.Events)
		}
		return
	}
	c.blocks = append(c.blocks, b)
}

// Header returns the trace header.
func (c *Collector) Header() Header { return c.header }

// Blocks returns the collected blocks in arrival order (empty in
// streaming mode).
func (c *Collector) Blocks() []Block { return c.blocks }

// BlockCount returns the number of blocks delivered so far, retained
// or streamed.
func (c *Collector) BlockCount() int64 { return c.delivered }

// EventCount returns the total number of collected event records,
// retained or streamed.
func (c *Collector) EventCount() int64 { return c.events }

// Trace bundles a header with collected blocks; it is what the
// postprocessor and the file reader/writer operate on.
type Trace struct {
	Header Header
	Blocks []Block
}

// Trace returns the collected trace (header-only in streaming mode).
func (c *Collector) Trace() *Trace {
	return &Trace{Header: c.header, Blocks: c.blocks}
}
