package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceFileRoundTrip is the .trc format's robustness and
// canonicality contract, fuzzing both directions at once:
//
//   - decode(data): NewReader and the legacy Read must never panic,
//     must agree on what is a valid trace, and for every accepted
//     file re-encoding the decoded blocks must reproduce the input
//     byte for byte (the encoding is canonical: every byte of every
//     record is meaningful).
//   - encode(events(data)): an arbitrary event sequence derived from
//     the input must survive encode -> decode unchanged.
//
// Truncated or corrupt files must be rejected with descriptive
// errors; the streaming merge must visit exactly the indexed number
// of records on every accepted file.
func FuzzTraceFileRoundTrip(f *testing.F) {
	// Seed with valid encodings of representative traces, plus
	// truncations and mutations the decoder must reject.
	seed := func(tr *Trace) []byte {
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	empty := seed(&Trace{Header: testHeader()})
	multi := seed(&Trace{Header: testHeader(), Blocks: []Block{
		{Node: 1, SendLocal: 100, RecvCollector: 150, Events: []Event{
			{Time: 10, Type: EvOpen, File: 7, Job: 3, Node: 1, Flags: FlagRead},
			{Time: 20, Type: EvRead, File: 7, Job: 3, Node: 1, Size: 1024},
			{Time: 30, Type: EvReadStrided, File: 7, Job: 3, Node: 1, Size: 64, Stride: 256, Count: 8},
		}},
		{Node: 2, SendLocal: 130, RecvCollector: 170, Events: []Event{
			{Time: 15, Type: EvWrite, File: 8, Job: 3, Node: 2, Offset: 4096, Size: 4096},
		}},
		{Node: 1, SendLocal: 300, RecvCollector: 340, Events: nil},
	}})
	f.Add(empty)
	f.Add(multi)
	f.Add(multi[:len(multi)-7])
	f.Add(multi[:headerSize+blockHeaderSize-1])
	f.Add([]byte("CHARISMA"))
	f.Add([]byte("not a trace at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data), int64(len(data)))
		legacy, legacyErr := Read(bytes.NewReader(data))

		if err != nil {
			// Structurally invalid: the legacy decoder must reject it
			// too (it may fail on either framing or payload).
			if legacyErr == nil {
				t.Fatalf("NewReader rejected (%v) but Read accepted", err)
			}
			return
		}

		// Structurally valid. Walk the blocks; payload errors (bad
		// event types) must match the legacy decoder's verdict.
		var blocks []Block
		walkErr := rd.Blocks(func(b Block) error {
			cp := b
			cp.Events = append([]Event(nil), b.Events...)
			blocks = append(blocks, cp)
			return nil
		})
		if (walkErr == nil) != (legacyErr == nil) {
			t.Fatalf("decoders disagree: Blocks err=%v, Read err=%v", walkErr, legacyErr)
		}
		if walkErr != nil {
			return
		}

		// Accepted: re-encoding must be the identity.
		var out bytes.Buffer
		w, err := NewWriter(&out, rd.Header())
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			if err := w.WriteBlock(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("re-encoding changed the file: %d -> %d bytes", len(data), out.Len())
		}
		if len(blocks) != len(legacy.Blocks) {
			t.Fatalf("decoders found %d vs %d blocks", len(blocks), len(legacy.Blocks))
		}

		// The merge must visit exactly the indexed record count, in
		// non-panicking fashion, corrected and raw.
		var n int64
		if err := rd.Events(func(*Event) error { n++; return nil }); err != nil {
			t.Fatalf("Events failed on accepted file: %v", err)
		}
		if n != rd.EventCount() {
			t.Fatalf("merge visited %d of %d records", n, rd.EventCount())
		}
		n = 0
		if err := rd.RawEvents(func(*Event) error { n++; return nil }); err != nil || n != rd.EventCount() {
			t.Fatalf("raw merge visited %d of %d records (err=%v)", n, rd.EventCount(), err)
		}

		// Second direction: interpret the input as an arbitrary event
		// sequence; it must survive encode -> decode unchanged.
		var evs []Event
		for i := 0; i+EventSize <= len(data) && len(evs) < 512; i += EventSize {
			var e Event
			if e.Decode(data[i:]) == nil {
				evs = append(evs, e)
			}
		}
		if len(evs) == 0 {
			return
		}
		tr := &Trace{Header: testHeader()}
		for i := 0; i < len(evs); i += 5 {
			end := i + 5
			if end > len(evs) {
				end = len(evs)
			}
			tr.Blocks = append(tr.Blocks, Block{
				Node: uint16(i), SendLocal: int64(i), RecvCollector: int64(i + 1),
				Events: evs[i:end],
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		if len(got.Blocks) != len(tr.Blocks) {
			t.Fatalf("round trip lost blocks: %d vs %d", len(got.Blocks), len(tr.Blocks))
		}
		for i := range tr.Blocks {
			if len(got.Blocks[i].Events) != len(tr.Blocks[i].Events) {
				t.Fatalf("block %d round trip lost events", i)
			}
			for j := range tr.Blocks[i].Events {
				if got.Blocks[i].Events[j] != tr.Blocks[i].Events[j] {
					t.Fatalf("block %d event %d changed in round trip", i, j)
				}
			}
		}
	})
}
