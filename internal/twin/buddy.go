package twin

import (
	"fmt"
	"sort"
)

// buddyAllocator mirrors the machine package's subcube allocator (which
// is unexported there): power-of-two blocks of node IDs handed out
// first-fit with classic buddy splitting and coalescing. The twin must
// replicate the allocator exactly — job placement decides which compute
// nodes talk to which I/O-node hosts, and therefore every network
// latency in the walk.
type buddyAllocator struct {
	totalOrder int           // machine is 2^totalOrder nodes
	free       map[int][]int // order -> sorted base addresses of free blocks
	allocated  map[int]int   // base -> order of live allocations
}

func newBuddyAllocator(totalOrder int) *buddyAllocator {
	a := &buddyAllocator{
		totalOrder: totalOrder,
		free:       make(map[int][]int),
		allocated:  make(map[int]int),
	}
	a.free[totalOrder] = []int{0}
	return a
}

// orderFor returns log2(nodes) and whether nodes is a power of two.
func orderFor(nodes int) (int, bool) {
	if nodes <= 0 {
		return 0, false
	}
	order := 0
	for n := nodes; n > 1; n >>= 1 {
		if n&1 == 1 {
			return 0, false
		}
		order++
	}
	return order, true
}

// Alloc claims a subcube of the given node count, returning its base
// node ID, or ok=false when no subcube of that size is free.
func (a *buddyAllocator) Alloc(nodes int) (base int, ok bool) {
	order, pow2 := orderFor(nodes)
	if !pow2 || order > a.totalOrder {
		panic(fmt.Sprintf("twin: bad allocation size %d", nodes))
	}
	from := -1
	for o := order; o <= a.totalOrder; o++ {
		if len(a.free[o]) > 0 {
			from = o
			break
		}
	}
	if from < 0 {
		return 0, false
	}
	base = a.free[from][0]
	a.free[from] = a.free[from][1:]
	for o := from; o > order; o-- {
		buddy := base + (1 << (o - 1))
		a.insertFree(o-1, buddy)
	}
	a.allocated[base] = order
	return base, true
}

// Free returns a subcube to the pool, coalescing buddies.
func (a *buddyAllocator) Free(base int) {
	order, ok := a.allocated[base]
	if !ok {
		panic(fmt.Sprintf("twin: freeing unallocated subcube at %d", base))
	}
	delete(a.allocated, base)
	for order < a.totalOrder {
		buddy := base ^ (1 << order)
		idx := a.findFree(order, buddy)
		if idx < 0 {
			break
		}
		a.free[order] = append(a.free[order][:idx], a.free[order][idx+1:]...)
		if buddy < base {
			base = buddy
		}
		order++
	}
	a.insertFree(order, base)
}

func (a *buddyAllocator) insertFree(order, base int) {
	list := a.free[order]
	i := sort.SearchInts(list, base)
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = base
	a.free[order] = list
}

func (a *buddyAllocator) findFree(order, base int) int {
	list := a.free[order]
	i := sort.SearchInts(list, base)
	if i < len(list) && list[i] == base {
		return i
	}
	return -1
}
