package twin

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// engine is the twin's timing machine: the simulated iPSC/860 stripped
// of everything that does not move time. It reuses the real CFS stack
// (client, I/O nodes, buffer caches, disks, fault injector) and the
// real hypercube latency model, and runs the real archetype bodies via
// machine.FileSys — but builds no trace buffers, no collector, and no
// drift clocks, which is what the full machine spends most of its
// memory and much of its cycles on. It implements workload.Target, so
// a Generator installs the identical preloads and job schedule onto it.
type engine struct {
	k        *sim.Kernel
	cfg      machine.Config
	rng      *stats.RNG
	net      topo.Interconnect
	ioAttach []topo.Attachment
	fs       *cfs.FileSystem
	injector *faults.Injector

	alloc   *buddyAllocator
	queue   []queuedJob
	running map[uint32]*runningJob
	nextJob uint32
	jobs    int
}

type queuedJob struct {
	spec machine.JobSpec
	id   uint32
}

type runningJob struct {
	id      uint32
	base    int
	pending int // node programs still running
}

// transport adapts the hypercube to cfs.Transport, exactly as the
// machine package does: cube path to the I/O node's host plus one
// peripheral hop.
type transport struct{ e *engine }

func (t transport) ToIONode(computeNode, ioNode, bytes int) sim.Time {
	return t.e.ioAttach[ioNode].LatencyFrom(computeNode, bytes)
}

func (t transport) FromIONode(ioNode, computeNode, bytes int) sim.Time {
	return t.e.ioAttach[ioNode].LatencyFrom(computeNode, bytes)
}

// newEngine assembles the timing machine, mirroring machine.NewWith's
// construction order (network, allocator, I/O attachments, file
// system, fault wiring) so a faulted twin reconstructs the identical
// injector windows from the same seed.
func newEngine(k *sim.Kernel, cfg machine.Config) *engine {
	order, pow2 := orderFor(cfg.ComputeNodes)
	if !pow2 {
		panic(fmt.Sprintf("twin: compute nodes %d not a power of two", cfg.ComputeNodes))
	}
	e := &engine{
		k:       k,
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed),
		net:     topo.New(k, cfg.ComputeNodes, cfg.Net),
		alloc:   newBuddyAllocator(order),
		running: make(map[uint32]*runningJob),
	}
	for i := 0; i < cfg.FS.IONodes; i++ {
		host := i * cfg.ComputeNodes / cfg.FS.IONodes
		e.ioAttach = append(e.ioAttach, e.net.Attach(host))
	}
	e.fs = cfs.New(k, cfg.FS, transport{e})
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(cfg.FS.IONodes, e.net.LinkClasses()); err != nil {
			panic(fmt.Sprintf("twin: %v", err))
		}
		// Split does not consume e.rng's state, so the injector draws
		// the same degradation windows as the machine's.
		e.injector = faults.NewInjector(cfg.Faults, cfg.FS.IONodes, e.rng)
		if deg := e.injector.Net(); deg != nil {
			e.net.SetDegrader(deg)
		}
		wear, worn := e.injector.DiskWear()
		for i := 0; i < cfg.FS.IONodes; i++ {
			if ns := e.injector.Node(i); ns != nil {
				e.fs.IONode(i).SetFault(ns)
			}
			if worn {
				e.fs.IONode(i).Disk().SetWear(disk.Wear{
					SeekMul:     wear.SeekMultiplier,
					TransferMul: wear.TransferMultiplier,
					RampPerHour: wear.RampPerHour,
					Now:         k.Now,
				})
			}
		}
	}
	return e
}

// fsAdapter lifts *cfs.Client to machine.FileSys (Open must return the
// interface type).
type fsAdapter struct{ c *cfs.Client }

func (f fsAdapter) Open(p *sim.Proc, name string, flags int, mode cfs.IOMode) (machine.File, error) {
	h, err := f.c.Open(p, name, flags, mode)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func (f fsAdapter) Delete(p *sim.Proc, name string) error { return f.c.Delete(p, name) }

// ComputeNodes implements workload.Target.
func (e *engine) ComputeNodes() int { return e.cfg.ComputeNodes }

// Preload implements workload.Target.
func (e *engine) Preload(name string, size int64) error {
	_, err := e.fs.Preload(name, size)
	return err
}

// SubmitAt implements workload.Target.
func (e *engine) SubmitAt(t sim.Time, spec machine.JobSpec) {
	e.k.At(t, func() { e.submit(spec) })
}

// submit mirrors machine.Submit: enqueue, then start everything that
// fits in queue order (first-fit with backfill).
func (e *engine) submit(spec machine.JobSpec) {
	if _, pow2 := orderFor(spec.Nodes); !pow2 || spec.Nodes > e.cfg.ComputeNodes {
		panic(fmt.Sprintf("twin: job wants %d nodes", spec.Nodes))
	}
	e.nextJob++
	e.queue = append(e.queue, queuedJob{spec: spec, id: e.nextJob})
	e.trySchedule()
}

func (e *engine) trySchedule() {
	kept := e.queue[:0]
	for _, qj := range e.queue {
		if base, ok := e.alloc.Alloc(qj.spec.Nodes); ok {
			e.startJob(qj, base)
		} else {
			kept = append(kept, qj)
		}
	}
	e.queue = kept
}

// startJob mirrors machine.startJob minus tracing: every rank gets an
// untraced CFS client and runs the real job body.
func (e *engine) startJob(qj queuedJob, base int) {
	spec := qj.spec
	rj := &runningJob{id: qj.id, base: base, pending: spec.Nodes}
	e.running[qj.id] = rj
	e.jobs++
	for rank := 0; rank < spec.Nodes; rank++ {
		node := base + rank
		ctx := &machine.NodeCtx{
			Node:     node,
			Rank:     rank,
			JobNodes: spec.Nodes,
			JobID:    qj.id,
		}
		client := cfs.NewClient(e.fs, qj.id, node, cfs.NopTracer{})
		ctx.CFS = fsAdapter{client}
		e.k.Spawn(fmt.Sprintf("twin/job%d/node%d", qj.id, node), func(p *sim.Proc) {
			ctx.P = p
			if spec.Body != nil {
				spec.Body(ctx)
			}
			client.Release()
			e.nodeDone(rj)
		})
	}
}

func (e *engine) nodeDone(rj *runningJob) {
	rj.pending--
	if rj.pending > 0 {
		return
	}
	e.alloc.Free(rj.base)
	delete(e.running, rj.id)
	e.trySchedule()
}
