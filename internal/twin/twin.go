// Package twin is the analytical twin of the simulated machine: an
// instant what-if layer that answers "what would this configuration's
// I/O queues look like?" without running the full traced study.
//
// The twin has two halves. The walking half replays the exact workload
// — the same generator, the same archetype bodies (via the
// machine.FileSys interface), the same CFS clients, I/O nodes, buffer
// caches, disks, fault windows, and hypercube latencies — on a
// stripped-down machine with no tracing pipeline, no collector, and no
// drift clocks, accumulating each I/O node's arrival and service
// moments. The analytical half treats each I/O node as an M/G/1 queue
// and cross-checks the walk with the Pollaczek–Khinchine formula:
//
//	Wq = λ·E[S²] / 2(1−ρ)
//
// with the service second moment derived from the drive's closed-form
// random-access distribution (disk.Config.RandomAccessMoments). Where
// the two halves disagree, the gap itself is informative: the paper's
// workload arrives in synchronized per-job waves, not as a Poisson
// stream, so the realization-aware walk is the prediction and the
// closed form is the independence baseline it is compared against.
//
// Predictions carry no Inf or NaN anywhere: a node at or past
// saturation (ρ ≥ 1) is flagged Saturated instead of reporting an
// infinite wait, and zero-traffic nodes report zeros.
package twin

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

// NodePrediction is the M/G/1 view of one I/O node over the study
// horizon. Times are in seconds.
type NodePrediction struct {
	Batches     int64   // request messages served
	Rho         float64 // utilization: total service time / horizon
	MeanService float64 // mean service time per batch (walked)
	MeanWait    float64 // mean queue wait per batch (walked)
	PKWait      float64 // Pollaczek–Khinchine open-arrival wait; 0 when saturated
	QueueLen    float64 // Little's-law mean queue length λ·Wq; 0 when saturated
	Saturated   bool    // ρ >= 1: the closed form diverges
}

// Prediction is the twin's answer for one configuration.
type Prediction struct {
	Horizon sim.Time
	Jobs    int // jobs the schedule ran
	Nodes   []NodePrediction
	// SaturationScale estimates how much more I/O load the
	// configuration absorbs before its busiest I/O node saturates
	// (1/max ρ). Zero when the walk observed no I/O load at all.
	SaturationScale float64
}

// Predict walks the workload on the twin's timing engine and returns
// the per-I/O-node M/G/1 prediction. The same (Params, Config) pair
// that core.RunStudy would simulate yields the matching prediction;
// callers normally reach it through core.Predict.
func Predict(wp workload.Params, mc machine.Config) *Prediction {
	k := sim.New()
	e := newEngine(k, mc)
	gen := workload.NewGenerator(wp)
	horizon := gen.Install(e)
	k.Run()
	if len(e.running) > 0 || len(e.queue) > 0 {
		panic(fmt.Sprintf("twin: %d running / %d queued jobs after the walk",
			len(e.running), len(e.queue)))
	}
	return e.prediction(horizon)
}

// prediction assembles the walked moments into the M/G/1 closed forms.
func (e *engine) prediction(horizon sim.Time) *Prediction {
	nio := e.cfg.FS.IONodes
	// Service second moment: the drive model's closed-form service
	// distribution shifted by the per-request software overhead. Only
	// the squared coefficient of variation survives into P-K (the mean
	// comes from the walk), so cache hits shrinking E[S] are absorbed.
	var dm1, dm2 float64
	if nio > 0 {
		dm1, dm2 = e.fs.IONode(0).Disk().ServiceMoments()
	}
	oh := e.cfg.FS.IONode.Overhead.ToSeconds()
	sm1 := dm1 + oh
	sm2 := dm2 + 2*oh*dm1 + oh*oh
	cs2 := 0.0
	if sm1 > 0 {
		cs2 = (sm2 - sm1*sm1) / (sm1 * sm1)
		if cs2 < 0 {
			cs2 = 0
		}
	}
	h := horizon.ToSeconds()
	p := &Prediction{Horizon: horizon, Jobs: e.jobs, Nodes: make([]NodePrediction, nio)}
	maxRho := 0.0
	for i := 0; i < nio; i++ {
		batches, wait, service := e.fs.IONode(i).QueueStats()
		np := NodePrediction{Batches: batches}
		if batches > 0 && h > 0 {
			lambda := float64(batches) / h
			np.Rho = service.ToSeconds() / h
			np.MeanService = service.ToSeconds() / float64(batches)
			np.MeanWait = wait.ToSeconds() / float64(batches)
			if np.Rho < 1 {
				es2 := np.MeanService * np.MeanService * (1 + cs2)
				np.PKWait = lambda * es2 / (2 * (1 - np.Rho))
				np.QueueLen = lambda * np.PKWait
			} else {
				np.Saturated = true
			}
		}
		if np.Rho > maxRho {
			maxRho = np.Rho
		}
		p.Nodes[i] = np
	}
	if maxRho > 0 {
		p.SaturationScale = 1 / maxRho
	}
	return p
}

// TotalBatches sums the served request messages over all I/O nodes.
func (p *Prediction) TotalBatches() int64 {
	var n int64
	for _, np := range p.Nodes {
		n += np.Batches
	}
	return n
}

// MeanWait returns the machine-wide batch-weighted mean queue wait in
// seconds (0 when no batches were served).
func (p *Prediction) MeanWait() float64 {
	var batches int64
	var wait float64
	for _, np := range p.Nodes {
		batches += np.Batches
		wait += np.MeanWait * float64(np.Batches)
	}
	if batches == 0 {
		return 0
	}
	return wait / float64(batches)
}

// Saturated reports whether any I/O node is at or past saturation.
func (p *Prediction) Saturated() bool {
	for _, np := range p.Nodes {
		if np.Saturated {
			return true
		}
	}
	return false
}

// Format renders the prediction as the compact table `charisma
// -predict` prints. The output is fully defined for every input:
// saturated nodes render "sat" in the closed-form columns, idle nodes
// render zeros, and no cell is ever Inf or NaN.
func (p *Prediction) Format() string {
	var b strings.Builder
	b.WriteString("Analytical twin: per-I/O-node M/G/1 prediction\n")
	fmt.Fprintf(&b, "horizon %.1fh, %d jobs, %d I/O batches\n",
		p.Horizon.ToSeconds()/3600, p.Jobs, p.TotalBatches())
	fmt.Fprintf(&b, "%4s  %9s  %8s  %9s  %10s  %12s  %8s\n",
		"node", "batches", "util", "svc(ms)", "wait(ms)", "P-K wait(ms)", "queue")
	for i, np := range p.Nodes {
		pk, ql := fmt.Sprintf("%12.3f", 1e3*np.PKWait), fmt.Sprintf("%8.3f", np.QueueLen)
		if np.Saturated {
			pk, ql = fmt.Sprintf("%12s", "sat"), fmt.Sprintf("%8s", "sat")
		}
		fmt.Fprintf(&b, "%4d  %9d  %8.4f  %9.3f  %10.3f  %s  %s\n",
			i, np.Batches, np.Rho, 1e3*np.MeanService, 1e3*np.MeanWait, pk, ql)
	}
	switch {
	case p.Saturated():
		b.WriteString("busiest I/O node is saturated (util >= 1): queueing grows without bound at this load\n")
	case p.SaturationScale > 0:
		fmt.Fprintf(&b, "headroom: ~%.0fx this I/O load saturates the busiest node\n", p.SaturationScale)
	default:
		b.WriteString("no I/O load observed\n")
	}
	return b.String()
}
