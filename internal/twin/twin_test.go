package twin

import (
	"math"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/workload"
)

func smallParams(seed uint64) workload.Params {
	wp := workload.Default(seed)
	wp.Scale = 0.01
	return wp
}

// TestPredictDeterministic pins that the same configuration yields the
// same prediction, byte for byte.
func TestPredictDeterministic(t *testing.T) {
	a := Predict(smallParams(42), machine.NASConfig(42))
	b := Predict(smallParams(42), machine.NASConfig(42))
	if a.Format() != b.Format() {
		t.Fatalf("prediction not deterministic:\n%s\nvs\n%s", a.Format(), b.Format())
	}
	if a.TotalBatches() == 0 {
		t.Fatal("walk observed no I/O at all")
	}
}

// TestPredictionWellDefined is the stability property: whatever the
// load, the rendered prediction and every numeric field is finite —
// saturation is a flag, never an Inf.
func TestPredictionWellDefined(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		p := Predict(smallParams(seed), machine.NASConfig(seed))
		out := p.Format()
		for _, bad := range []string{"NaN", "Inf", "inf"} {
			if strings.Contains(out, bad) {
				t.Fatalf("seed %d: prediction renders %s:\n%s", seed, bad, out)
			}
		}
		for i, np := range p.Nodes {
			for name, v := range map[string]float64{
				"rho": np.Rho, "meanService": np.MeanService, "meanWait": np.MeanWait,
				"pkWait": np.PKWait, "queueLen": np.QueueLen,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("seed %d node %d: %s = %v", seed, i, name, v)
				}
			}
			if np.Rho < 1 && np.Saturated {
				t.Fatalf("seed %d node %d: saturated below rho=1", seed, i)
			}
			if np.Saturated && (np.PKWait != 0 || np.QueueLen != 0) {
				t.Fatalf("seed %d node %d: saturated node reports finite P-K values", seed, i)
			}
		}
		if p.SaturationScale < 0 || math.IsInf(p.SaturationScale, 0) || math.IsNaN(p.SaturationScale) {
			t.Fatalf("seed %d: saturation scale %v", seed, p.SaturationScale)
		}
	}
}

// TestEmptyWorkloadPrediction: a schedule with zero jobs must yield an
// all-zero, still well-defined prediction ("no I/O load observed").
func TestEmptyWorkloadPrediction(t *testing.T) {
	wp := workload.Params{Seed: 7, Scale: 0.01, HorizonHours: 156}
	p := Predict(wp, machine.NASConfig(7))
	if p.TotalBatches() != 0 || p.SaturationScale != 0 || p.Saturated() {
		t.Fatalf("empty workload predicted load: %+v", p)
	}
	out := p.Format()
	if !strings.Contains(out, "no I/O load observed") {
		t.Fatalf("empty prediction missing the no-load line:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("empty prediction renders non-finite values:\n%s", out)
	}
}

// TestPKFollowsLittle pins the internal consistency of the closed
// forms: QueueLen must equal lambda * PKWait on every unsaturated node.
func TestPKFollowsLittle(t *testing.T) {
	p := Predict(smallParams(42), machine.NASConfig(42))
	h := p.Horizon.ToSeconds()
	for i, np := range p.Nodes {
		if np.Batches == 0 || np.Saturated {
			continue
		}
		lambda := float64(np.Batches) / h
		want := lambda * np.PKWait
		if diff := math.Abs(np.QueueLen - want); diff > 1e-12 {
			t.Fatalf("node %d: queue length %v != lambda*Wq %v", i, np.QueueLen, want)
		}
	}
}
