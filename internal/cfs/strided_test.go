package cfs

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestStridedReadBasics(t *testing.T) {
	tr := &memTracer{}
	k := sim.New()
	fs := newTestFS(k)
	fs.Preload("/m", 100000)
	k.Spawn("r", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, tr)
		h, _ := c.Open(p, "/m", ORdOnly, Mode0)
		// 10 records of 100 B, starts 1000 apart.
		n, err := h.ReadStrided(p, 0, 100, 1000, 10)
		if err != nil || n != 1000 {
			t.Errorf("strided read: n=%d err=%v", n, err)
		}
		h.Close(p)
	})
	k.Run()
	evs := tr.ofType(trace.EvReadStrided)
	if len(evs) != 1 {
		t.Fatalf("strided events = %d", len(evs))
	}
	ev := evs[0]
	if ev.Size != 100 || ev.Stride != 1000 || ev.Count != 10 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Bytes() != 1000 {
		t.Fatalf("bytes = %d", ev.Bytes())
	}
}

func TestStridedReadClampsAtEOF(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	fs.Preload("/m", 2500)
	k.Spawn("r", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/m", ORdOnly, Mode0)
		// Records at 0, 1000, 2000, 3000(dropped): last kept record
		// at 2000 is clipped to 500 bytes.
		n, err := h.ReadStrided(p, 0, 600, 1000, 4)
		if err != nil {
			t.Error(err)
		}
		if n != 600+600+500 {
			t.Errorf("n = %d", n)
		}
		// Entirely past EOF: zero bytes, no error.
		n, err = h.ReadStrided(p, 10000, 100, 1000, 3)
		if err != nil || n != 0 {
			t.Errorf("past-EOF strided: n=%d err=%v", n, err)
		}
		h.Close(p)
	})
	k.Run()
}

func TestStridedWriteExtends(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	k.Spawn("w", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/out", OWrOnly|OCreate, Mode0)
		n, err := h.WriteStrided(p, 0, 512, 4096, 8)
		if err != nil || n != 512*8 {
			t.Errorf("strided write: n=%d err=%v", n, err)
		}
		if h.Size() != 7*4096+512 {
			t.Errorf("size = %d", h.Size())
		}
		h.Close(p)
	})
	k.Run()
}

func TestStridedValidation(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	fs.Preload("/m", 100000)
	k.Spawn("r", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/m", ORdOnly, Mode0)
		cases := []struct {
			off, rec, stride int64
			count            int
		}{
			{-1, 100, 1000, 1},
			{0, 0, 1000, 1},
			{0, 100, 50, 1}, // stride < record
			{0, 100, 1000, 0},
		}
		for _, tc := range cases {
			if _, err := h.ReadStrided(p, tc.off, tc.rec, tc.stride, tc.count); err != ErrBadRequest {
				t.Errorf("(%d,%d,%d,%d): err = %v", tc.off, tc.rec, tc.stride, tc.count, err)
			}
		}
		if _, err := h.WriteStrided(p, 0, 100, 1000, 1); err != ErrBadAccess {
			t.Errorf("strided write on read-only handle: %v", err)
		}
		h.Close(p)
		if _, err := h.ReadStrided(p, 0, 100, 1000, 1); err != ErrClosed {
			t.Errorf("strided read on closed handle: %v", err)
		}

		sh, _ := c.Open(p, "/m", ORdOnly, Mode1)
		if _, err := sh.ReadStrided(p, 0, 100, 1000, 1); err != ErrBadMode {
			t.Errorf("strided read on mode 1: %v", err)
		}
		sh.Close(p)
	})
	k.Run()
}

func TestStridedFasterThanLoop(t *testing.T) {
	// The headline claim of the paper's Section 5: expressing the
	// pattern in one request beats issuing the records one by one.
	pattern := func(strided bool) sim.Time {
		k := sim.New()
		fs := newTestFS(k)
		fs.Preload("/m", 1<<20)
		var elapsed sim.Time
		k.Spawn("r", func(p *sim.Proc) {
			c := NewClient(fs, 1, 0, nil)
			h, _ := c.Open(p, "/m", ORdOnly, Mode0)
			start := p.Now()
			if strided {
				h.ReadStrided(p, 0, 512, 4096, 256)
			} else {
				for i := int64(0); i < 256; i++ {
					h.ReadAt(p, i*4096, 512)
				}
			}
			elapsed = p.Now() - start
			h.Close(p)
		})
		k.Run()
		return elapsed
	}
	loop, strided := pattern(false), pattern(true)
	if strided*3 >= loop {
		t.Fatalf("strided %v should be much faster than looped %v", strided, loop)
	}
}

func TestStridedReadSameDiskTraffic(t *testing.T) {
	// Strided and looped access of the same pattern must touch the
	// same disk blocks (correctness of batching).
	run := func(strided bool) int64 {
		k := sim.New()
		fs := newTestFS(k)
		fs.Preload("/m", 1<<20)
		k.Spawn("r", func(p *sim.Proc) {
			c := NewClient(fs, 1, 0, nil)
			h, _ := c.Open(p, "/m", ORdOnly, Mode0)
			if strided {
				h.ReadStrided(p, 0, 512, 8192, 64)
			} else {
				for i := int64(0); i < 64; i++ {
					h.ReadAt(p, i*8192, 512)
				}
			}
			h.Close(p)
		})
		k.Run()
		return fs.TotalDiskOps()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("disk ops differ: looped %d vs strided %d", a, b)
	}
}

func TestStridedWriteReadBack(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	k.Spawn("wr", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/f", ORdWr|OCreate, Mode0)
		h.WriteStrided(p, 0, 1024, 2048, 16)
		if n, err := h.ReadAt(p, 0, h.Size()); err != nil || n != h.Size() {
			t.Errorf("read back: n=%d err=%v", n, err)
		}
		h.Close(p)
	})
	k.Run()
}
