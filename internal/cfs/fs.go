package cfs

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Transport models the interconnect between compute nodes and I/O
// nodes. The machine package implements it over the hypercube; tests
// use a constant-latency stub.
type Transport interface {
	// ToIONode returns the latency of a request message of the given
	// size from a compute node to an I/O node.
	ToIONode(computeNode, ioNode, bytes int) sim.Time
	// FromIONode returns the latency of the response back.
	FromIONode(ioNode, computeNode, bytes int) sim.Time
}

// Tracer receives a CHARISMA event record for every CFS call. The
// machine wires it to a per-node trace buffer; untraced jobs use
// NopTracer, reproducing the paper's partially-instrumented workload.
type Tracer interface {
	Record(ev trace.Event)
}

// NopTracer discards all events.
type NopTracer struct{}

// Record implements Tracer.
func (NopTracer) Record(trace.Event) {}

// Config sizes the file system.
type Config struct {
	BlockBytes int // striping unit, 4096 on CFS
	IONodes    int
	IONode     IONodeConfig
}

// DefaultConfig returns the NAS configuration: 10 I/O nodes, 4 KB
// striping.
func DefaultConfig() Config {
	return Config{BlockBytes: 4096, IONodes: 10, IONode: DefaultIONodeConfig()}
}

// file is the metadata for one CFS file.
type file struct {
	id      uint64
	name    string
	size    int64
	deleted bool
	opens   int // live handles

	// blocks maps file-block index to physical disk block; file block
	// b lives on I/O node (b mod IONodes). Unwritten blocks are absent.
	blocks blockTable

	// groups holds shared-pointer state per (job, mode>0) open group.
	groups map[uint32]*openGroup

	createdByJob uint32
}

// denseBlockLimit bounds the dense block table: file blocks below it
// (1 GB of 4 KB blocks, covering every file the study volume can hold)
// index a slice; sparse indices above it fall back to a map. The worst
// case for the dense side — a single write just below the limit — fills
// a 2 MB sentinel prefix; beyond the limit cost reverts to map entries.
const denseBlockLimit = 1 << 18

// blockTable maps file-block index to physical disk block. Files are
// overwhelmingly written sequentially from offset zero, so the common
// case is a dense array — far cheaper than the map the transfer hot
// path would otherwise hit for every block.
type blockTable struct {
	dense  []int64 // -1 = unallocated
	sparse map[int64]int64
}

// get returns the disk block for file block b, if allocated.
func (t *blockTable) get(b int64) (int64, bool) {
	if b < int64(len(t.dense)) {
		db := t.dense[b]
		return db, db >= 0
	}
	if t.sparse != nil {
		db, ok := t.sparse[b]
		return db, ok
	}
	return 0, false
}

// set records the disk block for file block b.
func (t *blockTable) set(b, db int64) {
	if b < denseBlockLimit {
		for int64(len(t.dense)) <= b {
			t.dense = append(t.dense, -1)
		}
		t.dense[b] = db
		return
	}
	if t.sparse == nil {
		t.sparse = make(map[int64]int64)
	}
	t.sparse[b] = db
}

// each visits allocated blocks in increasing file-block order.
func (t *blockTable) each(fn func(fileBlock, diskBlock int64)) {
	for b, db := range t.dense {
		if db >= 0 {
			fn(int64(b), db)
		}
	}
	if len(t.sparse) > 0 {
		keys := make([]int64, 0, len(t.sparse))
		for b := range t.sparse {
			keys = append(keys, b)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, b := range keys {
			fn(b, t.sparse[b])
		}
	}
}

// openGroup is the shared file pointer state for modes 1-3.
type openGroup struct {
	mode    IOMode
	pointer int64
	members []int // node ids, sorted; round-robin order for modes 2/3
	turn    int   // index into members (modes 2/3)
	reqSize int64 // fixed request size (mode 3), 0 until first access
	waiters []*sim.Proc
}

func (g *openGroup) wakeAll() {
	ws := g.waiters
	g.waiters = nil
	for _, w := range ws {
		w.Wake()
	}
}

// FileSystem is the CFS volume: metadata plus the I/O nodes.
type FileSystem struct {
	k       *sim.Kernel
	cfg     Config
	tp      Transport
	ionodes []*IONode
	arena   *Arena // optional cross-study pools; nil allocates fresh

	byName map[string]*file
	byID   map[uint64]*file
	nextID uint64

	opens      int64
	modeCounts [4]int64
}

// New returns an empty file system.
func New(k *sim.Kernel, cfg Config, tp Transport) *FileSystem {
	if cfg.BlockBytes <= 0 || cfg.IONodes <= 0 {
		panic("cfs: invalid configuration")
	}
	fs := &FileSystem{
		k:      k,
		cfg:    cfg,
		tp:     tp,
		byName: make(map[string]*file),
		byID:   make(map[uint64]*file),
	}
	for i := 0; i < cfg.IONodes; i++ {
		fs.ionodes = append(fs.ionodes, NewIONode(k, i, cfg.IONode))
	}
	return fs
}

// SetArena makes the file system draw block tables and clients from
// the given cross-study pool. Call it right after New, before any
// file is created.
func (fs *FileSystem) SetArena(a *Arena) { fs.arena = a }

// Recycle returns every file's storage -- block tables, open groups,
// and the file structs themselves -- to the arena. Call it once the
// simulation is over and the trace collected; the file system must
// not be used afterwards.
func (fs *FileSystem) Recycle() {
	if fs.arena == nil {
		return
	}
	for id, f := range fs.byID {
		fs.arena.putDense(f.blocks.dense)
		f.blocks.dense = nil
		f.blocks.sparse = nil
		fs.arena.putFile(f)
		delete(fs.byID, id)
	}
	clear(fs.byName)
}

// Config returns the file-system configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// IONode returns I/O node i, for instrumentation.
func (fs *FileSystem) IONode(i int) *IONode { return fs.ionodes[i] }

// Opens reports the total number of successful opens.
func (fs *FileSystem) Opens() int64 { return fs.opens }

// ModeCount reports how many opens used the given I/O mode.
func (fs *FileSystem) ModeCount(m IOMode) int64 { return fs.modeCounts[m] }

// TotalDiskOps reports read+write operations summed over all disks.
func (fs *FileSystem) TotalDiskOps() int64 {
	var n int64
	for _, io := range fs.ionodes {
		n += io.Disk().Reads() + io.Disk().Writes()
	}
	return n
}

// ioNodeFor returns the I/O node storing the given file block, per
// CFS's round-robin striping.
func (fs *FileSystem) ioNodeFor(fileBlock int64) *IONode {
	return fs.ionodes[int(fileBlock%int64(fs.cfg.IONodes))]
}

// lookup returns the live file with the given name.
func (fs *FileSystem) lookup(name string) (*file, bool) {
	f, ok := fs.byName[name]
	return f, ok
}

// create registers a new file.
func (fs *FileSystem) create(name string, job uint32) *file {
	fs.nextID++
	var f *file
	if fs.arena != nil {
		f = fs.arena.getFile()
	}
	if f == nil {
		f = &file{groups: make(map[uint32]*openGroup)}
	}
	f.id = fs.nextID
	f.name = name
	f.createdByJob = job
	if fs.arena != nil && f.blocks.dense == nil {
		f.blocks.dense = fs.arena.getDense()
	}
	fs.byName[name] = f
	fs.byID[f.id] = f
	return f
}

// Preload creates a file of the given size with all blocks allocated,
// modeling input data sets that existed before tracing started. It is
// not traced and consumes no simulated time.
func (fs *FileSystem) Preload(name string, size int64) (uint64, error) {
	if _, exists := fs.byName[name]; exists {
		return 0, ErrExists
	}
	if size < 0 {
		return 0, ErrBadRequest
	}
	f := fs.create(name, 0)
	f.size = size
	nBlocks := (size + int64(fs.cfg.BlockBytes) - 1) / int64(fs.cfg.BlockBytes)
	for b := int64(0); b < nBlocks; b++ {
		db, err := fs.ioNodeFor(b).allocBlock()
		if err != nil {
			return 0, err
		}
		f.blocks.set(b, db)
	}
	return f.id, nil
}

// Exists reports whether a live file has the given name.
func (fs *FileSystem) Exists(name string) bool {
	_, ok := fs.byName[name]
	return ok
}

// Size returns the current size of the named file.
func (fs *FileSystem) Size(name string) (int64, error) {
	f, ok := fs.lookup(name)
	if !ok {
		return 0, ErrNotFound
	}
	return f.size, nil
}

// removeFile unlinks the file from the namespace, invalidates its
// cached blocks, and returns its disk blocks to the allocators.
func (fs *FileSystem) removeFile(f *file) {
	f.deleted = true
	delete(fs.byName, f.name)
	// Blocks are visited in increasing file-block order so the free
	// lists (and hence future allocations and disk layout) stay
	// deterministic.
	f.blocks.each(func(fb, db int64) {
		io := fs.ioNodeFor(fb)
		io.freeBlock(db)
		io.invalidate(f.id, []int64{fb})
	})
	// The deleted file's block table can serve a later file: handles
	// still open on it observe ErrDeleted before ever touching blocks.
	if fs.arena != nil {
		fs.arena.putDense(f.blocks.dense)
		f.blocks.dense = nil
		f.blocks.sparse = nil
	}
}

func (fs *FileSystem) String() string {
	return fmt.Sprintf("cfs: %d I/O nodes, %d B blocks, %d files",
		fs.cfg.IONodes, fs.cfg.BlockBytes, len(fs.byID))
}
