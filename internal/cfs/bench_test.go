package cfs

import (
	"testing"

	"repro/internal/sim"
)

type benchTransport struct{}

func (benchTransport) ToIONode(_, _, _ int) sim.Time   { return 100 * sim.Microsecond }
func (benchTransport) FromIONode(_, _, _ int) sim.Time { return 100 * sim.Microsecond }

// benchFS returns a file system preloaded with one large file.
func benchFS(b *testing.B, size int64) *FileSystem {
	b.Helper()
	k := sim.New()
	fs := New(k, DefaultConfig(), benchTransport{})
	if _, err := fs.Preload("/data", size); err != nil {
		b.Fatal(err)
	}
	return fs
}

// BenchmarkTransferSequential measures Handle.transfer on the pattern
// the paper found dominant: sequential whole-file reads in small
// requests. Each request touches one I/O node.
func BenchmarkTransferSequential(b *testing.B) {
	const fileSize = 1 << 24 // 16 MB
	fs := benchFS(b, fileSize)
	k := fs.k
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	k.Spawn("reader", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, err := c.Open(p, "/data", ORdOnly, Mode0)
		if err != nil {
			panic(err)
		}
		for i := 0; i < b.N; i++ {
			off := (int64(i) * 4096) % fileSize
			if _, err := h.ReadAt(p, off, 4096); err != nil {
				panic(err)
			}
			done++
		}
		h.Close(p)
	})
	k.Run()
	if done != b.N {
		b.Fatalf("completed %d of %d reads", done, b.N)
	}
}

// BenchmarkTransferStrided measures Handle.transfer on large requests
// that span every I/O node (one batch per node per call), the worst
// case for the per-call batching structures.
func BenchmarkTransferStrided(b *testing.B) {
	const fileSize = 1 << 24
	const span = 40 * 4096 // 10 I/O nodes x 4 blocks each
	fs := benchFS(b, fileSize)
	k := fs.k
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	k.Spawn("reader", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, err := c.Open(p, "/data", ORdOnly, Mode0)
		if err != nil {
			panic(err)
		}
		for i := 0; i < b.N; i++ {
			off := (int64(i) * span) % (fileSize - span)
			if _, err := h.ReadAt(p, off, span); err != nil {
				panic(err)
			}
			done++
		}
		h.Close(p)
	})
	k.Run()
	if done != b.N {
		b.Fatalf("completed %d of %d reads", done, b.N)
	}
}

// BenchmarkTransferWrite measures the allocating write path, which also
// exercises block allocation on first touch.
func BenchmarkTransferWrite(b *testing.B) {
	k := sim.New()
	fs := New(k, DefaultConfig(), benchTransport{})
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	k.Spawn("writer", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, err := c.Open(p, "/out", OWrOnly|OCreate, Mode0)
		if err != nil {
			panic(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := h.Write(p, 1024); err != nil {
				panic(err)
			}
			done++
		}
		h.Close(p)
	})
	k.Run()
	if done != b.N {
		b.Fatalf("completed %d of %d writes", done, b.N)
	}
}
