package cfs

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// This file implements the interface extension the paper's conclusions
// call for (Section 5): strided requests. A strided request names a
// regular pattern -- count records of recBytes each, record starts
// stride bytes apart -- in a single call. The whole pattern moves in
// one round of messages (one request per involved I/O node), instead
// of one round per record, "effectively increasing the request size
// [and] lowering overhead".

// ReadStrided reads count records of recBytes starting at off, with
// record starts stride apart. It is defined for mode 0 handles (each
// process names its own pattern). Records that begin at or beyond end
// of file are dropped; the return value is the number of bytes read.
func (h *Handle) ReadStrided(p *sim.Proc, off, recBytes, stride int64, count int) (int64, error) {
	if err := h.checkStrided(off, recBytes, stride, count); err != nil {
		return 0, err
	}
	if h.flags&ORdOnly == 0 {
		return 0, ErrBadAccess
	}
	if h.f.deleted {
		return 0, ErrDeleted
	}
	// Clamp the pattern to end of file.
	var n int64
	kept := 0
	for i := 0; i < count; i++ {
		recOff := off + int64(i)*stride
		if recOff >= h.f.size {
			break
		}
		rec := recBytes
		if recOff+rec > h.f.size {
			rec = h.f.size - recOff
		}
		n += rec
		kept++
	}
	h.c.tracer.Record(trace.Event{
		Type: trace.EvReadStrided, Job: h.c.job, File: h.f.id,
		Offset: off, Size: recBytes, Stride: stride, Count: uint32(kept),
		Mode: uint8(h.mode),
	})
	if kept == 0 {
		return 0, nil
	}
	h.pointer = off + int64(kept-1)*stride + recBytes
	h.transferStrided(p, off, recBytes, stride, kept, false)
	return n, nil
}

// WriteStrided writes count records of recBytes starting at off, with
// record starts stride apart, extending the file as needed (mode 0).
func (h *Handle) WriteStrided(p *sim.Proc, off, recBytes, stride int64, count int) (int64, error) {
	if err := h.checkStrided(off, recBytes, stride, count); err != nil {
		return 0, err
	}
	if h.flags&OWrOnly == 0 {
		return 0, ErrBadAccess
	}
	if h.f.deleted {
		return 0, ErrDeleted
	}
	h.c.tracer.Record(trace.Event{
		Type: trace.EvWriteStrided, Job: h.c.job, File: h.f.id,
		Offset: off, Size: recBytes, Stride: stride, Count: uint32(count),
		Mode: uint8(h.mode),
	})
	end := off + int64(count-1)*stride + recBytes
	if end > h.f.size {
		h.f.size = end
	}
	h.pointer = end
	h.transferStrided(p, off, recBytes, stride, count, true)
	return recBytes * int64(count), nil
}

func (h *Handle) checkStrided(off, recBytes, stride int64, count int) error {
	if h.closed {
		return ErrClosed
	}
	if h.mode != Mode0 {
		return ErrBadMode
	}
	if off < 0 || recBytes <= 0 || count <= 0 || stride < recBytes {
		return ErrBadRequest
	}
	return nil
}

// transferStrided moves the whole pattern in one round: the blocks of
// every record are gathered, grouped by I/O node, and each involved
// I/O node receives a single request message for its whole share.
func (h *Handle) transferStrided(p *sim.Proc, off, recBytes, stride int64, count int, isWrite bool) {
	fs := h.c.fs
	bs := int64(fs.cfg.BlockBytes)

	// Gather the distinct blocks the pattern touches, in order.
	seen := make(map[int64]bool)
	var blocks []int64
	var payload int64
	for i := 0; i < count; i++ {
		recOff := off + int64(i)*stride
		recEnd := recOff + recBytes
		if !isWrite {
			if recOff >= h.f.size {
				break
			}
			if recEnd > h.f.size {
				recEnd = h.f.size
			}
		}
		payload += recEnd - recOff
		for b := recOff / bs; b <= (recEnd-1)/bs; b++ {
			if !seen[b] {
				seen[b] = true
				blocks = append(blocks, b)
			}
		}
	}
	if len(blocks) == 0 {
		return
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	// Group by I/O node into the client's reusable dispatch table (see
	// transfer): blocks are already sorted, so batches come out in
	// deterministic order without maps or a second sort.
	ds := h.c.scratch()
	involved := 0
	for _, b := range blocks {
		d := &ds[b%int64(fs.cfg.IONodes)]
		db, allocated := h.f.blocks.get(b)
		if isWrite && !allocated {
			newBlock, err := d.io.allocBlock()
			if err != nil {
				continue
			}
			h.f.blocks.set(b, newBlock)
			db = newBlock
			allocated = true
		}
		if !allocated {
			db = -1
		}
		if len(d.batch) == 0 {
			involved++
		}
		d.batch = append(d.batch, blockRequest{
			file: h.f.id, fileBlock: b, diskBlock: db, isWrite: isWrite,
			nextFileBlock: -1, nextDiskBlock: -1,
		})
	}
	if involved == 0 {
		return
	}

	perNodePayload := payload / int64(involved) // even split approximation
	wg := &h.c.wg
	wg.Add(involved)
	now := p.Now()
	for id := range ds {
		d := &ds[id]
		if len(d.batch) == 0 {
			continue
		}
		reqBytes := reqHeaderBytes + 16 // pattern descriptor
		if isWrite {
			reqBytes += int(perNodePayload)
		}
		d.respBytes = reqHeaderBytes
		if !isWrite {
			d.respBytes += int(perNodePayload)
		}
		d.arrival = now + fs.tp.ToIONode(h.c.node, id, reqBytes)
		fs.k.At(d.arrival, d.sendFn)
	}
	wg.Wait(p)

	for id := range ds {
		ds[id].batch = ds[id].batch[:0]
		ds[id].bytes = 0
	}
}
