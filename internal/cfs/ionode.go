package cfs

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/sim"
)

// IONode is one dedicated I/O node: an i386 processor with 4 MB of
// memory, a buffer cache, and a single SCSI disk. The disk is a serial
// resource; requests queue in arrival order. Service is modeled with a
// busy-until horizon rather than a process per request, which keeps
// multi-million-request simulations cheap while preserving queueing
// delay.
type IONode struct {
	id    int
	k     *sim.Kernel
	disk  disk.Model
	cache cache.Cache

	busyUntil sim.Time
	nextFree  int64   // next never-allocated disk block
	freeList  []int64 // blocks returned by deleted files

	// overheadPerRequest models the i386's per-request software cost.
	overheadPerRequest sim.Time
	// cacheHitTime models a memory-speed block copy on a hit.
	cacheHitTime sim.Time

	prefetch bool

	fault NodeFault // nil on a healthy node

	requests   int64
	cacheHits  int64
	prefetches int64

	// Observation-only queueing statistics (they never influence
	// timing): per-batch arrival counts, accumulated queue wait
	// (service start minus arrival), and accumulated service time
	// (response departure minus service start, plus readahead the
	// disk absorbs off the critical path). The analytical twin's
	// conformance suite compares its M/G/1 predictions against these.
	batches      int64
	waitTotal    sim.Time
	serviceTotal sim.Time
}

// NodeFault is the degradation hook an I/O node consults while
// serving (see internal/faults). Admit may defer a batch's service
// start past an outage window; Scale may inflate a service duration
// that begins at the given time. A nil NodeFault means healthy.
type NodeFault interface {
	Admit(start sim.Time, requests int) sim.Time
	Scale(start, dur sim.Time) sim.Time
}

// SetFault installs a degradation hook on the node. Call it before
// the simulation starts.
func (n *IONode) SetFault(f NodeFault) { n.fault = f }

// IONodeConfig sizes an I/O node.
type IONodeConfig struct {
	Disk         disk.Config
	CacheBuffers int      // buffer cache capacity in 4 KB blocks
	Overhead     sim.Time // per-request software overhead
	CacheHitTime sim.Time // service time for a cache hit
	// Prefetch enables one-block readahead: on a read miss the node
	// also fetches the file's next block on this node's stripe, the
	// policy CFS shipped with (Pratt and French measured it helping
	// sequential workloads).
	Prefetch bool
}

// DefaultIONodeConfig returns the NAS configuration: a 760 MB disk and
// a buffer cache using most of the node's 4 MB of memory (~768
// four-KB buffers), 200 us request overhead, 100 us hit service.
func DefaultIONodeConfig() IONodeConfig {
	return IONodeConfig{
		Disk:         disk.CDC760MB(),
		CacheBuffers: 768,
		Overhead:     200 * sim.Microsecond,
		CacheHitTime: 100 * sim.Microsecond,
	}
}

// NewIONode returns an I/O node with an empty disk and cold cache.
func NewIONode(k *sim.Kernel, id int, cfg IONodeConfig) *IONode {
	if cfg.CacheBuffers <= 0 {
		panic(fmt.Sprintf("cfs: I/O node %d needs a positive cache size", id))
	}
	return &IONode{
		id:                 id,
		k:                  k,
		disk:               disk.New(cfg.Disk),
		cache:              cache.NewLRU(cfg.CacheBuffers),
		overheadPerRequest: cfg.Overhead,
		cacheHitTime:       cfg.CacheHitTime,
		prefetch:           cfg.Prefetch,
	}
}

// ID returns the I/O node's index.
func (n *IONode) ID() int { return n.id }

// Requests reports the number of block requests serviced.
func (n *IONode) Requests() int64 { return n.requests }

// CacheHits reports how many of them hit the buffer cache.
func (n *IONode) CacheHits() int64 { return n.cacheHits }

// Prefetches reports how many readahead blocks the node fetched.
func (n *IONode) Prefetches() int64 { return n.prefetches }

// Disk exposes the underlying drive model for instrumentation.
func (n *IONode) Disk() disk.Model { return n.disk }

// QueueStats reports the node's observation-only queueing counters:
// batches served, total queue wait, and total service time.
func (n *IONode) QueueStats() (batches int64, wait, service sim.Time) {
	return n.batches, n.waitTotal, n.serviceTotal
}

// allocBlock claims a free disk block (reusing reclaimed blocks
// first), or reports exhaustion.
func (n *IONode) allocBlock() (int64, error) {
	if len(n.freeList) > 0 {
		b := n.freeList[len(n.freeList)-1]
		n.freeList = n.freeList[:len(n.freeList)-1]
		return b, nil
	}
	if n.nextFree >= n.disk.Blocks() {
		return 0, ErrNoSpace
	}
	b := n.nextFree
	n.nextFree++
	return b, nil
}

// freeBlock returns a disk block to the allocator.
func (n *IONode) freeBlock(b int64) { n.freeList = append(n.freeList, b) }

// blockRequest is one block-granularity operation at this I/O node.
type blockRequest struct {
	file      uint64
	fileBlock int64 // block index within the file
	diskBlock int64 // physical block, -1 for unallocated reads (zero fill)
	isWrite   bool
	// Readahead candidate: the file's next block on this node's
	// stripe, or -1. Filled by the client only when prefetching is on.
	nextFileBlock int64
	nextDiskBlock int64
}

// serve processes a batch of block requests arriving at arrivalTime
// and returns the time the response leaves the node. The batch is the
// set of blocks one client operation needs from this node; CFS sent
// one message per I/O node per operation.
func (n *IONode) serve(arrival sim.Time, batch []blockRequest) sim.Time {
	start := arrival
	if n.busyUntil > start {
		start = n.busyUntil // queue behind earlier requests
	}
	if n.fault != nil {
		start = n.fault.Admit(start, len(batch))
	}
	t := start + n.overheadPerRequest
	var readahead sim.Time
	for _, r := range batch {
		n.requests++
		id := cache.BlockID{File: r.file, Block: r.fileBlock}
		if r.isWrite {
			// Write-through: the block enters the cache and is
			// written to disk.
			n.cache.Access(id)
			t += n.disk.ServiceTime(r.diskBlock, 1, true)
			continue
		}
		if r.diskBlock < 0 {
			// Read of a never-written block: zero fill, memory speed.
			t += n.cacheHitTime
			continue
		}
		if n.cache.Access(id) {
			n.cacheHits++
			t += n.cacheHitTime
			continue
		}
		t += n.disk.ServiceTime(r.diskBlock, 1, false)
		if n.prefetch && r.nextDiskBlock >= 0 {
			next := cache.BlockID{File: r.file, Block: r.nextFileBlock}
			if !n.cache.Contains(next) {
				n.cache.Access(next)
				// Readahead runs after the response leaves: it keeps
				// the disk busy but is off the request's critical
				// path, which is where its benefit comes from.
				readahead += n.disk.ServiceTime(r.nextDiskBlock, 1, false)
				n.prefetches++
			}
		}
	}
	if n.fault != nil {
		// Degradation inflates the whole service (software overhead,
		// disk time, and off-critical-path readahead alike) by the
		// factor in effect when service began.
		t = start + n.fault.Scale(start, t-start)
		if readahead > 0 {
			readahead = n.fault.Scale(start, readahead)
		}
	}
	n.busyUntil = t + readahead
	n.batches++
	n.waitTotal += start - arrival
	n.serviceTotal += (t - start) + readahead
	return t
}

// invalidate drops a file's blocks from the cache (file deletion).
func (n *IONode) invalidate(file uint64, fileBlocks []int64) {
	for _, b := range fileBlocks {
		n.cache.Invalidate(cache.BlockID{File: file, Block: b})
	}
}
