package cfs

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// stubTransport charges a fixed latency per message.
type stubTransport struct{ lat sim.Time }

func (s stubTransport) ToIONode(_, _, _ int) sim.Time   { return s.lat }
func (s stubTransport) FromIONode(_, _, _ int) sim.Time { return s.lat }

// memTracer collects events in memory.
type memTracer struct{ events []trace.Event }

func (m *memTracer) Record(ev trace.Event) { m.events = append(m.events, ev) }

func (m *memTracer) ofType(t trace.EventType) []trace.Event {
	var out []trace.Event
	for _, e := range m.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

func newTestFS(k *sim.Kernel) *FileSystem {
	return New(k, DefaultConfig(), stubTransport{lat: 100 * sim.Microsecond})
}

// run executes body as a single process and finishes the simulation.
func run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	k := sim.New()
	fsHolder.k = k
	fsHolder.fs = newTestFS(k)
	k.Spawn("test", body)
	k.Run()
}

// fsHolder passes the fs into run() bodies without threading args.
var fsHolder struct {
	k  *sim.Kernel
	fs *FileSystem
}

func TestCreateWriteReadRoundTrip(t *testing.T) {
	tr := &memTracer{}
	run(t, func(p *sim.Proc) {
		fs := fsHolder.fs
		c := NewClient(fs, 1, 0, tr)
		h, err := c.Open(p, "/data/out", OWrOnly|OCreate, Mode0)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := h.Write(p, 10000); err != nil || n != 10000 {
			t.Fatalf("write: n=%d err=%v", n, err)
		}
		if h.Size() != 10000 {
			t.Fatalf("size = %d", h.Size())
		}
		if err := h.Close(p); err != nil {
			t.Fatal(err)
		}

		r, err := c.Open(p, "/data/out", ORdOnly, Mode0)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := r.Read(p, 4000); err != nil || n != 4000 {
			t.Fatalf("read1: n=%d err=%v", n, err)
		}
		if n, err := r.Read(p, 8000); err != nil || n != 6000 {
			t.Fatalf("read at EOF should be short: n=%d err=%v", n, err)
		}
		if n, err := r.Read(p, 100); err != nil || n != 0 {
			t.Fatalf("read past EOF: n=%d err=%v", n, err)
		}
		if err := r.Close(p); err != nil {
			t.Fatal(err)
		}
	})
	if got := len(tr.ofType(trace.EvOpen)); got != 2 {
		t.Fatalf("open events = %d", got)
	}
	if got := len(tr.ofType(trace.EvRead)); got != 3 {
		t.Fatalf("read events = %d", got)
	}
	closes := tr.ofType(trace.EvClose)
	if len(closes) != 2 || closes[0].Size != 10000 {
		t.Fatalf("close events = %+v", closes)
	}
}

func TestOpenMissingFileFails(t *testing.T) {
	run(t, func(p *sim.Proc) {
		c := NewClient(fsHolder.fs, 1, 0, nil)
		if _, err := c.Open(p, "/nope", ORdOnly, Mode0); err != ErrNotFound {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestOpenBadFlagsAndMode(t *testing.T) {
	run(t, func(p *sim.Proc) {
		c := NewClient(fsHolder.fs, 1, 0, nil)
		if _, err := c.Open(p, "/x", OCreate, Mode0); err != ErrBadAccess {
			t.Fatalf("no access bits: %v", err)
		}
		if _, err := c.Open(p, "/x", ORdWr|OCreate, IOMode(9)); err != ErrBadMode {
			t.Fatalf("bad mode: %v", err)
		}
	})
}

func TestAccessEnforcement(t *testing.T) {
	run(t, func(p *sim.Proc) {
		c := NewClient(fsHolder.fs, 1, 0, nil)
		h, err := c.Open(p, "/f", OWrOnly|OCreate, Mode0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Read(p, 10); err != ErrBadAccess {
			t.Fatalf("read on write-only: %v", err)
		}
		h.Write(p, 100)
		h.Close(p)
		r, _ := c.Open(p, "/f", ORdOnly, Mode0)
		if _, err := r.Write(p, 10); err != ErrBadAccess {
			t.Fatalf("write on read-only: %v", err)
		}
	})
}

func TestClosedHandleRejectsOps(t *testing.T) {
	run(t, func(p *sim.Proc) {
		c := NewClient(fsHolder.fs, 1, 0, nil)
		h, _ := c.Open(p, "/f", ORdWr|OCreate, Mode0)
		h.Close(p)
		if _, err := h.Read(p, 1); err != ErrClosed {
			t.Fatalf("read: %v", err)
		}
		if _, err := h.Write(p, 1); err != ErrClosed {
			t.Fatalf("write: %v", err)
		}
		if err := h.Seek(p, 0); err != ErrClosed {
			t.Fatalf("seek: %v", err)
		}
		if err := h.Close(p); err != ErrClosed {
			t.Fatalf("double close: %v", err)
		}
	})
}

func TestSeekMovesPointer(t *testing.T) {
	tr := &memTracer{}
	run(t, func(p *sim.Proc) {
		c := NewClient(fsHolder.fs, 1, 0, tr)
		h, _ := c.Open(p, "/f", ORdWr|OCreate, Mode0)
		h.Write(p, 1000)
		if err := h.Seek(p, 200); err != nil {
			t.Fatal(err)
		}
		if h.Pointer() != 200 {
			t.Fatalf("pointer = %d", h.Pointer())
		}
		if n, _ := h.Read(p, 100); n != 100 {
			t.Fatalf("read after seek: %d", n)
		}
		if h.Pointer() != 300 {
			t.Fatalf("pointer after read = %d", h.Pointer())
		}
		if err := h.Seek(p, -1); err != ErrBadRequest {
			t.Fatalf("negative seek: %v", err)
		}
	})
	reads := tr.ofType(trace.EvRead)
	if len(reads) != 1 || reads[0].Offset != 200 {
		t.Fatalf("read event = %+v", reads)
	}
	if len(tr.ofType(trace.EvSeek)) != 1 {
		t.Fatal("seek not traced")
	}
}

func TestReadAtWriteAtMode0Only(t *testing.T) {
	run(t, func(p *sim.Proc) {
		c := NewClient(fsHolder.fs, 1, 0, nil)
		h, _ := c.Open(p, "/f", ORdWr|OCreate, Mode0)
		if n, err := h.WriteAt(p, 8192, 100); err != nil || n != 100 {
			t.Fatalf("WriteAt: %d %v", n, err)
		}
		if h.Size() != 8292 {
			t.Fatalf("sparse write size = %d", h.Size())
		}
		if n, err := h.ReadAt(p, 8192, 100); err != nil || n != 100 {
			t.Fatalf("ReadAt: %d %v", n, err)
		}
		h.Close(p)

		s, _ := c.Open(p, "/shared", ORdWr|OCreate, Mode1)
		if _, err := s.ReadAt(p, 0, 10); err != ErrBadMode {
			t.Fatalf("ReadAt on mode 1: %v", err)
		}
		if _, err := s.WriteAt(p, 0, 10); err != ErrBadMode {
			t.Fatalf("WriteAt on mode 1: %v", err)
		}
	})
}

func TestPreloadAndSize(t *testing.T) {
	run(t, func(p *sim.Proc) {
		fs := fsHolder.fs
		id, err := fs.Preload("/input", 100000)
		if err != nil || id == 0 {
			t.Fatalf("preload: %v", err)
		}
		if !fs.Exists("/input") {
			t.Fatal("preloaded file missing")
		}
		if sz, _ := fs.Size("/input"); sz != 100000 {
			t.Fatalf("size = %d", sz)
		}
		if _, err := fs.Preload("/input", 1); err != ErrExists {
			t.Fatalf("duplicate preload: %v", err)
		}
		if _, err := fs.Size("/absent"); err != ErrNotFound {
			t.Fatalf("size of absent: %v", err)
		}
		c := NewClient(fs, 1, 0, nil)
		h, err := c.Open(p, "/input", ORdOnly, Mode0)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := h.Read(p, 100000); n != 100000 {
			t.Fatalf("read preloaded: %d", n)
		}
		h.Close(p)
	})
}

func TestDelete(t *testing.T) {
	tr := &memTracer{}
	run(t, func(p *sim.Proc) {
		fs := fsHolder.fs
		c := NewClient(fs, 1, 0, tr)
		h, _ := c.Open(p, "/tmp/scratch", ORdWr|OCreate, Mode0)
		h.Write(p, 5000)
		if err := c.Delete(p, "/tmp/scratch"); err != nil {
			t.Fatal(err)
		}
		if fs.Exists("/tmp/scratch") {
			t.Fatal("deleted file still visible")
		}
		if _, err := h.Read(p, 10); err != ErrDeleted {
			t.Fatalf("read of deleted file: %v", err)
		}
		if err := c.Delete(p, "/tmp/scratch"); err != ErrNotFound {
			t.Fatalf("double delete: %v", err)
		}
	})
	if len(tr.ofType(trace.EvDelete)) != 1 {
		t.Fatal("delete not traced")
	}
}

func TestMode1SharedPointer(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	offsets := make(map[int]int64)
	fs.Preload("/shared", 1<<20)
	for node := 0; node < 4; node++ {
		node := node
		k.Spawn("n", func(p *sim.Proc) {
			c := NewClient(fs, 1, node, nil)
			h, err := c.Open(p, "/shared", ORdOnly, Mode1)
			if err != nil {
				t.Error(err)
				return
			}
			// Record where this node's read landed via the pointer.
			before := h.Pointer()
			h.Read(p, 1000)
			offsets[node] = before
			h.Close(p)
		})
	}
	k.Run()
	seen := make(map[int64]bool)
	for node, off := range offsets {
		if off%1000 != 0 || off >= 4000 {
			t.Fatalf("node %d read at %d", node, off)
		}
		if seen[off] {
			t.Fatalf("offset %d claimed twice", off)
		}
		seen[off] = true
	}
}

func TestMode2RoundRobinOrder(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	fs.Preload("/rr", 1<<20)
	var order []int
	for _, node := range []int{2, 0, 1} { // spawn out of order
		node := node
		k.Spawn("n", func(p *sim.Proc) {
			c := NewClient(fs, 1, node, nil)
			h, err := c.Open(p, "/rr", ORdOnly, Mode2)
			if err != nil {
				t.Error(err)
				return
			}
			p.Sleep(sim.Time(100 * (3 - node))) // arrive in reverse node order
			for i := 0; i < 3; i++ {
				h.Read(p, 100)
				order = append(order, node)
			}
			h.Close(p)
		})
	}
	// Let all three open before any reads: spawn order above plus the
	// sleeps makes node 2 try first, but round-robin must serve 0,1,2.
	k.Run()
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin violated: %v", order)
		}
	}
}

func TestMode3SizeEnforcement(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	fs.Preload("/m3", 1<<20)
	var errs []error
	k.Spawn("a", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/m3", ORdOnly, Mode3)
		_, err := h.Read(p, 512)
		errs = append(errs, err)
		_, err = h.Read(p, 512)
		errs = append(errs, err)
		_, err = h.Read(p, 1024) // size change: must fail
		errs = append(errs, err)
		h.Close(p)
	})
	k.Run()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("fixed-size reads failed: %v", errs)
	}
	if errs[2] != ErrSizeMismatch {
		t.Fatalf("mismatched size error = %v", errs[2])
	}
}

func TestModeCountsTracked(t *testing.T) {
	run(t, func(p *sim.Proc) {
		fs := fsHolder.fs
		c := NewClient(fs, 1, 0, nil)
		h0, _ := c.Open(p, "/a", ORdWr|OCreate, Mode0)
		h1, _ := c.Open(p, "/b", ORdWr|OCreate, Mode1)
		h0.Close(p)
		h1.Close(p)
		if fs.Opens() != 2 {
			t.Fatalf("opens = %d", fs.Opens())
		}
		if fs.ModeCount(Mode0) != 1 || fs.ModeCount(Mode1) != 1 {
			t.Fatal("mode counts wrong")
		}
	})
}

func TestStripingSpreadsBlocksOverIONodes(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	k.Spawn("writer", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/big", OWrOnly|OCreate, Mode0)
		h.Write(p, 40*4096) // exactly 4 blocks per I/O node
		h.Close(p)
	})
	k.Run()
	for i := 0; i < fs.Config().IONodes; i++ {
		if reqs := fs.IONode(i).Requests(); reqs != 4 {
			t.Fatalf("I/O node %d got %d block requests, want 4", i, reqs)
		}
	}
}

func TestIONodeCachingSpeedsRereads(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	fs.Preload("/hot", 64*4096)
	var cold, warm sim.Time
	k.Spawn("reader", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/hot", ORdOnly, Mode0)
		t0 := p.Now()
		h.Read(p, 64*4096)
		cold = p.Now() - t0
		h.Seek(p, 0)
		t1 := p.Now()
		h.Read(p, 64*4096)
		warm = p.Now() - t1
		h.Close(p)
	})
	k.Run()
	if warm*2 >= cold {
		t.Fatalf("warm read %v not much faster than cold %v", warm, cold)
	}
	var hits int64
	for i := 0; i < fs.Config().IONodes; i++ {
		hits += fs.IONode(i).CacheHits()
	}
	if hits != 64 {
		t.Fatalf("cache hits = %d, want 64", hits)
	}
}

func TestDiskOpsCounted(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	k.Spawn("w", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/f", OWrOnly|OCreate, Mode0)
		h.Write(p, 10*4096)
		h.Close(p)
	})
	k.Run()
	if fs.TotalDiskOps() != 10 {
		t.Fatalf("disk ops = %d", fs.TotalDiskOps())
	}
}

func TestConcurrentWritersDistinctFiles(t *testing.T) {
	// The paper's dominant pattern: each node writes its own file.
	k := sim.New()
	fs := newTestFS(k)
	tr := &memTracer{}
	const nodes = 16
	for node := 0; node < nodes; node++ {
		node := node
		k.Spawn("writer", func(p *sim.Proc) {
			c := NewClient(fs, 7, node, tr)
			name := "/out/part-" + string(rune('a'+node))
			h, err := c.Open(p, name, OWrOnly|OCreate, Mode0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := h.Write(p, 1000); err != nil {
					t.Error(err)
				}
			}
			h.Close(p)
		})
	}
	k.Run()
	if got := len(tr.ofType(trace.EvOpen)); got != nodes {
		t.Fatalf("opens = %d", got)
	}
	closes := tr.ofType(trace.EvClose)
	for _, cl := range closes {
		if cl.Size != 20000 {
			t.Fatalf("file size at close = %d, want 20000", cl.Size)
		}
	}
}

func TestInterleavedReadOffsets(t *testing.T) {
	// Interleaved access: node i reads records i, i+P, i+2P, ... Each
	// node's trace must show sequential but non-consecutive offsets.
	k := sim.New()
	fs := newTestFS(k)
	const P, rec = 4, 1000
	fs.Preload("/matrix", 12*P*rec)
	tracers := make([]*memTracer, P)
	for node := 0; node < P; node++ {
		node := node
		tracers[node] = &memTracer{}
		k.Spawn("r", func(p *sim.Proc) {
			c := NewClient(fs, 3, node, tracers[node])
			h, _ := c.Open(p, "/matrix", ORdOnly, Mode0)
			for i := 0; i < 12; i++ {
				h.ReadAt(p, int64((i*P+node)*rec), rec)
			}
			h.Close(p)
		})
	}
	k.Run()
	for node, tr := range tracers {
		reads := tr.ofType(trace.EvRead)
		if len(reads) != 12 {
			t.Fatalf("node %d: %d reads", node, len(reads))
		}
		for i, ev := range reads {
			want := int64((i*P + node) * rec)
			if ev.Offset != want {
				t.Fatalf("node %d read %d at %d, want %d", node, i, ev.Offset, want)
			}
			// Interval between successive requests is (P-1)*rec.
			if i > 0 {
				gap := ev.Offset - (reads[i-1].Offset + reads[i-1].Size)
				if gap != (P-1)*rec {
					t.Fatalf("interval = %d", gap)
				}
			}
		}
	}
}

func TestTimeAdvancesWithIO(t *testing.T) {
	k := sim.New()
	fs := newTestFS(k)
	var elapsed sim.Time
	k.Spawn("w", func(p *sim.Proc) {
		c := NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/f", OWrOnly|OCreate, Mode0)
		start := p.Now()
		h.Write(p, 1<<20)
		elapsed = p.Now() - start
		h.Close(p)
	})
	k.Run()
	// 1 MB over ten ~1.5 MB/s disks: at least ~60 ms of simulated time.
	if elapsed < 50*sim.Millisecond {
		t.Fatalf("1 MB write took only %v of simulated time", elapsed)
	}
}

func TestZeroSizeOps(t *testing.T) {
	run(t, func(p *sim.Proc) {
		c := NewClient(fsHolder.fs, 1, 0, nil)
		h, _ := c.Open(p, "/f", ORdWr|OCreate, Mode0)
		if n, err := h.Write(p, 0); n != 0 || err != nil {
			t.Fatalf("zero write: %d %v", n, err)
		}
		if n, err := h.Read(p, 0); n != 0 || err != nil {
			t.Fatalf("zero read: %d %v", n, err)
		}
		if _, err := h.Write(p, -1); err != ErrBadRequest {
			t.Fatalf("negative write: %v", err)
		}
	})
}

func TestPrefetchSpeedsSequentialReads(t *testing.T) {
	run := func(prefetch bool) (sim.Time, int64) {
		k := sim.New()
		cfg := DefaultConfig()
		cfg.IONode.Prefetch = prefetch
		fs := New(k, cfg, stubTransport{lat: 100 * sim.Microsecond})
		fs.Preload("/seq", 256*4096)
		var elapsed sim.Time
		k.Spawn("r", func(p *sim.Proc) {
			c := NewClient(fs, 1, 0, nil)
			h, _ := c.Open(p, "/seq", ORdOnly, Mode0)
			start := p.Now()
			for {
				n, err := h.Read(p, 4096)
				if err != nil || n == 0 {
					break
				}
			}
			elapsed = p.Now() - start
			h.Close(p)
		})
		k.Run()
		var prefetches int64
		for i := 0; i < cfg.IONodes; i++ {
			prefetches += fs.IONode(i).Prefetches()
		}
		return elapsed, prefetches
	}
	coldTime, noPrefetches := run(false)
	warmTime, prefetches := run(true)
	if noPrefetches != 0 {
		t.Fatalf("prefetches happened while disabled: %d", noPrefetches)
	}
	if prefetches == 0 {
		t.Fatal("no prefetches with readahead enabled")
	}
	if warmTime >= coldTime {
		t.Fatalf("readahead did not help sequential reads: %v vs %v", warmTime, coldTime)
	}
}

func TestPrefetchDoesNotChangeData(t *testing.T) {
	// Readahead must not change what a read returns, only its timing.
	for _, prefetch := range []bool{false, true} {
		k := sim.New()
		cfg := DefaultConfig()
		cfg.IONode.Prefetch = prefetch
		fs := New(k, cfg, stubTransport{lat: 100 * sim.Microsecond})
		fs.Preload("/f", 10000)
		k.Spawn("r", func(p *sim.Proc) {
			c := NewClient(fs, 1, 0, nil)
			h, _ := c.Open(p, "/f", ORdOnly, Mode0)
			if n, err := h.Read(p, 20000); err != nil || n != 10000 {
				t.Errorf("prefetch=%v: n=%d err=%v", prefetch, n, err)
			}
			h.Close(p)
		})
		k.Run()
	}
}
