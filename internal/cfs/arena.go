package cfs

// Arena pools the file system's per-study allocations so a worker
// running many studies back to back (see core.Arena) stops paying for
// them after its first study:
//
//   - dense blockTable arrays: every file's block map; returned when a
//     file is deleted mid-study and en masse by FileSystem.Recycle.
//   - Clients: the per-(job, node) CFS library instances, whose
//     per-I/O-node dispatch tables (with their event closures and
//     request batches) are the transfer path's scratch state. The
//     machine releases a client when its node program ends, so later
//     jobs -- and later studies -- reuse the same tables.
//
// An Arena is not safe for concurrent use; give each worker its own.
// The zero value is ready to use.
type Arena struct {
	dense   [][]int64
	clients []*Client
	files   []*file
	handles []*Handle
	groups  []*openGroup
}

// getDense returns a pooled length-zero dense block array, or nil when
// the pool is empty.
func (a *Arena) getDense() []int64 {
	if n := len(a.dense); n > 0 {
		d := a.dense[n-1]
		a.dense[n-1] = nil
		a.dense = a.dense[:n-1]
		return d
	}
	return nil
}

// putDense returns a dense block array to the pool.
func (a *Arena) putDense(d []int64) {
	if cap(d) > 0 {
		a.dense = append(a.dense, d[:0])
	}
}

// getClient returns a pooled client, or nil when the pool is empty.
func (a *Arena) getClient() *Client {
	if n := len(a.clients); n > 0 {
		c := a.clients[n-1]
		a.clients[n-1] = nil
		a.clients = a.clients[:n-1]
		return c
	}
	return nil
}

// putClient returns a client to the pool.
func (a *Arena) putClient(c *Client) {
	a.clients = append(a.clients, c)
}

// getFile returns a pooled file struct (cleared, with its groups map
// retained), or nil when the pool is empty.
func (a *Arena) getFile() *file {
	if n := len(a.files); n > 0 {
		f := a.files[n-1]
		a.files[n-1] = nil
		a.files = a.files[:n-1]
		return f
	}
	return nil
}

// putFile clears a file struct and pools it. Only call once no handle
// can reach it (FileSystem.Recycle, after the study).
func (a *Arena) putFile(f *file) {
	for job, g := range f.groups {
		a.putGroup(g)
		delete(f.groups, job)
	}
	*f = file{groups: f.groups}
	a.files = append(a.files, f)
}

// getHandle returns a pooled handle, or nil when the pool is empty.
func (a *Arena) getHandle() *Handle {
	if n := len(a.handles); n > 0 {
		h := a.handles[n-1]
		a.handles[n-1] = nil
		a.handles = a.handles[:n-1]
		return h
	}
	return nil
}

// putHandle zeroes a handle and pools it.
func (a *Arena) putHandle(h *Handle) {
	*h = Handle{}
	a.handles = append(a.handles, h)
}

// getGroup returns an empty open group for the given mode.
func (a *Arena) getGroup(mode IOMode) *openGroup {
	if n := len(a.groups); n > 0 {
		g := a.groups[n-1]
		a.groups[n-1] = nil
		a.groups = a.groups[:n-1]
		g.mode = mode
		return g
	}
	return &openGroup{mode: mode}
}

// putGroup clears an open group (keeping its members array) and pools
// it. The group must have no waiters: groups are pooled either when
// their last member closes (no members, hence no waiters) or after
// the simulation has drained.
func (a *Arena) putGroup(g *openGroup) {
	*g = openGroup{members: g.members[:0]}
	a.groups = append(a.groups, g)
}
