// Package cfs reimplements Intel's Concurrent File System (CFS) as it
// ran on the iPSC/860: a Unix-like file interface extended with four
// I/O modes for coordinating parallel access, files striped round-robin
// across all I/O-node disks in 4 KB blocks, requests sent from compute
// nodes directly to the responsible I/O node, and a buffer cache only
// at the I/O nodes.
//
// The implementation simulates metadata and timing, not data contents:
// the CHARISMA study characterizes request streams, so what matters is
// which bytes each node touches and when, never the bytes' values.
package cfs

import "fmt"

// IOMode is one of CFS's four file-access coordination modes
// (Section 2.4 of the paper).
type IOMode uint8

const (
	// Mode0 gives each process its own file pointer.
	Mode0 IOMode = iota
	// Mode1 shares a single file pointer among all processes,
	// first-come first-served.
	Mode1
	// Mode2 shares a pointer and enforces round-robin ordering of
	// accesses across the nodes of the job.
	Mode2
	// Mode3 is Mode2 with the restriction that all access sizes be
	// identical.
	Mode3
)

// String names the mode the way the paper does.
func (m IOMode) String() string {
	if m > Mode3 {
		return fmt.Sprintf("IOMode(%d)", uint8(m))
	}
	return fmt.Sprintf("mode %d", uint8(m))
}

// Valid reports whether m is one of the four CFS modes.
func (m IOMode) Valid() bool { return m <= Mode3 }

// Open flags.
const (
	ORdOnly = 1 << 0
	OWrOnly = 1 << 1
	ORdWr   = ORdOnly | OWrOnly
	OCreate = 1 << 2
)

// Error values mirror the failures user programs saw from CFS.
type Error string

func (e Error) Error() string { return "cfs: " + string(e) }

const (
	ErrNotFound     Error = "file not found"
	ErrExists       Error = "file already exists"
	ErrDeleted      Error = "file was deleted"
	ErrClosed       Error = "handle is closed"
	ErrBadAccess    Error = "operation not permitted by open flags"
	ErrBadMode      Error = "invalid I/O mode"
	ErrSizeMismatch Error = "mode 3 requires identical request sizes"
	ErrBadRequest   Error = "invalid offset or size"
	ErrNoSpace      Error = "file system full"
)
