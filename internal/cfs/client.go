package cfs

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// reqHeaderBytes approximates the size of a CFS request message
// exclusive of data payload.
const reqHeaderBytes = 64

// Client is the CFS library as linked into one process (one compute
// node) of one job. Every call is traced through the client's Tracer,
// mirroring the paper's instrumented library.
type Client struct {
	fs     *FileSystem
	job    uint32
	node   int
	tracer Tracer

	// Transfer scratch state, reusable because a client's calls are
	// serialized on its node's process (transfer blocks until the last
	// response arrives). Indexed by I/O-node id; sized at first use.
	dispatches []ioDispatch
	wg         sim.WaitGroup

	// handles tracks every handle this client opened, so Release can
	// return them to the arena pool when the node program ends. Only
	// maintained when the file system has an arena.
	handles []*Handle
}

// NewClient returns the CFS client for a (job, node) pair. The tracer
// may be NopTracer{} to model an uninstrumented program. With an
// arena on the file system, released clients are reused, dispatch
// tables and all.
func NewClient(fs *FileSystem, job uint32, node int, tracer Tracer) *Client {
	if tracer == nil {
		tracer = NopTracer{}
	}
	if fs.arena != nil {
		if c := fs.arena.getClient(); c != nil {
			c.reinit(fs, job, node, tracer)
			return c
		}
	}
	return &Client{fs: fs, job: job, node: node, tracer: tracer}
}

// reinit rebinds a pooled client. The dispatch table's bound closures
// stay valid -- they capture the dispatch slots, whose backing array
// is retained -- so only the per-study references need refreshing.
func (c *Client) reinit(fs *FileSystem, job uint32, node int, tracer Tracer) {
	c.fs = fs
	c.job = job
	c.node = node
	c.tracer = tracer
	if len(c.dispatches) != fs.cfg.IONodes {
		// A machine variant with a different I/O-node count; rebuild on
		// first use.
		c.dispatches = nil
		return
	}
	for i := range c.dispatches {
		d := &c.dispatches[i]
		d.io = fs.ionodes[i]
		d.batch = d.batch[:0]
		d.bytes = 0
	}
}

// Release returns the client to the file system's arena for reuse by
// a later job, or a later study on the same arena. Call it only after
// the node program has finished: the client, its handles, and any
// in-flight transfers must all be done. Without an arena it is a
// no-op.
func (c *Client) Release() {
	a := c.fs.arena
	if a == nil {
		return
	}
	// Handles are pooled only here, never on Close: a stale reference
	// to a closed handle therefore keeps observing ErrClosed for the
	// rest of the job instead of silently aliasing a newer open.
	for i, h := range c.handles {
		a.putHandle(h)
		c.handles[i] = nil
	}
	c.handles = c.handles[:0]
	c.fs = nil
	c.tracer = nil
	for i := range c.dispatches {
		c.dispatches[i].io = nil
	}
	a.putClient(c)
}

// newHandle returns a zeroed handle bound to the client, pooled when
// the file system has an arena.
func (c *Client) newHandle() *Handle {
	if a := c.fs.arena; a != nil {
		h := a.getHandle()
		if h == nil {
			h = &Handle{}
		}
		h.c = c
		c.handles = append(c.handles, h)
		return h
	}
	return &Handle{c: c}
}

// ioDispatch is the per-I/O-node leg of one transfer: the request
// batch, its timing, and two closures bound once at initialization so
// scheduling the request and response events never allocates.
type ioDispatch struct {
	c         *Client
	io        *IONode
	batch     []blockRequest
	bytes     int64    // payload bytes of this call that this node owns
	arrival   sim.Time // request arrival at the I/O node
	respBytes int
	sendFn    func() // runs at arrival: serve the batch, schedule response
	doneFn    func() // runs when the response reaches the compute node
}

// send runs at the I/O node when the request message arrives.
func (d *ioDispatch) send() {
	fs := d.c.fs
	done := d.io.serve(d.arrival, d.batch)
	fs.k.At(done+fs.tp.FromIONode(d.io.id, d.c.node, d.respBytes), d.doneFn)
}

// finish runs at the compute node when the response arrives.
func (d *ioDispatch) finish() { d.c.wg.Done() }

// scratch returns the client's per-I/O-node dispatch table, building
// it on first use (the node count is fixed at mount time).
func (c *Client) scratch() []ioDispatch {
	if c.dispatches == nil {
		nio := c.fs.cfg.IONodes
		c.dispatches = make([]ioDispatch, nio)
		// One shared backing array seeds every node's batch (requests
		// are overwhelmingly small, so most batches hold one or two
		// blocks); a batch that outgrows its window reallocates
		// independently thanks to the capacity-limited slicing.
		const seedCap = 4
		backing := make([]blockRequest, nio*seedCap)
		for i := range c.dispatches {
			d := &c.dispatches[i]
			d.c = c
			d.io = c.fs.ionodes[i]
			d.batch = backing[i*seedCap : i*seedCap : (i+1)*seedCap]
			d.sendFn = d.send
			d.doneFn = d.finish
		}
	}
	return c.dispatches
}

// newGroup returns an empty open group, pooled when the file system
// has an arena.
func (c *Client) newGroup(mode IOMode) *openGroup {
	if a := c.fs.arena; a != nil {
		return a.getGroup(mode)
	}
	return &openGroup{mode: mode}
}

// Handle is an open file descriptor on one node.
type Handle struct {
	c       *Client
	f       *file
	flags   int
	mode    IOMode
	pointer int64      // private pointer (mode 0)
	group   *openGroup // shared state (modes 1-3)
	closed  bool
}

// metadataDelay models a small metadata round trip (open, close,
// delete) to I/O node 0.
func (c *Client) metadataDelay(p *sim.Proc) {
	d := c.fs.tp.ToIONode(c.node, 0, reqHeaderBytes) +
		c.fs.tp.FromIONode(0, c.node, reqHeaderBytes)
	p.Sleep(d)
}

// Open opens (or with OCreate, creates) a file in the given I/O mode.
func (c *Client) Open(p *sim.Proc, name string, flags int, mode IOMode) (*Handle, error) {
	if !mode.Valid() {
		return nil, ErrBadMode
	}
	if flags&ORdWr == 0 {
		return nil, ErrBadAccess
	}
	c.metadataDelay(p)
	f, ok := c.fs.lookup(name)
	created := false
	if !ok {
		if flags&OCreate == 0 {
			return nil, ErrNotFound
		}
		f = c.fs.create(name, c.job)
		created = true
	}
	f.opens++
	c.fs.opens++
	c.fs.modeCounts[mode]++
	h := c.newHandle()
	h.f = f
	h.flags = flags
	h.mode = mode
	if mode != Mode0 {
		g := f.groups[c.job]
		if g == nil || g.mode != mode {
			g = c.newGroup(mode)
			f.groups[c.job] = g
		}
		g.members = append(g.members, c.node)
		sort.Ints(g.members)
		h.group = g
	}
	ev := trace.Event{
		Type: trace.EvOpen, Job: c.job, File: f.id, Mode: uint8(mode),
	}
	if flags&ORdOnly != 0 {
		ev.Flags |= trace.FlagRead
	}
	if flags&OWrOnly != 0 {
		ev.Flags |= trace.FlagWrite
	}
	if created {
		ev.Flags |= trace.FlagCreate
	}
	c.tracer.Record(ev)
	return h, nil
}

// Mode returns the handle's I/O mode.
func (h *Handle) Mode() IOMode { return h.mode }

// FileID returns the global identity of the open file.
func (h *Handle) FileID() uint64 { return h.f.id }

// Size returns the file's current size.
func (h *Handle) Size() int64 { return h.f.size }

// Pointer returns the handle's current file pointer (the shared
// pointer for modes 1-3). After Close it returns the pointer as of
// the close.
func (h *Handle) Pointer() int64 {
	if h.group != nil {
		return h.group.pointer
	}
	return h.pointer
}

// Seek sets the file pointer. For shared-pointer modes it moves the
// shared pointer, as CFS did.
func (h *Handle) Seek(p *sim.Proc, off int64) error {
	if h.closed {
		return ErrClosed
	}
	if off < 0 {
		return ErrBadRequest
	}
	if h.group != nil {
		h.group.pointer = off
	} else {
		h.pointer = off
	}
	h.c.tracer.Record(trace.Event{
		Type: trace.EvSeek, Job: h.c.job, File: h.f.id, Offset: off, Mode: uint8(h.mode),
	})
	return nil
}

// Read transfers up to size bytes at the file pointer, advancing it.
// It returns the number of bytes read (short at end of file).
func (h *Handle) Read(p *sim.Proc, size int64) (int64, error) {
	off, err := h.claimRange(p, size)
	if err != nil {
		return 0, err
	}
	return h.readAt(p, off, size)
}

// ReadAt transfers up to size bytes at the given offset without using
// the file pointer (a seek+read in one call; only meaningful for
// mode 0, where each process owns its pointer).
func (h *Handle) ReadAt(p *sim.Proc, off, size int64) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if h.mode != Mode0 {
		return 0, ErrBadMode
	}
	if off < 0 || size < 0 {
		return 0, ErrBadRequest
	}
	h.pointer = off + size
	return h.readAt(p, off, size)
}

// Write transfers size bytes at the file pointer, advancing it and
// extending the file as needed.
func (h *Handle) Write(p *sim.Proc, size int64) (int64, error) {
	off, err := h.claimRange(p, size)
	if err != nil {
		return 0, err
	}
	return h.writeAt(p, off, size)
}

// WriteAt transfers size bytes at the given offset (mode 0 only).
func (h *Handle) WriteAt(p *sim.Proc, off, size int64) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if h.mode != Mode0 {
		return 0, ErrBadMode
	}
	if off < 0 || size < 0 {
		return 0, ErrBadRequest
	}
	h.pointer = off + size
	return h.writeAt(p, off, size)
}

// claimRange resolves the starting offset for a pointer-based access,
// enforcing the mode's coordination rules, and advances the pointer.
func (h *Handle) claimRange(p *sim.Proc, size int64) (int64, error) {
	if h.closed {
		return 0, ErrClosed
	}
	if size < 0 {
		return 0, ErrBadRequest
	}
	switch h.mode {
	case Mode0:
		off := h.pointer
		h.pointer += size
		return off, nil
	case Mode1:
		off := h.group.pointer
		h.group.pointer += size
		return off, nil
	case Mode2, Mode3:
		g := h.group
		if h.mode == Mode3 {
			if g.reqSize == 0 {
				g.reqSize = size
			} else if g.reqSize != size {
				return 0, ErrSizeMismatch
			}
		}
		for g.members[g.turn] != h.c.node {
			g.waiters = append(g.waiters, p)
			p.Suspend()
		}
		off := g.pointer
		g.pointer += size
		g.turn = (g.turn + 1) % len(g.members)
		g.wakeAll()
		return off, nil
	}
	return 0, ErrBadMode
}

// readAt performs the traced, timed read.
func (h *Handle) readAt(p *sim.Proc, off, size int64) (int64, error) {
	if h.flags&ORdOnly == 0 {
		return 0, ErrBadAccess
	}
	if h.f.deleted {
		return 0, ErrDeleted
	}
	n := size
	if off >= h.f.size {
		n = 0
	} else if off+n > h.f.size {
		n = h.f.size - off
	}
	h.c.tracer.Record(trace.Event{
		Type: trace.EvRead, Job: h.c.job, File: h.f.id,
		Offset: off, Size: n, Mode: uint8(h.mode),
	})
	if n == 0 {
		return 0, nil
	}
	h.transfer(p, off, n, false)
	return n, nil
}

// writeAt performs the traced, timed write.
func (h *Handle) writeAt(p *sim.Proc, off, size int64) (int64, error) {
	if h.flags&OWrOnly == 0 {
		return 0, ErrBadAccess
	}
	if h.f.deleted {
		return 0, ErrDeleted
	}
	h.c.tracer.Record(trace.Event{
		Type: trace.EvWrite, Job: h.c.job, File: h.f.id,
		Offset: off, Size: size, Mode: uint8(h.mode),
	})
	if size == 0 {
		return 0, nil
	}
	if end := off + size; end > h.f.size {
		h.f.size = end
	}
	h.transfer(p, off, size, true)
	return size, nil
}

// transfer moves [off, off+n) between the compute node and the I/O
// nodes: the byte range is split into 4 KB file blocks, blocks are
// grouped by owning I/O node (round-robin striping), one request
// message goes to each involved I/O node, and the caller blocks until
// the last response arrives.
func (h *Handle) transfer(p *sim.Proc, off, n int64, isWrite bool) {
	fs := h.c.fs
	bs := int64(fs.cfg.BlockBytes)
	nio := int64(fs.cfg.IONodes)
	first := off / bs
	last := (off + n - 1) / bs

	// Group blocks by owning I/O node into the client's reusable
	// dispatch table. Blocks are visited in increasing order and each
	// node's batch is appended in that order, so batches come out in
	// deterministic (node id, file block) order by construction — no
	// maps, no sort.
	ds := h.c.scratch()
	involved := 0
	for b := first; b <= last; b++ {
		d := &ds[b%nio]
		db, allocated := h.f.blocks.get(b)
		if isWrite && !allocated {
			newBlock, err := d.io.allocBlock()
			if err != nil {
				// Volume exhaustion: model the write as failing to
				// reach disk but still costing the request. The
				// 7.6 GB study volume never fills in practice.
				continue
			}
			h.f.blocks.set(b, newBlock)
			db = newBlock
			allocated = true
		}
		if !allocated {
			db = -1
		}
		// Bytes of this request that land in block b.
		bStart, bEnd := b*bs, (b+1)*bs
		s, e := max64(off, bStart), min64(off+n, bEnd)
		if len(d.batch) == 0 {
			involved++
		}
		d.bytes += e - s
		req := blockRequest{
			file: h.f.id, fileBlock: b, diskBlock: db, isWrite: isWrite,
			nextFileBlock: -1, nextDiskBlock: -1,
		}
		if !isWrite && fs.cfg.IONode.Prefetch {
			// The next block on the same I/O node's stripe.
			nb := b + nio
			if ndb, ok := h.f.blocks.get(nb); ok {
				req.nextFileBlock, req.nextDiskBlock = nb, ndb
			}
		}
		d.batch = append(d.batch, req)
	}
	if involved == 0 {
		return
	}

	wg := &h.c.wg
	wg.Add(involved)
	now := p.Now()
	for id := range ds {
		d := &ds[id]
		if len(d.batch) == 0 {
			continue
		}
		reqBytes := reqHeaderBytes
		if isWrite {
			reqBytes += int(d.bytes)
		}
		d.respBytes = reqHeaderBytes
		if !isWrite {
			d.respBytes += int(d.bytes)
		}
		d.arrival = now + fs.tp.ToIONode(h.c.node, id, reqBytes)
		fs.k.At(d.arrival, d.sendFn)
	}
	wg.Wait(p)

	// All batches were consumed before Wait returned (serve runs inside
	// the request event); reset the table for the next call, keeping
	// the backing arrays.
	for id := range ds {
		ds[id].batch = ds[id].batch[:0]
		ds[id].bytes = 0
	}
}

// Close releases the handle. The file's size is recorded in the trace,
// which is where the paper's "file size at close" distribution comes
// from.
func (h *Handle) Close(p *sim.Proc) error {
	if h.closed {
		return ErrClosed
	}
	h.closed = true
	h.c.metadataDelay(p)
	h.f.opens--
	if h.group != nil {
		// Detach from the group, snapshotting the shared pointer so
		// Pointer() on the closed handle answers from the moment of
		// the close rather than reading a group that may be pooled
		// and serving a later open.
		h.pointer = h.group.pointer
		for i, m := range h.group.members {
			if m == h.c.node {
				h.group.members = append(h.group.members[:i], h.group.members[i+1:]...)
				break
			}
		}
		if len(h.group.members) > 0 {
			h.group.turn %= len(h.group.members)
			h.group.wakeAll()
		} else {
			delete(h.f.groups, h.c.job)
			// No members means no waiters; the group can serve the
			// next open.
			if a := h.c.fs.arena; a != nil {
				a.putGroup(h.group)
			}
		}
		h.group = nil
	}
	h.c.tracer.Record(trace.Event{
		Type: trace.EvClose, Job: h.c.job, File: h.f.id, Size: h.f.size, Mode: uint8(h.mode),
	})
	return nil
}

// Delete unlinks a file by name. Open handles keep working against
// the unlinked file in Unix fashion only until they next touch data,
// when they observe ErrDeleted; CFS behaved similarly.
func (c *Client) Delete(p *sim.Proc, name string) error {
	c.metadataDelay(p)
	f, ok := c.fs.lookup(name)
	if !ok {
		return ErrNotFound
	}
	c.fs.removeFile(f)
	c.tracer.Record(trace.Event{
		Type: trace.EvDelete, Job: c.job, File: f.id,
	})
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
