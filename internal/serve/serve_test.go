// The serve suite drives the daemon exactly as a client would --
// through httptest and the HTTP handler, no real socket -- in the
// mock-transport style of the streaming-agent SDKs: deterministic
// gates instead of sleeps wherever the server exposes a seam.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

// tinySpec is the corpus's canary scenario, the same file the CLI
// tests use.
const tinySpecPath = "../../testdata/scenarios/tiny-smoke.json"

func tinySpecBody(t *testing.T) []byte {
	t.Helper()
	body, err := os.ReadFile(tinySpecPath)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// expectedReport renders what `charisma -scenario` prints for a spec
// body -- the bytes every HTTP report must match.
func expectedReport(t *testing.T, body []byte) string {
	t.Helper()
	spec, err := scenario.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.Format()
}

// newTestServer builds a server over a temp store and an httptest
// front end, both torn down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

// postSpec submits a spec body and decodes the Status response.
func postSpec(t *testing.T, ts *httptest.Server, body []byte) (int, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp.StatusCode, st
}

// pollUntil polls a job's status until cond holds or the deadline
// passes.
func pollUntil(t *testing.T, ts *httptest.Server, id string, cond func(Status) bool) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck at %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func terminal(st Status) bool { return st.State == StateDone || st.State == StateFailed }

// fetchReport fetches a finished job's plain-text report.
func fetchReport(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("report content type %q, want text/plain", ct)
	}
	return string(body)
}

// readSSE consumes one events stream to EOF and returns the decoded
// events.
func readSSE(t *testing.T, ts *httptest.Server, id, query string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("events status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// TestSubmitRunReport is the end-to-end happy path: submit the corpus
// canary, follow it to done, and read back the report -- byte-identical
// to the single-process scenario engine (and therefore to the CLI).
func TestSubmitRunReport(t *testing.T) {
	body := tinySpecBody(t)
	want := expectedReport(t, body)
	_, ts := newTestServer(t, Config{})

	code, st := postSpec(t, ts, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	if st.ID == "" || st.Scenario != "tiny-smoke" || st.Total != 1 {
		t.Fatalf("submit status %+v", st)
	}

	final := pollUntil(t, ts, st.ID, terminal)
	if final.State != StateDone || final.Done != final.Total {
		t.Fatalf("final status %+v", final)
	}
	if final.Cached {
		t.Fatalf("fresh run reported cached: %+v", final)
	}
	if got := fetchReport(t, ts, st.ID); got != want {
		t.Fatalf("HTTP report differs from the scenario engine:\n%s\nvs\n%s", got, want)
	}

	// The report endpoint refused while the job was live; a bogus id is
	// a clean 404 on every endpoint.
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/report", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestSSEProgressStream pins the event stream's shape: queued,
// started, one progress event per study, and a terminal done event
// with increasing seqs -- then ?from= replays a suffix.
func TestSSEProgressStream(t *testing.T) {
	body := tinySpecBody(t)
	_, ts := newTestServer(t, Config{})
	_, st := postSpec(t, ts, body)
	pollUntil(t, ts, st.ID, terminal)

	evs := readSSE(t, ts, st.ID, "")
	if len(evs) < 3 {
		t.Fatalf("only %d events: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d: %+v", i, ev.Seq, evs)
		}
	}
	if evs[0].Type != StateQueued {
		t.Fatalf("first event %+v, want queued", evs[0])
	}
	last := evs[len(evs)-1]
	if last.Type != StateDone || last.Done != last.Total {
		t.Fatalf("terminal event %+v, want done", last)
	}
	var progress int
	for _, ev := range evs {
		if ev.Type == "progress" {
			progress++
			if ev.Label == "" || ev.State != core.StoreSpecRan {
				t.Fatalf("progress event %+v, want a labeled %q study", ev, core.StoreSpecRan)
			}
		}
	}
	if progress != st.Total {
		t.Fatalf("%d progress events for %d studies", progress, st.Total)
	}

	// Resuming from the middle replays only the suffix, seqs intact.
	tail := readSSE(t, ts, st.ID, "?from=2")
	if len(tail) != len(evs)-2 || tail[0].Seq != 2 {
		t.Fatalf("?from=2 replayed %d events starting at seq %d, want %d from 2",
			len(tail), tail[0].Seq, len(evs)-2)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?from=-1 = %d, want 400", resp.StatusCode)
	}
}

// TestCacheHitShortCircuit is the content-addressed cache contract: a
// second server over the same store directory answers an identical
// spec from disk -- 200, cached, and never touching an executor.
func TestCacheHitShortCircuit(t *testing.T) {
	body := tinySpecBody(t)
	want := expectedReport(t, body)
	dir := t.TempDir()

	_, ts1 := newTestServer(t, Config{Dir: dir})
	_, st1 := postSpec(t, ts1, body)
	pollUntil(t, ts1, st1.ID, terminal)
	ts1.Close()

	// The restarted server must not simulate: the gate fails the test
	// if any executor picks up a job.
	srv2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	srv2.execGate = func(j *job) { t.Errorf("cache hit reached an executor (job %s)", j.id) }
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Shutdown(context.Background())

	code, st2 := postSpec(t, ts2, body)
	if code != http.StatusOK {
		t.Fatalf("cached submit status %d, want 200", code)
	}
	if st2.State != StateDone || !st2.Cached || st2.ID != st1.ID {
		t.Fatalf("cached submit %+v (first job %s)", st2, st1.ID)
	}
	if got := fetchReport(t, ts2, st2.ID); got != want {
		t.Fatalf("cached report differs:\n%s\nvs\n%s", got, want)
	}

	// A cosmetically different rendering of the same spec -- reordered
	// keys, extra whitespace -- canonicalizes to the same job.
	var loose map[string]any
	if err := json.Unmarshal(body, &loose); err != nil {
		t.Fatal(err)
	}
	reordered, err := json.MarshalIndent(loose, "  ", "    ")
	if err != nil {
		t.Fatal(err)
	}
	code, st3 := postSpec(t, ts2, reordered)
	if code != http.StatusOK || st3.ID != st1.ID || !st3.Cached {
		t.Fatalf("reordered spec: status %d, %+v, want cache hit on job %s", code, st3, st1.ID)
	}
}

// gatedSpec renders a tiny one-study spec whose seed makes it unique,
// so backpressure tests can fill the queue with distinct jobs.
func gatedSpec(seed int) []byte {
	return []byte(fmt.Sprintf(`{
		"version": 1,
		"name": "gated-%d",
		"seeds": [%d],
		"scales": [0.01],
		"workloads": [{"name": "w", "base": "empty", "jobs": {"status-check": 10}}]
	}`, seed, seed))
}

// TestBackpressure429 pins the explicit-backpressure contract: with
// one held executor and a one-deep queue, the third distinct job is
// refused with 429 and a Retry-After header, and succeeds once the
// gate lifts.
func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	openGate := sync.OnceFunc(func() { close(gate) })
	defer openGate()
	srv, ts := newTestServer(t, Config{Jobs: 1, Queue: 1, RetryAfter: 7 * time.Second})
	srv.execGate = func(*job) { <-gate }

	// Job A occupies the single executor (wait until it is actually
	// picked up, or it would still be filling the queue slot).
	_, stA := postSpec(t, ts, gatedSpec(1))
	pollUntil(t, ts, stA.ID, func(st Status) bool { return st.State == StateRunning })

	// Job B fills the queue.
	code, stB := postSpec(t, ts, gatedSpec(2))
	if code != http.StatusAccepted || stB.State != StateQueued {
		t.Fatalf("job B: status %d, %+v", code, stB)
	}

	// Job C is refused with explicit backpressure.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(gatedSpec(3))))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After %q, want \"7\"", ra)
	}
	if _, ok := srv.lookup(jobKeyOf(t, gatedSpec(3))); ok {
		t.Fatal("refused job stayed registered; a retry would coalesce onto a dead job")
	}

	// Lifting the gate drains A then B; resubmitting C now succeeds.
	openGate()
	pollUntil(t, ts, stA.ID, terminal)
	pollUntil(t, ts, stB.ID, terminal)
	code, stC := postSpec(t, ts, gatedSpec(3))
	if code != http.StatusAccepted {
		t.Fatalf("job C retry: status %d, %+v", code, stC)
	}
	if st := pollUntil(t, ts, stC.ID, terminal); st.State != StateDone {
		t.Fatalf("job C retry ended %+v", st)
	}
}

// jobKeyOf computes the job key for a raw body, for test lookups.
func jobKeyOf(t *testing.T, body []byte) string {
	t.Helper()
	spec, err := scenario.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	id, err := JobKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestSubmitRejections covers the non-2xx submit paths: unparseable
// and invalid specs are 400s naming the problem, and a draining
// server refuses intake with 503.
func TestSubmitRejections(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	for _, bad := range []string{
		"{not json",
		`{"version": 99, "name": "x", "workloads": []}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(tinySpecBody(t))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}
}

// multiStudySpec is a six-study scenario on one worker: long enough
// that a shutdown issued after the first commit lands mid-job.
const multiStudySpec = `{
	"version": 1,
	"name": "drain-me",
	"seeds": [1, 2, 3, 4, 5, 6],
	"scales": [0.01],
	"workers": 1,
	"workloads": [{"name": "w", "base": "empty", "jobs": {"status-check": 40, "bulk-dump": 2}}]
}`

// TestShutdownMidJobReleasesLeases is the graceful-drain contract:
// shutting down while a job is simulating stops it after its in-flight
// study with every store lease released, the job's stream terminates,
// and a resubmission against the same store resumes from the committed
// outcomes to the exact full report.
func TestShutdownMidJobReleasesLeases(t *testing.T) {
	body := []byte(multiStudySpec)
	want := expectedReport(t, body)
	dir := t.TempDir()

	srv, ts := newTestServer(t, Config{Dir: dir, Jobs: 1})
	_, st := postSpec(t, ts, body)
	// Wait for the first committed study so the shutdown is genuinely
	// mid-job, then drain.
	pollUntil(t, ts, st.ID, func(s Status) bool { return s.Done >= 1 || terminal(s) })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	final := pollUntil(t, ts, st.ID, terminal)
	if final.State == StateFailed && !strings.Contains(final.Error, "resubmission") {
		t.Fatalf("failure reason %q does not point at resubmission", final.Error)
	}
	// The terminal event reached the stream (the SSE read returns
	// because the stream is terminal, not because we time out).
	evs := readSSE(t, ts, st.ID, "")
	if lt := evs[len(evs)-1].Type; lt != StateFailed && lt != StateDone {
		t.Fatalf("stream's last event is %q, want terminal", lt)
	}
	// Every lease is released, machine-wide: no claim survives under
	// any job directory.
	leases, _ := filepath.Glob(filepath.Join(dir, "*", "*.lease"))
	if len(leases) != 0 {
		t.Fatalf("leases survived shutdown: %v", leases)
	}

	// A fresh server over the same store resumes the job from its
	// committed outcomes and produces the exact single-process report.
	_, ts2 := newTestServer(t, Config{Dir: dir, Jobs: 1})
	_, st2 := postSpec(t, ts2, body)
	if st2.ID != st.ID {
		t.Fatalf("resubmission got job %s, want the content address %s", st2.ID, st.ID)
	}
	if f := pollUntil(t, ts2, st2.ID, terminal); f.State != StateDone {
		t.Fatalf("resumed job ended %+v", f)
	}
	if got := fetchReport(t, ts2, st2.ID); got != want {
		t.Fatalf("resumed report differs from the single-process run:\n%s\nvs\n%s", got, want)
	}
}

// TestCoalescedSubmissions: two in-flight submissions of one spec are
// one job -- the second returns the first's id without queueing
// anything.
func TestCoalescedSubmissions(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{Jobs: 1, Queue: 4})
	srv.execGate = func(*job) { <-gate }
	defer close(gate)

	_, st1 := postSpec(t, ts, gatedSpec(9))
	code, st2 := postSpec(t, ts, gatedSpec(9))
	if code != http.StatusAccepted || st2.ID != st1.ID {
		t.Fatalf("duplicate submit: status %d, job %s, want %s", code, st2.ID, st1.ID)
	}
	srv.mu.Lock()
	n := len(srv.jobs)
	srv.mu.Unlock()
	if n != 1 {
		t.Fatalf("%d jobs registered for one spec", n)
	}
}

// TestHealthz pins the liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || doc.Status != "ok" {
		t.Fatalf("healthz: %d, %+v", resp.StatusCode, doc)
	}
}
