// Package serve is the simulation-as-a-service daemon: the scenario
// engine and the persistent run store behind an HTTP/JSON API. A
// client POSTs a scenario spec (the internal/scenario schema, faults
// block and all) and gets a job id; it polls the job, follows its
// progress as a server-sent event stream, and fetches the finished
// report as plain text -- byte-identical to what `charisma -scenario`
// prints for the same spec.
//
// Jobs are content-addressed: the job id is a hash of the canonical
// spec plus the run store's code-version salt, and each job owns the
// run-store directory <root>/<id>. That makes the PR 5 fingerprint
// store a shared result cache: an identical spec from any client --
// this process, a restarted server, or another server sharing the
// directory tree -- maps to the same directory, and when every
// outcome file is already committed the job completes instantly from
// disk without simulating anything. Concurrent identical submissions
// coalesce onto one job; concurrent servers sharing a directory
// coordinate through the store's lease protocol exactly like CLI
// workers do.
//
// Execution is bounded: a fixed pool of executor goroutines drains a
// bounded queue, and a submission that finds the queue full is
// refused with 429 and a Retry-After header instead of being buffered
// without limit -- explicit backpressure, so a traffic spike degrades
// into retries rather than into an unbounded process. Shutdown stops
// intake, cancels the executors' context, and waits: an in-flight job
// finishes its current study, releases every lease it holds, and is
// marked failed; its committed outcomes stay in the store, so a
// resubmission after restart picks up exactly where it stopped.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/scenario"
)

// Config shapes one server.
type Config struct {
	// Dir is the run-store root; each job runs in <Dir>/<jobID>. It is
	// created if absent.
	Dir string
	// Jobs is the executor-goroutine count -- the number of scenarios
	// simulating concurrently. <= 0 means 2. (Each job additionally
	// fans its studies across its spec's own worker count.)
	Jobs int
	// Queue bounds the jobs waiting for an executor; a submission
	// beyond it is refused with 429. <= 0 means 16.
	Queue int
	// LeaseTTL is the run store's work-claim TTL for job execution
	// (0 = core.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// RetryAfter is the backoff advertised on 429 responses
	// (0 = 1 second; sub-second values round up to 1s, the header's
	// granularity).
	RetryAfter time.Duration
	// Log, when non-nil, receives one line per lifecycle event (job
	// accepted, started, finished, store housekeeping). nil discards.
	Log io.Writer
}

// Job states, as reported in status documents and SSE events.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Event is one entry in a job's progress stream, delivered over SSE
// as `event: <Type>` with the JSON document as its data line.
type Event struct {
	// Seq numbers events within the job from 0; the SSE id field
	// carries it, so a reconnecting client can resume with ?from=.
	Seq int `json:"seq"`
	// Type is "queued", "started", "progress", "done", or "failed".
	Type string `json:"type"`
	// Done / Total count committed studies within the job.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Label and State describe one study on progress events: the
	// study's report label and how its outcome materialized
	// (core.StoreSpecRan / Skipped / Observed).
	Label string `json:"label,omitempty"`
	State string `json:"state,omitempty"`
	// Cached marks a done event served entirely from the store.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure reason on failed events.
	Error string `json:"error,omitempty"`
}

// Status is a job's externally visible state, returned by the submit
// and status endpoints.
type Status struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	State    string `json:"state"`
	// Cached reports that the job's result came from the store without
	// this job simulating anything.
	Cached bool `json:"cached"`
	// Done / Total count committed studies.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error is the failure reason for failed jobs.
	Error string `json:"error,omitempty"`
}

// job is one submitted scenario and everything the server knows
// about it.
type job struct {
	id    string
	spec  *scenario.Spec
	total int

	mu      sync.Mutex
	state   string
	cached  bool
	err     string
	report  string
	done    int
	events  []Event
	updated chan struct{} // closed and replaced on every append
}

// newJob builds a job in the queued state with its initial event.
func newJob(id string, spec *scenario.Spec, total int) *job {
	j := &job{
		id: id, spec: spec, total: total,
		state:   StateQueued,
		updated: make(chan struct{}),
	}
	j.mu.Lock()
	j.appendLocked(Event{Type: StateQueued})
	j.mu.Unlock()
	return j
}

// appendLocked records one event (stamping its seq and running
// counts) and wakes every follower. The state change an event
// describes must happen under the same lock acquisition, so a
// follower's snapshot never sees a terminal state whose terminal
// event is missing.
func (j *job) appendLocked(ev Event) {
	ev.Seq = len(j.events)
	ev.Done, ev.Total = j.done, j.total
	j.events = append(j.events, ev)
	close(j.updated)
	j.updated = make(chan struct{})
}

// setProgress folds one store notification into the job and emits the
// matching progress event. It is the store's Progress hook and may be
// called from any worker goroutine.
func (j *job) setProgress(p core.StoreProgress) {
	j.mu.Lock()
	if p.Done > j.done {
		j.done = p.Done
	}
	j.appendLocked(Event{Type: "progress", Label: p.Label, State: p.State})
	j.mu.Unlock()
}

// start marks the job running.
func (j *job) start() {
	j.mu.Lock()
	j.state = StateRunning
	j.appendLocked(Event{Type: "started"})
	j.mu.Unlock()
}

// complete marks the job done with its report text.
func (j *job) complete(report string, cached bool) {
	j.mu.Lock()
	j.state = StateDone
	j.cached = cached
	j.report = report
	j.done = j.total
	j.appendLocked(Event{Type: StateDone, Cached: cached})
	j.mu.Unlock()
}

// fail marks the job failed. Failing a job twice (an interrupted run
// and the shutdown sweep racing) records one terminal state and two
// failure events, which followers tolerate.
func (j *job) fail(reason string) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = reason
	j.appendLocked(Event{Type: StateFailed, Error: reason})
	j.mu.Unlock()
}

// status snapshots the job for JSON responses.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.id, Scenario: j.spec.Name, State: j.state,
		Cached: j.cached, Done: j.done, Total: j.total, Error: j.err,
	}
}

// snapshot returns the events from seq on, the current update channel
// (to wait on when the slice is exhausted), and whether the job is
// terminal.
func (j *job) snapshot(from int) (evs []Event, updated chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		evs = j.events[from:]
	}
	return evs, j.updated, j.state == StateDone || j.state == StateFailed
}

// Server is one serve daemon. Create with New, expose with Handler,
// stop with Shutdown.
type Server struct {
	cfg Config

	mu   sync.Mutex
	jobs map[string]*job

	queue   chan *job
	ctx     context.Context // cancelled by Shutdown; bounds job execution
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	drained chan struct{} // closed when every executor has exited

	// execGate, when non-nil, runs at the top of every job execution;
	// tests use it to hold a job mid-flight deterministically.
	execGate func(j *job)
}

// New validates the config, creates the store root, and starts the
// executor pool.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: empty store directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		jobs:    make(map[string]*job),
		queue:   make(chan *job, cfg.Queue),
		ctx:     ctx,
		cancel:  cancel,
		drained: make(chan struct{}),
	}
	s.wg.Add(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		go s.executor()
	}
	go func() {
		s.wg.Wait()
		close(s.drained)
	}()
	return s, nil
}

// logf writes one lifecycle line to the configured log sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "serve: "+format+"\n", args...)
}

// JobKey is the content address of a scenario spec: a hash of its
// canonical JSON rendering salted with the run store's code-version
// salt. Identical specs -- regardless of field order or whitespace in
// the submitted body -- share a key, and a store-salt bump moves every
// key so stale directories are never revisited. The spec must be
// validated.
func JobKey(spec *scenario.Spec) (string, error) {
	canon, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("serve: canonicalizing spec: %w", err)
	}
	h := sha256.New()
	io.WriteString(h, core.StoreCodeSalt())
	h.Write([]byte{'\n'})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// jobStore is the run-store config for one job's directory.
func (s *Server) jobStore(j *job) core.StoreConfig {
	return core.StoreConfig{
		Dir:      filepath.Join(s.cfg.Dir, j.id),
		LeaseTTL: s.cfg.LeaseTTL,
		Log:      s.cfg.Log,
		Progress: j.setProgress,
	}
}

// submit registers a spec and returns its job. Resubmitting a known
// spec returns the existing job (running or finished) without
// touching the queue. A new spec whose run directory is already fully
// committed -- this server restarted, or another server populated the
// shared store -- completes instantly from disk. Otherwise the job is
// enqueued; a full queue refuses the submission with errBusy, and a
// shut-down server with errDraining.
func (s *Server) submit(spec *scenario.Spec) (*job, error) {
	id, err := JobKey(spec)
	if err != nil {
		return nil, err
	}
	total := spec.Studies()
	if spec.IsReplay() {
		total = len(spec.ReplayTraces())
	}

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return j, nil
	}
	j := newJob(id, spec, total)
	s.jobs[id] = j
	s.mu.Unlock()

	// Cache probe before the queue: a fully committed directory means
	// the merged report is pure disk I/O, so it bypasses the worker
	// pool (and its backpressure) entirely.
	if res, err := core.MergeScenarioStore(spec, s.jobStore(j)); err == nil && res.Result != nil {
		j.complete(res.Result.Format(), true)
		s.logf("job %s (%s): served from store (%d studies, no simulation)", id, spec.Name, total)
		return j, nil
	}

	if s.ctx.Err() != nil {
		s.forget(j)
		return nil, errDraining
	}
	select {
	case s.queue <- j:
		s.logf("job %s (%s): queued (%d studies)", id, spec.Name, total)
		return j, nil
	default:
		s.forget(j)
		return nil, errBusy
	}
}

// forget removes a job that never entered the queue so a later
// resubmission can try again.
func (s *Server) forget(j *job) {
	s.mu.Lock()
	delete(s.jobs, j.id)
	s.mu.Unlock()
}

// errBusy and errDraining map to 429 and 503 in the HTTP layer.
var (
	errBusy     = errors.New("serve: job queue full")
	errDraining = errors.New("serve: server shutting down")
)

// lookup returns a job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// statuses snapshots every job, for the list endpoint.
func (s *Server) statuses() []Status {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	return out
}

// executor drains the queue until Shutdown cancels the context.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(j)
		}
	}
}

// runJob executes one job through the persistent run store. The
// store's lease protocol coordinates with any other worker sharing
// the directory (another executor with an identical spec cannot
// happen -- submissions coalesce -- but another server process can);
// its Progress hook feeds the job's SSE stream; and on a cancelled
// context (Shutdown) the run returns after its in-flight study with
// every lease released, leaving committed outcomes for the next
// submission to resume from.
func (s *Server) runJob(j *job) {
	j.start()
	if s.execGate != nil {
		s.execGate(j)
	}
	if s.ctx.Err() != nil {
		j.fail("server shutting down before the job ran; committed studies remain cached")
		return
	}
	start := time.Now()
	res, err := core.RunScenarioStore(s.ctx, j.spec, s.jobStore(j))
	switch {
	case err != nil:
		s.logf("job %s (%s): failed: %v", j.id, j.spec.Name, err)
		j.fail(err.Error())
	case res.Result == nil:
		// Only a cancelled run leaves outcomes missing in lease mode.
		s.logf("job %s (%s): interrupted by shutdown with %d/%d studies committed",
			j.id, j.spec.Name, j.total-len(res.Merge.Missing), j.total)
		j.fail("server shut down mid-job; committed studies remain cached for resubmission")
	default:
		cached := len(res.Run.Ran) == 0
		s.logf("job %s (%s): done in %v (%d ran, %d cached, %d reclaimed)",
			j.id, j.spec.Name, time.Since(start).Round(time.Millisecond),
			len(res.Run.Ran), len(res.Run.Skipped), res.Run.Reclaims)
		j.complete(res.Result.Format(), cached)
	}
}

// Shutdown drains the server: submissions start failing, executors
// stop after their in-flight study (releasing every store lease), and
// queued jobs are failed. It returns nil once every executor has
// exited, or ctx's error if that takes longer than the caller allows.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	select {
	case <-s.drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	// Executors are gone; nothing races the queue drain below, and any
	// job still queued or marked running (its executor returned without
	// finishing it) is failed so followers' streams terminate.
	for {
		select {
		case j := <-s.queue:
			j.fail("server shut down before the job ran; resubmit after restart")
		default:
			s.mu.Lock()
			jobs := make([]*job, 0, len(s.jobs))
			for _, j := range s.jobs {
				jobs = append(jobs, j)
			}
			s.mu.Unlock()
			for _, j := range jobs {
				j.mu.Lock()
				running := j.state == StateRunning
				j.mu.Unlock()
				if running {
					j.fail("server shut down mid-job; committed studies remain cached for resubmission")
				}
			}
			return nil
		}
	}
}
