// The HTTP surface of the serve daemon: a small JSON API plus one
// server-sent-events stream per job. The SSE framing follows the
// standard `id:`/`event:`/`data:` wire format (the event-delivery
// shape of streaming agent transports), flushing after every event so
// a client sees each study land as it commits.
//
//	POST /v1/jobs             submit a scenario spec; 202 JSON Status
//	                          (200 when the job already exists or is
//	                          served from the store; 429 + Retry-After
//	                          when the queue is full)
//	GET  /v1/jobs             list known jobs
//	GET  /v1/jobs/{id}        one job's Status
//	GET  /v1/jobs/{id}/events SSE progress stream (?from=N to resume)
//	GET  /v1/jobs/{id}/report the finished report, text/plain --
//	                          byte-identical to `charisma -scenario`
//	GET  /v1/healthz          liveness probe
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/scenario"
)

// maxSpecBytes bounds a submitted spec body. The scenario schema's
// own limits keep a valid spec far below this; the bound only stops a
// hostile client from streaming an unbounded body.
const maxSpecBytes = 1 << 20

// Handler returns the server's HTTP interface. It is safe to serve
// from multiple listeners, and tests drive it through httptest
// without a socket.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return mux
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes one JSON document with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error response.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleSubmit parses, validates, and registers a scenario spec.
// Validation failures are the client's fault (400); a full queue is
// explicit backpressure (429 + Retry-After); a draining server
// refuses intake (503).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "reading spec: %v", err)
		return
	}
	spec, err := scenario.Parse(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j, err := s.submit(spec)
	switch {
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.cfg.RetryAfter)))
		writeError(w, http.StatusTooManyRequests, "job queue full (%d executing, %d queued); retry shortly", s.cfg.Jobs, s.cfg.Queue)
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := j.status()
	code := http.StatusAccepted
	if st.State == StateDone || st.State == StateFailed {
		// The submission was answered without new work: a coalesced
		// earlier job or a store cache hit.
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// retryAfterSeconds renders the configured backoff in the header's
// whole-second granularity, rounding up so "soon" never becomes 0.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// handleList returns every known job's status.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statuses())
}

// handleStatus returns one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleReport returns the finished report as plain text, exactly the
// bytes `charisma -scenario` prints for the same spec.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	state, report, reason := j.state, j.report, j.err
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, report)
	case StateFailed:
		writeError(w, http.StatusConflict, "job failed: %s", reason)
	default:
		writeError(w, http.StatusConflict, "job is %s; follow /v1/jobs/%s/events or retry once done", state, j.id)
	}
}

// handleEvents streams a job's progress as server-sent events: every
// recorded event from ?from= (default 0) replays immediately, then
// new events flush as they land, and the stream closes after the
// terminal done/failed event. The write loop never blocks on the
// job -- it waits on the job's update channel, the client's
// disconnect, or server shutdown, whichever comes first.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from %q (want a non-negative event seq)", v)
			return
		}
		from = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	next := from
	// shutdown fires at most once: Shutdown fails every live job
	// (appending its terminal event), so after observing it the loop
	// only needs the job's own updates. A nil channel never fires.
	shutdown := s.ctx.Done()
	for {
		evs, updated, terminal := j.snapshot(next)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return
			}
			next = ev.Seq + 1
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		case <-shutdown:
			shutdown = nil
		}
	}
}

// writeSSE frames one event on the wire: id, event type, and the JSON
// document as the data line (json.Marshal never emits raw newlines,
// so the data fits one line).
func writeSSE(w io.Writer, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
	return err
}

// handleHealth is the liveness probe: 200 and a tiny JSON document
// once the server is accepting work.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "jobs": n})
}
