package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func header() trace.Header {
	return trace.Header{ComputeNodes: 128, IONodes: 10, BlockBytes: 4096, BufferBytes: 4096}
}

// evb builds event streams for tests.
type evb struct {
	events []trace.Event
	t      int64
}

func (b *evb) add(ev trace.Event) *evb {
	b.t += 1000
	ev.Time = b.t
	b.events = append(b.events, ev)
	return b
}

func (b *evb) jobStart(job uint32, nodes int) *evb {
	return b.add(trace.Event{Type: trace.EvJobStart, Job: job, Size: int64(nodes), Flags: trace.FlagInstrumented})
}
func (b *evb) jobEnd(job uint32) *evb {
	return b.add(trace.Event{Type: trace.EvJobEnd, Job: job})
}
func (b *evb) open(job uint32, node uint16, file uint64, mode uint8) *evb {
	return b.add(trace.Event{Type: trace.EvOpen, Job: job, Node: node, File: file, Mode: mode})
}
func (b *evb) openCreate(job uint32, node uint16, file uint64) *evb {
	return b.add(trace.Event{Type: trace.EvOpen, Job: job, Node: node, File: file, Flags: trace.FlagCreate})
}
func (b *evb) read(job uint32, node uint16, file uint64, off, size int64) *evb {
	return b.add(trace.Event{Type: trace.EvRead, Job: job, Node: node, File: file, Offset: off, Size: size})
}
func (b *evb) write(job uint32, node uint16, file uint64, off, size int64) *evb {
	return b.add(trace.Event{Type: trace.EvWrite, Job: job, Node: node, File: file, Offset: off, Size: size})
}
func (b *evb) close(job uint32, node uint16, file uint64, size int64) *evb {
	return b.add(trace.Event{Type: trace.EvClose, Job: job, Node: node, File: file, Size: size})
}
func (b *evb) del(job uint32, file uint64) *evb {
	return b.add(trace.Event{Type: trace.EvDelete, Job: job, File: file})
}

func TestFileClassification(t *testing.T) {
	b := &evb{}
	b.jobStart(1, 2)
	b.open(1, 0, 10, 0).read(1, 0, 10, 0, 100).close(1, 0, 10, 100)
	b.open(1, 0, 11, 0).write(1, 0, 11, 0, 100).close(1, 0, 11, 100)
	b.open(1, 0, 12, 0).read(1, 0, 12, 0, 50).write(1, 0, 12, 0, 50).close(1, 0, 12, 100)
	b.open(1, 0, 13, 0).close(1, 0, 13, 0)
	b.jobEnd(1)
	r := Analyze(header(), b.events, 0)
	if r.FilesByClass[ReadOnly] != 1 || r.FilesByClass[WriteOnly] != 1 ||
		r.FilesByClass[ReadWrite] != 1 || r.FilesByClass[Untouched] != 1 {
		t.Fatalf("classes = %v", r.FilesByClass)
	}
	if r.FilesOpened != 4 || r.TotalOpens != 4 {
		t.Fatalf("files=%d opens=%d", r.FilesOpened, r.TotalOpens)
	}
}

func TestJobMixCounts(t *testing.T) {
	b := &evb{}
	b.jobStart(1, 1).jobEnd(1)
	b.jobStart(2, 16).jobEnd(2)
	b.jobStart(3, 1).jobEnd(3)
	r := Analyze(header(), b.events, 0)
	if r.TotalJobs != 3 || r.SingleNodeJobs != 2 || r.MultiNodeJobs != 1 {
		t.Fatalf("jobs: total=%d single=%d multi=%d", r.TotalJobs, r.SingleNodeJobs, r.MultiNodeJobs)
	}
	if r.NodesPerJob.Count(1) != 2 || r.NodesPerJob.Count(16) != 1 {
		t.Fatal("nodes-per-job histogram wrong")
	}
}

func TestConcurrencyProfile(t *testing.T) {
	events := []trace.Event{
		{Type: trace.EvJobStart, Job: 1, Size: 1, Time: 0},
		{Type: trace.EvJobStart, Job: 2, Size: 1, Time: 500},
		{Type: trace.EvJobEnd, Job: 1, Time: 1000},
		{Type: trace.EvJobEnd, Job: 2, Time: 1500},
	}
	r := Analyze(header(), events, 2000)
	if r.JobConcurrency[0] != 500 {
		t.Fatalf("idle = %v", r.JobConcurrency[0])
	}
	if r.JobConcurrency[1] != 1000 {
		t.Fatalf("one job = %v", r.JobConcurrency[1])
	}
	if r.JobConcurrency[2] != 500 {
		t.Fatalf("two jobs = %v", r.JobConcurrency[2])
	}
	if math.Abs(r.IdlePct()-25) > 1e-9 {
		t.Fatalf("idle pct = %v", r.IdlePct())
	}
	if math.Abs(r.MultiJobPct()-25) > 1e-9 {
		t.Fatalf("multi pct = %v", r.MultiJobPct())
	}
}

func TestFilesPerJobTable1(t *testing.T) {
	b := &evb{}
	b.jobStart(1, 1)
	b.open(1, 0, 1, 0) // job 1 opens one file
	b.jobStart(2, 2)
	for f := uint64(10); f < 16; f++ { // job 2 opens six files
		b.open(2, 0, f, 0)
	}
	b.jobEnd(1).jobEnd(2)
	r := Analyze(header(), b.events, 0)
	if r.TracedJobs != 2 {
		t.Fatalf("traced jobs = %d", r.TracedJobs)
	}
	buckets := r.FilesPerJob.Bucketed([]int64{1, 2, 3, 4})
	if buckets[0] != 1 { // one job opened exactly 1 file
		t.Fatalf("bucket[1 file] = %d", buckets[0])
	}
	if buckets[4] != 1 { // one job opened 5+
		t.Fatalf("bucket[5+] = %d", buckets[4])
	}
}

func TestFileSizeCDFUsesCloseSize(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0).close(1, 0, 1, 25000)
	b.open(1, 0, 2, 0).close(1, 0, 2, 250000)
	r := Analyze(header(), b.events, 0)
	if r.FileSizeCDF.Len() != 2 {
		t.Fatalf("CDF has %d samples", r.FileSizeCDF.Len())
	}
	if r.FileSizeCDF.At(25000) != 0.5 || r.FileSizeCDF.At(250000) != 1 {
		t.Fatal("file size CDF wrong")
	}
}

func TestRequestSizeCDFs(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0)
	// 9 small reads of 100 B and one large read of 99100 B: 90% of
	// requests are small but carry under 1% of the bytes.
	for i := 0; i < 9; i++ {
		b.read(1, 0, 1, int64(i*100), 100)
	}
	b.read(1, 0, 1, 900, 99100)
	r := Analyze(header(), b.events, 0)
	if got := r.ReadCountBySize.At(100); got != 0.9 {
		t.Fatalf("count CDF at 100 = %v", got)
	}
	if r.SmallReadFrac != 0.9 {
		t.Fatalf("small read frac = %v", r.SmallReadFrac)
	}
	if r.SmallReadData > 0.02 {
		t.Fatalf("small read data frac = %v", r.SmallReadData)
	}
}

func TestSequentialityConsecutive(t *testing.T) {
	b := &evb{}
	// File 1: node 0 reads consecutively -> 100% seq, 100% cons.
	b.open(1, 0, 1, 0)
	for i := 0; i < 10; i++ {
		b.read(1, 0, 1, int64(i*100), 100)
	}
	// File 2: node 0 reads with gaps (interleaved) -> 100% seq, 0% cons.
	b.open(1, 0, 2, 0)
	for i := 0; i < 10; i++ {
		b.read(1, 0, 2, int64(i*1000), 100)
	}
	// File 3: node 0 reads backwards -> 0% seq, 0% cons.
	b.open(1, 0, 3, 0)
	for i := 9; i >= 0; i-- {
		b.read(1, 0, 3, int64(i*100), 100)
	}
	r := Analyze(header(), b.events, 0)
	seq := r.SeqPct[ReadOnly]
	cons := r.ConsPct[ReadOnly]
	if seq.Len() != 3 || cons.Len() != 3 {
		t.Fatalf("seq/cons samples: %d/%d", seq.Len(), cons.Len())
	}
	// The backwards file scores 10% sequential (its first request, at
	// a positive offset, counts); the other two score 100%.
	if seq.At(10) < 0.33 || seq.At(10) > 0.34 {
		t.Fatalf("seq CDF at 10%% = %v", seq.At(10))
	}
	if seq.At(99) != seq.At(10) {
		t.Fatal("files between 10 and 100% sequential should not exist here")
	}
	// Consecutive: backwards file 0%, gapped file 10% (its first
	// request starts at byte zero), consecutive file 100%.
	if cons.At(0) < 0.33 || cons.At(0) > 0.34 {
		t.Fatalf("cons CDF at 0%% = %v", cons.At(0))
	}
	if cons.At(10) < 0.66 || cons.At(10) > 0.67 {
		t.Fatalf("cons CDF at 10%% = %v", cons.At(10))
	}
}

func TestSingleRequestFilesExcludedFromSeq(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0).read(1, 0, 1, 0, 100)
	r := Analyze(header(), b.events, 0)
	if r.SeqPct[ReadOnly].Len() != 0 {
		t.Fatal("file with one request should not appear in Figure 5")
	}
}

func TestIntervalTable2(t *testing.T) {
	b := &evb{}
	// File 1: one request per node on two nodes -> 0 intervals.
	b.open(1, 0, 1, 0).open(1, 1, 1, 0)
	b.read(1, 0, 1, 0, 100).read(1, 1, 1, 100, 100)
	// File 2: consecutive stream -> 1 interval size (zero).
	b.open(1, 0, 2, 0)
	for i := 0; i < 5; i++ {
		b.read(1, 0, 2, int64(i*100), 100)
	}
	// File 3: strided stream -> 1 interval size (non-zero).
	b.open(1, 0, 3, 0)
	for i := 0; i < 5; i++ {
		b.read(1, 0, 3, int64(i*1000), 100)
	}
	// File 4: two interval sizes.
	b.open(1, 0, 4, 0)
	b.read(1, 0, 4, 0, 100).read(1, 0, 4, 100, 100).read(1, 0, 4, 1000, 100)
	r := Analyze(header(), b.events, 0)
	if r.IntervalHist.Count(0) != 1 {
		t.Fatalf("0-interval files = %d", r.IntervalHist.Count(0))
	}
	if r.IntervalHist.Count(1) != 2 {
		t.Fatalf("1-interval files = %d", r.IntervalHist.Count(1))
	}
	if r.IntervalHist.Count(2) != 1 {
		t.Fatalf("2-interval files = %d", r.IntervalHist.Count(2))
	}
	if r.OneIntervalZeroFrac != 0.5 {
		t.Fatalf("one-interval-zero frac = %v", r.OneIntervalZeroFrac)
	}
}

func TestRequestSizeTable3(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0)                                               // untouched -> 0 sizes
	b.open(1, 0, 2, 0).read(1, 0, 2, 0, 100).read(1, 0, 2, 100, 100) // 1 size
	b.open(1, 0, 3, 0).read(1, 0, 3, 0, 100).read(1, 0, 3, 100, 200) // 2 sizes
	r := Analyze(header(), b.events, 0)
	if r.ReqSizeHist.Count(0) != 1 || r.ReqSizeHist.Count(1) != 1 || r.ReqSizeHist.Count(2) != 1 {
		t.Fatalf("req size hist: %v %v %v",
			r.ReqSizeHist.Count(0), r.ReqSizeHist.Count(1), r.ReqSizeHist.Count(2))
	}
}

func TestModeUsage(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0).open(1, 0, 2, 0).open(1, 0, 3, 1)
	r := Analyze(header(), b.events, 0)
	if r.ModeOpens[0] != 2 || r.ModeOpens[1] != 1 {
		t.Fatalf("mode opens = %v", r.ModeOpens)
	}
}

func TestTempFileDetection(t *testing.T) {
	b := &evb{}
	b.openCreate(1, 0, 1)
	b.write(1, 0, 1, 0, 100)
	b.close(1, 0, 1, 100)
	b.del(1, 1) // same job deletes it: temporary
	b.openCreate(2, 0, 2)
	b.close(2, 0, 2, 0) // job 2's file survives
	r := Analyze(header(), b.events, 0)
	if r.TempOpenFraction != 0.5 {
		t.Fatalf("temp open fraction = %v", r.TempOpenFraction)
	}
}

func TestDeleteByOtherJobNotTemporary(t *testing.T) {
	b := &evb{}
	b.openCreate(1, 0, 1)
	b.close(1, 0, 1, 0)
	b.del(2, 1) // different job deletes: not temporary
	r := Analyze(header(), b.events, 0)
	if r.TempOpenFraction != 0 {
		t.Fatalf("temp fraction = %v", r.TempOpenFraction)
	}
}

func TestByteAndBlockSharing(t *testing.T) {
	b := &evb{}
	// File 1: both nodes read all 8192 bytes concurrently -> 100%
	// byte- and block-shared.
	b.open(1, 0, 1, 0).open(1, 1, 1, 0)
	b.read(1, 0, 1, 0, 8192).read(1, 1, 1, 0, 8192)
	b.close(1, 0, 1, 8192).close(1, 1, 1, 8192)
	// File 2: nodes write disjoint halves of one 4 KB block -> 0%
	// byte-shared but 100% block-shared.
	b.open(2, 0, 2, 0).open(2, 1, 2, 0)
	b.write(2, 0, 2, 0, 2048).write(2, 1, 2, 2048, 2048)
	b.close(2, 0, 2, 4096).close(2, 1, 2, 4096)
	r := Analyze(header(), b.events, 0)
	ro := r.ByteSharing[ReadOnly]
	if ro.Len() != 1 || ro.At(99) != 0 || ro.At(100) != 1 {
		t.Fatalf("RO byte sharing: len=%d", ro.Len())
	}
	wo := r.ByteSharing[WriteOnly]
	if wo.Len() != 1 || wo.At(0) != 1 {
		t.Fatalf("WO byte sharing should be 0%%")
	}
	wob := r.BlockSharing[WriteOnly]
	if wob.At(99) != 0 || wob.At(100) != 1 {
		t.Fatal("WO block sharing should be 100%")
	}
}

func TestNonConcurrentFilesExcludedFromSharing(t *testing.T) {
	b := &evb{}
	// Node 0 opens, reads, closes; then node 1 does. Never concurrent.
	b.open(1, 0, 1, 0).read(1, 0, 1, 0, 100).close(1, 0, 1, 100)
	b.open(1, 1, 1, 0).read(1, 1, 1, 0, 100).close(1, 1, 1, 100)
	r := Analyze(header(), b.events, 0)
	if r.ByteSharing[ReadOnly].Len() != 0 {
		t.Fatal("sequentially-opened file counted as concurrently shared")
	}
}

func TestMeanBytesPerFile(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0).read(1, 0, 1, 0, 1000).close(1, 0, 1, 1000)
	b.open(1, 0, 2, 0).read(1, 0, 2, 0, 3000).close(1, 0, 2, 3000)
	b.open(1, 0, 3, 0).write(1, 0, 3, 0, 500).close(1, 0, 3, 500)
	r := Analyze(header(), b.events, 0)
	if r.MeanBytesRead != 2000 {
		t.Fatalf("mean read bytes = %v", r.MeanBytesRead)
	}
	if r.MeanBytesWritten != 500 {
		t.Fatalf("mean written bytes = %v", r.MeanBytesWritten)
	}
}

func TestFormatsRender(t *testing.T) {
	b := &evb{}
	b.jobStart(1, 4)
	b.open(1, 0, 1, 0)
	for i := 0; i < 5; i++ {
		b.read(1, 0, 1, int64(i*100), 100)
	}
	b.close(1, 0, 1, 500)
	b.jobEnd(1)
	r := Analyze(header(), b.events, sim.Hour)
	full := r.Format()
	for _, frag := range []string{
		"Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Figure 6", "Figure 7", "Table 1", "Table 2", "Table 3",
		"Job mix", "File populations", "mode 0",
	} {
		if !strings.Contains(full, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestEmptyEventStream(t *testing.T) {
	r := Analyze(header(), nil, sim.Hour)
	if r.TotalJobs != 0 || r.FilesOpened != 0 {
		t.Fatal("empty stream produced nonzero counts")
	}
	if r.JobConcurrency[0] != sim.Hour {
		t.Fatalf("idle time = %v", r.JobConcurrency[0])
	}
	// Formatting must not panic on the empty report.
	_ = r.Format()
}

// A zero-event study must render every section with defined values:
// no NaN, no Inf, no panic. The twin's saturation probing constructs
// tiny-scale configs that produce exactly these degenerate reports.
func TestZeroEventReportRendersDefined(t *testing.T) {
	r := Analyze(header(), nil, 0)
	out := r.Format()
	for _, bad := range []string{"NaN", "nan", "Inf", "inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("zero-event report contains %q:\n%s", bad, out)
		}
	}
	if got := r.IdlePct(); got != 0 {
		t.Fatalf("IdlePct on zero horizon = %v, want 0", got)
	}
	if got := r.MultiJobPct(); got != 0 {
		t.Fatalf("MultiJobPct on zero horizon = %v, want 0", got)
	}
	if math.IsNaN(r.TempOpenFraction) || math.IsNaN(r.MeanBytesRead) ||
		math.IsNaN(r.MeanBytesWritten) || math.IsNaN(r.OneIntervalZeroFrac) {
		t.Fatal("zero-event report carries NaN aggregates")
	}
}

// A hand-assembled report whose per-class CDF maps were never built
// must render "n/a" cells deterministically instead of dereferencing
// nil.
func TestNilClassCDFsRenderNA(t *testing.T) {
	r := Analyze(header(), nil, 0)
	r.SeqPct = nil
	r.ConsPct = nil
	r.ByteSharing = nil
	r.BlockSharing = nil
	out := r.FormatFig5() + r.FormatFig6() + r.FormatFig7()
	if !strings.Contains(out, "n/a") {
		t.Fatalf("nil class CDFs should render n/a:\n%s", out)
	}
	if strings.Contains(out, "NaN") {
		t.Fatalf("nil class CDFs render NaN:\n%s", out)
	}
}
