// Package analysis computes every workload characteristic reported in
// the paper from a postprocessed CHARISMA event stream: the job mix
// (Figures 1-2), file populations and sizes (Section 4.2, Figure 3,
// Table 1), request sizes (Figure 4), sequentiality and consecutiveness
// (Figures 5-6), interval and request-size regularity (Tables 2-3),
// I/O-mode usage (Section 4.6), and inter-node sharing (Figure 7).
package analysis

import (
	"sort"

	"repro/internal/trace"
)

// FileClass categorizes a file by what was actually done to it during
// the traced period, the paper's Section 4.2 taxonomy.
type FileClass int

// File classes.
const (
	Untouched FileClass = iota // opened but neither read nor written
	ReadOnly
	WriteOnly
	ReadWrite
	numClasses
)

// String names the class as the paper's figures do.
func (c FileClass) String() string {
	switch c {
	case Untouched:
		return "Untouched"
	case ReadOnly:
		return "Read-Only"
	case WriteOnly:
		return "Write-Only"
	case ReadWrite:
		return "Read-Write"
	}
	return "Unknown"
}

// span is a half-open byte range [Start, End).
type span struct{ Start, End int64 }

// nodeStream accumulates one compute node's request stream against one
// file. A node's first request is judged against the start of the file
// (previous offset -1, previous end 0): a node that begins anywhere
// past byte zero has skipped bytes, which is how a partitioned or
// interleaved parallel read shows up as sequential-but-not-consecutive
// even when each node makes a single request. Intervals, however,
// require an actual predecessor request.
type nodeStream struct {
	count     int64
	judged    int64 // every request is judged (first against file start)
	seq       int64 // requests at a strictly higher offset than the previous
	cons      int64 // requests starting exactly at the previous end
	prevOff   int64
	prevEnd   int64
	intervals map[int64]int64 // gap size -> occurrences
	ranges    []span          // accessed byte ranges (coalesced opportunistically)
}

func (s *nodeStream) record(off, size int64) {
	if s.count == 0 {
		s.prevOff = -1
		s.prevEnd = 0
	}
	s.judged++
	if off > s.prevOff {
		s.seq++
	}
	if off == s.prevEnd {
		s.cons++
	}
	if s.count > 0 {
		// The paper's "interval" is the gap between where one request
		// ended and the next began, for sequential follow-ons.
		if gap := off - s.prevEnd; gap >= 0 {
			if s.intervals == nil {
				s.intervals = make(map[int64]int64, 2)
			}
			s.intervals[gap]++
		}
	}
	s.count++
	s.prevOff = off
	s.prevEnd = off + size
	if size > 0 {
		if n := len(s.ranges); n > 0 && s.ranges[n-1].End == off {
			s.ranges[n-1].End = off + size
		} else {
			s.ranges = append(s.ranges, span{off, off + size})
		}
	}
}

// recordStrided folds one strided request into the stream: judged as
// a single request spanning the pattern (strided requests exist
// precisely so a regular pattern is one request), with each record's
// byte range tracked for sharing.
func (s *nodeStream) recordStrided(ev *trace.Event) {
	if ev.Count == 0 {
		return
	}
	if s.count == 0 {
		s.prevOff = -1
		s.prevEnd = 0
	}
	s.judged++
	if ev.Offset > s.prevOff {
		s.seq++
	}
	if ev.Offset == s.prevEnd {
		s.cons++
	}
	s.count++
	s.prevOff = ev.Offset
	s.prevEnd = ev.Offset + int64(ev.Count-1)*ev.Stride + ev.Size
	ev.Records(func(off, size int64) {
		if size <= 0 {
			return
		}
		if n := len(s.ranges); n > 0 && s.ranges[n-1].End == off {
			s.ranges[n-1].End = off + size
		} else {
			s.ranges = append(s.ranges, span{off, off + size})
		}
	})
}

// mergedRangesInto returns the node's accessed ranges as a disjoint,
// sorted set, built in buf (which must be empty); the result aliases
// buf's backing array when it is large enough.
func (s *nodeStream) mergedRangesInto(buf []span) []span {
	rs := append(buf, s.ranges...)
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Start <= last.End {
			if r.End > last.End {
				last.End = r.End
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// posEdge is a +1/-1 coverage transition at a byte position, used by
// fileAcc.sharing's sweep over merged ranges.
type posEdge struct {
	pos   int64
	delta int
}

// fileAcc accumulates per-file state across the event stream.
type fileAcc struct {
	id    uint64
	opens int

	reads, writes           int64
	bytesRead, bytesWritten int64
	sizeAtClose             int64
	closed                  bool

	streams map[uint16]*nodeStream
	// reqSizes collects the distinct request sizes used against the
	// file across all nodes (Table 3).
	reqSizes map[int64]struct{}

	// open-concurrency tracking: how many handles each node holds now,
	// and the max number of distinct nodes holding the file open at
	// once (drives Figure 7's "concurrently opened" filter).
	openHandles  map[uint16]int
	maxOpenNodes int

	createdByJobs map[uint32]bool
	deletedByJobs map[uint32]bool
	openedByJobs  map[uint32]bool
	tempOpens     int // opens charged as temporary (Section 4.2)
}

func newFileAcc(id uint64) *fileAcc {
	return &fileAcc{
		id:            id,
		streams:       make(map[uint16]*nodeStream),
		reqSizes:      make(map[int64]struct{}),
		openHandles:   make(map[uint16]int),
		createdByJobs: make(map[uint32]bool),
		deletedByJobs: make(map[uint32]bool),
		openedByJobs:  make(map[uint32]bool),
	}
}

func (f *fileAcc) stream(node uint16, s *Scratch) *nodeStream {
	st := f.streams[node]
	if st == nil {
		st = s.getStream()
		f.streams[node] = st
	}
	return st
}

// class returns the file's Section 4.2 classification.
func (f *fileAcc) class() FileClass {
	switch {
	case f.reads > 0 && f.writes > 0:
		return ReadWrite
	case f.reads > 0:
		return ReadOnly
	case f.writes > 0:
		return WriteOnly
	default:
		return Untouched
	}
}

// totalRequests sums the per-node request counts.
func (f *fileAcc) totalRequests() int64 { return f.reads + f.writes }

// distinctIntervals returns the number of distinct interval sizes used
// across all nodes (Table 2), and whether every interval was zero.
func (f *fileAcc) distinctIntervals(s *Scratch) (n int, allZero bool) {
	seen := s.seenMap()
	for _, st := range f.streams {
		for gap := range st.intervals {
			seen[gap] = struct{}{}
		}
	}
	_, hasZero := seen[0]
	return len(seen), len(seen) == 1 && hasZero
}

// seqConsPct returns the percentage of judged requests that were
// sequential and consecutive, over all nodes. ok is false when the
// file saw no data requests at all.
func (f *fileAcc) seqConsPct() (seqPct, consPct float64, ok bool) {
	var judged, seq, cons int64
	for _, s := range f.streams {
		judged += s.judged
		seq += s.seq
		cons += s.cons
	}
	if judged == 0 {
		return 0, 0, false
	}
	return 100 * float64(seq) / float64(judged), 100 * float64(cons) / float64(judged), true
}

// sharing computes the fraction of accessed bytes and accessed blocks
// touched by two or more distinct nodes.
func (f *fileAcc) sharing(blockBytes int64, s *Scratch) (bytePct, blockPct float64, ok bool) {
	if len(f.streams) < 2 {
		return 0, 0, false
	}
	var edges []posEdge
	var mbuf []span
	if s != nil {
		edges = s.shareEdges[:0]
		mbuf = s.mergeBuf
	}
	blocks := s.blockCounts()
	for _, st := range f.streams {
		nodeBlocks := s.nodeBlockSet()
		merged := st.mergedRangesInto(mbuf[:0])
		for _, r := range merged {
			edges = append(edges, posEdge{r.Start, +1}, posEdge{r.End, -1})
			for b := r.Start / blockBytes; b <= (r.End-1)/blockBytes; b++ {
				nodeBlocks[b] = struct{}{}
			}
		}
		mbuf = merged
		for b := range nodeBlocks {
			blocks[b]++
		}
	}
	if s != nil {
		s.shareEdges = edges
		s.mergeBuf = mbuf
	}
	if len(edges) == 0 {
		return 0, 0, false
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].pos != edges[j].pos {
			return edges[i].pos < edges[j].pos
		}
		return edges[i].delta > edges[j].delta // starts before ends at ties
	})
	var union, shared int64
	depth := 0
	prev := edges[0].pos
	for _, e := range edges {
		if e.pos > prev {
			if depth >= 1 {
				union += e.pos - prev
			}
			if depth >= 2 {
				shared += e.pos - prev
			}
			prev = e.pos
		} else {
			prev = e.pos
		}
		depth += e.delta
	}
	var blockUnion, blockShared int64
	for _, nodes := range blocks {
		blockUnion++
		if nodes >= 2 {
			blockShared++
		}
	}
	if union == 0 || blockUnion == 0 {
		return 0, 0, false
	}
	return 100 * float64(shared) / float64(union),
		100 * float64(blockShared) / float64(blockUnion), true
}

// observe feeds one event into the accumulator. The scratch (nil for
// one-shot analysis) supplies pooled node streams.
func (f *fileAcc) observe(ev *trace.Event, s *Scratch) {
	switch ev.Type {
	case trace.EvOpen:
		f.opens++
		f.openHandles[ev.Node]++
		openNodes := 0
		for _, n := range f.openHandles {
			if n > 0 {
				openNodes++
			}
		}
		if openNodes > f.maxOpenNodes {
			f.maxOpenNodes = openNodes
		}
		if ev.Flags&trace.FlagCreate != 0 {
			f.createdByJobs[ev.Job] = true
		}
		f.openedByJobs[ev.Job] = true
	case trace.EvClose:
		f.openHandles[ev.Node]--
		f.sizeAtClose = ev.Size
		f.closed = true
	case trace.EvRead:
		f.reads++
		f.bytesRead += ev.Size
		f.reqSizes[ev.Size] = struct{}{}
		f.stream(ev.Node, s).record(ev.Offset, ev.Size)
	case trace.EvWrite:
		f.writes++
		f.bytesWritten += ev.Size
		f.reqSizes[ev.Size] = struct{}{}
		f.stream(ev.Node, s).record(ev.Offset, ev.Size)
	case trace.EvReadStrided, trace.EvWriteStrided:
		// A strided request is one request whose effective size is the
		// whole pattern; its per-record ranges still matter for
		// sharing and coverage.
		if ev.Type == trace.EvReadStrided {
			f.reads++
			f.bytesRead += ev.Bytes()
		} else {
			f.writes++
			f.bytesWritten += ev.Bytes()
		}
		f.reqSizes[ev.Bytes()] = struct{}{}
		f.stream(ev.Node, s).recordStrided(ev)
	case trace.EvDelete:
		f.deletedByJobs[ev.Job] = true
		if f.createdByJobs[ev.Job] {
			f.tempOpens = f.opens
		}
	}
}
