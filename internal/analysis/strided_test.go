package analysis

import (
	"testing"

	"repro/internal/trace"
)

// Strided requests (the paper's Section 5 proposal, implemented as an
// extension) must be analyzed as single large requests with full
// pattern coverage.

func TestStridedCountsAsOneRequest(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0)
	b.add(trace.Event{
		Type: trace.EvReadStrided, Job: 1, Node: 0, File: 1,
		Offset: 0, Size: 100, Stride: 1000, Count: 10,
	})
	b.close(1, 0, 1, 10000)
	r := Analyze(header(), b.events, 0)
	// One read request of the pattern's total payload.
	if r.ReadCountBySize.Len() != 1 {
		t.Fatalf("read requests = %d", r.ReadCountBySize.Len())
	}
	if got := r.ReadCountBySize.Max(); got != 1000 {
		t.Fatalf("request size = %v, want 1000 (10 x 100)", got)
	}
	// The file is read-only with one effective request and no
	// intervals of its own.
	if r.FilesByClass[ReadOnly] != 1 {
		t.Fatal("classification wrong")
	}
	if r.IntervalHist.Count(0) != 1 {
		t.Fatalf("interval count = %v", r.IntervalHist)
	}
}

func TestStridedSharingCoverage(t *testing.T) {
	// Two nodes read complementary strided patterns concurrently: the
	// bytes are disjoint, but every block is shared.
	b := &evb{}
	b.open(1, 0, 1, 0).open(1, 1, 1, 0)
	b.add(trace.Event{
		Type: trace.EvReadStrided, Job: 1, Node: 0, File: 1,
		Offset: 0, Size: 1024, Stride: 2048, Count: 16,
	})
	b.add(trace.Event{
		Type: trace.EvReadStrided, Job: 1, Node: 1, File: 1,
		Offset: 1024, Size: 1024, Stride: 2048, Count: 16,
	})
	b.close(1, 0, 1, 32768).close(1, 1, 1, 32768)
	r := Analyze(header(), b.events, 0)
	bytesCDF := r.ByteSharing[ReadOnly]
	if bytesCDF.Len() != 1 {
		t.Fatalf("sharing samples = %d", bytesCDF.Len())
	}
	if bytesCDF.At(0) != 1 {
		t.Fatal("disjoint strided patterns should share no bytes")
	}
	blocksCDF := r.BlockSharing[ReadOnly]
	if blocksCDF.At(99) != 0 {
		t.Fatal("complementary strided patterns should share every block")
	}
}

func TestStridedWriteAccounting(t *testing.T) {
	b := &evb{}
	b.open(1, 0, 1, 0)
	b.add(trace.Event{
		Type: trace.EvWriteStrided, Job: 1, Node: 0, File: 1,
		Offset: 0, Size: 512, Stride: 4096, Count: 8,
	})
	b.close(1, 0, 1, 29184)
	r := Analyze(header(), b.events, 0)
	if r.FilesByClass[WriteOnly] != 1 {
		t.Fatal("strided write should make the file write-only")
	}
	if r.MeanBytesWritten != 512*8 {
		t.Fatalf("bytes written = %v", r.MeanBytesWritten)
	}
}
