package analysis

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Scratch pools the analyzer's working state across studies: the
// per-file accumulators with their maps and request streams, the job
// bookkeeping maps, the concurrency edge list, and -- via
// ReclaimReport -- the CDFs and histograms a discarded Report carried.
// A worker that analyzes many traces back to back (see core.Arena)
// allocates this state once and clears it between studies.
//
// All methods accept a nil receiver and then fall back to fresh
// allocation, so the scratch-threaded code paths serve the one-shot
// Analyze entry point unchanged. A Scratch is not safe for concurrent
// use; give each worker its own. The zero value is ready to use.
type Scratch struct {
	files    map[uint64]*fileAcc
	accFree  []*fileAcc
	strFree  []*nodeStream
	jobStart map[uint32]sim.Time
	jobNodes map[uint32]int
	jobFiles map[uint32]map[uint64]struct{}
	setFree  []map[uint64]struct{}
	edges    []edge
	ids      []uint64

	cdfFree  []*stats.CDF
	histFree []*stats.Hist

	// Per-file statistic temporaries (distinctIntervals, sharing).
	seenIntervals map[int64]struct{}
	shareBlocks   map[int64]int
	nodeBlocks    map[int64]struct{}
	shareEdges    []posEdge
	mergeBuf      []span
}

// cdf returns an empty CDF, pooled when possible.
func (s *Scratch) cdf() *stats.CDF {
	if s != nil {
		if n := len(s.cdfFree); n > 0 {
			c := s.cdfFree[n-1]
			s.cdfFree[n-1] = nil
			s.cdfFree = s.cdfFree[:n-1]
			return c
		}
	}
	return &stats.CDF{}
}

// hist returns an empty histogram, pooled when possible.
func (s *Scratch) hist() *stats.Hist {
	if s != nil {
		if n := len(s.histFree); n > 0 {
			h := s.histFree[n-1]
			s.histFree[n-1] = nil
			s.histFree = s.histFree[:n-1]
			return h
		}
	}
	return &stats.Hist{}
}

// fileMap returns the (cleared) file-accumulator map.
func (s *Scratch) fileMap() map[uint64]*fileAcc {
	if s == nil {
		return make(map[uint64]*fileAcc)
	}
	if s.files == nil {
		s.files = make(map[uint64]*fileAcc)
	}
	return s.files
}

// getAcc returns a zeroed accumulator for file id.
func (s *Scratch) getAcc(id uint64) *fileAcc {
	if s != nil {
		if n := len(s.accFree); n > 0 {
			f := s.accFree[n-1]
			s.accFree[n-1] = nil
			s.accFree = s.accFree[:n-1]
			f.id = id
			return f
		}
	}
	return newFileAcc(id)
}

// putAcc clears an accumulator (returning its streams too) and pools it.
func (s *Scratch) putAcc(f *fileAcc) {
	for node, st := range f.streams {
		s.putStream(st)
		delete(f.streams, node)
	}
	clear(f.reqSizes)
	clear(f.openHandles)
	clear(f.createdByJobs)
	clear(f.deletedByJobs)
	clear(f.openedByJobs)
	*f = fileAcc{
		streams:       f.streams,
		reqSizes:      f.reqSizes,
		openHandles:   f.openHandles,
		createdByJobs: f.createdByJobs,
		deletedByJobs: f.deletedByJobs,
		openedByJobs:  f.openedByJobs,
	}
	s.accFree = append(s.accFree, f)
}

// getStream returns a zeroed per-node request stream.
func (s *Scratch) getStream() *nodeStream {
	if s != nil {
		if n := len(s.strFree); n > 0 {
			st := s.strFree[n-1]
			s.strFree[n-1] = nil
			s.strFree = s.strFree[:n-1]
			return st
		}
	}
	return &nodeStream{}
}

// putStream clears a stream and pools it.
func (s *Scratch) putStream(st *nodeStream) {
	clear(st.intervals)
	*st = nodeStream{intervals: st.intervals, ranges: st.ranges[:0]}
	s.strFree = append(s.strFree, st)
}

// fileSet returns an empty file-ID set for per-job tracking.
func (s *Scratch) fileSet() map[uint64]struct{} {
	if s != nil {
		if n := len(s.setFree); n > 0 {
			m := s.setFree[n-1]
			s.setFree[n-1] = nil
			s.setFree = s.setFree[:n-1]
			return m
		}
	}
	return make(map[uint64]struct{})
}

// seenMap returns the cleared interval-dedup map.
func (s *Scratch) seenMap() map[int64]struct{} {
	if s == nil {
		return make(map[int64]struct{})
	}
	if s.seenIntervals == nil {
		s.seenIntervals = make(map[int64]struct{})
	}
	clear(s.seenIntervals)
	return s.seenIntervals
}

// blockCounts returns the cleared shared-block counting map.
func (s *Scratch) blockCounts() map[int64]int {
	if s == nil {
		return make(map[int64]int)
	}
	if s.shareBlocks == nil {
		s.shareBlocks = make(map[int64]int)
	}
	clear(s.shareBlocks)
	return s.shareBlocks
}

// nodeBlockSet returns the cleared per-node block set.
func (s *Scratch) nodeBlockSet() map[int64]struct{} {
	if s == nil {
		return make(map[int64]struct{})
	}
	if s.nodeBlocks == nil {
		s.nodeBlocks = make(map[int64]struct{})
	}
	clear(s.nodeBlocks)
	return s.nodeBlocks
}

// release returns the analyzer's per-study working state to the pools
// once a Report has been fully computed. Safe on nil.
func (s *Scratch) release() {
	if s == nil {
		return
	}
	for id, f := range s.files {
		s.putAcc(f)
		delete(s.files, id)
	}
	clear(s.jobStart)
	clear(s.jobNodes)
	for job, set := range s.jobFiles {
		clear(set)
		s.setFree = append(s.setFree, set)
		delete(s.jobFiles, job)
	}
	s.edges = s.edges[:0]
	s.ids = s.ids[:0]
}

// ReclaimReport returns a no-longer-needed Report's statistics objects
// to the scratch pools and poisons the report. Call it only when the
// report is discarded after use (core.Arena.Recycle does); a retained
// report must never be reclaimed.
func ReclaimReport(s *Scratch, r *Report) {
	if s == nil || r == nil {
		return
	}
	putHist := func(h *stats.Hist) {
		if h != nil {
			h.Reset()
			s.histFree = append(s.histFree, h)
		}
	}
	putCDF := func(c *stats.CDF) {
		if c != nil {
			c.Reset()
			s.cdfFree = append(s.cdfFree, c)
		}
	}
	putHist(r.NodesPerJob)
	putHist(r.FilesPerJob)
	putHist(r.IntervalHist)
	putHist(r.ReqSizeHist)
	putCDF(r.FileSizeCDF)
	putCDF(r.ReadCountBySize)
	putCDF(r.ReadBytesBySize)
	putCDF(r.WriteCountBySize)
	putCDF(r.WriteBytesBySize)
	for _, m := range []map[FileClass]*stats.CDF{r.SeqPct, r.ConsPct, r.ByteSharing, r.BlockSharing} {
		for _, c := range m {
			putCDF(c)
		}
	}
	*r = Report{}
}
