package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// FormatFig1 renders the Figure 1 data: percent of traced time spent
// with each number of jobs running.
func (r *Report) FormatFig1() string {
	var b strings.Builder
	b.WriteString("Figure 1: time spent with N jobs running\n")
	fmt.Fprintf(&b, "%6s  %12s  %8s\n", "jobs", "hours", "percent")
	maxLevel := 0
	for level := range r.JobConcurrency {
		if level > maxLevel {
			maxLevel = level
		}
	}
	total := float64(r.Horizon)
	for level := 0; level <= maxLevel; level++ {
		t := r.JobConcurrency[level]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(t) / total
		}
		fmt.Fprintf(&b, "%6d  %12.2f  %7.1f%%\n", level, t.ToSeconds()/3600, pct)
	}
	return b.String()
}

// FormatFig2 renders the Figure 2 data: how many jobs used each number
// of compute nodes, plus the node-time share of each size.
func (r *Report) FormatFig2() string {
	var b strings.Builder
	b.WriteString("Figure 2: compute nodes used per job\n")
	fmt.Fprintf(&b, "%6s  %8s  %9s  %14s\n", "nodes", "jobs", "pct jobs", "node-time pct")
	var totalNT float64
	for _, nt := range r.NodeTime {
		totalNT += nt
	}
	for _, k := range r.NodesPerJob.Keys() {
		ntPct := 0.0
		if totalNT > 0 {
			ntPct = 100 * r.NodeTime[int(k)] / totalNT
		}
		fmt.Fprintf(&b, "%6d  %8d  %8.1f%%  %13.1f%%\n",
			k, r.NodesPerJob.Count(k), 100*r.NodesPerJob.Fraction(k), ntPct)
	}
	return b.String()
}

// FormatTable1 renders Table 1: files opened per traced job.
func (r *Report) FormatTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: number of files opened by traced jobs\n")
	fmt.Fprintf(&b, "%8s  %8s\n", "files", "jobs")
	buckets := r.FilesPerJob.Bucketed([]int64{1, 2, 3, 4})
	labels := []string{"1", "2", "3", "4", "5+"}
	for i, lbl := range labels {
		fmt.Fprintf(&b, "%8s  %8d\n", lbl, buckets[i])
	}
	return b.String()
}

// FormatFig3 renders the Figure 3 CDF of file sizes at close at the
// paper's log-scale ticks (10 B to 10 MB).
func (r *Report) FormatFig3() string {
	var b strings.Builder
	b.WriteString("Figure 3: CDF of file size at close\n")
	fmt.Fprintf(&b, "%12s  %8s\n", "bytes", "CDF")
	for _, x := range stats.LogTicks(1, 7) {
		fmt.Fprintf(&b, "%12.0f  %8.4f\n", x, r.FileSizeCDF.At(x))
	}
	return b.String()
}

// FormatFig4 renders Figure 4: CDFs of the number of reads and of the
// data transferred, by request size, with the write figures the paper
// quotes in prose.
func (r *Report) FormatFig4() string {
	var b strings.Builder
	b.WriteString("Figure 4: request sizes\n")
	fmt.Fprintf(&b, "%12s  %10s  %10s  %10s  %10s\n",
		"req bytes", "reads", "read data", "writes", "write data")
	for _, x := range stats.LogTicks(1, 6) {
		fmt.Fprintf(&b, "%12.0f  %10.4f  %10.4f  %10.4f  %10.4f\n", x,
			r.ReadCountBySize.At(x), r.ReadBytesBySize.At(x),
			r.WriteCountBySize.At(x), r.WriteBytesBySize.At(x))
	}
	fmt.Fprintf(&b, "reads  < %d B: %5.1f%% of requests moving %4.1f%% of data\n",
		SmallRequestBytes, 100*r.SmallReadFrac, 100*r.SmallReadData)
	fmt.Fprintf(&b, "writes < %d B: %5.1f%% of requests moving %4.1f%% of data\n",
		SmallRequestBytes, 100*r.SmallWriteFrac, 100*r.SmallWriteData)
	return b.String()
}

// pctCell renders one CDF cell of a percent table. A nil CDF — a
// degenerate report whose class maps were never populated, as the
// twin's tiny saturation probes can construct — renders as a
// deterministic "n/a" instead of dereferencing nil. A non-nil empty
// CDF keeps its defined 0.0000 rendering.
func pctCell(c *stats.CDF, x float64) string {
	if c == nil {
		return fmt.Sprintf("%11s", "n/a")
	}
	return fmt.Sprintf("%11.4f", c.At(x))
}

func formatPctCDFs(title string, cdfs map[FileClass]*stats.CDF) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%6s", "%")
	classes := []FileClass{ReadOnly, WriteOnly, ReadWrite}
	for _, c := range classes {
		fmt.Fprintf(&b, "  %11s", c)
	}
	b.WriteString("\n")
	for pct := 0; pct <= 100; pct += 10 {
		fmt.Fprintf(&b, "%5d%%", pct)
		for _, c := range classes {
			fmt.Fprintf(&b, "  %s", pctCell(cdfs[c], float64(pct)))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatFig5 renders the per-file percent-sequential CDFs.
func (r *Report) FormatFig5() string {
	return formatPctCDFs("Figure 5: CDF of percent-sequential access per file (per-node basis)", r.SeqPct)
}

// FormatFig6 renders the per-file percent-consecutive CDFs.
func (r *Report) FormatFig6() string {
	return formatPctCDFs("Figure 6: CDF of percent-consecutive access per file (per-node basis)", r.ConsPct)
}

// FormatTable2 renders Table 2: distinct interval sizes per file.
func (r *Report) FormatTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: number of different interval sizes per file\n")
	fmt.Fprintf(&b, "%10s  %8s  %8s\n", "intervals", "files", "percent")
	buckets := r.IntervalHist.Bucketed([]int64{0, 1, 2, 3})
	labels := []string{"0", "1", "2", "3", "4+"}
	total := r.IntervalHist.Total()
	for i, lbl := range labels {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(buckets[i]) / float64(total)
		}
		fmt.Fprintf(&b, "%10s  %8d  %7.1f%%\n", lbl, buckets[i], pct)
	}
	fmt.Fprintf(&b, "1-interval files that are purely consecutive: %.1f%%\n",
		100*r.OneIntervalZeroFrac)
	return b.String()
}

// FormatTable3 renders Table 3: distinct request sizes per file.
func (r *Report) FormatTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: number of different request sizes per file\n")
	fmt.Fprintf(&b, "%10s  %8s  %8s\n", "sizes", "files", "percent")
	buckets := r.ReqSizeHist.Bucketed([]int64{0, 1, 2, 3})
	labels := []string{"0", "1", "2", "3", "4+"}
	total := r.ReqSizeHist.Total()
	for i, lbl := range labels {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(buckets[i]) / float64(total)
		}
		fmt.Fprintf(&b, "%10s  %8d  %7.1f%%\n", lbl, buckets[i], pct)
	}
	return b.String()
}

// FormatFig7 renders the Figure 7 sharing CDFs.
func (r *Report) FormatFig7() string {
	var b strings.Builder
	b.WriteString("Figure 7: sharing between nodes in concurrently-opened files\n")
	fmt.Fprintf(&b, "%9s  %11s  %11s  %11s  %11s\n",
		"% shared", "RO bytes", "RO blocks", "WO bytes", "WO blocks")
	for pct := 0; pct <= 100; pct += 10 {
		x := float64(pct)
		fmt.Fprintf(&b, "%8d%%  %s  %s  %s  %s\n", pct,
			pctCell(r.ByteSharing[ReadOnly], x),
			pctCell(r.BlockSharing[ReadOnly], x),
			pctCell(r.ByteSharing[WriteOnly], x),
			pctCell(r.BlockSharing[WriteOnly], x))
	}
	return b.String()
}

// FormatPopulations renders the Section 4.2 prose numbers.
func (r *Report) FormatPopulations() string {
	var b strings.Builder
	b.WriteString("File populations (Section 4.2)\n")
	fmt.Fprintf(&b, "  files opened:     %d (opens: %d)\n", r.FilesOpened, r.TotalOpens)
	for _, c := range []FileClass{WriteOnly, ReadOnly, ReadWrite, Untouched} {
		n := r.FilesByClass[c]
		pct := 0.0
		if r.FilesOpened > 0 {
			pct = 100 * float64(n) / float64(r.FilesOpened)
		}
		fmt.Fprintf(&b, "  %-12s %8d  (%.1f%%)\n", c.String()+":", n, pct)
	}
	fmt.Fprintf(&b, "  temporary-file opens: %.2f%%\n", 100*r.TempOpenFraction)
	fmt.Fprintf(&b, "  mean bytes read  per read-only  file: %.0f\n", r.MeanBytesRead)
	fmt.Fprintf(&b, "  mean bytes written per write-only file: %.0f\n", r.MeanBytesWritten)
	return b.String()
}

// FormatModes renders the Section 4.6 I/O-mode usage.
func (r *Report) FormatModes() string {
	var b strings.Builder
	b.WriteString("I/O mode usage (Section 4.6)\n")
	var total int64
	for _, n := range r.ModeOpens {
		total += n
	}
	for m, n := range r.ModeOpens {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n) / float64(total)
		}
		fmt.Fprintf(&b, "  mode %d: %10d opens  (%.2f%%)\n", m, n, pct)
	}
	return b.String()
}

// FormatJobs renders the job-mix summary.
func (r *Report) FormatJobs() string {
	var b strings.Builder
	b.WriteString("Job mix (Section 4.1)\n")
	fmt.Fprintf(&b, "  traced period:   %.1f hours\n", r.Horizon.ToSeconds()/3600)
	fmt.Fprintf(&b, "  total jobs:      %d\n", r.TotalJobs)
	fmt.Fprintf(&b, "  single-node:     %d\n", r.SingleNodeJobs)
	fmt.Fprintf(&b, "  multi-node:      %d\n", r.MultiNodeJobs)
	fmt.Fprintf(&b, "  traced (lower bound): %d\n", r.TracedJobs)
	return b.String()
}

// Format renders the full report in the paper's section order.
func (r *Report) Format() string {
	sections := []string{
		r.FormatJobs(),
		r.FormatFig1(),
		r.FormatFig2(),
		r.FormatPopulations(),
		r.FormatTable1(),
		r.FormatFig3(),
		r.FormatFig4(),
		r.FormatFig5(),
		r.FormatFig6(),
		r.FormatTable2(),
		r.FormatTable3(),
		r.FormatModes(),
		r.FormatFig7(),
	}
	if r.Degradation != nil {
		sections = append(sections, r.Degradation.Format())
	}
	return strings.Join(sections, "\n")
}

// IdlePct returns the percent of traced time with zero jobs running.
func (r *Report) IdlePct() float64 {
	if r.Horizon == 0 {
		return 0
	}
	return 100 * float64(r.JobConcurrency[0]) / float64(r.Horizon)
}

// MultiJobPct returns the percent of traced time with more than one
// job running.
func (r *Report) MultiJobPct() float64 {
	if r.Horizon == 0 {
		return 0
	}
	var t sim.Time
	levels := make([]int, 0, len(r.JobConcurrency))
	for l := range r.JobConcurrency {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		if l > 1 {
			t += r.JobConcurrency[l]
		}
	}
	return 100 * float64(t) / float64(r.Horizon)
}
