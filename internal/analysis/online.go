package analysis

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Online is the incremental analyzer: it consumes a postprocessed
// (time-ordered) event stream one record at a time and produces
// exactly the Report the batch Analyze entry points do -- Analyze and
// AnalyzeInto are thin loops over it, so the two paths cannot drift.
// Its working state is the per-file accumulators and job bookkeeping,
// never the event stream itself, which is what lets core's streaming
// study pipeline analyze traces far larger than memory.
//
// Use: Observe every event in stream order, then Finish exactly once.
type Online struct {
	s          *Scratch
	r          *Report
	blockBytes int64

	files    map[uint64]*fileAcc
	jobStart map[uint32]sim.Time
	jobNodes map[uint32]int
	jobFiles map[uint32]map[uint64]struct{}
	edges    []edge
	lastT    sim.Time
}

// NewOnline returns an incremental analyzer with freshly allocated
// working state.
func NewOnline(header trace.Header) *Online {
	return OnlineInto(nil, header)
}

// OnlineInto is NewOnline drawing its working state from the given
// scratch pool (see AnalyzeInto for the pooling contract). A nil
// scratch allocates everything fresh.
func OnlineInto(s *Scratch, header trace.Header) *Online {
	o := &Online{
		s: s,
		r: &Report{
			Header:         header,
			JobConcurrency: make(map[int]sim.Time),
			NodesPerJob:    s.hist(),
			NodeTime:       make(map[int]float64),
			FilesPerJob:    s.hist(),
			FilesByClass:   make(map[FileClass]int),
			FileSizeCDF:    s.cdf(),

			ReadCountBySize:  s.cdf(),
			ReadBytesBySize:  s.cdf(),
			WriteCountBySize: s.cdf(),
			WriteBytesBySize: s.cdf(),

			SeqPct:       newClassCDFs(s),
			ConsPct:      newClassCDFs(s),
			IntervalHist: s.hist(),
			ReqSizeHist:  s.hist(),
			ByteSharing:  newClassCDFs(s),
			BlockSharing: newClassCDFs(s),
		},
	}
	o.blockBytes = int64(header.BlockBytes)
	if o.blockBytes <= 0 {
		o.blockBytes = 4096
	}
	o.files = s.fileMap()
	if s != nil {
		if s.jobStart == nil {
			s.jobStart = make(map[uint32]sim.Time)
			s.jobNodes = make(map[uint32]int)
			s.jobFiles = make(map[uint32]map[uint64]struct{})
		}
		o.jobStart, o.jobNodes, o.jobFiles = s.jobStart, s.jobNodes, s.jobFiles
		o.edges = s.edges[:0]
	} else {
		o.jobStart = make(map[uint32]sim.Time)
		o.jobNodes = make(map[uint32]int)
		o.jobFiles = make(map[uint32]map[uint64]struct{})
	}
	return o
}

// Observe feeds the analyzer one event. Events must arrive in
// postprocessed stream order; ev is not retained.
func (o *Online) Observe(ev *trace.Event) {
	r, s := o.r, o.s
	t := sim.Time(ev.Time)
	if t > o.lastT {
		o.lastT = t
	}
	switch ev.Type {
	case trace.EvJobStart:
		r.TotalJobs++
		nodes := int(ev.Size)
		if nodes <= 1 {
			r.SingleNodeJobs++
		} else {
			r.MultiNodeJobs++
		}
		r.NodesPerJob.Add(int64(nodes))
		o.jobStart[ev.Job] = t
		o.jobNodes[ev.Job] = nodes
		o.edges = append(o.edges, edge{t, +1})
	case trace.EvJobEnd:
		if start, ok := o.jobStart[ev.Job]; ok {
			r.NodeTime[o.jobNodes[ev.Job]] +=
				float64(o.jobNodes[ev.Job]) * (t - start).ToSeconds()
		}
		o.edges = append(o.edges, edge{t, -1})
	case trace.EvOpen:
		r.TotalOpens++
		if int(ev.Mode) < len(r.ModeOpens) {
			r.ModeOpens[ev.Mode]++
		}
		if o.jobFiles[ev.Job] == nil {
			o.jobFiles[ev.Job] = s.fileSet()
		}
		o.jobFiles[ev.Job][ev.File] = struct{}{}
		fileFor(s, o.files, ev.File).observe(ev, s)
	case trace.EvClose, trace.EvDelete:
		fileFor(s, o.files, ev.File).observe(ev, s)
	case trace.EvRead:
		r.ReadCountBySize.Add(float64(ev.Size))
		fileFor(s, o.files, ev.File).observe(ev, s)
	case trace.EvWrite:
		r.WriteCountBySize.Add(float64(ev.Size))
		fileFor(s, o.files, ev.File).observe(ev, s)
	case trace.EvReadStrided:
		r.ReadCountBySize.Add(float64(ev.Bytes()))
		fileFor(s, o.files, ev.File).observe(ev, s)
	case trace.EvWriteStrided:
		r.WriteCountBySize.Add(float64(ev.Bytes()))
		fileFor(s, o.files, ev.File).observe(ev, s)
	case trace.EvSeek:
		// Seeks move pointers; the request stream itself is what
		// the paper characterizes.
	}
}

// Finish computes the per-file and aggregate statistics and returns
// the completed Report. The horizon is the duration of the traced
// period; pass the simulation end time, or 0 to use the last event's
// timestamp. Call it exactly once; the analyzer must not be used
// afterwards.
func (o *Online) Finish(horizon sim.Time) *Report {
	r, s := o.r, o.s
	if horizon <= 0 {
		horizon = o.lastT
	}
	r.Horizon = horizon
	r.JobConcurrency = concurrencyFromEdges(o.edges, horizon)

	// Traced jobs: those that opened at least one file.
	r.TracedJobs = len(o.jobFiles)
	for _, fs := range o.jobFiles {
		r.FilesPerJob.Add(int64(len(fs)))
	}

	// Per-file statistics.
	var ids []uint64
	if s != nil {
		ids = s.ids[:0]
	} else {
		ids = make([]uint64, 0, len(o.files))
	}
	for id := range o.files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var tempOpens int64
	var roFiles, woFiles int
	var roBytes, woBytes float64
	var oneIntervalZero, oneIntervalTotal int64
	for _, id := range ids {
		f := o.files[id]
		r.FilesOpened++
		class := f.class()
		r.FilesByClass[class]++
		if class == ReadWrite {
			r.ReadWriteSameOpen++
		}
		if class == ReadOnly {
			roFiles++
			roBytes += float64(f.bytesRead)
		}
		if class == WriteOnly {
			woFiles++
			woBytes += float64(f.bytesWritten)
		}
		tempOpens += int64(f.tempOpens)
		if f.closed {
			r.FileSizeCDF.Add(float64(f.sizeAtClose))
		}

		// Figures 5-6: files with more than one request, per the paper.
		if f.totalRequests() > 1 {
			if seqPct, consPct, ok := f.seqConsPct(); ok {
				r.SeqPct[class].Add(seqPct)
				r.ConsPct[class].Add(consPct)
			}
		}

		// Table 2.
		nIntervals, allZero := f.distinctIntervals(s)
		r.IntervalHist.Add(int64(nIntervals))
		if nIntervals == 1 {
			oneIntervalTotal++
			if allZero {
				oneIntervalZero++
			}
		}

		// Table 3.
		r.ReqSizeHist.Add(int64(len(f.reqSizes)))

		// Figure 7: concurrently open on >= 2 nodes.
		if f.maxOpenNodes >= 2 {
			if bytePct, blockPct, ok := f.sharing(o.blockBytes, s); ok {
				r.ByteSharing[class].Add(bytePct)
				r.BlockSharing[class].Add(blockPct)
			}
		}
	}
	if r.TotalOpens > 0 {
		r.TempOpenFraction = float64(tempOpens) / float64(r.TotalOpens)
	}
	if roFiles > 0 {
		r.MeanBytesRead = roBytes / float64(roFiles)
	}
	if woFiles > 0 {
		r.MeanBytesWritten = woBytes / float64(woFiles)
	}
	if oneIntervalTotal > 0 {
		r.OneIntervalZeroFrac = float64(oneIntervalZero) / float64(oneIntervalTotal)
	}

	// Figure 4 byte-weighted CDFs and small-request fractions.
	fillBytesBySize(r.ReadCountBySize, r.ReadBytesBySize)
	fillBytesBySize(r.WriteCountBySize, r.WriteBytesBySize)
	r.SmallReadFrac = r.ReadCountBySize.At(SmallRequestBytes - 1)
	r.SmallWriteFrac = r.WriteCountBySize.At(SmallRequestBytes - 1)
	r.SmallReadData = r.ReadBytesBySize.At(SmallRequestBytes - 1)
	r.SmallWriteData = r.WriteBytesBySize.At(SmallRequestBytes - 1)

	// The report is complete: everything it exposes has been copied or
	// summarized out of the working state, so the accumulators, job
	// maps, and edge list can go back to the pool for the next study.
	if s != nil {
		s.edges = o.edges
		s.ids = ids
		s.release()
	}
	o.r = nil // poison: Observe/Finish after Finish is a bug
	return r
}
