package analysis

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SmallRequestBytes is the paper's threshold for a "small" request:
// fewer than 4000 bytes (just under the 4 KB block size).
const SmallRequestBytes = 4000

// Report holds every statistic the paper's evaluation section reports,
// keyed by the figure or table it regenerates.
type Report struct {
	Header trace.Header

	// Job mix -------------------------------------------------------
	TotalJobs      int
	SingleNodeJobs int
	MultiNodeJobs  int
	TracedJobs     int // jobs that produced at least one CFS event (lower bound, like the paper's)

	// Figure 1: virtual time spent with N jobs running.
	JobConcurrency map[int]sim.Time
	Horizon        sim.Time

	// Figure 2: distribution of compute nodes per job, and the share
	// of node-time consumed by each job size.
	NodesPerJob *stats.Hist
	NodeTime    map[int]float64 // job size -> node-seconds

	// Table 1: distinct files opened per traced job, bucketed
	// 1,2,3,4,5+.
	FilesPerJob *stats.Hist

	// Section 4.2: file populations.
	FilesOpened       int
	FilesByClass      map[FileClass]int
	TotalOpens        int64
	TempOpenFraction  float64 // fraction of opens to temporary files
	MeanBytesRead     float64 // per read-only-or-read-write file that read
	MeanBytesWritten  float64
	ReadWriteSameOpen int // files both read and written

	// Figure 3: file sizes at close.
	FileSizeCDF *stats.CDF

	// Figure 4: request sizes.
	ReadCountBySize  *stats.CDF // one sample per read, value = request size
	ReadBytesBySize  *stats.CDF // request size weighted by bytes moved
	WriteCountBySize *stats.CDF
	WriteBytesBySize *stats.CDF
	SmallReadFrac    float64 // fraction of reads under SmallRequestBytes
	SmallReadData    float64 // fraction of read bytes moved by them
	SmallWriteFrac   float64
	SmallWriteData   float64

	// Figures 5 and 6: per-file percent-sequential and
	// percent-consecutive CDFs by class.
	SeqPct  map[FileClass]*stats.CDF
	ConsPct map[FileClass]*stats.CDF

	// Table 2: distinct interval sizes per file.
	IntervalHist *stats.Hist // distinct-interval-count -> files
	// Fraction of 1-interval files whose single interval is zero
	// (purely consecutive); the paper reports >99%.
	OneIntervalZeroFrac float64

	// Table 3: distinct request sizes per file.
	ReqSizeHist *stats.Hist

	// Section 4.6: opens per I/O mode.
	ModeOpens [4]int64

	// Figure 7: byte- and block-granularity sharing CDFs among files
	// concurrently opened by multiple nodes.
	ByteSharing  map[FileClass]*stats.CDF
	BlockSharing map[FileClass]*stats.CDF
}

// Analyze computes a Report from a postprocessed (time-ordered) event
// stream. The horizon is the duration of the traced period; pass the
// simulation end time, or 0 to use the last event's timestamp.
func Analyze(header trace.Header, events []trace.Event, horizon sim.Time) *Report {
	return AnalyzeInto(nil, header, events, horizon)
}

// AnalyzeInto is Analyze drawing its working state -- file
// accumulators, job bookkeeping, statistic objects -- from the given
// scratch pool, which a worker reuses across studies (see core.Arena).
// The returned Report borrows pooled CDFs and histograms: once it is
// discarded, return them with ReclaimReport. A nil scratch allocates
// everything fresh (identical to Analyze).
func AnalyzeInto(s *Scratch, header trace.Header, events []trace.Event, horizon sim.Time) *Report {
	r := &Report{
		Header:         header,
		JobConcurrency: make(map[int]sim.Time),
		NodesPerJob:    s.hist(),
		NodeTime:       make(map[int]float64),
		FilesPerJob:    s.hist(),
		FilesByClass:   make(map[FileClass]int),
		FileSizeCDF:    s.cdf(),

		ReadCountBySize:  s.cdf(),
		ReadBytesBySize:  s.cdf(),
		WriteCountBySize: s.cdf(),
		WriteBytesBySize: s.cdf(),

		SeqPct:       newClassCDFs(s),
		ConsPct:      newClassCDFs(s),
		IntervalHist: s.hist(),
		ReqSizeHist:  s.hist(),
		ByteSharing:  newClassCDFs(s),
		BlockSharing: newClassCDFs(s),
	}
	blockBytes := int64(header.BlockBytes)
	if blockBytes <= 0 {
		blockBytes = 4096
	}

	files := s.fileMap()
	var jobStart map[uint32]sim.Time
	var jobNodes map[uint32]int
	var jobFiles map[uint32]map[uint64]struct{}
	if s != nil {
		if s.jobStart == nil {
			s.jobStart = make(map[uint32]sim.Time)
			s.jobNodes = make(map[uint32]int)
			s.jobFiles = make(map[uint32]map[uint64]struct{})
		}
		jobStart, jobNodes, jobFiles = s.jobStart, s.jobNodes, s.jobFiles
	} else {
		jobStart = make(map[uint32]sim.Time)
		jobNodes = make(map[uint32]int)
		jobFiles = make(map[uint32]map[uint64]struct{})
	}
	var lastT sim.Time

	var edges []edge
	if s != nil {
		edges = s.edges[:0]
	}

	for i := range events {
		ev := &events[i]
		t := sim.Time(ev.Time)
		if t > lastT {
			lastT = t
		}
		switch ev.Type {
		case trace.EvJobStart:
			r.TotalJobs++
			nodes := int(ev.Size)
			if nodes <= 1 {
				r.SingleNodeJobs++
			} else {
				r.MultiNodeJobs++
			}
			r.NodesPerJob.Add(int64(nodes))
			jobStart[ev.Job] = t
			jobNodes[ev.Job] = nodes
			edges = append(edges, edge{t, +1})
		case trace.EvJobEnd:
			if start, ok := jobStart[ev.Job]; ok {
				r.NodeTime[jobNodes[ev.Job]] +=
					float64(jobNodes[ev.Job]) * (t - start).ToSeconds()
			}
			edges = append(edges, edge{t, -1})
		case trace.EvOpen:
			r.TotalOpens++
			if int(ev.Mode) < len(r.ModeOpens) {
				r.ModeOpens[ev.Mode]++
			}
			if jobFiles[ev.Job] == nil {
				jobFiles[ev.Job] = s.fileSet()
			}
			jobFiles[ev.Job][ev.File] = struct{}{}
			fileFor(s, files, ev.File).observe(ev, s)
		case trace.EvClose, trace.EvDelete:
			fileFor(s, files, ev.File).observe(ev, s)
		case trace.EvRead:
			r.ReadCountBySize.Add(float64(ev.Size))
			fileFor(s, files, ev.File).observe(ev, s)
		case trace.EvWrite:
			r.WriteCountBySize.Add(float64(ev.Size))
			fileFor(s, files, ev.File).observe(ev, s)
		case trace.EvReadStrided:
			r.ReadCountBySize.Add(float64(ev.Bytes()))
			fileFor(s, files, ev.File).observe(ev, s)
		case trace.EvWriteStrided:
			r.WriteCountBySize.Add(float64(ev.Bytes()))
			fileFor(s, files, ev.File).observe(ev, s)
		case trace.EvSeek:
			// Seeks move pointers; the request stream itself is what
			// the paper characterizes.
		}
	}
	if horizon <= 0 {
		horizon = lastT
	}
	r.Horizon = horizon
	r.JobConcurrency = concurrencyFromEdges(edges, horizon)

	// Traced jobs: those that opened at least one file.
	r.TracedJobs = len(jobFiles)
	for _, fs := range jobFiles {
		r.FilesPerJob.Add(int64(len(fs)))
	}

	// Per-file statistics.
	var ids []uint64
	if s != nil {
		ids = s.ids[:0]
	} else {
		ids = make([]uint64, 0, len(files))
	}
	for id := range files {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	var tempOpens int64
	var roFiles, woFiles int
	var roBytes, woBytes float64
	var oneIntervalZero, oneIntervalTotal int64
	for _, id := range ids {
		f := files[id]
		r.FilesOpened++
		class := f.class()
		r.FilesByClass[class]++
		if class == ReadWrite {
			r.ReadWriteSameOpen++
		}
		if class == ReadOnly {
			roFiles++
			roBytes += float64(f.bytesRead)
		}
		if class == WriteOnly {
			woFiles++
			woBytes += float64(f.bytesWritten)
		}
		tempOpens += int64(f.tempOpens)
		if f.closed {
			r.FileSizeCDF.Add(float64(f.sizeAtClose))
		}

		// Figures 5-6: files with more than one request, per the paper.
		if f.totalRequests() > 1 {
			if seqPct, consPct, ok := f.seqConsPct(); ok {
				r.SeqPct[class].Add(seqPct)
				r.ConsPct[class].Add(consPct)
			}
		}

		// Table 2.
		nIntervals, allZero := f.distinctIntervals(s)
		r.IntervalHist.Add(int64(nIntervals))
		if nIntervals == 1 {
			oneIntervalTotal++
			if allZero {
				oneIntervalZero++
			}
		}

		// Table 3.
		r.ReqSizeHist.Add(int64(len(f.reqSizes)))

		// Figure 7: concurrently open on >= 2 nodes.
		if f.maxOpenNodes >= 2 {
			if bytePct, blockPct, ok := f.sharing(blockBytes, s); ok {
				r.ByteSharing[class].Add(bytePct)
				r.BlockSharing[class].Add(blockPct)
			}
		}
	}
	if r.TotalOpens > 0 {
		r.TempOpenFraction = float64(tempOpens) / float64(r.TotalOpens)
	}
	if roFiles > 0 {
		r.MeanBytesRead = roBytes / float64(roFiles)
	}
	if woFiles > 0 {
		r.MeanBytesWritten = woBytes / float64(woFiles)
	}
	if oneIntervalTotal > 0 {
		r.OneIntervalZeroFrac = float64(oneIntervalZero) / float64(oneIntervalTotal)
	}

	// Figure 4 byte-weighted CDFs and small-request fractions.
	fillBytesBySize(r.ReadCountBySize, r.ReadBytesBySize)
	fillBytesBySize(r.WriteCountBySize, r.WriteBytesBySize)
	r.SmallReadFrac = r.ReadCountBySize.At(SmallRequestBytes - 1)
	r.SmallWriteFrac = r.WriteCountBySize.At(SmallRequestBytes - 1)
	r.SmallReadData = r.ReadBytesBySize.At(SmallRequestBytes - 1)
	r.SmallWriteData = r.WriteBytesBySize.At(SmallRequestBytes - 1)

	// The report is complete: everything it exposes has been copied or
	// summarized out of the working state, so the accumulators, job
	// maps, and edge list can go back to the pool for the next study.
	if s != nil {
		s.edges = edges
		s.ids = ids
		s.release()
	}
	return r
}

func fileFor(s *Scratch, files map[uint64]*fileAcc, id uint64) *fileAcc {
	f := files[id]
	if f == nil {
		f = s.getAcc(id)
		files[id] = f
	}
	return f
}

func newClassCDFs(s *Scratch) map[FileClass]*stats.CDF {
	m := make(map[FileClass]*stats.CDF, numClasses)
	for c := Untouched; c < numClasses; c++ {
		m[c] = s.cdf()
	}
	return m
}

// fillBytesBySize builds the bytes-weighted request-size CDF from the
// count CDF's samples. Each request of size s contributes s bytes of
// weight at position s. To bound memory, byte weights are added in
// kilobyte granules; Steps() gives distinct sizes and cumulative
// fractions, from which per-size counts are recovered by differencing.
func fillBytesBySize(counts, bytes *stats.CDF) {
	steps := counts.Steps()
	n := float64(counts.Len())
	prev := 0.0
	for _, st := range steps {
		countHere := (st.F - prev) * n
		prev = st.F
		granules := int(st.X * countHere / 1024)
		if granules < 1 && st.X*countHere > 0 {
			granules = 1
		}
		bytes.AddN(st.X, granules)
	}
}

// edge is a +1/-1 job-concurrency transition at time t.
type edge struct {
	t sim.Time
	d int
}

// concurrencyFromEdges integrates the +1/-1 job edges into time spent
// at each concurrency level over [0, horizon).
func concurrencyFromEdges(edges []edge, horizon sim.Time) map[int]sim.Time {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].d < edges[j].d
	})
	profile := make(map[int]sim.Time)
	var prev sim.Time
	level := 0
	for _, e := range edges {
		t := e.t
		if t > horizon {
			t = horizon
		}
		if t > prev {
			profile[level] += t - prev
			prev = t
		}
		level += e.d
	}
	if prev < horizon {
		profile[level] += horizon - prev
	}
	return profile
}
