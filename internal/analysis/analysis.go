package analysis

import (
	"sort"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SmallRequestBytes is the paper's threshold for a "small" request:
// fewer than 4000 bytes (just under the 4 KB block size).
const SmallRequestBytes = 4000

// Report holds every statistic the paper's evaluation section reports,
// keyed by the figure or table it regenerates.
type Report struct {
	Header trace.Header

	// Job mix -------------------------------------------------------
	TotalJobs      int
	SingleNodeJobs int
	MultiNodeJobs  int
	TracedJobs     int // jobs that produced at least one CFS event (lower bound, like the paper's)

	// Figure 1: virtual time spent with N jobs running.
	JobConcurrency map[int]sim.Time
	Horizon        sim.Time

	// Figure 2: distribution of compute nodes per job, and the share
	// of node-time consumed by each job size.
	NodesPerJob *stats.Hist
	NodeTime    map[int]float64 // job size -> node-seconds

	// Table 1: distinct files opened per traced job, bucketed
	// 1,2,3,4,5+.
	FilesPerJob *stats.Hist

	// Section 4.2: file populations.
	FilesOpened       int
	FilesByClass      map[FileClass]int
	TotalOpens        int64
	TempOpenFraction  float64 // fraction of opens to temporary files
	MeanBytesRead     float64 // per read-only-or-read-write file that read
	MeanBytesWritten  float64
	ReadWriteSameOpen int // files both read and written

	// Figure 3: file sizes at close.
	FileSizeCDF *stats.CDF

	// Figure 4: request sizes.
	ReadCountBySize  *stats.CDF // one sample per read, value = request size
	ReadBytesBySize  *stats.CDF // request size weighted by bytes moved
	WriteCountBySize *stats.CDF
	WriteBytesBySize *stats.CDF
	SmallReadFrac    float64 // fraction of reads under SmallRequestBytes
	SmallReadData    float64 // fraction of read bytes moved by them
	SmallWriteFrac   float64
	SmallWriteData   float64

	// Figures 5 and 6: per-file percent-sequential and
	// percent-consecutive CDFs by class.
	SeqPct  map[FileClass]*stats.CDF
	ConsPct map[FileClass]*stats.CDF

	// Table 2: distinct interval sizes per file.
	IntervalHist *stats.Hist // distinct-interval-count -> files
	// Fraction of 1-interval files whose single interval is zero
	// (purely consecutive); the paper reports >99%.
	OneIntervalZeroFrac float64

	// Table 3: distinct request sizes per file.
	ReqSizeHist *stats.Hist

	// Section 4.6: opens per I/O mode.
	ModeOpens [4]int64

	// Figure 7: byte- and block-granularity sharing CDFs among files
	// concurrently opened by multiple nodes.
	ByteSharing  map[FileClass]*stats.CDF
	BlockSharing map[FileClass]*stats.CDF

	// Degradation is the injected-fault summary, attached by the study
	// runner after analysis. Nil on a healthy machine, which keeps the
	// formatted report byte-identical to a fault-free build.
	Degradation *faults.Report
}

// Analyze computes a Report from a postprocessed (time-ordered) event
// stream. The horizon is the duration of the traced period; pass the
// simulation end time, or 0 to use the last event's timestamp.
func Analyze(header trace.Header, events []trace.Event, horizon sim.Time) *Report {
	return AnalyzeInto(nil, header, events, horizon)
}

// AnalyzeInto is Analyze drawing its working state -- file
// accumulators, job bookkeeping, statistic objects -- from the given
// scratch pool, which a worker reuses across studies (see core.Arena).
// The returned Report borrows pooled CDFs and histograms: once it is
// discarded, return them with ReclaimReport. A nil scratch allocates
// everything fresh (identical to Analyze).
//
// Both batch entry points are loops over the incremental analyzer
// (see Online), so the streaming and batch paths produce identical
// reports by construction.
func AnalyzeInto(s *Scratch, header trace.Header, events []trace.Event, horizon sim.Time) *Report {
	o := OnlineInto(s, header)
	for i := range events {
		o.Observe(&events[i])
	}
	return o.Finish(horizon)
}

func fileFor(s *Scratch, files map[uint64]*fileAcc, id uint64) *fileAcc {
	f := files[id]
	if f == nil {
		f = s.getAcc(id)
		files[id] = f
	}
	return f
}

func newClassCDFs(s *Scratch) map[FileClass]*stats.CDF {
	m := make(map[FileClass]*stats.CDF, numClasses)
	for c := Untouched; c < numClasses; c++ {
		m[c] = s.cdf()
	}
	return m
}

// fillBytesBySize builds the bytes-weighted request-size CDF from the
// count CDF's samples. Each request of size s contributes s bytes of
// weight at position s. To bound memory, byte weights are added in
// kilobyte granules; Steps() gives distinct sizes and cumulative
// fractions, from which per-size counts are recovered by differencing.
func fillBytesBySize(counts, bytes *stats.CDF) {
	steps := counts.Steps()
	n := float64(counts.Len())
	prev := 0.0
	for _, st := range steps {
		countHere := (st.F - prev) * n
		prev = st.F
		granules := int(st.X * countHere / 1024)
		if granules < 1 && st.X*countHere > 0 {
			granules = 1
		}
		bytes.AddN(st.X, granules)
	}
}

// edge is a +1/-1 job-concurrency transition at time t.
type edge struct {
	t sim.Time
	d int
}

// concurrencyFromEdges integrates the +1/-1 job edges into time spent
// at each concurrency level over [0, horizon).
func concurrencyFromEdges(edges []edge, horizon sim.Time) map[int]sim.Time {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].d < edges[j].d
	})
	profile := make(map[int]sim.Time)
	var prev sim.Time
	level := 0
	for _, e := range edges {
		t := e.t
		if t > horizon {
			t = horizon
		}
		if t > prev {
			profile[level] += t - prev
			prev = t
		}
		level += e.d
	}
	if prev < horizon {
		profile[level] += horizon - prev
	}
	return profile
}
