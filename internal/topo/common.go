package topo

import (
	"fmt"

	"repro/internal/sim"
)

// base carries the state and latency components every topology model
// here shares: the kernel, the configuration, the degradation hook,
// and the traffic counters. Concrete models embed it and supply the
// hop structure.
type base struct {
	k     *sim.Kernel
	cfg   Config
	nodes int
	deg   Degrader

	delivered int64
	bytesSent int64
}

func (b *base) Nodes() int             { return b.nodes }
func (b *base) Delivered() int64       { return b.delivered }
func (b *base) BytesSent() int64       { return b.bytesSent }
func (b *base) SetDegrader(d Degrader) { b.deg = d }

func checkCommon(name string, cfg Config) {
	if cfg.PacketBytes <= 0 {
		panic(name + ": packet size must be positive")
	}
	if cfg.BytesPerSecond <= 0 {
		panic(name + ": bandwidth must be positive")
	}
}

// validate panics if id is not a compute-node address.
func (b *base) validate(id int) {
	if id < 0 || id >= b.nodes {
		panic(fmt.Sprintf("topo: node %d out of range [0,%d)", id, b.nodes))
	}
}

// software returns the per-message software cost: startup plus
// per-packet handling, with even empty messages occupying one packet.
func (b *base) software(bytes int) sim.Time {
	if bytes < 0 {
		panic("topo: negative message size")
	}
	packets := (bytes + b.cfg.PacketBytes - 1) / b.cfg.PacketBytes
	if packets == 0 {
		packets = 1
	}
	return b.cfg.Startup + sim.Time(packets)*b.cfg.PerPacket
}

// transferAt returns the bandwidth cost of bytes at the given rate.
func transferAt(bytes int, bytesPerSecond float64) sim.Time {
	return sim.Time(float64(bytes) / bytesPerSecond * float64(sim.Second))
}

// ship accounts for and schedules one message delivery.
func (b *base) ship(lat sim.Time, bytes int, deliver func()) {
	b.bytesSent += int64(bytes)
	b.k.After(lat, func() {
		b.delivered++
		deliver()
	})
}

// edgeNet is the internal surface the shared peripheral attachment
// drives: a latency function that includes the peripheral hop, and
// delivery scheduling.
type edgeNet interface {
	latencyFrom(src, host, bytes int) sim.Time
	ship(lat sim.Time, bytes int, deliver func())
}

// periph implements Attachment for any edgeNet.
type periph struct {
	n    edgeNet
	host int
}

func (p periph) Host() int { return p.host }

func (p periph) LatencyFrom(src, bytes int) sim.Time {
	return p.n.latencyFrom(src, p.host, bytes)
}

func (p periph) SendTo(src, bytes int, deliver func()) {
	p.n.ship(p.n.latencyFrom(src, p.host, bytes), bytes, deliver)
}

// SendFrom is the reverse path, which costs the same.
func (p periph) SendFrom(dst, bytes int, deliver func()) { p.SendTo(dst, bytes, deliver) }
