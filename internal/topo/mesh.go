package topo

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

func init() {
	Register("mesh",
		func(Config) int { return 2 }, // x and y axes
		func(k *sim.Kernel, nodes int, cfg Config) Interconnect {
			return newMesh(k, nodes, cfg)
		})
}

// mesh is a k-ary 2D mesh (no wraparound links) with dimension-ordered
// XY routing: a message travels its full x distance, then its full y
// distance, which is deadlock-free on a mesh. Node id = y*width + x,
// row-major. The grid is the squarest power-of-two factorization of
// the node count (128 nodes -> 16x8), so hop distances are what a
// machine-room mesh of that size would show.
//
// Link classes: 0 = x-axis links, 1 = y-axis links.
type mesh struct {
	base
	width, height int
}

func newMesh(k *sim.Kernel, nodes int, cfg Config) *mesh {
	checkCommon("mesh", cfg)
	if nodes <= 0 || nodes&(nodes-1) != 0 {
		panic(fmt.Sprintf("mesh: node count %d not a positive power of two", nodes))
	}
	order := bits.TrailingZeros(uint(nodes))
	width := 1 << ((order + 1) / 2)
	return &mesh{
		base:   base{k: k, cfg: cfg, nodes: nodes},
		width:  width,
		height: nodes / width,
	}
}

func (m *mesh) LinkClasses() int { return 2 }

func (m *mesh) ClassName(class int) string {
	if class == 0 {
		return "x"
	}
	return "y"
}

// latency models one message: software cost, XY route hop cost, and
// bandwidth transfer, with extraHops peripheral-link hops.
func (m *mesh) latency(src, dst, extraHops, bytes int) sim.Time {
	software := m.software(bytes)
	transfer := transferAt(bytes, m.cfg.BytesPerSecond)
	dx := src%m.width - dst%m.width
	if dx < 0 {
		dx = -dx
	}
	dy := src/m.width - dst/m.width
	if dy < 0 {
		dy = -dy
	}
	if m.deg == nil {
		return software + sim.Time(dx+dy+extraHops)*m.cfg.PerHop + transfer
	}
	t := software + sim.Time(extraHops)*m.cfg.PerHop
	if dx > 0 {
		t += m.deg.HopCost(0, dx, m.cfg.PerHop)
	}
	if dy > 0 {
		t += m.deg.HopCost(1, dy, m.cfg.PerHop)
	}
	return m.deg.Message(t, transfer)
}

func (m *mesh) Latency(src, dst, bytes int) sim.Time {
	m.validate(src)
	m.validate(dst)
	return m.latency(src, dst, 0, bytes)
}

func (m *mesh) Send(src, dst, bytes int, deliver func()) {
	m.ship(m.Latency(src, dst, bytes), bytes, deliver)
}

func (m *mesh) latencyFrom(src, host, bytes int) sim.Time {
	m.validate(src)
	return m.latency(src, host, 1, bytes)
}

func (m *mesh) Attach(host int) Attachment {
	m.validate(host)
	return periph{n: m, host: host}
}
