// Package topo abstracts the simulated machine's interconnect behind
// a registry of topology models, so the same CFS stack, fault
// injector, and analytical twin run on the iPSC/860's hypercube, a
// k-ary 2D mesh, or a modern two-level fat tree without knowing which.
//
// Every model shares the latency decomposition the hypercube
// established: a per-message software cost (startup plus per-packet
// handling), a per-hop link cost, and a bandwidth transfer cost. What
// varies is the hop count between two nodes and, for the fat tree,
// which bandwidth tier the transfer pays. Topologies expose their
// links grouped into named *classes* (hypercube dimensions, mesh axes,
// fat-tree levels) so fault injection can degrade "all x-axis links"
// on any topology the way it degrades "all dimension-3 links" on the
// cube.
//
// Models register themselves by name in init (the hypercube registers
// from its own package; mesh and fattree live here). The registry is
// the single point a machine preset or a scenario's machines axis
// resolves a topology name through.
package topo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Config holds the parameters of an interconnect, whatever its
// topology. It is a pure value type (the run store renders machine
// configurations with fmt's %+v).
type Config struct {
	// Kind names the topology in the registry; "" means "hypercube",
	// the machine this reproduction started from.
	Kind string
	// Dim is the hypercube dimension (2^Dim nodes). Other topologies
	// take their shape from the machine's node count and ignore it.
	Dim            int
	Startup        sim.Time // per-message software latency
	PerHop         sim.Time // additional latency per hop traversed
	PerPacket      sim.Time // per-packet handling overhead
	PacketBytes    int      // packetization unit (4096 on the iPSC)
	BytesPerSecond float64  // link bandwidth
	// SpineBytesPerSecond is the fat tree's spine-level bandwidth: a
	// spine-crossing transfer pays the slower of it and
	// BytesPerSecond. Zero means the spine matches the edge links.
	// Other topologies ignore it.
	SpineBytesPerSecond float64
}

// IPSC860 returns the interconnect parameters of the iPSC/860:
// roughly 75 us message startup, ~10 us per hop, 4 KB packets and
// 2.8 MB/s links, consistent with published measurements of the
// machine.
func IPSC860() Config {
	return Config{
		Dim:            7,
		Startup:        75 * sim.Microsecond,
		PerHop:         10 * sim.Microsecond,
		PerPacket:      15 * sim.Microsecond,
		PacketBytes:    4096,
		BytesPerSecond: 2.8e6,
	}
}

// Interconnect is the surface the machine, CFS transport, and twin
// use: node-to-node latency and delivery, peripheral attachments, a
// degradation hook, and traffic counters.
type Interconnect interface {
	// Nodes returns the number of compute nodes.
	Nodes() int
	// Latency returns the modeled delivery time for a bytes-sized
	// message between compute nodes src and dst.
	Latency(src, dst, bytes int) sim.Time
	// Send schedules deliver to run after Latency(src, dst, bytes).
	Send(src, dst, bytes int, deliver func())
	// Attach returns a peripheral (I/O or service node) hanging one
	// dedicated link off the given host compute node.
	Attach(host int) Attachment
	// SetDegrader installs a latency degrader (see internal/faults).
	// Call it before the simulation starts.
	SetDegrader(Degrader)
	// Delivered and BytesSent report traffic counters.
	Delivered() int64
	BytesSent() int64
	// LinkClasses returns the number of link classes the topology
	// exposes for fault injection; ClassName names one.
	LinkClasses() int
	ClassName(class int) string
}

// Attachment is a peripheral node (I/O node or service node) attached
// to one compute node by a dedicated link, as on the iPSC/860.
type Attachment interface {
	// Host returns the compute node the peripheral is attached to.
	Host() int
	// LatencyFrom returns the latency of a message from compute node
	// src to this peripheral: the network path to the host plus one
	// peripheral hop.
	LatencyFrom(src, bytes int) sim.Time
	// SendTo schedules delivery of a message from compute node src to
	// the peripheral; SendFrom the reverse (same path, same cost).
	SendTo(src, bytes int, deliver func())
	SendFrom(dst, bytes int, deliver func())
}

// Degrader adjusts message latencies (see internal/faults). A nil
// Degrader means healthy. Topologies call HopCost once per link class
// a message crosses, then Message exactly once per message, so
// degradation statistics and the jitter stream are consumed in a
// deterministic order.
type Degrader interface {
	// HopCost returns the possibly degraded cost of hops traversals
	// of links in the given class; perHop is the healthy per-hop unit.
	HopCost(class, hops int, perHop sim.Time) sim.Time
	// Message finishes one message: base is the software cost plus
	// every hop cost, transfer the healthy bandwidth cost. The
	// implementation may inflate either and add jitter.
	Message(base, transfer sim.Time) sim.Time
}

// Factory builds an interconnect for a machine with the given compute
// node count. Factories panic on configurations that cannot describe
// the machine (as hardware model constructors do throughout);
// name resolution errors are caught earlier via Resolve.
type Factory func(k *sim.Kernel, nodes int, cfg Config) Interconnect

type entry struct {
	factory Factory
	// classes reports the topology's link-class count for a
	// configuration without building a network.
	classes func(cfg Config) int
}

var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

// Register adds a topology model to the registry. It panics on a
// duplicate or empty name; call it from init.
func Register(name string, classes func(Config) int, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("topo: register %q: names must be non-empty lowercase", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("topo: duplicate registration %q", name))
	}
	if classes == nil || f == nil {
		panic(fmt.Sprintf("topo: register %q: nil classes or factory", name))
	}
	registry[name] = entry{factory: f, classes: classes}
}

// Names returns the registered topology names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resolve normalizes a topology name (case-insensitive, "" means
// "hypercube") and reports whether it is registered.
func Resolve(name string) (string, error) {
	kind := strings.ToLower(name)
	if kind == "" {
		kind = "hypercube"
	}
	regMu.RLock()
	_, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("topo: unknown topology %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return kind, nil
}

func lookup(cfg Config) entry {
	kind, err := Resolve(cfg.Kind)
	if err != nil {
		panic(err.Error())
	}
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[kind]
}

// New builds the interconnect cfg describes for a machine with the
// given compute-node count. The kind must be registered: callers
// validate names through Resolve at configuration time.
func New(k *sim.Kernel, nodes int, cfg Config) Interconnect {
	return lookup(cfg).factory(k, nodes, cfg)
}

// LinkClasses reports the link-class count of the topology cfg
// describes, without building a network (fault validation needs it
// before any kernel exists).
func LinkClasses(cfg Config) int {
	return lookup(cfg).classes(cfg)
}
