package topo_test

import (
	"strings"
	"testing"

	"repro/internal/hypercube" // registers "hypercube"
	"repro/internal/sim"
	"repro/internal/topo"
)

// testConfig returns interconnect parameters with round numbers: 4 KB
// packets at 4.096 GB/s make a one-packet transfer exactly 1 us, so
// expected latencies are exact integers.
func testConfig(kind string) topo.Config {
	return topo.Config{
		Kind:           kind,
		Startup:        20 * sim.Microsecond,
		PerHop:         10 * sim.Microsecond,
		PerPacket:      5 * sim.Microsecond,
		PacketBytes:    4096,
		BytesPerSecond: 4.096e9,
	}
}

func TestRegistry(t *testing.T) {
	names := topo.Names()
	for _, want := range []string{"fattree", "hypercube", "mesh"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("registry %v missing %q", names, want)
		}
	}
	if kind, err := topo.Resolve(""); err != nil || kind != "hypercube" {
		t.Fatalf(`Resolve("") = %q, %v`, kind, err)
	}
	if kind, err := topo.Resolve("MESH"); err != nil || kind != "mesh" {
		t.Fatalf(`Resolve("MESH") = %q, %v`, kind, err)
	}
	if _, err := topo.Resolve("torus"); err == nil || !strings.Contains(err.Error(), "mesh") {
		t.Fatalf("unknown topology error %v should list the known names", err)
	}
}

func TestHypercubeRegistered(t *testing.T) {
	cfg := hypercube.IPSC860()
	n := topo.New(sim.New(), 128, cfg)
	if n.Nodes() != 128 || n.LinkClasses() != 7 {
		t.Fatalf("nodes=%d classes=%d", n.Nodes(), n.LinkClasses())
	}
	if got := n.ClassName(3); got != "dim3" {
		t.Fatalf("ClassName(3) = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("node count disagreeing with the cube dimension did not panic")
		}
	}()
	topo.New(sim.New(), 64, cfg)
}

func TestMeshLatency(t *testing.T) {
	cfg := testConfig("mesh")
	// 32 nodes -> 8x4 grid, row-major.
	m := topo.New(sim.New(), 32, cfg)
	if m.LinkClasses() != 2 || m.ClassName(0) != "x" || m.ClassName(1) != "y" {
		t.Fatalf("classes=%d names=%q,%q", m.LinkClasses(), m.ClassName(0), m.ClassName(1))
	}
	// Zero-byte message to self: software cost only (one minimum
	// packet, no hops, no transfer).
	if got, want := m.Latency(0, 0, 0), cfg.Startup+cfg.PerPacket; got != want {
		t.Fatalf("self latency %v, want %v", got, want)
	}
	// Node 9 sits at (x=1, y=1): 2 hops. One 4096-byte packet is
	// exactly 1 us of transfer.
	want := cfg.Startup + cfg.PerPacket + 2*cfg.PerHop + 1*sim.Microsecond
	if got := m.Latency(0, 9, 4096); got != want {
		t.Fatalf("Latency(0,9) = %v, want %v", got, want)
	}
	// XY routing distance: the far corner (x=7, y=3) is 10 hops out.
	if got, want := m.Latency(0, 31, 0)-m.Latency(0, 0, 0), 10*cfg.PerHop; got != want {
		t.Fatalf("corner hop cost %v, want %v", got, want)
	}
	// Symmetric routes.
	if m.Latency(3, 28, 4096) != m.Latency(28, 3, 4096) {
		t.Fatal("mesh latency not symmetric")
	}
	// A peripheral attachment adds one class-less hop.
	att := m.Attach(9)
	if att.Host() != 9 {
		t.Fatalf("Host() = %d", att.Host())
	}
	if got, want := att.LatencyFrom(0, 4096), m.Latency(0, 9, 4096)+cfg.PerHop; got != want {
		t.Fatalf("peripheral latency %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two mesh did not panic")
		}
	}()
	topo.New(sim.New(), 24, cfg)
}

func TestFattreeLatency(t *testing.T) {
	cfg := testConfig("fattree")
	cfg.SpineBytesPerSecond = 2.048e9 // spine transfer: 2 us per packet
	f := topo.New(sim.New(), 64, cfg) // 4 pods of 16
	if f.LinkClasses() != 2 || f.ClassName(0) != "edge" || f.ClassName(1) != "spine" {
		t.Fatalf("classes=%d names=%q,%q", f.LinkClasses(), f.ClassName(0), f.ClassName(1))
	}
	software := cfg.Startup + cfg.PerPacket
	// In-pod: 2 edge hops, edge bandwidth -- and distance-independent.
	inPod := software + 2*cfg.PerHop + 1*sim.Microsecond
	if got := f.Latency(0, 1, 4096); got != inPod {
		t.Fatalf("in-pod latency %v, want %v", got, inPod)
	}
	if f.Latency(0, 15, 4096) != inPod {
		t.Fatal("in-pod latency depends on distance")
	}
	// Cross-pod: 2 edge + 2 spine hops at the slower spine tier -- and
	// equally distance-independent.
	crossPod := software + 4*cfg.PerHop + 2*sim.Microsecond
	if got := f.Latency(0, 16, 4096); got != crossPod {
		t.Fatalf("cross-pod latency %v, want %v", got, crossPod)
	}
	if f.Latency(0, 63, 4096) != crossPod {
		t.Fatal("cross-pod latency depends on distance")
	}
	// Zero spine bandwidth means "same as edge"; a faster spine never
	// shows because the transfer pays the slowest tier on the path.
	for _, spine := range []float64{0, 1e12} {
		cfg := testConfig("fattree")
		cfg.SpineBytesPerSecond = spine
		f := topo.New(sim.New(), 64, cfg)
		if got, want := f.Latency(0, 16, 4096), software+4*cfg.PerHop+1*sim.Microsecond; got != want {
			t.Fatalf("spine=%g: cross-pod latency %v, want %v", spine, got, want)
		}
	}
}

func TestSendCounters(t *testing.T) {
	for _, kind := range []string{"mesh", "fattree"} {
		k := sim.New()
		n := topo.New(k, 32, testConfig(kind))
		delivered := 0
		n.Send(0, 9, 4096, func() { delivered++ })
		att := n.Attach(3)
		att.SendTo(0, 100, func() { delivered++ })
		att.SendFrom(5, 100, func() { delivered++ })
		k.Run()
		if delivered != 3 || n.Delivered() != 3 {
			t.Fatalf("%s: delivered %d / counter %d", kind, delivered, n.Delivered())
		}
		if n.BytesSent() != 4096+200 {
			t.Fatalf("%s: bytesSent %d", kind, n.BytesSent())
		}
	}
}

// orderedDegrader records the call protocol topologies owe a
// topo.Degrader: HopCost once per crossed link class, then Message
// exactly once.
type orderedDegrader struct {
	classes []int
	base    sim.Time
	msgs    int
}

func (d *orderedDegrader) HopCost(class, hops int, perHop sim.Time) sim.Time {
	d.classes = append(d.classes, class)
	return sim.Time(hops) * perHop
}

func (d *orderedDegrader) Message(base, transfer sim.Time) sim.Time {
	d.msgs++
	d.base = base
	return base + transfer
}

func TestDegraderProtocol(t *testing.T) {
	cfg := testConfig("mesh")
	m := topo.New(sim.New(), 32, cfg)
	deg := &orderedDegrader{}
	m.SetDegrader(deg)
	// (0 -> 9) crosses one x link then one y link.
	healthy := cfg.Startup + cfg.PerPacket + 2*cfg.PerHop + 1*sim.Microsecond
	if got := m.Latency(0, 9, 4096); got != healthy {
		t.Fatalf("identity degrader changed latency: %v != %v", got, healthy)
	}
	if len(deg.classes) != 2 || deg.classes[0] != 0 || deg.classes[1] != 1 || deg.msgs != 1 {
		t.Fatalf("degrader protocol: classes %v, %d messages", deg.classes, deg.msgs)
	}
	if want := cfg.Startup + cfg.PerPacket + 2*cfg.PerHop; deg.base != want {
		t.Fatalf("Message base %v, want software+hops %v", deg.base, want)
	}
	// Straight-line routes touch only the axis they use.
	deg.classes = nil
	m.Latency(0, 7, 0)  // same row: x only
	m.Latency(0, 24, 0) // same column: y only
	if len(deg.classes) != 2 || deg.classes[0] != 0 || deg.classes[1] != 1 {
		t.Fatalf("straight-line classes %v", deg.classes)
	}
}
