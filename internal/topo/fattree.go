package topo

import (
	"fmt"

	"repro/internal/sim"
)

// fattreePod is the number of nodes under one edge switch. Machines
// smaller than a pod collapse to a single switch.
const fattreePod = 16

func init() {
	Register("fattree",
		func(Config) int { return 2 }, // edge and spine levels
		func(k *sim.Kernel, nodes int, cfg Config) Interconnect {
			return newFattree(k, nodes, cfg)
		})
}

// fattree is a two-level folded Clos: nodes hang off edge switches in
// pods of 16, and every edge switch uplinks to a spine layer. Hop
// count is distance-independent -- 2 within a pod (up to the edge
// switch and down), 4 across pods (edge, spine, edge) -- which is the
// property that separates a modern cluster fabric from the hypercube's
// distance-sensitive routing. A spine crossing pays the slower of the
// edge and spine bandwidth tiers (Config.SpineBytesPerSecond).
//
// Link classes: 0 = edge links (node <-> edge switch), 1 = spine
// links (edge switch <-> spine).
type fattree struct {
	base
	spineBW float64
}

func newFattree(k *sim.Kernel, nodes int, cfg Config) *fattree {
	checkCommon("fattree", cfg)
	if nodes <= 0 {
		panic(fmt.Sprintf("fattree: node count %d not positive", nodes))
	}
	spine := cfg.SpineBytesPerSecond
	if spine == 0 {
		spine = cfg.BytesPerSecond
	}
	if spine < 0 {
		panic("fattree: spine bandwidth must be non-negative")
	}
	if spine > cfg.BytesPerSecond {
		// The transfer pays the path's slowest tier; a faster spine
		// never shows.
		spine = cfg.BytesPerSecond
	}
	return &fattree{base: base{k: k, cfg: cfg, nodes: nodes}, spineBW: spine}
}

func (f *fattree) LinkClasses() int { return 2 }

func (f *fattree) ClassName(class int) string {
	if class == 0 {
		return "edge"
	}
	return "spine"
}

// latency models one message. src == dst stays on the node (software
// cost only, as on the hypercube); a peripheral hop is class-less,
// exactly like the cube's peripheral links.
func (f *fattree) latency(src, dst, extraHops, bytes int) sim.Time {
	software := f.software(bytes)
	crossing := src/fattreePod != dst/fattreePod
	bw := f.cfg.BytesPerSecond
	if crossing {
		bw = f.spineBW
	}
	transfer := transferAt(bytes, bw)
	edgeHops, spineHops := 0, 0
	if src != dst {
		edgeHops = 2
		if crossing {
			spineHops = 2
		}
	}
	if f.deg == nil {
		return software + sim.Time(edgeHops+spineHops+extraHops)*f.cfg.PerHop + transfer
	}
	t := software + sim.Time(extraHops)*f.cfg.PerHop
	if edgeHops > 0 {
		t += f.deg.HopCost(0, edgeHops, f.cfg.PerHop)
	}
	if spineHops > 0 {
		t += f.deg.HopCost(1, spineHops, f.cfg.PerHop)
	}
	return f.deg.Message(t, transfer)
}

func (f *fattree) Latency(src, dst, bytes int) sim.Time {
	f.validate(src)
	f.validate(dst)
	return f.latency(src, dst, 0, bytes)
}

func (f *fattree) Send(src, dst, bytes int, deliver func()) {
	f.ship(f.Latency(src, dst, bytes), bytes, deliver)
}

func (f *fattree) latencyFrom(src, host, bytes int) sim.Time {
	f.validate(src)
	return f.latency(src, host, 1, bytes)
}

func (f *fattree) Attach(host int) Attachment {
	f.validate(host)
	return periph{n: f, host: host}
}
