// The sweep engine: the paper's real use case is not one study but
// many -- seed replications for confidence intervals, scale and
// workload-mixture sweeps, machine-variant comparisons -- and each
// study is an independent, deterministic simulation. RunSweep fans a
// deterministic list of study specs across a pool of worker
// goroutines, one reusable Arena per worker, and merges the outcomes
// in spec order, so the merged output is byte-identical regardless of
// worker count (TestRunSweepWorkerCountInvariance pins this).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// StudySpec is one study in a sweep: a label for reports plus the
// study configuration.
type StudySpec struct {
	Label  string
	Config Config
}

// SweepConfig selects the specs to run and how to run them.
type SweepConfig struct {
	Specs []StudySpec
	// Workers is the worker-goroutine count; <= 0 uses GOMAXPROCS.
	// The merged result is identical for every worker count.
	Workers int
	// KeepEvents copies each study's postprocessed event stream into
	// its outcome (for feeding cache experiments); costs one event
	// slice per study.
	KeepEvents bool
	// KeepReports retains each study's full Report instead of
	// recycling its statistics storage into the worker arena.
	KeepReports bool
	// PostStudy, when non-nil, runs on the worker goroutine right
	// after study i completes, before its arena storage is recycled.
	// It must not retain r or anything reachable from it (r.Events
	// and r.Report are arena-backed) and must write only to
	// index-i-owned state; anything derived deterministically from
	// one study keeps the sweep's worker-count invariance. This is
	// how the scenario engine runs per-study cache experiments
	// without holding every study's event stream in memory at once.
	PostStudy func(i int, r *Result)
}

// StudyOutcome is one study's results within a sweep.
type StudyOutcome struct {
	Spec StudySpec
	// Done is false when the sweep was cancelled before this spec ran.
	Done bool

	ReportText string           // Report.Format(), always retained
	Report     *analysis.Report // non-nil only with KeepReports
	Events     []trace.Event    // non-nil only with KeepEvents
	Header     trace.Header

	Horizon       sim.Time
	EventCount    int
	TraceRecords  int64
	TraceMessages int64
	DiskOps       int64
}

// SweepResult is a sweep's merged output, in spec order.
type SweepResult struct {
	Outcomes []StudyOutcome
	Workers  int
	// Elapsed is wall time; informational only and never part of
	// Format's deterministic output.
	Elapsed time.Duration
	// Err records the context error when the sweep was cancelled.
	Err error
}

// RunSweep runs every spec across a pool of workers and merges the
// outcomes in spec order. Each worker owns one Arena, so its second
// and later studies reuse the first's storage. Cancelling the context
// stops workers between studies; already-finished outcomes are kept
// and unrun specs are left with Done == false.
func RunSweep(ctx context.Context, cfg SweepConfig) *SweepResult {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(cfg.Specs)
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	res := &SweepResult{Outcomes: make([]StudyOutcome, n), Workers: workers}
	for i := range res.Outcomes {
		res.Outcomes[i].Spec = cfg.Specs[i]
	}
	if n == 0 {
		return res
	}
	start := time.Now()
	arenas := make([]*Arena, workers)
	parallelEach(ctx, n, workers, func(w, i int) {
		if arenas[w] == nil {
			arenas[w] = NewArena()
		}
		res.Outcomes[i] = runSpec(arenas[w], cfg, cfg.Specs[i], i)
	})
	res.Elapsed = time.Since(start)
	res.Err = ctx.Err()
	return res
}

// runSpec runs one study on the worker's arena, copies out what the
// sweep retains, and recycles the rest.
func runSpec(a *Arena, sc SweepConfig, spec StudySpec, i int) StudyOutcome {
	r := a.RunStudy(spec.Config)
	if sc.PostStudy != nil {
		sc.PostStudy(i, r)
	}
	out := StudyOutcome{
		Spec:          spec,
		Done:          true,
		ReportText:    r.Report.Format(),
		Header:        r.Header,
		Horizon:       r.Horizon,
		EventCount:    len(r.Events),
		TraceRecords:  r.TraceRecords,
		TraceMessages: r.TraceMessages,
		DiskOps:       r.DiskOps,
	}
	if sc.KeepEvents {
		out.Events = append([]trace.Event(nil), r.Events...)
	}
	if sc.KeepReports {
		out.Report = r.Report
		r.Report = nil // keep Recycle from reclaiming it
	}
	a.Recycle(r)
	return out
}

// CrossSpecs builds the deterministic spec list for a sweep over the
// cross product seed x scale x workload-variant x machine-variant,
// in that nesting order (seeds outermost). Empty seeds default to
// {42}, empty scales to {0.1}; nil workload and machine slices mean
// "calibrated default" and contribute no label component.
func CrossSpecs(seeds []uint64, scales []float64, workloads []*workload.Params, machines []*machine.Config) []StudySpec {
	if len(seeds) == 0 {
		seeds = []uint64{42}
	}
	if len(scales) == 0 {
		scales = []float64{0.1}
	}
	wls := []*workload.Params{nil}
	if len(workloads) > 0 {
		wls = workloads
	}
	mcs := []*machine.Config{nil}
	if len(machines) > 0 {
		mcs = machines
	}
	specs := make([]StudySpec, 0, len(seeds)*len(scales)*len(wls)*len(mcs))
	for _, seed := range seeds {
		for _, scale := range scales {
			for wi, wl := range wls {
				for mi, mc := range mcs {
					cfg := Config{Seed: seed, Scale: scale, Workload: wl, Machine: mc}.normalized()
					// Label the clamped scale, so a sub-MinScale input
					// is visibly the study that actually runs.
					label := fmt.Sprintf("seed=%d scale=%g", seed, cfg.Scale)
					if len(workloads) > 0 {
						label += fmt.Sprintf(" wl=%d", wi)
					}
					if len(machines) > 0 {
						label += fmt.Sprintf(" mc=%d", mi)
					}
					specs = append(specs, StudySpec{Label: label, Config: cfg})
				}
			}
		}
	}
	return specs
}

// Format renders the sweep's merged output: one row per completed
// study plus min/median/max aggregate columns over the headline
// per-study metrics. The text depends only on the outcomes, never on
// timing or worker count.
func (r *SweepResult) Format() string {
	var b strings.Builder
	done := 0
	for i := range r.Outcomes {
		if r.Outcomes[i].Done {
			done++
		}
	}
	fmt.Fprintf(&b, "Sweep: %d studies\n", len(r.Outcomes))
	if done < len(r.Outcomes) {
		fmt.Fprintf(&b, "  (cancelled: only %d completed)\n", done)
	}
	fmt.Fprintf(&b, "%-28s  %10s  %10s  %9s  %10s  %10s\n",
		"study", "events", "records", "messages", "disk ops", "horizon(h)")
	var events, records, messages, diskOps, horizon []float64
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if !o.Done {
			continue
		}
		label := o.Spec.Label
		if label == "" {
			label = fmt.Sprintf("spec %d", i)
		}
		h := o.Horizon.ToSeconds() / 3600
		fmt.Fprintf(&b, "%-28s  %10d  %10d  %9d  %10d  %10.2f\n",
			label, o.EventCount, o.TraceRecords, o.TraceMessages, o.DiskOps, h)
		events = append(events, float64(o.EventCount))
		records = append(records, float64(o.TraceRecords))
		messages = append(messages, float64(o.TraceMessages))
		diskOps = append(diskOps, float64(o.DiskOps))
		horizon = append(horizon, h)
	}
	if done > 0 {
		fmt.Fprintf(&b, "\nAggregate over %d studies (min / median / max):\n", done)
		aggRow(&b, "events", events, "%.0f")
		aggRow(&b, "trace records", records, "%.0f")
		aggRow(&b, "trace messages", messages, "%.0f")
		aggRow(&b, "disk ops", diskOps, "%.0f")
		aggRow(&b, "horizon hours", horizon, "%.2f")
	}
	return b.String()
}

// aggRow prints one min/median/max aggregate line.
func aggRow(b *strings.Builder, name string, vals []float64, numFmt string) {
	mn, md, mx := minMedianMax(vals)
	f := numFmt + " / " + numFmt + " / " + numFmt + "\n"
	fmt.Fprintf(b, "  %-16s "+f, name, mn, md, mx)
}

// minMedianMax returns the order statistics of vals (which it sorts).
// The median of an even count is the mean of the two middle values.
func minMedianMax(vals []float64) (mn, md, mx float64) {
	if len(vals) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(vals)
	n := len(vals)
	md = vals[n/2]
	if n%2 == 0 {
		md = (vals[n/2-1] + vals[n/2]) / 2
	}
	return vals[0], md, vals[n-1]
}

// parallelEach runs fn(worker, i) for i in 0..n-1 across
// min(workers, n) goroutines (GOMAXPROCS when workers <= 0). Indexes
// are claimed from a shared atomic counter, each exactly once; the
// worker id lets fn keep per-worker state (e.g. one Arena each). fn
// must write only to its own index's state. A non-nil cancelled
// context stops workers between items, leaving later indexes unrun.
func parallelEach(ctx context.Context, n, workers int, fn func(worker, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || (ctx != nil && ctx.Err() != nil) {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
