package core

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStudyGoldenReport pins the seed-42 report against a committed
// golden file, so a deterministic-but-wrong change to event ordering,
// block allocation, or a statistic cannot slip past TestStudyDeterminism
// (which only compares a run against itself). Regenerate after an
// intentional behavior or format change with:
//
//	UPDATE_GOLDEN=1 go test -run TestStudyGoldenReport ./internal/core/
func TestStudyGoldenReport(t *testing.T) {
	path := filepath.Join("testdata", "report_seed42_scale002.golden")
	got := RunStudy(DefaultConfig(42, 0.02)).Report.Format()

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("seed-42 report diverged from %s; if the change is intentional, regenerate with UPDATE_GOLDEN=1.\ngot %d bytes, want %d bytes", path, len(got), len(want))
	}
}
