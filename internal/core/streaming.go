// The streaming study pipeline. RunStudy materializes the whole trace
// -- every collected block, the flattened sort scratch, and the merged
// event stream -- before analysis starts, which caps study scale at
// available RAM. RunStudyStreaming reproduces the CHARISMA
// instrumentation's actual shape instead: the collector spills each
// block to a file-backed sink the moment it arrives (recycling the
// block's buffer), and analysis then streams the spilled trace back
// through a per-node k-way merge into the incremental analyzer. Peak
// memory is O(per-node trace buffers + analyzer state) plus the
// ~40 B/block spill index (~1% of the encoded trace) -- event storage
// no longer grows with trace length -- and the resulting Report is
// byte-identical to the batch path's
// (TestStreamingReportByteIdentical pins this).
package core

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// StreamSink is the spill storage a streaming study writes its trace
// through: sequential writes while the simulation runs, random-access
// reads for the post-run merge. *os.File implements it; tests use a
// small in-memory buffer.
type StreamSink interface {
	io.Writer
	io.ReaderAt
}

// StreamResult is everything a streaming study produces. Unlike
// Result it holds no trace and no event stream -- the trace lives in
// the sink, re-readable with trace.NewReader/OpenReader.
type StreamResult struct {
	Header  trace.Header
	Report  *analysis.Report
	Horizon sim.Time

	EventCount  int64 // records in the spilled trace
	TraceBlocks int64 // blocks spilled through the sink
	TraceBytes  int64 // encoded trace size in the sink

	// Instrumentation-side statistics (Section 3), as in Result.
	TraceRecords  int64
	TraceMessages int64
	DiskOps       int64
}

// RunStudyStreaming runs one study end to end with the trace spilled
// through sink instead of held in memory: generate the workload,
// simulate the machine while streaming every collected block into
// sink, then stream the spilled trace back through drift correction
// and the incremental analyzer. The report is byte-identical to
// RunStudy's at the same config; peak event-storage memory is bounded
// by the per-node trace buffers rather than the trace length.
func RunStudyStreaming(cfg Config, sink StreamSink) (*StreamResult, error) {
	cfg = cfg.normalized()
	wp, mc := studyParams(cfg)

	// A private arena threads the trace-chunk pool through the node
	// buffers and the collector: every spilled block's storage is
	// immediately reused for the next, so the whole tracing layer
	// cycles through a handful of block-sized chunks.
	var arena machine.Arena
	k := sim.New()
	m := machine.NewWith(k, mc, &arena)

	w, err := trace.NewWriter(sink, m.TraceHeader())
	if err != nil {
		return nil, fmt.Errorf("core: starting trace spill: %w", err)
	}
	m.SetTraceSink(w)

	gen := workload.NewGenerator(wp)
	horizon := gen.Install(m)
	k.Run()
	m.FinishTracing()
	if err := m.TraceSinkErr(); err != nil {
		return nil, fmt.Errorf("core: spilling trace: %w", err)
	}
	if err := w.Flush(); err != nil {
		return nil, fmt.Errorf("core: spilling trace: %w", err)
	}

	// The simulation is over and the trace is on the sink; stream it
	// back. The writer's block index carries the byte offsets and the
	// double timestamps, so no scan pass is needed.
	rd, err := w.Reader(sink)
	if err != nil {
		return nil, fmt.Errorf("core: reopening spilled trace: %w", err)
	}
	o := analysis.NewOnline(m.TraceHeader())
	err = rd.Events(func(ev *trace.Event) error {
		o.Observe(ev)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: replaying spilled trace: %w", err)
	}
	report := o.Finish(horizon)
	report.Degradation = m.FaultReport()
	return &StreamResult{
		Header:        m.TraceHeader(),
		Report:        report,
		Horizon:       horizon,
		EventCount:    rd.EventCount(),
		TraceBlocks:   int64(rd.NumBlocks()),
		TraceBytes:    w.BytesWritten(),
		TraceRecords:  m.TraceRecords(),
		TraceMessages: m.TraceMessages(),
		DiskOps:       m.FS().TotalDiskOps(),
	}, nil
}
