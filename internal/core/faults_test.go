package core

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/scenario"
)

// TestFaultFreeByteIdentical pins the tentpole guarantee of fault
// injection: a Config carrying an explicit-but-empty faults block
// produces the same bytes as one with no faults at all, which in turn
// must match the committed seed-42 golden. Fault plumbing may only
// change output when a fault is actually configured.
func TestFaultFreeByteIdentical(t *testing.T) {
	cfg := DefaultConfig(42, 0.02)
	cfg.Faults = &faults.Config{} // present, empty: injects nothing
	got := RunStudy(cfg).Report.Format()

	want, err := os.ReadFile(filepath.Join("testdata", "report_seed42_scale002.golden"))
	if err != nil {
		t.Fatalf("reading seed-42 golden: %v", err)
	}
	if got != string(want) {
		t.Fatalf("empty faults config changed the seed-42 report (first diff near byte %d)",
			firstDiff(got, string(want)))
	}
	if strings.Contains(got, "Degradation") {
		t.Fatal("fault-free report grew a Degradation section")
	}

	// The scenario layer must treat an empty faults block exactly like
	// an absent one, including the run-store fingerprint.
	withBlock, err := scenario.Parse([]byte(`{"version":1,"name":"e","faults":{"version":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	without, err := scenario.Parse([]byte(`{"version":1,"name":"e"}`))
	if err != nil {
		t.Fatal(err)
	}
	if withBlock.FaultsConfig() != nil {
		t.Fatal("empty faults block resolved to a non-nil config")
	}
	a, b := ScenarioSpecs(withBlock), ScenarioSpecs(without)
	if SpecFingerprint("", a[0]) != SpecFingerprint("", b[0]) {
		t.Fatal("empty faults block changed the store fingerprint")
	}
}

// TestFaultDeterminism: the same faulted spec run twice produces
// byte-identical reports (including the Degradation section and its
// jitter statistics, which consume the dedicated fault RNG stream).
func TestFaultDeterminism(t *testing.T) {
	cfg := DefaultConfig(7, 0.01)
	cfg.Faults = &faults.Config{
		Windows: []faults.Window{
			{Node: 2, StartHours: 0, EndHours: 2, Slowdown: 3},
			{Node: 4, StartHours: 1, EndHours: 1.5, Outage: true},
		},
		Wear: faults.Wear{SeekMultiplier: 1.2, TransferMultiplier: 1.1, RampPerHour: 0.1},
		Net:  faults.Net{LatencyMultiplier: 1.5, BandwidthDivisor: 2, JitterMicros: 50, Links: []faults.Link{{Dim: 0, LatencyMultiplier: 2}}},
		Hot:  faults.Hot{Node: 0, Multiplier: 2},
	}
	first := RunStudy(cfg).Report.Format()
	second := RunStudy(cfg).Report.Format()
	if first != second {
		t.Fatalf("faulted study not reproducible (first diff near byte %d)", firstDiff(first, second))
	}
	if !strings.Contains(first, "Degradation (injected faults)") {
		t.Fatal("faulted report lacks the Degradation section")
	}
	if !strings.Contains(first, "jittered") {
		t.Fatal("network degradation line missing")
	}

	// Faults perturb service times only: the healthy study at the same
	// seed must differ (the fault did something) while keeping the
	// same workload (trace record counts are generator-driven).
	healthy := RunStudy(DefaultConfig(7, 0.01))
	faulted := RunStudy(cfg)
	if healthy.Report.Format() == first {
		t.Fatal("fault injection changed nothing")
	}
	if healthy.TraceRecords != faulted.TraceRecords {
		t.Fatalf("fault injection changed the workload itself: %d records healthy, %d faulted",
			healthy.TraceRecords, faulted.TraceRecords)
	}
}

// TestFaultWorkerInvariance: a faulted corpus scenario merges
// byte-identically at 1, 2, and 8 sweep workers (each worker builds
// its own machine and injector, so no fault state is shared). Also run
// under -race in CI.
func TestFaultWorkerInvariance(t *testing.T) {
	path := filepath.Join(corpusDir, "fig8-degraded.json")
	var baseline string
	for _, workers := range []int{1, 2, 8} {
		spec := loadCorpusSpec(t, path)
		spec.Workers = workers
		res, err := RunScenario(context.Background(), spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := res.Format()
		if workers == 1 {
			baseline = got
			if !strings.Contains(got, "seed=42") {
				t.Fatal("unexpected report shape")
			}
			continue
		}
		if got != baseline {
			t.Fatalf("faulted scenario differs between 1 and %d workers (first diff near byte %d)",
				workers, firstDiff(got, baseline))
		}
	}
}

// TestFaultStoreFingerprint: a faulted spec must never alias its
// healthy twin in a run store, and the faulted fingerprint must be
// stable across processes (the faults config renders by value, not by
// pointer identity).
func TestFaultStoreFingerprint(t *testing.T) {
	healthy := StudySpec{Label: "x", Config: DefaultConfig(1, 0.01)}
	fc := faults.Config{Hot: faults.Hot{Node: 1, Multiplier: 2}}
	faulted := healthy
	faulted.Config.Faults = &fc
	if SpecFingerprint("", healthy) == SpecFingerprint("", faulted) {
		t.Fatal("faulted spec fingerprints identically to the healthy spec")
	}
	fc2 := faults.Config{Hot: faults.Hot{Node: 1, Multiplier: 2}}
	faulted2 := healthy
	faulted2.Config.Faults = &fc2
	if SpecFingerprint("", faulted) != SpecFingerprint("", faulted2) {
		t.Fatal("equal faults configs fingerprint differently (pointer identity leaked)")
	}
}

// TestFaultStreamingMatchesBatch extends the streaming/batch
// equivalence contract to faulted studies: the bounded-memory pipeline
// must attach the identical Degradation section.
func TestFaultStreamingMatchesBatch(t *testing.T) {
	cfg := DefaultConfig(3, 0.01)
	cfg.Faults = &faults.Config{
		Windows: []faults.Window{{Node: 1, StartHours: 0, EndHours: 4, Slowdown: 2}},
	}
	batch := RunStudy(cfg).Report.Format()
	var sink memSink
	res, err := RunStudyStreaming(cfg, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.Format(); got != batch {
		t.Fatalf("streaming faulted report differs from batch (first diff near byte %d)",
			firstDiff(got, batch))
	}
}
