package core

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkSweepStoreClaim measures the work-stealing scheduler's
// per-spec overhead: one claim (O_EXCL lease create), one outcome
// commit (temp-file + rename), and one lease release. This is the
// store tax a spec pays on top of its simulation; at tens of
// microseconds against studies that run for seconds, claim overhead
// never governs sweep throughput.
func BenchmarkSweepStoreClaim(b *testing.B) {
	dir := b.TempDir()
	store := StoreConfig{Dir: dir}
	out := StudyOutcome{Spec: StudySpec{Label: "bench"}, Done: true, ReportText: "bench report"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp := fmt.Sprintf("%032x", i)
		claimed, _, err := tryClaim(dir, fp, "bench#0", time.Minute)
		if err != nil || !claimed {
			b.Fatalf("claim %d: claimed=%v err=%v", i, claimed, err)
		}
		if err := persistOutcome(store, fp, &out, "", ""); err != nil {
			b.Fatal(err)
		}
		releaseLease(dir, fp)
	}
}
