// Lowering declarative scenarios onto the sweep engine: RunScenario
// turns a validated scenario.Spec into the deterministic StudySpec
// list (seed x scale x workload-mix x machine-preset), runs it
// through RunSweep, and then runs the spec's trace-driven cache
// experiments on every study's event stream. Like the sweep itself,
// a scenario's formatted output is byte-identical at any worker
// count; the golden corpus under testdata/scenarios/ pins it.
package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cachesim"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ScenarioResult is a scenario's complete output.
type ScenarioResult struct {
	Spec  *scenario.Spec
	Sweep *SweepResult
	// CacheTexts holds the formatted cache-experiment sections, one
	// per outcome (empty when the spec runs no cache experiments or
	// the study did not run).
	CacheTexts []string
}

// RunScenario validates spec, lowers it onto the sweep engine, and
// runs any cache experiments on the per-study event streams. The
// returned result's Format output depends only on the spec, never on
// worker count or timing. On context cancellation the partial result
// is returned alongside the context error.
func RunScenario(ctx context.Context, spec *scenario.Spec) (*ScenarioResult, error) {
	if spec == nil {
		return nil, errors.New("core: nil scenario spec")
	}
	// Validate also (re)resolves registry names for hand-built specs.
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.IsReplay() {
		return runReplayScenario(ctx, spec)
	}
	plan := spec.CachePlan()
	specs := ScenarioSpecs(spec)
	// Cache experiments run inside the sweep workers, on each study's
	// arena-backed event stream right after the study finishes: only
	// the formatted text survives, so the scenario never holds more
	// event slices than it has workers. Each study's text depends on
	// its events alone, which keeps worker-count invariance.
	texts := make([]string, len(specs))
	var post func(i int, r *Result)
	if plan != nil {
		post = func(i int, r *Result) {
			texts[i] = cacheExperimentText(plan, r.Events, r.BlockBytes())
		}
	}
	sweep := RunSweep(ctx, SweepConfig{
		Specs:     specs,
		Workers:   spec.Workers,
		PostStudy: post,
	})
	return &ScenarioResult{Spec: spec, Sweep: sweep, CacheTexts: texts}, sweep.Err
}

// runReplayScenario lowers a replay scenario: each recorded trace
// file is one study -- streamed through the reader's drift-corrected
// merge, analyzed, and fed to the spec's cache experiments -- with
// the traces fanned across workers exactly like simulated studies.
// Every outcome depends only on its own trace file, so the formatted
// output is byte-identical at any worker count.
func runReplayScenario(ctx context.Context, spec *scenario.Spec) (*ScenarioResult, error) {
	plan := spec.CachePlan()
	paths := spec.ReplayTraces()
	workers := spec.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(paths) {
		workers = len(paths)
	}
	sweep := &SweepResult{Outcomes: make([]StudyOutcome, len(paths)), Workers: workers}
	texts := make([]string, len(paths))
	errs := make([]error, len(paths))
	for i, path := range paths {
		sweep.Outcomes[i].Spec = StudySpec{Label: replayLabel(path)}
	}
	start := time.Now()
	parallelEach(ctx, len(paths), workers, func(_, i int) {
		out, text, err := replayStudy(paths[i], plan)
		if err != nil {
			errs[i] = fmt.Errorf("core: replay %s: %w", sweep.Outcomes[i].Spec.Label, err)
			return
		}
		out.Spec = sweep.Outcomes[i].Spec
		sweep.Outcomes[i] = out
		texts[i] = text
	})
	sweep.Elapsed = time.Since(start)
	sweep.Err = ctx.Err()
	res := &ScenarioResult{Spec: spec, Sweep: sweep, CacheTexts: texts}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, sweep.Err
}

// replayLabel names a replay study after its trace file.
func replayLabel(path string) string {
	return "replay=" + strings.TrimSuffix(filepath.Base(path), ".trc")
}

// replayStudy runs one recorded trace through analysis and the cache
// experiments. The event stream is materialized once (the cache
// simulations make several passes over it); the raw blocks never are.
func replayStudy(path string, plan *scenario.ResolvedCache) (StudyOutcome, string, error) {
	rd, err := trace.OpenReader(path)
	if err != nil {
		return StudyOutcome{}, "", err
	}
	defer rd.Close()
	events, err := rd.AllEvents()
	if err != nil {
		return StudyOutcome{}, "", err
	}
	header := rd.Header()
	var horizon sim.Time
	if len(events) > 0 {
		horizon = sim.Time(events[len(events)-1].Time)
	}
	report := analysis.Analyze(header, events, horizon)
	out := StudyOutcome{
		Done:          true,
		ReportText:    report.Format(),
		Header:        header,
		Horizon:       horizon,
		EventCount:    len(events),
		TraceRecords:  int64(len(events)),
		TraceMessages: int64(rd.NumBlocks()),
	}
	text := ""
	if plan != nil {
		blockBytes := int64(header.BlockBytes)
		if blockBytes <= 0 {
			blockBytes = 4096 // tolerate foreign traces, as the analyzer does
		}
		text = cacheExperimentText(plan, events, blockBytes)
	}
	return out, text, nil
}

// ScenarioSpecs builds the deterministic study list a scenario runs:
// the cross product seed x scale x workload-mix x machine-preset, in
// that nesting order. Labels name the mix and machine axes only when
// the spec declares them, so an axis-free scenario's sweep rows read
// exactly like a plain CrossSpecs sweep.
func ScenarioSpecs(spec *scenario.Spec) []StudySpec {
	specs := make([]StudySpec, 0, spec.Studies())
	for _, seed := range spec.SeedList() {
		for _, scale := range spec.ScaleList() {
			for _, mix := range spec.MixList() {
				for _, mc := range spec.MachineList() {
					cfg := Config{Seed: seed, Scale: scale, Workload: mix.Params, Machine: mc.Config, Faults: spec.FaultsConfig()}.normalized()
					label := fmt.Sprintf("seed=%d scale=%g", seed, cfg.Scale)
					if spec.MultiMix() {
						label += " wl=" + mix.Name
					}
					if spec.MultiMachine() {
						label += " mc=" + mc.Name
					}
					specs = append(specs, StudySpec{Label: label, Config: cfg})
				}
			}
		}
	}
	return specs
}

// cacheExperimentText renders every cache experiment the plan selects
// for one study's event stream.
func cacheExperimentText(plan *scenario.ResolvedCache, events []trace.Event, blockBytes int64) string {
	var b strings.Builder
	if plan.Fig8Buffers != nil {
		b.WriteString(FormatFig8(RunFig8Buffers(events, blockBytes, plan.Fig8Buffers)))
	}
	if plan.Fig9 != nil {
		if b.Len() > 0 {
			b.WriteString("\n")
		}
		b.WriteString(formatFig9Grid(events, blockBytes, plan.Fig9))
	}
	if plan.Combined != nil {
		for _, p := range plan.Combined.Policies {
			if b.Len() > 0 {
				b.WriteString("\n")
			}
			res := cachesim.CombinedPolicy(events, blockBytes,
				plan.Combined.IONodes, plan.Combined.BuffersPerIONode, p)
			b.WriteString(FormatCombined(res))
		}
	}
	return b.String()
}

// FormatFig8 renders the Figure 8 experiment exactly as the cachesim
// command always has: a per-job hit-rate CDF per cache size.
func FormatFig8(results []Fig8Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: compute-node caching (read-only files, LRU, 4 KB buffers)")
	fmt.Fprintln(&b, "CDF of per-job hit rates:")
	for _, fr := range results {
		var cdf stats.CDF
		for _, j := range fr.Jobs {
			cdf.Add(100 * j.Rate())
		}
		fmt.Fprintf(&b, "\n  %d buffer(s), %d jobs:\n", fr.Buffers, len(fr.Jobs))
		fmt.Fprintf(&b, "  %10s  %8s\n", "hit rate", "CDF")
		for pct := 0; pct <= 100; pct += 10 {
			fmt.Fprintf(&b, "  %9d%%  %8.4f\n", pct, cdf.At(float64(pct)))
		}
	}
	return b.String()
}

// FormatFig9 renders the Figure 9 experiment exactly as the cachesim
// command always has: the LRU and FIFO hit-rate curves over the
// paper's buffer-count ladder at the trace's I/O-node count. Both
// curves fan their buffer ladders across cores via Fig9Sweep.
func FormatFig9(events []trace.Event, blockBytes int64, ioNodes int) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 9: I/O-node caching (4 KB buffers)")
	fmt.Fprintf(&b, "%10s  %10s  %10s\n", "buffers", "LRU", "FIFO")
	buffers := DefaultFig9Buffers()
	lru := Fig9Sweep(events, blockBytes, ioNodes, cachesim.LRU, buffers)
	fifo := Fig9Sweep(events, blockBytes, ioNodes, cachesim.FIFO, buffers)
	for i, n := range buffers {
		fmt.Fprintf(&b, "%10d  %9.1f%%  %9.1f%%\n", n, 100*lru[i].Rate(), 100*fifo[i].Rate())
	}
	return b.String()
}

// formatFig9Grid renders the I/O-node sweep as one table per I/O-node
// count: rows are buffer counts, columns are policies.
func formatFig9Grid(events []trace.Event, blockBytes int64, plan *scenario.ResolvedFig9) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 9: I/O-node caching (4 KB buffers)")
	for _, ioNodes := range plan.IONodes {
		fmt.Fprintf(&b, "\n  %d I/O node(s):\n", ioNodes)
		fmt.Fprintf(&b, "  %10s", "buffers")
		for _, p := range plan.Policies {
			fmt.Fprintf(&b, "  %10s", p)
		}
		fmt.Fprintln(&b)
		// One Fig9Sweep per policy: each fans its buffer ladder across
		// cores; rows are then assembled in buffer order.
		curves := make([][]cachesim.IONodeResult, len(plan.Policies))
		for pi, p := range plan.Policies {
			curves[pi] = Fig9Sweep(events, blockBytes, ioNodes, p, plan.Buffers)
		}
		for bi, buffers := range plan.Buffers {
			fmt.Fprintf(&b, "  %10d", buffers)
			for pi := range plan.Policies {
				fmt.Fprintf(&b, "  %9.1f%%", 100*curves[pi][bi].Rate())
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// FormatCombined renders the Section 4.8 combined experiment. The
// configuration in the header comes from the result itself, so it
// always describes the simulation that actually ran.
func FormatCombined(res cachesim.CombinedResult) string {
	var b strings.Builder
	ioNodes := res.IONodeAlone.IONodes
	buffersPerIONode := 0
	if ioNodes > 0 {
		buffersPerIONode = res.IONodeAlone.TotalBuffers / ioNodes
	}
	fmt.Fprintln(&b, "Combined caches (Section 4.8): one 4 KB buffer per compute node")
	fmt.Fprintf(&b, "in front of %d I/O nodes with %d %s buffers each\n",
		ioNodes, buffersPerIONode, res.IONodeAlone.Policy)
	fmt.Fprintf(&b, "  I/O-node hit rate, no compute caches:   %.1f%%\n", 100*res.IONodeAlone.Rate())
	fmt.Fprintf(&b, "  I/O-node hit rate, with compute caches: %.1f%%\n", 100*res.IONodeFiltered.Rate())
	fmt.Fprintf(&b, "  reduction: %.1f points (the paper measured ~3)\n",
		100*(res.IONodeAlone.Rate()-res.IONodeFiltered.Rate()))
	fmt.Fprintf(&b, "  requests absorbed at compute nodes: %d\n", res.ComputeHits)
	return b.String()
}

// Format renders the scenario's complete deterministic report: the
// header, the sweep table, and one cache-experiment section per
// study. The text depends only on the spec and the outcomes.
func (r *ScenarioResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario: %s (spec v%d, %d studies)\n", r.Spec.Name, r.Spec.Version, len(r.Sweep.Outcomes))
	if r.Spec.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Spec.Description)
	}
	b.WriteString("\n")
	b.WriteString(r.Sweep.Format())
	for i := range r.Sweep.Outcomes {
		if r.CacheTexts[i] == "" {
			continue
		}
		o := &r.Sweep.Outcomes[i]
		label := o.Spec.Label
		if label == "" {
			label = fmt.Sprintf("spec %d", i)
		}
		fmt.Fprintf(&b, "\n=== cache experiments: %s ===\n\n", label)
		b.WriteString(r.CacheTexts[i])
	}
	return b.String()
}
