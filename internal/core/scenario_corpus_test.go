package core

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// update regenerates the scenario golden corpus:
//
//	go test -run TestScenarioCorpusGolden -update ./internal/core/
var update = flag.Bool("update", false, "rewrite testdata/scenarios golden reports")

// corpusDir is the shared scenario corpus at the repository root.
const corpusDir = "../../testdata/scenarios"

// corpusPaths returns every scenario spec in the corpus, sorted.
func corpusPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 8 {
		t.Fatalf("scenario corpus has only %d specs, want >= 8", len(paths))
	}
	sort.Strings(paths)
	return paths
}

// loadCorpusSpec parses one corpus spec and enforces the corpus
// contract: every scenario must run at scale <= 1% so the whole
// suite stays test-fast.
func loadCorpusSpec(t *testing.T, path string) *scenario.Spec {
	t.Helper()
	spec, err := scenario.Load(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	for _, sc := range spec.ScaleList() {
		if sc > MinScale {
			t.Fatalf("%s: scale %v exceeds the corpus bound %v", path, sc, MinScale)
		}
	}
	if base := strings.TrimSuffix(filepath.Base(path), ".json"); spec.Name != base {
		t.Fatalf("%s: spec name %q differs from file name %q", path, spec.Name, base)
	}
	return spec
}

// TestScenarioCorpusGolden runs every corpus scenario and
// byte-compares its formatted report against the checked-in golden.
// This is the conformance suite: any behavioral drift anywhere in
// the pipeline -- kernel, CFS, tracing, analysis, sweep merging,
// cache policies, formatting -- shows up as a corpus diff.
// Regenerate after an intentional change with -update.
func TestScenarioCorpusGolden(t *testing.T) {
	for _, path := range corpusPaths(t) {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			spec := loadCorpusSpec(t, path)
			res, err := RunScenario(context.Background(), spec)
			if err != nil {
				t.Fatalf("running %s: %v", name, err)
			}
			got := res.Format()
			goldenPath := filepath.Join(corpusDir, "golden", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Fatalf("scenario %s diverged from its golden report; if intentional, regenerate with -update.\ngot %d bytes, want %d bytes\nfirst difference near byte %d",
					name, len(got), len(want), firstDiff(got, string(want)))
			}
		})
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestScenarioCorpusWorkerInvariance extends the sweep engine's
// worker-count contract to every corpus scenario: the full formatted
// report (sweep rows, aggregates, and every cache experiment) must be
// byte-identical at 1, 2, and 8 workers.
func TestScenarioCorpusWorkerInvariance(t *testing.T) {
	for _, path := range corpusPaths(t) {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var baseline string
			for _, workers := range []int{1, 2, 8} {
				spec := loadCorpusSpec(t, path)
				spec.Workers = workers
				res, err := RunScenario(context.Background(), spec)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				got := res.Format()
				if workers == 1 {
					baseline = got
					continue
				}
				if got != baseline {
					t.Fatalf("scenario %s output differs between 1 and %d workers (first diff near byte %d)",
						name, workers, firstDiff(got, baseline))
				}
			}
		})
	}
}

// TestScenarioCorpusRegistryLeaseSplit extends the lease store's
// split contract to the registry corpus scenarios: lowering a
// non-default machine axis (fat-tree + NVMe cluster2026, the nas
// preset re-wired onto a mesh) onto the store and running it as two
// static shards must reconstruct the checked-in golden byte for
// byte. This pins that the registry overrides fold into the study
// fingerprints consistently across processes -- a shard that hashed
// the axis differently would refuse the manifest or run the wrong
// slice.
func TestScenarioCorpusRegistryLeaseSplit(t *testing.T) {
	for _, name := range []string{"fig8-cluster2026", "mesh-nvme"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(corpusDir, name+".json")
			dir := t.TempDir()
			var res *ScenarioResult
			for shard := 0; shard < 2; shard++ {
				run, err := RunScenarioStore(context.Background(), loadCorpusSpec(t, path),
					StoreConfig{Dir: dir, Shard: shard, NumShards: 2})
				if err != nil {
					t.Fatalf("shard %d: %v", shard, err)
				}
				if run.Result != nil {
					res = run.Result
				}
			}
			if res == nil {
				t.Fatal("sharded run never produced a merged result")
			}
			want, err := os.ReadFile(filepath.Join(corpusDir, "golden", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Format(); got != string(want) {
				t.Fatalf("sharded %s differs from its golden (first diff near byte %d)",
					name, firstDiff(got, string(want)))
			}
		})
	}
}

// TestScenarioFig8ByteIdentical is the acceptance pin: the fig8
// corpus scenario must reproduce the pre-scenario Figure 8 pipeline
// (RunStudy + RunFig8 + the shared formatter) byte for byte, and its
// sweep row must match a plain hand-built sweep of the same config.
func TestScenarioFig8ByteIdentical(t *testing.T) {
	spec := loadCorpusSpec(t, filepath.Join(corpusDir, "fig8.json"))
	res, err := RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Format()

	study := RunStudy(DefaultConfig(42, 0.01))
	fig8 := FormatFig8(RunFig8(study.Events, study.BlockBytes()))
	if !strings.Contains(got, fig8) {
		t.Fatalf("scenario fig8 report does not contain the legacy Figure 8 output byte-for-byte.\nlegacy:\n%s\nscenario:\n%s", fig8, got)
	}

	legacySweep := RunSweep(context.Background(), SweepConfig{
		Specs: CrossSpecs([]uint64{42}, []float64{0.01}, nil, nil),
	})
	if !strings.Contains(got, legacySweep.Format()) {
		t.Fatal("scenario fig8 sweep section differs from the equivalent CrossSpecs sweep")
	}
}

// TestScenarioSpecsLowering pins the lowering order and labels: seeds
// outermost, then scales, mixes, machines; axis labels only for axes
// the spec declares.
func TestScenarioSpecsLowering(t *testing.T) {
	spec, err := scenario.Parse([]byte(`{
		"version": 1, "name": "lowering",
		"seeds": [1, 2], "scales": [0.01],
		"machines": ["nas", "mini"],
		"workloads": [{"name": "a", "base": "calibrated"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	specs := ScenarioSpecs(spec)
	want := []string{
		"seed=1 scale=0.01 wl=a mc=nas",
		"seed=1 scale=0.01 wl=a mc=mini",
		"seed=2 scale=0.01 wl=a mc=nas",
		"seed=2 scale=0.01 wl=a mc=mini",
	}
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i].Label != want[i] {
			t.Fatalf("spec %d label %q, want %q", i, specs[i].Label, want[i])
		}
	}
	if specs[1].Config.Machine == nil || specs[1].Config.Machine.ComputeNodes != 32 {
		t.Fatal("mini machine config not threaded through lowering")
	}
	if specs[0].Config.Machine != nil {
		t.Fatal("nas preset should lower to the nil default machine")
	}

	// An axis-free spec gets plain CrossSpecs-style labels.
	plain, err := scenario.Parse([]byte(`{"version": 1, "name": "plain", "seeds": [42]}`))
	if err != nil {
		t.Fatal(err)
	}
	ps := ScenarioSpecs(plain)
	if len(ps) != 1 || ps[0].Label != "seed=42 scale=0.01" {
		t.Fatalf("axis-free labels wrong: %+v", ps)
	}
}

// TestRunScenarioSeedStamping: one mix served every seed, so the
// studies must actually differ by seed (the engine stamps Config.Seed
// onto the shared workload params).
func TestRunScenarioSeedStamping(t *testing.T) {
	spec, err := scenario.Parse([]byte(`{
		"version": 1, "name": "stamp", "seeds": [1, 2], "scales": [0.01],
		"workloads": [{"name": "m", "base": "calibrated"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep.Outcomes) != 2 {
		t.Fatalf("%d outcomes", len(res.Sweep.Outcomes))
	}
	if res.Sweep.Outcomes[0].ReportText == res.Sweep.Outcomes[1].ReportText {
		t.Fatal("seed 1 and seed 2 produced identical studies: the mix's seed was not stamped")
	}
	// And each must equal the plain study at that seed.
	for i, seed := range []uint64{1, 2} {
		want := RunStudy(DefaultConfig(seed, 0.01)).Report.Format()
		if res.Sweep.Outcomes[i].ReportText != want {
			t.Fatalf("seed %d: scenario study differs from plain RunStudy with the calibrated mix", seed)
		}
	}
}

// TestRunScenarioCancelled: a pre-cancelled context surfaces the
// context error and leaves outcomes undone without panicking in the
// cache-experiment stage.
func TestRunScenarioCancelled(t *testing.T) {
	spec := loadCorpusSpec(t, filepath.Join(corpusDir, "fig8.json"))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunScenario(ctx, spec)
	if err == nil {
		t.Fatal("cancelled scenario returned no error")
	}
	if res == nil {
		t.Fatal("cancelled scenario returned no partial result")
	}
	for i := range res.Sweep.Outcomes {
		if res.Sweep.Outcomes[i].Done {
			t.Fatalf("outcome %d ran under a cancelled context", i)
		}
		if res.CacheTexts[i] != "" {
			t.Fatalf("outcome %d has cache text without running", i)
		}
	}
}

// TestScenarioMinScaleMirrorsCore pins the duplicated constant: the
// scenario package rejects scales core would silently clamp, so the
// two bounds must stay equal.
func TestScenarioMinScaleMirrorsCore(t *testing.T) {
	if scenario.MinScale != MinScale {
		t.Fatalf("scenario.MinScale %v != core.MinScale %v", scenario.MinScale, MinScale)
	}
	if _, err := scenario.Parse([]byte(`{"version":1,"name":"t","scales":[0.001]}`)); err == nil {
		t.Fatal("sub-MinScale scale accepted (core would clamp it into a duplicate study)")
	}
}

// TestRunScenarioNilAndInvalid covers the error paths.
func TestRunScenarioNilAndInvalid(t *testing.T) {
	if _, err := RunScenario(context.Background(), nil); err == nil {
		t.Fatal("nil spec accepted")
	}
	bad := &scenario.Spec{Version: 99, Name: "bad"}
	if _, err := RunScenario(context.Background(), bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
