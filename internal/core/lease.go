// Lease-based dynamic work stealing for the persistent run store.
// PR 5's static round-robin sharding made wall clock the slowest
// shard's problem: one dead or slow process stranded its slice of the
// sweep until a manual resume. Here the run directory itself is the
// queue: a worker claims a pending spec by creating its
// "<fingerprint>.lease" file with O_CREATE|O_EXCL (atomic on local
// and NFS-style shared filesystems alike), heartbeats the lease while
// the study runs, commits the outcome through the usual
// temp-file+rename path, and removes the lease. Any worker that finds
// a lease past its deadline reclaims the spec, so heterogeneous
// processes or machines drain one queue and load-balance
// automatically -- no shard arithmetic, no manual resume.
//
// Mutual exclusion here is a throughput optimization, not a
// correctness requirement: studies are deterministic and commits are
// atomic whole-file renames, so if a presumed-dead worker turns out
// to be alive and two workers race the same spec, both publish
// byte-identical outcomes and the merge is unaffected
// (TestSweepStoreWorkStealingIdentical pins the guarantee under
// -race). The lease protocol only keeps such duplicate work rare.
package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/workload"
)

// DefaultLeaseTTL is the lease time-to-live when StoreConfig.LeaseTTL
// is unset: long enough that a heartbeating worker never looks dead
// across scheduler hiccups or NFS attribute-cache lag, short enough
// that a crashed worker's specs are back in the queue quickly.
const DefaultLeaseTTL = 30 * time.Second

// minLeaseTTL bounds how small a configured TTL can get: below this
// the heartbeat interval would race the filesystem's timestamp
// granularity and live workers would constantly look dead.
const minLeaseTTL = 10 * time.Millisecond

// leaseDoc is the JSON content of one lease file: who holds the
// claim and until when. The deadline is wall clock, so workers on
// different machines must have clocks agreeing to well within the
// TTL (the default 30s dwarfs NTP-grade skew).
type leaseDoc struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
	// DeadlineUnixNano is the instant the claim expires unless
	// renewed by a heartbeat.
	DeadlineUnixNano int64 `json:"deadline_unix_nano"`
}

// leasePath is the claim file guarding one spec's execution.
func leasePath(dir, fp string) string { return filepath.Join(dir, fp+".lease") }

// leaseBytes renders a lease document.
func leaseBytes(owner, fp string, deadline time.Time) []byte {
	data, err := json.Marshal(&leaseDoc{Worker: owner, Fingerprint: fp, DeadlineUnixNano: deadline.UnixNano()})
	if err != nil {
		// The doc is three plain fields; Marshal cannot fail on it.
		panic(err)
	}
	return data
}

// createLease attempts the atomic O_CREATE|O_EXCL claim. It reports
// (false, nil) when another worker already holds the file.
func createLease(path string, data []byte) (bool, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if os.IsExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	_, werr := f.Write(data)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// A half-written lease would only delay this spec by one TTL
		// (readers fall back to the file mtime); reclaim our own debris
		// eagerly instead.
		os.Remove(path)
		return false, werr
	}
	return true, nil
}

// leaseExpired reports whether the lease at path is past its
// deadline. An unparseable lease (a writer killed between create and
// write) falls back to the file mtime plus the TTL; a vanished lease
// reports false and the caller's next pass re-attempts the claim.
func leaseExpired(path string, ttl time.Duration) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var doc leaseDoc
	if json.Unmarshal(data, &doc) == nil && doc.DeadlineUnixNano != 0 {
		return time.Now().UnixNano() > doc.DeadlineUnixNano
	}
	fi, err := os.Stat(path)
	if err != nil {
		return false
	}
	return time.Since(fi.ModTime()) > ttl
}

// tryClaim attempts to claim fp for owner: first the O_EXCL fast
// path, then -- if the existing lease is expired -- a reap-and-retry.
// The reap renames the dead lease to a scratch name, which exactly
// one racing worker wins (rename removes the source atomically);
// losers simply report unclaimed and move on to the next spec.
// reclaimed is true when the claim took over an expired lease.
func tryClaim(dir, fp, owner string, ttl time.Duration) (claimed, reclaimed bool, err error) {
	path := leasePath(dir, fp)
	data := leaseBytes(owner, fp, time.Now().Add(ttl))
	ok, err := createLease(path, data)
	if err != nil || ok {
		return ok, false, err
	}
	if !leaseExpired(path, ttl) {
		return false, false, nil
	}
	reap := path + ".reap-" + sanitizeWorkerID(owner)
	if os.Rename(path, reap) != nil {
		// Another worker reaped (or the holder heartbeat) first.
		return false, false, nil
	}
	os.Remove(reap)
	ok, err = createLease(path, data)
	if err != nil || !ok {
		return ok, false, err
	}
	return true, true, nil
}

// releaseLease removes a claim; missing files are fine (a reaper may
// have taken the lease from a worker that was merely slow).
func releaseLease(dir, fp string) { os.Remove(leasePath(dir, fp)) }

// heartbeatLease renews the lease at ttl/3 cadence until the returned
// stop function is called; stop blocks until the renewal goroutine
// has exited, so no renewal can land after the caller releases the
// lease. Renewals go through the atomic temp-file+rename writer, so a
// reader never sees a torn lease.
func heartbeatLease(dir, fp, owner string, ttl time.Duration) (stop func()) {
	interval := ttl / 3
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				// Best effort: a failed renewal only invites a reclaim,
				// and duplicate execution commits identical bytes.
				_ = writeFileAtomic(leasePath(dir, fp), leaseBytes(owner, fp, time.Now().Add(ttl)))
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}

// sanitizeWorkerID maps an arbitrary worker identity onto the
// filename-safe alphabet its stats file and reap-scratch names use.
func sanitizeWorkerID(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	out := b.String()
	if out == "" {
		out = "worker"
	}
	if len(out) > 64 {
		out = out[:64]
	}
	return out
}

// defaultWorkerID is the host-pid identity used when the caller does
// not name the worker.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return sanitizeWorkerID(fmt.Sprintf("%s-%d", host, os.Getpid()))
}

// specCost estimates one spec's relative execution cost: simulated
// hours, i.e. the workload horizon times the study scale (the
// generator clamps at the full horizon the same way). It only ranks
// claims, so it needs no calibration -- a scale-1.0 study costing
// ~100x a scale-0.01 one is all the signal required to start the
// longest studies first.
func specCost(spec StudySpec) float64 {
	cfg := spec.Config.normalized()
	h := defaultHorizonHours
	if cfg.Workload != nil && cfg.Workload.HorizonHours > 0 && cfg.Workload.HorizonHours < 1e9 {
		h = cfg.Workload.HorizonHours
	}
	c := h * cfg.Scale
	if c > h {
		c = h
	}
	return c
}

// defaultHorizonHours caches the calibrated workload's horizon (156 h
// in the paper) for cost estimation.
var defaultHorizonHours = workload.Default(0).HorizonHours

// specCosts estimates every spec in a sweep.
func specCosts(specs []StudySpec) []float64 {
	costs := make([]float64, len(specs))
	for i := range specs {
		costs[i] = specCost(specs[i])
	}
	return costs
}

// costOrder returns spec indices in descending estimated cost (ties
// by ascending index, so the order is deterministic across workers).
// Claiming in this order keeps the most expensive studies off the
// tail: the worst case for any claim order is one maximal spec
// started last, and starting it first bounds the drain's makespan by
// max(ideal, longest single spec).
func costOrder(costs []float64) []int {
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	if costs == nil {
		return order
	}
	sort.SliceStable(order, func(a, b int) bool {
		return costs[order[a]] > costs[order[b]]
	})
	return order
}

// WorkerStats is one worker's throughput accounting within a run,
// persisted to its worker-<id>.json file and folded into the
// manifest's Workers map. Counters accumulate across resumes of the
// same worker id.
type WorkerStats struct {
	WorkerID string
	// Completed counts specs this worker committed.
	Completed int
	// SimSeconds is the simulated time those specs covered -- the
	// useful-work measure that exposes load imbalance even when spec
	// counts match.
	SimSeconds float64
	// WallSeconds is the worker's total wall time in the run loop.
	WallSeconds float64
	// Reclaims counts claims taken over from an expired lease left by
	// a dead or stalled worker.
	Reclaims int
}

// workerStatsPath is a worker's stats file inside the run directory.
func workerStatsPath(dir, id string) string {
	return filepath.Join(dir, "worker-"+sanitizeWorkerID(id)+".json")
}

// persistWorkerStats accumulates ws into the worker's stats file and
// rebuilds the manifest's Workers map from every worker file present,
// so "manifest.json" always reflects the run's per-worker throughput.
// Concurrent updaters converge: each rebuilds from the full set of
// worker files, so the last writer includes everyone.
func persistWorkerStats(dir string, ws WorkerStats) error {
	path := workerStatsPath(dir, ws.WorkerID)
	if data, err := os.ReadFile(path); err == nil {
		var prev WorkerStats
		if json.Unmarshal(data, &prev) == nil {
			ws.Completed += prev.Completed
			ws.SimSeconds += prev.SimSeconds
			ws.WallSeconds += prev.WallSeconds
			ws.Reclaims += prev.Reclaims
		}
	}
	data, err := json.MarshalIndent(&ws, "", "  ")
	if err != nil {
		return fmt.Errorf("core: store: encoding worker stats: %w", err)
	}
	if err := writeFileAtomic(path, append(data, '\n')); err != nil {
		return fmt.Errorf("core: store: persisting worker stats: %w", err)
	}
	return updateManifestWorkers(dir)
}

// loadWorkerStats reads every worker stats file in the run directory.
func loadWorkerStats(dir string) (map[string]WorkerStats, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "worker-*.json"))
	if err != nil {
		return nil, err
	}
	out := make(map[string]WorkerStats, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			continue // a concurrent writer is mid-rename; next update catches it
		}
		var ws WorkerStats
		if json.Unmarshal(data, &ws) != nil || ws.WorkerID == "" {
			continue
		}
		out[ws.WorkerID] = ws
	}
	return out, nil
}

// manifestLockFP is the pseudo-fingerprint whose lease serializes
// manifest rewrites, so concurrent finishing workers cannot lose each
// other's counters to a read-modify-write race.
const manifestLockFP = "manifest.workers"

// updateManifestWorkers rewrites the manifest with the Workers map
// rebuilt from the worker stats files. The spec-list fields are
// preserved verbatim; the manifest identity check ignores Workers.
// The rewrite runs under a short lease-file lock; if the lock cannot
// be won within its TTL (a locker died mid-update), the update
// proceeds anyway -- counters are accounting, never correctness, and
// the next finishing worker rebuilds them from the per-worker files.
func updateManifestWorkers(dir string) error {
	const lockTTL = 2 * time.Second
	deadline := time.Now().Add(lockTTL + time.Second)
	for {
		claimed, _, err := tryClaim(dir, manifestLockFP, "manifest-updater", lockTTL)
		if err != nil {
			return err
		}
		if claimed {
			defer releaseLease(dir, manifestLockFP)
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	data, err := os.ReadFile(manifestPath(dir))
	if err != nil {
		return fmt.Errorf("core: store: reading manifest for worker counters: %w", err)
	}
	var m storeManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("core: store: corrupt manifest in %s: %w", dir, err)
	}
	if m.Workers, err = loadWorkerStats(dir); err != nil {
		return err
	}
	out, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("core: store: encoding manifest: %w", err)
	}
	return writeFileAtomic(manifestPath(dir), append(out, '\n'))
}

// sweepStale cleans debris out of a run directory at store open:
// temp files and reap scratch older than the staleness threshold
// (left by killed commits -- before this sweep existed they
// accumulated forever and -resume silently ignored them), and lease
// files whose outcome is already committed (a worker killed between
// commit and lease release). Live writers are safe: anything younger
// than the threshold is left alone, and a live lease is renewed --
// hence younger -- every ttl/3.
func sweepStale(store StoreConfig) {
	threshold := store.LeaseTTL
	if threshold < time.Minute {
		threshold = time.Minute
	}
	for _, pat := range []string{"*.tmp*", "*.lease.reap-*"} {
		paths, _ := filepath.Glob(filepath.Join(store.Dir, pat))
		for _, p := range paths {
			fi, err := os.Stat(p)
			if err != nil || time.Since(fi.ModTime()) <= threshold {
				continue
			}
			if os.Remove(p) == nil {
				store.logf("removed stale temp file %s (age %v)", filepath.Base(p), time.Since(fi.ModTime()).Round(time.Second))
			}
		}
	}
	leases, _ := filepath.Glob(filepath.Join(store.Dir, "*.lease"))
	for _, p := range leases {
		fp := strings.TrimSuffix(filepath.Base(p), ".lease")
		if _, err := os.Stat(outcomePath(store.Dir, fp)); err == nil {
			if os.Remove(p) == nil {
				store.logf("removed orphaned lease %s (outcome already committed)", filepath.Base(p))
			}
		}
	}
}
