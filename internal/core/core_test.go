package core

import (
	"bytes"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func smallStudy(t *testing.T, seed uint64) *Result {
	t.Helper()
	return RunStudy(DefaultConfig(seed, 0.02))
}

func TestRunStudyProducesAllOutputs(t *testing.T) {
	res := smallStudy(t, 42)
	if res.Trace == nil || res.Report == nil {
		t.Fatal("missing outputs")
	}
	if len(res.Events) == 0 {
		t.Fatal("no events")
	}
	if res.TraceRecords <= 0 || res.TraceMessages <= 0 || res.DiskOps <= 0 {
		t.Fatalf("instrumentation stats: %d %d %d",
			res.TraceRecords, res.TraceMessages, res.DiskOps)
	}
	if res.Horizon <= 0 {
		t.Fatal("no horizon")
	}
	if res.BlockBytes() != 4096 {
		t.Fatalf("block bytes = %d", res.BlockBytes())
	}
}

func TestStudyHeaderDescribesMachine(t *testing.T) {
	res := smallStudy(t, 42)
	h := res.Header
	if h.ComputeNodes != 128 || h.IONodes != 10 || h.BlockBytes != 4096 {
		t.Fatalf("header = %+v", h)
	}
	if h.Seed != 42 {
		t.Fatalf("seed = %d", h.Seed)
	}
}

func TestStudyTraceSerializes(t *testing.T) {
	res := smallStudy(t, 7)
	var buf bytes.Buffer
	if _, err := res.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Blocks) != len(res.Trace.Blocks) {
		t.Fatal("trace round trip lost blocks")
	}
	// The postprocessed event streams must match too.
	a := trace.Postprocess(res.Trace)
	b := trace.Postprocess(back)
	if len(a) != len(b) {
		t.Fatalf("postprocess: %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs after round trip", i)
		}
	}
}

func TestStudyDeterministicAcrossRuns(t *testing.T) {
	a := smallStudy(t, 5)
	b := smallStudy(t, 5)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical runs", i)
		}
	}
}

func TestDefaultConfigClampsScale(t *testing.T) {
	cfg := DefaultConfig(1, 0)
	if cfg.Scale < 0.01 {
		t.Fatalf("scale = %v", cfg.Scale)
	}
}

func TestRunFig8ReturnsThreeSizes(t *testing.T) {
	res := smallStudy(t, 42)
	frs := RunFig8(res.Events, res.BlockBytes())
	if len(frs) != 3 {
		t.Fatalf("fig 8 configs = %d", len(frs))
	}
	want := []int{1, 10, 50}
	for i, fr := range frs {
		if fr.Buffers != want[i] {
			t.Fatalf("buffers[%d] = %d", i, fr.Buffers)
		}
		if len(fr.Jobs) == 0 {
			t.Fatal("no jobs in compute-node cache simulation")
		}
	}
	// More buffers can never hurt any job.
	for i := range frs[0].Jobs {
		if frs[2].Jobs[i].Hits < frs[0].Jobs[i].Hits {
			t.Fatal("50 buffers worse than 1 buffer for a job")
		}
	}
}

func TestFig9SweepShapes(t *testing.T) {
	res := smallStudy(t, 42)
	results := Fig9Sweep(res.Events, res.BlockBytes(), 10, cachesim.LRU, DefaultFig9Buffers())
	if len(results) != len(DefaultFig9Buffers()) {
		t.Fatalf("sweep points = %d", len(results))
	}
	// Hit rate is non-decreasing in cache size (same policy, same trace).
	for i := 1; i < len(results); i++ {
		if results[i].Rate() < results[i-1].Rate()-1e-9 {
			t.Fatalf("hit rate fell from %v to %v as cache grew",
				results[i-1].Rate(), results[i].Rate())
		}
	}
	// The biggest cache must meaningfully beat the smallest.
	if results[len(results)-1].Rate() <= results[0].Rate() {
		t.Fatal("cache size had no effect")
	}
}

func TestFig9SweepClampsTinyBufferCounts(t *testing.T) {
	res := smallStudy(t, 42)
	results := Fig9Sweep(res.Events, res.BlockBytes(), 20, cachesim.LRU, []int{1})
	if results[0].TotalBuffers < 20 {
		t.Fatalf("buffer count %d below I/O node count", results[0].TotalBuffers)
	}
}

func TestRunCombinedPreservesInterprocessHits(t *testing.T) {
	res := smallStudy(t, 42)
	comb := RunCombined(res.Events, res.BlockBytes())
	if comb.IONodeAlone.Accesses == 0 || comb.IONodeFiltered.Accesses == 0 {
		t.Fatal("combined simulation saw no traffic")
	}
	if comb.ComputeHits <= 0 {
		t.Fatal("compute-node layer absorbed nothing")
	}
	// Filtering must reduce I/O-node traffic but keep a solid hit rate
	// (the interprocess locality the paper highlights).
	if comb.IONodeFiltered.Accesses >= comb.IONodeAlone.Accesses {
		t.Fatal("filtering did not reduce I/O-node traffic")
	}
	if comb.IONodeFiltered.Rate() < comb.IONodeAlone.Rate()-0.5 {
		t.Fatalf("interprocess locality lost: %v -> %v",
			comb.IONodeAlone.Rate(), comb.IONodeFiltered.Rate())
	}
}

func TestWorkloadOverride(t *testing.T) {
	cfg := DefaultConfig(1, 0.02)
	wp := cfg.Workload
	if wp != nil {
		t.Fatal("default config should not preset workload")
	}
	// An override with only status jobs produces no CFS events.
	custom := DefaultConfig(1, 0.02)
	customWl := workloadOnlyStatus()
	custom.Workload = &customWl
	res := RunStudy(custom)
	for _, ev := range res.Events {
		if ev.IsData() {
			t.Fatal("status-only workload produced data events")
		}
	}
}

// workloadOnlyStatus returns a workload of nothing but status checks.
func workloadOnlyStatus() workload.Params {
	p := workload.Default(1)
	p.StatusCheckJobs = 50
	p.SystemUtilJobs = 0
	p.SingleReaderJobs = 0
	p.CFDSimJobs = 0
	p.RestartRunJobs = 0
	p.ParamStudyJobs = 0
	p.CheckpointJobs = 0
	p.RowPaddedJobs = 0
	p.ScratchJobs = 0
	p.BulkDumpJobs = 0
	p.LegacySharedJobs = 0
	p.UntracedParallJobs = 0
	p.Scale = 1
	return p
}
