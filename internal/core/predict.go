package core

import "repro/internal/twin"

// Predict runs the analytical twin on a study configuration: the same
// overrides, seed stamping, clamping, and large-scale disk-capacity
// adjustment a real study would apply (studyParams), but walked on the
// twin's stripped timing engine instead of the traced machine. The
// returned prediction is the instant what-if behind `charisma
// -predict`; TestTwinConformance bands it against RunStudy's observed
// queue counters across the scenario corpus.
func Predict(cfg Config) *twin.Prediction {
	cfg = cfg.normalized()
	wp, mc := studyParams(cfg)
	return twin.Predict(wp, mc)
}
