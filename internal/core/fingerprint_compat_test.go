package core

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/machine"
)

// TestFingerprintCompatibility pins the store fingerprints of the
// pre-registry configurations (captured at the commit before the
// topology/disk model extraction). A change here orphans every run
// store written by earlier builds, so it must be deliberate, not a
// side effect of reshaping machine.Config or faults.Config.
func TestFingerprintCompatibility(t *testing.T) {
	nas := StudySpec{Label: "seed=42 scale=0.01", Config: Config{Seed: 42, Scale: 0.01}}
	if got, want := SpecFingerprint("", nas), "9a8e384ac3bc8847e998de6ab091edff"; got != want {
		t.Errorf("nas fingerprint = %s, want %s", got, want)
	}

	mc := machine.MiniConfig(42)
	mini := StudySpec{Label: "seed=42 scale=0.01 mc=mini", Config: Config{Seed: 42, Scale: 0.01, Machine: &mc}}
	if got, want := SpecFingerprint("", mini), "cf189a147f67e3f37482c62269cd3621"; got != want {
		t.Errorf("mini fingerprint = %s, want %s", got, want)
	}

	fc := faults.Config{Windows: []faults.Window{{Node: 3, StartHours: 0, EndHours: 1, Slowdown: 4}}}
	faulted := StudySpec{Label: "seed=42 scale=0.01", Config: Config{Seed: 42, Scale: 0.01, Faults: &fc}}
	if got, want := SpecFingerprint("", faulted), "c1144ac215a83f6d758fe69400030624"; got != want {
		t.Errorf("faulted fingerprint = %s, want %s", got, want)
	}
}
