// Package core is the top-level CHARISMA reproduction API: it wires
// the simulated iPSC/860, the calibrated synthetic workload, the
// tracing pipeline, the workload analysis, and the trace-driven cache
// simulations into single-call studies.
//
// A Study reproduces the paper end to end:
//
//	result := core.RunStudy(core.DefaultConfig(42))
//	fmt.Print(result.Report.Format())
//
// The cache experiments (Figures 8 and 9, and the combined
// configuration of Section 4.8) run on the trace a study produces:
//
//	fig8 := core.RunFig8(result.Events, result.BlockBytes())
package core

import (
	"repro/internal/analysis"
	"repro/internal/cachesim"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config selects the scale and seed of a study.
type Config struct {
	Seed uint64
	// Scale shrinks the full 156-hour, 3016-job study; 1.0 reproduces
	// the paper's population, 0.05 runs in well under a second.
	Scale float64
	// Workload overrides the calibrated mixture when non-nil.
	Workload *workload.Params
	// Machine overrides the NAS machine configuration when non-nil.
	Machine *machine.Config
}

// DefaultConfig returns a study at the given scale (clamped to a
// minimum of 0.01) with the calibrated workload.
func DefaultConfig(seed uint64, scale float64) Config {
	if scale <= 0.01 {
		scale = 0.01
	}
	return Config{Seed: seed, Scale: scale}
}

// Result is everything a study produces.
type Result struct {
	Header  trace.Header
	Trace   *trace.Trace  // raw blocks, as collected
	Events  []trace.Event // postprocessed: drift-corrected, sorted
	Report  *analysis.Report
	Horizon sim.Time

	// Instrumentation-side statistics (Section 3).
	TraceRecords  int64 // events recorded at compute nodes
	TraceMessages int64 // blocks shipped to the collector
	DiskOps       int64 // physical disk operations during the study
}

// BlockBytes returns the file-system block size the trace was
// collected under.
func (r *Result) BlockBytes() int64 { return int64(r.Header.BlockBytes) }

// RunStudy generates the workload, simulates the machine while tracing
// all instrumented CFS activity, postprocesses the trace, and analyzes
// it.
func RunStudy(cfg Config) *Result {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	wp := workload.Default(cfg.Seed)
	if cfg.Workload != nil {
		wp = *cfg.Workload
	}
	wp.Scale = cfg.Scale

	mc := machine.NASConfig(cfg.Seed)
	if cfg.Machine != nil {
		mc = *cfg.Machine
	}
	// The 7.6 GB volume cannot hold a full-scale three-week output
	// load (real users archived results off-machine between runs, a
	// process outside the traced window); give the simulated drives
	// room at larger scales. This changes capacity only, not timing
	// parameters. See DESIGN.md.
	if cfg.Scale > 0.2 && cfg.Machine == nil {
		grow := int64(1 + 15*cfg.Scale)
		mc.FS.IONode.Disk.CapacityBytes *= grow
	}

	k := sim.New()
	m := machine.New(k, mc)
	gen := workload.NewGenerator(wp)
	horizon := gen.Install(m)
	k.Run()
	tr := m.FinishTracing()
	events := trace.Postprocess(tr)
	report := analysis.Analyze(tr.Header, events, horizon)
	return &Result{
		Header:        tr.Header,
		Trace:         tr,
		Events:        events,
		Report:        report,
		Horizon:       horizon,
		TraceRecords:  m.TraceRecords(),
		TraceMessages: m.TraceMessages(),
		DiskOps:       m.FS().TotalDiskOps(),
	}
}

// Fig8Result is the compute-node caching experiment at one cache size.
type Fig8Result struct {
	Buffers int
	Jobs    []cachesim.JobHitRate
}

// RunFig8 reproduces Figure 8: per-job hit-rate distributions for
// compute-node caches of 1, 10, and 50 one-block buffers.
func RunFig8(events []trace.Event, blockBytes int64) []Fig8Result {
	var out []Fig8Result
	for _, buffers := range []int{1, 10, 50} {
		out = append(out, Fig8Result{
			Buffers: buffers,
			Jobs:    cachesim.ComputeNodeCache(events, blockBytes, buffers),
		})
	}
	return out
}

// Fig9Sweep reproduces one Figure 9 curve: hit rate as a function of
// total buffer count for the given policy and I/O-node count.
func Fig9Sweep(events []trace.Event, blockBytes int64, ioNodes int, policy cachesim.Policy, bufferCounts []int) []cachesim.IONodeResult {
	var out []cachesim.IONodeResult
	for _, b := range bufferCounts {
		if b < ioNodes {
			b = ioNodes
		}
		out = append(out, cachesim.IONodeCache(events, blockBytes, ioNodes, b, policy))
	}
	return out
}

// DefaultFig9Buffers is the buffer-count sweep used by the harness,
// spanning the paper's 0-25000 x-axis.
func DefaultFig9Buffers() []int {
	return []int{125, 250, 500, 1000, 2000, 4000, 8000, 12000, 16000, 20000, 25000}
}

// RunCombined reproduces the Section 4.8 combined experiment: single
// one-block compute-node buffers in front of 10 I/O nodes with 50
// buffers each.
func RunCombined(events []trace.Event, blockBytes int64) cachesim.CombinedResult {
	return cachesim.Combined(events, blockBytes, 10, 50)
}
