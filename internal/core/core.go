// Package core is the top-level CHARISMA reproduction API: it wires
// the simulated iPSC/860, the calibrated synthetic workload, the
// tracing pipeline, the workload analysis, and the trace-driven cache
// simulations into single-call studies.
//
// A Study reproduces the paper end to end:
//
//	result := core.RunStudy(core.DefaultConfig(42))
//	fmt.Print(result.Report.Format())
//
// The cache experiments (Figures 8 and 9, and the combined
// configuration of Section 4.8) run on the trace a study produces:
//
//	fig8 := core.RunFig8(result.Events, result.BlockBytes())
//
// Many studies -- seed replications, scale sweeps, workload or
// machine variants -- run in parallel through the sweep engine, which
// fans specs across worker goroutines with one reusable Arena each
// and merges outcomes deterministically in spec order:
//
//	specs := core.CrossSpecs([]uint64{1, 2, 3, 4}, []float64{0.05}, nil, nil)
//	sweep := core.RunSweep(ctx, core.SweepConfig{Specs: specs})
//	fmt.Print(sweep.Format())
package core

import (
	"math"

	"repro/internal/analysis"
	"repro/internal/cachesim"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config selects the scale and seed of a study.
type Config struct {
	Seed uint64
	// Scale shrinks the full 156-hour, 3016-job study; 1.0 reproduces
	// the paper's population, 0.05 runs in well under a second.
	Scale float64
	// Workload overrides the calibrated mixture when non-nil. Its
	// Seed and Scale fields are ignored: Config.Seed and Config.Scale
	// are stamped onto the copy the study runs, so one Params value
	// can serve every (seed, scale) point of a sweep.
	Workload *workload.Params
	// Machine overrides the NAS machine configuration when non-nil.
	// Its Seed field is likewise stamped from Config.Seed.
	Machine *machine.Config
	// Faults injects deterministic hardware degradation when non-nil:
	// it is stamped onto the machine configuration the study runs
	// (overriding any Faults carried by Machine). Nil leaves the
	// machine healthy.
	Faults *faults.Config
}

// MinScale is the smallest supported study scale: every entry point
// clamps smaller (or unset) scales up to it, so a zero-value Config
// runs a 1% study rather than silently simulating the full 156-hour
// population.
const MinScale = 0.01

// normalized returns the config with its scale clamped to MinScale.
// It is the single clamping point: DefaultConfig, RunStudy, and the
// sweep engine all apply it. Non-finite scales clamp too: NaN fails
// every ordered comparison (so the old `< MinScale` guard let it
// through to the generator), and +Inf would ask for unbounded work.
func (cfg Config) normalized() Config {
	if math.IsInf(cfg.Scale, 0) || !(cfg.Scale >= MinScale) {
		cfg.Scale = MinScale
	}
	return cfg
}

// DefaultConfig returns a study at the given scale (clamped to
// MinScale) with the calibrated workload.
func DefaultConfig(seed uint64, scale float64) Config {
	return Config{Seed: seed, Scale: scale}.normalized()
}

// Result is everything a study produces.
type Result struct {
	Header  trace.Header
	Trace   *trace.Trace  // raw blocks, as collected
	Events  []trace.Event // postprocessed: drift-corrected, sorted
	Report  *analysis.Report
	Horizon sim.Time

	// Instrumentation-side statistics (Section 3).
	TraceRecords  int64 // events recorded at compute nodes
	TraceMessages int64 // blocks shipped to the collector
	DiskOps       int64 // physical disk operations during the study

	// IOQueue holds per-I/O-node observed queueing counters (batches,
	// total wait, total service). They are observation-only — the
	// simulation's timing is identical with or without them — and
	// ground the analytical twin's conformance bands.
	IOQueue []machine.IONodeQueueStat
}

// BlockBytes returns the file-system block size the trace was
// collected under.
func (r *Result) BlockBytes() int64 { return int64(r.Header.BlockBytes) }

// RunStudy generates the workload, simulates the machine while tracing
// all instrumented CFS activity, postprocesses the trace, and analyzes
// it.
func RunStudy(cfg Config) *Result {
	return runStudy(cfg, nil)
}

// studyParams resolves a normalized config into the workload and
// machine configurations a study runs: overrides applied, the seed
// stamped onto both, and the large-scale disk-capacity adjustment.
// It is shared by the batch and streaming study pipelines.
func studyParams(cfg Config) (workload.Params, machine.Config) {
	wp := workload.Default(cfg.Seed)
	if cfg.Workload != nil {
		wp = *cfg.Workload
		wp.Seed = cfg.Seed
	}
	wp.Scale = cfg.Scale

	mc := machine.NASConfig(cfg.Seed)
	if cfg.Machine != nil {
		mc = *cfg.Machine
		mc.Seed = cfg.Seed
	}
	// The 7.6 GB volume cannot hold a full-scale three-week output
	// load (real users archived results off-machine between runs, a
	// process outside the traced window); give the simulated drives
	// room at larger scales. This changes capacity only, not timing
	// parameters. See DESIGN.md.
	if cfg.Scale > 0.2 && cfg.Machine == nil {
		grow := int64(1 + 15*cfg.Scale)
		mc.FS.IONode.Disk.CapacityBytes *= grow
	}
	if cfg.Faults != nil {
		mc.Faults = *cfg.Faults
	}
	return wp, mc
}

// runStudy is the study pipeline shared by RunStudy (a == nil,
// everything freshly allocated) and Arena.RunStudy (storage drawn
// from and returned to the arena's pools).
func runStudy(cfg Config, a *Arena) *Result {
	cfg = cfg.normalized()
	wp, mc := studyParams(cfg)

	var k *sim.Kernel
	var mach *machine.Arena
	if a != nil {
		a.kernel.Reset()
		k = a.kernel
		mach = &a.mach
	} else {
		k = sim.New()
	}
	m := machine.NewWith(k, mc, mach)
	gen := workload.NewGenerator(wp)
	horizon := gen.Install(m)
	k.Run()
	tr := m.FinishTracing()
	var events []trace.Event
	var report *analysis.Report
	if a != nil {
		// The trace is collected: the file system's block tables can
		// serve the next study even while this one is analyzed.
		m.FS().Recycle()
		events = trace.PostprocessInto(tr, &a.mach.Trace)
		report = analysis.AnalyzeInto(&a.scratch, tr.Header, events, horizon)
	} else {
		events = trace.Postprocess(tr)
		report = analysis.Analyze(tr.Header, events, horizon)
	}
	report.Degradation = m.FaultReport()
	return &Result{
		Header:        tr.Header,
		Trace:         tr,
		Events:        events,
		Report:        report,
		Horizon:       horizon,
		TraceRecords:  m.TraceRecords(),
		TraceMessages: m.TraceMessages(),
		DiskOps:       m.FS().TotalDiskOps(),
		IOQueue:       m.IONodeQueueStats(),
	}
}

// Fig8Result is the compute-node caching experiment at one cache size.
type Fig8Result struct {
	Buffers int
	Jobs    []cachesim.JobHitRate
}

// RunFig8 reproduces Figure 8: per-job hit-rate distributions for
// compute-node caches of 1, 10, and 50 one-block buffers.
func RunFig8(events []trace.Event, blockBytes int64) []Fig8Result {
	return RunFig8Buffers(events, blockBytes, []int{1, 10, 50})
}

// RunFig8Buffers is RunFig8 at caller-chosen cache sizes (the
// scenario engine's fig8 axis). The cache sizes are independent
// simulations over the same immutable event slice, so they run in
// parallel; results are merged in size order.
func RunFig8Buffers(events []trace.Event, blockBytes int64, buffers []int) []Fig8Result {
	out := make([]Fig8Result, len(buffers))
	parallelEach(nil, len(buffers), 0, func(_, i int) {
		out[i] = Fig8Result{
			Buffers: buffers[i],
			Jobs:    cachesim.ComputeNodeCache(events, blockBytes, buffers[i]),
		}
	})
	return out
}

// Fig9Sweep reproduces one Figure 9 curve: hit rate as a function of
// total buffer count for the given policy and I/O-node count. Each
// buffer count is an independent simulation over the same immutable
// event slice, so the sweep fans out across cores; results are merged
// in buffer-count order.
func Fig9Sweep(events []trace.Event, blockBytes int64, ioNodes int, policy cachesim.Policy, bufferCounts []int) []cachesim.IONodeResult {
	out := make([]cachesim.IONodeResult, len(bufferCounts))
	parallelEach(nil, len(bufferCounts), 0, func(_, i int) {
		b := bufferCounts[i]
		if b < ioNodes {
			b = ioNodes
		}
		out[i] = cachesim.IONodeCache(events, blockBytes, ioNodes, b, policy)
	})
	return out
}

// DefaultFig9Buffers is the buffer-count sweep used by the harness,
// spanning the paper's 0-25000 x-axis (shared with the scenario
// engine's fig9 default).
func DefaultFig9Buffers() []int { return scenario.DefaultFig9Buffers() }

// RunCombined reproduces the Section 4.8 combined experiment: single
// one-block compute-node buffers in front of 10 I/O nodes with 50
// buffers each.
func RunCombined(events []trace.Event, blockBytes int64) cachesim.CombinedResult {
	return cachesim.Combined(events, blockBytes, 10, 50)
}
