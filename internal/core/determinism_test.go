package core

import "testing"

// TestStudyDeterminism guards the simulator's reproducibility contract:
// two studies with the same seed must produce byte-identical reports.
// The event-queue and transfer-path optimizations (see PERFORMANCE.md)
// are only admissible because they preserve exact event ordering; this
// test fails if any of them silently reorders same-instant events,
// changes disk-block allocation order, or perturbs a statistic.
func TestStudyDeterminism(t *testing.T) {
	cfg := DefaultConfig(42, 0.02)
	a := RunStudy(cfg)
	b := RunStudy(cfg)

	ra, rb := a.Report.Format(), b.Report.Format()
	if ra != rb {
		t.Fatalf("two runs at seed 42 produced different reports:\nrun A:\n%s\nrun B:\n%s", ra, rb)
	}
	if a.TraceRecords != b.TraceRecords || a.TraceMessages != b.TraceMessages {
		t.Fatalf("trace volume differs between runs: records %d vs %d, messages %d vs %d",
			a.TraceRecords, b.TraceRecords, a.TraceMessages, b.TraceMessages)
	}
	if a.DiskOps != b.DiskOps {
		t.Fatalf("disk operations differ between runs: %d vs %d", a.DiskOps, b.DiskOps)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event streams differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between runs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
