// Arena: one worker's reusable simulation state. PR 1 made a single
// study allocation-light; the arena makes the *second* study on the
// same worker nearly allocation-free by keeping every layer's backing
// storage alive between studies:
//
//   - the sim kernel's 4-ary event heap and same-instant FIFO arrays
//     (sim.Kernel.Reset),
//   - the trace pipeline's node-buffer chunks, collector block slice,
//     and postprocess scratch (trace.Arena),
//   - the CFS block tables and per-client transfer dispatch tables
//     (cfs.Arena),
//   - the analyzer's file accumulators, job maps, and -- once a report
//     is recycled -- its CDFs and histograms (analysis.Scratch).
//
// Reuse never changes behavior: pooled storage is length-zeroed and
// fully rewritten, so a study run on a warm arena is byte-identical
// to a cold RunStudy (TestArenaStudyDeterminism pins this).
package core

import (
	"repro/internal/analysis"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Arena is one worker's reusable simulation state. It is not safe for
// concurrent use: a sweep gives each worker goroutine its own.
type Arena struct {
	kernel  *sim.Kernel
	mach    machine.Arena
	scratch analysis.Scratch
}

// NewArena returns an empty arena; its pools fill as studies run.
func NewArena() *Arena {
	return &Arena{kernel: sim.New()}
}

// RunStudy runs one study, drawing storage from the arena's pools.
// The result is identical to core.RunStudy's, with one ownership
// caveat: the Result borrows arena storage, so it (and its Trace,
// Events, and Report) is valid only until the arena's next RunStudy
// call. Copy out anything that must outlive it, then return the
// storage with Recycle.
func (a *Arena) RunStudy(cfg Config) *Result {
	return runStudy(cfg, a)
}

// Recycle returns a finished study's storage -- the trace blocks and
// the report's statistics -- to the arena pools and poisons res.
// Call it once the result has been read; skipping it is safe but
// forfeits the reuse (the next study allocates afresh).
func (a *Arena) Recycle(res *Result) {
	if res == nil {
		return
	}
	if res.Trace != nil {
		a.mach.Trace.ReclaimTrace(res.Trace)
		res.Trace = nil
	}
	if res.Report != nil {
		analysis.ReclaimReport(&a.scratch, res.Report)
		res.Report = nil
	}
	res.Events = nil
}
