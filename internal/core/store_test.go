package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/workload"
)

// storeOutcomeMtimes stats every committed outcome file in dir,
// keyed by file name.
func storeOutcomeMtimes(t *testing.T, dir string) map[string]time.Time {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]time.Time)
	for _, p := range paths {
		if filepath.Base(p) == "manifest.json" {
			continue
		}
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(p)] = fi.ModTime()
	}
	return out
}

// TestSweepStoreShardResumeIdentical is the store's acceptance pin:
// a sweep run as two shards -- one of them killed mid-run and then
// resumed -- merges to output byte-identical to a single-process
// RunSweep, and the resume re-executes only the missing specs (the
// completed outcome files' mtimes stay untouched).
func TestSweepStoreShardResumeIdentical(t *testing.T) {
	specs := sweepSpecs(6)
	single := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 1})

	dir := t.TempDir()
	// Shard 0 runs its whole slice (specs 0, 2, 4).
	run0, err := RunSweepStore(context.Background(),
		SweepConfig{Specs: specs, Workers: 2},
		StoreConfig{Dir: dir, Shard: 0, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(run0.Ran), 3; got != want {
		t.Fatalf("shard 0 ran %d specs %v, want %d", got, run0.Ran, want)
	}

	// Shard 1 is "killed" after its first study commits: the context
	// is cancelled from the per-study hook, so the worker stops
	// between studies exactly as a SIGKILL between commits would.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run1, err := RunSweepStore(ctx,
		SweepConfig{
			Specs:     specs,
			Workers:   1,
			PostStudy: func(i int, r *Result) { cancel() },
		},
		StoreConfig{Dir: dir, Shard: 1, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if run1.Err == nil {
		t.Fatal("killed shard reported no context error")
	}
	if got, want := len(run1.Ran), 1; got != want {
		t.Fatalf("killed shard committed %d specs %v, want %d", got, run1.Ran, want)
	}

	// The merge must report exactly the two uncommitted specs.
	merge, err := MergeSweepStore(SweepConfig{Specs: specs}, StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(merge.Missing), 2; got != want {
		t.Fatalf("%d specs missing %v, want %d", got, merge.Missing, want)
	}

	// Resume shard 1. Completed specs must not re-execute: their
	// outcome files' mtimes are pinned across the resume.
	before := storeOutcomeMtimes(t, dir)
	resumed, err := RunSweepStore(context.Background(),
		SweepConfig{Specs: specs, Workers: 2},
		StoreConfig{Dir: dir, Shard: 1, NumShards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(resumed.Ran), 2; got != want {
		t.Fatalf("resume ran %d specs %v, want %d", got, resumed.Ran, want)
	}
	if got, want := len(resumed.Skipped), 1; got != want {
		t.Fatalf("resume skipped %d specs %v, want %d", got, resumed.Skipped, want)
	}
	after := storeOutcomeMtimes(t, dir)
	for name, mt := range before {
		if !after[name].Equal(mt) {
			t.Fatalf("outcome %s was rewritten on resume (mtime %v -> %v)", name, mt, after[name])
		}
	}

	merge, err = MergeSweepStore(SweepConfig{Specs: specs}, StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(merge.Missing) != 0 {
		t.Fatalf("specs still missing after resume: %v", merge.Missing)
	}
	if got, want := merge.Result.Format(), single.Format(); got != want {
		t.Fatalf("sharded+resumed merge differs from single-process RunSweep (first diff near byte %d):\n%s", firstDiff(got, want), got)
	}
}

// TestSweepStoreWorkStealingIdentical is the lease scheduler's
// acceptance pin: three workers with distinct identities race one
// shared run directory (exactly what three processes on a network
// filesystem do), every spec is claimed exactly once, all three
// return only when the queue is drained, and the merge is
// byte-identical to a single-process RunSweep. Run under -race in CI.
func TestSweepStoreWorkStealingIdentical(t *testing.T) {
	specs := sweepSpecs(6)
	single := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 1})

	dir := t.TempDir()
	// A long TTL makes reclaims impossible, so claim exclusivity alone
	// must partition the specs.
	runs := make([]*StoreRun, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runs[w], errs[w] = RunSweepStore(context.Background(),
				SweepConfig{Specs: specs, Workers: 1},
				StoreConfig{Dir: dir, WorkerID: fmt.Sprintf("w%d", w), LeaseTTL: time.Minute})
		}(w)
	}
	wg.Wait()

	total, reclaims := 0, 0
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		total += len(runs[w].Ran)
		reclaims += runs[w].Reclaims
	}
	if total != len(specs) {
		t.Fatalf("workers committed %d specs in total, want %d (duplicate or lost claims)", total, len(specs))
	}
	if reclaims != 0 {
		t.Fatalf("%d reclaims among live heartbeating workers", reclaims)
	}

	merge, err := MergeSweepStore(SweepConfig{Specs: specs}, StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(merge.Missing) != 0 {
		t.Fatalf("specs missing after a drained run: %v", merge.Missing)
	}
	if got, want := merge.Result.Format(), single.Format(); got != want {
		t.Fatalf("work-stealing merge differs from single-process RunSweep (first diff near byte %d):\n%s", firstDiff(got, want), got)
	}

	// The manifest's per-worker throughput counters must account for
	// every committed spec and some positive simulated time.
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m storeManifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	completed, sim := 0, 0.0
	for _, ws := range m.Workers {
		completed += ws.Completed
		sim += ws.SimSeconds
	}
	if completed != len(specs) || sim <= 0 {
		t.Fatalf("manifest worker counters: completed %d (want %d), sim-seconds %g: %+v", completed, len(specs), sim, m.Workers)
	}
}

// TestSweepStoreWorkStealingReclaimIdentical is the kill-based
// resilience pin: a worker hard-killed mid-study leaves its lease
// behind with no outcome (modeled by claiming the spec and never
// heartbeating or committing). A live worker must wait out the TTL,
// reclaim the spec, drain the whole sweep with no manual resume, and
// still merge byte-identical to a single-process RunSweep.
func TestSweepStoreWorkStealingReclaimIdentical(t *testing.T) {
	specs := sweepSpecs(4)
	single := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 1})

	dir := t.TempDir()
	const ttl = 150 * time.Millisecond
	labels, fps := specKeys("", specs)
	if err := ensureManifest(StoreConfig{Dir: dir}, labels, fps); err != nil {
		t.Fatal(err)
	}
	// The "dead" worker claims a spec and dies: lease held, no
	// heartbeat, no outcome.
	claimed, _, err := tryClaim(dir, fps[1], "dead#0", ttl)
	if err != nil || !claimed {
		t.Fatalf("dead worker's claim: claimed=%v err=%v", claimed, err)
	}

	var log bytes.Buffer
	run, err := RunSweepStore(context.Background(),
		SweepConfig{Specs: specs, Workers: 2},
		StoreConfig{Dir: dir, WorkerID: "live", LeaseTTL: ttl, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(run.Ran), len(specs); got != want {
		t.Fatalf("live worker committed %d specs %v, want %d", got, run.Ran, want)
	}
	if run.Reclaims < 1 {
		t.Fatalf("live worker reported no reclaims (log: %q)", log.String())
	}
	if !strings.Contains(log.String(), "reclaimed") {
		t.Fatalf("reclaim not logged: %q", log.String())
	}
	if run.Worker.Reclaims != run.Reclaims || run.Worker.Completed != len(run.Ran) {
		t.Fatalf("worker stats disagree with the run: %+v vs Ran=%d Reclaims=%d", run.Worker, len(run.Ran), run.Reclaims)
	}

	merge, err := MergeSweepStore(SweepConfig{Specs: specs}, StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(merge.Missing) != 0 {
		t.Fatalf("specs missing after reclaim: %v", merge.Missing)
	}
	if got, want := merge.Result.Format(), single.Format(); got != want {
		t.Fatalf("reclaimed merge differs from single-process RunSweep (first diff near byte %d):\n%s", firstDiff(got, want), got)
	}
}

// TestSweepStoreLeaseCancelReleases: a gracefully cancelled worker
// (ctx cancel, not SIGKILL) releases every lease it holds on the way
// out, so a successor picks up the remaining specs immediately --
// zero reclaims, no TTL wait -- and the merge is still byte-identical.
func TestSweepStoreLeaseCancelReleases(t *testing.T) {
	specs := sweepSpecs(5)
	single := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 1})

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run1, err := RunSweepStore(ctx,
		SweepConfig{
			Specs:     specs,
			Workers:   1,
			PostStudy: func(i int, r *Result) { cancel() },
		},
		StoreConfig{Dir: dir, WorkerID: "w1", LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if run1.Err == nil {
		t.Fatal("cancelled worker reported no context error")
	}
	if got, want := len(run1.Ran), 1; got != want {
		t.Fatalf("cancelled worker committed %d specs %v, want %d", got, run1.Ran, want)
	}
	if leases, _ := filepath.Glob(filepath.Join(dir, "*.lease")); len(leases) != 0 {
		t.Fatalf("cancelled worker left leases behind: %v", leases)
	}

	// The successor must drain the rest without waiting a TTL (the
	// minute-long TTL would time the test out if a reclaim were
	// needed).
	run2, err := RunSweepStore(context.Background(),
		SweepConfig{Specs: specs, Workers: 2},
		StoreConfig{Dir: dir, WorkerID: "w2", LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if run2.Reclaims != 0 {
		t.Fatalf("successor reclaimed %d specs; graceful cancel should have released them", run2.Reclaims)
	}
	if got, want := len(run2.Ran)+len(run2.Skipped), len(specs); got != want {
		t.Fatalf("successor saw %d specs (ran %v, skipped %v), want %d", got, run2.Ran, run2.Skipped, want)
	}

	merge, err := MergeSweepStore(SweepConfig{Specs: specs}, StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merge.Result.Format(), single.Format(); got != want {
		t.Fatalf("cancel+takeover merge differs from single-process RunSweep (first diff near byte %d)", firstDiff(got, want))
	}
}

// TestLeaseStoreClaimsCostOrder: workers claim pending specs in
// descending estimated cost (scale x horizon), so the most expensive
// study starts first instead of becoming the tail.
func TestLeaseStoreClaimsCostOrder(t *testing.T) {
	specs := CrossSpecs([]uint64{1}, []float64{0.01, 0.05, 0.02}, nil, nil)
	labels, fps := specKeys("", specs)
	store, err := StoreConfig{Dir: t.TempDir(), WorkerID: "w", LeaseTTL: time.Minute}.normalized()
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	_, err = runStore(context.Background(), 1, store, labels, fps, specCosts(specs),
		func(_, i int) (StudyOutcome, string, string, error) {
			got = append(got, i)
			return StudyOutcome{Spec: specs[i], Done: true}, "", "", nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 2, 0}; fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("claim order %v, want %v (descending scale)", got, want)
	}
	// Ties keep spec order, so the claim sequence is deterministic.
	costs := []float64{1, 2, 2, 1}
	if order := costOrder(costs); fmt.Sprint(order) != fmt.Sprint([]int{1, 2, 0, 3}) {
		t.Fatalf("costOrder(%v) = %v", costs, order)
	}
}

// TestStoreStaleSweep: opening a store removes debris a killed
// process left behind -- old commit temp files and leases whose
// outcome is already committed -- while sparing fresh temp files that
// may belong to a live writer, and logs what it removed.
func TestStoreStaleSweep(t *testing.T) {
	specs := sweepSpecs(2)
	dir := t.TempDir()
	if _, err := RunSweepStore(context.Background(), SweepConfig{Specs: specs},
		StoreConfig{Dir: dir, LeaseTTL: time.Minute}); err != nil {
		t.Fatal(err)
	}

	_, fps := specKeys("", specs)
	old := time.Now().Add(-time.Hour)
	staleTmp := filepath.Join(dir, "deadbeef.json.tmp12345")
	freshTmp := filepath.Join(dir, "cafe.json.tmp67890")
	orphanLease := filepath.Join(dir, fps[0]+".lease")
	for _, p := range []string{staleTmp, freshTmp, orphanLease} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Chtimes(staleTmp, old, old); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	if _, err := RunSweepStore(context.Background(), SweepConfig{Specs: specs},
		StoreConfig{Dir: dir, LeaseTTL: time.Minute, Log: &log}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(staleTmp); !os.IsNotExist(err) {
		t.Error("stale temp file survived the open sweep")
	}
	if _, err := os.Stat(orphanLease); !os.IsNotExist(err) {
		t.Error("orphaned lease for a committed outcome survived the open sweep")
	}
	if _, err := os.Stat(freshTmp); err != nil {
		t.Error("fresh temp file (possibly a live writer's) was removed")
	}
	for _, want := range []string{"stale temp file", "orphaned lease"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("open sweep did not log %q: %q", want, log.String())
		}
	}
}

// TestSweepStoreSpillIdentical: the streaming-spill path commits the
// same report text and counters as the batch path, and every
// <fingerprint>.trc is a readable trace whose event count matches
// its outcome.
func TestSweepStoreSpillIdentical(t *testing.T) {
	specs := sweepSpecs(2)
	single := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 1})

	dir := t.TempDir()
	store := StoreConfig{Dir: dir, SpillTraces: true}
	if _, err := RunSweepStore(context.Background(), SweepConfig{Specs: specs}, store); err != nil {
		t.Fatal(err)
	}
	merge, err := MergeSweepStore(SweepConfig{Specs: specs}, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(merge.Missing) != 0 {
		t.Fatalf("missing specs: %v", merge.Missing)
	}
	if got, want := merge.Result.Format(), single.Format(); got != want {
		t.Fatalf("spilled merge differs from batch RunSweep (first diff near byte %d)", firstDiff(got, want))
	}
	for i, spec := range specs {
		fp := SpecFingerprint("", spec)
		rd, err := trace.OpenReader(filepath.Join(dir, fp+".trc"))
		if err != nil {
			t.Fatalf("spec %d spilled trace unreadable: %v", i, err)
		}
		if got, want := int(rd.EventCount()), merge.Result.Outcomes[i].EventCount; got != want {
			t.Errorf("spec %d: trace holds %d events, outcome says %d", i, got, want)
		}
		if got, want := rd.Header().Seed, spec.Config.Seed; got != want {
			t.Errorf("spec %d: trace seed %d, want %d", i, got, want)
		}
		rd.Close()
	}
}

// TestScenarioStoreShardedIdentical: a simulation scenario lowered
// onto the store and run as two shards reconstructs a result -- sweep
// table and per-study cache experiments -- byte-identical to a
// single-process RunScenario.
func TestScenarioStoreShardedIdentical(t *testing.T) {
	parse := func() *scenario.Spec {
		spec, err := scenario.Parse([]byte(`{
			"version": 1, "name": "store-sharded",
			"seeds": [1, 2], "scales": [0.01],
			"cache": {"fig8": {"buffers": [1, 10]}}
		}`))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	baseline, err := RunScenario(context.Background(), parse())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for shard := 0; shard < 2; shard++ {
		run, err := RunScenarioStore(context.Background(), parse(),
			StoreConfig{Dir: dir, Shard: shard, NumShards: 2})
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if got, want := len(run.Run.Ran), 1; got != want {
			t.Fatalf("shard %d ran %d studies, want %d", shard, got, want)
		}
		if shard == 0 && run.Result != nil {
			t.Fatal("half-run scenario produced a merged result")
		}
		if shard == 1 {
			if run.Result == nil {
				t.Fatalf("complete scenario produced no merged result (missing %v)", run.Merge.Missing)
			}
			if got, want := run.Result.Format(), baseline.Format(); got != want {
				t.Fatalf("sharded scenario differs from RunScenario (first diff near byte %d)", firstDiff(got, want))
			}
		}
	}
}

// TestScenarioStoreReplay: replay scenarios shard over their trace
// files through the same store, merging byte-identical to the
// in-memory replay path.
func TestScenarioStoreReplay(t *testing.T) {
	path := filepath.Join(corpusDir, "replay-smoke.json")
	spec, err := scenario.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}

	spec2, err := scenario.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	run, err := RunScenarioStore(context.Background(), spec2, StoreConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if run.Result == nil {
		t.Fatalf("replay store run incomplete: missing %v", run.Merge.Missing)
	}
	if got, want := run.Result.Format(), baseline.Format(); got != want {
		t.Fatalf("stored replay scenario differs from RunScenario (first diff near byte %d)", firstDiff(got, want))
	}
}

// TestScenarioStoreCachePlanPinned: the cache plan shapes each
// study's persisted text but lives outside the StudySpec, so it is
// folded into the fingerprint salt -- resuming a run directory with
// an edited cache grid must fail the manifest check instead of
// silently merging the old experiments' text.
func TestScenarioStoreCachePlanPinned(t *testing.T) {
	parse := func(buffers string) *scenario.Spec {
		spec, err := scenario.Parse([]byte(`{
			"version": 1, "name": "plan-pinned", "scales": [0.01],
			"cache": {"fig8": {"buffers": ` + buffers + `}}
		}`))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	dir := t.TempDir()
	if _, err := RunScenarioStore(context.Background(), parse("[1]"), StoreConfig{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunScenarioStore(context.Background(), parse("[1, 10]"), StoreConfig{Dir: dir}); err == nil {
		t.Fatal("store accepted a resumed scenario with a different cache plan")
	}
}

// TestReplayStoreTraceRegenerationPinned: replay fingerprints cover
// the trace file's size and mtime, so regenerating a trace in place
// invalidates the stored run (a manifest mismatch) rather than
// silently reusing the outcome of the old bytes.
func TestReplayStoreTraceRegenerationPinned(t *testing.T) {
	dir := t.TempDir()
	trc := filepath.Join(dir, "in.trc")
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "traces", "smoke.trc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trc, src, 0o644); err != nil {
		t.Fatal(err)
	}
	parse := func() *scenario.Spec {
		spec, err := scenario.Parse([]byte(`{
			"version": 1, "name": "regen", "replay": {"traces": ["` + trc + `"]}
		}`))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	runDir := t.TempDir()
	if _, err := RunScenarioStore(context.Background(), parse(), StoreConfig{Dir: runDir}); err != nil {
		t.Fatal(err)
	}
	// "Regenerate" the trace: same path, different mtime.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(trc, past, past); err != nil {
		t.Fatal(err)
	}
	if _, err := RunScenarioStore(context.Background(), parse(), StoreConfig{Dir: runDir}); err == nil {
		t.Fatal("store reused outcomes for a regenerated trace file")
	}
}

// TestStoreManifestPinsRun: a run directory refuses a different spec
// list, so two sweeps can never interleave their outcome files.
func TestStoreManifestPinsRun(t *testing.T) {
	dir := t.TempDir()
	store := StoreConfig{Dir: dir}
	if _, err := RunSweepStore(context.Background(), SweepConfig{Specs: sweepSpecs(2)}, store); err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweepStore(context.Background(), SweepConfig{Specs: sweepSpecs(3)}, store); err == nil {
		t.Fatal("store accepted a different sweep into the same directory")
	}
	if !HasManifest(dir) {
		t.Fatal("HasManifest is false for a populated run directory")
	}
	if HasManifest(t.TempDir()) {
		t.Fatal("HasManifest is true for an empty directory")
	}
}

// TestStoreConfigValidation covers the store's rejected shapes.
func TestStoreConfigValidation(t *testing.T) {
	specs := sweepSpecs(2)
	ctx := context.Background()
	cases := []struct {
		name  string
		cfg   SweepConfig
		store StoreConfig
	}{
		{"empty dir", SweepConfig{Specs: specs}, StoreConfig{}},
		{"bad shard", SweepConfig{Specs: specs}, StoreConfig{Dir: t.TempDir(), Shard: 2, NumShards: 2}},
		{"negative shard", SweepConfig{Specs: specs}, StoreConfig{Dir: t.TempDir(), Shard: -1, NumShards: 2}},
		{"keep events", SweepConfig{Specs: specs, KeepEvents: true}, StoreConfig{Dir: t.TempDir()}},
		{"keep reports", SweepConfig{Specs: specs, KeepReports: true}, StoreConfig{Dir: t.TempDir()}},
		{"spill with post-study", SweepConfig{Specs: specs, PostStudy: func(int, *Result) {}},
			StoreConfig{Dir: t.TempDir(), SpillTraces: true}},
		{"static shard + worker id", SweepConfig{Specs: specs},
			StoreConfig{Dir: t.TempDir(), NumShards: 2, WorkerID: "w1"}},
		{"static shard + lease ttl", SweepConfig{Specs: specs},
			StoreConfig{Dir: t.TempDir(), NumShards: 2, LeaseTTL: time.Second}},
	}
	for _, tc := range cases {
		if _, err := RunSweepStore(ctx, tc.cfg, tc.store); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestSpecFingerprint pins the fingerprint's sensitivity: identical
// specs collide, and every axis of the configuration -- plus the
// caller salt -- separates them.
func TestSpecFingerprint(t *testing.T) {
	base := CrossSpecs([]uint64{1}, []float64{0.05}, nil, nil)[0]
	if SpecFingerprint("", base) != SpecFingerprint("", base) {
		t.Fatal("identical specs fingerprint differently")
	}
	seen := map[string]string{SpecFingerprint("", base): "base"}
	add := func(name string, spec StudySpec) {
		fp := SpecFingerprint("", spec)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}
	seedVar := base
	seedVar.Config.Seed = 2
	add("seed", seedVar)
	scaleVar := base
	scaleVar.Config.Scale = 0.1
	add("scale", scaleVar)
	labelVar := base
	labelVar.Label = "renamed"
	add("label", labelVar)
	wp := workload.Default(0)
	wp.CFDSimJobs++
	wlVar := base
	wlVar.Config.Workload = &wp
	add("workload", wlVar)
	mc := machine.NASConfig(0)
	mc.ComputeNodes = 64
	mcVar := base
	mcVar.Config.Machine = &mc
	add("machine", mcVar)
	// A caller salt must move the fingerprint too.
	if fp := SpecFingerprint("salted", base); seen[fp] != "" {
		t.Fatalf("salted fingerprint collides with %s", seen[fp])
	}

	// Non-finite floats in hand-built override params must hash, not
	// panic (json.Marshal would refuse them), and must not collide
	// with the finite variant.
	nanWl := workload.Default(0)
	nanWl.HorizonHours = math.NaN()
	nanVar := base
	nanVar.Config.Workload = &nanWl
	add("nan workload", nanVar)
}

// TestNormalizedRejectsNonFinite pins the NaN-scale fix at the
// library clamp: NaN and infinities can no longer reach the
// generator through Config.normalized.
func TestNormalizedRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0} {
		if got := (Config{Scale: bad}).normalized().Scale; got != MinScale {
			t.Fatalf("normalized(%v) scale = %v, want %v", bad, got, MinScale)
		}
	}
	if got := (Config{Scale: 0.5}).normalized().Scale; got != 0.5 {
		t.Fatalf("normalized clobbered a valid scale: %v", got)
	}
}

// TestStoreProgressExactlyOnce pins the Progress hook's contract:
// exactly one notification per spec, running Done counts that reach
// Total, the right state per materialization (ran on first execution,
// skipped when found committed at open), and no calls at all when the
// hook is nil (the default path must not regress).
func TestStoreProgressExactlyOnce(t *testing.T) {
	specs := sweepSpecs(4)
	dir := t.TempDir()

	var mu sync.Mutex
	var got []StoreProgress
	record := func(p StoreProgress) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	}

	if _, err := RunSweepStore(context.Background(),
		SweepConfig{Specs: specs, Workers: 2},
		StoreConfig{Dir: dir, Progress: record}); err != nil {
		t.Fatal(err)
	}
	check := func(wantState string) {
		t.Helper()
		if len(got) != len(specs) {
			t.Fatalf("%d progress calls for %d specs: %+v", len(got), len(specs), got)
		}
		seen := make(map[int]bool)
		maxDone := 0
		for _, p := range got {
			if seen[p.Index] {
				t.Fatalf("spec %d notified twice: %+v", p.Index, got)
			}
			seen[p.Index] = true
			if p.State != wantState {
				t.Fatalf("spec %d state %q, want %q", p.Index, p.State, wantState)
			}
			if p.Total != len(specs) || p.Done < 1 || p.Done > p.Total || p.Label == "" {
				t.Fatalf("malformed progress %+v", p)
			}
			if p.Done > maxDone {
				maxDone = p.Done
			}
		}
		if maxDone != len(specs) {
			t.Fatalf("running Done count peaked at %d, want %d", maxDone, len(specs))
		}
	}
	check(StoreSpecRan)

	// A resumed run finds everything committed at open.
	got = nil
	if _, err := RunSweepStore(context.Background(),
		SweepConfig{Specs: specs, Workers: 2},
		StoreConfig{Dir: dir, Progress: record}); err != nil {
		t.Fatal(err)
	}
	check(StoreSpecSkipped)
}

// TestMergeScenarioStore pins the serve daemon's cache probe: on a
// fresh or half-committed directory the merge-only probe reports the
// missing studies without executing anything, and once the directory
// is fully committed it reconstructs the exact RunScenario bytes from
// disk.
func TestMergeScenarioStore(t *testing.T) {
	parse := func() *scenario.Spec {
		spec, err := scenario.Parse([]byte(`{
			"version": 1, "name": "probe",
			"seeds": [1, 2], "scales": [0.01]
		}`))
		if err != nil {
			t.Fatal(err)
		}
		return spec
	}
	baseline, err := RunScenario(context.Background(), parse())
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	probe, err := MergeScenarioStore(parse(), StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Result != nil || len(probe.Merge.Missing) != 2 {
		t.Fatalf("empty-directory probe: result %v, missing %v", probe.Result, probe.Merge.Missing)
	}
	if probe.Run != nil {
		t.Fatalf("merge-only probe reported an execution: %+v", probe.Run)
	}

	// Half-commit via a static shard, then probe again.
	if _, err := RunScenarioStore(context.Background(), parse(),
		StoreConfig{Dir: dir, Shard: 0, NumShards: 2}); err != nil {
		t.Fatal(err)
	}
	probe, err = MergeScenarioStore(parse(), StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Result != nil || len(probe.Merge.Missing) != 1 {
		t.Fatalf("half-committed probe: result %v, missing %v", probe.Result, probe.Merge.Missing)
	}

	if _, err := RunScenarioStore(context.Background(), parse(),
		StoreConfig{Dir: dir, Shard: 1, NumShards: 2}); err != nil {
		t.Fatal(err)
	}
	probe, err = MergeScenarioStore(parse(), StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Result == nil {
		t.Fatalf("fully committed probe found no result: missing %v", probe.Merge.Missing)
	}
	if got, want := probe.Result.Format(), baseline.Format(); got != want {
		t.Fatalf("probe merge differs from RunScenario (first diff near byte %d)", firstDiff(got, want))
	}
}
