package core

import (
	"context"
	"testing"
)

// sweepSpecs returns n quick specs with distinct seeds.
func sweepSpecs(n int) []StudySpec {
	var seeds []uint64
	for i := 1; i <= n; i++ {
		seeds = append(seeds, uint64(i))
	}
	return CrossSpecs(seeds, []float64{MinScale}, nil, nil)
}

// TestRunSweepWorkerCountInvariance is the sweep engine's core
// contract: the merged output is byte-identical no matter how many
// workers ran it (and therefore no matter how specs were interleaved
// across arenas). Run with -race to also exercise the worker pool's
// synchronization.
func TestRunSweepWorkerCountInvariance(t *testing.T) {
	specs := sweepSpecs(8)
	serial := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 1})
	parallel := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 8})

	if got, want := parallel.Format(), serial.Format(); got != want {
		t.Fatalf("sweep output differs between 1 and 8 workers:\n1 worker:\n%s\n8 workers:\n%s", want, got)
	}
	for i := range specs {
		a, b := &serial.Outcomes[i], &parallel.Outcomes[i]
		if !a.Done || !b.Done {
			t.Fatalf("spec %d not run: serial=%v parallel=%v", i, a.Done, b.Done)
		}
		if a.ReportText != b.ReportText {
			t.Fatalf("spec %d (%s): report differs between worker counts", i, specs[i].Label)
		}
		if a.TraceRecords != b.TraceRecords || a.TraceMessages != b.TraceMessages ||
			a.DiskOps != b.DiskOps || a.EventCount != b.EventCount || a.Horizon != b.Horizon {
			t.Fatalf("spec %d (%s): metrics differ: %+v vs %+v", i, specs[i].Label, a, b)
		}
	}
}

// TestSweepMatchesStandaloneStudy checks that a study run on a warm,
// shared worker arena inside a sweep produces exactly the report and
// event stream a standalone cold RunStudy produces.
func TestSweepMatchesStandaloneStudy(t *testing.T) {
	specs := sweepSpecs(3)
	res := RunSweep(context.Background(), SweepConfig{Specs: specs, Workers: 1, KeepEvents: true})
	for i, spec := range specs {
		standalone := RunStudy(spec.Config)
		o := &res.Outcomes[i]
		if o.ReportText != standalone.Report.Format() {
			t.Fatalf("spec %d (%s): sweep report differs from standalone RunStudy", i, spec.Label)
		}
		if len(o.Events) != len(standalone.Events) {
			t.Fatalf("spec %d: event count %d vs standalone %d", i, len(o.Events), len(standalone.Events))
		}
		for j := range o.Events {
			if o.Events[j] != standalone.Events[j] {
				t.Fatalf("spec %d: event %d differs: %+v vs %+v", i, j, o.Events[j], standalone.Events[j])
			}
		}
		if o.DiskOps != standalone.DiskOps || o.TraceRecords != standalone.TraceRecords ||
			o.TraceMessages != standalone.TraceMessages {
			t.Fatalf("spec %d: instrumentation counters differ from standalone", i)
		}
	}
}

// TestArenaStudyDeterminism pins the arena-reuse contract directly:
// the first and the Nth study on one arena both match a cold
// RunStudy byte for byte, even with recycling in between.
func TestArenaStudyDeterminism(t *testing.T) {
	cfg := DefaultConfig(42, MinScale)
	cold := RunStudy(cfg)
	coldText := cold.Report.Format()

	arena := NewArena()
	for round := 0; round < 3; round++ {
		res := arena.RunStudy(cfg)
		if got := res.Report.Format(); got != coldText {
			t.Fatalf("arena round %d: report diverged from cold RunStudy:\n%s", round, got)
		}
		if len(res.Events) != len(cold.Events) {
			t.Fatalf("arena round %d: %d events, cold run had %d", round, len(res.Events), len(cold.Events))
		}
		for i := range res.Events {
			if res.Events[i] != cold.Events[i] {
				t.Fatalf("arena round %d: event %d differs", round, i)
			}
		}
		if res.DiskOps != cold.DiskOps {
			t.Fatalf("arena round %d: disk ops %d vs %d", round, res.DiskOps, cold.DiskOps)
		}
		arena.Recycle(res)
	}
}

// TestArenaDifferentSeedsAfterRecycle runs different seeds on one
// arena and checks each against its own cold run, guarding against
// state leaking from one study into the next.
func TestArenaDifferentSeedsAfterRecycle(t *testing.T) {
	arena := NewArena()
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := DefaultConfig(seed, MinScale)
		warm := arena.RunStudy(cfg)
		warmText := warm.Report.Format()
		arena.Recycle(warm)
		if cold := RunStudy(cfg).Report.Format(); warmText != cold {
			t.Fatalf("seed %d: warm arena report differs from cold run", seed)
		}
	}
}

// TestRunSweepPostStudy checks the per-study hook: it fires exactly
// once per spec with that study's live result, regardless of worker
// count, and index-owned writes are race-free under -race.
func TestRunSweepPostStudy(t *testing.T) {
	specs := sweepSpecs(6)
	for _, workers := range []int{1, 4} {
		events := make([]int, len(specs))
		seeds := make([]uint64, len(specs))
		RunSweep(context.Background(), SweepConfig{
			Specs:   specs,
			Workers: workers,
			PostStudy: func(i int, r *Result) {
				events[i]++
				seeds[i] = r.Header.Seed
			},
		})
		for i := range specs {
			if events[i] != 1 {
				t.Fatalf("workers=%d: PostStudy ran %d times for spec %d", workers, events[i], i)
			}
			if seeds[i] != specs[i].Config.Seed {
				t.Fatalf("workers=%d: spec %d saw result for seed %d", workers, i, seeds[i])
			}
		}
	}
}

// TestRunSweepCancelled checks that a pre-cancelled context runs
// nothing and marks every outcome undone.
func TestRunSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunSweep(ctx, SweepConfig{Specs: sweepSpecs(4), Workers: 2})
	if res.Err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	for i := range res.Outcomes {
		if res.Outcomes[i].Done {
			t.Fatalf("outcome %d ran despite cancelled context", i)
		}
	}
}

// TestScaleClampUnified pins the satellite fix: a zero-value scale is
// clamped to MinScale everywhere, so Config{} can no longer silently
// run a full 156-hour study.
func TestScaleClampUnified(t *testing.T) {
	zero := RunStudy(Config{Seed: 7})
	min := RunStudy(DefaultConfig(7, MinScale))
	if zero.Report.Format() != min.Report.Format() {
		t.Fatal("zero-scale Config did not clamp to MinScale")
	}
	if got := DefaultConfig(7, -1).Scale; got != MinScale {
		t.Fatalf("DefaultConfig(-1) scale = %v, want %v", got, MinScale)
	}
	if got := (Config{Scale: 0.5}).normalized().Scale; got != 0.5 {
		t.Fatalf("normalized clobbered a valid scale: %v", got)
	}
}

// TestCrossSpecs checks the deterministic ordering and labeling of
// the sweep spec generator.
func TestCrossSpecs(t *testing.T) {
	specs := CrossSpecs([]uint64{1, 2}, []float64{0.01, 0.05}, nil, nil)
	if len(specs) != 4 {
		t.Fatalf("expected 4 specs, got %d", len(specs))
	}
	want := []string{
		"seed=1 scale=0.01", "seed=1 scale=0.05",
		"seed=2 scale=0.01", "seed=2 scale=0.05",
	}
	for i, spec := range specs {
		if spec.Label != want[i] {
			t.Fatalf("spec %d label %q, want %q", i, spec.Label, want[i])
		}
	}
	if defaults := CrossSpecs(nil, nil, nil, nil); len(defaults) != 1 ||
		defaults[0].Config.Seed != 42 || defaults[0].Config.Scale != 0.1 {
		t.Fatalf("default CrossSpecs wrong: %+v", defaults)
	}
}
