package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/trace"
)

// memSink is an in-memory StreamSink for tests: appends on Write,
// random access on ReadAt.
type memSink struct{ buf []byte }

func (m *memSink) Write(p []byte) (int, error) {
	m.buf = append(m.buf, p...)
	return len(p), nil
}

func (m *memSink) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.buf)) {
		return 0, fmt.Errorf("memSink: offset %d out of range", off)
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// failAfterSink fails every Write once limit bytes have been accepted,
// modeling a full disk.
type failAfterSink struct {
	memSink
	limit int
}

func (f *failAfterSink) Write(p []byte) (int, error) {
	if len(f.buf)+len(p) > f.limit {
		room := f.limit - len(f.buf)
		if room < 0 {
			room = 0
		}
		f.buf = append(f.buf, p[:room]...)
		return room, fmt.Errorf("failAfterSink: disk full at %d bytes", f.limit)
	}
	return f.memSink.Write(p)
}

// TestStreamingReportByteIdentical is the pipeline's core contract:
// the seed-42 study run through RunStudyStreaming -- collector
// spilling blocks to the sink, per-node k-way merge, incremental
// analyzer -- formats to exactly the report the batch RunStudy path
// produces, along with every instrumentation counter.
func TestStreamingReportByteIdentical(t *testing.T) {
	cfg := DefaultConfig(42, 0.02)
	batch := RunStudy(cfg)

	var sink memSink
	stream, err := RunStudyStreaming(cfg, &sink)
	if err != nil {
		t.Fatal(err)
	}

	got, want := stream.Report.Format(), batch.Report.Format()
	if got != want {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("streaming report differs from batch (first diff near byte %d):\nstreaming %d bytes, batch %d bytes", i, len(got), len(want))
	}
	if stream.Header != batch.Header {
		t.Fatalf("header: %+v vs %+v", stream.Header, batch.Header)
	}
	if stream.Horizon != batch.Horizon {
		t.Fatalf("horizon: %v vs %v", stream.Horizon, batch.Horizon)
	}
	if stream.EventCount != int64(len(batch.Events)) {
		t.Fatalf("event count: %d vs %d", stream.EventCount, len(batch.Events))
	}
	if stream.TraceBlocks != int64(len(batch.Trace.Blocks)) {
		t.Fatalf("blocks: %d vs %d", stream.TraceBlocks, len(batch.Trace.Blocks))
	}
	if stream.TraceRecords != batch.TraceRecords ||
		stream.TraceMessages != batch.TraceMessages ||
		stream.DiskOps != batch.DiskOps {
		t.Fatalf("instrumentation counters differ: %+v vs records=%d messages=%d diskops=%d",
			stream, batch.TraceRecords, batch.TraceMessages, batch.DiskOps)
	}
}

// TestStreamingTraceBytesMatchBatch: the spilled .trc must be byte-
// identical to serializing the batch-collected trace -- the streaming
// writer is the same encoder fed block by block.
func TestStreamingTraceBytesMatchBatch(t *testing.T) {
	cfg := DefaultConfig(7, 0.01)
	batch := RunStudy(cfg)
	var buf bytes.Buffer
	if _, err := batch.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	var sink memSink
	stream, err := RunStudyStreaming(cfg, &sink)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.buf, buf.Bytes()) {
		t.Fatalf("spilled trace differs from batch serialization: %d vs %d bytes", len(sink.buf), buf.Len())
	}
	if stream.TraceBytes != int64(len(sink.buf)) {
		t.Fatalf("TraceBytes %d, sink holds %d", stream.TraceBytes, len(sink.buf))
	}

	// And the spilled bytes round-trip through the standalone reader.
	rd, err := trace.NewReader(bytes.NewReader(sink.buf), int64(len(sink.buf)))
	if err != nil {
		t.Fatal(err)
	}
	events, err := rd.AllEvents()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(batch.Events) {
		t.Fatalf("reader found %d events, batch %d", len(events), len(batch.Events))
	}
	for i := range events {
		if events[i] != batch.Events[i] {
			t.Fatalf("event %d differs:\nstreaming %+v\nbatch     %+v", i, events[i], batch.Events[i])
		}
	}
}

// TestStreamingSinkErrorPropagates: a sink that fills up mid-study
// must surface an error (never a panic or a silent truncation), with
// the partial byte count still reported by the writer.
func TestStreamingSinkErrorPropagates(t *testing.T) {
	sink := &failAfterSink{limit: 8 * 1024}
	_, err := RunStudyStreaming(DefaultConfig(42, 0.01), sink)
	if err == nil {
		t.Fatal("full sink produced no error")
	}
}

// BenchmarkTracePath isolates the trace-handling stage the two study
// pipelines differ in, over the identical collected trace: "batch"
// postprocesses (flatten + sort scratch + merged stream) and analyzes
// the in-memory blocks; "streaming" spills once outside the timed
// region, then indexes, k-way-merges, and analyzes from the file.
// The B/op gap is the per-study trace memory the streaming path no
// longer allocates -- on top of never holding the collected blocks
// (another ~EventSize x events) resident at all.
func BenchmarkTracePath(b *testing.B) {
	study := RunStudy(DefaultConfig(42, 0.05))
	path := filepath.Join(b.TempDir(), "bench.trc")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := study.Trace.WriteTo(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			events := trace.Postprocess(study.Trace)
			analysis.Analyze(study.Header, events, study.Horizon)
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rd, err := trace.OpenReader(path)
			if err != nil {
				b.Fatal(err)
			}
			o := analysis.NewOnline(rd.Header())
			if err := rd.Events(func(ev *trace.Event) error {
				o.Observe(ev)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			o.Finish(study.Horizon)
			rd.Close()
		}
	})
}

// BenchmarkRunStudyStreaming measures the streaming pipeline's
// allocation profile against BenchmarkRunStudy (bench_test.go, same
// scale): the trace-proportional allocations -- collected blocks,
// flatten scratch, sort keys, merged stream -- drop to a handful of
// recycled per-node chunks plus the merge cursors. The trace itself
// spills to a real file, as in production.
func BenchmarkRunStudyStreaming(b *testing.B) {
	cfg := DefaultConfig(42, 0.05)
	f, err := os.CreateTemp(b.TempDir(), "stream-*.trc")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		if _, err := RunStudyStreaming(cfg, f); err != nil {
			b.Fatal(err)
		}
	}
}
