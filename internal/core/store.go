// The persistent run store: distributed, resumable sweep execution.
// A full-scale multi-seed sweep is hours of work, and until now it
// was one monolithic process that lost everything on interruption.
// The store turns a sweep into a directory of per-study outcome
// files keyed by a configuration fingerprint (the run-manifest shape
// simulation harnesses converge on): any number of processes,
// started and restarted at any time, drain one shared queue of
// not-yet-done studies via lease-based claiming (see lease.go) and
// persist each outcome as it completes. A merge pass then loads
// every outcome file and reconstructs a SweepResult whose Format
// output is byte-identical to a single-process RunSweep -- the
// worker-count-invariance discipline of PRs 2-4, extended across
// processes, machines, restarts, and mid-study worker deaths
// (TestSweepStoreWorkStealingIdentical and
// TestSweepStoreShardResumeIdentical pin it).
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// storeVersion is the run-store layout version. It salts every
// fingerprint, so a layout or simulator-output change makes old
// outcome files unreachable (and the manifest check reports the
// mismatch) instead of silently merging stale results.
const storeVersion = 1

// storeSalt is the code-version salt folded into every fingerprint.
// Bump it whenever any simulator, analysis, or formatting change
// alters study output for an unchanged StudySpec.
const storeSalt = "charisma-store-v1"

// StoreConfig selects the run directory and how this process claims
// work from it. The default mode is lease-based work stealing: every
// worker drains one shared queue of pending specs, claiming each via
// an atomic lease file and reclaiming leases whose holder died (see
// lease.go). Deprecated static sharding (Shard/NumShards) remains for
// compatibility; the two modes are mutually exclusive.
type StoreConfig struct {
	// Dir is the run directory; it is created if absent. One directory
	// holds one sweep (the manifest pins the spec list).
	Dir string
	// WorkerID identifies this process in lease files and the
	// manifest's per-worker throughput counters. Empty means a
	// host-pid identity. Sanitized to the filename-safe alphabet.
	WorkerID string
	// LeaseTTL is how long a claim survives without a heartbeat
	// before other workers may reclaim its spec; 0 means
	// DefaultLeaseTTL. All workers sharing a run directory should use
	// the same TTL, comfortably above their mutual clock skew.
	LeaseTTL time.Duration
	// Log, when non-nil, receives store housekeeping notices (stale
	// temp-file sweeps, orphaned-lease removal, reclaims). nil
	// discards them.
	Log io.Writer
	// Shard / NumShards select the deprecated static mode: the spec
	// list is partitioned round-robin by spec index and this process
	// executes spec i only when i % NumShards == Shard (among specs
	// with no outcome file yet). NumShards <= 1 means lease mode.
	// Static partitions cannot load-balance -- a dead shard strands
	// its slice until a manual resume -- so prefer the default.
	//
	// Deprecated: use lease-based claiming (the default mode).
	Shard     int
	NumShards int
	// SpillTraces additionally writes each study's trace to
	// <fingerprint>.trc through the streaming pipeline (the study then
	// runs with bounded trace memory, see RunStudyStreaming). It is
	// incompatible with KeepEvents/KeepReports/PostStudy, which need
	// the in-memory event stream.
	SpillTraces bool
	// Salt is an optional caller salt folded into every fingerprint on
	// top of the built-in code-version salt.
	Salt string
	// AuxText, when non-nil, is called after spec i completes and its
	// return value is persisted with the outcome and restored by the
	// merge (the scenario engine stores its per-study cache-experiment
	// text this way).
	AuxText func(i int) string
	// Progress, when non-nil, is called once per spec as this run
	// learns its outcome exists: found already committed at open
	// (StoreSpecSkipped), committed by this process (StoreSpecRan), or
	// observed landing from another worker sharing the directory
	// (StoreSpecObserved). Calls arrive from worker goroutines
	// concurrently and must not block for long -- the serve daemon
	// streams them to clients as job progress events.
	Progress func(StoreProgress)
}

// Spec-progress states, in StoreProgress.State.
const (
	StoreSpecSkipped  = "skipped"  // outcome existed when this run opened the store
	StoreSpecRan      = "ran"      // executed and committed by this process
	StoreSpecObserved = "observed" // committed by another worker while this run waited
)

// StoreProgress is one job-granular progress notification from a
// store run: spec Index's outcome is now known to exist, bringing the
// run to Done of Total committed outcomes.
type StoreProgress struct {
	Index int    // spec index within the run's spec list
	Label string // the spec's report label
	Done  int    // outcomes known committed, including this one
	Total int    // specs in the run
	State string // StoreSpecSkipped, StoreSpecRan, or StoreSpecObserved
	// Reclaimed marks a StoreSpecRan spec whose claim was taken over
	// from an expired lease.
	Reclaimed bool
}

// normalized returns the store config with defaults filled in, or an
// error for a nonsensical shape. Static sharding and lease claiming
// cannot mix: a static shard ignores leases, so a lease worker
// sharing its directory could double-claim the shard's slice.
func (sc StoreConfig) normalized() (StoreConfig, error) {
	if sc.Dir == "" {
		return sc, errors.New("core: store: empty run directory")
	}
	if sc.NumShards > 1 && (sc.WorkerID != "" || sc.LeaseTTL != 0) {
		return sc, errors.New("core: store: static sharding (Shard/NumShards) and lease claiming (WorkerID/LeaseTTL) are mutually exclusive")
	}
	if sc.NumShards <= 0 {
		sc.NumShards = 1
	}
	if sc.Shard < 0 || sc.Shard >= sc.NumShards {
		return sc, fmt.Errorf("core: store: shard %d out of range [0, %d)", sc.Shard, sc.NumShards)
	}
	// Lease defaults are filled only in lease mode, which also keeps
	// normalized idempotent (the scenario path normalizes, then hands
	// the config to RunSweepStore, which normalizes again).
	if sc.NumShards == 1 {
		if sc.WorkerID == "" {
			sc.WorkerID = defaultWorkerID()
		} else {
			sc.WorkerID = sanitizeWorkerID(sc.WorkerID)
		}
		if sc.LeaseTTL <= 0 {
			sc.LeaseTTL = DefaultLeaseTTL
		}
		if sc.LeaseTTL < minLeaseTTL {
			sc.LeaseTTL = minLeaseTTL
		}
	}
	return sc, nil
}

// logf writes one housekeeping notice to the store's log sink.
func (sc StoreConfig) logf(format string, args ...any) {
	if sc.Log == nil {
		return
	}
	fmt.Fprintf(sc.Log, "store: "+format+"\n", args...)
}

// fingerprintDoc is the canonical form a spec fingerprint hashes:
// every field that determines a study's output, plus the
// code-version salt. Workload and Machine are the full override
// parameter structs (nil for the calibrated defaults), so any
// configuration difference -- not just the label -- changes the
// fingerprint.
type fingerprintDoc struct {
	Salt     string
	Label    string
	Seed     uint64
	Scale    float64
	Workload *workload.Params
	Machine  *machine.Config
	// Faults is the fault-injection override (nil for a healthy
	// machine). Kept separate from Machine so that fault-free
	// fingerprints are unchanged from builds that predate fault
	// injection.
	Faults *faults.Config
	// Replay identifies a replay study's input (which has no
	// simulation config at all): the trace path plus the file's size
	// and mtime, so regenerating a trace in place moves the key
	// instead of silently reusing the old outcome.
	Replay      string
	ReplaySize  int64
	ReplayMtime int64
}

// fingerprint hashes the doc to the outcome-file key. The rendering
// is fmt-based rather than JSON: the override structs are plain
// value types all the way down, and fmt never fails on the
// non-finite floats a hand-built config can carry (json.Marshal
// would). Strings that a caller controls are %q-escaped so a crafted
// label cannot collide with a different field split.
func (d fingerprintDoc) fingerprint() string {
	salt := storeSalt
	if d.Salt != "" {
		salt = storeSalt + "+" + d.Salt
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|salt=%q|label=%q|seed=%d|scale=%g", storeVersion, salt, d.Label, d.Seed, d.Scale)
	if d.Workload != nil {
		fmt.Fprintf(&b, "|wl=%+v", *d.Workload)
	}
	if d.Machine != nil {
		appendMachineDoc(&b, *d.Machine)
	}
	if d.Faults != nil {
		fmt.Fprintf(&b, "|faults=%+v", *d.Faults)
	}
	if d.Replay != "" {
		fmt.Fprintf(&b, "|replay=%q|size=%d|mtime=%d", d.Replay, d.ReplaySize, d.ReplayMtime)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// The legacy* mirrors reproduce, field for field, the configuration
// struct shapes from before the topology and disk-model registries
// existed. Machine overrides are fingerprinted through them so every
// hypercube/rotating-drive study keeps the key it had then (stores on
// disk stay valid); the registry-era fields (topology kind, spine
// bandwidth, disk kind, access latency) are appended as explicit
// segments only when they depart from the legacy hardware, so any new
// configuration still gets a distinct key.
// TestFingerprintCompatibility pins this.
type legacyNetConfig struct {
	Dim            int
	Startup        sim.Time
	PerHop         sim.Time
	PerPacket      sim.Time
	PacketBytes    int
	BytesPerSecond float64
}

type legacyDiskConfig struct {
	CapacityBytes  int64
	BlockBytes     int
	Cylinders      int
	MinSeek        sim.Time
	MaxSeek        sim.Time
	RotationPeriod sim.Time
	BytesPerSecond float64
}

type legacyIONodeConfig struct {
	Disk         legacyDiskConfig
	CacheBuffers int
	Overhead     sim.Time
	CacheHitTime sim.Time
	Prefetch     bool
}

type legacyFSConfig struct {
	BlockBytes int
	IONodes    int
	IONode     legacyIONodeConfig
}

type legacyMachineConfig struct {
	ComputeNodes     int
	Net              legacyNetConfig
	FS               legacyFSConfig
	ServiceHost      int
	TraceBufferBytes int
	MaxClockOffset   sim.Time
	MaxClockDriftPPM float64
	Seed             uint64
	Faults           faults.Config
}

// appendMachineDoc renders one machine override into the fingerprint
// document: the legacy-shaped struct via %+v, then the registry-era
// extras when present.
func appendMachineDoc(b *strings.Builder, mc machine.Config) {
	legacy := legacyMachineConfig{
		ComputeNodes: mc.ComputeNodes,
		Net: legacyNetConfig{
			Dim:            mc.Net.Dim,
			Startup:        mc.Net.Startup,
			PerHop:         mc.Net.PerHop,
			PerPacket:      mc.Net.PerPacket,
			PacketBytes:    mc.Net.PacketBytes,
			BytesPerSecond: mc.Net.BytesPerSecond,
		},
		FS: legacyFSConfig{
			BlockBytes: mc.FS.BlockBytes,
			IONodes:    mc.FS.IONodes,
			IONode: legacyIONodeConfig{
				Disk: legacyDiskConfig{
					CapacityBytes:  mc.FS.IONode.Disk.CapacityBytes,
					BlockBytes:     mc.FS.IONode.Disk.BlockBytes,
					Cylinders:      mc.FS.IONode.Disk.Cylinders,
					MinSeek:        mc.FS.IONode.Disk.MinSeek,
					MaxSeek:        mc.FS.IONode.Disk.MaxSeek,
					RotationPeriod: mc.FS.IONode.Disk.RotationPeriod,
					BytesPerSecond: mc.FS.IONode.Disk.BytesPerSecond,
				},
				CacheBuffers: mc.FS.IONode.CacheBuffers,
				Overhead:     mc.FS.IONode.Overhead,
				CacheHitTime: mc.FS.IONode.CacheHitTime,
				Prefetch:     mc.FS.IONode.Prefetch,
			},
		},
		ServiceHost:      mc.ServiceHost,
		TraceBufferBytes: mc.TraceBufferBytes,
		MaxClockOffset:   mc.MaxClockOffset,
		MaxClockDriftPPM: mc.MaxClockDriftPPM,
		Seed:             mc.Seed,
		Faults:           mc.Faults,
	}
	fmt.Fprintf(b, "|mc=%+v", legacy)
	if k := mc.Net.Kind; k != "" && !strings.EqualFold(k, "hypercube") {
		fmt.Fprintf(b, "|topo=%q", strings.ToLower(k))
	}
	if mc.Net.SpineBytesPerSecond != 0 {
		fmt.Fprintf(b, "|spine=%g", mc.Net.SpineBytesPerSecond)
	}
	if k := mc.FS.IONode.Disk.Kind; k != "" && !strings.EqualFold(k, "rotating") {
		fmt.Fprintf(b, "|diskkind=%q", strings.ToLower(k))
	}
	if al := mc.FS.IONode.Disk.AccessLatency; al != 0 {
		fmt.Fprintf(b, "|access=%d", int64(al))
	}
}

// SpecFingerprint returns the run-store key of one study spec under
// the given extra salt ("" for none). The key covers the label, the
// full normalized configuration, and the store's code-version salt.
func SpecFingerprint(salt string, spec StudySpec) string {
	cfg := spec.Config.normalized()
	return fingerprintDoc{
		Salt:     salt,
		Label:    spec.Label,
		Seed:     cfg.Seed,
		Scale:    cfg.Scale,
		Workload: cfg.Workload,
		Machine:  cfg.Machine,
		Faults:   cfg.Faults,
	}.fingerprint()
}

// replayFingerprint keys a replay study by its input trace: the
// path plus the file's current size and mtime, so a trace
// regenerated in place invalidates the stored outcome (surfaced as
// a manifest mismatch) rather than being silently skipped.
func replayFingerprint(salt, label, path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("core: store: fingerprinting replay trace: %w", err)
	}
	return fingerprintDoc{
		Salt:        salt,
		Label:       label,
		Replay:      path,
		ReplaySize:  fi.Size(),
		ReplayMtime: fi.ModTime().UnixNano(),
	}.fingerprint(), nil
}

// storedOutcome is the JSON schema of one outcome file. Writing it is
// the commit point of a study: a spec is "done" exactly when its
// outcome file exists and parses.
type storedOutcome struct {
	StoreVersion  int
	Fingerprint   string
	Label         string
	ReportText    string
	AuxText       string `json:",omitempty"`
	Header        trace.Header
	Horizon       int64
	EventCount    int
	TraceRecords  int64
	TraceMessages int64
	DiskOps       int64
	// TraceFile names the sibling spilled trace ("<fp>.trc") when the
	// run spilled traces.
	TraceFile string `json:",omitempty"`
}

// outcomePath returns the outcome file for a fingerprint.
func outcomePath(dir, fp string) string { return filepath.Join(dir, fp+".json") }

// tracePath returns the spilled-trace file for a fingerprint.
func tracePath(dir, fp string) string { return filepath.Join(dir, fp+".trc") }

// writeFileAtomic writes data to path via a same-directory temp file
// and rename, so a concurrently merging process never observes a
// partial file. The temp name is unique per writer (os.CreateTemp),
// so even two processes mistakenly running the same shard id publish
// whole files -- last rename wins with identical deterministic
// content -- rather than truncating each other's temp file.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// storeManifest pins a run directory to one spec list: resuming with
// a different sweep (or after a code-version salt bump) is an error
// instead of a silent half-merge of two different runs. Workers
// carries the per-worker throughput counters (rebuilt from the
// worker-<id>.json files as workers finish) and never participates in
// the identity check.
type storeManifest struct {
	StoreVersion int
	NumSpecs     int
	Labels       []string
	Fingerprints []string
	Workers      map[string]WorkerStats `json:",omitempty"`
}

// manifestPath is the manifest file inside a run directory.
func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

// ensureManifest creates the run directory and its manifest, or
// verifies the existing manifest matches this run's spec list.
func ensureManifest(store StoreConfig, labels, fps []string) error {
	if err := os.MkdirAll(store.Dir, 0o755); err != nil {
		return fmt.Errorf("core: store: %w", err)
	}
	want := storeManifest{StoreVersion: storeVersion, NumSpecs: len(fps), Labels: labels, Fingerprints: fps}
	data, err := json.MarshalIndent(&want, "", "  ")
	if err != nil {
		return fmt.Errorf("core: store: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	existing, err := os.ReadFile(manifestPath(store.Dir))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return writeFileAtomic(manifestPath(store.Dir), data)
	case err != nil:
		return fmt.Errorf("core: store: reading manifest: %w", err)
	}
	var got storeManifest
	if err := json.Unmarshal(existing, &got); err != nil {
		return fmt.Errorf("core: store: corrupt manifest in %s: %w", store.Dir, err)
	}
	if got.StoreVersion != want.StoreVersion || got.NumSpecs != want.NumSpecs ||
		!equalStrings(got.Fingerprints, want.Fingerprints) {
		return fmt.Errorf("core: store: %s holds a different run (manifest fingerprints differ); use a fresh directory", store.Dir)
	}
	return nil
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StoreRun reports what one RunSweepStore (or scenario-store)
// invocation did. Ran and Skipped are spec indices in ascending
// order; specs committed by other concurrent workers (or, in the
// deprecated static mode, belonging to other shards) appear in
// neither.
type StoreRun struct {
	Ran     []int // executed and persisted by this invocation
	Skipped []int // outcome file already existed when this run started
	// Reclaims counts claims this invocation took over from an
	// expired lease left by a dead or stalled worker (lease mode).
	Reclaims int
	// Worker is this invocation's throughput accounting, as persisted
	// to the manifest (lease mode only; zero value in static mode).
	Worker  WorkerStats
	Elapsed time.Duration
	// Err records the context error when the run was cancelled; specs
	// left unrun stay pending for the next worker or resume.
	Err error
}

// persistOutcome writes one completed outcome (and optionally its
// spilled trace name) as the study's commit record.
func persistOutcome(store StoreConfig, fp string, out *StudyOutcome, aux, traceFile string) error {
	doc := storedOutcome{
		StoreVersion:  storeVersion,
		Fingerprint:   fp,
		Label:         out.Spec.Label,
		ReportText:    out.ReportText,
		AuxText:       aux,
		Header:        out.Header,
		Horizon:       int64(out.Horizon),
		EventCount:    out.EventCount,
		TraceRecords:  out.TraceRecords,
		TraceMessages: out.TraceMessages,
		DiskOps:       out.DiskOps,
		TraceFile:     traceFile,
	}
	data, err := json.Marshal(&doc)
	if err != nil {
		return fmt.Errorf("core: store: encoding outcome %s: %w", fp, err)
	}
	if err := writeFileAtomic(outcomePath(store.Dir, fp), data); err != nil {
		return fmt.Errorf("core: store: persisting outcome %s: %w", fp, err)
	}
	return nil
}

// loadOutcome reads and validates one outcome file; os.ErrNotExist
// passes through for pending specs.
func loadOutcome(dir, fp string) (*storedOutcome, error) {
	data, err := os.ReadFile(outcomePath(dir, fp))
	if err != nil {
		return nil, err
	}
	var doc storedOutcome
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("core: store: corrupt outcome %s: %w", outcomePath(dir, fp), err)
	}
	if doc.StoreVersion != storeVersion || doc.Fingerprint != fp {
		return nil, fmt.Errorf("core: store: outcome %s does not match its key (version %d, fingerprint %s)",
			outcomePath(dir, fp), doc.StoreVersion, doc.Fingerprint)
	}
	return &doc, nil
}

// runStore is the executor shared by the sweep and replay paths: it
// opens the store (manifest check plus a stale-debris sweep) and
// drains the pending specs, persisting outcomes as they complete.
// The default path is the lease-based work-stealing drain; NumShards
// > 1 selects the deprecated static partition. exec returns the
// finished outcome plus its auxiliary text; traceFile (pre-resolved
// per spec) is recorded in the outcome when non-empty. costs, when
// non-nil, ranks claim order (most expensive first); nil means spec
// order.
func runStore(ctx context.Context, workers int, store StoreConfig, labels, fps []string, costs []float64,
	exec func(worker, specIdx int) (StudyOutcome, string, string, error)) (*StoreRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ensureManifest(store, labels, fps); err != nil {
		return nil, err
	}
	sweepStale(store)
	if store.NumShards > 1 {
		return runStaticStore(ctx, workers, store, labels, fps, exec)
	}
	return runLeaseStore(ctx, workers, store, labels, fps, costs, exec)
}

// progressTracker counts known-committed outcomes across worker
// goroutines and fires the store's Progress callback exactly once per
// spec transition.
type progressTracker struct {
	store  StoreConfig
	labels []string
	total  int
	done   atomic.Int64
}

// emit records one spec's outcome becoming known and notifies the
// callback. Callers guarantee exactly-once per spec (the committed
// flags' compare-and-swap).
func (p *progressTracker) emit(i int, state string, reclaimed bool) {
	done := int(p.done.Add(1))
	if p.store.Progress == nil {
		return
	}
	p.store.Progress(StoreProgress{
		Index: i, Label: p.labels[i],
		Done: done, Total: p.total,
		State: state, Reclaimed: reclaimed,
	})
}

// runStaticStore is the deprecated PR 5 executor: this process runs
// exactly its round-robin slice of the pending specs and returns
// without waiting for other shards.
func runStaticStore(ctx context.Context, workers int, store StoreConfig, labels, fps []string,
	exec func(worker, specIdx int) (StudyOutcome, string, string, error)) (*StoreRun, error) {
	run := &StoreRun{}
	prog := &progressTracker{store: store, labels: labels, total: len(fps)}
	var mine []int
	for i := range fps {
		if i%store.NumShards != store.Shard {
			continue
		}
		if _, err := os.Stat(outcomePath(store.Dir, fps[i])); err == nil {
			run.Skipped = append(run.Skipped, i)
			prog.emit(i, StoreSpecSkipped, false)
			continue
		}
		mine = append(mine, i)
	}
	start := time.Now()
	errs := make([]error, len(mine))
	done := make([]bool, len(mine))
	parallelEach(ctx, len(mine), workers, func(w, j int) {
		i := mine[j]
		out, aux, traceFile, err := exec(w, i)
		if err == nil {
			err = persistOutcome(store, fps[i], &out, aux, traceFile)
		}
		if err != nil {
			errs[j] = err
			return
		}
		done[j] = true
		prog.emit(i, StoreSpecRan, false)
	})
	run.Elapsed = time.Since(start)
	run.Err = ctx.Err()
	for j, ok := range done {
		if ok {
			run.Ran = append(run.Ran, mine[j])
		}
	}
	for _, err := range errs {
		if err != nil {
			return run, err
		}
	}
	return run, nil
}

// runLeaseStore is the work-stealing drain: every worker goroutine
// walks the pending specs in descending estimated cost, claims the
// first claimable one via its lease file, executes it, commits, and
// releases. Workers that find nothing claimable -- everything
// committed or under a live lease held elsewhere -- poll until every
// outcome exists, reclaiming any lease whose holder stops
// heartbeating; so the call returns only when the whole sweep is
// drained (or ctx is cancelled), with no manual resume step. Claims
// are exclusive in the common case, but even a duplicate execution
// (a presumed-dead worker waking up) commits byte-identical outcomes
// via atomic rename, so the merge guarantee never depends on the
// lease protocol being airtight.
func runLeaseStore(ctx context.Context, workers int, store StoreConfig, labels, fps []string, costs []float64,
	exec func(worker, specIdx int) (StudyOutcome, string, string, error)) (*StoreRun, error) {
	order := costOrder(costs)
	n := len(fps)
	run := &StoreRun{}
	prog := &progressTracker{store: store, labels: labels, total: n}
	start := time.Now()

	// committed[i] memoizes "outcome i exists" so each worker pass
	// stats only still-pending specs. Transitions go through
	// CompareAndSwap so the progress tracker fires exactly once per
	// spec even when two workers observe the same commit.
	committed := make([]atomic.Bool, n)
	for i := range fps {
		if _, err := os.Stat(outcomePath(store.Dir, fps[i])); err == nil {
			committed[i].Store(true)
			run.Skipped = append(run.Skipped, i)
			prog.emit(i, StoreSpecSkipped, false)
		}
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	var mu sync.Mutex // guards run.Ran, simSeconds, reclaims, firstErr
	var firstErr error
	var simSeconds float64
	var reclaims int
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancelRun()
	}

	poll := store.LeaseTTL / 4
	if poll < 5*time.Millisecond {
		poll = 5 * time.Millisecond
	}
	if poll > 2*time.Second {
		poll = 2 * time.Second
	}

	workers = workerCount(workers, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Each goroutine claims under its own lease identity so
			// in-process workers steal from each other through the very
			// same protocol as cross-process ones.
			owner := fmt.Sprintf("%s#%d", store.WorkerID, w)
			for {
				progress, pending := false, false
				for _, i := range order {
					if runCtx.Err() != nil {
						return
					}
					if committed[i].Load() {
						continue
					}
					if _, err := os.Stat(outcomePath(store.Dir, fps[i])); err == nil {
						if committed[i].CompareAndSwap(false, true) {
							prog.emit(i, StoreSpecObserved, false)
						}
						continue
					}
					pending = true
					claimed, reclaimed, err := tryClaim(store.Dir, fps[i], owner, store.LeaseTTL)
					if err != nil {
						fail(fmt.Errorf("core: store: claiming %s: %w", fps[i], err))
						return
					}
					if !claimed {
						continue
					}
					if reclaimed {
						store.logf("%s reclaimed %s from an expired lease", owner, fps[i])
					}
					stopHB := heartbeatLease(store.Dir, fps[i], owner, store.LeaseTTL)
					out, aux, traceFile, err := exec(w, i)
					if err == nil {
						err = persistOutcome(store, fps[i], &out, aux, traceFile)
					}
					stopHB()
					releaseLease(store.Dir, fps[i])
					if err != nil {
						fail(err)
						return
					}
					if committed[i].CompareAndSwap(false, true) {
						prog.emit(i, StoreSpecRan, reclaimed)
					}
					progress = true
					mu.Lock()
					run.Ran = append(run.Ran, i)
					simSeconds += out.Horizon.ToSeconds()
					if reclaimed {
						reclaims++
					}
					mu.Unlock()
				}
				if !pending {
					return // every spec has a committed outcome
				}
				if !progress {
					// Everything pending is leased elsewhere: wait for
					// commits to land or leases to expire.
					select {
					case <-runCtx.Done():
						return
					case <-time.After(poll):
					}
				}
			}
		}(w)
	}
	wg.Wait()
	run.Elapsed = time.Since(start)
	run.Err = ctx.Err()
	run.Reclaims = reclaims
	sort.Ints(run.Ran)
	run.Worker = WorkerStats{
		WorkerID:    store.WorkerID,
		Completed:   len(run.Ran),
		SimSeconds:  simSeconds,
		WallSeconds: run.Elapsed.Seconds(),
		Reclaims:    reclaims,
	}
	if err := persistWorkerStats(store.Dir, run.Worker); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return run, firstErr
	}
	return run, nil
}

// RunSweepStore drains cfg.Specs against the run directory: specs
// whose outcome file already exists are skipped, the rest are
// claimed one at a time (most expensive first) by cfg.Workers
// goroutines (one reusable Arena each, exactly like RunSweep), and
// every outcome is persisted the moment it completes -- so a killed
// process loses at most its in-flight studies, and any other worker
// sharing the directory reclaims them after the lease TTL. In the
// default lease mode the call returns once every spec's outcome
// exists (or ctx is cancelled); in the deprecated static-shard mode
// it returns after this shard's slice. Combine the outcome files
// with MergeSweepStore.
func RunSweepStore(ctx context.Context, cfg SweepConfig, store StoreConfig) (*StoreRun, error) {
	store, err := store.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.KeepEvents || cfg.KeepReports {
		return nil, errors.New("core: store: KeepEvents/KeepReports are incompatible with a persistent store (outcome files hold text and counters only)")
	}
	if store.SpillTraces && cfg.PostStudy != nil {
		return nil, errors.New("core: store: SpillTraces is incompatible with PostStudy (the streaming path materializes no event stream)")
	}
	labels, fps := specKeys(store.Salt, cfg.Specs)
	arenas := make([]*Arena, workerCount(cfg.Workers, len(cfg.Specs)))
	return runStore(ctx, cfg.Workers, store, labels, fps, specCosts(cfg.Specs),
		func(w, i int) (StudyOutcome, string, string, error) {
			if store.SpillTraces {
				out, err := spillSpec(cfg.Specs[i], store, fps[i])
				return out, auxFor(store, i), fps[i] + ".trc", err
			}
			if arenas[w] == nil {
				arenas[w] = NewArena()
			}
			out := runSpec(arenas[w], cfg, cfg.Specs[i], i)
			return out, auxFor(store, i), "", nil
		})
}

// auxFor evaluates the store's AuxText hook for spec i.
func auxFor(store StoreConfig, i int) string {
	if store.AuxText == nil {
		return ""
	}
	return store.AuxText(i)
}

// specKeys fingerprints a spec list.
func specKeys(salt string, specs []StudySpec) (labels, fps []string) {
	labels = make([]string, len(specs))
	fps = make([]string, len(specs))
	for i, s := range specs {
		labels[i] = s.Label
		fps[i] = SpecFingerprint(salt, s)
	}
	return labels, fps
}

// workerCount resolves a Workers field the way parallelEach does.
func workerCount(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// spillSpec runs one spec through the streaming study pipeline,
// writing its trace to <fp>.trc (via a temp name, renamed before the
// outcome commits). The outcome carries the same report text and
// counters the batch path produces (TestSweepStoreSpillIdentical pins
// the merged bytes against RunSweep).
func spillSpec(spec StudySpec, store StoreConfig, fp string) (StudyOutcome, error) {
	final := tracePath(store.Dir, fp)
	f, err := os.CreateTemp(store.Dir, fp+".trc.tmp*")
	if err != nil {
		return StudyOutcome{}, fmt.Errorf("core: store: spilling trace: %w", err)
	}
	tmp := f.Name()
	res, err := RunStudyStreaming(spec.Config, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return StudyOutcome{}, err
	}
	if err := os.Chmod(tmp, 0o644); err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return StudyOutcome{}, fmt.Errorf("core: store: spilling trace: %w", err)
	}
	return StudyOutcome{
		Spec:          spec,
		Done:          true,
		ReportText:    res.Report.Format(),
		Header:        res.Header,
		Horizon:       res.Horizon,
		EventCount:    int(res.EventCount),
		TraceRecords:  res.TraceRecords,
		TraceMessages: res.TraceMessages,
		DiskOps:       res.DiskOps,
	}, nil
}

// SweepMerge is the reconstruction of a (possibly still running)
// stored sweep.
type SweepMerge struct {
	// Result holds one outcome per spec, loaded from the run
	// directory; specs with no outcome file yet have Done == false.
	// When Missing is empty, Result.Format() is byte-identical to a
	// single-process RunSweep over the same specs.
	Result *SweepResult
	// Aux holds the restored per-spec auxiliary texts.
	Aux []string
	// Missing lists spec indices whose outcome file does not exist
	// yet (still pending, or owned by a shard that has not run).
	Missing []int
}

// MergeSweepStore loads every spec's outcome file from the run
// directory and reconstructs the merged sweep. It never executes
// anything, so it is safe to call concurrently with running shards:
// a spec is either committed (its file parses) or missing.
func MergeSweepStore(cfg SweepConfig, store StoreConfig) (*SweepMerge, error) {
	store, err := store.normalized()
	if err != nil {
		return nil, err
	}
	_, fps := specKeys(store.Salt, cfg.Specs)
	return mergeStore(store, cfg.Specs, fps)
}

// mergeStore loads outcomes for an already-fingerprinted spec list.
func mergeStore(store StoreConfig, specs []StudySpec, fps []string) (*SweepMerge, error) {
	m := &SweepMerge{
		Result: &SweepResult{Outcomes: make([]StudyOutcome, len(specs))},
		Aux:    make([]string, len(specs)),
	}
	for i := range specs {
		m.Result.Outcomes[i].Spec = specs[i]
		doc, err := loadOutcome(store.Dir, fps[i])
		if errors.Is(err, os.ErrNotExist) {
			m.Missing = append(m.Missing, i)
			continue
		}
		if err != nil {
			return nil, err
		}
		m.Result.Outcomes[i] = StudyOutcome{
			Spec:          specs[i],
			Done:          true,
			ReportText:    doc.ReportText,
			Header:        doc.Header,
			Horizon:       sim.Time(doc.Horizon),
			EventCount:    doc.EventCount,
			TraceRecords:  doc.TraceRecords,
			TraceMessages: doc.TraceMessages,
			DiskOps:       doc.DiskOps,
		}
		m.Aux[i] = doc.AuxText
	}
	return m, nil
}

// ScenarioStoreRun is one sharded scenario invocation's outcome.
type ScenarioStoreRun struct {
	Run   *StoreRun
	Merge *SweepMerge
	// Result is the fully merged scenario, non-nil only when every
	// study's outcome file exists (Merge.Missing is empty). Its
	// Format() is then byte-identical to a single-process
	// RunScenario.
	Result *ScenarioResult
}

// RunScenarioStore lowers a scenario onto the persistent store: the
// same study list and cache experiments as RunScenario, but each
// study's report and cache-experiment text are persisted as they
// complete, this process executes only its shard's pending slice,
// and the merged result is reconstructed from the run directory.
// Replay scenarios shard over their trace files the same way.
func RunScenarioStore(ctx context.Context, spec *scenario.Spec, store StoreConfig) (*ScenarioStoreRun, error) {
	store, keys, err := scenarioStoreKeys(spec, store)
	if err != nil {
		return nil, err
	}
	plan := spec.CachePlan()
	var run *StoreRun
	if spec.IsReplay() {
		run, err = runStore(ctx, spec.Workers, store, keys.labels, keys.fps, keys.costs,
			func(_, i int) (StudyOutcome, string, string, error) {
				out, text, err := replayStudy(keys.paths[i], plan)
				if err != nil {
					return out, "", "", fmt.Errorf("core: replay %s: %w", keys.labels[i], err)
				}
				out.Spec = keys.specs[i]
				return out, text, "", nil
			})
	} else {
		// The cache experiments run on the worker right after each
		// study, exactly as in RunScenario; the store persists their
		// text with the outcome so a resumed or merging process never
		// re-simulates a finished study to recover it.
		texts := make([]string, len(keys.specs))
		sweepCfg := SweepConfig{Specs: keys.specs, Workers: spec.Workers}
		if plan != nil {
			sweepCfg.PostStudy = func(i int, r *Result) {
				texts[i] = cacheExperimentText(plan, r.Events, r.BlockBytes())
			}
		}
		store.AuxText = func(i int) string { return texts[i] }
		run, err = RunSweepStore(ctx, sweepCfg, store)
	}
	if err != nil {
		return &ScenarioStoreRun{Run: run}, err
	}
	merge, err := mergeStore(store, keys.specs, keys.fps)
	if err != nil {
		return &ScenarioStoreRun{Run: run}, err
	}
	out := &ScenarioStoreRun{Run: run, Merge: merge}
	if len(merge.Missing) == 0 {
		out.Result = &ScenarioResult{Spec: spec, Sweep: merge.Result, CacheTexts: merge.Aux}
	}
	return out, nil
}

// scenarioKeys is a scenario's resolved store identity: its study
// list and the per-study labels, fingerprints, claim costs, and (for
// replay scenarios) trace paths.
type scenarioKeys struct {
	specs  []StudySpec
	labels []string
	fps    []string
	costs  []float64
	paths  []string // replay trace paths; nil for simulated scenarios
}

// scenarioStoreKeys validates the spec, normalizes the store config,
// folds the resolved cache plan into the fingerprint salt, and
// resolves the study keys -- the shared front half of
// RunScenarioStore and MergeScenarioStore.
func scenarioStoreKeys(spec *scenario.Spec, store StoreConfig) (StoreConfig, *scenarioKeys, error) {
	if spec == nil {
		return store, nil, errors.New("core: nil scenario spec")
	}
	if err := spec.Validate(); err != nil {
		return store, nil, err
	}
	store, err := store.normalized()
	if err != nil {
		return store, nil, err
	}
	if store.AuxText != nil {
		return store, nil, errors.New("core: store: AuxText is owned by the scenario lowering")
	}
	// The cache plan shapes each study's persisted text but is not
	// part of the StudySpec, so fold it into the fingerprint salt:
	// editing a spec's cache grid between runs then surfaces as a
	// manifest mismatch instead of silently merging the old
	// experiments' text.
	store.Salt = cachePlanSalt(store.Salt, spec.CachePlan())
	keys := &scenarioKeys{}
	if spec.IsReplay() {
		keys.paths = spec.ReplayTraces()
		keys.specs = make([]StudySpec, len(keys.paths))
		keys.labels = make([]string, len(keys.paths))
		keys.fps = make([]string, len(keys.paths))
		// A replay study's cost scales with its trace, so claim the
		// biggest files first (same longest-first policy as specCost).
		keys.costs = make([]float64, len(keys.paths))
		for i, path := range keys.paths {
			keys.specs[i] = StudySpec{Label: replayLabel(path)}
			keys.labels[i] = keys.specs[i].Label
			keys.fps[i], err = replayFingerprint(store.Salt, keys.labels[i], path)
			if err != nil {
				return store, nil, err
			}
			if fi, err := os.Stat(path); err == nil {
				keys.costs[i] = float64(fi.Size())
			}
		}
		return store, keys, nil
	}
	keys.specs = ScenarioSpecs(spec)
	keys.labels, keys.fps = specKeys(store.Salt, keys.specs)
	keys.costs = specCosts(keys.specs)
	return store, keys, nil
}

// MergeScenarioStore reconstructs a stored scenario from its run
// directory without executing anything: the returned Run is nil, and
// Result is non-nil exactly when every study's outcome file exists
// (Merge.Missing empty), in which case Result.Format() is
// byte-identical to a single-process RunScenario. This is the serve
// daemon's cache probe: an identical spec whose directory is already
// fully committed is answered straight from disk.
func MergeScenarioStore(spec *scenario.Spec, store StoreConfig) (*ScenarioStoreRun, error) {
	store, keys, err := scenarioStoreKeys(spec, store)
	if err != nil {
		return nil, err
	}
	merge, err := mergeStore(store, keys.specs, keys.fps)
	if err != nil {
		return nil, err
	}
	out := &ScenarioStoreRun{Merge: merge}
	if len(merge.Missing) == 0 {
		out.Result = &ScenarioResult{Spec: spec, Sweep: merge.Result, CacheTexts: merge.Aux}
	}
	return out, nil
}

// StoreCodeSalt returns the store's code-version fingerprint salt.
// Callers that content-address run directories by spec (the serve
// daemon's job keys) fold it into their keys so a salt bump routes
// jobs to fresh directories instead of tripping the old manifests.
func StoreCodeSalt() string { return storeSalt }

// cachePlanSalt renders a scenario's resolved cache plan into the
// fingerprint salt. The nested pointers are rendered by value (a
// plain %+v would print their addresses).
func cachePlanSalt(salt string, plan *scenario.ResolvedCache) string {
	var b strings.Builder
	if salt != "" {
		b.WriteString(salt)
		b.WriteString("+")
	}
	b.WriteString("plan:")
	if plan == nil {
		b.WriteString("none")
		return b.String()
	}
	fmt.Fprintf(&b, "fig8=%v", plan.Fig8Buffers)
	if plan.Fig9 != nil {
		fmt.Fprintf(&b, "|fig9=%+v", *plan.Fig9)
	}
	if plan.Combined != nil {
		fmt.Fprintf(&b, "|combined=%+v", *plan.Combined)
	}
	return b.String()
}

// HasManifest reports whether dir already holds a run (the CLI's
// -resume guard: starting a non-resume run in a populated directory
// is refused there).
func HasManifest(dir string) bool {
	_, err := os.Stat(manifestPath(dir))
	return err == nil
}
