// The persistent run store: sharded, resumable sweep execution. A
// full-scale multi-seed sweep is hours of work, and until now it was
// one monolithic process that lost everything on interruption. The
// store turns a sweep into a directory of per-study outcome files
// keyed by a configuration fingerprint (the run-manifest shape
// simulation harnesses converge on): any number of processes, started
// and restarted at any time, each execute a deterministic slice of
// the not-yet-done studies and persist each outcome as it completes.
// A merge pass then loads every outcome file and reconstructs a
// SweepResult whose Format output is byte-identical to a
// single-process RunSweep -- the worker-count-invariance discipline
// of PRs 2-4, extended across processes and restarts
// (TestSweepStoreShardResumeIdentical pins it).
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// storeVersion is the run-store layout version. It salts every
// fingerprint, so a layout or simulator-output change makes old
// outcome files unreachable (and the manifest check reports the
// mismatch) instead of silently merging stale results.
const storeVersion = 1

// storeSalt is the code-version salt folded into every fingerprint.
// Bump it whenever any simulator, analysis, or formatting change
// alters study output for an unchanged StudySpec.
const storeSalt = "charisma-store-v1"

// StoreConfig selects the run directory and this process's shard of
// the work.
type StoreConfig struct {
	// Dir is the run directory; it is created if absent. One directory
	// holds one sweep (the manifest pins the spec list).
	Dir string
	// Shard / NumShards partition the spec list round-robin by spec
	// index: this process executes spec i only when
	// i % NumShards == Shard (among specs with no outcome file yet).
	// NumShards <= 1 means unsharded; the partition is stable across
	// restarts, so resuming a killed shard re-runs exactly its own
	// unfinished specs.
	Shard     int
	NumShards int
	// SpillTraces additionally writes each study's trace to
	// <fingerprint>.trc through the streaming pipeline (the study then
	// runs with bounded trace memory, see RunStudyStreaming). It is
	// incompatible with KeepEvents/KeepReports/PostStudy, which need
	// the in-memory event stream.
	SpillTraces bool
	// Salt is an optional caller salt folded into every fingerprint on
	// top of the built-in code-version salt.
	Salt string
	// AuxText, when non-nil, is called after spec i completes and its
	// return value is persisted with the outcome and restored by the
	// merge (the scenario engine stores its per-study cache-experiment
	// text this way).
	AuxText func(i int) string
}

// normalized returns the store config with the shard fields clamped
// to the unsharded defaults, or an error for a nonsensical shape.
func (sc StoreConfig) normalized() (StoreConfig, error) {
	if sc.Dir == "" {
		return sc, errors.New("core: store: empty run directory")
	}
	if sc.NumShards <= 0 {
		sc.NumShards = 1
	}
	if sc.Shard < 0 || sc.Shard >= sc.NumShards {
		return sc, fmt.Errorf("core: store: shard %d out of range [0, %d)", sc.Shard, sc.NumShards)
	}
	return sc, nil
}

// fingerprintDoc is the canonical form a spec fingerprint hashes:
// every field that determines a study's output, plus the
// code-version salt. Workload and Machine are the full override
// parameter structs (nil for the calibrated defaults), so any
// configuration difference -- not just the label -- changes the
// fingerprint.
type fingerprintDoc struct {
	Salt     string
	Label    string
	Seed     uint64
	Scale    float64
	Workload *workload.Params
	Machine  *machine.Config
	// Replay identifies a replay study's input (which has no
	// simulation config at all): the trace path plus the file's size
	// and mtime, so regenerating a trace in place moves the key
	// instead of silently reusing the old outcome.
	Replay      string
	ReplaySize  int64
	ReplayMtime int64
}

// fingerprint hashes the doc to the outcome-file key. The rendering
// is fmt-based rather than JSON: the override structs are plain
// value types all the way down, and fmt never fails on the
// non-finite floats a hand-built config can carry (json.Marshal
// would). Strings that a caller controls are %q-escaped so a crafted
// label cannot collide with a different field split.
func (d fingerprintDoc) fingerprint() string {
	salt := storeSalt
	if d.Salt != "" {
		salt = storeSalt + "+" + d.Salt
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|salt=%q|label=%q|seed=%d|scale=%g", storeVersion, salt, d.Label, d.Seed, d.Scale)
	if d.Workload != nil {
		fmt.Fprintf(&b, "|wl=%+v", *d.Workload)
	}
	if d.Machine != nil {
		fmt.Fprintf(&b, "|mc=%+v", *d.Machine)
	}
	if d.Replay != "" {
		fmt.Fprintf(&b, "|replay=%q|size=%d|mtime=%d", d.Replay, d.ReplaySize, d.ReplayMtime)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// SpecFingerprint returns the run-store key of one study spec under
// the given extra salt ("" for none). The key covers the label, the
// full normalized configuration, and the store's code-version salt.
func SpecFingerprint(salt string, spec StudySpec) string {
	cfg := spec.Config.normalized()
	return fingerprintDoc{
		Salt:     salt,
		Label:    spec.Label,
		Seed:     cfg.Seed,
		Scale:    cfg.Scale,
		Workload: cfg.Workload,
		Machine:  cfg.Machine,
	}.fingerprint()
}

// replayFingerprint keys a replay study by its input trace: the
// path plus the file's current size and mtime, so a trace
// regenerated in place invalidates the stored outcome (surfaced as
// a manifest mismatch) rather than being silently skipped.
func replayFingerprint(salt, label, path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("core: store: fingerprinting replay trace: %w", err)
	}
	return fingerprintDoc{
		Salt:        salt,
		Label:       label,
		Replay:      path,
		ReplaySize:  fi.Size(),
		ReplayMtime: fi.ModTime().UnixNano(),
	}.fingerprint(), nil
}

// storedOutcome is the JSON schema of one outcome file. Writing it is
// the commit point of a study: a spec is "done" exactly when its
// outcome file exists and parses.
type storedOutcome struct {
	StoreVersion  int
	Fingerprint   string
	Label         string
	ReportText    string
	AuxText       string `json:",omitempty"`
	Header        trace.Header
	Horizon       int64
	EventCount    int
	TraceRecords  int64
	TraceMessages int64
	DiskOps       int64
	// TraceFile names the sibling spilled trace ("<fp>.trc") when the
	// run spilled traces.
	TraceFile string `json:",omitempty"`
}

// outcomePath returns the outcome file for a fingerprint.
func outcomePath(dir, fp string) string { return filepath.Join(dir, fp+".json") }

// tracePath returns the spilled-trace file for a fingerprint.
func tracePath(dir, fp string) string { return filepath.Join(dir, fp+".trc") }

// writeFileAtomic writes data to path via a same-directory temp file
// and rename, so a concurrently merging process never observes a
// partial file. The temp name is unique per writer (os.CreateTemp),
// so even two processes mistakenly running the same shard id publish
// whole files -- last rename wins with identical deterministic
// content -- rather than truncating each other's temp file.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// storeManifest pins a run directory to one spec list: resuming with
// a different sweep (or after a code-version salt bump) is an error
// instead of a silent half-merge of two different runs.
type storeManifest struct {
	StoreVersion int
	NumSpecs     int
	Labels       []string
	Fingerprints []string
}

// manifestPath is the manifest file inside a run directory.
func manifestPath(dir string) string { return filepath.Join(dir, "manifest.json") }

// ensureManifest creates the run directory and its manifest, or
// verifies the existing manifest matches this run's spec list.
func ensureManifest(store StoreConfig, labels, fps []string) error {
	if err := os.MkdirAll(store.Dir, 0o755); err != nil {
		return fmt.Errorf("core: store: %w", err)
	}
	want := storeManifest{StoreVersion: storeVersion, NumSpecs: len(fps), Labels: labels, Fingerprints: fps}
	data, err := json.MarshalIndent(&want, "", "  ")
	if err != nil {
		return fmt.Errorf("core: store: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	existing, err := os.ReadFile(manifestPath(store.Dir))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return writeFileAtomic(manifestPath(store.Dir), data)
	case err != nil:
		return fmt.Errorf("core: store: reading manifest: %w", err)
	}
	var got storeManifest
	if err := json.Unmarshal(existing, &got); err != nil {
		return fmt.Errorf("core: store: corrupt manifest in %s: %w", store.Dir, err)
	}
	if got.StoreVersion != want.StoreVersion || got.NumSpecs != want.NumSpecs ||
		!equalStrings(got.Fingerprints, want.Fingerprints) {
		return fmt.Errorf("core: store: %s holds a different run (manifest fingerprints differ); use a fresh directory", store.Dir)
	}
	return nil
}

// equalStrings reports element-wise equality.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StoreRun reports what one RunSweepStore (or scenario-store)
// invocation did. Ran and Skipped are spec indices in ascending
// order; specs belonging to other shards appear in neither.
type StoreRun struct {
	Ran     []int // executed and persisted by this invocation
	Skipped []int // outcome file already existed (this shard's specs only)
	Elapsed time.Duration
	// Err records the context error when the run was cancelled; specs
	// left unrun stay pending for the next resume.
	Err error
}

// persistOutcome writes one completed outcome (and optionally its
// spilled trace name) as the study's commit record.
func persistOutcome(store StoreConfig, fp string, out *StudyOutcome, aux, traceFile string) error {
	doc := storedOutcome{
		StoreVersion:  storeVersion,
		Fingerprint:   fp,
		Label:         out.Spec.Label,
		ReportText:    out.ReportText,
		AuxText:       aux,
		Header:        out.Header,
		Horizon:       int64(out.Horizon),
		EventCount:    out.EventCount,
		TraceRecords:  out.TraceRecords,
		TraceMessages: out.TraceMessages,
		DiskOps:       out.DiskOps,
		TraceFile:     traceFile,
	}
	data, err := json.Marshal(&doc)
	if err != nil {
		return fmt.Errorf("core: store: encoding outcome %s: %w", fp, err)
	}
	if err := writeFileAtomic(outcomePath(store.Dir, fp), data); err != nil {
		return fmt.Errorf("core: store: persisting outcome %s: %w", fp, err)
	}
	return nil
}

// loadOutcome reads and validates one outcome file; os.ErrNotExist
// passes through for pending specs.
func loadOutcome(dir, fp string) (*storedOutcome, error) {
	data, err := os.ReadFile(outcomePath(dir, fp))
	if err != nil {
		return nil, err
	}
	var doc storedOutcome
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("core: store: corrupt outcome %s: %w", outcomePath(dir, fp), err)
	}
	if doc.StoreVersion != storeVersion || doc.Fingerprint != fp {
		return nil, fmt.Errorf("core: store: outcome %s does not match its key (version %d, fingerprint %s)",
			outcomePath(dir, fp), doc.StoreVersion, doc.Fingerprint)
	}
	return &doc, nil
}

// runStore is the shard executor shared by the sweep and replay
// paths: it filters the spec list down to this shard's pending slice
// and runs exec for each, persisting outcomes as they complete. exec
// returns the finished outcome plus its auxiliary text; traceFile
// (pre-resolved per spec) is recorded in the outcome when non-empty.
func runStore(ctx context.Context, workers int, store StoreConfig, labels, fps []string,
	exec func(worker, specIdx int) (StudyOutcome, string, string, error)) (*StoreRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ensureManifest(store, labels, fps); err != nil {
		return nil, err
	}
	run := &StoreRun{}
	var mine []int
	for i := range fps {
		if i%store.NumShards != store.Shard {
			continue
		}
		if _, err := os.Stat(outcomePath(store.Dir, fps[i])); err == nil {
			run.Skipped = append(run.Skipped, i)
			continue
		}
		mine = append(mine, i)
	}
	start := time.Now()
	errs := make([]error, len(mine))
	done := make([]bool, len(mine))
	parallelEach(ctx, len(mine), workers, func(w, j int) {
		i := mine[j]
		out, aux, traceFile, err := exec(w, i)
		if err == nil {
			err = persistOutcome(store, fps[i], &out, aux, traceFile)
		}
		if err != nil {
			errs[j] = err
			return
		}
		done[j] = true
	})
	run.Elapsed = time.Since(start)
	run.Err = ctx.Err()
	for j, ok := range done {
		if ok {
			run.Ran = append(run.Ran, mine[j])
		}
	}
	for _, err := range errs {
		if err != nil {
			return run, err
		}
	}
	return run, nil
}

// RunSweepStore executes this shard's slice of cfg.Specs against the
// run directory: specs whose outcome file already exists are skipped,
// the rest are fanned across cfg.Workers goroutines (one reusable
// Arena each, exactly like RunSweep), and every outcome is persisted
// the moment it completes -- so a killed process loses at most its
// in-flight studies, and resuming re-runs only what is missing.
// Combine the shards' files with MergeSweepStore.
func RunSweepStore(ctx context.Context, cfg SweepConfig, store StoreConfig) (*StoreRun, error) {
	store, err := store.normalized()
	if err != nil {
		return nil, err
	}
	if cfg.KeepEvents || cfg.KeepReports {
		return nil, errors.New("core: store: KeepEvents/KeepReports are incompatible with a persistent store (outcome files hold text and counters only)")
	}
	if store.SpillTraces && cfg.PostStudy != nil {
		return nil, errors.New("core: store: SpillTraces is incompatible with PostStudy (the streaming path materializes no event stream)")
	}
	labels, fps := specKeys(store.Salt, cfg.Specs)
	arenas := make([]*Arena, workerCount(cfg.Workers, len(cfg.Specs)))
	return runStore(ctx, cfg.Workers, store, labels, fps,
		func(w, i int) (StudyOutcome, string, string, error) {
			if store.SpillTraces {
				out, err := spillSpec(cfg.Specs[i], store, fps[i])
				return out, auxFor(store, i), fps[i] + ".trc", err
			}
			if arenas[w] == nil {
				arenas[w] = NewArena()
			}
			out := runSpec(arenas[w], cfg, cfg.Specs[i], i)
			return out, auxFor(store, i), "", nil
		})
}

// auxFor evaluates the store's AuxText hook for spec i.
func auxFor(store StoreConfig, i int) string {
	if store.AuxText == nil {
		return ""
	}
	return store.AuxText(i)
}

// specKeys fingerprints a spec list.
func specKeys(salt string, specs []StudySpec) (labels, fps []string) {
	labels = make([]string, len(specs))
	fps = make([]string, len(specs))
	for i, s := range specs {
		labels[i] = s.Label
		fps[i] = SpecFingerprint(salt, s)
	}
	return labels, fps
}

// workerCount resolves a Workers field the way parallelEach does.
func workerCount(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// spillSpec runs one spec through the streaming study pipeline,
// writing its trace to <fp>.trc (via a temp name, renamed before the
// outcome commits). The outcome carries the same report text and
// counters the batch path produces (TestSweepStoreSpillIdentical pins
// the merged bytes against RunSweep).
func spillSpec(spec StudySpec, store StoreConfig, fp string) (StudyOutcome, error) {
	final := tracePath(store.Dir, fp)
	f, err := os.CreateTemp(store.Dir, fp+".trc.tmp*")
	if err != nil {
		return StudyOutcome{}, fmt.Errorf("core: store: spilling trace: %w", err)
	}
	tmp := f.Name()
	res, err := RunStudyStreaming(spec.Config, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return StudyOutcome{}, err
	}
	if err := os.Chmod(tmp, 0o644); err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		os.Remove(tmp)
		return StudyOutcome{}, fmt.Errorf("core: store: spilling trace: %w", err)
	}
	return StudyOutcome{
		Spec:          spec,
		Done:          true,
		ReportText:    res.Report.Format(),
		Header:        res.Header,
		Horizon:       res.Horizon,
		EventCount:    int(res.EventCount),
		TraceRecords:  res.TraceRecords,
		TraceMessages: res.TraceMessages,
		DiskOps:       res.DiskOps,
	}, nil
}

// SweepMerge is the reconstruction of a (possibly still running)
// stored sweep.
type SweepMerge struct {
	// Result holds one outcome per spec, loaded from the run
	// directory; specs with no outcome file yet have Done == false.
	// When Missing is empty, Result.Format() is byte-identical to a
	// single-process RunSweep over the same specs.
	Result *SweepResult
	// Aux holds the restored per-spec auxiliary texts.
	Aux []string
	// Missing lists spec indices whose outcome file does not exist
	// yet (still pending, or owned by a shard that has not run).
	Missing []int
}

// MergeSweepStore loads every spec's outcome file from the run
// directory and reconstructs the merged sweep. It never executes
// anything, so it is safe to call concurrently with running shards:
// a spec is either committed (its file parses) or missing.
func MergeSweepStore(cfg SweepConfig, store StoreConfig) (*SweepMerge, error) {
	store, err := store.normalized()
	if err != nil {
		return nil, err
	}
	_, fps := specKeys(store.Salt, cfg.Specs)
	return mergeStore(store, cfg.Specs, fps)
}

// mergeStore loads outcomes for an already-fingerprinted spec list.
func mergeStore(store StoreConfig, specs []StudySpec, fps []string) (*SweepMerge, error) {
	m := &SweepMerge{
		Result: &SweepResult{Outcomes: make([]StudyOutcome, len(specs))},
		Aux:    make([]string, len(specs)),
	}
	for i := range specs {
		m.Result.Outcomes[i].Spec = specs[i]
		doc, err := loadOutcome(store.Dir, fps[i])
		if errors.Is(err, os.ErrNotExist) {
			m.Missing = append(m.Missing, i)
			continue
		}
		if err != nil {
			return nil, err
		}
		m.Result.Outcomes[i] = StudyOutcome{
			Spec:          specs[i],
			Done:          true,
			ReportText:    doc.ReportText,
			Header:        doc.Header,
			Horizon:       sim.Time(doc.Horizon),
			EventCount:    doc.EventCount,
			TraceRecords:  doc.TraceRecords,
			TraceMessages: doc.TraceMessages,
			DiskOps:       doc.DiskOps,
		}
		m.Aux[i] = doc.AuxText
	}
	return m, nil
}

// ScenarioStoreRun is one sharded scenario invocation's outcome.
type ScenarioStoreRun struct {
	Run   *StoreRun
	Merge *SweepMerge
	// Result is the fully merged scenario, non-nil only when every
	// study's outcome file exists (Merge.Missing is empty). Its
	// Format() is then byte-identical to a single-process
	// RunScenario.
	Result *ScenarioResult
}

// RunScenarioStore lowers a scenario onto the persistent store: the
// same study list and cache experiments as RunScenario, but each
// study's report and cache-experiment text are persisted as they
// complete, this process executes only its shard's pending slice,
// and the merged result is reconstructed from the run directory.
// Replay scenarios shard over their trace files the same way.
func RunScenarioStore(ctx context.Context, spec *scenario.Spec, store StoreConfig) (*ScenarioStoreRun, error) {
	if spec == nil {
		return nil, errors.New("core: nil scenario spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	store, err := store.normalized()
	if err != nil {
		return nil, err
	}
	if store.AuxText != nil {
		return nil, errors.New("core: store: AuxText is owned by the scenario lowering")
	}
	plan := spec.CachePlan()
	// The cache plan shapes each study's persisted text but is not
	// part of the StudySpec, so fold it into the fingerprint salt:
	// editing a spec's cache grid between runs then surfaces as a
	// manifest mismatch instead of silently merging the old
	// experiments' text.
	store.Salt = cachePlanSalt(store.Salt, plan)

	var specs []StudySpec
	var run *StoreRun
	var fps []string
	if spec.IsReplay() {
		paths := spec.ReplayTraces()
		specs = make([]StudySpec, len(paths))
		labels := make([]string, len(paths))
		fps = make([]string, len(paths))
		for i, path := range paths {
			specs[i] = StudySpec{Label: replayLabel(path)}
			labels[i] = specs[i].Label
			fps[i], err = replayFingerprint(store.Salt, labels[i], path)
			if err != nil {
				return nil, err
			}
		}
		run, err = runStore(ctx, spec.Workers, store, labels, fps,
			func(_, i int) (StudyOutcome, string, string, error) {
				out, text, err := replayStudy(paths[i], plan)
				if err != nil {
					return out, "", "", fmt.Errorf("core: replay %s: %w", labels[i], err)
				}
				out.Spec = specs[i]
				return out, text, "", nil
			})
	} else {
		specs = ScenarioSpecs(spec)
		// The cache experiments run on the worker right after each
		// study, exactly as in RunScenario; the store persists their
		// text with the outcome so a resumed or merging process never
		// re-simulates a finished study to recover it.
		texts := make([]string, len(specs))
		sweepCfg := SweepConfig{Specs: specs, Workers: spec.Workers}
		if plan != nil {
			sweepCfg.PostStudy = func(i int, r *Result) {
				texts[i] = cacheExperimentText(plan, r.Events, r.BlockBytes())
			}
		}
		store.AuxText = func(i int) string { return texts[i] }
		_, fps = specKeys(store.Salt, specs)
		run, err = RunSweepStore(ctx, sweepCfg, store)
	}
	if err != nil {
		return &ScenarioStoreRun{Run: run}, err
	}
	merge, err := mergeStore(store, specs, fps)
	if err != nil {
		return &ScenarioStoreRun{Run: run}, err
	}
	out := &ScenarioStoreRun{Run: run, Merge: merge}
	if len(merge.Missing) == 0 {
		out.Result = &ScenarioResult{Spec: spec, Sweep: merge.Result, CacheTexts: merge.Aux}
	}
	return out, nil
}

// cachePlanSalt renders a scenario's resolved cache plan into the
// fingerprint salt. The nested pointers are rendered by value (a
// plain %+v would print their addresses).
func cachePlanSalt(salt string, plan *scenario.ResolvedCache) string {
	var b strings.Builder
	if salt != "" {
		b.WriteString(salt)
		b.WriteString("+")
	}
	b.WriteString("plan:")
	if plan == nil {
		b.WriteString("none")
		return b.String()
	}
	fmt.Fprintf(&b, "fig8=%v", plan.Fig8Buffers)
	if plan.Fig9 != nil {
		fmt.Fprintf(&b, "|fig9=%+v", *plan.Fig9)
	}
	if plan.Combined != nil {
		fmt.Fprintf(&b, "|combined=%+v", *plan.Combined)
	}
	return b.String()
}

// HasManifest reports whether dir already holds a run (the CLI's
// -resume guard: starting a non-resume run in a populated directory
// is refused there).
func HasManifest(dir string) bool {
	_, err := os.Stat(manifestPath(dir))
	return err == nil
}
