package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// conformanceBands are the in-code tolerance bands the twin must meet
// against the simulation's observed per-I/O-node queue counters:
// utilization within 5% relative (or a small absolute epsilon for
// near-idle nodes), machine-wide mean queue wait within 25% on
// non-saturated configurations. The twin walks the same workload on
// the same CFS/disk/network models, so the only admissible divergence
// is event tie-breaking around the tracing pipeline the twin omits.
const (
	rhoRelBand  = 0.05
	rhoAbsEps   = 1e-4 // utilization points; absorbs near-zero nodes
	waitRelBand = 0.25
	waitAbsEps  = 100e-6 // seconds; absorbs near-zero waits
)

// within reports |got-want| <= rel*|want| + abs.
func within(got, want, rel, abs float64) bool {
	return math.Abs(got-want) <= rel*math.Abs(want)+abs
}

// TestTwinConformance runs every non-replay corpus scenario study
// twice — once through the full traced simulation, once through the
// analytical twin — and holds the twin's prediction inside the bands.
func TestTwinConformance(t *testing.T) {
	ran := 0
	for _, path := range corpusPaths(t) {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		spec := loadCorpusSpec(t, path)
		if spec.IsReplay() {
			// A replay scenario has no workload to walk: its timing is
			// already recorded.
			continue
		}
		for _, ss := range ScenarioSpecs(spec) {
			ss := ss
			ran++
			t.Run(name+"/"+ss.Label, func(t *testing.T) {
				t.Parallel()
				res := RunStudy(ss.Config)
				pred := Predict(ss.Config)

				if pred.Horizon != res.Horizon {
					t.Fatalf("twin horizon %v != study horizon %v", pred.Horizon, res.Horizon)
				}
				if len(pred.Nodes) != len(res.IOQueue) {
					t.Fatalf("twin models %d I/O nodes, study ran %d", len(pred.Nodes), len(res.IOQueue))
				}
				h := res.Horizon.ToSeconds()
				var simBatches int64
				var simWaitSum float64
				for i, q := range res.IOQueue {
					simRho := q.Service.ToSeconds() / h
					if !within(pred.Nodes[i].Rho, simRho, rhoRelBand, rhoAbsEps) {
						t.Errorf("node %d: twin utilization %.6f vs simulated %.6f (band %.0f%% + %g)",
							i, pred.Nodes[i].Rho, simRho, 100*rhoRelBand, rhoAbsEps)
					}
					simBatches += q.Batches
					simWaitSum += q.Wait.ToSeconds()
				}
				if simBatches == 0 {
					if pred.TotalBatches() != 0 {
						t.Fatalf("study served no batches but twin walked %d", pred.TotalBatches())
					}
					return
				}
				simMeanWait := simWaitSum / float64(simBatches)
				if !pred.Saturated() && !within(pred.MeanWait(), simMeanWait, waitRelBand, waitAbsEps) {
					t.Errorf("machine-wide mean wait: twin %.6fs vs simulated %.6fs (band %.0f%% + %gs)",
						pred.MeanWait(), simMeanWait, 100*waitRelBand, waitAbsEps)
				}
			})
		}
	}
	if ran < 8 {
		t.Fatalf("conformance covered only %d studies", ran)
	}
}
