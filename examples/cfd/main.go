// CFD example: write a parallel application directly against the CFS
// client API (the same API the workload archetypes use), run it on the
// simulated iPSC/860 with tracing enabled, and analyze its own trace.
//
// The app is a toy domain-decomposed solver: every node reads the
// shared mesh, reads its subdomain of the flow field with ghost-cell
// overlap, iterates, and checkpoints its subdomain to a private file
// each iteration.
//
//	go run ./examples/cfd
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/cfs"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

const (
	nodes      = 16
	iterations = 4
	meshBytes  = 24 * 1024
	fieldBytes = 2 << 20
)

func solverNode(ctx *machine.NodeCtx) {
	p, c := ctx.P, ctx.CFS

	// Read the whole mesh in 1 KB records.
	mesh, err := c.Open(p, "/shared/mesh", cfs.ORdOnly, cfs.Mode0)
	if err != nil {
		panic(err)
	}
	for {
		n, err := mesh.Read(p, 1024)
		if err != nil || n == 0 {
			break
		}
	}
	mesh.Close(p)

	// Read this node's subdomain plus one chunk of ghost cells on
	// each side, in a single request.
	field, err := c.Open(p, "/shared/field", cfs.ORdOnly, cfs.Mode0)
	if err != nil {
		panic(err)
	}
	chunk := int64(fieldBytes / nodes)
	lo := int64(ctx.Rank-1) * chunk
	if lo < 0 {
		lo = 0
	}
	hi := int64(ctx.Rank+2) * chunk
	if hi > fieldBytes {
		hi = fieldBytes
	}
	field.ReadAt(p, lo, hi-lo)
	field.Close(p)

	// Iterate: compute, then checkpoint the subdomain privately.
	for it := 0; it < iterations; it++ {
		p.Sleep(30 * sim.Second)
		name := fmt.Sprintf("/out/checkpoint.%d.%d", it, ctx.Rank)
		ck, err := c.Open(p, name, cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
		if err != nil {
			panic(err)
		}
		ck.Write(p, 256)   // header
		ck.Write(p, chunk) // subdomain dump
		ck.Close(p)
	}
}

func main() {
	k := sim.New()
	m := machine.New(k, machine.NASConfig(7))
	if _, err := m.FS().Preload("/shared/mesh", meshBytes); err != nil {
		panic(err)
	}
	if _, err := m.FS().Preload("/shared/field", fieldBytes); err != nil {
		panic(err)
	}

	m.Submit(machine.JobSpec{Nodes: nodes, Traced: true, Body: solverNode})
	k.Run()

	tr := m.FinishTracing()
	events := trace.Postprocess(tr)
	r := analysis.Analyze(tr.Header, events, m.Kernel().Now())

	fmt.Println("CFD example: one traced 16-node solver run")
	fmt.Printf("trace events: %d (%d reads, %d writes)\n",
		len(events), r.ReadCountBySize.Len(), r.WriteCountBySize.Len())
	fmt.Printf("files opened: %d (%d write-only, %d read-only)\n",
		r.FilesOpened, r.FilesByClass[analysis.WriteOnly], r.FilesByClass[analysis.ReadOnly])
	fmt.Println()
	fmt.Print(r.FormatTable2())
	fmt.Println()
	fmt.Print(r.FormatFig7())
	fmt.Println()
	fmt.Printf("job wall time: %v; disk ops: %d; trace messages: %d\n",
		m.JobRecords()[0].End-m.JobRecords()[0].Start,
		m.FS().TotalDiskOps(), m.TraceMessages())
}
