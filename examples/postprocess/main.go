// Postprocess example: demonstrate the trace pipeline's clock-drift
// correction (Section 3.2 of the paper). It runs a two-node job whose
// nodes alternate writes in true time, then compares the event order
// recovered with and without the double-timestamp drift correction.
//
//	go run ./examples/postprocess
package main

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	k := sim.New()
	cfg := machine.NASConfig(11)
	// Exaggerate the clock problem so the effect is visible in a
	// short run: up to half a second of startup skew, 500 ppm drift.
	cfg.MaxClockOffset = 500 * sim.Millisecond
	cfg.MaxClockDriftPPM = 500
	m := machine.New(k, cfg)

	// Two nodes write strictly alternately in true time; the file
	// offset encodes the true global order.
	const writes = 40
	m.Submit(machine.JobSpec{
		Nodes:  2,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			h, err := ctx.CFS.Open(ctx.P, "/f", cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
			if err != nil {
				panic(err)
			}
			for i := 0; i < writes; i++ {
				// Node 0 writes at even ticks, node 1 at odd ticks.
				ctx.P.Sleep(200 * sim.Millisecond)
				h.WriteAt(ctx.P, int64(2*i+ctx.Rank)*100, 100)
			}
			h.Close(ctx.P)
		},
	})
	k.Run()
	tr := m.FinishTracing()

	fmt.Println("Clock-drift correction (Section 3.2)")
	for node := 0; node < 2; node++ {
		c := m.Clock(node)
		fmt.Printf("  node %d clock: offset %v, drift %+.0f ppm\n",
			node, c.Offset(), c.DriftPPM())
	}

	fits := trace.FitClocks(tr)
	for node := uint16(0); node < 2; node++ {
		if fit, ok := fits[node]; ok {
			fmt.Printf("  node %d estimated map: offset %.0f us, slope %.6f\n",
				node, fit.Offset, fit.Slope)
		}
	}

	trueOrder := func(ev trace.Event) int64 { return ev.Offset }
	score := func(events []trace.Event) (int, int) {
		var writesOnly []trace.Event
		for _, ev := range events {
			if ev.Type == trace.EvWrite {
				writesOnly = append(writesOnly, ev)
			}
		}
		inversions := trace.OrderError(writesOnly, trueOrder)
		return inversions, len(writesOnly)
	}

	rawInv, n := score(trace.PostprocessRaw(tr))
	corrInv, _ := score(trace.Postprocess(tr))
	fmt.Printf("\nevent-order inversions over %d writes:\n", n)
	fmt.Printf("  raw local timestamps:   %d\n", rawInv)
	fmt.Printf("  after drift correction: %d\n", corrInv)
	if corrInv < rawInv {
		fmt.Println("the double-timestamp correction recovered the true interleaving")
	} else {
		fmt.Println("warning: correction did not improve ordering on this seed")
	}
}
