// Strided example: the paper's Section 5 conclusion is that the
// file-system interface should let programs express a regular access
// pattern -- record size plus interval -- as one strided request
// instead of many small ones. This example runs the same interleaved
// column read both ways on the simulated machine and compares the
// simulated wall time and message load.
//
//	go run ./examples/strided
package main

import (
	"fmt"

	"repro/internal/cfs"
	"repro/internal/machine"
	"repro/internal/sim"
)

const (
	nodes    = 8
	rec      = 512        // bytes each node needs from every row
	row      = 8 * 4096   // matrix row size
	rows     = 256        // rows in the file
	fileSize = row * rows // 8 MB
)

// run executes the column read on every node, strided or looped, and
// returns the simulated time the job took and the number of CFS read
// requests the nodes issued.
func run(strided bool) (sim.Time, int64) {
	k := sim.New()
	m := machine.New(k, machine.NASConfig(3))
	if _, err := m.FS().Preload("/matrix", fileSize); err != nil {
		panic(err)
	}
	m.Submit(machine.JobSpec{
		Nodes:  nodes,
		Traced: true,
		Body: func(ctx *machine.NodeCtx) {
			h, err := ctx.CFS.Open(ctx.P, "/matrix", cfs.ORdOnly, cfs.Mode0)
			if err != nil {
				panic(err)
			}
			col := int64(ctx.Rank) * rec * 2 // this node's column offset
			if strided {
				h.ReadStrided(ctx.P, col, rec, row, rows)
			} else {
				for r := int64(0); r < rows; r++ {
					h.ReadAt(ctx.P, col+r*row, rec)
				}
			}
			h.Close(ctx.P)
		},
	})
	k.Run()
	requests := int64(0)
	for _, blk := range m.FinishTracing().Blocks {
		for _, ev := range blk.Events {
			if ev.IsData() {
				requests++
			}
		}
	}
	rec := m.JobRecords()[0]
	return rec.End - rec.Start, requests
}

func main() {
	loopTime, loopMsgs := run(false)
	stridedTime, stridedMsgs := run(true)

	fmt.Println("Strided requests (the paper's Section 5 recommendation)")
	fmt.Printf("workload: %d nodes each read %d B of every %d KB row, %d rows\n\n",
		nodes, rec, row/1024, rows)
	fmt.Printf("%-28s %14s %12s\n", "", "simulated time", "requests")
	fmt.Printf("%-28s %14v %12d\n", "one request per record:", loopTime, loopMsgs)
	fmt.Printf("%-28s %14v %12d\n", "one strided request:", stridedTime, stridedMsgs)
	fmt.Printf("\nspeedup %.1fx with %.0fx fewer requests\n",
		float64(loopTime)/float64(stridedTime),
		float64(loopMsgs)/float64(stridedMsgs))
	fmt.Println("\nThe strided call expresses the whole pattern at once, so the")
	fmt.Println("request-per-record software overhead -- which dominates small")
	fmt.Println("transfers on the iPSC/860 -- is paid once per I/O node instead")
	fmt.Println("of once per record.")
}
