// Quickstart: run a small CHARISMA study end to end and print the
// headline numbers from each part of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	// A study at 5% of the paper's 3016-job population. Everything is
	// deterministic in the seed.
	res := core.RunStudy(core.DefaultConfig(1994, 0.05))
	r := res.Report

	fmt.Println("CHARISMA reproduction: quickstart")
	fmt.Printf("simulated %.1f hours; %d jobs; %d files opened; %d trace events\n\n",
		res.Horizon.ToSeconds()/3600, r.TotalJobs, r.FilesOpened, len(res.Events))

	fmt.Printf("machine idle %.0f%% of the time, >1 job running %.0f%% (Figure 1)\n",
		r.IdlePct(), r.MultiJobPct())

	total := float64(r.FilesOpened)
	fmt.Printf("file classes (Section 4.2): %.0f%% write-only, %.0f%% read-only, %.0f%% read-write, %.0f%% untouched\n",
		100*float64(r.FilesByClass[analysis.WriteOnly])/total,
		100*float64(r.FilesByClass[analysis.ReadOnly])/total,
		100*float64(r.FilesByClass[analysis.ReadWrite])/total,
		100*float64(r.FilesByClass[analysis.Untouched])/total)

	fmt.Printf("reads under 4000 B: %.1f%% of requests moving %.1f%% of the data (Figure 4)\n",
		100*r.SmallReadFrac, 100*r.SmallReadData)

	fmt.Printf("files using 0 or 1 interval sizes: %.1f%% (Table 2)\n",
		100*(r.IntervalHist.Fraction(0)+r.IntervalHist.Fraction(1)))

	var opens int64
	for _, n := range r.ModeOpens {
		opens += n
	}
	fmt.Printf("opens using CFS I/O mode 0: %.2f%% (Section 4.6)\n",
		100*float64(r.ModeOpens[0])/float64(opens))

	comb := core.RunCombined(res.Events, res.BlockBytes())
	fmt.Printf("I/O-node cache hit rate %.0f%%; still %.0f%% behind per-node buffers (Section 4.8)\n",
		100*comb.IONodeAlone.Rate(), 100*comb.IONodeFiltered.Rate())
}
