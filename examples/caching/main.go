// Caching example: generate a trace, then sweep the paper's two cache
// simulations over it -- the compute-node cache of Figure 8 and the
// I/O-node cache of Figure 9 -- and print the curves side by side.
//
//	go run ./examples/caching
package main

import (
	"fmt"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	res := core.RunStudy(core.DefaultConfig(2024, 0.05))
	events, bs := res.Events, res.BlockBytes()

	fmt.Println("Compute-node caching (Figure 8): per-job hit-rate distribution")
	fmt.Printf("%10s  %8s  %10s  %10s  %10s\n",
		"buffers", "jobs", "0% jobs", ">75% jobs", "median")
	for _, buffers := range []int{1, 10, 50} {
		jobs := cachesim.ComputeNodeCache(events, bs, buffers)
		var cdf stats.CDF
		zero, high := 0, 0
		for _, j := range jobs {
			cdf.Add(j.Rate())
			if j.Rate() == 0 {
				zero++
			} else if j.Rate() > 0.75 {
				high++
			}
		}
		fmt.Printf("%10d  %8d  %9.0f%%  %9.0f%%  %9.0f%%\n",
			buffers, len(jobs),
			100*float64(zero)/float64(len(jobs)),
			100*float64(high)/float64(len(jobs)),
			100*cdf.Quantile(0.5))
	}
	fmt.Println("\nAs the paper found, one buffer is about as good as fifty:")
	fmt.Println("the hits come from spatial locality within the current block.")

	fmt.Println("\nI/O-node caching (Figure 9): hit rate vs total buffers")
	fmt.Printf("%10s  %8s  %8s\n", "buffers", "LRU", "FIFO")
	for _, buffers := range core.DefaultFig9Buffers() {
		lru := cachesim.IONodeCache(events, bs, 10, buffers, cachesim.LRU)
		fifo := cachesim.IONodeCache(events, bs, 10, buffers, cachesim.FIFO)
		fmt.Printf("%10d  %7.1f%%  %7.1f%%\n", buffers, 100*lru.Rate(), 100*fifo.Rate())
	}

	fmt.Println("\nSpreading the same buffers over more or fewer I/O nodes barely matters:")
	fmt.Printf("%12s  %8s\n", "I/O nodes", "hit rate")
	for _, n := range []int{1, 5, 10, 20} {
		r := cachesim.IONodeCache(events, bs, n, 4000, cachesim.LRU)
		fmt.Printf("%12d  %7.1f%%\n", n, 100*r.Rate())
	}
}
