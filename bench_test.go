// Package repro's benchmark harness regenerates every table and figure
// in the paper's evaluation (see DESIGN.md's experiment index). Each
// benchmark reports the headline values of its figure or table via
// b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the full paper-versus-measured comparison recorded in
// EXPERIMENTS.md. The shared study trace is generated once per run.
package repro

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/cachesim"
	"repro/internal/cfs"
	"repro/internal/core"
	"repro/internal/hypercube"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// benchScale keeps the shared study fast enough for iterative runs
// while large enough for stable distributions.
const benchScale = 0.05

var (
	studyOnce sync.Once
	study     *core.Result
)

func sharedStudy(b *testing.B) *core.Result {
	b.Helper()
	studyOnce.Do(func() {
		study = core.RunStudy(core.DefaultConfig(42, benchScale))
	})
	return study
}

// --- Figures -----------------------------------------------------------

func BenchmarkFig1JobConcurrency(b *testing.B) {
	res := sharedStudy(b)
	var idle, multi float64
	for i := 0; i < b.N; i++ {
		r := analysis.Analyze(res.Header, res.Events, res.Horizon)
		idle, multi = r.IdlePct(), r.MultiJobPct()
	}
	b.ReportMetric(idle, "idle_pct")       // paper: ~27
	b.ReportMetric(multi, "multi_job_pct") // paper: ~35
}

func BenchmarkFig2NodesPerJob(b *testing.B) {
	res := sharedStudy(b)
	var singleFrac, bigShare float64
	for i := 0; i < b.N; i++ {
		r := res.Report
		singleFrac = float64(r.SingleNodeJobs) / float64(r.TotalJobs)
		var bigNT, totalNT float64
		for nodes, nt := range r.NodeTime {
			totalNT += nt
			if nodes >= 16 {
				bigNT += nt
			}
		}
		bigShare = bigNT / totalNT
	}
	b.ReportMetric(100*singleFrac, "single_node_job_pct") // paper: ~74
	b.ReportMetric(100*bigShare, "big_job_nodetime_pct")  // paper: dominant
}

func BenchmarkFig3FileSizes(b *testing.B) {
	res := sharedStudy(b)
	var median, at10K, at1M float64
	for i := 0; i < b.N; i++ {
		cdf := res.Report.FileSizeCDF
		median = cdf.Quantile(0.5)
		at10K = cdf.At(10_000)
		at1M = cdf.At(1_000_000)
	}
	b.ReportMetric(median, "median_bytes") // paper: ~10KB-1MB band
	b.ReportMetric(at10K, "cdf_at_10KB")
	b.ReportMetric(at1M, "cdf_at_1MB")
}

func BenchmarkFig4RequestSizes(b *testing.B) {
	res := sharedStudy(b)
	r := res.Report
	for i := 0; i < b.N; i++ {
		_ = r.FormatFig4()
	}
	b.ReportMetric(100*r.SmallReadFrac, "small_reads_pct")       // paper: 96.1
	b.ReportMetric(100*r.SmallReadData, "small_read_data_pct")   // paper: 2.0
	b.ReportMetric(100*r.SmallWriteFrac, "small_writes_pct")     // paper: 89.4
	b.ReportMetric(100*r.SmallWriteData, "small_write_data_pct") // paper: 3.0
}

func BenchmarkFig5Sequentiality(b *testing.B) {
	res := sharedStudy(b)
	r := res.Report
	var roSeq, woSeq float64
	for i := 0; i < b.N; i++ {
		roSeq = 1 - r.SeqPct[analysis.ReadOnly].At(99)
		woSeq = 1 - r.SeqPct[analysis.WriteOnly].At(99)
	}
	b.ReportMetric(100*roSeq, "ro_fully_seq_pct") // paper: most
	b.ReportMetric(100*woSeq, "wo_fully_seq_pct") // paper: most
}

func BenchmarkFig6Consecutive(b *testing.B) {
	res := sharedStudy(b)
	r := res.Report
	var roCons, woCons float64
	for i := 0; i < b.N; i++ {
		roCons = 1 - r.ConsPct[analysis.ReadOnly].At(99)
		woCons = 1 - r.ConsPct[analysis.WriteOnly].At(99)
	}
	b.ReportMetric(100*roCons, "ro_fully_consec_pct") // paper: 29
	b.ReportMetric(100*woCons, "wo_fully_consec_pct") // paper: 86
}

func BenchmarkFig7Sharing(b *testing.B) {
	res := sharedStudy(b)
	r := res.Report
	var roShared, woUnshared float64
	for i := 0; i < b.N; i++ {
		roShared = 1 - r.ByteSharing[analysis.ReadOnly].At(99)
		woUnshared = r.ByteSharing[analysis.WriteOnly].At(0)
	}
	b.ReportMetric(100*roShared, "ro_fully_byteshared_pct") // paper: 70
	b.ReportMetric(100*woUnshared, "wo_zero_shared_pct")    // paper: 90
}

func BenchmarkFig8ComputeNodeCache(b *testing.B) {
	res := sharedStudy(b)
	var zero1, high1, high50 float64
	for i := 0; i < b.N; i++ {
		for _, fr := range core.RunFig8(res.Events, res.BlockBytes()) {
			nz, nh := 0, 0
			for _, j := range fr.Jobs {
				if j.Rate() == 0 {
					nz++
				}
				if j.Rate() > 0.75 {
					nh++
				}
			}
			z := 100 * float64(nz) / float64(len(fr.Jobs))
			h := 100 * float64(nh) / float64(len(fr.Jobs))
			switch fr.Buffers {
			case 1:
				zero1, high1 = z, h
			case 50:
				high50 = h
			}
		}
	}
	b.ReportMetric(zero1, "zero_rate_jobs_pct_1buf")   // paper: ~30
	b.ReportMetric(high1, "high_rate_jobs_pct_1buf")   // paper: ~40
	b.ReportMetric(high50, "high_rate_jobs_pct_50buf") // paper: ~= 1 buffer
}

func BenchmarkFig9IONodeCache(b *testing.B) {
	res := sharedStudy(b)
	var lru4000, fifo4000, lruBig float64
	for i := 0; i < b.N; i++ {
		lru4000 = cachesim.IONodeCache(res.Events, res.BlockBytes(), 10, 4000, cachesim.LRU).Rate()
		fifo4000 = cachesim.IONodeCache(res.Events, res.BlockBytes(), 10, 4000, cachesim.FIFO).Rate()
		lruBig = cachesim.IONodeCache(res.Events, res.BlockBytes(), 10, 20000, cachesim.LRU).Rate()
	}
	b.ReportMetric(100*lru4000, "lru_4000buf_pct")   // paper: ~90
	b.ReportMetric(100*fifo4000, "fifo_4000buf_pct") // paper: well below LRU
	b.ReportMetric(100*lruBig, "lru_20000buf_pct")
}

// --- Tables ------------------------------------------------------------

func BenchmarkTable1FilesPerJob(b *testing.B) {
	res := sharedStudy(b)
	var buckets []int64
	for i := 0; i < b.N; i++ {
		buckets = res.Report.FilesPerJob.Bucketed([]int64{1, 2, 3, 4})
	}
	total := float64(res.Report.TracedJobs)
	b.ReportMetric(100*float64(buckets[0])/total, "jobs_1_file_pct")  // paper: 15
	b.ReportMetric(100*float64(buckets[3])/total, "jobs_4_files_pct") // paper: 26
	b.ReportMetric(100*float64(buckets[4])/total, "jobs_5plus_pct")   // paper: 51
}

func BenchmarkTable2IntervalSizes(b *testing.B) {
	res := sharedStudy(b)
	r := res.Report
	var zero, one, oneZero float64
	for i := 0; i < b.N; i++ {
		zero = r.IntervalHist.Fraction(0)
		one = r.IntervalHist.Fraction(1)
		oneZero = r.OneIntervalZeroFrac
	}
	b.ReportMetric(100*zero, "zero_interval_pct")           // paper: 36.5
	b.ReportMetric(100*one, "one_interval_pct")             // paper: 58.2
	b.ReportMetric(100*oneZero, "one_interval_is_zero_pct") // paper: >99
}

func BenchmarkTable3RequestSizes(b *testing.B) {
	res := sharedStudy(b)
	r := res.Report
	var one, two float64
	for i := 0; i < b.N; i++ {
		one = r.ReqSizeHist.Fraction(1)
		two = r.ReqSizeHist.Fraction(2)
	}
	b.ReportMetric(100*one, "one_size_pct") // paper: 40.0
	b.ReportMetric(100*two, "two_size_pct") // paper: 51.4
}

func BenchmarkFilePopulations(b *testing.B) {
	res := sharedStudy(b)
	r := res.Report
	var wo, ro, rw, temp float64
	for i := 0; i < b.N; i++ {
		total := float64(r.FilesOpened)
		wo = float64(r.FilesByClass[analysis.WriteOnly]) / total
		ro = float64(r.FilesByClass[analysis.ReadOnly]) / total
		rw = float64(r.FilesByClass[analysis.ReadWrite]) / total
		temp = r.TempOpenFraction
	}
	b.ReportMetric(100*wo, "write_only_pct")  // paper: ~70
	b.ReportMetric(100*ro, "read_only_pct")   // paper: ~23
	b.ReportMetric(100*rw, "read_write_pct")  // paper: ~3.6
	b.ReportMetric(100*temp, "temp_open_pct") // paper: 0.61
}

func BenchmarkCombinedCache(b *testing.B) {
	res := sharedStudy(b)
	var alone, filtered float64
	for i := 0; i < b.N; i++ {
		comb := core.RunCombined(res.Events, res.BlockBytes())
		alone = comb.IONodeAlone.Rate()
		filtered = comb.IONodeFiltered.Rate()
	}
	b.ReportMetric(100*alone, "io_hit_pct_alone")
	b.ReportMetric(100*(alone-filtered), "reduction_points") // paper: ~3
}

// --- Ablations (DESIGN.md section 4) ------------------------------------

// BenchmarkAblationStridedSmall measures the cost of the access style
// the paper says the interface forces on programmers: many small
// non-contiguous requests against one large strided request's worth of
// data.
func BenchmarkAblationStridedSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.New()
		fs := cfs.New(k, cfs.DefaultConfig(), benchTransport{})
		if _, err := fs.Preload("/data", 1<<20); err != nil {
			b.Fatal(err)
		}
		var elapsed sim.Time
		k.Spawn("reader", func(p *sim.Proc) {
			c := cfs.NewClient(fs, 1, 0, nil)
			h, _ := c.Open(p, "/data", cfs.ORdOnly, cfs.Mode0)
			start := p.Now()
			for off := int64(0); off < 1<<20; off += 4096 {
				h.ReadAt(p, off, 512) // 512 B of every 4 KB
			}
			elapsed = p.Now() - start
			h.Close(p)
		})
		k.Run()
		b.ReportMetric(elapsed.ToSeconds()*1000, "simulated_ms")
	}
}

// BenchmarkAblationStridedBatched reads the same bytes as
// BenchmarkAblationStridedSmall in eight large requests, the effect a
// strided-request interface would have.
func BenchmarkAblationStridedBatched(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.New()
		fs := cfs.New(k, cfs.DefaultConfig(), benchTransport{})
		if _, err := fs.Preload("/data", 1<<20); err != nil {
			b.Fatal(err)
		}
		var elapsed sim.Time
		k.Spawn("reader", func(p *sim.Proc) {
			c := cfs.NewClient(fs, 1, 0, nil)
			h, _ := c.Open(p, "/data", cfs.ORdOnly, cfs.Mode0)
			start := p.Now()
			// The same 128 KB of payload, one request per 128 KB span.
			for off := int64(0); off < 1<<20; off += 131072 {
				h.ReadAt(p, off, 16384)
			}
			elapsed = p.Now() - start
			h.Close(p)
		})
		k.Run()
		b.ReportMetric(elapsed.ToSeconds()*1000, "simulated_ms")
	}
}

type benchTransport struct{}

func (benchTransport) ToIONode(_, _, _ int) sim.Time   { return 100 * sim.Microsecond }
func (benchTransport) FromIONode(_, _, _ int) sim.Time { return 100 * sim.Microsecond }

// BenchmarkAblationDriftCorrection quantifies the event-order error the
// collector's double-timestamp correction removes.
func BenchmarkAblationDriftCorrection(b *testing.B) {
	res := sharedStudy(b)
	var rawErr, corrErr int
	trueTime := func(ev trace.Event) int64 { return ev.Time }
	_ = trueTime
	for i := 0; i < b.N; i++ {
		raw := trace.PostprocessRaw(res.Trace)
		corrected := trace.Postprocess(res.Trace)
		// The corrected stream is our best estimate of true order;
		// count adjacent inversions of the raw stream against the
		// corrected timestamps per event identity is expensive, so
		// instead compare both streams against collector arrival
		// order via job-log events, which carry true (collector)
		// timestamps.
		rawErr = countJobLogInversions(raw)
		corrErr = countJobLogInversions(corrected)
	}
	b.ReportMetric(float64(rawErr), "raw_inversions")
	b.ReportMetric(float64(corrErr), "corrected_inversions")
}

// countJobLogInversions counts how often a CFS event is ordered before
// the start of its own job or after its end -- impossible orderings
// that only clock error can produce.
func countJobLogInversions(events []trace.Event) int {
	started := make(map[uint32]bool)
	ended := make(map[uint32]bool)
	inversions := 0
	for _, ev := range events {
		switch ev.Type {
		case trace.EvJobStart:
			started[ev.Job] = true
		case trace.EvJobEnd:
			ended[ev.Job] = true
		default:
			if ev.Job != 0 && (!started[ev.Job] || ended[ev.Job]) {
				inversions++
			}
		}
	}
	return inversions
}

// BenchmarkAblationTraceBuffering compares trace messages shipped with
// the 4 KB per-node buffer against one message per record (the >90%
// reduction claim of Section 3.1).
func BenchmarkAblationTraceBuffering(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		records, buffered := shipCount(trace.DefaultBufferBytes)
		_, unbuffered := shipCount(trace.EventSize) // one record per block
		_ = records
		reduction = 100 * (1 - float64(buffered)/float64(unbuffered))
	}
	b.ReportMetric(reduction, "message_reduction_pct") // paper: >90
}

func shipCount(bufferBytes int) (records, messages int64) {
	clk := fixedClock{}
	nb := trace.NewNodeBuffer(0, clk, bufferBytes, func(trace.Block) {})
	for i := 0; i < 10000; i++ {
		nb.Record(trace.Event{Type: trace.EvRead, Size: 100})
	}
	nb.Flush()
	return nb.Recorded(), nb.Flushes()
}

type fixedClock struct{}

func (fixedClock) Now() sim.Time { return 0 }

// BenchmarkAblationCachePolicy compares the three replacement policies
// on the shared trace at the same size.
func BenchmarkAblationCachePolicy(b *testing.B) {
	res := sharedStudy(b)
	var lru, fifo float64
	for i := 0; i < b.N; i++ {
		lru = cachesim.IONodeCache(res.Events, res.BlockBytes(), 10, 2000, cachesim.LRU).Rate()
		fifo = cachesim.IONodeCache(res.Events, res.BlockBytes(), 10, 2000, cachesim.FIFO).Rate()
	}
	b.ReportMetric(100*lru, "lru_pct")
	b.ReportMetric(100*fifo, "fifo_pct")
}

// --- Microbenchmarks of the substrates ----------------------------------

func BenchmarkEventEncode(b *testing.B) {
	ev := trace.Event{Type: trace.EvRead, Time: 123, File: 7, Offset: 4096, Size: 512}
	var buf [trace.EventSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev.Encode(buf[:])
	}
}

func BenchmarkEventDecode(b *testing.B) {
	ev := trace.Event{Type: trace.EvRead, Time: 123, File: 7, Offset: 4096, Size: 512}
	var buf [trace.EventSize]byte
	ev.Encode(buf[:])
	var out trace.Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := out.Decode(buf[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRUAccess(b *testing.B) {
	c := cache.NewLRU(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(cache.BlockID{File: uint64(i % 16), Block: int64(i % 8192)})
	}
}

func BenchmarkFIFOAccess(b *testing.B) {
	c := cache.NewFIFO(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(cache.BlockID{File: uint64(i % 16), Block: int64(i % 8192)})
	}
}

func BenchmarkKernelEventDispatch(b *testing.B) {
	k := sim.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(1, func() {})
		if k.Pending() > 1024 {
			k.Run()
		}
	}
	k.Run()
}

func BenchmarkProcSwitch(b *testing.B) {
	k := sim.New()
	k.Spawn("switcher", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
}

func BenchmarkHypercubeLatency(b *testing.B) {
	n := hypercube.New(sim.New(), hypercube.IPSC860())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Latency(i%128, (i*37)%128, 4096)
	}
}

func BenchmarkCFSWritePath(b *testing.B) {
	k := sim.New()
	fs := cfs.New(k, cfs.DefaultConfig(), benchTransport{})
	done := false
	k.Spawn("writer", func(p *sim.Proc) {
		c := cfs.NewClient(fs, 1, 0, nil)
		h, _ := c.Open(p, "/bench", cfs.OWrOnly|cfs.OCreate, cfs.Mode0)
		for i := 0; i < b.N; i++ {
			h.Write(p, 1024)
		}
		h.Close(p)
		done = true
	})
	b.ResetTimer()
	k.Run()
	if !done {
		b.Fatal("writer did not finish")
	}
}

func BenchmarkPostprocess(b *testing.B) {
	res := sharedStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		trace.Postprocess(res.Trace)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	res := sharedStudy(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		analysis.Analyze(res.Header, res.Events, res.Horizon)
	}
}

func BenchmarkFullStudyTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.RunStudy(core.DefaultConfig(uint64(i), 0.01))
	}
}

// BenchmarkRunStudy times the shared study itself (seed 42, scale
// 0.05): the end-to-end simulate+trace+postprocess+analyze pipeline
// every figure benchmark depends on. This is the headline number for
// hot-path optimization work; see PERFORMANCE.md.
func BenchmarkRunStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.RunStudy(core.DefaultConfig(42, benchScale))
	}
}

// BenchmarkRunSweep runs the acceptance sweep for the parallel study
// engine: 8 seed-replication studies at scale 0.05, fanned over 1, 2,
// 4, and 8 workers. The speedup ratio workers=8 / workers=1 is the
// headline multi-core number (see PERFORMANCE.md, "Sweep scaling").
func BenchmarkRunSweep(b *testing.B) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	specs := core.CrossSpecs(seeds, []float64{benchScale}, nil, nil)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := core.RunSweep(context.Background(), core.SweepConfig{
					Specs: specs, Workers: workers,
				})
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
			b.ReportMetric(float64(len(specs))/b.Elapsed().Seconds()*float64(b.N), "studies/s")
		})
	}
}

// BenchmarkArenaStudySteadyState measures the per-study cost once a
// worker's arena is warm: every iteration runs a full study on the
// same arena and recycles it, so B/op and allocs/op here versus
// BenchmarkRunStudy quantify how much of a study's allocation the
// arena reuse removes (acceptance: <= 25% of a cold study).
func BenchmarkArenaStudySteadyState(b *testing.B) {
	arena := core.NewArena()
	cfg := core.DefaultConfig(42, benchScale)
	arena.Recycle(arena.RunStudy(cfg)) // warm the pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Recycle(arena.RunStudy(cfg))
	}
}

// --- Machine-level regression guards ------------------------------------

func BenchmarkMachineJobThroughput(b *testing.B) {
	k := sim.New()
	m := machine.New(k, machine.NASConfig(1))
	rng := stats.NewRNG(1)
	for i := 0; i < b.N; i++ {
		m.Submit(machine.JobSpec{
			Nodes: 1 << rng.Intn(4),
			Body:  func(ctx *machine.NodeCtx) { ctx.P.Sleep(sim.Second) },
		})
	}
	b.ResetTimer()
	k.Run()
	m.FinishTracing()
}

// BenchmarkAblationPrefetch compares a sequential whole-file read with
// and without I/O-node readahead (the policy CFS shipped with).
func BenchmarkAblationPrefetch(b *testing.B) {
	run := func(prefetch bool) sim.Time {
		k := sim.New()
		cfg := cfs.DefaultConfig()
		cfg.IONode.Prefetch = prefetch
		fs := cfs.New(k, cfg, benchTransport{})
		if _, err := fs.Preload("/seq", 512*4096); err != nil {
			b.Fatal(err)
		}
		var elapsed sim.Time
		k.Spawn("reader", func(p *sim.Proc) {
			c := cfs.NewClient(fs, 1, 0, nil)
			h, _ := c.Open(p, "/seq", cfs.ORdOnly, cfs.Mode0)
			start := p.Now()
			for {
				n, err := h.Read(p, 4096)
				if err != nil || n == 0 {
					break
				}
			}
			elapsed = p.Now() - start
			h.Close(p)
		})
		k.Run()
		return elapsed
	}
	var off, on sim.Time
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off.ToSeconds()*1000, "no_prefetch_ms")
	b.ReportMetric(on.ToSeconds()*1000, "prefetch_ms")
}
