package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseSeeds covers the seed grammar: values, ranges, and the
// two freely mixed ("3,1-5" was once rejected as one bad range).
func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in   string
		want []uint64
	}{
		{"", []uint64{7}}, // fallback
		{"5", []uint64{5}},
		{"1,5,9", []uint64{1, 5, 9}},
		{"1-4", []uint64{1, 2, 3, 4}},
		{"3,1-5", []uint64{3, 1, 2, 3, 4, 5}},
		{"1-2,9,4-5", []uint64{1, 2, 9, 4, 5}},
		{" 2 , 4 - 6 ", []uint64{2, 4, 5, 6}},
	}
	for _, tc := range cases {
		got, err := parseSeeds(tc.in, 7)
		if err != nil {
			t.Errorf("parseSeeds(%q): %v", tc.in, err)
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("parseSeeds(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}

	// Errors must name the offending part, not the whole spec.
	bad := []struct{ in, part string }{
		{"3,x", `"x"`},
		{"5-1", `"5-1"`},
		{"1-2,7-3", `"7-3"`},
		{"1,,2", `""`},
		{"1-99999999999", `"1-99999999999"`},
	}
	for _, tc := range bad {
		_, err := parseSeeds(tc.in, 7)
		if err == nil {
			t.Errorf("parseSeeds(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.part) {
			t.Errorf("parseSeeds(%q) error %q does not name the offending part %s", tc.in, err, tc.part)
		}
	}
}

// TestParseScales covers the scale list, including the non-finite
// values that once slipped through the `v <= 0` guard.
func TestParseScales(t *testing.T) {
	got, err := parseScales("0.05, 0.1", 1)
	if err != nil || len(got) != 2 || got[0] != 0.05 || got[1] != 0.1 {
		t.Fatalf("parseScales list = %v, %v", got, err)
	}
	if got, err := parseScales("", 0.25); err != nil || len(got) != 1 || got[0] != 0.25 {
		t.Fatalf("parseScales fallback = %v, %v", got, err)
	}
	for _, bad := range []string{"NaN", "nan", "Inf", "-Inf", "+Inf", "0", "-1", "x", "0.1,NaN"} {
		if _, err := parseScales(bad, 1); err == nil {
			t.Errorf("parseScales(%q) accepted", bad)
		}
	}
}

// TestParseShard covers the -shard grammar.
func TestParseShard(t *testing.T) {
	if s, n, err := parseShard(""); err != nil || s != 0 || n != 1 {
		t.Fatalf("empty shard = %d/%d, %v", s, n, err)
	}
	if s, n, err := parseShard("2/4"); err != nil || s != 2 || n != 4 {
		t.Fatalf("2/4 = %d/%d, %v", s, n, err)
	}
	for _, bad := range []string{"2", "4/2", "2/2", "-1/2", "a/b", "1/0"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}

// app runs appMain with captured output.
func app(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = appMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFig8And9 pins the -fig 8/-fig 9 wiring: both figures run the
// cache simulations on the study's own trace instead of printing "no
// such figure".
func TestFig8And9(t *testing.T) {
	code, out, stderr := app("-fig", "8", "-scale", "0.01")
	if code != 0 {
		t.Fatalf("-fig 8 exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "Figure 8: compute-node caching") {
		t.Fatalf("-fig 8 output missing the figure:\n%s", out)
	}
	code, out, stderr = app("-fig", "9", "-scale", "0.01")
	if code != 0 {
		t.Fatalf("-fig 9 exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "Figure 9: I/O-node caching") || !strings.Contains(out, "FIFO") {
		t.Fatalf("-fig 9 output missing the figure:\n%s", out)
	}

	// Out-of-range figures are an error exit now, not a stdout note.
	code, _, stderr = app("-fig", "12", "-scale", "0.01")
	if code == 0 || !strings.Contains(stderr, "no such figure") {
		t.Fatalf("-fig 12: exit %d, stderr %q", code, stderr)
	}
}

// TestScaleFlagRejectsNonFinite: NaN passes both `v <= 0` and
// `v < MinScale`, so it used to reach the workload generator.
func TestScaleFlagRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"NaN", "Inf", "-Inf", "-0.5", "0"} {
		code, _, stderr := app("-scale", bad)
		if code == 0 || !strings.Contains(stderr, "scale") {
			t.Errorf("-scale %s: exit %d, stderr %q", bad, code, stderr)
		}
	}
}

// TestProfileFlushedOnError is the profile-corruption fix: an error
// exit (here: a missing scenario file) must still stop and flush the
// CPU profile, leaving a valid gzipped pprof file rather than a
// truncated one.
func TestProfileFlushedOnError(t *testing.T) {
	prof := filepath.Join(t.TempDir(), "cpu.pprof")
	code, _, stderr := app("-cpuprofile", prof, "-scenario", filepath.Join(t.TempDir(), "missing.json"))
	if code != 1 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(prof)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile not a flushed gzip stream (%d bytes, magic % x)", len(data), data[:min(2, len(data))])
	}
}

// TestSweepStoreCLI drives the sharded store through the real flags:
// two shards into one -out directory merge to the same bytes as a
// plain in-memory sweep, a non-resume rerun is refused, and store
// flags without -out are rejected.
func TestSweepStoreCLI(t *testing.T) {
	args := []string{"-sweep", "-seeds", "1-2", "-scales", "0.01"}
	code, single, stderr := app(args...)
	if code != 0 {
		t.Fatalf("plain sweep exit %d, stderr %q", code, stderr)
	}

	dir := t.TempDir()
	code, out, stderr := app(append(args, "-out", dir, "-shard", "0/2")...)
	if code != 0 {
		t.Fatalf("shard 0 exit %d, stderr %q", code, stderr)
	}
	if out != "" {
		t.Fatalf("half-done shard printed a merged report:\n%s", out)
	}
	code, out, stderr = app(append(args, "-out", dir, "-shard", "1/2", "-resume")...)
	if code != 0 {
		t.Fatalf("shard 1 exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("sharded CLI merge differs from the in-memory sweep:\n%s\nvs\n%s", out, single)
	}

	// A static-shard rerun still demands the explicit -resume opt-in.
	if code, _, stderr = app(append(args, "-out", dir, "-shard", "0/2")...); code == 0 || !strings.Contains(stderr, "-resume") {
		t.Fatalf("static rerun without -resume: exit %d, stderr %q", code, stderr)
	}
	// A lease-mode rerun resumes implicitly: everything is already
	// committed, so it just prints the merged report again.
	code, out, stderr = app(append(args, "-out", dir)...)
	if code != 0 {
		t.Fatalf("lease-mode rerun exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("lease-mode rerun merge differs from the in-memory sweep:\n%s", out)
	}
	if code, _, _ = app("-sweep", "-shard", "0/2"); code == 0 {
		t.Fatal("-shard without -out accepted")
	}
	if code, _, _ = app("-shard", "0/2", "-out", t.TempDir()); code == 0 {
		t.Fatal("store flags accepted outside -sweep/-scenario")
	}
}

// TestWorkStealingCLI drives the lease-based scheduler through the
// real flags: two sequential workers against one -out directory (the
// second finds everything committed), the merged bytes match the
// in-memory sweep, and the mode-conflict / missing--out errors are
// loud and name their flags.
func TestWorkStealingCLI(t *testing.T) {
	args := []string{"-sweep", "-seeds", "1-3", "-scales", "0.01"}
	code, single, stderr := app(args...)
	if code != 0 {
		t.Fatalf("plain sweep exit %d, stderr %q", code, stderr)
	}

	dir := t.TempDir()
	code, out, stderr := app(append(args, "-out", dir, "-worker-id", "w1", "-lease-ttl", "5s")...)
	if code != 0 {
		t.Fatalf("worker 1 exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("lease-mode merge differs from the in-memory sweep:\n%s\nvs\n%s", out, single)
	}
	if !strings.Contains(stderr, "worker w1 ran 3") {
		t.Fatalf("stderr accounting missing the worker line: %q", stderr)
	}
	// A second worker joins late, finds the queue drained, and prints
	// the identical merged report -- no -resume flag involved.
	code, out, stderr = app(append(args, "-out", dir, "-worker-id", "w2")...)
	if code != 0 {
		t.Fatalf("worker 2 exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("late worker's merge differs:\n%s", out)
	}
	if !strings.Contains(stderr, "found 3 done") {
		t.Fatalf("late worker accounting wrong: %q", stderr)
	}

	// -shard plus a lease flag is a clear error naming both sides.
	code, _, stderr = app(append(args, "-out", t.TempDir(), "-shard", "0/2", "-lease-ttl", "10s")...)
	if code == 0 || !strings.Contains(stderr, "-shard") || !strings.Contains(stderr, "-lease-ttl") {
		t.Fatalf("-shard + -lease-ttl: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = app(append(args, "-out", t.TempDir(), "-shard", "0/2", "-worker-id", "x")...)
	if code == 0 || !strings.Contains(stderr, "-shard") || !strings.Contains(stderr, "-worker-id") {
		t.Fatalf("-shard + -worker-id: exit %d, stderr %q", code, stderr)
	}
	// Lease flags without -out are rejected like the other store flags.
	if code, _, stderr = app("-sweep", "-worker-id", "w1"); code == 0 || !strings.Contains(stderr, "-worker-id requires -out") {
		t.Fatalf("-worker-id without -out: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr = app("-sweep", "-lease-ttl", "5s"); code == 0 || !strings.Contains(stderr, "-lease-ttl requires -out") {
		t.Fatalf("-lease-ttl without -out: exit %d, stderr %q", code, stderr)
	}
}
