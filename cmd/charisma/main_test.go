package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
)

// update rewrites the checked-in golden files under cmd/charisma/
// testdata instead of comparing against them.
var update = flag.Bool("update", false, "rewrite golden files")

// TestParseSeeds covers the seed grammar: values, ranges, and the
// two freely mixed ("3,1-5" was once rejected as one bad range).
func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in   string
		want []uint64
	}{
		{"", []uint64{7}}, // fallback
		{"5", []uint64{5}},
		{"1,5,9", []uint64{1, 5, 9}},
		{"1-4", []uint64{1, 2, 3, 4}},
		{"3,1-5", []uint64{3, 1, 2, 3, 4, 5}},
		{"1-2,9,4-5", []uint64{1, 2, 9, 4, 5}},
		{" 2 , 4 - 6 ", []uint64{2, 4, 5, 6}},
	}
	for _, tc := range cases {
		got, err := parseSeeds(tc.in, 7)
		if err != nil {
			t.Errorf("parseSeeds(%q): %v", tc.in, err)
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("parseSeeds(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}

	// Errors must name the offending part, not the whole spec.
	bad := []struct{ in, part string }{
		{"3,x", `"x"`},
		{"5-1", `"5-1"`},
		{"1-2,7-3", `"7-3"`},
		{"1,,2", `""`},
		{"1-99999999999", `"1-99999999999"`},
	}
	for _, tc := range bad {
		_, err := parseSeeds(tc.in, 7)
		if err == nil {
			t.Errorf("parseSeeds(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.part) {
			t.Errorf("parseSeeds(%q) error %q does not name the offending part %s", tc.in, err, tc.part)
		}
	}
}

// TestParseScales covers the scale list, including the non-finite
// values that once slipped through the `v <= 0` guard.
func TestParseScales(t *testing.T) {
	got, err := parseScales("0.05, 0.1", 1)
	if err != nil || len(got) != 2 || got[0] != 0.05 || got[1] != 0.1 {
		t.Fatalf("parseScales list = %v, %v", got, err)
	}
	if got, err := parseScales("", 0.25); err != nil || len(got) != 1 || got[0] != 0.25 {
		t.Fatalf("parseScales fallback = %v, %v", got, err)
	}
	for _, bad := range []string{"NaN", "nan", "Inf", "-Inf", "+Inf", "0", "-1", "x", "0.1,NaN"} {
		if _, err := parseScales(bad, 1); err == nil {
			t.Errorf("parseScales(%q) accepted", bad)
		}
	}
}

// TestParseShard covers the -shard grammar.
func TestParseShard(t *testing.T) {
	if s, n, err := parseShard(""); err != nil || s != 0 || n != 1 {
		t.Fatalf("empty shard = %d/%d, %v", s, n, err)
	}
	if s, n, err := parseShard("2/4"); err != nil || s != 2 || n != 4 {
		t.Fatalf("2/4 = %d/%d, %v", s, n, err)
	}
	for _, bad := range []string{"2", "4/2", "2/2", "-1/2", "a/b", "1/0"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}

// app runs appMain with captured output.
func app(args ...string) (code int, stdout, stderr string) {
	var out, errb bytes.Buffer
	code = appMain(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestFig8And9 pins the -fig 8/-fig 9 wiring: both figures run the
// cache simulations on the study's own trace instead of printing "no
// such figure".
func TestFig8And9(t *testing.T) {
	code, out, stderr := app("-fig", "8", "-scale", "0.01")
	if code != 0 {
		t.Fatalf("-fig 8 exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "Figure 8: compute-node caching") {
		t.Fatalf("-fig 8 output missing the figure:\n%s", out)
	}
	code, out, stderr = app("-fig", "9", "-scale", "0.01")
	if code != 0 {
		t.Fatalf("-fig 9 exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "Figure 9: I/O-node caching") || !strings.Contains(out, "FIFO") {
		t.Fatalf("-fig 9 output missing the figure:\n%s", out)
	}

	// Out-of-range figures are an error exit now, not a stdout note.
	code, _, stderr = app("-fig", "12", "-scale", "0.01")
	if code == 0 || !strings.Contains(stderr, "no such figure") {
		t.Fatalf("-fig 12: exit %d, stderr %q", code, stderr)
	}
}

// TestScaleFlagRejectsNonFinite: NaN passes both `v <= 0` and
// `v < MinScale`, so it used to reach the workload generator.
func TestScaleFlagRejectsNonFinite(t *testing.T) {
	for _, bad := range []string{"NaN", "Inf", "-Inf", "-0.5", "0"} {
		code, _, stderr := app("-scale", bad)
		if code == 0 || !strings.Contains(stderr, "scale") {
			t.Errorf("-scale %s: exit %d, stderr %q", bad, code, stderr)
		}
	}
}

// TestProfileFlushedOnError is the profile-corruption fix: an error
// exit (here: a missing scenario file) must still stop and flush the
// CPU profile, leaving a valid gzipped pprof file rather than a
// truncated one.
func TestProfileFlushedOnError(t *testing.T) {
	prof := filepath.Join(t.TempDir(), "cpu.pprof")
	code, _, stderr := app("-cpuprofile", prof, "-scenario", filepath.Join(t.TempDir(), "missing.json"))
	if code != 1 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(prof)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Fatalf("profile not a flushed gzip stream (%d bytes, magic % x)", len(data), data[:min(2, len(data))])
	}
}

// TestSweepStoreCLI drives the sharded store through the real flags:
// two shards into one -out directory merge to the same bytes as a
// plain in-memory sweep, a non-resume rerun is refused, and store
// flags without -out are rejected.
func TestSweepStoreCLI(t *testing.T) {
	args := []string{"-sweep", "-seeds", "1-2", "-scales", "0.01"}
	code, single, stderr := app(args...)
	if code != 0 {
		t.Fatalf("plain sweep exit %d, stderr %q", code, stderr)
	}

	dir := t.TempDir()
	code, out, stderr := app(append(args, "-out", dir, "-shard", "0/2")...)
	if code != 0 {
		t.Fatalf("shard 0 exit %d, stderr %q", code, stderr)
	}
	if out != "" {
		t.Fatalf("half-done shard printed a merged report:\n%s", out)
	}
	code, out, stderr = app(append(args, "-out", dir, "-shard", "1/2", "-resume")...)
	if code != 0 {
		t.Fatalf("shard 1 exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("sharded CLI merge differs from the in-memory sweep:\n%s\nvs\n%s", out, single)
	}

	// A static-shard rerun still demands the explicit -resume opt-in.
	if code, _, stderr = app(append(args, "-out", dir, "-shard", "0/2")...); code == 0 || !strings.Contains(stderr, "-resume") {
		t.Fatalf("static rerun without -resume: exit %d, stderr %q", code, stderr)
	}
	// A lease-mode rerun resumes implicitly: everything is already
	// committed, so it just prints the merged report again.
	code, out, stderr = app(append(args, "-out", dir)...)
	if code != 0 {
		t.Fatalf("lease-mode rerun exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("lease-mode rerun merge differs from the in-memory sweep:\n%s", out)
	}
	if code, _, _ = app("-sweep", "-shard", "0/2"); code == 0 {
		t.Fatal("-shard without -out accepted")
	}
	if code, _, _ = app("-shard", "0/2", "-out", t.TempDir()); code == 0 {
		t.Fatal("store flags accepted outside -sweep/-scenario")
	}
}

// TestWorkStealingCLI drives the lease-based scheduler through the
// real flags: two sequential workers against one -out directory (the
// second finds everything committed), the merged bytes match the
// in-memory sweep, and the mode-conflict / missing--out errors are
// loud and name their flags.
func TestWorkStealingCLI(t *testing.T) {
	args := []string{"-sweep", "-seeds", "1-3", "-scales", "0.01"}
	code, single, stderr := app(args...)
	if code != 0 {
		t.Fatalf("plain sweep exit %d, stderr %q", code, stderr)
	}

	dir := t.TempDir()
	code, out, stderr := app(append(args, "-out", dir, "-worker-id", "w1", "-lease-ttl", "5s")...)
	if code != 0 {
		t.Fatalf("worker 1 exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("lease-mode merge differs from the in-memory sweep:\n%s\nvs\n%s", out, single)
	}
	if !strings.Contains(stderr, "worker w1 ran 3") {
		t.Fatalf("stderr accounting missing the worker line: %q", stderr)
	}
	// A second worker joins late, finds the queue drained, and prints
	// the identical merged report -- no -resume flag involved.
	code, out, stderr = app(append(args, "-out", dir, "-worker-id", "w2")...)
	if code != 0 {
		t.Fatalf("worker 2 exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("late worker's merge differs:\n%s", out)
	}
	if !strings.Contains(stderr, "found 3 done") {
		t.Fatalf("late worker accounting wrong: %q", stderr)
	}

	// -shard plus a lease flag is a clear error naming both sides.
	code, _, stderr = app(append(args, "-out", t.TempDir(), "-shard", "0/2", "-lease-ttl", "10s")...)
	if code == 0 || !strings.Contains(stderr, "-shard") || !strings.Contains(stderr, "-lease-ttl") {
		t.Fatalf("-shard + -lease-ttl: exit %d, stderr %q", code, stderr)
	}
	code, _, stderr = app(append(args, "-out", t.TempDir(), "-shard", "0/2", "-worker-id", "x")...)
	if code == 0 || !strings.Contains(stderr, "-shard") || !strings.Contains(stderr, "-worker-id") {
		t.Fatalf("-shard + -worker-id: exit %d, stderr %q", code, stderr)
	}
	// Lease flags without -out are rejected like the other store flags.
	if code, _, stderr = app("-sweep", "-worker-id", "w1"); code == 0 || !strings.Contains(stderr, "-worker-id requires -out") {
		t.Fatalf("-worker-id without -out: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr = app("-sweep", "-lease-ttl", "5s"); code == 0 || !strings.Contains(stderr, "-lease-ttl requires -out") {
		t.Fatalf("-lease-ttl without -out: exit %d, stderr %q", code, stderr)
	}
}

// TestModeFlagConflicts pins the silently-ignored-flag fix: -trace,
// -fig, and -table shape single-study output only, so combining them
// with -sweep or -scenario is a hard error naming both flags (the
// old behavior wrote nothing and said nothing).
func TestModeFlagConflicts(t *testing.T) {
	cases := []struct {
		args       []string
		flag, mode string
	}{
		{[]string{"-sweep", "-trace", "out.trc"}, "-trace", "-sweep"},
		{[]string{"-sweep", "-fig", "8"}, "-fig", "-sweep"},
		{[]string{"-sweep", "-table", "1"}, "-table", "-sweep"},
		{[]string{"-scenario", "x.json", "-trace", "out.trc"}, "-trace", "-scenario"},
		{[]string{"-scenario", "x.json", "-fig", "8"}, "-fig", "-scenario"},
		{[]string{"-scenario", "x.json", "-table", "1"}, "-table", "-scenario"},
		{[]string{"-sweep", "-scenario", "x.json"}, "-sweep", "-scenario"},
		// -predict walks the twin: no trace, no figure/table rendering,
		// no persistable outcome. Same hard-error rule.
		{[]string{"-predict", "-trace", "out.trc"}, "-trace", "-predict"},
		{[]string{"-predict", "-fig", "8"}, "-fig", "-predict"},
		{[]string{"-predict", "-table", "1"}, "-table", "-predict"},
		{[]string{"-predict", "-out", "runs/x"}, "-out", "-predict"},
		// -list consults only the registries: every run-shaping flag
		// conflicts rather than being silently ignored.
		{[]string{"-list", "-sweep"}, "-sweep", "-list"},
		{[]string{"-list", "-scenario", "x.json"}, "-scenario", "-list"},
		{[]string{"-list", "-predict"}, "-predict", "-list"},
		{[]string{"-list", "-faults", "io-slow"}, "-faults", "-list"},
		{[]string{"-list", "-trace", "out.trc"}, "-trace", "-list"},
		{[]string{"-list", "-fig", "8"}, "-fig", "-list"},
		{[]string{"-list", "-table", "1"}, "-table", "-list"},
		{[]string{"-list", "-out", "runs/x"}, "-out", "-list"},
	}
	for _, tc := range cases {
		code, out, stderr := app(tc.args...)
		if code == 0 {
			t.Errorf("%v accepted", tc.args)
			continue
		}
		if !strings.Contains(stderr, tc.flag) || !strings.Contains(stderr, tc.mode) {
			t.Errorf("%v error %q does not name both %s and %s", tc.args, stderr, tc.flag, tc.mode)
		}
		if out != "" {
			t.Errorf("%v printed output despite the conflict:\n%s", tc.args, out)
		}
	}
}

// TestListCLI pins the -list registry dump: every registry section
// appears in order with the names the other modes actually resolve
// (including this PR's registrations: cluster2026, mesh, fattree,
// nvme), and nothing is simulated so stderr stays empty.
func TestListCLI(t *testing.T) {
	code, out, stderr := app("-list")
	if code != 0 {
		t.Fatalf("-list exit %d, stderr %q", code, stderr)
	}
	if stderr != "" {
		t.Fatalf("-list wrote to stderr: %q", stderr)
	}
	// Section headers in order.
	sections := []string{
		"machine presets:", "topologies:", "disk models:",
		"workload archetypes:", "cache policies:", "fault presets:",
	}
	pos := -1
	for _, s := range sections {
		at := strings.Index(out, s)
		if at < 0 {
			t.Fatalf("-list output missing section %q:\n%s", s, out)
		}
		if at < pos {
			t.Fatalf("-list section %q out of order:\n%s", s, out)
		}
		pos = at
	}
	for _, name := range []string{
		"nas", "mini", "cluster2026", // machine presets
		"fattree", "hypercube", "mesh", // topologies
		"cdc760", "nvme", // disk models
		"cfd-sim", "checkpoint", // workload archetypes
		"LRU", "SLRU", // cache policies
		"dying-disk", "io-slow", // fault presets
	} {
		if !strings.Contains(out, "  "+name+"\n") {
			t.Fatalf("-list output missing name %q:\n%s", name, out)
		}
	}
}

// TestPredictCLI pins the -predict mode across its three input
// shapes -- single study, -sweep cross product, -scenario spec --
// plus the replay rejection and the stability property: whatever the
// load, the rendered table never contains Inf or NaN (saturation is
// a flagged cell, not an infinity).
func TestPredictCLI(t *testing.T) {
	finite := func(t *testing.T, out string) {
		t.Helper()
		for _, bad := range []string{"NaN", "Inf", "inf"} {
			if strings.Contains(out, bad) {
				t.Fatalf("prediction renders %s:\n%s", bad, out)
			}
		}
	}

	code, out, stderr := app("-predict", "-scale", "0.01", "-seed", "42")
	if code != 0 {
		t.Fatalf("-predict exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{
		"Analytical twin: per-I/O-node M/G/1 prediction",
		"P-K wait(ms)",
		"headroom",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-predict output missing %q:\n%s", want, out)
		}
	}
	finite(t, out)
	if _, again, _ := app("-predict", "-scale", "0.01", "-seed", "42"); again != out {
		t.Fatal("-predict is not deterministic across runs")
	}

	code, sweepOut, stderr := app("-predict", "-sweep", "-seeds", "1-2", "-scales", "0.01")
	if code != 0 {
		t.Fatalf("-predict -sweep exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"== seed=1 scale=0.01 ==", "== seed=2 scale=0.01 =="} {
		if !strings.Contains(sweepOut, want) {
			t.Fatalf("-predict -sweep missing the %q header:\n%s", want, sweepOut)
		}
	}
	finite(t, sweepOut)

	// The fig8 corpus scenario's prediction is pinned byte-for-byte:
	// regen with `go test ./cmd/charisma/ -run TestPredictCLI -update`.
	code, scenOut, stderr := app("-predict", "-scenario",
		filepath.Join("..", "..", "testdata", "scenarios", "fig8.json"))
	if code != 0 {
		t.Fatalf("-predict -scenario exit %d, stderr %q", code, stderr)
	}
	finite(t, scenOut)
	golden := filepath.Join("testdata", "predict-fig8.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(scenOut), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regen with -update)", err)
	}
	if scenOut != string(want) {
		t.Fatalf("-predict -scenario fig8 diverged from its golden (regen with -update):\n%s", scenOut)
	}

	// A replay scenario's timing is already recorded: predicting it is
	// a loud error, not an empty table.
	code, out, stderr = app("-predict", "-scenario",
		filepath.Join("..", "..", "testdata", "scenarios", "replay-smoke.json"))
	if code == 0 || !strings.Contains(stderr, "replay") {
		t.Fatalf("-predict on a replay scenario: exit %d, stderr %q", code, stderr)
	}
	if out != "" {
		t.Fatalf("replay rejection printed output:\n%s", out)
	}
}

// TestServeFlagValidation covers the serve subcommand's own flag
// errors: the store directory is mandatory and bad values are exit 2
// before any socket is opened.
func TestServeFlagValidation(t *testing.T) {
	if code, _, stderr := app("serve"); code != 2 || !strings.Contains(stderr, "-out is required") {
		t.Fatalf("serve without -out: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := app("serve", "-out", t.TempDir(), "-lease-ttl", "-5s"); code != 2 {
		t.Fatal("serve accepted a negative -lease-ttl")
	}
	if code, _, stderr := app("serve", "-out", t.TempDir(), "stray"); code != 2 || !strings.Contains(stderr, "stray") {
		t.Fatalf("serve with a stray argument: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := app("serve", "-addr", "999.999.999.999:1", "-out", t.TempDir()); code != 1 {
		t.Fatal("serve accepted an unlistenable address")
	}
}

// TestServeMatchesCLI is the acceptance pin for the daemon: a corpus
// scenario served over HTTP returns report bytes identical to the
// one-shot CLI, and resubmitting it is answered from the store as a
// cache hit.
func TestServeMatchesCLI(t *testing.T) {
	specPath := filepath.Join("..", "..", "testdata", "scenarios", "tiny-smoke.json")
	code, cliOut, stderr := app("-scenario", specPath)
	if code != 0 {
		t.Fatalf("CLI scenario exit %d, stderr %q", code, stderr)
	}
	body, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := func() serve.Status {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st serve.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := submit()
	deadline := time.Now().Add(30 * time.Second)
	for st.State != serve.StateDone && st.State != serve.StateFailed {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck at %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.State != serve.StateDone {
		t.Fatalf("job ended %+v", st)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != cliOut {
		t.Fatalf("HTTP report differs from `charisma -scenario` (%d vs %d bytes):\n%s",
			len(served), len(cliOut), served)
	}

	// The identical spec again: coalesced onto the finished job --
	// answered instantly, nothing re-simulated. (The across-restart
	// store-cache path, where Cached is set, is pinned in
	// internal/serve's suite.)
	if st2 := submit(); st2.ID != st.ID || st2.State != serve.StateDone {
		t.Fatalf("resubmission not answered from the finished job: %+v", st2)
	}
}

// TestSignalInterruptReleasesLeases pins the signal-handling fix
// end-to-end, in-process: SIGINT mid-sweep stops the run after its
// in-flight study, releases every lease claim, reports the interrupt,
// and leaves the directory resumable to byte-identical output.
func TestSignalInterruptReleasesLeases(t *testing.T) {
	args := []string{"-sweep", "-seeds", "1-32", "-scales", "0.01", "-workers", "1"}
	code, single, stderr := app(args...)
	if code != 0 {
		t.Fatalf("plain sweep exit %d, stderr %q", code, stderr)
	}

	dir := t.TempDir()
	type result struct {
		code           int
		stdout, stderr string
	}
	resCh := make(chan result, 1)
	go func() {
		code, out, errOut := app(append(args, "-out", dir)...)
		resCh <- result{code, out, errOut}
	}()

	// Wait for the first committed outcome so the signal lands
	// mid-run, then interrupt our own process; appMain's handler turns
	// it into a context cancel instead of process death.
	deadline := time.Now().Add(30 * time.Second)
	for {
		outcomes, _ := filepath.Glob(filepath.Join(dir, "*.json"))
		committed := 0
		for _, p := range outcomes {
			if filepath.Base(p) != "manifest.json" {
				committed++
			}
		}
		if committed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no outcome committed within the deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if res.code == 0 {
		t.Fatalf("interrupted sweep exited 0; stderr %q", res.stderr)
	}
	if !strings.Contains(res.stderr, "interrupted") || !strings.Contains(res.stderr, dir) {
		t.Fatalf("stderr does not report the interrupt and the resume directory: %q", res.stderr)
	}
	if res.stdout != "" {
		t.Fatalf("interrupted run printed a partial report:\n%s", res.stdout)
	}
	if leases, _ := filepath.Glob(filepath.Join(dir, "*.lease")); len(leases) != 0 {
		t.Fatalf("leases survived the signal: %v", leases)
	}

	// Resume drains the remainder and prints the identical report.
	code, out, stderr := app(append(args, "-out", dir)...)
	if code != 0 {
		t.Fatalf("resume exit %d, stderr %q", code, stderr)
	}
	if out != single {
		t.Fatalf("resumed sweep differs from the uninterrupted run (%d vs %d bytes)", len(out), len(single))
	}
}
