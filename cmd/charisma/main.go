// Command charisma runs the full CHARISMA reproduction pipeline:
// generate the calibrated synthetic workload, simulate the iPSC/860
// while tracing every instrumented CFS call, postprocess the trace,
// and print the paper's figures and tables.
//
// Usage:
//
//	charisma [-scale 0.1] [-seed 42] [-fig N | -table N | -report] [-trace file]
//
// With -fig or -table only that figure or table is printed; -report
// (the default) prints everything. -trace additionally writes the raw
// binary trace for later analysis with traceanal or cachesim.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/core"
)

func main() {
	scale := flag.Float64("scale", 0.1, "study scale; 1.0 reproduces the full 156-hour study")
	seed := flag.Uint64("seed", 42, "workload seed")
	fig := flag.Int("fig", 0, "print only figure N (1-7)")
	table := flag.Int("table", 0, "print only table N (1-3)")
	report := flag.Bool("report", false, "print the full report (default when no -fig/-table)")
	traceOut := flag.String("trace", "", "also write the raw trace to this file")
	flag.Parse()

	res := core.RunStudy(core.DefaultConfig(*seed, *scale))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charisma:", err)
			os.Exit(1)
		}
		if _, err := res.Trace.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "charisma: writing trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "charisma:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "charisma: wrote %d events to %s\n", len(res.Events), *traceOut)
	}

	out := selectSection(res.Report, *fig, *table, *report)
	fmt.Print(out)
	fmt.Printf("\nInstrumentation (Section 3): %d records in %d messages (%.1f%% of one-per-record); %d disk ops\n",
		res.TraceRecords, res.TraceMessages,
		100*float64(res.TraceMessages)/float64(max64(res.TraceRecords, 1)),
		res.DiskOps)
}

func selectSection(r *analysis.Report, fig, table int, full bool) string {
	switch {
	case fig == 1:
		return r.FormatFig1()
	case fig == 2:
		return r.FormatFig2()
	case fig == 3:
		return r.FormatFig3()
	case fig == 4:
		return r.FormatFig4()
	case fig == 5:
		return r.FormatFig5()
	case fig == 6:
		return r.FormatFig6()
	case fig == 7:
		return r.FormatFig7()
	case table == 1:
		return r.FormatTable1()
	case table == 2:
		return r.FormatTable2()
	case table == 3:
		return r.FormatTable3()
	case fig != 0 || table != 0:
		return fmt.Sprintf("charisma: no such figure/table (fig=%d table=%d)\n", fig, table)
	default:
		_ = full
		return r.Format()
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
