// Command charisma runs the full CHARISMA reproduction pipeline:
// generate the calibrated synthetic workload, simulate the iPSC/860
// while tracing every instrumented CFS call, postprocess the trace,
// and print the paper's figures and tables.
//
// Usage:
//
//	charisma [-scale 0.1] [-seed 42] [-fig N | -table N | -report] [-trace file]
//	charisma -sweep [-seeds 1-32] [-scales 0.05,0.1] [-workers 0]
//	charisma -scenario testdata/scenarios/fig8.json [-workers 0]
//
// With -fig or -table only that figure or table is printed; -report
// (the default) prints everything. -trace additionally writes the raw
// binary trace for later analysis with traceanal or cachesim.
//
// -sweep runs one study per (seed, scale) pair across a pool of
// worker goroutines (one reusable simulation arena per worker; see
// core.RunSweep) and prints the aggregate report with min/median/max
// columns. -cpuprofile and -memprofile capture pprof profiles of
// any mode.
//
// -scenario runs a declarative scenario spec (see internal/scenario
// and the README's "Scenarios" section): machine presets, workload
// mixes by archetype name, seed/scale axes, and trace-driven cache
// experiments, lowered onto the same sweep engine -- or, with a
// "replay" source, the same analysis and cache grid over recorded
// .trc files instead of fresh simulations. -workers overrides the
// spec's worker count; output is byte-identical either way.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/scenario"
)

func main() {
	scale := flag.Float64("scale", 0.1, "study scale; 1.0 reproduces the full 156-hour study")
	seed := flag.Uint64("seed", 42, "workload seed")
	fig := flag.Int("fig", 0, "print only figure N (1-7)")
	table := flag.Int("table", 0, "print only table N (1-3)")
	report := flag.Bool("report", false, "print the full report (default when no -fig/-table)")
	traceOut := flag.String("trace", "", "also write the raw trace to this file")
	sweep := flag.Bool("sweep", false, "run a parallel study sweep over -seeds x -scales")
	scenarioPath := flag.String("scenario", "", "run the declarative scenario spec at this path")
	seeds := flag.String("seeds", "", "sweep seeds: a range '1-32' or list '1,5,9' (default: -seed)")
	scales := flag.String("scales", "", "sweep scales: comma-separated list (default: -scale)")
	workers := flag.Int("workers", 0, "sweep worker goroutines; 0 = GOMAXPROCS")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		// Best-effort: never os.Exit here, or the CPU-profile defer
		// registered above would be skipped and its file corrupted.
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "charisma:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "charisma:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "charisma:", err)
		}
	}()

	if *scenarioPath != "" {
		runScenario(*scenarioPath, *workers)
		return
	}
	if *sweep {
		runSweep(*seeds, *scales, *seed, *scale, *workers)
		return
	}

	res := core.RunStudy(core.DefaultConfig(*seed, *scale))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if _, err := res.Trace.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "charisma: writing trace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "charisma: wrote %d events to %s\n", len(res.Events), *traceOut)
	}

	out := selectSection(res.Report, *fig, *table, *report)
	fmt.Print(out)
	fmt.Printf("\nInstrumentation (Section 3): %d records in %d messages (%.1f%% of one-per-record); %d disk ops\n",
		res.TraceRecords, res.TraceMessages,
		100*float64(res.TraceMessages)/float64(max64(res.TraceRecords, 1)),
		res.DiskOps)
}

// runScenario loads, validates, and runs a declarative scenario,
// printing the deterministic report on stdout and timing on stderr.
func runScenario(path string, workers int) {
	spec, err := scenario.Load(path)
	if err != nil {
		fatal(err)
	}
	if workers != 0 {
		spec.Workers = workers
	}
	res, err := core.RunScenario(context.Background(), spec)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Fprintf(os.Stderr, "charisma: scenario %s: %d studies on %d workers in %v\n",
		spec.Name, len(res.Sweep.Outcomes), res.Sweep.Workers, res.Sweep.Elapsed.Round(1e6))
}

// runSweep executes the multi-study mode and prints the aggregate
// report (deterministic) on stdout and timing (not) on stderr.
func runSweep(seedSpec, scaleSpec string, seed uint64, scale float64, workers int) {
	seedList, err := parseSeeds(seedSpec, seed)
	if err != nil {
		fatal(err)
	}
	scaleList, err := parseScales(scaleSpec, scale)
	if err != nil {
		fatal(err)
	}
	specs := core.CrossSpecs(seedList, scaleList, nil, nil)
	res := core.RunSweep(context.Background(), core.SweepConfig{Specs: specs, Workers: workers})
	if res.Err != nil {
		fatal(res.Err)
	}
	fmt.Print(res.Format())
	fmt.Fprintf(os.Stderr, "charisma: %d studies on %d workers in %v (%.2f studies/s)\n",
		len(res.Outcomes), res.Workers, res.Elapsed.Round(1e6),
		float64(len(res.Outcomes))/res.Elapsed.Seconds())
}

// parseSeeds understands "a-b" ranges and comma lists; empty means
// the single -seed value.
func parseSeeds(spec string, fallback uint64) ([]uint64, error) {
	if spec == "" {
		return []uint64{fallback}, nil
	}
	if lo, hi, ok := strings.Cut(spec, "-"); ok {
		a, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
		b, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("charisma: bad seed range %q", spec)
		}
		if b-a >= 1<<20 {
			return nil, fmt.Errorf("charisma: seed range %q too large", spec)
		}
		var out []uint64
		for s := a; s <= b; s++ {
			out = append(out, s)
		}
		return out, nil
	}
	var out []uint64
	for _, part := range strings.Split(spec, ",") {
		s, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("charisma: bad seed %q in %q", part, spec)
		}
		out = append(out, s)
	}
	return out, nil
}

// parseScales understands comma lists; empty means the single -scale
// value.
func parseScales(spec string, fallback float64) ([]float64, error) {
	if spec == "" {
		return []float64{fallback}, nil
	}
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("charisma: bad scale %q in %q", part, spec)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "charisma:", err)
	os.Exit(1)
}

func selectSection(r *analysis.Report, fig, table int, full bool) string {
	switch {
	case fig == 1:
		return r.FormatFig1()
	case fig == 2:
		return r.FormatFig2()
	case fig == 3:
		return r.FormatFig3()
	case fig == 4:
		return r.FormatFig4()
	case fig == 5:
		return r.FormatFig5()
	case fig == 6:
		return r.FormatFig6()
	case fig == 7:
		return r.FormatFig7()
	case table == 1:
		return r.FormatTable1()
	case table == 2:
		return r.FormatTable2()
	case table == 3:
		return r.FormatTable3()
	case fig != 0 || table != 0:
		return fmt.Sprintf("charisma: no such figure/table (fig=%d table=%d)\n", fig, table)
	default:
		_ = full
		return r.Format()
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
