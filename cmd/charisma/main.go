// Command charisma runs the full CHARISMA reproduction pipeline:
// generate the calibrated synthetic workload, simulate the iPSC/860
// while tracing every instrumented CFS call, postprocess the trace,
// and print the paper's figures and tables.
//
// Usage:
//
//	charisma [-scale 0.1] [-seed 42] [-fig N | -table N | -report] [-trace file]
//	charisma [-faults io-slow] ... / charisma -sweep -faults dying-disk ...
//	charisma -sweep [-seeds 1-32] [-scales 0.05,0.1] [-workers 0]
//	charisma -scenario testdata/scenarios/fig8.json [-workers 0]
//	charisma -sweep|-scenario ... -out runs/full [-worker-id w1] [-lease-ttl 30s]
//	charisma serve -addr :8080 -out runs/cache [-jobs 2] [-queue 16]
//	charisma -list
//
// With -fig or -table only that figure or table is printed; -report
// (the default) prints everything. Figures 1-7 come straight from the
// workload analysis; -fig 8 and -fig 9 run the paper's trace-driven
// cache simulations on the study's own trace. -trace additionally
// writes the raw binary trace for later analysis with traceanal or
// cachesim.
//
// -sweep runs one study per (seed, scale) pair across a pool of
// worker goroutines (one reusable simulation arena per worker; see
// core.RunSweep) and prints the aggregate report with min/median/max
// columns. -cpuprofile and -memprofile capture pprof profiles of
// any mode.
//
// -faults injects a named hardware-degradation preset (internal/
// faults: degraded I/O nodes, disk wear, a slow interconnect, hot-node
// skew) into a single study or every study of a -sweep. The report
// then ends with a "Degradation" section. Scenarios declare faults in
// their spec's "faults" block instead, so -faults conflicts with
// -scenario. Fault injection is deterministic: the same command line
// reproduces the same bytes.
//
// -scenario runs a declarative scenario spec (see internal/scenario
// and the README's "Scenarios" section): machine presets, workload
// mixes by archetype name, seed/scale axes, and trace-driven cache
// experiments, lowered onto the same sweep engine -- or, with a
// "replay" source, the same analysis and cache grid over recorded
// .trc files instead of fresh simulations. -workers overrides the
// spec's worker count; output is byte-identical either way.
//
// -out makes a sweep or scenario persistent and distributed: each
// study's outcome is committed to the run directory as it completes,
// keyed by a configuration fingerprint. Any number of charisma
// processes -- or machines sharing the directory over a network
// filesystem -- drain the same queue: each claims a pending study
// via an atomic lease file (renewed by heartbeat, reclaimed by the
// others if the holder dies for longer than -lease-ttl) and the run
// finishes with no manual resume step. Resume is implicit: re-running
// the same command against the directory executes only what is
// missing, refusing only a manifest mismatch (a different sweep in
// the same directory). Every invocation waits until the whole run is
// drained and prints the merged report, byte-identical to a
// single-process run. -worker-id names the worker in the manifest's
// per-worker throughput counters. The deprecated -shard i/n static
// partition remains for compatibility and conflicts with
// -worker-id/-lease-ttl. See the README's "Distributed runs"
// section.
//
// -list prints every registered name the other modes accept --
// machine presets, interconnect topologies, disk models, workload
// archetypes, cache replacement policies, and fault presets -- in
// stable order and exits. It runs nothing, so combining it with any
// run-shaping flag is a hard error.
//
// `charisma serve` runs the simulation-as-a-service daemon (see
// internal/serve and the README's "Serving" section): POST a scenario
// spec to /v1/jobs, follow its progress over server-sent events, and
// fetch the finished report -- byte-identical to -scenario output --
// as plain text. The -out directory doubles as a content-addressed
// result cache shared across restarts and server processes.
//
// Every mode shuts down cleanly on SIGINT/SIGTERM: sweeps and
// scenarios stop after their in-flight studies with all store leases
// released (committed outcomes stay resumable), the server drains,
// and profiles flush. A second signal kills immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/topo"
	"repro/internal/workload"
)

func main() {
	// All error paths return through appMain so deferred cleanups --
	// in particular pprof.StopCPUProfile -- always run; a bare
	// os.Exit on error used to leave -cpuprofile files corrupt.
	os.Exit(appMain(os.Args[1:], os.Stdout, os.Stderr))
}

// appMain is the whole command, parameterized for tests: argv is
// os.Args[1:], output goes to stdout/stderr, and the return value is
// the process exit code.
func appMain(argv []string, stdout, stderr io.Writer) int {
	// SIGINT/SIGTERM cancel this context instead of killing the
	// process outright: store runs release their lease claims, the
	// server drains, and the deferred profile stop below still flushes
	// (signals used to corrupt -cpuprofile files exactly the way bare
	// error exits once did). After the first signal the handler is
	// unregistered, so a second signal falls back to the default
	// disposition and kills a run that refuses to wind down.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	if len(argv) > 0 && argv[0] == "serve" {
		return serveMain(ctx, argv[1:], stdout, stderr)
	}

	fs := flag.NewFlagSet("charisma", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Float64("scale", 0.1, "study scale; 1.0 reproduces the full 156-hour study")
	seed := fs.Uint64("seed", 42, "workload seed")
	fig := fs.Int("fig", 0, "print only figure N (1-9; 8 and 9 run the cache simulations)")
	table := fs.Int("table", 0, "print only table N (1-3)")
	report := fs.Bool("report", false, "print the full report (default when no -fig/-table)")
	traceOut := fs.String("trace", "", "also write the raw trace to this file")
	sweep := fs.Bool("sweep", false, "run a parallel study sweep over -seeds x -scales")
	predict := fs.Bool("predict", false, "print the analytical twin's instant M/G/1 queueing prediction instead of simulating")
	list := fs.Bool("list", false, "print every registered name (machine presets, topologies, disk models, workload archetypes, cache policies, fault presets) and exit")
	faultsPreset := fs.String("faults", "", "inject a named fault preset into the study or sweep: "+strings.Join(faults.PresetNames(), ", "))
	scenarioPath := fs.String("scenario", "", "run the declarative scenario spec at this path")
	seeds := fs.String("seeds", "", "sweep seeds: values and ranges, e.g. '3,1-5' (default: -seed)")
	scales := fs.String("scales", "", "sweep scales: comma-separated list (default: -scale)")
	workers := fs.Int("workers", 0, "sweep worker goroutines; 0 = GOMAXPROCS")
	outDir := fs.String("out", "", "persist sweep/scenario outcomes to this run directory (distributed + resumable)")
	shardSpec := fs.String("shard", "", "deprecated: run only static shard i of n, as 'i/n' (requires -out; conflicts with -worker-id/-lease-ttl)")
	workerID := fs.String("worker-id", "", "worker identity for distributed runs (requires -out; default host-pid)")
	leaseTTL := fs.Duration("lease-ttl", 0, "work-claim lease time-to-live before other workers reclaim (requires -out; default 30s)")
	resume := fs.Bool("resume", false, "allow reusing an existing run directory's outcomes (implicit in lease mode; required with -shard)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	stop, err := startProfiles(*cpuProfile, *memProfile, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "charisma:", err)
		return 1
	}
	// stop flushes and closes the profiles; it must run on every exit
	// path, including errors, or the profile files are corrupt.
	defer stop()

	if err := run(ctx, appConfig{
		scale: *scale, seed: *seed, fig: *fig, table: *table, report: *report,
		traceOut: *traceOut, sweep: *sweep, predict: *predict, list: *list, scenarioPath: *scenarioPath,
		faultsPreset: *faultsPreset,
		seeds:        *seeds, scales: *scales, workers: *workers,
		outDir: *outDir, shardSpec: *shardSpec, resume: *resume,
		workerID: *workerID, leaseTTL: *leaseTTL,
	}, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "charisma:", err)
		return 1
	}
	return 0
}

// appConfig is the parsed flag set.
type appConfig struct {
	scale        float64
	seed         uint64
	fig, table   int
	report       bool
	traceOut     string
	sweep        bool
	predict      bool
	list         bool
	scenarioPath string
	faultsPreset string
	seeds        string
	scales       string
	workers      int
	outDir       string
	shardSpec    string
	workerID     string
	leaseTTL     time.Duration
	resume       bool
}

// run dispatches to the selected mode. Every failure returns an
// error; nothing below this point may exit the process. ctx is
// cancelled by SIGINT/SIGTERM; every mode winds down cleanly on it.
func run(ctx context.Context, cfg appConfig, stdout, stderr io.Writer) error {
	// The -scale flag feeds every mode; reject garbage before any
	// simulation starts. (NaN slips through ordered comparisons, so
	// the explicit check matters.)
	if math.IsNaN(cfg.scale) || math.IsInf(cfg.scale, 0) || cfg.scale <= 0 {
		return fmt.Errorf("bad -scale %v (want a finite scale > 0)", cfg.scale)
	}
	if cfg.sweep && cfg.scenarioPath != "" {
		return errors.New("-sweep conflicts with -scenario: pick one mode (a scenario declares its own axes)")
	}
	if cfg.sweep || cfg.scenarioPath != "" {
		// These flags shape single-study output only. They used to be
		// silently ignored here -- `charisma -sweep -trace out.trc`
		// wrote nothing and said nothing -- so the conflict is a hard
		// error naming both flags, like -faults/-scenario.
		mode := "-sweep"
		if cfg.scenarioPath != "" {
			mode = "-scenario"
		}
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-trace", cfg.traceOut != ""},
			{"-fig", cfg.fig != 0},
			{"-table", cfg.table != 0},
		} {
			if f.set {
				return fmt.Errorf("%s conflicts with %s: it applies only to the single-study mode", f.name, mode)
			}
		}
	}
	if cfg.predict {
		// The analytical twin runs no traced simulation: there is no
		// trace to write, no figures or tables to render, and no
		// outcome to persist. Same rule as above -- each of these is a
		// hard error naming both flags, never a silent no-op.
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-trace", cfg.traceOut != ""},
			{"-fig", cfg.fig != 0},
			{"-table", cfg.table != 0},
			{"-out", cfg.outDir != ""},
		} {
			if f.set {
				return fmt.Errorf("%s conflicts with -predict: the analytical twin runs no traced simulation", f.name)
			}
		}
	}
	if cfg.list {
		// -list only consults the registries: nothing is simulated,
		// so every flag that selects or shapes a run is a hard error
		// naming both flags, per the same no-silent-no-op rule.
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-sweep", cfg.sweep},
			{"-scenario", cfg.scenarioPath != ""},
			{"-predict", cfg.predict},
			{"-faults", cfg.faultsPreset != ""},
			{"-trace", cfg.traceOut != ""},
			{"-fig", cfg.fig != 0},
			{"-table", cfg.table != 0},
			{"-out", cfg.outDir != ""},
		} {
			if f.set {
				return fmt.Errorf("%s conflicts with -list: listing the registries runs nothing", f.name)
			}
		}
		return runList(stdout)
	}
	store, useStore, err := parseStore(cfg)
	if err != nil {
		return err
	}
	var faultsCfg *faults.Config
	if cfg.faultsPreset != "" {
		if cfg.scenarioPath != "" {
			return errors.New("-faults conflicts with -scenario: scenarios declare faults in their spec's \"faults\" block")
		}
		fc, err := faults.Preset(cfg.faultsPreset)
		if err != nil {
			return err
		}
		faultsCfg = &fc
	}
	// Housekeeping notices (stale-file sweeps, lease reclaims) share
	// the timing channel; stdout stays deterministic report text.
	store.Log = stderr
	switch {
	case cfg.predict:
		return runPredict(ctx, stdout, cfg, faultsCfg)
	case cfg.scenarioPath != "":
		return runScenario(ctx, stdout, stderr, cfg.scenarioPath, cfg.workers, store, useStore)
	case cfg.sweep:
		return runSweep(ctx, stdout, stderr, cfg, faultsCfg, store, useStore)
	case useStore:
		return errors.New("-out/-shard/-resume apply only to -sweep and -scenario runs")
	}
	return runStudy(ctx, stdout, stderr, cfg, faultsCfg)
}

// runList prints every name registry the pipeline consults, one
// section per registry, each in its stable registry order (machine
// presets and workload archetypes list in registration order, the
// rest are already sorted or fixed by their registries). Scenario
// authors read this instead of the source to learn what a machines
// axis entry, workload mix, cache policy grid, or -faults flag may
// name; CI smokes it to catch a registration that silently stopped
// firing.
func runList(stdout io.Writer) error {
	sections := []struct {
		title string
		names []string
	}{
		{"machine presets", machine.PresetNames()},
		{"topologies", topo.Names()},
		{"disk models", disk.DriveNames()},
		{"workload archetypes", workload.ArchetypeNames()},
		{"cache policies", cachesim.PolicyNames()},
		{"fault presets", faults.PresetNames()},
	}
	for i, s := range sections {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		fmt.Fprintf(stdout, "%s:\n", s.title)
		for _, n := range s.names {
			fmt.Fprintf(stdout, "  %s\n", n)
		}
	}
	return nil
}

// runStudy is the single-study mode: the paper's figures and tables,
// plus the Figure 8/9 cache simulations on the study's own trace.
// The study itself is one indivisible simulation, so a signal does
// not pause it mid-event; instead the study is abandoned and the
// process exits promptly with its profiles flushed (the whole point
// of handling the signal) rather than running out a possibly
// hours-long horizon first.
func runStudy(ctx context.Context, stdout, stderr io.Writer, cfg appConfig, faultsCfg *faults.Config) error {
	studyCfg := core.DefaultConfig(cfg.seed, cfg.scale)
	studyCfg.Faults = faultsCfg
	resCh := make(chan *core.Result, 1)
	go func() { resCh <- core.RunStudy(studyCfg) }()
	var res *core.Result
	select {
	case res = <-resCh:
	case <-ctx.Done():
		return fmt.Errorf("interrupted: %w", ctx.Err())
	}

	if cfg.traceOut != "" {
		f, err := os.Create(cfg.traceOut)
		if err != nil {
			return err
		}
		if _, err := res.Trace.WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "charisma: wrote %d events to %s\n", len(res.Events), cfg.traceOut)
	}

	out, err := selectSection(res, cfg.fig, cfg.table)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, out)
	fmt.Fprintf(stdout, "\nInstrumentation (Section 3): %d records in %d messages (%.1f%% of one-per-record); %d disk ops\n",
		res.TraceRecords, res.TraceMessages,
		100*float64(res.TraceMessages)/float64(max64(res.TraceRecords, 1)),
		res.DiskOps)
	return nil
}

// runPredict is the analytical-twin mode: instead of simulating, it
// walks the workload on the twin's stripped timing engine and prints
// the per-I/O-node M/G/1 prediction for every study the flags
// describe -- the single study, the -sweep seed/scale cross product,
// or each study of a -scenario spec. Output is deterministic and,
// like every twin rendering, free of Inf and NaN: saturation is a
// flagged "sat" cell, never an infinite wait.
func runPredict(ctx context.Context, stdout io.Writer, cfg appConfig, faultsCfg *faults.Config) error {
	var specs []core.StudySpec
	switch {
	case cfg.scenarioPath != "":
		spec, err := scenario.Load(cfg.scenarioPath)
		if err != nil {
			return err
		}
		if spec.IsReplay() {
			return errors.New("-predict cannot run a replay scenario: a recorded trace already carries its timing, so there is nothing to predict")
		}
		specs = core.ScenarioSpecs(spec)
	case cfg.sweep:
		seedList, err := parseSeeds(cfg.seeds, cfg.seed)
		if err != nil {
			return err
		}
		scaleList, err := parseScales(cfg.scales, cfg.scale)
		if err != nil {
			return err
		}
		specs = core.CrossSpecs(seedList, scaleList, nil, nil)
		for i := range specs {
			specs[i].Config.Faults = faultsCfg
		}
	default:
		studyCfg := core.DefaultConfig(cfg.seed, cfg.scale)
		studyCfg.Faults = faultsCfg
		specs = []core.StudySpec{{Config: studyCfg}}
	}
	for i, ss := range specs {
		// Each walk is short, but a sweep of them is worth interrupting
		// between studies.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted: %w", err)
		}
		if len(specs) > 1 {
			if i > 0 {
				fmt.Fprintln(stdout)
			}
			fmt.Fprintf(stdout, "== %s ==\n", ss.Label)
		}
		fmt.Fprint(stdout, core.Predict(ss.Config).Format())
	}
	return nil
}

// startProfiles starts the CPU profile and returns the cleanup that
// stops it and writes the heap profile. The cleanup never exits the
// process: profile trouble on the way out is reported to stderr and
// the already-chosen exit code stands.
func startProfiles(cpuPath, memPath string, stderr io.Writer) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(stderr, "charisma:", err)
			}
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(stderr, "charisma:", err)
			return
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, "charisma:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "charisma:", err)
		}
	}, nil
}

// parseStore turns the -out/-worker-id/-lease-ttl/-shard/-resume
// flags into a store config. The default is lease-based work
// stealing, where resume is implicit (the library refuses only a
// manifest mismatch); the deprecated -shard static mode keeps the
// old explicit-resume guard, and mixing the two modes' flags is an
// error.
func parseStore(cfg appConfig) (core.StoreConfig, bool, error) {
	if cfg.outDir == "" {
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"-shard", cfg.shardSpec != ""},
			{"-worker-id", cfg.workerID != ""},
			{"-lease-ttl", cfg.leaseTTL != 0},
			{"-resume", cfg.resume},
		} {
			if f.set {
				return core.StoreConfig{}, false, fmt.Errorf("%s requires -out", f.name)
			}
		}
		return core.StoreConfig{}, false, nil
	}
	if cfg.shardSpec != "" {
		// Deprecated static mode. Refuse the lease flags loudly: a
		// static shard ignores leases, so combining the modes would
		// silently fall back to one of them.
		if cfg.workerID != "" || cfg.leaseTTL != 0 {
			conflict := "-worker-id"
			if cfg.leaseTTL != 0 {
				conflict = "-lease-ttl"
			}
			return core.StoreConfig{}, false, fmt.Errorf("-shard and %s conflict: static sharding and lease-based work stealing are mutually exclusive (drop -shard to use the lease scheduler)", conflict)
		}
		shard, numShards, err := parseShard(cfg.shardSpec)
		if err != nil {
			return core.StoreConfig{}, false, err
		}
		if core.HasManifest(cfg.outDir) && !cfg.resume {
			return core.StoreConfig{}, false, fmt.Errorf("run directory %s already holds outcomes; pass -resume to continue it or use a fresh directory", cfg.outDir)
		}
		return core.StoreConfig{Dir: cfg.outDir, Shard: shard, NumShards: numShards}, true, nil
	}
	if cfg.leaseTTL < 0 {
		return core.StoreConfig{}, false, fmt.Errorf("bad -lease-ttl %v (want a positive duration)", cfg.leaseTTL)
	}
	return core.StoreConfig{Dir: cfg.outDir, WorkerID: cfg.workerID, LeaseTTL: cfg.leaseTTL}, true, nil
}

// parseShard understands "i/n" with 0 <= i < n; empty means the
// whole run (shard 0 of 1).
func parseShard(spec string) (shard, numShards int, err error) {
	if spec == "" {
		return 0, 1, nil
	}
	lo, hi, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want 'i/n', e.g. 0/4)", spec)
	}
	shard, err1 := strconv.Atoi(strings.TrimSpace(lo))
	numShards, err2 := strconv.Atoi(strings.TrimSpace(hi))
	if err1 != nil || err2 != nil || numShards < 1 || shard < 0 || shard >= numShards {
		return 0, 0, fmt.Errorf("bad -shard %q (want 'i/n' with 0 <= i < n)", spec)
	}
	return shard, numShards, nil
}

// runScenario loads, validates, and runs a declarative scenario,
// printing the deterministic report on stdout and timing on stderr.
// With a store, only this shard's pending studies execute, and the
// merged report prints once every study's outcome file exists.
func runScenario(ctx context.Context, stdout, stderr io.Writer, path string, workers int, store core.StoreConfig, useStore bool) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if workers != 0 {
		spec.Workers = workers
	}
	if !useStore {
		res, err := core.RunScenario(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, res.Format())
		fmt.Fprintf(stderr, "charisma: scenario %s: %d studies on %d workers in %v\n",
			spec.Name, len(res.Sweep.Outcomes), res.Sweep.Workers, res.Sweep.Elapsed.Round(1e6))
		return nil
	}
	run, err := core.RunScenarioStore(ctx, spec, store)
	if err != nil {
		return err
	}
	reportStoreRun(stderr, "scenario "+spec.Name, store, run.Run, len(run.Merge.Missing), len(run.Merge.Result.Outcomes))
	if run.Run.Err != nil {
		return interrupted(run.Run.Err, store.Dir)
	}
	if run.Result == nil {
		return nil
	}
	fmt.Fprint(stdout, run.Result.Format())
	return nil
}

// interrupted describes a store run stopped by a signal: leases are
// already released and committed outcomes resume on the next run.
func interrupted(cause error, dir string) error {
	return fmt.Errorf("interrupted (%v): leases released, committed outcomes kept; rerun with -out %s to resume", cause, dir)
}

// serveMain is the `charisma serve` subcommand: it binds the HTTP
// daemon to -addr, backs it with the content-addressed run store at
// -out, and runs until ctx is cancelled by SIGINT/SIGTERM. Shutdown
// is graceful: intake stops (new submissions get 503), in-flight
// studies finish and commit, leases release, and open SSE streams
// receive their terminal events before the listener closes -- all
// within the -drain budget.
func serveMain(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("charisma serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address, host:port")
	outDir := fs.String("out", "", "run-store directory backing the result cache (required)")
	jobs := fs.Int("jobs", 2, "jobs simulating concurrently")
	queue := fs.Int("queue", 16, "queued jobs accepted beyond the executing ones before 429")
	leaseTTL := fs.Duration("lease-ttl", 0, "store work-claim lease time-to-live (default 30s)")
	drain := fs.Duration("drain", 30*time.Second, "shutdown budget for in-flight jobs to finish")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "charisma serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *outDir == "" {
		fmt.Fprintln(stderr, "charisma serve: -out is required (the run directory doubles as the result cache)")
		return 2
	}
	if *leaseTTL < 0 {
		fmt.Fprintf(stderr, "charisma serve: bad -lease-ttl %v (want a positive duration)\n", *leaseTTL)
		return 2
	}

	srv, err := serve.New(serve.Config{
		Dir:      *outDir,
		Jobs:     *jobs,
		Queue:    *queue,
		LeaseTTL: *leaseTTL,
		Log:      stderr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "charisma serve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "charisma serve:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stderr, "charisma serve: listening on %s (store %s, %d jobs, queue %d)\n",
		ln.Addr(), *outDir, *jobs, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener failed underneath us; the jobs are still worth
		// draining so committed outcomes stay resumable.
		fmt.Fprintln(stderr, "charisma serve:", err)
		srv.Shutdown(context.Background())
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stderr, "charisma serve: signal received; draining (budget %v)\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Order matters: drain the job engine first so open SSE streams see
	// their terminal events, then close the HTTP side, which waits for
	// those streams to unwind.
	srv.Shutdown(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
		fmt.Fprintln(stderr, "charisma serve:", err)
		return 1
	}
	fmt.Fprintln(stderr, "charisma serve: drained; all leases released")
	return 0
}

// runSweep executes the multi-study mode and prints the aggregate
// report (deterministic) on stdout and timing (not) on stderr. With
// a store the same resumable-shard protocol as scenarios applies.
func runSweep(ctx context.Context, stdout, stderr io.Writer, cfg appConfig, faultsCfg *faults.Config, store core.StoreConfig, useStore bool) error {
	seedList, err := parseSeeds(cfg.seeds, cfg.seed)
	if err != nil {
		return err
	}
	scaleList, err := parseScales(cfg.scales, cfg.scale)
	if err != nil {
		return err
	}
	specs := core.CrossSpecs(seedList, scaleList, nil, nil)
	if faultsCfg != nil {
		// Every study of the sweep runs on the same degraded machine;
		// the store fingerprint covers the faults, so a faulted run
		// directory never aliases a healthy one.
		for i := range specs {
			specs[i].Config.Faults = faultsCfg
		}
	}
	sweepCfg := core.SweepConfig{Specs: specs, Workers: cfg.workers}
	if !useStore {
		res := core.RunSweep(ctx, sweepCfg)
		if res.Err != nil {
			return res.Err
		}
		fmt.Fprint(stdout, res.Format())
		fmt.Fprintf(stderr, "charisma: %d studies on %d workers in %v (%.2f studies/s)\n",
			len(res.Outcomes), res.Workers, res.Elapsed.Round(1e6),
			float64(len(res.Outcomes))/res.Elapsed.Seconds())
		return nil
	}
	run, err := core.RunSweepStore(ctx, sweepCfg, store)
	if err != nil {
		return err
	}
	merge, err := core.MergeSweepStore(sweepCfg, store)
	if err != nil {
		return err
	}
	reportStoreRun(stderr, "sweep", store, run, len(merge.Missing), len(specs))
	if run.Err != nil {
		return interrupted(run.Err, store.Dir)
	}
	if len(merge.Missing) > 0 {
		return nil
	}
	fmt.Fprint(stdout, merge.Result.Format())
	return nil
}

// reportStoreRun prints one invocation's accounting to stderr: what
// it ran, what was already committed, and whether the merged report
// is ready.
func reportStoreRun(stderr io.Writer, what string, store core.StoreConfig, run *core.StoreRun, missing, total int) {
	if store.NumShards > 1 {
		fmt.Fprintf(stderr, "charisma: %s: shard %d/%d ran %d, skipped %d done, in %v; %d/%d outcomes committed\n",
			what, store.Shard, store.NumShards, len(run.Ran), len(run.Skipped), run.Elapsed.Round(1e6), total-missing, total)
		if missing > 0 {
			fmt.Fprintf(stderr, "charisma: %d studies still pending (other shards or a -resume rerun); merged report withheld\n", missing)
		}
		return
	}
	fmt.Fprintf(stderr, "charisma: %s: worker %s ran %d (%d reclaimed), found %d done, in %v; %d/%d outcomes committed\n",
		what, run.Worker.WorkerID, len(run.Ran), run.Reclaims, len(run.Skipped), run.Elapsed.Round(1e6), total-missing, total)
	if missing > 0 {
		fmt.Fprintf(stderr, "charisma: %d studies still pending (run cancelled before the queue drained); merged report withheld\n", missing)
	}
}

// parseSeeds understands comma-separated values and "a-b" ranges,
// freely mixed ("3,1-5"); empty means the single -seed value.
func parseSeeds(spec string, fallback uint64) ([]uint64, error) {
	if spec == "" {
		return []uint64{fallback}, nil
	}
	const maxSeeds = 1 << 20
	var out []uint64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.ParseUint(strings.TrimSpace(lo), 10, 64)
			b, err2 := strconv.ParseUint(strings.TrimSpace(hi), 10, 64)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("bad seed range %q in %q", part, spec)
			}
			if b-a >= maxSeeds || uint64(len(out))+(b-a) >= maxSeeds {
				return nil, fmt.Errorf("seed range %q in %q too large", part, spec)
			}
			for s := a; s <= b; s++ {
				out = append(out, s)
			}
			continue
		}
		s, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q in %q", part, spec)
		}
		out = append(out, s)
	}
	return out, nil
}

// parseScales understands comma lists; empty means the single -scale
// value. Every scale must be finite and positive: NaN fails ordered
// comparisons, so a plain `v <= 0` guard would wave it through to
// the generator.
func parseScales(spec string, fallback float64) ([]float64, error) {
	if spec == "" {
		return []float64{fallback}, nil
	}
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("bad scale %q in %q (want a finite scale > 0)", part, spec)
		}
		out = append(out, v)
	}
	return out, nil
}

// selectSection renders the requested slice of the study: figures
// 1-7 and tables 1-3 from the analysis report, figures 8-9 from the
// trace-driven cache simulations on the study's own event stream.
func selectSection(res *core.Result, fig, table int) (string, error) {
	r := res.Report
	switch {
	case fig == 1:
		return r.FormatFig1(), nil
	case fig == 2:
		return r.FormatFig2(), nil
	case fig == 3:
		return r.FormatFig3(), nil
	case fig == 4:
		return r.FormatFig4(), nil
	case fig == 5:
		return r.FormatFig5(), nil
	case fig == 6:
		return r.FormatFig6(), nil
	case fig == 7:
		return r.FormatFig7(), nil
	case fig == 8:
		return core.FormatFig8(core.RunFig8(res.Events, res.BlockBytes())), nil
	case fig == 9:
		return core.FormatFig9(res.Events, res.BlockBytes(), int(res.Header.IONodes)), nil
	case table == 1:
		return r.FormatTable1(), nil
	case table == 2:
		return r.FormatTable2(), nil
	case table == 3:
		return r.FormatTable3(), nil
	case fig != 0 || table != 0:
		return "", fmt.Errorf("no such figure/table (fig=%d table=%d; figures 1-9, tables 1-3)", fig, table)
	default:
		return r.Format(), nil
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
