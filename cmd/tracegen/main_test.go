package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestRunWritesReadableTrace: the happy path produces a trace the
// streaming reader accepts, and reports its true size.
func TestRunWritesReadableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.trc")
	var msg bytes.Buffer
	if err := run(&msg, out, 42, 0.01); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.OpenReader(out)
	if err != nil {
		t.Fatalf("tracegen output unreadable: %v", err)
	}
	defer rd.Close()
	if rd.EventCount() == 0 || rd.NumBlocks() == 0 {
		t.Fatalf("empty trace: %d events, %d blocks", rd.EventCount(), rd.NumBlocks())
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	// The summary's byte count must be the true file size:
	// "tracegen: <path>: <n> bytes, ...".
	fields := strings.Fields(msg.String())
	var reported int64 = -1
	for i, f := range fields {
		if f == "bytes," && i > 0 {
			v, err := strconv.ParseInt(fields[i-1], 10, 64)
			if err != nil {
				t.Fatalf("summary line malformed: %q", msg.String())
			}
			reported = v
		}
	}
	if reported != fi.Size() {
		t.Fatalf("summary %q reports %d bytes, file has %d", msg.String(), reported, fi.Size())
	}
}

// TestRunErrorPaths: an uncreatable path errors without panicking,
// and cleanupPartial never unlinks non-regular files.
func TestRunErrorPaths(t *testing.T) {
	var msg bytes.Buffer
	if err := run(&msg, filepath.Join(t.TempDir(), "no", "such", "dir", "t.trc"), 1, 0.01); err == nil {
		t.Fatal("uncreatable path accepted")
	}

	dir := t.TempDir()
	reg := filepath.Join(dir, "partial.trc")
	if err := os.WriteFile(reg, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if note := cleanupPartial(reg); !strings.Contains(note, "removed") {
		t.Fatalf("regular file not removed: %q", note)
	}
	if _, err := os.Stat(reg); !os.IsNotExist(err) {
		t.Fatal("partial regular file still present")
	}

	if note := cleanupPartial(dir); strings.Contains(note, "removed partial") {
		t.Fatalf("non-regular target reported removed: %q", note)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("cleanup removed a directory")
	}
}
