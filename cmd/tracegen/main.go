// Command tracegen runs a study and writes the collected CHARISMA
// trace to a binary file, without analyzing it. Use traceanal or
// cachesim on the result.
//
// The trace is streamed: each block is spilled to the file as the
// collector receives it (core.RunStudyStreaming), so peak memory is
// bounded by the per-node trace buffers, not the trace length. On any
// write failure -- a full disk, a revoked file -- tracegen removes the
// partial file and exits non-zero, reporting how many bytes landed.
//
// Usage:
//
//	tracegen -o study.trc [-scale 0.1] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

func main() {
	out := flag.String("o", "study.trc", "output trace file")
	scale := flag.Float64("scale", 0.1, "study scale; 1.0 reproduces the full 156-hour study")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	if err := run(os.Stdout, *out, *seed, *scale); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run streams the study's trace straight into the output file. On
// failure the partial file is removed so a short write never leaves a
// truncated trace that a later analysis run would trip over.
func run(w io.Writer, out string, seed uint64, scale float64) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	res, err := core.RunStudyStreaming(core.DefaultConfig(seed, scale), f)
	if err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w (%s)", err, cleanupPartial(out))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing trace: %w (%s)", err, cleanupPartial(out))
	}
	fmt.Fprintf(w, "tracegen: %s: %d bytes, %d blocks, %d events (%.1f simulated hours)\n",
		out, res.TraceBytes, res.TraceBlocks, res.EventCount, res.Horizon.ToSeconds()/3600)
	return nil
}

// cleanupPartial removes the truncated output after a failed write,
// but only a regular file: pointing -o at a device or pipe must never
// unlink it. Returns a note for the error message including how many
// bytes had landed.
func cleanupPartial(out string) string {
	fi, err := os.Lstat(out)
	if err != nil || !fi.Mode().IsRegular() {
		return "left " + out + " in place"
	}
	landed := fmt.Sprintf("%d bytes landed", fi.Size())
	if err := os.Remove(out); err != nil {
		return "could not remove partial " + out + ", " + landed
	}
	return "removed partial " + out + ", " + landed
}
