// Command tracegen runs a study and writes the collected CHARISMA
// trace to a binary file, without analyzing it. Use traceanal or
// cachesim on the result.
//
// Usage:
//
//	tracegen -o study.trc [-scale 0.1] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	out := flag.String("o", "study.trc", "output trace file")
	scale := flag.Float64("scale", 0.1, "study scale; 1.0 reproduces the full 156-hour study")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	res := core.RunStudy(core.DefaultConfig(*seed, *scale))
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	n, err := res.Trace.WriteTo(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: writing trace:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("tracegen: %s: %d bytes, %d blocks, %d events (%.1f simulated hours)\n",
		*out, n, len(res.Trace.Blocks), len(res.Events), res.Horizon.ToSeconds()/3600)
}
