// Command benchjson converts `go test -bench` output on stdin into a
// JSON array on stdout, one object per benchmark result, so CI can
// emit a machine-readable perf trajectory (BENCH_PR2.json) alongside
// the human-readable log.
//
//	go test -run '^$' -bench 'RunStudy$|RunSweep' -benchmem -benchtime 1x . | benchjson > BENCH_PR2.json
//
// Standard metrics (ns/op, B/op, allocs/op) get their own fields;
// anything reported via b.ReportMetric lands in "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one benchmark line, decoded.
type result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	// Non-nil so zero parsed benchmarks encode as [], not null.
	results := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine decodes one "BenchmarkName-8  N  V unit  V unit ..." line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the trailing -GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, seen
}
