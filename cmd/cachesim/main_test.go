package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the cachesim golden over the shared smoke trace
// (the trace itself is owned by cmd/traceanal's -update):
//
//	go test -run TestSmokeCombinedGolden -update ./cmd/cachesim/
var update = flag.Bool("update", false, "rewrite testdata/traces/smoke.cachesim.golden")

const (
	smokeTrc    = "../../testdata/traces/smoke.trc"
	smokeGolden = "../../testdata/traces/smoke.cachesim.golden"
)

// TestSmokeCombinedGolden pins the combined cache experiment over the
// checked-in smoke trace, byte for byte: the replay-conformance CI
// step runs the same command against the same golden.
func TestSmokeCombinedGolden(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, smokeTrc, 0, true); err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.WriteFile(smokeGolden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", smokeGolden, out.Len())
		return
	}
	want, err := os.ReadFile(smokeGolden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("cachesim -combined output diverged from %s; regenerate with -update if intentional", smokeGolden)
	}
}

// TestFigModesRun: both figure experiments run over the smoke trace
// without error and produce their headers.
func TestFigModesRun(t *testing.T) {
	var fig8, fig9 bytes.Buffer
	if err := run(&fig8, smokeTrc, 8, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fig8.Bytes(), []byte("Figure 8")) {
		t.Fatal("fig 8 output missing header")
	}
	if err := run(&fig9, smokeTrc, 9, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fig9.Bytes(), []byte("Figure 9")) {
		t.Fatal("fig 9 output missing header")
	}
}

// TestRunErrors: bad input is an error, not a panic.
func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, filepath.Join(t.TempDir(), "missing.trc"), 0, true); err == nil {
		t.Fatal("missing file accepted")
	}
}
