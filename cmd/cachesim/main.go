// Command cachesim runs the paper's trace-driven cache simulations on
// a CHARISMA trace file: the compute-node cache of Figure 8, the
// I/O-node cache sweep of Figure 9, and the combined configuration of
// Section 4.8.
//
// Usage:
//
//	cachesim -fig 8 study.trc
//	cachesim -fig 9 study.trc
//	cachesim -combined study.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce: 8 or 9")
	combined := flag.Bool("combined", false, "run the combined compute+I/O cache experiment")
	flag.Parse()
	if flag.NArg() != 1 || (*fig == 0 && !*combined) {
		fmt.Fprintln(os.Stderr, "usage: cachesim (-fig 8 | -fig 9 | -combined) <trace file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
	events := trace.Postprocess(tr)
	blockBytes := int64(tr.Header.BlockBytes)

	switch {
	case *fig == 8:
		runFig8(events, blockBytes)
	case *fig == 9:
		runFig9(events, blockBytes, int(tr.Header.IONodes))
	case *combined:
		runCombined(events, blockBytes)
	default:
		fmt.Fprintf(os.Stderr, "cachesim: no such experiment: fig %d\n", *fig)
		os.Exit(2)
	}
}

func runFig8(events []trace.Event, blockBytes int64) {
	fmt.Print(core.FormatFig8(core.RunFig8(events, blockBytes)))
}

func runFig9(events []trace.Event, blockBytes int64, ioNodes int) {
	fmt.Println("Figure 9: I/O-node caching (4 KB buffers)")
	fmt.Printf("%10s  %10s  %10s\n", "buffers", "LRU", "FIFO")
	for _, buffers := range core.DefaultFig9Buffers() {
		lru := cachesim.IONodeCache(events, blockBytes, ioNodes, buffers, cachesim.LRU)
		fifo := cachesim.IONodeCache(events, blockBytes, ioNodes, buffers, cachesim.FIFO)
		fmt.Printf("%10d  %9.1f%%  %9.1f%%\n", buffers, 100*lru.Rate(), 100*fifo.Rate())
	}
	fmt.Println("\nSensitivity to the number of I/O nodes (LRU, 4000 buffers):")
	fmt.Printf("%10s  %10s\n", "I/O nodes", "hit rate")
	for _, n := range []int{1, 2, 5, 10, 15, 20} {
		r := cachesim.IONodeCache(events, blockBytes, n, 4000, cachesim.LRU)
		fmt.Printf("%10d  %9.1f%%\n", n, 100*r.Rate())
	}
}

func runCombined(events []trace.Event, blockBytes int64) {
	fmt.Print(core.FormatCombined(core.RunCombined(events, blockBytes)))
}
