// Command cachesim runs the paper's trace-driven cache simulations on
// a CHARISMA trace file: the compute-node cache of Figure 8, the
// I/O-node cache sweep of Figure 9, and the combined configuration of
// Section 4.8.
//
// The trace file is decoded through the streaming reader (index the
// block headers, merge the drift-corrected stream); only the
// postprocessed event sequence is materialized, because the cache
// simulations make several passes over it -- the raw blocks never
// are.
//
// Usage:
//
//	cachesim -fig 8 study.trc
//	cachesim -fig 9 study.trc
//	cachesim -combined study.trc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	fig := flag.Int("fig", 0, "figure to reproduce: 8 or 9")
	combined := flag.Bool("combined", false, "run the combined compute+I/O cache experiment")
	flag.Parse()
	if flag.NArg() != 1 || (*fig == 0 && !*combined) {
		fmt.Fprintln(os.Stderr, "usage: cachesim (-fig 8 | -fig 9 | -combined) <trace file>")
		os.Exit(2)
	}
	if *fig != 0 && *fig != 8 && *fig != 9 {
		fmt.Fprintf(os.Stderr, "cachesim: no such experiment: fig %d\n", *fig)
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *fig, *combined); err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}

// run loads the trace at path and prints the selected experiment.
func run(w io.Writer, path string, fig int, combined bool) error {
	rd, err := trace.OpenReader(path)
	if err != nil {
		return err
	}
	defer rd.Close()
	events, err := rd.AllEvents()
	if err != nil {
		return err
	}
	blockBytes := int64(rd.Header().BlockBytes)

	switch {
	case fig == 8:
		runFig8(w, events, blockBytes)
	case fig == 9:
		runFig9(w, events, blockBytes, int(rd.Header().IONodes))
	case combined:
		runCombined(w, events, blockBytes)
	}
	return nil
}

func runFig8(w io.Writer, events []trace.Event, blockBytes int64) {
	fmt.Fprint(w, core.FormatFig8(core.RunFig8(events, blockBytes)))
}

func runFig9(w io.Writer, events []trace.Event, blockBytes int64, ioNodes int) {
	fmt.Fprint(w, core.FormatFig9(events, blockBytes, ioNodes))
	fmt.Fprintln(w, "\nSensitivity to the number of I/O nodes (LRU, 4000 buffers):")
	fmt.Fprintf(w, "%10s  %10s\n", "I/O nodes", "hit rate")
	for _, n := range []int{1, 2, 5, 10, 15, 20} {
		r := cachesim.IONodeCache(events, blockBytes, n, 4000, cachesim.LRU)
		fmt.Fprintf(w, "%10d  %9.1f%%\n", n, 100*r.Rate())
	}
}

func runCombined(w io.Writer, events []trace.Event, blockBytes int64) {
	fmt.Fprint(w, core.FormatCombined(core.RunCombined(events, blockBytes)))
}
