package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// update regenerates the smoke trace and its traceanal golden
// (matching the scenario-corpus convention):
//
//	go test -run TestSmokeTraceGolden -update ./cmd/traceanal/
//
// cmd/cachesim has its own -update for its golden over the same
// trace; regenerate it afterwards if the trace changed.
var update = flag.Bool("update", false, "rewrite testdata/traces/smoke.trc and its goldens")

const (
	smokeTrc    = "../../testdata/traces/smoke.trc"
	smokeGolden = "../../testdata/traces/smoke.traceanal.golden"

	smokeSeed  = 42
	smokeScale = 0.01
)

// memSink is an in-memory core.StreamSink.
type memSink struct{ buf []byte }

func (m *memSink) Write(p []byte) (int, error) {
	m.buf = append(m.buf, p...)
	return len(p), nil
}

func (m *memSink) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.buf)) {
		return 0, fmt.Errorf("memSink: offset %d out of range", off)
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// smokeTraceBytes regenerates the smoke trace's encoding: the seed-42
// scale-0.01 study streamed through the spill writer, exactly what
// `tracegen -o smoke.trc -scale 0.01 -seed 42` produces.
func smokeTraceBytes(t testing.TB) []byte {
	t.Helper()
	var sink memSink
	if _, err := core.RunStudyStreaming(core.DefaultConfig(smokeSeed, smokeScale), &sink); err != nil {
		t.Fatal(err)
	}
	return sink.buf
}

// TestSmokeTraceGolden pins the checked-in smoke trace and its
// traceanal report: the trace must be exactly what the streaming
// study produces today (so the replay corpus can never drift from the
// simulator), and analyzing it must reproduce the golden byte for
// byte.
func TestSmokeTraceGolden(t *testing.T) {
	fresh := smokeTraceBytes(t)

	if *update {
		if err := os.MkdirAll(filepath.Dir(smokeTrc), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(smokeTrc, fresh, 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := run(&out, smokeTrc, false); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(smokeGolden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes) and %s (%d bytes)", smokeTrc, len(fresh), smokeGolden, out.Len())
		return
	}

	checked, err := os.ReadFile(smokeTrc)
	if err != nil {
		t.Fatalf("reading smoke trace (regenerate with -update): %v", err)
	}
	if !bytes.Equal(checked, fresh) {
		t.Fatalf("checked-in smoke.trc (%d bytes) no longer matches the streaming study (%d bytes); regenerate with -update if the change is intentional",
			len(checked), len(fresh))
	}

	var out bytes.Buffer
	if err := run(&out, smokeTrc, false); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(smokeGolden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		i := 0
		for i < out.Len() && i < len(want) && out.Bytes()[i] == want[i] {
			i++
		}
		t.Fatalf("traceanal output diverged from %s (first diff near byte %d); regenerate with -update if intentional", smokeGolden, i)
	}
}

// TestRawModeRuns exercises the -raw ablation path over the smoke
// trace: it must succeed and differ from the corrected report (the
// drift correction does real work).
func TestRawModeRuns(t *testing.T) {
	var corrected, raw bytes.Buffer
	if err := run(&corrected, smokeTrc, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&raw, smokeTrc, true); err != nil {
		t.Fatal(err)
	}
	if corrected.Len() == 0 || raw.Len() == 0 {
		t.Fatal("empty report")
	}
	if bytes.Equal(corrected.Bytes(), raw.Bytes()) {
		t.Fatal("raw and corrected reports identical: drift correction is a no-op on the smoke trace")
	}
}

// TestRunErrors: missing and corrupt files produce errors, not panics.
func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, filepath.Join(t.TempDir(), "missing.trc"), false); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.trc")
	if err := os.WriteFile(bad, []byte("CHARISMA garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&out, bad, false); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
