// Command traceanal analyzes a CHARISMA trace file produced by
// tracegen (or charisma -trace): it postprocesses the raw blocks
// (clock-drift correction and chronological sorting) and prints the
// paper's figures and tables.
//
// Usage:
//
//	traceanal study.trc [-raw]
//
// With -raw, the drift correction is skipped (the ablation from
// DESIGN.md): events are sorted on their raw local-clock timestamps.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	raw := flag.Bool("raw", false, "skip clock-drift correction")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceanal [-raw] <trace file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanal:", err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceanal:", err)
		os.Exit(1)
	}
	var events []trace.Event
	if *raw {
		events = trace.PostprocessRaw(tr)
	} else {
		events = trace.Postprocess(tr)
	}
	var horizon sim.Time
	if len(events) > 0 {
		horizon = sim.Time(events[len(events)-1].Time)
	}
	report := analysis.Analyze(tr.Header, events, horizon)
	fmt.Printf("trace: %d compute nodes, %d I/O nodes, %d B blocks, seed %d, %d events\n\n",
		tr.Header.ComputeNodes, tr.Header.IONodes, tr.Header.BlockBytes,
		tr.Header.Seed, len(events))
	fmt.Print(report.Format())
}
