// Command traceanal analyzes a CHARISMA trace file produced by
// tracegen (or charisma -trace): it postprocesses the blocks
// (clock-drift correction and chronological merging) and prints the
// paper's figures and tables.
//
// The trace is never materialized: the reader indexes the file's
// block headers (~40 bytes per block, ~1% of the file), then streams
// the drift-corrected, time-merged event sequence -- one decoded
// block per compute node in memory at a time -- into the incremental
// analyzer, so traces far larger than memory analyze in a footprint
// that grows only with that ~1% index, never with the event count.
//
// Usage:
//
//	traceanal study.trc [-raw]
//
// With -raw, the drift correction is skipped (the ablation from
// DESIGN.md): events are merged on their raw local-clock timestamps.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/trace"
)

func main() {
	raw := flag.Bool("raw", false, "skip clock-drift correction")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceanal [-raw] <trace file>")
		os.Exit(2)
	}
	if err := run(os.Stdout, flag.Arg(0), *raw); err != nil {
		fmt.Fprintln(os.Stderr, "traceanal:", err)
		os.Exit(1)
	}
}

// run streams the trace at path through the analyzer and writes the
// report to w.
func run(w io.Writer, path string, raw bool) error {
	rd, err := trace.OpenReader(path)
	if err != nil {
		return err
	}
	defer rd.Close()

	o := analysis.NewOnline(rd.Header())
	stream := rd.Events
	if raw {
		stream = rd.RawEvents
	}
	if err := stream(func(ev *trace.Event) error {
		o.Observe(ev)
		return nil
	}); err != nil {
		return err
	}
	report := o.Finish(0) // horizon: the last event's timestamp

	h := rd.Header()
	fmt.Fprintf(w, "trace: %d compute nodes, %d I/O nodes, %d B blocks, seed %d, %d events\n\n",
		h.ComputeNodes, h.IONodes, h.BlockBytes, h.Seed, rd.EventCount())
	fmt.Fprint(w, report.Format())
	return nil
}
